// Shared main() for the google-benchmark binaries: BENCHMARK_MAIN plus the
// obs export hooks, so every bench_* run can emit engine counters, a
// per-phase span summary, and a chrome://tracing file of the workload:
//
//   IRD_TRACE_OUT=/tmp/trace.json ./build/bench/bench_recognition
//   IRD_STATS=1                   ./build/bench/bench_maintenance
//   IRD_STATS_OUT=/tmp/stats.json ./build/bench/bench_split_kep
//
// See docs/OBSERVABILITY.md for the formats.

#ifndef IRD_BENCH_BENCH_MAIN_H_
#define IRD_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include "obs/export.h"

#define IRD_BENCHMARK_MAIN()                                            \
  int main(int argc, char** argv) {                                     \
    ird::obs::InitFromEnv();                                            \
    benchmark::Initialize(&argc, argv);                                 \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    benchmark::RunSpecifiedBenchmarks();                                \
    benchmark::Shutdown();                                              \
    return ird::obs::ExportFromEnv(argv[0]);                            \
  }                                                                     \
  static_assert(true, "require a trailing semicolon")

#endif  // IRD_BENCH_BENCH_MAIN_H_
