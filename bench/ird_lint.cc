// ird_lint: witness-backed static analysis for database schemes.
//
//   ird_lint [--json] [--verify] [--no-instances] [--jobs N] FILE...
//
// Each FILE is a `.scheme` text-format file (io/text_format.h grammar;
// `insert` lines are accepted and ignored). For every file the tool runs
// the full diagnostics rule registry (diagnostics/lint.h) and renders the
// report as text (default) or JSON (--json). With --verify every emitted
// witness is re-checked by the independent checker (diagnostics/verify.h);
// an unverifiable witness is a bug in the analyzer and fails the run.
//
// With --jobs N the files are parsed and linted on a BatchAnalyzer pool
// (one SchemeAnalysis per file per worker); output is buffered per file
// and emitted in input order, so stdout and stderr are byte-identical to
// a --jobs 1 run.
//
// Exit status: 0 = all files linted (diagnostics may exist); 1 = a file
// failed to parse or a witness failed verification; 2 = usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "diagnostics/lint.h"
#include "diagnostics/render.h"
#include "diagnostics/verify.h"
#include "engine/batch.h"
#include "io/text_format.h"
#include "obs/export.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ird_lint [--json] [--verify] [--no-instances] "
               "[--stats] [--jobs N] FILE...\n"
               "  --json          machine-readable output, one JSON object "
               "per file\n"
               "  --verify        re-check every witness with the "
               "independent verifier\n"
               "  --no-instances  skip adversarial instance construction "
               "for split keys\n"
               "  --stats         print the engine counter/span summary to "
               "stderr at the end\n"
               "  --jobs N        lint files on N worker threads "
               "(input-ordered output; default 1)\n");
  return 2;
}

struct Options {
  bool json = false;
  bool verify = false;
  bool stats = false;
  size_t jobs = 1;
  ird::diagnostics::LintOptions lint;
  std::vector<std::string> files;
};

// One file's buffered outcome; emitted serially in input order after the
// (possibly parallel) lint pass.
struct FileResult {
  int rc = 0;
  std::string out;  // stdout payload
  std::string err;  // stderr payload
};

FileResult LintFile(const Options& opts, const std::string& path) {
  FileResult res;
  std::ifstream in(path);
  if (!in) {
    res.err = "ird_lint: cannot open " + path + "\n";
    res.rc = 1;
    return res;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  ird::Result<ird::ParsedDatabase> parsed =
      ird::ParseDatabaseText(buffer.str());
  if (!parsed.ok()) {
    res.err =
        "ird_lint: " + path + ": " + parsed.status().ToString() + "\n";
    res.rc = 1;
    return res;
  }
  const ird::DatabaseScheme& scheme = parsed->scheme;
  // Attribute everything this file's analysis records to a per-file
  // context; with --stats the per-file delta is appended to the buffered
  // stderr payload (input-ordered, like every other output).
  ird::obs::ObsContext ctx(path);
  ird::SchemeAnalysis analysis(scheme);
  ird::diagnostics::LintReport report =
      ird::diagnostics::LintScheme(analysis, opts.lint);

  std::vector<ird::Status> verification;
  if (opts.verify) {
    verification.reserve(report.diagnostics.size());
    for (const ird::diagnostics::Diagnostic& d : report.diagnostics) {
      verification.push_back(ird::diagnostics::VerifyWitness(scheme, d));
      if (!verification.back().ok()) {
        res.err += "ird_lint: " + path + ": UNVERIFIED witness [" +
                   d.Signature(scheme) + "]: " +
                   verification.back().ToString() + "\n";
        res.rc = 1;
      }
    }
  }

  if (opts.json) {
    res.out = ird::diagnostics::RenderJson(
                  scheme, report, path,
                  opts.verify ? &verification : nullptr) +
              "\n";
  } else {
    res.out = "== " + path + " ==\n" +
              ird::diagnostics::RenderText(scheme, report);
    if (opts.verify && res.rc == 0 && !report.diagnostics.empty()) {
      res.out += "all " + std::to_string(report.diagnostics.size()) +
                 " witness(es) verified\n";
    }
  }
  if (opts.stats) {
    res.err += "--- stats: " + path + " ---\n" +
               ird::obs::RenderText(ird::obs::ContextSnapshot(ctx));
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      opts.json = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      opts.verify = true;
    } else if (std::strcmp(argv[i], "--no-instances") == 0) {
      opts.lint.build_instance_witnesses = false;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      opts.stats = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) return Usage();
      long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 1) {
        std::fprintf(stderr, "ird_lint: --jobs wants a positive integer\n");
        return Usage();
      }
      opts.jobs = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "ird_lint: unknown flag %s\n", argv[i]);
      return Usage();
    } else {
      opts.files.emplace_back(argv[i]);
    }
  }
  if (opts.files.empty()) return Usage();

  std::vector<FileResult> results(opts.files.size());
  {
    ird::BatchAnalyzer batch(opts.jobs);
    batch.ForEachIndex(opts.files.size(), [&](size_t i) {
      results[i] = LintFile(opts, opts.files[i]);
    });
  }

  int rc = 0;
  for (const FileResult& res : results) {
    if (!res.err.empty()) std::fputs(res.err.c_str(), stderr);
    if (!res.out.empty()) std::fputs(res.out.c_str(), stdout);
    if (res.rc != 0) rc = 1;
  }
  if (opts.stats) {
    std::fprintf(stderr, "=== engine instrumentation summary ===\n%s",
                 ird::obs::RenderText(ird::obs::TakeSnapshot()).c_str());
  }
  return rc;
}
