// ird_lint: witness-backed static analysis for database schemes.
//
//   ird_lint [--json] [--verify] [--no-instances] FILE...
//
// Each FILE is a `.scheme` text-format file (io/text_format.h grammar;
// `insert` lines are accepted and ignored). For every file the tool runs
// the full diagnostics rule registry (diagnostics/lint.h) and renders the
// report as text (default) or JSON (--json). With --verify every emitted
// witness is re-checked by the independent checker (diagnostics/verify.h);
// an unverifiable witness is a bug in the analyzer and fails the run.
//
// Exit status: 0 = all files linted (diagnostics may exist); 1 = a file
// failed to parse or a witness failed verification; 2 = usage error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "diagnostics/lint.h"
#include "diagnostics/render.h"
#include "diagnostics/verify.h"
#include "io/text_format.h"
#include "obs/export.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ird_lint [--json] [--verify] [--no-instances] "
               "[--stats] FILE...\n"
               "  --json          machine-readable output, one JSON object "
               "per file\n"
               "  --verify        re-check every witness with the "
               "independent verifier\n"
               "  --no-instances  skip adversarial instance construction "
               "for split keys\n"
               "  --stats         print the engine counter/span summary to "
               "stderr at the end\n");
  return 2;
}

struct Options {
  bool json = false;
  bool verify = false;
  bool stats = false;
  ird::diagnostics::LintOptions lint;
  std::vector<std::string> files;
};

// Returns 0 on success, 1 on parse failure or witness-verification failure.
int LintFile(const Options& opts, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ird_lint: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  ird::Result<ird::ParsedDatabase> parsed =
      ird::ParseDatabaseText(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "ird_lint: %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }
  const ird::DatabaseScheme& scheme = parsed->scheme;
  ird::diagnostics::LintReport report =
      ird::diagnostics::LintScheme(scheme, opts.lint);

  int rc = 0;
  std::vector<ird::Status> verification;
  if (opts.verify) {
    verification.reserve(report.diagnostics.size());
    for (const ird::diagnostics::Diagnostic& d : report.diagnostics) {
      verification.push_back(ird::diagnostics::VerifyWitness(scheme, d));
      if (!verification.back().ok()) {
        std::fprintf(stderr, "ird_lint: %s: UNVERIFIED witness [%s]: %s\n",
                     path.c_str(), d.Signature(scheme).c_str(),
                     verification.back().ToString().c_str());
        rc = 1;
      }
    }
  }

  if (opts.json) {
    std::printf("%s\n",
                ird::diagnostics::RenderJson(
                    scheme, report, path,
                    opts.verify ? &verification : nullptr)
                    .c_str());
  } else {
    std::printf("== %s ==\n%s", path.c_str(),
                ird::diagnostics::RenderText(scheme, report).c_str());
    if (opts.verify && rc == 0 && !report.diagnostics.empty()) {
      std::printf("all %zu witness(es) verified\n",
                  report.diagnostics.size());
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      opts.json = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      opts.verify = true;
    } else if (std::strcmp(argv[i], "--no-instances") == 0) {
      opts.lint.build_instance_witnesses = false;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      opts.stats = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "ird_lint: unknown flag %s\n", argv[i]);
      return Usage();
    } else {
      opts.files.emplace_back(argv[i]);
    }
  }
  if (opts.files.empty()) return Usage();
  int rc = 0;
  for (const std::string& file : opts.files) {
    if (LintFile(opts, file) != 0) rc = 1;
  }
  if (opts.stats) {
    std::fprintf(stderr, "=== engine instrumentation summary ===\n%s",
                 ird::obs::RenderText(ird::obs::TakeSnapshot()).c_str());
  }
  return rc;
}
