// Experiment E4 (EXPERIMENTS.md): the structural analyses are cheap.
//  - Lemma 3.8's split test (polynomial closure computations) vs the
//    definitional search (exponential BFS over computation states).
//  - KEP partition refinement scaling.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/kep.h"
#include "core/split.h"
#include "workload/generators.h"

namespace ird {
namespace {

void BM_SplitTest_Lemma38(benchmark::State& bench) {
  DatabaseScheme scheme = MakeSplitScheme(static_cast<size_t>(bench.range(0)));
  for (auto _ : bench) {
    std::vector<AttributeSet> split = SplitKeys(scheme);
    benchmark::DoNotOptimize(split);
    IRD_CHECK(split.size() == 1);
  }
  bench.counters["relations"] = static_cast<double>(scheme.size());
}
BENCHMARK(BM_SplitTest_Lemma38)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(12);

void BM_SplitTest_Definitional(benchmark::State& bench) {
  // The exponential reference implementation; only small sizes.
  DatabaseScheme scheme = MakeSplitScheme(static_cast<size_t>(bench.range(0)));
  const auto keys = scheme.AllKeys();
  for (auto _ : bench) {
    size_t split = 0;
    for (const auto& [rel, key] : keys) {
      split += IsKeySplitByDefinition(scheme, key) ? 1 : 0;
    }
    benchmark::DoNotOptimize(split);
    IRD_CHECK(split == 1);
  }
  bench.counters["relations"] = static_cast<double>(scheme.size());
}
BENCHMARK(BM_SplitTest_Definitional)->Arg(2)->Arg(3)->Arg(4);

void BM_Kep_Partition(benchmark::State& bench) {
  DatabaseScheme scheme =
      MakeBlockScheme(static_cast<size_t>(bench.range(0)), 4);
  for (auto _ : bench) {
    auto partition = KeyEquivalentPartition(scheme);
    benchmark::DoNotOptimize(partition);
    IRD_CHECK(partition.size() == static_cast<size_t>(bench.range(0)));
  }
  bench.counters["relations"] = static_cast<double>(scheme.size());
}
BENCHMARK(BM_Kep_Partition)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_Kep_SingletonHeavy(benchmark::State& bench) {
  // Independent snowflakes: KEP degenerates to all-singleton blocks, the
  // deepest recursion shape.
  DatabaseScheme scheme =
      MakeIndependentScheme(static_cast<size_t>(bench.range(0)));
  for (auto _ : bench) {
    auto partition = KeyEquivalentPartition(scheme);
    benchmark::DoNotOptimize(partition);
    IRD_CHECK(partition.size() == static_cast<size_t>(bench.range(0)));
  }
}
BENCHMARK(BM_Kep_SingletonHeavy)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace ird

IRD_BENCHMARK_MAIN();
