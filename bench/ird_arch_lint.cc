// ird_arch_lint: include-graph layering checker. Scans C++ sources under
// one or more roots, extracts every quoted #include, maps both endpoints
// to src/ modules (first path component), and checks the edges against the
// declarative spec in docs/layering.txt: per-module allow-lists in stack
// order, hard forbid pairs, facade headers, and per-file waivers (which
// are themselves checked for staleness). A pure text scan — no compiler,
// no compile_commands.json — so the gate runs identically on any host.
//
//   ird_arch_lint [--spec FILE] [--json] [--quiet] DIR...
//
//   --spec FILE  layering spec (default: docs/layering.txt)
//   --json       machine-readable report on stdout (the CI gate's format)
//   --quiet      suppress the ok-summary on success
//
// Each violation is reported with the offending include site and, when
// the edge is buried in a header, the include chain that drags it into a
// translation unit (entry .cc -> header -> ... -> offending include).
//
// Exit status: 0 = clean, 1 = violations, 2 = usage/spec/IO error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Spec {
  // Module name -> rank (declaration order) and allowed dep modules.
  std::vector<std::string> order;
  std::map<std::string, std::set<std::string>> allow;
  std::set<std::pair<std::string, std::string>> forbid;
  // Facade module -> the headers outsiders may include.
  std::map<std::string, std::set<std::string>> facade;
  // (file, to-module) -> rationale; `used` tracks staleness.
  struct Waiver {
    std::string rationale;
    bool used = false;
  };
  std::map<std::pair<std::string, std::string>, Waiver> waivers;

  bool HasModule(const std::string& m) const { return allow.count(m) > 0; }
};

struct IncludeEdge {
  std::string file;  // root-relative path of the including file
  int line;
  std::string header;  // the quoted include string, src-relative
};

struct Violation {
  std::string file;
  int line;
  std::string header;
  std::string rule;  // "layer" | "forbid" | "facade" | "stale-waiver"
  std::string message;
  std::vector<std::string> chain;  // entry .cc first, offending file last
};

std::vector<std::string> SplitWs(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

// Parses the spec. Directives may continue onto lines that start with
// whitespace (used for waiver rationales).
bool ParseSpec(const std::string& path, Spec* spec, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open spec " + path;
    return false;
  }
  std::vector<std::string> directives;
  std::string line;
  while (std::getline(in, line)) {
    if (size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    bool continuation = !line.empty() && (line[0] == ' ' || line[0] == '\t');
    std::vector<std::string> tokens = SplitWs(line);
    if (tokens.empty()) continue;
    std::string joined;
    for (const std::string& t : tokens) {
      if (!joined.empty()) joined += ' ';
      joined += t;
    }
    if (continuation && !directives.empty()) {
      directives.back() += ' ' + joined;
    } else {
      directives.push_back(joined);
    }
  }
  for (const std::string& d : directives) {
    std::vector<std::string> tok = SplitWs(d);
    const std::string& kind = tok[0];
    if (kind == "module") {
      if (tok.size() < 3 || tok[2] != ":") {
        *error = "bad module directive: " + d;
        return false;
      }
      const std::string& name = tok[1];
      if (spec->HasModule(name)) {
        *error = "module declared twice: " + name;
        return false;
      }
      std::set<std::string> deps;
      for (size_t i = 3; i < tok.size(); ++i) {
        if (!spec->HasModule(tok[i])) {
          // Deps must be declared earlier, which keeps the spec acyclic.
          *error = "module " + name + " depends on undeclared (or later) " +
                   "module " + tok[i];
          return false;
        }
        deps.insert(tok[i]);
      }
      spec->order.push_back(name);
      spec->allow[name] = std::move(deps);
    } else if (kind == "forbid") {
      if (tok.size() != 3) {
        *error = "bad forbid directive: " + d;
        return false;
      }
      spec->forbid.insert({tok[1], tok[2]});
    } else if (kind == "facade") {
      if (tok.size() < 4 || tok[2] != ":") {
        *error = "bad facade directive: " + d;
        return false;
      }
      for (size_t i = 3; i < tok.size(); ++i) {
        spec->facade[tok[1]].insert(tok[i]);
      }
    } else if (kind == "except") {
      if (tok.size() < 4 || tok[3] != ":") {
        *error = "bad except directive (need: except FILE MODULE : why): " +
                 d;
        return false;
      }
      std::string rationale;
      for (size_t i = 4; i < tok.size(); ++i) {
        if (!rationale.empty()) rationale += ' ';
        rationale += tok[i];
      }
      spec->waivers[{tok[1], tok[2]}] = Spec::Waiver{rationale, false};
    } else {
      *error = "unknown directive: " + d;
      return false;
    }
  }
  return true;
}

std::string ModuleOf(const std::string& path) {
  size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// Scans one root; paths are reported root-relative with '/' separators.
bool ScanRoot(const fs::path& root, std::vector<IncludeEdge>* edges,
              std::set<std::string>* files, std::string* error) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    *error = "not a directory: " + root.string();
    return false;
  }
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      *error = "walking " + root.string() + ": " + ec.message();
      return false;
    }
    if (!it->is_regular_file()) continue;
    std::string ext = it->path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    std::string rel =
        it->path().lexically_relative(root).generic_string();
    files->insert(rel);
    std::ifstream in(it->path());
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      size_t pos = line.find_first_not_of(" \t");
      if (pos == std::string::npos || line[pos] != '#') continue;
      size_t inc = line.find("include", pos + 1);
      if (inc == std::string::npos) continue;
      size_t open = line.find('"', inc);
      if (open == std::string::npos) continue;
      size_t close = line.find('"', open + 1);
      if (close == std::string::npos) continue;
      edges->push_back(
          IncludeEdge{rel, lineno, line.substr(open + 1, close - open - 1)});
    }
  }
  return true;
}

// Shortest path from any entry .cc to `target` through the scanned
// include graph, so a violation buried in a header is reported with the
// chain that pulls it into a translation unit.
std::vector<std::string> ChainTo(
    const std::string& target,
    const std::map<std::string, std::vector<std::string>>& reverse_includes) {
  if (target.size() > 3 && target.rfind(".cc") == target.size() - 3) {
    return {target};
  }
  std::map<std::string, std::string> parent;
  std::vector<std::string> queue{target};
  parent[target] = target;
  for (size_t head = 0; head < queue.size(); ++head) {
    const std::string cur = queue[head];
    auto it = reverse_includes.find(cur);
    if (it == reverse_includes.end()) continue;
    for (const std::string& from : it->second) {
      if (parent.count(from)) continue;
      parent[from] = cur;
      if (from.rfind(".cc") == from.size() - 3) {
        std::vector<std::string> chain;
        for (std::string p = from;; p = parent[p]) {
          chain.push_back(p);
          if (p == target) break;
        }
        return chain;
      }
      queue.push_back(from);
    }
  }
  return {target};
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path = "docs/layering.txt";
  bool json = false;
  bool quiet = false;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: ird_arch_lint [--spec FILE] [--json] [--quiet] "
                   "DIR...\n");
      return 2;
    } else {
      roots.emplace_back(argv[i]);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "ird_arch_lint: no scan roots given\n");
    return 2;
  }

  Spec spec;
  std::string error;
  if (!ParseSpec(spec_path, &spec, &error)) {
    std::fprintf(stderr, "ird_arch_lint: %s\n", error.c_str());
    return 2;
  }

  std::vector<IncludeEdge> edges;
  std::set<std::string> files;
  for (const fs::path& root : roots) {
    if (!ScanRoot(root, &edges, &files, &error)) {
      std::fprintf(stderr, "ird_arch_lint: %s\n", error.c_str());
      return 2;
    }
  }

  // file -> files that include it (both sides root-relative), for chain
  // reconstruction. Include strings are src-relative, which matches the
  // root-relative name when the scan root is src/ (or mimics its layout).
  std::map<std::string, std::vector<std::string>> reverse_includes;
  for (const IncludeEdge& e : edges) {
    if (files.count(e.header)) {
      reverse_includes[e.header].push_back(e.file);
    }
  }

  std::vector<Violation> violations;
  auto waived = [&](const std::string& file, const std::string& to) {
    auto it = spec.waivers.find({file, to});
    if (it == spec.waivers.end()) return false;
    it->second.used = true;
    return true;
  };

  for (const IncludeEdge& e : edges) {
    const std::string from = ModuleOf(e.file);
    const std::string to = ModuleOf(e.header);
    if (!spec.HasModule(to)) continue;  // not a layered include
    if (from == to) continue;

    auto report = [&](const char* rule, std::string message) {
      violations.push_back(Violation{e.file, e.line, e.header, rule,
                                     std::move(message),
                                     ChainTo(e.file, reverse_includes)});
    };

    if (spec.forbid.count({from, to})) {
      if (!waived(e.file, to)) {
        report("forbid",
               "module '" + from + "' may never include module '" + to +
                   "' (hard ban)");
      }
      continue;
    }
    if (spec.HasModule(from) && !spec.allow.at(from).count(to)) {
      if (!waived(e.file, to)) {
        report("layer", "module '" + from + "' does not list '" + to +
                            "' as a dependency in the layering spec");
      }
      continue;
    }
    auto fac = spec.facade.find(to);
    if (fac != spec.facade.end() && !fac->second.count(e.header)) {
      if (!waived(e.file, to)) {
        std::string doors;
        for (const std::string& h : fac->second) {
          if (!doors.empty()) doors += " or ";
          doors += h;
        }
        report("facade", "'" + e.header + "' is internal to module '" + to +
                             "'; include " + doors + " instead");
      }
    }
  }

  // A waiver nobody needs is rot waiting to hide a future violation.
  for (const auto& [key, waiver] : spec.waivers) {
    if (!waiver.used && files.count(key.first)) {
      violations.push_back(Violation{
          key.first, 0, "", "stale-waiver",
          "waiver for includes of '" + key.second +
              "' is unused; delete it from the spec",
          {key.first}});
    }
  }

  std::stable_sort(violations.begin(), violations.end(),
                   [](const Violation& a, const Violation& b) {
                     return std::tie(a.file, a.line) <
                            std::tie(b.file, b.line);
                   });

  if (json) {
    std::printf("{\n  \"files_scanned\": %zu,\n  \"includes\": %zu,\n",
                files.size(), edges.size());
    std::printf("  \"violations\": [");
    for (size_t i = 0; i < violations.size(); ++i) {
      const Violation& v = violations[i];
      std::printf("%s\n    {\"file\": \"%s\", \"line\": %d, "
                  "\"include\": \"%s\", \"rule\": \"%s\", "
                  "\"message\": \"%s\", \"chain\": [",
                  i ? "," : "", JsonEscape(v.file).c_str(), v.line,
                  JsonEscape(v.header).c_str(), v.rule.c_str(),
                  JsonEscape(v.message).c_str());
      for (size_t j = 0; j < v.chain.size(); ++j) {
        std::printf("%s\"%s\"", j ? ", " : "",
                    JsonEscape(v.chain[j]).c_str());
      }
      std::printf("]}");
    }
    std::printf("%s]\n}\n", violations.empty() ? "" : "\n  ");
  } else {
    for (const Violation& v : violations) {
      if (v.line > 0) {
        std::printf("%s:%d: #include \"%s\": %s [%s]\n", v.file.c_str(),
                    v.line, v.header.c_str(), v.message.c_str(),
                    v.rule.c_str());
      } else {
        std::printf("%s: %s [%s]\n", v.file.c_str(), v.message.c_str(),
                    v.rule.c_str());
      }
      if (v.chain.size() > 1) {
        std::printf("  include chain:");
        for (const std::string& hop : v.chain) {
          std::printf(" %s ->", hop.c_str());
        }
        std::printf(" %s\n", v.header.c_str());
      }
    }
    if (!quiet || !violations.empty()) {
      std::printf("ird_arch_lint: %zu file(s), %zu include(s), "
                  "%zu violation(s)\n",
                  files.size(), edges.size(), violations.size());
    }
  }
  return violations.empty() ? 0 : 1;
}
