// Experiment E6 (EXPERIMENTS.md): Example 2 made quantitative. The scheme
// {R1(AB), R2(BC), R3(AC)} with F = {A -> C, B -> C} is NOT
// algebraic-maintainable: rejecting the insert <a_n, c'> requires walking
// the entire zig-zag chain in r1, so the only correct maintenance procedure
// (the chase) pays time proportional to the state. For contrast, the same
// adversarial growth on the independence-reducible Example 4 scheme leaves
// Algorithm 2's per-insert cost flat.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/key_equivalent_maintainer.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"

namespace ird {
namespace {

// The Example 2 adversarial state: r3 = {<a_0, c_0>} plus a zig-zag
// a_0 -b_0- a_1 -b_1- ... -b_{n-1}- a_n in r1. The insert <a_n, c'> is
// inconsistent, and every zig-zag tuple is needed to see it.
DatabaseState Example2ZigZag(const DatabaseScheme& scheme, size_t n) {
  DatabaseState state(scheme);
  state.Insert("R3", {1000, 1});
  for (size_t i = 0; i < n; ++i) {
    state.Insert("R1", {static_cast<Value>(1000 + i),
                        static_cast<Value>(500000 + i)});
    state.Insert("R1", {static_cast<Value>(1000 + i + 1),
                        static_cast<Value>(500000 + i)});
  }
  return state;
}

void BM_Example2_RejectInsert(benchmark::State& bench) {
  DatabaseScheme scheme = test::Example2();
  size_t n = static_cast<size_t>(bench.range(0));
  DatabaseState state = Example2ZigZag(scheme, n);
  PartialTuple insert =
      test::Tuple(scheme, "AC", {static_cast<Value>(1000 + n), 2});
  for (auto _ : bench) {
    bool verdict = WouldRemainConsistent(state, 2, insert);
    benchmark::DoNotOptimize(verdict);
    IRD_CHECK(!verdict);
  }
  bench.counters["chain"] = static_cast<double>(n);
  bench.counters["tuples"] = static_cast<double>(state.TupleCount());
}
BENCHMARK(BM_Example2_RejectInsert)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

// Contrast: Example 4's scheme under the same kind of growth (many EB
// tuples sharing B, as in Example 5's state). Algorithm 2 rejects the
// Example 7 insert in flat time because the representative-instance index
// absorbs the state.
void BM_Example4_Alg2RejectInsert(benchmark::State& bench) {
  DatabaseScheme scheme = test::Example4();
  size_t n = static_cast<size_t>(bench.range(0));
  constexpr Value a = 1, b = 2, c = 3;
  DatabaseState state(scheme);
  state.mutable_relation(0).Add(test::Tuple(scheme, "AB", {a, b}));
  state.mutable_relation(1).Add(test::Tuple(scheme, "AC", {a, c}));
  for (size_t i = 0; i < n; ++i) {
    state.mutable_relation(3).Add(
        test::Tuple(scheme, "EB", {static_cast<Value>(100 + i), b}));
  }
  // e1 = 100 links through EC.
  state.mutable_relation(4).Add(test::Tuple(scheme, "EC", {100, c}));
  auto m = KeyEquivalentMaintainer::Create(std::move(state));
  IRD_CHECK(m.ok());
  PartialTuple insert = test::Tuple(scheme, "AE", {a, 999999});
  for (auto _ : bench) {
    auto verdict = m->CheckInsert(2, insert);
    benchmark::DoNotOptimize(verdict);
    IRD_CHECK(!verdict.ok());
  }
  bench.counters["chain"] = static_cast<double>(n);
  bench.counters["tuples"] = static_cast<double>(m->state().TupleCount());
}
BENCHMARK(BM_Example4_Alg2RejectInsert)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

// The naive chase on the same Example 4 state, to complete the picture.
void BM_Example4_NaiveRejectInsert(benchmark::State& bench) {
  DatabaseScheme scheme = test::Example4();
  size_t n = static_cast<size_t>(bench.range(0));
  constexpr Value a = 1, b = 2, c = 3;
  DatabaseState state(scheme);
  state.mutable_relation(0).Add(test::Tuple(scheme, "AB", {a, b}));
  state.mutable_relation(1).Add(test::Tuple(scheme, "AC", {a, c}));
  for (size_t i = 0; i < n; ++i) {
    state.mutable_relation(3).Add(
        test::Tuple(scheme, "EB", {static_cast<Value>(100 + i), b}));
  }
  state.mutable_relation(4).Add(test::Tuple(scheme, "EC", {100, c}));
  PartialTuple insert = test::Tuple(scheme, "AE", {a, 999999});
  for (auto _ : bench) {
    bool verdict = WouldRemainConsistent(state, 2, insert);
    benchmark::DoNotOptimize(verdict);
    IRD_CHECK(!verdict);
  }
  bench.counters["chain"] = static_cast<double>(n);
}
BENCHMARK(BM_Example4_NaiveRejectInsert)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace ird

IRD_BENCHMARK_MAIN();
