// Memory-substrate microbenchmarks: the primitive operations the PR9
// refactor targets, isolated from the algorithms above them. Set algebra on
// inline vs spilled AttributeSets, subset probes, warm closure queries
// against the CSR index, a struct-of-arrays row scan, and the end-to-end
// state-tableau chase that exercises the arena. The substrate workload in
// ird_stats records the same paths with counters; this binary gives them
// wall-clock numbers.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "base/attribute_set.h"
#include "fd/closure_engine.h"
#include "relation/weak_instance.h"
#include "tableau/chase.h"
#include "workload/generators.h"

namespace ird {
namespace {

// Union of two interleaved sets that fit the two inline words (< 128).
void BM_SetUnionInline(benchmark::State& bench) {
  AttributeSet a;
  AttributeSet b;
  for (AttributeId i = 0; i < 120; i += 2) {
    a.Add(i);
    b.Add(i + 1);
  }
  for (auto _ : bench) {
    AttributeSet u = a;
    u.UnionWith(b);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SetUnionInline);

// Same shape past the spill threshold: the operands live on the heap and
// the copy re-compacts into an exact-size allocation.
void BM_SetUnionSpilled(benchmark::State& bench) {
  AttributeSet a;
  AttributeSet b;
  for (AttributeId i = 0; i < 400; i += 2) {
    a.Add(i);
    b.Add(i + 1);
  }
  for (auto _ : bench) {
    AttributeSet u = a;
    u.UnionWith(b);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SetUnionSpilled);

// Subset probes over a ladder of nested sets — the innermost loop of the
// KEP refinement and of Algorithm 2's key scan.
void BM_SetSubset(benchmark::State& bench) {
  std::vector<AttributeSet> ladder;
  AttributeSet acc;
  for (AttributeId i = 0; i < 96; ++i) {
    acc.Add(i);
    if (i % 8 == 7) ladder.push_back(acc);
  }
  for (auto _ : bench) {
    size_t hits = 0;
    for (size_t i = 0; i < ladder.size(); ++i) {
      for (size_t j = 0; j < ladder.size(); ++j) {
        hits += ladder[i].IsSubsetOf(ladder[j]) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SetSubset);

// Warm closure queries: the engine's CSR index and reused scratch make
// each call allocation-free (tests/allocation_test.cc proves it; this
// measures it).
void BM_ClosureWarm(benchmark::State& bench) {
  DatabaseScheme scheme = MakeChainScheme(16);
  ClosureEngine engine(scheme.key_dependencies());
  AttributeSet seed = scheme.relation(0).attrs;
  benchmark::DoNotOptimize(engine.Closure(seed));  // size the scratch
  for (auto _ : bench) {
    AttributeSet closure = engine.Closure(seed);
    benchmark::DoNotOptimize(closure);
  }
}
BENCHMARK(BM_ClosureWarm);

// Row scan over the struct-of-arrays cell buffer: one contiguous strip per
// row, no per-row indirection.
void BM_TableauRowScan(benchmark::State& bench) {
  DatabaseScheme scheme = MakeChainScheme(12);
  StateGenOptions opt;
  opt.entities = 300;
  opt.seed = 23;
  DatabaseState state = MakeConsistentState(scheme, opt);
  Tableau t = StateTableau(state);
  for (auto _ : bench) {
    uint64_t sum = 0;
    for (size_t r = 0; r < t.row_count(); ++r) {
      for (SymId s : t.Row(r)) sum += s;
    }
    benchmark::DoNotOptimize(sum);
  }
  bench.counters["rows"] = static_cast<double>(t.row_count());
}
BENCHMARK(BM_TableauRowScan);

// End-to-end substrate path: materialize the state tableau and chase it.
// Every structure the chase touches — cells, symbols, merge log, engine
// indexes — lives on an arena sized before the worklist drain.
void BM_ChaseStateTableau(benchmark::State& bench) {
  DatabaseScheme scheme = MakeChainScheme(12);
  StateGenOptions opt;
  opt.entities = static_cast<size_t>(bench.range(0));
  opt.seed = 23;
  DatabaseState state = MakeConsistentState(scheme, opt);
  for (auto _ : bench) {
    Tableau t = StateTableau(state);
    ChaseStats stats = ChaseFds(&t, scheme.key_dependencies());
    benchmark::DoNotOptimize(stats);
    IRD_CHECK(stats.consistent);
  }
  bench.counters["tuples"] = static_cast<double>(state.TupleCount());
}
BENCHMARK(BM_ChaseStateTableau)->Arg(50)->Arg(200)->Arg(800);

}  // namespace
}  // namespace ird

IRD_BENCHMARK_MAIN();
