// Standalone differential-fuzzing campaign runner — the long-haul sibling
// of tests/differential_fuzz_test.cc. Sweeps every generator family plus
// random mutation stacks against the oracle layer, shrinks disagreements
// and writes them into a corpus directory.
//
//   fuzz_driver [--seed N] [--count N] [--corpus DIR] [--max-relations N]
//               [--mutations N] [--no-shrink] [--jobs N]
//
//   --seed N           base seed (default 1)
//   --count N          schemes per family (default 2000)
//   --corpus DIR       where shrunk repros go (default tests/corpus)
//   --max-relations N  skip schemes larger than this (default 10)
//   --mutations N      max mutation stack per scheme (default 3)
//   --no-shrink        write the unshrunk scheme (faster triage)
//   --jobs N           compare/shrink on N worker threads (default 1)
//
// The campaign is deterministic in (seed, count) regardless of --jobs:
// schemes are generated serially per family (one RNG stream each), the
// oracle comparisons and shrinking fan out over a BatchAnalyzer pool, and
// all reporting — stderr lines, corpus writes, per-repro counter headers —
// happens serially afterwards in generation order.
//
// Exit status: 0 = full agreement, 1 = disagreements found (repros
// written), 2 = bad usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "diagnostics/verify.h"
#include "engine/batch.h"
#include "obs/export.h"
#include "oracle/chase_check.h"
#include "oracle/corpus.h"
#include "oracle/differential.h"
#include "oracle/mutate.h"
#include "oracle/shrink.h"
#include "workload/generators.h"

namespace ird::oracle {
namespace {

struct Args {
  uint64_t seed = 1;
  size_t count = 2000;
  std::string corpus = "tests/corpus";
  size_t max_relations = 10;
  size_t mutations = 3;
  bool shrink = true;
  size_t jobs = 1;
};

struct Family {
  const char* name;
  DatabaseScheme (*make)(size_t i, std::mt19937_64* rng);
};

const Family kFamilies[] = {
    {"chain",
     [](size_t, std::mt19937_64* rng) {
       return MakeChainScheme(2 + (*rng)() % 6);
     }},
    {"split",
     [](size_t, std::mt19937_64* rng) {
       return MakeSplitScheme(2 + (*rng)() % 2);
     }},
    {"independent",
     [](size_t, std::mt19937_64* rng) {
       return MakeIndependentScheme(1 + (*rng)() % 6);
     }},
    {"block",
     [](size_t, std::mt19937_64* rng) {
       return MakeBlockScheme(1 + (*rng)() % 3, 2 + (*rng)() % 2);
     }},
    {"star",
     [](size_t, std::mt19937_64* rng) {
       return MakeStarScheme(1 + (*rng)() % 6);
     }},
    {"tree",
     [](size_t, std::mt19937_64* rng) {
       return MakeTreeScheme(2 + (*rng)() % 6, ((*rng)() % 3) / 2.0,
                             (*rng)());
     }},
    {"random",
     [](size_t, std::mt19937_64* rng) {
       RandomSchemeOptions opt;
       opt.universe_size = 5 + (*rng)() % 4;
       opt.relations = 3 + (*rng)() % 4;
       opt.min_arity = 2;
       opt.max_arity = 3 + (*rng)() % 2;
       opt.multi_key_prob = ((*rng)() % 3) * 0.3;
       opt.seed = (*rng)();
       return MakeRandomScheme(opt);
     }},
};

std::string Sanitize(std::string tag) {
  for (char& c : tag) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '-';
  }
  return tag;
}

// Engine-counter header line for a shrunk repro: the counters the repro's
// own comparison run bumps, so a reader sees how much engine work the
// disagreement takes to reproduce (and which engines it reaches at all).
std::string CounterHeaderLine(const DatabaseScheme& repro,
                              const DifferentialOptions& opt) {
  // The context scopes the tally to exactly this comparison run, so the
  // header is correct even with concurrent counter traffic elsewhere.
  obs::ObsContext ctx("fuzz.repro");
  (void)CompareAgainstOracles(repro, opt);
  obs::Snapshot delta = obs::ContextSnapshot(ctx);
  std::string line = "counters:";
  if (delta.counters.empty()) return line + " (none)";
  for (const auto& [name, value] : delta.counters) {
    line += " " + name + "=" + std::to_string(value);
  }
  return line;
}

// One generated scheme that survived validation, plus what the (possibly
// parallel) comparison phase found out about it.
struct Candidate {
  size_t family;  // index into kFamilies
  size_t iter;    // iteration within the family
  DatabaseScheme scheme;
  // Filled by the comparison phase:
  Status lint_status;
  Status chase_status;
  std::vector<Disagreement> found;
  // Shrunk (or original) scheme, engaged iff found is nonempty.
  std::optional<DatabaseScheme> repro;
};

int Run(const Args& args) {
  // Phase 1 — serial generation. Each family consumes one RNG stream for
  // both generation and mutation, so the candidate list is a pure function
  // of (seed, count) no matter how many jobs run later.
  std::vector<Candidate> candidates;
  size_t skipped = 0;
  std::vector<size_t> family_tested(std::size(kFamilies), 0);
  for (size_t f = 0; f < std::size(kFamilies); ++f) {
    const Family& family = kFamilies[f];
    std::mt19937_64 rng(args.seed ^ std::hash<std::string>{}(family.name));
    for (size_t i = 0; i < args.count; ++i) {
      DatabaseScheme scheme = family.make(i, &rng);
      size_t stack = rng() % (args.mutations + 1);
      for (size_t m = 0; m < stack; ++m) {
        DatabaseScheme mutant = MutateScheme(scheme, &rng);
        if (mutant.Validate().ok() && mutant.size() > 0) {
          scheme = std::move(mutant);
        }
      }
      if (!scheme.Validate().ok() || scheme.size() > args.max_relations) {
        ++skipped;
        continue;
      }
      ++family_tested[f];
      candidates.push_back(Candidate{f, i, std::move(scheme), {}, {}, {}, {}});
    }
  }

  // Phase 2 — comparison and shrinking, fanned out over the pool. Each
  // candidate is touched by exactly one worker (its DatabaseScheme's lazy
  // FD cache is not thread-safe); the only shared state the payload
  // reaches is the obs counter registry, which is atomic.
  {
    BatchAnalyzer batch(args.jobs);
    batch.ForEachIndex(candidates.size(), [&](size_t c) {
      Candidate& cand = candidates[c];
      // One fuzz iteration = one operation scope; everything the checks
      // below record attributes to this candidate.
      obs::ObsContext ctx(std::string(kFamilies[cand.family].name) + "/" +
                          std::to_string(cand.iter));
      // Lint self-check: the diagnostics engine must not crash and every
      // witness it emits must pass the independent verifier. A failure is
      // triaged exactly like an oracle disagreement.
      cand.lint_status = diagnostics::LintSelfCheck(cand.scheme);
      // Chase self-check: the delta-driven, pass-based and exhaustive
      // pairwise chases must agree on the candidate's tableaux.
      cand.chase_status = ChaseSelfCheck(cand.scheme, args.seed + cand.iter);
      DifferentialOptions opt;
      opt.seed = args.seed + cand.iter;
      cand.found = CompareAgainstOracles(cand.scheme, opt);
      if (cand.found.empty()) return;
      cand.repro = cand.scheme;
      if (args.shrink) {
        const std::string& routine = cand.found[0].routine;
        cand.repro = ShrinkScheme(cand.scheme, [&](const DatabaseScheme& s) {
          return DisagreesOn(s, opt, routine);
        });
      }
    });
  }

  // Phase 3 — serial reporting in generation order: stderr lines, corpus
  // writes and the per-repro counter headers (which re-run the comparison
  // under an operation-scoped context, so the tallies are exact even when
  // other counter traffic exists).
  size_t total = candidates.size(), disagreements = 0;
  size_t next_candidate = 0;
  for (size_t f = 0; f < std::size(kFamilies); ++f) {
    const Family& family = kFamilies[f];
    for (; next_candidate < candidates.size() &&
           candidates[next_candidate].family == f;
         ++next_candidate) {
      const Candidate& cand = candidates[next_candidate];
      const size_t i = cand.iter;
      if (!cand.lint_status.ok()) {
        ++disagreements;
        std::fprintf(stderr, "[%s/%zu] diagnostics/verify: %s\n", family.name,
                     i, cand.lint_status.ToString().c_str());
        std::string name = std::string("diagnostics-verify-") + family.name +
                           "-s" + std::to_string(args.seed) + "-" +
                           std::to_string(i);
        Status written = WriteCorpusFile(
            args.corpus, name, cand.scheme,
            {"routine: diagnostics/verify",
             "detail: " + cand.lint_status.ToString(),
             "found by: fuzz_driver, " + std::string(family.name) +
                 " family, seed " + std::to_string(args.seed) +
                 ", iteration " + std::to_string(i),
             CounterHeaderLine(cand.scheme, DifferentialOptions{})});
        if (!written.ok()) {
          std::fprintf(stderr, "corpus write failed: %s\n",
                       written.ToString().c_str());
        }
      }
      if (!cand.chase_status.ok()) {
        ++disagreements;
        std::fprintf(stderr, "[%s/%zu] tableau/chase-self-check: %s\n",
                     family.name, i, cand.chase_status.ToString().c_str());
        std::string name = std::string("tableau-chase-self-check-") +
                           family.name + "-s" + std::to_string(args.seed) +
                           "-" + std::to_string(i);
        Status written = WriteCorpusFile(
            args.corpus, name, cand.scheme,
            {"routine: tableau/chase-self-check",
             "detail: " + cand.chase_status.ToString(),
             "found by: fuzz_driver, " + std::string(family.name) +
                 " family, seed " + std::to_string(args.seed) +
                 ", iteration " + std::to_string(i),
             CounterHeaderLine(cand.scheme, DifferentialOptions{})});
        if (!written.ok()) {
          std::fprintf(stderr, "corpus write failed: %s\n",
                       written.ToString().c_str());
        }
      }
      if (cand.found.empty()) continue;
      ++disagreements;
      const Disagreement& first = cand.found[0];
      std::fprintf(stderr, "[%s/%zu] %s: %s\n", family.name, i,
                   first.routine.c_str(), first.detail.c_str());
      DifferentialOptions opt;
      opt.seed = args.seed + i;
      std::string name = Sanitize(first.routine) + "-" + family.name + "-s" +
                         std::to_string(args.seed) + "-" + std::to_string(i);
      Status written = WriteCorpusFile(
          args.corpus, name, *cand.repro,
          {"routine: " + first.routine, "detail: " + first.detail,
           "found by: fuzz_driver, " + std::string(family.name) +
               " family, seed " + std::to_string(args.seed) + ", iteration " +
               std::to_string(i),
           CounterHeaderLine(*cand.repro, opt)});
      if (!written.ok()) {
        std::fprintf(stderr, "corpus write failed: %s\n",
                     written.ToString().c_str());
      } else {
        std::fprintf(stderr, "  repro: %s/%s.scheme\n", args.corpus.c_str(),
                     name.c_str());
      }
    }
    std::fprintf(stderr, "%-12s %zu schemes\n", family.name,
                 family_tested[f]);
  }
  std::fprintf(stderr,
               "done: %zu schemes tested, %zu skipped, %zu disagreements\n",
               total, skipped, disagreements);
  // Per-campaign engine accounting: what the sweep cost in chase probes,
  // closure work and oracle comparisons, and where the time went.
  std::fprintf(stderr, "=== campaign instrumentation summary ===\n%s",
               obs::RenderText(obs::TakeSnapshot()).c_str());
  return disagreements == 0 ? 0 : 1;
}

}  // namespace
}  // namespace ird::oracle

int main(int argc, char** argv) {
  ird::obs::InitFromEnv();
  ird::oracle::Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      args.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--count") == 0) {
      args.count = std::strtoull(next("--count"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--corpus") == 0) {
      args.corpus = next("--corpus");
    } else if (std::strcmp(argv[i], "--max-relations") == 0) {
      args.max_relations = std::strtoull(next("--max-relations"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--mutations") == 0) {
      args.mutations = std::strtoull(next("--mutations"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      args.shrink = false;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      args.jobs = std::strtoull(next("--jobs"), nullptr, 10);
      if (args.jobs == 0) args.jobs = 1;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  int rc = ird::oracle::Run(args);
  // IRD_TRACE_OUT/IRD_STATS_OUT exports; the campaign verdict wins the
  // exit code.
  (void)ird::obs::ExportFromEnv("fuzz_driver");
  return rc;
}
