// ird_stats: runs the standard engine workloads under full instrumentation
// and emits one machine-readable record per workload — the bench
// trajectory's data points (BENCH_PR3.json and successors). Each record is
//
//   {"bench": <name>, "config": {...}, "counters": {...}, "spans_us": {...}}
//
// where counters/spans_us are the workload's *delta* over the obs
// registries (obs/export.h). The full run doubles as a liveness gate for
// the instrumentation itself: --check fails if any counter a healthy
// engine must bump (chase.reprobes, closure.iterations, kep.rounds,
// recognition.independence_tests, ...) stayed zero — catching silently
// dead instrumentation in CI.
//
//   ird_stats [--out FILE] [--trace FILE] [--anchors DIR] [--jobs N]
//             [--scale N] [--only NAME] [--check] [--baseline FILE]
//             [--runs K] [--list]
//
//   --out FILE      write the JSON array there (default: stdout)
//   --trace FILE    record span events and write a chrome://tracing JSON
//   --anchors DIR   also classify every .scheme file under DIR (corpus
//                   anchors; exercises the io + diagnostics-facing paths)
//   --jobs N        classify the anchors on N worker threads
//                   (BatchAnalyzer; default 1)
//   --scale N       multiply per-workload repetition counts (default 1)
//   --only NAME     run only the named workload (--check needs a full run)
//   --check         exit 1 if a required counter is zero over the whole
//                   run; all dead counters are reported in one pass
//   --baseline F    the variance-aware regression gate: rerun the
//                   workloads (--runs times), compare against the
//                   committed BENCH_PR<n>.json record F — counters/counts
//                   exactly, span totals and histogram quantiles against
//                   speed-calibrated noise-scaled thresholds — and exit 1
//                   with a per-metric diff table on any regression
//                   (bench/regression_gate.h, docs/OBSERVABILITY.md)
//   --runs K        number of full reruns feeding the gate (default 3)
//   --list          print workload names and exit
//
// Each workload runs inside its own obs::ObsContext, so its record is the
// operation-scoped delta — pooled work (BatchAnalyzer) attributes to the
// workload that launched it regardless of --jobs.
//
// Exit status: 0 = ok, 1 = dead counter (--check), gate failure
// (--baseline) or write failure, 2 = usage error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/regression_gate.h"
#include "core/classify.h"
#include "core/recognition.h"
#include "core/sharded_maintainer.h"
#include "core/split.h"
#include "engine/batch.h"
#include "engine/scheme_analysis.h"
#include "fd/closure_engine.h"
#include "io/text_format.h"
#include "obs/export.h"
#include "relation/weak_instance.h"
#include "tableau/chase.h"
#include "workload/generators.h"

namespace ird {
namespace {

struct Args {
  std::string out;
  std::string trace;
  std::string anchors;
  std::string only;
  std::string baseline;
  size_t jobs = 1;
  size_t scale = 1;
  size_t runs = 3;
  bool check = false;
  bool list = false;
};

struct WorkloadRecord {
  std::string bench;
  std::string config_json;
  obs::Snapshot delta;
};

// One instrumented workload: `body` runs inside an operation-scoped
// context, and the record is the context's delta — pool workers the body
// fans out to (BatchAnalyzer adoption) attribute here, concurrent
// registry traffic from elsewhere does not.
template <typename Body>
WorkloadRecord RunWorkload(const std::string& name, std::string config_json,
                           Body body) {
  obs::ObsContext ctx(name);
  body();
  WorkloadRecord record;
  record.bench = name;
  record.config_json = std::move(config_json);
  record.delta = obs::ContextSnapshot(ctx);
  std::fprintf(stderr, "ran %-24s (%zu counters, %zu spans, %zu hists)\n",
               name.c_str(), record.delta.counters.size(),
               record.delta.spans.size(), record.delta.hists.size());
  return record;
}

std::string ConfigJson(
    const std::vector<std::pair<std::string, size_t>>& entries) {
  std::string out = "{";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + entries[i].first + "\":" + std::to_string(entries[i].second);
  }
  return out + "}";
}

// The standard workloads. Shapes mirror EXPERIMENTS.md E1/E4/E2 so the
// trajectory's counters line up with the bench binaries' timings. An
// empty `only` runs everything; otherwise just the named workload.
std::vector<WorkloadRecord> RunStandardWorkloads(size_t scale,
                                                 const std::string& only) {
  std::vector<WorkloadRecord> records;
  auto want = [&](const char* name) { return only.empty() || only == name; };

  if (want("recognition_block")) {
    const size_t blocks = 8, per_block = 3, reps = 25 * scale;
    DatabaseScheme scheme = MakeBlockScheme(blocks, per_block);
    records.push_back(RunWorkload(
        "recognition_block",
        ConfigJson({{"blocks", blocks},
                    {"per_block", per_block},
                    {"relations", scheme.size()},
                    {"reps", reps}}),
        [&] {
          for (size_t i = 0; i < reps; ++i) {
            RecognitionResult r = RecognizeIndependenceReducible(scheme);
            IRD_CHECK(r.accepted);
          }
        }));
  }

  if (want("recognition_independent")) {
    const size_t relations = 32, reps = 25 * scale;
    DatabaseScheme scheme = MakeIndependentScheme(relations);
    records.push_back(RunWorkload(
        "recognition_independent",
        ConfigJson({{"relations", scheme.size()}, {"reps", reps}}),
        [&] {
          for (size_t i = 0; i < reps; ++i) {
            RecognitionResult r = RecognizeIndependenceReducible(scheme);
            IRD_CHECK(r.accepted);
          }
        }));
  }

  if (want("recognition_random")) {
    const size_t relations = 8, pool = 16, reps = 5 * scale;
    std::vector<DatabaseScheme> schemes;
    for (uint64_t seed = 0; seed < pool; ++seed) {
      RandomSchemeOptions opt;
      opt.universe_size = relations + 2;
      opt.relations = relations;
      opt.min_arity = 2;
      opt.max_arity = 4;
      opt.seed = seed;
      schemes.push_back(MakeRandomScheme(opt));
    }
    records.push_back(RunWorkload(
        "recognition_random",
        ConfigJson({{"relations", relations}, {"pool", pool}, {"reps", reps}}),
        [&] {
          for (size_t i = 0; i < reps; ++i) {
            for (const DatabaseScheme& scheme : schemes) {
              RecognizeIndependenceReducible(scheme);
            }
          }
        }));
  }

  if (want("recognition_shared_context")) {
    // The memoization story end-to-end: one SchemeAnalysis, many
    // recognitions and split sweeps. Everything after the first repetition
    // is served from the verdict caches and the closure memo
    // (engine.closure_memo.hits), and no engine is ever built twice
    // (engine.closure_engine.builds stays flat).
    const size_t blocks = 8, per_block = 3, reps = 25 * scale;
    DatabaseScheme scheme = MakeBlockScheme(blocks, per_block);
    records.push_back(RunWorkload(
        "recognition_shared_context",
        ConfigJson({{"blocks", blocks},
                    {"per_block", per_block},
                    {"relations", scheme.size()},
                    {"reps", reps}}),
        [&] {
          SchemeAnalysis analysis(scheme);
          for (size_t i = 0; i < reps; ++i) {
            RecognitionResult r = RecognizeIndependenceReducible(analysis);
            IRD_CHECK(r.accepted);
            for (const std::vector<size_t>& block : r.partition) {
              (void)SplitKeys(analysis, block);
            }
            // Full-cover closures of every relation: the first repetition
            // shares entries with KEP's root refinement, later repetitions
            // are pure memo hits.
            for (size_t j = 0; j < scheme.size(); ++j) {
              (void)analysis.FullClosure(scheme.relation(j).attrs);
            }
          }
        }));
  }

  if (want("split_analysis")) {
    const size_t chain = 12, split_k = 3, reps = 10 * scale;
    DatabaseScheme chain_scheme = MakeChainScheme(chain);
    DatabaseScheme split_scheme = MakeSplitScheme(split_k);
    records.push_back(RunWorkload(
        "split_analysis",
        ConfigJson({{"chain_n", chain}, {"split_k", split_k}, {"reps", reps}}),
        [&] {
          for (size_t i = 0; i < reps; ++i) {
            IRD_CHECK(SplitKeys(chain_scheme).empty());
            IRD_CHECK(!SplitKeys(split_scheme).empty());
          }
        }));
  }

  if (want("chase_consistency")) {
    const size_t entities = 200, reps = 3 * scale, lossless_reps = 10 * scale;
    DatabaseScheme scheme = MakeSplitScheme(2);
    StateGenOptions opt;
    opt.entities = entities;
    opt.seed = 7;
    DatabaseState state = MakeConsistentState(scheme, opt);
    DatabaseScheme block_scheme = MakeBlockScheme(4, 3);
    records.push_back(RunWorkload(
        "chase_consistency",
        ConfigJson({{"entities", entities},
                    {"reps", reps},
                    {"lossless_reps", lossless_reps}}),
        [&] {
          for (size_t i = 0; i < reps; ++i) {
            IRD_CHECK(IsConsistent(state));
          }
          for (size_t i = 0; i < lossless_reps; ++i) {
            IRD_CHECK(IsLosslessByChase(block_scheme));
          }
        }));
  }

  if (want("substrate")) {
    // The memory-substrate paths in one record: repeated state-tableau
    // chases (struct-of-arrays cells + arena-backed engine; arena.bytes /
    // arena.highwater come from here) and warm closure queries against the
    // CSR index. bench/bench_substrate.cc times the same primitives.
    const size_t chain = 12, entities = 150, reps = 10 * scale;
    DatabaseScheme scheme = MakeChainScheme(chain);
    StateGenOptions opt;
    opt.entities = entities;
    opt.seed = 23;
    DatabaseState state = MakeConsistentState(scheme, opt);
    records.push_back(RunWorkload(
        "substrate",
        ConfigJson({{"chain_n", chain},
                    {"entities", entities},
                    {"reps", reps}}),
        [&] {
          ClosureEngine closure(scheme.key_dependencies());
          for (size_t i = 0; i < reps; ++i) {
            Tableau t = StateTableau(state);
            ChaseStats stats = ChaseFds(&t, scheme.key_dependencies());
            IRD_CHECK(stats.consistent);
            for (size_t j = 0; j < scheme.size(); ++j) {
              (void)closure.Closure(scheme.relation(j).attrs);
            }
          }
        }));
  }

  if (want("sharded_maintenance")) {
    // The sharded engine (E2's parallel arm): a two-block Example 11-shaped
    // scheme takes a batched insert storm through ShardedMaintainer and a
    // cross-block total projection through the shard router; a split
    // scheme sends its storm through the Algorithm 2 block machinery.
    const size_t entities = 40, ops = 120, jobs = 2, reps = 5 * scale;
    DatabaseScheme scheme = DatabaseScheme::Create();
    scheme.AddRelation("R1", "AB", {"A", "B"});
    scheme.AddRelation("R2", "BC", {"B", "C"});
    scheme.AddRelation("R3", "AC", {"A", "C"});
    scheme.AddRelation("R4", "AD", {"A"});
    scheme.AddRelation("R5", "DEF", {"D"});
    scheme.AddRelation("R6", "DEG", {"D"});
    StateGenOptions sopt;
    sopt.entities = entities;
    sopt.seed = 11;
    DatabaseState state = MakeConsistentState(scheme, sopt);
    std::vector<InsertInstance> stream =
        MakeInsertStream(scheme, state, ops, 0.3, 13);
    AttributeSet cross;  // one attribute from each block: crosses shards
    cross.Add(scheme.universe().Find("A").value());
    cross.Add(scheme.universe().Find("E").value());
    DatabaseScheme split_scheme = MakeSplitScheme(2);
    StateGenOptions split_opt;
    split_opt.entities = entities;
    split_opt.seed = 17;
    DatabaseState split_state = MakeConsistentState(split_scheme, split_opt);
    std::vector<InsertInstance> split_stream =
        MakeInsertStream(split_scheme, split_state, ops, 0.3, 19);
    records.push_back(RunWorkload(
        "sharded_maintenance",
        ConfigJson({{"entities", entities},
                    {"ops", ops},
                    {"jobs", jobs},
                    {"reps", reps}}),
        [&] {
          for (size_t i = 0; i < reps; ++i) {
            Result<ShardedMaintainer> m =
                ShardedMaintainer::Create(state, jobs, false);
            IRD_CHECK(m.ok());
            std::vector<InsertOp> batch;
            for (const InsertInstance& ins : stream) {
              batch.push_back({ins.rel, ins.tuple});
            }
            (void)m->InsertBatch(batch);
            (void)m->TotalProjection(cross);
            Result<ShardedMaintainer> split_m =
                ShardedMaintainer::Create(split_state, jobs, false);
            IRD_CHECK(split_m.ok());
            std::vector<InsertOp> split_batch;
            for (const InsertInstance& ins : split_stream) {
              split_batch.push_back({ins.rel, ins.tuple});
            }
            (void)split_m->InsertBatch(split_batch);
          }
        }));
  }

  return records;
}

// Classifies every .scheme file under `dir` (the corpus anchors): the same
// engines ird_lint leans on, driven through parsed input instead of
// generators.
WorkloadRecord RunAnchorWorkload(const std::string& dir, size_t jobs,
                                 int* rc) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".scheme") files.push_back(entry.path());
  }
  if (ec) {
    std::fprintf(stderr, "ird_stats: cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    *rc = 1;
  }
  std::sort(files.begin(), files.end());
  return RunWorkload(
      "classify_anchors",
      ConfigJson({{"files", files.size()}, {"jobs", jobs}}), [&] {
        // Parse serially (errors report in sorted file order), classify on
        // the pool: one parsed scheme and one fresh SchemeAnalysis per
        // worker claim, never shared across threads.
        std::vector<ParsedDatabase> parsed_dbs;
        parsed_dbs.reserve(files.size());
        for (const std::filesystem::path& path : files) {
          std::ifstream in(path);
          std::stringstream buffer;
          buffer << in.rdbuf();
          Result<ParsedDatabase> parsed = ParseDatabaseText(buffer.str());
          if (!parsed.ok()) {
            std::fprintf(stderr, "ird_stats: %s: %s\n", path.c_str(),
                         parsed.status().ToString().c_str());
            *rc = 1;
            continue;
          }
          parsed_dbs.push_back(std::move(parsed).value());
        }
        std::vector<const DatabaseScheme*> schemes;
        schemes.reserve(parsed_dbs.size());
        for (const ParsedDatabase& db : parsed_dbs) {
          schemes.push_back(&db.scheme);
        }
        BatchAnalyzer batch(jobs);
        batch.AnalyzeEach(schemes, [](size_t, SchemeAnalysis& analysis) {
          ClassifyScheme(analysis);
        });
      });
}

std::string RenderRecords(const std::vector<WorkloadRecord>& records) {
  std::string out = "[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ",";
    std::string body = obs::RenderJson(records[i].delta);
    out += "\n{\"bench\":\"" + records[i].bench + "\",\"config\":" +
           records[i].config_json + "," + body.substr(1);
  }
  out += "\n]\n";
  return out;
}

// Counters a healthy full run must bump; a zero means the instrumentation
// site is dead (or the workload stopped reaching the engine).
constexpr const char* kRequiredCounters[] = {
    "chase.seed_probes",    "chase.reprobes",
    "chase.invocations",    "chase.equates",
    "chase.index_repairs",  "chase.worklist_max",
    "closure.computations", "closure.iterations",
    "kep.rounds",           "split.cover_checks",
    "recognition.independence_tests", "tableau.rows_materialized",
    "engine.closure_engine.builds",   "engine.closure_memo.hits",
    "engine.closure_memo.misses",
    "shard.blocks",         "shard.parallel_validations",
    "shard.cross_block_queries",
    "maintain.alg5.checks", "maintain.alg5.probes",
    "maintain.alg5.rejects",
    "maintain.alg2.checks", "maintain.alg2.lookups",
    "maintain.alg2.keys_processed",   "maintain.alg2.rejects",
    // PR9 memory substrate: chase-side arena footprint, flushed per
    // ChaseFds by tableau/chase.cc (base itself is obs-free).
    "arena.bytes",          "arena.highwater",
};

int Run(const Args& args) {
  if (args.list) {
    std::printf(
        "recognition_block\nrecognition_independent\nrecognition_random\n"
        "recognition_shared_context\nsplit_analysis\nchase_consistency\n"
        "substrate\nsharded_maintenance\nclassify_anchors (--anchors)\n");
    return 0;
  }
  if (!args.trace.empty()) obs::Trace::SetEnabled(true);
  obs::ResetAll();

  int rc = 0;
  // The first run produces the trajectory records; the gate (--baseline)
  // reruns the same workloads for variance.
  const size_t total_runs = args.baseline.empty() ? 1 : std::max<size_t>(
                                                            args.runs, 1);
  std::vector<std::vector<WorkloadRecord>> all_runs;
  for (size_t k = 0; k < total_runs; ++k) {
    if (total_runs > 1) {
      std::fprintf(stderr, "--- run %zu/%zu ---\n", k + 1, total_runs);
    }
    std::vector<WorkloadRecord> run = RunStandardWorkloads(args.scale,
                                                           args.only);
    if (!args.anchors.empty() &&
        (args.only.empty() || args.only == "classify_anchors")) {
      run.push_back(RunAnchorWorkload(args.anchors, args.jobs, &rc));
    }
    all_runs.push_back(std::move(run));
  }
  const std::vector<WorkloadRecord>& records = all_runs.front();

  std::string rendered = RenderRecords(records);
  if (args.out.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    Status written = obs::WriteStringToFile(args.out, rendered);
    if (!written.ok()) {
      std::fprintf(stderr, "ird_stats: %s\n", written.ToString().c_str());
      rc = 1;
    }
  }
  if (!args.trace.empty()) {
    Status written =
        obs::WriteStringToFile(args.trace, obs::RenderChromeTrace());
    if (!written.ok()) {
      std::fprintf(stderr, "ird_stats: %s\n", written.ToString().c_str());
      rc = 1;
    }
  }

#ifdef IRD_OBS_DISABLED
  if (args.check) {
    std::fprintf(stderr,
                 "ird_stats: --check skipped (built with IRD_OBS=OFF)\n");
  }
  if (!args.baseline.empty()) {
    std::fprintf(
        stderr,
        "ird_stats: --baseline skipped (built with IRD_OBS=OFF)\n");
  }
#else
  if (args.check) {
    // Report every dead counter in one run, not just the first.
    std::vector<const char*> dead;
    for (const char* name : kRequiredCounters) {
      if (obs::CounterValue(name) == 0) dead.push_back(name);
    }
    if (dead.empty()) {
      std::fprintf(stderr, "ird_stats: all %zu required counters nonzero\n",
                   std::size(kRequiredCounters));
    } else {
      for (const char* name : dead) {
        std::fprintf(stderr, "ird_stats: required counter %s is ZERO\n",
                     name);
      }
      std::fprintf(stderr,
                   "ird_stats: %zu of %zu required counters are ZERO\n",
                   dead.size(), std::size(kRequiredCounters));
      rc = 1;
    }
  }
  if (!args.baseline.empty()) {
    Result<std::string> text = obs::ReadFileToString(args.baseline);
    if (!text.ok()) {
      std::fprintf(stderr, "ird_stats: --baseline %s: %s\n",
                   args.baseline.c_str(),
                   text.status().ToString().c_str());
      return 1;
    }
    Result<std::vector<bench::RecordView>> base =
        bench::ParseBenchJson(*text);
    if (!base.ok()) {
      std::fprintf(stderr, "ird_stats: --baseline %s: %s\n",
                   args.baseline.c_str(),
                   base.status().ToString().c_str());
      return 1;
    }
    std::vector<std::vector<bench::RecordView>> run_views;
    run_views.reserve(all_runs.size());
    for (const std::vector<WorkloadRecord>& run : all_runs) {
      std::vector<bench::RecordView> views;
      views.reserve(run.size());
      for (const WorkloadRecord& record : run) {
        views.push_back(bench::ViewOf(record.bench, record.delta));
      }
      run_views.push_back(std::move(views));
    }
    bench::GateReport report =
        bench::RunGate(*base, run_views, bench::GateOptions{});
    std::fputs(report.RenderTable().c_str(), stderr);
    if (!report.ok()) {
      std::fprintf(stderr,
                   "ird_stats: regression gate FAILED vs %s (%zu metrics)\n",
                   args.baseline.c_str(), report.failures());
      rc = 1;
    } else {
      std::fprintf(stderr, "ird_stats: regression gate passed vs %s\n",
                   args.baseline.c_str());
    }
  }
#endif
  return rc;
}

}  // namespace
}  // namespace ird

int main(int argc, char** argv) {
  ird::Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      args.out = next("--out");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      args.trace = next("--trace");
    } else if (std::strcmp(argv[i], "--anchors") == 0) {
      args.anchors = next("--anchors");
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      args.jobs = std::strtoull(next("--jobs"), nullptr, 10);
      if (args.jobs == 0) args.jobs = 1;
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      args.scale = std::strtoull(next("--scale"), nullptr, 10);
      if (args.scale == 0) args.scale = 1;
    } else if (std::strcmp(argv[i], "--only") == 0) {
      args.only = next("--only");
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      args.baseline = next("--baseline");
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      args.runs = std::strtoull(next("--runs"), nullptr, 10);
      if (args.runs == 0) args.runs = 1;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      args.check = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      args.list = true;
    } else {
      std::fprintf(stderr,
                   "usage: ird_stats [--out FILE] [--trace FILE] "
                   "[--anchors DIR] [--jobs N] [--scale N] [--only NAME] "
                   "[--baseline FILE] [--runs K] [--check] [--list]\n");
      return 2;
    }
  }
  return ird::Run(args);
}
