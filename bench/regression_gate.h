// The variance-aware bench regression gate behind `ird_stats --baseline`:
// compares k fresh runs of the standard workloads against a committed
// BENCH_PR<n>.json trajectory record and fails on regressions, with a
// per-metric diff table for CI logs.
//
// Comparison semantics (details in docs/OBSERVABILITY.md):
//   * counter values, span hit counts and histogram sample counts are
//     machine-independent work counts — every run must match the baseline
//     EXACTLY;
//   * span totals and `_ns` histogram quantiles are wall-clock — each
//     run's timings are first normalized by that run's overall speed
//     factor vs the baseline (geometric mean of span-total ratios, so a
//     uniformly slower CI runner cancels out), then the calibrated mean
//     must stay within max(rel_margin * baseline, sigma_mult * stddev,
//     absolute floor) of the baseline;
//   * non-`_ns` histogram quantiles (size distributions) are compared
//     with the same thresholds but no speed calibration.
// Only regressions fail; a metric far *below* baseline is flagged
// "improved" as a hint to regenerate the baseline.

#ifndef IRD_BENCH_REGRESSION_GATE_H_
#define IRD_BENCH_REGRESSION_GATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "obs/export.h"

namespace ird::bench {

struct HistView {
  uint64_t count = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

// One workload record ({"bench":...,"counters":...,"spans_us":...,
// "hists":...}) in gate form.
struct RecordView {
  std::string bench;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> span_count;
  std::map<std::string, double> span_total_us;
  std::map<std::string, HistView> hists;
};

// Gate form of a live workload delta (quantiles derived here, same
// formulas as the JSON export).
RecordView ViewOf(const std::string& bench, const obs::Snapshot& delta);

// Parses a BENCH_PR*.json trajectory array. Records missing "hists"
// (pre-PR8 baselines) parse with empty histogram views.
Result<std::vector<RecordView>> ParseBenchJson(const std::string& text);

struct GateOptions {
  double rel_margin = 0.35;      // timing drift allowed, fraction of base
  double sigma_mult = 5.0;       // noise allowance: multiple of run stddev
  double span_floor_us = 300.0;  // absolute slack for span totals (us)
  double hist_ns_floor = 3000.0;  // absolute slack for _ns quantiles (ns)
  double hist_size_floor = 2.0;   // absolute slack for size quantiles
  // `_ns` quantiles are log2-bucket estimates, so benign drift moves them
  // in whole powers of two; allow one bucket (2x = base + 1.0 * base)
  // before failing. A 3x tail regression still exceeds this.
  double hist_ns_rel_margin = 1.0;
  // Quantiles of histograms with fewer baseline samples than this are
  // noted "sparse" and not gated (their counts are still checked exactly).
  uint64_t min_hist_count = 50;
};

struct GateRow {
  std::string workload;
  std::string metric;
  double baseline = 0;
  double mean = 0;    // calibrated mean over runs (exact value for counts)
  double stddev = 0;  // over calibrated runs; 0 for exact metrics
  double allowed = 0;  // slack around baseline (0 for exact metrics)
  bool timing = false;
  bool failed = false;
  std::string note;  // "", "improved", "new", "missing", "exact"
};

struct GateReport {
  std::vector<GateRow> rows;
  std::vector<double> run_speed;  // per-run calibration factor vs baseline
  bool ok() const { return failures() == 0; }
  size_t failures() const;
  // The per-metric diff table: every failing metric in full, plus the
  // passing timing metrics (span totals and hist p99s) for context.
  std::string RenderTable() const;
};

// Baseline records vs k independent reruns (runs[k] holds run k's records,
// matched to baseline by bench name). A baseline workload absent from any
// run fails the gate; extra run workloads and metrics are flagged "new"
// without failing (regenerate the baseline to adopt them).
GateReport RunGate(const std::vector<RecordView>& baseline,
                   const std::vector<std::vector<RecordView>>& runs,
                   const GateOptions& options);

}  // namespace ird::bench

#endif  // IRD_BENCH_REGRESSION_GATE_H_
