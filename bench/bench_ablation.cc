// Ablation experiments for the design choices DESIGN.md calls out:
//  A1  attribute-set closure: FdSet's fixpoint scan vs the indexed
//      ClosureEngine (the recognition pipeline's hot loop).
//  A2  Algorithm 2's lookup source: maintained representative-instance
//      index vs the §3.2 pure-expression evaluation (same verdicts, very
//      different constants).
//  A3  building the representative instance: Algorithm 1's merge engine vs
//      the generic tableau chase.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/expression_maintenance.h"
#include "hypergraph/gamma_cycle.h"
#include "core/key_equivalent_maintainer.h"
#include "core/representative_index.h"
#include "fd/closure_engine.h"
#include "relation/weak_instance.h"
#include "workload/generators.h"

namespace ird {
namespace {

// --- A1: closure computation --------------------------------------------

DatabaseScheme ClosureScheme(size_t blocks) {
  return MakeBlockScheme(blocks, 4);
}

void BM_Closure_FdSetScan(benchmark::State& bench) {
  DatabaseScheme scheme = ClosureScheme(static_cast<size_t>(bench.range(0)));
  const FdSet& f = scheme.key_dependencies();
  size_t i = 0;
  for (auto _ : bench) {
    const AttributeSet& x = scheme.relation(i++ % scheme.size()).attrs;
    benchmark::DoNotOptimize(f.Closure(x));
  }
  bench.counters["fds"] = static_cast<double>(f.size());
}
BENCHMARK(BM_Closure_FdSetScan)->Arg(2)->Arg(8)->Arg(16);

void BM_Closure_Engine(benchmark::State& bench) {
  DatabaseScheme scheme = ClosureScheme(static_cast<size_t>(bench.range(0)));
  ClosureEngine engine(scheme.key_dependencies());
  size_t i = 0;
  for (auto _ : bench) {
    const AttributeSet& x = scheme.relation(i++ % scheme.size()).attrs;
    benchmark::DoNotOptimize(engine.Closure(x));
  }
}
BENCHMARK(BM_Closure_Engine)->Arg(2)->Arg(8)->Arg(16);

// --- A2: Algorithm 2's lookup source --------------------------------------

void BM_Alg2_IndexedLookups(benchmark::State& bench) {
  DatabaseScheme scheme = MakeSplitScheme(2);
  StateGenOptions opt;
  opt.entities = static_cast<size_t>(bench.range(0));
  opt.seed = 3;
  DatabaseState state = MakeConsistentState(scheme, opt);
  auto m = KeyEquivalentMaintainer::Create(std::move(state));
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->state(), 128, 0.3, 5);
  size_t i = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    benchmark::DoNotOptimize(m->CheckInsert(ins.rel, ins.tuple));
  }
}
BENCHMARK(BM_Alg2_IndexedLookups)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Alg2_ExpressionLookups(benchmark::State& bench) {
  DatabaseScheme scheme = MakeSplitScheme(2);
  StateGenOptions opt;
  opt.entities = static_cast<size_t>(bench.range(0));
  opt.seed = 3;
  DatabaseState state = MakeConsistentState(scheme, opt);
  ExpressionLookupPlan plan = ExpressionLookupPlan::Build(scheme);
  auto stream = MakeInsertStream(scheme, state, 128, 0.3, 5);
  size_t i = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    benchmark::DoNotOptimize(
        CheckInsertByExpressions(scheme, plan, state, ins.rel, ins.tuple));
  }
  bench.counters["tuples"] = static_cast<double>(state.TupleCount());
}
BENCHMARK(BM_Alg2_ExpressionLookups)->Arg(100)->Arg(1000);

// --- A3: representative-instance construction -----------------------------

void BM_RepInstance_Algorithm1(benchmark::State& bench) {
  DatabaseScheme scheme = MakeSplitScheme(3);
  StateGenOptions opt;
  opt.entities = static_cast<size_t>(bench.range(0));
  opt.seed = 7;
  DatabaseState state = MakeConsistentState(scheme, opt);
  for (auto _ : bench) {
    auto index = RepresentativeIndex::Build(state);
    benchmark::DoNotOptimize(index);
    IRD_CHECK(index.ok());
  }
  bench.counters["tuples"] = static_cast<double>(state.TupleCount());
}
BENCHMARK(BM_RepInstance_Algorithm1)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RepInstance_GenericChase(benchmark::State& bench) {
  DatabaseScheme scheme = MakeSplitScheme(3);
  StateGenOptions opt;
  opt.entities = static_cast<size_t>(bench.range(0));
  opt.seed = 7;
  DatabaseState state = MakeConsistentState(scheme, opt);
  for (auto _ : bench) {
    auto tableau = RepresentativeInstance(state);
    benchmark::DoNotOptimize(tableau);
    IRD_CHECK(tableau.ok());
  }
  bench.counters["tuples"] = static_cast<double>(state.TupleCount());
}
BENCHMARK(BM_RepInstance_GenericChase)->Arg(100)->Arg(1000);

// --- A4: γ-acyclicity recognizers ------------------------------------------

void BM_Gamma_CycleSearch(benchmark::State& bench) {
  DatabaseScheme scheme = MakeTreeScheme(
      static_cast<size_t>(bench.range(0)), 0.5, 9);
  Hypergraph h = Hypergraph::Of(scheme);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(FindGammaCycle(h));
  }
  bench.counters["edges"] = static_cast<double>(h.edge_count());
}
BENCHMARK(BM_Gamma_CycleSearch)->Arg(5)->Arg(9)->Arg(15);

void BM_Gamma_UmcPairwise(benchmark::State& bench) {
  // The Theorem 2.1 form: already 30ms at 8 edges, and its Bachman-closure
  // guard refuses the 14-edge tree the cycle search handles in 80µs —
  // which is why ClassifyScheme runs on the cycle search.
  DatabaseScheme scheme = MakeTreeScheme(
      static_cast<size_t>(bench.range(0)), 0.5, 9);
  Hypergraph h = Hypergraph::Of(scheme);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(IsGammaAcyclic(h));
  }
  bench.counters["edges"] = static_cast<double>(h.edge_count());
}
BENCHMARK(BM_Gamma_UmcPairwise)->Arg(5)->Arg(7)->Arg(9);

}  // namespace
}  // namespace ird

IRD_BENCHMARK_MAIN();
