#include "bench/regression_gate.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ird::bench {

namespace {

// ---------------------------------------------------------------------------
// A minimal JSON reader, sufficient for the machine-written BENCH_PR*.json
// shape (objects, arrays, strings without escapes beyond \" and \\, numbers,
// bools, null). Not a general-purpose parser on purpose: the input is our
// own exporter's output, and a shape surprise should fail loudly.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  // Vector of pairs keeps duplicate keys detectable and order stable.
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return value;
  }

 private:
  Result<JsonValue> Fail(const std::string& what) const {
    return InvalidArgument("bench json: " + what + " at offset " +
                           std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    if (Consume('}')) return out;
    for (;;) {
      SkipSpace();
      Result<JsonValue> key = ParseString();
      if (!key.ok()) return key;
      if (!Consume(':')) return Fail("expected ':'");
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      out.object.emplace_back(std::move(key.value().str),
                              std::move(value).value());
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return Fail("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    if (Consume(']')) return out;
    for (;;) {
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      out.array.push_back(std::move(value).value());
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return Fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        char e = text_[pos_++];
        if (e == '"' || e == '\\' || e == '/') {
          out.str.push_back(e);
        } else if (e == 'n') {
          out.str.push_back('\n');
        } else if (e == 't') {
          out.str.push_back('\t');
        } else {
          return Fail("unsupported escape");
        }
      } else {
        out.str.push_back(c);
      }
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Result<JsonValue> ParseBool() {
    JsonValue out;
    out.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out.boolean = true;
      pos_ += 4;
      return out;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.boolean = false;
      pos_ += 5;
      return out;
    }
    return Fail("expected boolean");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Fail("expected null");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                             nullptr);
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

double NumberOr(const JsonValue* v, double fallback) {
  return (v != nullptr && v->kind == JsonValue::Kind::kNumber) ? v->number
                                                               : fallback;
}

bool IsTimingHist(const std::string& name) {
  return name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

double MeanOf(const std::vector<double>& xs) {
  double sum = 0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

double StddevOf(const std::vector<double>& xs, double mean) {
  if (xs.size() < 2) return 0.0;
  double acc = 0;
  for (double x : xs) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

const RecordView* FindRecord(const std::vector<RecordView>& records,
                             const std::string& bench) {
  for (const RecordView& r : records) {
    if (r.bench == bench) return &r;
  }
  return nullptr;
}

}  // namespace

RecordView ViewOf(const std::string& bench, const obs::Snapshot& delta) {
  RecordView view;
  view.bench = bench;
  for (const auto& [name, value] : delta.counters) view.counters[name] = value;
  for (const obs::SpanRegistry::Stat& s : delta.spans) {
    view.span_count[s.name] = s.count;
    view.span_total_us[s.name] =
        static_cast<double>(s.total_ns) / 1000.0;
  }
  for (const obs::HistogramRegistry::Stat& h : delta.hists) {
    view.hists[h.name] = HistView{h.count, obs::HistogramQuantile(h, 0.50),
                                  obs::HistogramQuantile(h, 0.90),
                                  obs::HistogramQuantile(h, 0.99)};
  }
  return view;
}

Result<std::vector<RecordView>> ParseBenchJson(const std::string& text) {
  Result<JsonValue> parsed = JsonParser(text).Parse();
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (root.kind != JsonValue::Kind::kArray) {
    return InvalidArgument("bench json: top level is not an array");
  }
  std::vector<RecordView> out;
  for (const JsonValue& rec : root.array) {
    if (rec.kind != JsonValue::Kind::kObject) {
      return InvalidArgument("bench json: record is not an object");
    }
    const JsonValue* bench = rec.Find("bench");
    if (bench == nullptr || bench->kind != JsonValue::Kind::kString) {
      return InvalidArgument("bench json: record without \"bench\" name");
    }
    RecordView view;
    view.bench = bench->str;
    if (const JsonValue* counters = rec.Find("counters")) {
      for (const auto& [name, v] : counters->object) {
        view.counters[name] = static_cast<uint64_t>(NumberOr(&v, 0));
      }
    }
    if (const JsonValue* spans = rec.Find("spans_us")) {
      for (const auto& [name, v] : spans->object) {
        view.span_count[name] =
            static_cast<uint64_t>(NumberOr(v.Find("count"), 0));
        view.span_total_us[name] = NumberOr(v.Find("total_us"), 0);
      }
    }
    if (const JsonValue* hists = rec.Find("hists")) {
      for (const auto& [name, v] : hists->object) {
        HistView h;
        h.count = static_cast<uint64_t>(NumberOr(v.Find("count"), 0));
        h.p50 = NumberOr(v.Find("p50"), 0);
        h.p90 = NumberOr(v.Find("p90"), 0);
        h.p99 = NumberOr(v.Find("p99"), 0);
        view.hists[name] = h;
      }
    }
    out.push_back(std::move(view));
  }
  return out;
}

size_t GateReport::failures() const {
  size_t n = 0;
  for (const GateRow& row : rows) {
    if (row.failed) ++n;
  }
  return n;
}

std::string GateReport::RenderTable() const {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-26s %-34s %12s %12s %10s %10s  %s\n",
                "workload", "metric", "baseline", "mean", "stddev",
                "allowed", "status");
  out += line;
  auto emit = [&](const GateRow& row) {
    std::string status = row.failed ? "FAIL" : "ok";
    if (!row.note.empty()) status += " (" + row.note + ")";
    std::snprintf(line, sizeof(line),
                  "%-26s %-34s %12.1f %12.1f %10.1f %10.1f  %s\n",
                  row.workload.c_str(), row.metric.c_str(), row.baseline,
                  row.mean, row.stddev, row.allowed, status.c_str());
    out += line;
  };
  for (const GateRow& row : rows) {
    if (row.failed) emit(row);
  }
  for (const GateRow& row : rows) {
    // Passing context: the timing metrics (span totals, hist p99s) plus
    // anything flagged (improved/new). Exact-match passes stay summarized.
    bool interesting = row.timing && row.metric.find(" p50") ==
                                         std::string::npos &&
                       row.metric.find(" p90") == std::string::npos;
    if (!row.failed && (interesting || !row.note.empty())) emit(row);
  }
  size_t exact = 0;
  for (const GateRow& row : rows) {
    if (!row.timing && !row.failed && row.note.empty()) ++exact;
  }
  std::snprintf(line, sizeof(line),
                "%zu metrics checked: %zu failed, %zu exact matches\n",
                rows.size(), failures(), exact);
  out += line;
  if (!run_speed.empty()) {
    out += "run speed factors vs baseline:";
    for (double f : run_speed) {
      std::snprintf(line, sizeof(line), " %.2fx", f);
      out += line;
    }
    out += "\n";
  }
  return out;
}

GateReport RunGate(const std::vector<RecordView>& baseline,
                   const std::vector<std::vector<RecordView>>& runs,
                   const GateOptions& options) {
  GateReport report;

  // Per-run speed calibration: geometric mean of span-total ratios over
  // every (workload, span) pair present on both sides. A uniformly slower
  // machine shifts every ratio equally and cancels out of the comparison;
  // a single series regressing 3x barely moves the factor.
  for (const std::vector<RecordView>& run : runs) {
    std::vector<double> logs;
    for (const RecordView& base_rec : baseline) {
      const RecordView* run_rec = FindRecord(run, base_rec.bench);
      if (run_rec == nullptr) continue;
      for (const auto& [name, base_us] : base_rec.span_total_us) {
        auto it = run_rec->span_total_us.find(name);
        if (it == run_rec->span_total_us.end()) continue;
        if (base_us > 1.0 && it->second > 1.0) {
          logs.push_back(std::log(it->second / base_us));
        }
      }
    }
    report.run_speed.push_back(logs.empty() ? 1.0 : std::exp(MeanOf(logs)));
  }

  auto exact_check = [&](const std::string& workload,
                         const std::string& metric, uint64_t base_value,
                         const std::vector<uint64_t>& run_values) {
    GateRow row;
    row.workload = workload;
    row.metric = metric;
    row.baseline = static_cast<double>(base_value);
    std::vector<double> values(run_values.begin(), run_values.end());
    row.mean = MeanOf(values);
    row.stddev = StddevOf(values, row.mean);
    bool all_equal = true;
    for (uint64_t v : run_values) {
      if (v != base_value) all_equal = false;
    }
    row.failed = !all_equal;
    row.note = all_equal ? "" : "exact";
    report.rows.push_back(std::move(row));
  };

  auto timing_check = [&](const std::string& workload,
                          const std::string& metric, double base_value,
                          const std::vector<double>& run_values,
                          bool calibrate, double rel_margin, double floor) {
    GateRow row;
    row.workload = workload;
    row.metric = metric;
    row.timing = true;
    row.baseline = base_value;
    std::vector<double> calibrated;
    calibrated.reserve(run_values.size());
    for (size_t k = 0; k < run_values.size(); ++k) {
      double factor = calibrate ? report.run_speed[k] : 1.0;
      calibrated.push_back(run_values[k] / factor);
    }
    row.mean = MeanOf(calibrated);
    row.stddev = StddevOf(calibrated, row.mean);
    row.allowed = std::max({rel_margin * base_value,
                            options.sigma_mult * row.stddev, floor});
    if (row.mean > base_value + row.allowed) {
      row.failed = true;
    } else if (row.mean < base_value - row.allowed) {
      row.note = "improved";
    }
    report.rows.push_back(std::move(row));
  };

  for (const RecordView& base_rec : baseline) {
    std::vector<const RecordView*> run_recs;
    bool missing = false;
    for (const std::vector<RecordView>& run : runs) {
      const RecordView* rec = FindRecord(run, base_rec.bench);
      if (rec == nullptr) missing = true;
      run_recs.push_back(rec);
    }
    if (missing) {
      GateRow row;
      row.workload = base_rec.bench;
      row.metric = "(workload)";
      row.failed = true;
      row.note = "missing";
      report.rows.push_back(std::move(row));
      continue;
    }

    for (const auto& [name, base_value] : base_rec.counters) {
      std::vector<uint64_t> values;
      for (const RecordView* rec : run_recs) {
        auto it = rec->counters.find(name);
        values.push_back(it == rec->counters.end() ? 0 : it->second);
      }
      exact_check(base_rec.bench, "counter " + name, base_value, values);
    }
    // Metrics the runs have but the baseline doesn't: flag, don't fail.
    for (const auto& [name, value] : run_recs[0]->counters) {
      if (base_rec.counters.count(name) != 0) continue;
      GateRow row;
      row.workload = base_rec.bench;
      row.metric = "counter " + name;
      row.mean = static_cast<double>(value);
      row.note = "new";
      report.rows.push_back(std::move(row));
    }

    for (const auto& [name, base_count] : base_rec.span_count) {
      std::vector<uint64_t> counts;
      std::vector<double> totals;
      for (const RecordView* rec : run_recs) {
        auto c = rec->span_count.find(name);
        counts.push_back(c == rec->span_count.end() ? 0 : c->second);
        auto t = rec->span_total_us.find(name);
        totals.push_back(t == rec->span_total_us.end() ? 0 : t->second);
      }
      exact_check(base_rec.bench, "span " + name + " count", base_count,
                  counts);
      timing_check(base_rec.bench, "span " + name + " us",
                   base_rec.span_total_us.at(name), totals,
                   /*calibrate=*/true, options.rel_margin,
                   options.span_floor_us);
    }

    for (const auto& [name, base_hist] : base_rec.hists) {
      bool is_timing = IsTimingHist(name);
      double floor =
          is_timing ? options.hist_ns_floor : options.hist_size_floor;
      // Timing quantiles live on a log2-bucketed scale, so benign drift
      // moves them in whole powers of two; one bucket of slack is the
      // smallest margin that doesn't flake.
      double margin =
          is_timing ? options.hist_ns_rel_margin : options.rel_margin;
      std::vector<uint64_t> counts;
      std::vector<double> p50s, p90s, p99s;
      for (const RecordView* rec : run_recs) {
        auto it = rec->hists.find(name);
        HistView h = it == rec->hists.end() ? HistView{} : it->second;
        counts.push_back(h.count);
        p50s.push_back(h.p50);
        p90s.push_back(h.p90);
        p99s.push_back(h.p99);
      }
      exact_check(base_rec.bench, "hist " + name + " count", base_hist.count,
                  counts);
      if (base_hist.count < options.min_hist_count) {
        // Too few samples for stable quantiles (p99 of a 5-sample hist is
        // just its max); the exact count check above still applies.
        GateRow row;
        row.workload = base_rec.bench;
        row.metric = "hist " + name + " quantiles";
        row.baseline = base_hist.p99;
        row.note = "sparse";
        report.rows.push_back(std::move(row));
        continue;
      }
      timing_check(base_rec.bench, "hist " + name + " p50", base_hist.p50,
                   p50s, is_timing, margin, floor);
      timing_check(base_rec.bench, "hist " + name + " p90", base_hist.p90,
                   p90s, is_timing, margin, floor);
      timing_check(base_rec.bench, "hist " + name + " p99", base_hist.p99,
                   p99s, is_timing, margin, floor);
    }
  }
  return report;
}

}  // namespace ird::bench
