// Experiment E3 (EXPERIMENTS.md): boundedness pays. Answering [X] through
// the predetermined expression of Theorem 4.1 / Corollary 3.1(b) versus
// re-chasing the whole state (the generic weak-instance method).
//
// Shape claim: the expression's construction cost is state-independent and
// its evaluation is join-work proportional to the relevant data, while the
// chase re-derives the entire representative instance every time.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <string>

#include "core/total_projection.h"
#include "relation/weak_instance.h"
#include "workload/generators.h"

namespace ird {
namespace {

DatabaseState MakeState(const DatabaseScheme& scheme, size_t entities) {
  StateGenOptions opt;
  opt.entities = entities;
  opt.coverage = 0.7;
  opt.seed = 5678;
  return MakeConsistentState(scheme, opt);
}

// X spanning both ends of the Example-4-like split scheme: A and D.
AttributeSet QueryTarget(const DatabaseScheme& scheme) {
  AttributeSet x;
  x.Add(scheme.universe().Find("A").value());
  x.Add(scheme.universe().Find("D").value());
  return x;
}

void BM_BoundedProjection_SplitScheme(benchmark::State& bench) {
  DatabaseScheme scheme = MakeSplitScheme(3);
  DatabaseState state = MakeState(scheme, bench.range(0));
  RecognitionResult r = RecognizeIndependenceReducible(scheme);
  IRD_CHECK(r.accepted);
  AttributeSet x = QueryTarget(scheme);
  ExprPtr expr = BuildBoundedProjectionExpr(scheme, r, x);
  IRD_CHECK(expr != nullptr);
  for (auto _ : bench) {
    PartialRelation answer = Evaluate(*expr, state);
    benchmark::DoNotOptimize(answer);
  }
  bench.counters["tuples"] = static_cast<double>(state.TupleCount());
  bench.counters["expr_nodes"] = static_cast<double>(expr->NodeCount());
}
BENCHMARK(BM_BoundedProjection_SplitScheme)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);

void BM_ChaseProjection_SplitScheme(benchmark::State& bench) {
  DatabaseScheme scheme = MakeSplitScheme(3);
  DatabaseState state = MakeState(scheme, bench.range(0));
  AttributeSet x = QueryTarget(scheme);
  for (auto _ : bench) {
    Result<PartialRelation> answer = TotalProjectionByChase(state, x);
    benchmark::DoNotOptimize(answer);
    IRD_CHECK(answer.ok());
  }
  bench.counters["tuples"] = static_cast<double>(state.TupleCount());
}
BENCHMARK(BM_ChaseProjection_SplitScheme)->Arg(100)->Arg(1000)->Arg(10000);

// Cross-block query on the multi-block family (Theorem 4.1's two-level
// expression).
void BM_BoundedProjection_BlockScheme(benchmark::State& bench) {
  DatabaseScheme scheme = MakeBlockScheme(3, 3);
  DatabaseState state = MakeState(scheme, bench.range(0));
  RecognitionResult r = RecognizeIndependenceReducible(scheme);
  IRD_CHECK(r.accepted);
  // First attribute of block 1 and last of block 3.
  AttributeSet x;
  x.Add(scheme.universe().Find("X1_1").value());
  x.Add(scheme.universe().Find("X3_3").value());
  ExprPtr expr = BuildBoundedProjectionExpr(scheme, r, x);
  IRD_CHECK(expr != nullptr);
  for (auto _ : bench) {
    PartialRelation answer = Evaluate(*expr, state);
    benchmark::DoNotOptimize(answer);
  }
  bench.counters["tuples"] = static_cast<double>(state.TupleCount());
  bench.counters["expr_nodes"] = static_cast<double>(expr->NodeCount());
}
BENCHMARK(BM_BoundedProjection_BlockScheme)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ChaseProjection_BlockScheme(benchmark::State& bench) {
  DatabaseScheme scheme = MakeBlockScheme(3, 3);
  DatabaseState state = MakeState(scheme, bench.range(0));
  AttributeSet x;
  x.Add(scheme.universe().Find("X1_1").value());
  x.Add(scheme.universe().Find("X3_3").value());
  for (auto _ : bench) {
    Result<PartialRelation> answer = TotalProjectionByChase(state, x);
    benchmark::DoNotOptimize(answer);
  }
  bench.counters["tuples"] = static_cast<double>(state.TupleCount());
}
BENCHMARK(BM_ChaseProjection_BlockScheme)->Arg(100)->Arg(1000)->Arg(10000);

// Expression construction alone: state-size independent by definition;
// reported against the scheme size to show it is cheap and predetermined.
void BM_BuildExpression(benchmark::State& bench) {
  DatabaseScheme scheme =
      MakeBlockScheme(static_cast<size_t>(bench.range(0)), 3);
  RecognitionResult r = RecognizeIndependenceReducible(scheme);
  IRD_CHECK(r.accepted);
  AttributeSet x;
  x.Add(scheme.universe().Find("X1_1").value());
  std::string far_attr = 'X' + std::to_string(bench.range(0));
  far_attr += "_3";
  x.Add(scheme.universe().Find(far_attr).value());
  for (auto _ : bench) {
    ExprPtr expr = BuildBoundedProjectionExpr(scheme, r, x);
    benchmark::DoNotOptimize(expr);
  }
}
BENCHMARK(BM_BuildExpression)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace ird

IRD_BENCHMARK_MAIN();
