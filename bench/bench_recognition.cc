// Experiment E1 (EXPERIMENTS.md): recognition is polynomial (Corollary
// 5.4). Algorithm 6 = KEP + induced-scheme independence test, timed against
// the number of relation schemes for three families:
//  - block schemes (accepted; many key-equivalent blocks),
//  - independent snowflakes (accepted; all-singleton partition),
//  - random schemes (mixed verdicts).

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/recognition.h"
#include "workload/generators.h"

namespace ird {
namespace {

void BM_Recognize_BlockScheme(benchmark::State& bench) {
  size_t blocks = static_cast<size_t>(bench.range(0));
  DatabaseScheme scheme = MakeBlockScheme(blocks, 3);
  for (auto _ : bench) {
    RecognitionResult r = RecognizeIndependenceReducible(scheme);
    benchmark::DoNotOptimize(r);
    IRD_CHECK(r.accepted);
  }
  bench.counters["relations"] = static_cast<double>(scheme.size());
}
BENCHMARK(BM_Recognize_BlockScheme)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(22);

void BM_Recognize_IndependentScheme(benchmark::State& bench) {
  DatabaseScheme scheme =
      MakeIndependentScheme(static_cast<size_t>(bench.range(0)));
  for (auto _ : bench) {
    RecognitionResult r = RecognizeIndependenceReducible(scheme);
    benchmark::DoNotOptimize(r);
    IRD_CHECK(r.accepted);
  }
  bench.counters["relations"] = static_cast<double>(scheme.size());
}
BENCHMARK(BM_Recognize_IndependentScheme)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

void BM_Recognize_RandomSchemes(benchmark::State& bench) {
  // A fixed pool of random schemes of the requested size; cycle through.
  size_t relations = static_cast<size_t>(bench.range(0));
  std::vector<DatabaseScheme> pool;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    RandomSchemeOptions opt;
    opt.universe_size = relations + 2;
    opt.relations = relations;
    opt.min_arity = 2;
    opt.max_arity = 4;
    opt.seed = seed;
    pool.push_back(MakeRandomScheme(opt));
  }
  size_t i = 0;
  size_t accepted = 0;
  for (auto _ : bench) {
    RecognitionResult r =
        RecognizeIndependenceReducible(pool[i++ % pool.size()]);
    benchmark::DoNotOptimize(r);
    accepted += r.accepted ? 1 : 0;
  }
  bench.counters["accept_rate"] =
      static_cast<double>(accepted) / static_cast<double>(bench.iterations());
}
BENCHMARK(BM_Recognize_RandomSchemes)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// The two recognition phases separately, to show where time goes.
void BM_Kep_BlockScheme(benchmark::State& bench) {
  DatabaseScheme scheme =
      MakeBlockScheme(static_cast<size_t>(bench.range(0)), 3);
  for (auto _ : bench) {
    auto partition = KeyEquivalentPartition(scheme);
    benchmark::DoNotOptimize(partition);
  }
}
BENCHMARK(BM_Kep_BlockScheme)->Arg(2)->Arg(8)->Arg(22);

void BM_IndependenceTest_Induced(benchmark::State& bench) {
  DatabaseScheme scheme =
      MakeBlockScheme(static_cast<size_t>(bench.range(0)), 3);
  RecognitionResult r = RecognizeIndependenceReducible(scheme);
  IRD_CHECK(r.accepted);
  for (auto _ : bench) {
    bool ok = IsIndependent(*r.induced);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_IndependenceTest_Induced)->Arg(2)->Arg(8)->Arg(22);

}  // namespace
}  // namespace ird

IRD_BENCHMARK_MAIN();
