// Experiment E5 (EXPERIMENTS.md): the class landscape. Classifies a corpus
// of random schemes and reports the population of each class as counters —
// executable evidence for the paper's containment picture (Theorems
// 5.2-5.4): independent ∪ γ-acyclic-BCNF ⊆ independence-reducible, and
// split-free ∩ independence-reducible = ctm.
//
// The per-scheme classification cost is also timed.

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include <cstdio>

#include "core/classify.h"
#include "workload/generators.h"

namespace ird {
namespace {

struct Census {
  size_t total = 0;
  size_t valid = 0;
  size_t bcnf = 0;
  size_t independent = 0;
  size_t key_equivalent = 0;
  size_t gamma_acyclic = 0;
  size_t alpha_acyclic = 0;
  size_t reducible = 0;
  size_t ctm = 0;
  size_t containment_violations = 0;
};

Census RunCensus(size_t universe, size_t relations, size_t count,
                 bool acyclicity) {
  Census census;
  for (uint64_t seed = 0; seed < count; ++seed) {
    RandomSchemeOptions opt;
    opt.universe_size = universe;
    opt.relations = relations;
    opt.min_arity = 2;
    opt.max_arity = 3;
    opt.seed = seed * 7919 + universe;
    DatabaseScheme s = MakeRandomScheme(opt);
    SchemeClassification c = ClassifyScheme(s, acyclicity);
    ++census.total;
    census.valid += c.valid.ok();
    census.bcnf += c.bcnf;
    census.independent += c.independent;
    census.key_equivalent += c.key_equivalent;
    census.gamma_acyclic += c.gamma_acyclic;
    census.alpha_acyclic += c.alpha_acyclic;
    census.reducible += c.independence_reducible;
    census.ctm += c.ctm;
    // Theorem 5.3: independent ⇒ accepted. Key-equivalent ⇒ accepted.
    // Theorem 5.2: γ-acyclic ∧ BCNF ⇒ accepted.
    if ((c.independent && !c.independence_reducible) ||
        (c.key_equivalent && !c.independence_reducible) ||
        (acyclicity && c.gamma_acyclic && c.bcnf &&
         !c.independence_reducible)) {
      ++census.containment_violations;
    }
  }
  return census;
}

void ReportCensus(benchmark::State& bench, const Census& census) {
  auto frac = [&](size_t n) {
    return static_cast<double>(n) / static_cast<double>(census.total);
  };
  bench.counters["schemes"] = static_cast<double>(census.total);
  bench.counters["valid"] = frac(census.valid);
  bench.counters["bcnf"] = frac(census.bcnf);
  bench.counters["independent"] = frac(census.independent);
  bench.counters["key_equiv"] = frac(census.key_equivalent);
  bench.counters["gamma_acyclic"] = frac(census.gamma_acyclic);
  bench.counters["alpha_acyclic"] = frac(census.alpha_acyclic);
  bench.counters["reducible"] = frac(census.reducible);
  bench.counters["ctm"] = frac(census.ctm);
  bench.counters["containment_violations"] =
      static_cast<double>(census.containment_violations);
}

// Small schemes: γ-acyclicity included.
void BM_Census_SmallSchemes(benchmark::State& bench) {
  Census census;
  for (auto _ : bench) {
    census = RunCensus(/*universe=*/5, /*relations=*/4, /*count=*/150,
                       /*acyclicity=*/true);
    benchmark::DoNotOptimize(census);
  }
  ReportCensus(bench, census);
  IRD_CHECK(census.containment_violations == 0);
}
BENCHMARK(BM_Census_SmallSchemes)->Unit(benchmark::kMillisecond)->Iterations(1);

// Larger schemes: acyclicity tests skipped (exponential), the rest scale.
void BM_Census_MediumSchemes(benchmark::State& bench) {
  Census census;
  for (auto _ : bench) {
    census = RunCensus(/*universe=*/8, /*relations=*/6, /*count=*/300,
                       /*acyclicity=*/true);
    benchmark::DoNotOptimize(census);
  }
  ReportCensus(bench, census);
  IRD_CHECK(census.containment_violations == 0);
}
BENCHMARK(BM_Census_MediumSchemes)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Census_WideSchemes(benchmark::State& bench) {
  Census census;
  for (auto _ : bench) {
    census = RunCensus(/*universe=*/12, /*relations=*/10, /*count=*/200,
                       /*acyclicity=*/false);
    benchmark::DoNotOptimize(census);
  }
  ReportCensus(bench, census);
  IRD_CHECK(census.containment_violations == 0);
}
BENCHMARK(BM_Census_WideSchemes)->Unit(benchmark::kMillisecond)->Iterations(1);

// Single-scheme classification latency.
void BM_ClassifyOne(benchmark::State& bench) {
  RandomSchemeOptions opt;
  opt.universe_size = static_cast<size_t>(bench.range(0));
  opt.relations = static_cast<size_t>(bench.range(0)) - 2;
  opt.seed = 3;
  DatabaseScheme s = MakeRandomScheme(opt);
  for (auto _ : bench) {
    SchemeClassification c = ClassifyScheme(s, /*test_acyclicity=*/false);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ClassifyOne)->Arg(6)->Arg(10)->Arg(14);

}  // namespace
}  // namespace ird

IRD_BENCHMARK_MAIN();
