// Experiment E2 (EXPERIMENTS.md): the maintenance-cost landscape.
//
// Paper claims reproduced:
//  * Theorem 3.3: split-free key-equivalent schemes are ctm — Algorithm 5's
//    per-insert cost is flat in the state size.
//  * Theorem 3.2: key-equivalent schemes are algebraic-maintainable —
//    Algorithm 2's cost is flat in the state size (given the maintained
//    representative-instance index).
//  * The naive baseline (re-chase the whole state tableau) grows linearly+
//    with the state — this is the cost the paper's algorithms remove.
//
// Series: per-CheckInsert time vs state size (number of entities), for
//  - ctm/chain:       Algorithm 5 on the split-free chain scheme
//  - alg2/chain:      Algorithm 2 on the same scheme
//  - alg2/split:      Algorithm 2 on the split scheme (Example 5 family)
//  - naive/chain, naive/split: full re-chase baseline

#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "core/block_maintainer.h"
#include "core/ctm_maintainer.h"
#include "core/key_equivalent_maintainer.h"
#include "relation/weak_instance.h"
#include "workload/generators.h"

namespace ird {
namespace {

constexpr size_t kStreamLength = 256;
constexpr double kConflictRate = 0.25;

DatabaseState MakeState(const DatabaseScheme& scheme, size_t entities) {
  StateGenOptions opt;
  opt.entities = entities;
  opt.coverage = 0.7;
  opt.seed = 1234;
  return MakeConsistentState(scheme, opt);
}

void BM_CtmCheckInsert_Chain(benchmark::State& bench) {
  DatabaseScheme scheme = MakeChainScheme(4);
  DatabaseState state = MakeState(scheme, bench.range(0));
  auto m = CtmMaintainer::Create(std::move(state), /*verify=*/false);
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->state(), kStreamLength,
                                 kConflictRate, 42);
  size_t i = 0;
  size_t probes = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    ExtensionStats stats;
    auto verdict = m->CheckInsert(ins.rel, ins.tuple, &stats);
    benchmark::DoNotOptimize(verdict);
    probes += stats.probes;
  }
  bench.counters["tuples"] = static_cast<double>(m->state().TupleCount());
  bench.counters["probes/op"] =
      static_cast<double>(probes) / static_cast<double>(bench.iterations());
}
BENCHMARK(BM_CtmCheckInsert_Chain)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

void BM_Alg2CheckInsert_Chain(benchmark::State& bench) {
  DatabaseScheme scheme = MakeChainScheme(4);
  DatabaseState state = MakeState(scheme, bench.range(0));
  auto m = KeyEquivalentMaintainer::Create(std::move(state));
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->state(), kStreamLength,
                                 kConflictRate, 42);
  size_t i = 0;
  size_t lookups = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    MaintenanceStats stats;
    auto verdict = m->CheckInsert(ins.rel, ins.tuple, &stats);
    benchmark::DoNotOptimize(verdict);
    lookups += stats.lookups;
  }
  bench.counters["tuples"] = static_cast<double>(m->state().TupleCount());
  bench.counters["lookups/op"] =
      static_cast<double>(lookups) / static_cast<double>(bench.iterations());
}
BENCHMARK(BM_Alg2CheckInsert_Chain)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

void BM_Alg2CheckInsert_Split(benchmark::State& bench) {
  DatabaseScheme scheme = MakeSplitScheme(3);
  DatabaseState state = MakeState(scheme, bench.range(0));
  auto m = KeyEquivalentMaintainer::Create(std::move(state));
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->state(), kStreamLength,
                                 kConflictRate, 42);
  size_t i = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    auto verdict = m->CheckInsert(ins.rel, ins.tuple);
    benchmark::DoNotOptimize(verdict);
  }
  bench.counters["tuples"] = static_cast<double>(m->state().TupleCount());
}
BENCHMARK(BM_Alg2CheckInsert_Split)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

void BM_BlockMaintainerCheckInsert(benchmark::State& bench) {
  DatabaseScheme scheme = MakeBlockScheme(3, 3);
  DatabaseState state = MakeState(scheme, bench.range(0));
  auto m = IndependenceReducibleMaintainer::Create(std::move(state),
                                                   /*verify=*/false);
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->state(), kStreamLength,
                                 kConflictRate, 42);
  size_t i = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    auto verdict = m->CheckInsert(ins.rel, ins.tuple);
    benchmark::DoNotOptimize(verdict);
  }
  bench.counters["tuples"] = static_cast<double>(m->state().TupleCount());
}
BENCHMARK(BM_BlockMaintainerCheckInsert)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

void NaiveCheckInsert(benchmark::State& bench, DatabaseScheme scheme) {
  DatabaseState state = MakeState(scheme, bench.range(0));
  auto stream =
      MakeInsertStream(scheme, state, kStreamLength, kConflictRate, 42);
  size_t i = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    bool verdict = WouldRemainConsistent(state, ins.rel, ins.tuple);
    benchmark::DoNotOptimize(verdict);
  }
  bench.counters["tuples"] = static_cast<double>(state.TupleCount());
}

void BM_NaiveCheckInsert_Chain(benchmark::State& bench) {
  NaiveCheckInsert(bench, MakeChainScheme(4));
}
BENCHMARK(BM_NaiveCheckInsert_Chain)->Arg(100)->Arg(1000)->Arg(10000);

void BM_NaiveCheckInsert_Split(benchmark::State& bench) {
  NaiveCheckInsert(bench, MakeSplitScheme(3));
}
BENCHMARK(BM_NaiveCheckInsert_Split)->Arg(100)->Arg(1000)->Arg(10000);

// Amortized cost of *applied* inserts (index maintenance included): builds
// the state through the maintainer itself.
void BM_CtmApplyInsert(benchmark::State& bench) {
  DatabaseScheme scheme = MakeChainScheme(4);
  DatabaseState empty(scheme);
  auto m = CtmMaintainer::Create(std::move(empty));
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->state(), 100000,
                                 /*conflict_rate=*/0.0, 77);
  size_t i = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    benchmark::DoNotOptimize(m->Insert(ins.rel, ins.tuple));
  }
  bench.counters["final_tuples"] =
      static_cast<double>(m->state().TupleCount());
}
BENCHMARK(BM_CtmApplyInsert)->Iterations(100000);

}  // namespace
}  // namespace ird

IRD_BENCHMARK_MAIN();
