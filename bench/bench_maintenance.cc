// Experiment E2 (EXPERIMENTS.md): the maintenance-cost landscape.
//
// Paper claims reproduced:
//  * Theorem 3.3: split-free key-equivalent schemes are ctm — Algorithm 5's
//    per-insert cost is flat in the state size.
//  * Theorem 3.2: key-equivalent schemes are algebraic-maintainable —
//    Algorithm 2's cost is flat in the state size (given the maintained
//    representative-instance index).
//  * The naive baseline (re-chase the whole state tableau) grows linearly+
//    with the state — this is the cost the paper's algorithms remove.
//
// Series: per-CheckInsert time vs state size (number of entities), for
//  - ctm/chain:       Algorithm 5 on the split-free chain scheme
//  - alg2/chain:      Algorithm 2 on the same scheme
//  - alg2/split:      Algorithm 2 on the split scheme (Example 5 family)
//  - naive/chain, naive/split: full re-chase baseline
//  - sharded/*:       the block-sharded router (ShardedMaintainer); pass
//                     --shards=N to size its validation pool (default 1)

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "core/block_maintainer.h"
#include "core/ctm_maintainer.h"
#include "core/key_equivalent_maintainer.h"
#include "core/sharded_maintainer.h"
#include "obs/export.h"
#include "relation/weak_instance.h"
#include "workload/generators.h"

namespace ird {

// Worker-pool width for the sharded benchmarks (--shards=N; default 1,
// i.e. the serial single-thread profile). Set by main() below.
size_t g_shard_jobs = 1;

namespace {

constexpr size_t kStreamLength = 256;
constexpr double kConflictRate = 0.25;

DatabaseState MakeState(const DatabaseScheme& scheme, size_t entities) {
  StateGenOptions opt;
  opt.entities = entities;
  opt.coverage = 0.7;
  opt.seed = 1234;
  return MakeConsistentState(scheme, opt);
}

void BM_CtmCheckInsert_Chain(benchmark::State& bench) {
  DatabaseScheme scheme = MakeChainScheme(4);
  DatabaseState state = MakeState(scheme, bench.range(0));
  auto m = CtmMaintainer::Create(std::move(state), /*verify=*/false);
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->state(), kStreamLength,
                                 kConflictRate, 42);
  size_t i = 0;
  size_t probes = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    ExtensionStats stats;
    auto verdict = m->CheckInsert(ins.rel, ins.tuple, &stats);
    benchmark::DoNotOptimize(verdict);
    probes += stats.probes;
  }
  bench.counters["tuples"] = static_cast<double>(m->state().TupleCount());
  bench.counters["probes/op"] =
      static_cast<double>(probes) / static_cast<double>(bench.iterations());
}
BENCHMARK(BM_CtmCheckInsert_Chain)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

void BM_Alg2CheckInsert_Chain(benchmark::State& bench) {
  DatabaseScheme scheme = MakeChainScheme(4);
  DatabaseState state = MakeState(scheme, bench.range(0));
  auto m = KeyEquivalentMaintainer::Create(std::move(state));
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->state(), kStreamLength,
                                 kConflictRate, 42);
  size_t i = 0;
  size_t lookups = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    MaintenanceStats stats;
    auto verdict = m->CheckInsert(ins.rel, ins.tuple, &stats);
    benchmark::DoNotOptimize(verdict);
    lookups += stats.lookups;
  }
  bench.counters["tuples"] = static_cast<double>(m->state().TupleCount());
  bench.counters["lookups/op"] =
      static_cast<double>(lookups) / static_cast<double>(bench.iterations());
}
BENCHMARK(BM_Alg2CheckInsert_Chain)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

void BM_Alg2CheckInsert_Split(benchmark::State& bench) {
  DatabaseScheme scheme = MakeSplitScheme(3);
  DatabaseState state = MakeState(scheme, bench.range(0));
  auto m = KeyEquivalentMaintainer::Create(std::move(state));
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->state(), kStreamLength,
                                 kConflictRate, 42);
  size_t i = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    auto verdict = m->CheckInsert(ins.rel, ins.tuple);
    benchmark::DoNotOptimize(verdict);
  }
  bench.counters["tuples"] = static_cast<double>(m->state().TupleCount());
}
BENCHMARK(BM_Alg2CheckInsert_Split)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

void BM_BlockMaintainerCheckInsert(benchmark::State& bench) {
  DatabaseScheme scheme = MakeBlockScheme(3, 3);
  DatabaseState state = MakeState(scheme, bench.range(0));
  auto m = IndependenceReducibleMaintainer::Create(std::move(state),
                                                   /*verify=*/false);
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->state(), kStreamLength,
                                 kConflictRate, 42);
  size_t i = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    auto verdict = m->CheckInsert(ins.rel, ins.tuple);
    benchmark::DoNotOptimize(verdict);
  }
  bench.counters["tuples"] = static_cast<double>(m->state().TupleCount());
}
BENCHMARK(BM_BlockMaintainerCheckInsert)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

// The sharded router's per-insert overhead over the single-shard oracle:
// same scheme, state and stream as BM_BlockMaintainerCheckInsert, routed
// through ShardedMaintainer::CheckInsert.
void BM_ShardedCheckInsert(benchmark::State& bench) {
  DatabaseScheme scheme = MakeBlockScheme(3, 3);
  DatabaseState state = MakeState(scheme, bench.range(0));
  auto m = ShardedMaintainer::Create(std::move(state), g_shard_jobs,
                                     /*verify=*/false);
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->Materialize(),
                                 kStreamLength, kConflictRate, 42);
  size_t i = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    auto verdict = m->CheckInsert(ins.rel, ins.tuple);
    benchmark::DoNotOptimize(verdict);
  }
  bench.counters["blocks"] = static_cast<double>(m->sharded_state().shard_count());
  bench.counters["jobs"] = static_cast<double>(m->jobs());
}
BENCHMARK(BM_ShardedCheckInsert)->Arg(100)->Arg(1000)->Arg(10000);

// Batched validation across shards: each iteration pushes a 64-op slice of
// the stream through InsertBatch, so distinct blocks validate on the pool
// (--shards=N workers). Applied inserts grow the state, as in
// BM_CtmApplyInsert.
void BM_ShardedInsertBatch(benchmark::State& bench) {
  DatabaseScheme scheme = MakeBlockScheme(4, 3);
  DatabaseState state = MakeState(scheme, bench.range(0));
  auto m = ShardedMaintainer::Create(std::move(state), g_shard_jobs,
                                     /*verify=*/false);
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->Materialize(), 4096,
                                 kConflictRate, 42);
  constexpr size_t kBatch = 64;
  size_t i = 0;
  size_t accepted = 0;
  for (auto _ : bench) {
    std::vector<InsertOp> ops;
    ops.reserve(kBatch);
    for (size_t k = 0; k < kBatch; ++k) {
      const InsertInstance& ins = stream[i++ % stream.size()];
      ops.push_back({ins.rel, ins.tuple});
    }
    std::vector<Status> verdicts = m->InsertBatch(ops);
    for (const Status& s : verdicts) accepted += s.ok() ? 1 : 0;
    benchmark::DoNotOptimize(verdicts);
  }
  bench.counters["blocks"] = static_cast<double>(m->sharded_state().shard_count());
  bench.counters["jobs"] = static_cast<double>(m->jobs());
  bench.counters["accepted/batch"] =
      static_cast<double>(accepted) / static_cast<double>(bench.iterations());
}
BENCHMARK(BM_ShardedInsertBatch)->Arg(100)->Arg(1000)->Arg(10000);

void NaiveCheckInsert(benchmark::State& bench, DatabaseScheme scheme) {
  DatabaseState state = MakeState(scheme, bench.range(0));
  auto stream =
      MakeInsertStream(scheme, state, kStreamLength, kConflictRate, 42);
  size_t i = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    bool verdict = WouldRemainConsistent(state, ins.rel, ins.tuple);
    benchmark::DoNotOptimize(verdict);
  }
  bench.counters["tuples"] = static_cast<double>(state.TupleCount());
}

void BM_NaiveCheckInsert_Chain(benchmark::State& bench) {
  NaiveCheckInsert(bench, MakeChainScheme(4));
}
BENCHMARK(BM_NaiveCheckInsert_Chain)->Arg(100)->Arg(1000)->Arg(10000);

void BM_NaiveCheckInsert_Split(benchmark::State& bench) {
  NaiveCheckInsert(bench, MakeSplitScheme(3));
}
BENCHMARK(BM_NaiveCheckInsert_Split)->Arg(100)->Arg(1000)->Arg(10000);

// Amortized cost of *applied* inserts (index maintenance included): builds
// the state through the maintainer itself.
void BM_CtmApplyInsert(benchmark::State& bench) {
  DatabaseScheme scheme = MakeChainScheme(4);
  DatabaseState empty(scheme);
  auto m = CtmMaintainer::Create(std::move(empty));
  IRD_CHECK(m.ok());
  auto stream = MakeInsertStream(scheme, m->state(), 100000,
                                 /*conflict_rate=*/0.0, 77);
  size_t i = 0;
  for (auto _ : bench) {
    const InsertInstance& ins = stream[i++ % stream.size()];
    benchmark::DoNotOptimize(m->Insert(ins.rel, ins.tuple));
  }
  bench.counters["final_tuples"] =
      static_cast<double>(m->state().TupleCount());
}
BENCHMARK(BM_CtmApplyInsert)->Iterations(100000);

}  // namespace
}  // namespace ird

// IRD_BENCHMARK_MAIN plus one extra flag: --shards=N (or --shards N) sizes
// the sharded benchmarks' validation pool. It must be stripped before
// benchmark::Initialize — ReportUnrecognizedArguments rejects flags the
// library doesn't know.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      ird::g_shard_jobs = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      ird::g_shard_jobs = std::strtoull(argv[++i], nullptr, 10);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (ird::g_shard_jobs == 0) ird::g_shard_jobs = 1;

  ird::obs::InitFromEnv();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ird::obs::ExportFromEnv(argv[0]);
}
