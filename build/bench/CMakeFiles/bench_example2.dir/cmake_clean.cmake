file(REMOVE_RECURSE
  "CMakeFiles/bench_example2.dir/bench_example2.cc.o"
  "CMakeFiles/bench_example2.dir/bench_example2.cc.o.d"
  "bench_example2"
  "bench_example2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
