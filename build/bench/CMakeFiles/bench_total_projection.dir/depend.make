# Empty dependencies file for bench_total_projection.
# This may be replaced when dependencies are built.
