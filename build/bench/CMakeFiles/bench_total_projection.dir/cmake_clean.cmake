file(REMOVE_RECURSE
  "CMakeFiles/bench_total_projection.dir/bench_total_projection.cc.o"
  "CMakeFiles/bench_total_projection.dir/bench_total_projection.cc.o.d"
  "bench_total_projection"
  "bench_total_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_total_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
