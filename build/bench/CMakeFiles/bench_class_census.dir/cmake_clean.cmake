file(REMOVE_RECURSE
  "CMakeFiles/bench_class_census.dir/bench_class_census.cc.o"
  "CMakeFiles/bench_class_census.dir/bench_class_census.cc.o.d"
  "bench_class_census"
  "bench_class_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_class_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
