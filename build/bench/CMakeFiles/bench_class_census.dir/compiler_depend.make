# Empty compiler generated dependencies file for bench_class_census.
# This may be replaced when dependencies are built.
