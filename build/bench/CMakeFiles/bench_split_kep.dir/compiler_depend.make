# Empty compiler generated dependencies file for bench_split_kep.
# This may be replaced when dependencies are built.
