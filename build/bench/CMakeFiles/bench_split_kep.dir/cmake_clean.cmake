file(REMOVE_RECURSE
  "CMakeFiles/bench_split_kep.dir/bench_split_kep.cc.o"
  "CMakeFiles/bench_split_kep.dir/bench_split_kep.cc.o.d"
  "bench_split_kep"
  "bench_split_kep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_split_kep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
