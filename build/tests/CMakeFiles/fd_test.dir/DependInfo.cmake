
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fd_test.cc" "tests/CMakeFiles/fd_test.dir/fd_test.cc.o" "gcc" "tests/CMakeFiles/fd_test.dir/fd_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ird_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ird_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ird_io.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/ird_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/ird_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/ird_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/tableau/CMakeFiles/ird_tableau.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/ird_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/ird_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ird_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
