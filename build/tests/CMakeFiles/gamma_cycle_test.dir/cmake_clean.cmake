file(REMOVE_RECURSE
  "CMakeFiles/gamma_cycle_test.dir/gamma_cycle_test.cc.o"
  "CMakeFiles/gamma_cycle_test.dir/gamma_cycle_test.cc.o.d"
  "gamma_cycle_test"
  "gamma_cycle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_cycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
