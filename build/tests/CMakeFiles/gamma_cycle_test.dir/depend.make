# Empty dependencies file for gamma_cycle_test.
# This may be replaced when dependencies are built.
