file(REMOVE_RECURSE
  "CMakeFiles/key_equivalence_test.dir/key_equivalence_test.cc.o"
  "CMakeFiles/key_equivalence_test.dir/key_equivalence_test.cc.o.d"
  "key_equivalence_test"
  "key_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
