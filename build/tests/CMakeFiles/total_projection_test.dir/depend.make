# Empty dependencies file for total_projection_test.
# This may be replaced when dependencies are built.
