file(REMOVE_RECURSE
  "CMakeFiles/total_projection_test.dir/total_projection_test.cc.o"
  "CMakeFiles/total_projection_test.dir/total_projection_test.cc.o.d"
  "total_projection_test"
  "total_projection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/total_projection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
