# Empty dependencies file for representative_index_test.
# This may be replaced when dependencies are built.
