file(REMOVE_RECURSE
  "CMakeFiles/representative_index_test.dir/representative_index_test.cc.o"
  "CMakeFiles/representative_index_test.dir/representative_index_test.cc.o.d"
  "representative_index_test"
  "representative_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/representative_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
