file(REMOVE_RECURSE
  "CMakeFiles/kep_recognition_test.dir/kep_recognition_test.cc.o"
  "CMakeFiles/kep_recognition_test.dir/kep_recognition_test.cc.o.d"
  "kep_recognition_test"
  "kep_recognition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kep_recognition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
