# Empty compiler generated dependencies file for kep_recognition_test.
# This may be replaced when dependencies are built.
