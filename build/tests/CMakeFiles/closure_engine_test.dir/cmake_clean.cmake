file(REMOVE_RECURSE
  "CMakeFiles/closure_engine_test.dir/closure_engine_test.cc.o"
  "CMakeFiles/closure_engine_test.dir/closure_engine_test.cc.o.d"
  "closure_engine_test"
  "closure_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closure_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
