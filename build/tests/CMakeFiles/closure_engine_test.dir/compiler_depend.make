# Empty compiler generated dependencies file for closure_engine_test.
# This may be replaced when dependencies are built.
