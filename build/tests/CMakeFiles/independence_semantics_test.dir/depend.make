# Empty dependencies file for independence_semantics_test.
# This may be replaced when dependencies are built.
