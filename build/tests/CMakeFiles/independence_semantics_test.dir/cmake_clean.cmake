file(REMOVE_RECURSE
  "CMakeFiles/independence_semantics_test.dir/independence_semantics_test.cc.o"
  "CMakeFiles/independence_semantics_test.dir/independence_semantics_test.cc.o.d"
  "independence_semantics_test"
  "independence_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/independence_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
