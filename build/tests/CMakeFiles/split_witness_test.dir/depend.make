# Empty dependencies file for split_witness_test.
# This may be replaced when dependencies are built.
