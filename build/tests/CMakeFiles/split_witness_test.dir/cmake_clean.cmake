file(REMOVE_RECURSE
  "CMakeFiles/split_witness_test.dir/split_witness_test.cc.o"
  "CMakeFiles/split_witness_test.dir/split_witness_test.cc.o.d"
  "split_witness_test"
  "split_witness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_witness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
