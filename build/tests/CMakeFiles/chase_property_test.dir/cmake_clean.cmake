file(REMOVE_RECURSE
  "CMakeFiles/chase_property_test.dir/chase_property_test.cc.o"
  "CMakeFiles/chase_property_test.dir/chase_property_test.cc.o.d"
  "chase_property_test"
  "chase_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
