# Empty dependencies file for expression_maintenance_test.
# This may be replaced when dependencies are built.
