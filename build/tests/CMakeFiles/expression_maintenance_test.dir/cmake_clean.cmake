file(REMOVE_RECURSE
  "CMakeFiles/expression_maintenance_test.dir/expression_maintenance_test.cc.o"
  "CMakeFiles/expression_maintenance_test.dir/expression_maintenance_test.cc.o.d"
  "expression_maintenance_test"
  "expression_maintenance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expression_maintenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
