# Empty dependencies file for block_maintainer_test.
# This may be replaced when dependencies are built.
