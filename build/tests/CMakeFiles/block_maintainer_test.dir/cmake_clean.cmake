file(REMOVE_RECURSE
  "CMakeFiles/block_maintainer_test.dir/block_maintainer_test.cc.o"
  "CMakeFiles/block_maintainer_test.dir/block_maintainer_test.cc.o.d"
  "block_maintainer_test"
  "block_maintainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_maintainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
