# Empty compiler generated dependencies file for ird_core.
# This may be replaced when dependencies are built.
