
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithm1_literal.cc" "src/core/CMakeFiles/ird_core.dir/algorithm1_literal.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/algorithm1_literal.cc.o.d"
  "/root/repo/src/core/augmentation.cc" "src/core/CMakeFiles/ird_core.dir/augmentation.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/augmentation.cc.o.d"
  "/root/repo/src/core/block_maintainer.cc" "src/core/CMakeFiles/ird_core.dir/block_maintainer.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/block_maintainer.cc.o.d"
  "/root/repo/src/core/classify.cc" "src/core/CMakeFiles/ird_core.dir/classify.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/classify.cc.o.d"
  "/root/repo/src/core/consistency.cc" "src/core/CMakeFiles/ird_core.dir/consistency.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/consistency.cc.o.d"
  "/root/repo/src/core/ctm_maintainer.cc" "src/core/CMakeFiles/ird_core.dir/ctm_maintainer.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/ctm_maintainer.cc.o.d"
  "/root/repo/src/core/expression_maintenance.cc" "src/core/CMakeFiles/ird_core.dir/expression_maintenance.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/expression_maintenance.cc.o.d"
  "/root/repo/src/core/independence.cc" "src/core/CMakeFiles/ird_core.dir/independence.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/independence.cc.o.d"
  "/root/repo/src/core/independence_witness.cc" "src/core/CMakeFiles/ird_core.dir/independence_witness.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/independence_witness.cc.o.d"
  "/root/repo/src/core/kep.cc" "src/core/CMakeFiles/ird_core.dir/kep.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/kep.cc.o.d"
  "/root/repo/src/core/key_equivalence.cc" "src/core/CMakeFiles/ird_core.dir/key_equivalence.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/key_equivalence.cc.o.d"
  "/root/repo/src/core/key_equivalent_maintainer.cc" "src/core/CMakeFiles/ird_core.dir/key_equivalent_maintainer.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/key_equivalent_maintainer.cc.o.d"
  "/root/repo/src/core/query_engine.cc" "src/core/CMakeFiles/ird_core.dir/query_engine.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/query_engine.cc.o.d"
  "/root/repo/src/core/recognition.cc" "src/core/CMakeFiles/ird_core.dir/recognition.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/recognition.cc.o.d"
  "/root/repo/src/core/representative_index.cc" "src/core/CMakeFiles/ird_core.dir/representative_index.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/representative_index.cc.o.d"
  "/root/repo/src/core/split.cc" "src/core/CMakeFiles/ird_core.dir/split.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/split.cc.o.d"
  "/root/repo/src/core/split_witness.cc" "src/core/CMakeFiles/ird_core.dir/split_witness.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/split_witness.cc.o.d"
  "/root/repo/src/core/state_key_index.cc" "src/core/CMakeFiles/ird_core.dir/state_key_index.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/state_key_index.cc.o.d"
  "/root/repo/src/core/total_projection.cc" "src/core/CMakeFiles/ird_core.dir/total_projection.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/total_projection.cc.o.d"
  "/root/repo/src/core/tuple_extension.cc" "src/core/CMakeFiles/ird_core.dir/tuple_extension.cc.o" "gcc" "src/core/CMakeFiles/ird_core.dir/tuple_extension.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebra/CMakeFiles/ird_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/hypergraph/CMakeFiles/ird_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/ird_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/tableau/CMakeFiles/ird_tableau.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/ird_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/ird_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ird_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
