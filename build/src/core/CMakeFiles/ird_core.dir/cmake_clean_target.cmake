file(REMOVE_RECURSE
  "libird_core.a"
)
