file(REMOVE_RECURSE
  "CMakeFiles/ird_relation.dir/database_state.cc.o"
  "CMakeFiles/ird_relation.dir/database_state.cc.o.d"
  "CMakeFiles/ird_relation.dir/partial_tuple.cc.o"
  "CMakeFiles/ird_relation.dir/partial_tuple.cc.o.d"
  "CMakeFiles/ird_relation.dir/relation.cc.o"
  "CMakeFiles/ird_relation.dir/relation.cc.o.d"
  "CMakeFiles/ird_relation.dir/weak_instance.cc.o"
  "CMakeFiles/ird_relation.dir/weak_instance.cc.o.d"
  "libird_relation.a"
  "libird_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ird_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
