
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relation/database_state.cc" "src/relation/CMakeFiles/ird_relation.dir/database_state.cc.o" "gcc" "src/relation/CMakeFiles/ird_relation.dir/database_state.cc.o.d"
  "/root/repo/src/relation/partial_tuple.cc" "src/relation/CMakeFiles/ird_relation.dir/partial_tuple.cc.o" "gcc" "src/relation/CMakeFiles/ird_relation.dir/partial_tuple.cc.o.d"
  "/root/repo/src/relation/relation.cc" "src/relation/CMakeFiles/ird_relation.dir/relation.cc.o" "gcc" "src/relation/CMakeFiles/ird_relation.dir/relation.cc.o.d"
  "/root/repo/src/relation/weak_instance.cc" "src/relation/CMakeFiles/ird_relation.dir/weak_instance.cc.o" "gcc" "src/relation/CMakeFiles/ird_relation.dir/weak_instance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tableau/CMakeFiles/ird_tableau.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/ird_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/ird_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ird_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
