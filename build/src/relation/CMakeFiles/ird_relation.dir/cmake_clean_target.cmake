file(REMOVE_RECURSE
  "libird_relation.a"
)
