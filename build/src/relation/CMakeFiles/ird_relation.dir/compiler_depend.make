# Empty compiler generated dependencies file for ird_relation.
# This may be replaced when dependencies are built.
