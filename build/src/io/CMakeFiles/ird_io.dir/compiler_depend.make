# Empty compiler generated dependencies file for ird_io.
# This may be replaced when dependencies are built.
