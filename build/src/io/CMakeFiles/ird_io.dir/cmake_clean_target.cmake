file(REMOVE_RECURSE
  "libird_io.a"
)
