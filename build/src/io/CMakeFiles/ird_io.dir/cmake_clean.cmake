file(REMOVE_RECURSE
  "CMakeFiles/ird_io.dir/text_format.cc.o"
  "CMakeFiles/ird_io.dir/text_format.cc.o.d"
  "libird_io.a"
  "libird_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ird_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
