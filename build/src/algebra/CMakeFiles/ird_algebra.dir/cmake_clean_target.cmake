file(REMOVE_RECURSE
  "libird_algebra.a"
)
