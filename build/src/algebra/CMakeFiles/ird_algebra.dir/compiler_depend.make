# Empty compiler generated dependencies file for ird_algebra.
# This may be replaced when dependencies are built.
