file(REMOVE_RECURSE
  "CMakeFiles/ird_algebra.dir/expression.cc.o"
  "CMakeFiles/ird_algebra.dir/expression.cc.o.d"
  "CMakeFiles/ird_algebra.dir/extension_join.cc.o"
  "CMakeFiles/ird_algebra.dir/extension_join.cc.o.d"
  "libird_algebra.a"
  "libird_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ird_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
