# Empty compiler generated dependencies file for ird_fd.
# This may be replaced when dependencies are built.
