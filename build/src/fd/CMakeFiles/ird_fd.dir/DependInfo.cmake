
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fd/closure_engine.cc" "src/fd/CMakeFiles/ird_fd.dir/closure_engine.cc.o" "gcc" "src/fd/CMakeFiles/ird_fd.dir/closure_engine.cc.o.d"
  "/root/repo/src/fd/fd_set.cc" "src/fd/CMakeFiles/ird_fd.dir/fd_set.cc.o" "gcc" "src/fd/CMakeFiles/ird_fd.dir/fd_set.cc.o.d"
  "/root/repo/src/fd/key_finder.cc" "src/fd/CMakeFiles/ird_fd.dir/key_finder.cc.o" "gcc" "src/fd/CMakeFiles/ird_fd.dir/key_finder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ird_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
