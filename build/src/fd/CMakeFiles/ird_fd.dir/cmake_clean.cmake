file(REMOVE_RECURSE
  "CMakeFiles/ird_fd.dir/closure_engine.cc.o"
  "CMakeFiles/ird_fd.dir/closure_engine.cc.o.d"
  "CMakeFiles/ird_fd.dir/fd_set.cc.o"
  "CMakeFiles/ird_fd.dir/fd_set.cc.o.d"
  "CMakeFiles/ird_fd.dir/key_finder.cc.o"
  "CMakeFiles/ird_fd.dir/key_finder.cc.o.d"
  "libird_fd.a"
  "libird_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ird_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
