file(REMOVE_RECURSE
  "libird_fd.a"
)
