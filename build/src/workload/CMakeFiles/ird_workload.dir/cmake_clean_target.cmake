file(REMOVE_RECURSE
  "libird_workload.a"
)
