# Empty compiler generated dependencies file for ird_workload.
# This may be replaced when dependencies are built.
