file(REMOVE_RECURSE
  "CMakeFiles/ird_workload.dir/generators.cc.o"
  "CMakeFiles/ird_workload.dir/generators.cc.o.d"
  "libird_workload.a"
  "libird_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ird_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
