file(REMOVE_RECURSE
  "libird_base.a"
)
