file(REMOVE_RECURSE
  "CMakeFiles/ird_base.dir/attribute_set.cc.o"
  "CMakeFiles/ird_base.dir/attribute_set.cc.o.d"
  "CMakeFiles/ird_base.dir/status.cc.o"
  "CMakeFiles/ird_base.dir/status.cc.o.d"
  "CMakeFiles/ird_base.dir/universe.cc.o"
  "CMakeFiles/ird_base.dir/universe.cc.o.d"
  "libird_base.a"
  "libird_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ird_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
