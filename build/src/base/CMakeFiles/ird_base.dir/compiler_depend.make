# Empty compiler generated dependencies file for ird_base.
# This may be replaced when dependencies are built.
