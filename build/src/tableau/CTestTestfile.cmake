# CMake generated Testfile for 
# Source directory: /root/repo/src/tableau
# Build directory: /root/repo/build/src/tableau
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
