file(REMOVE_RECURSE
  "CMakeFiles/ird_tableau.dir/chase.cc.o"
  "CMakeFiles/ird_tableau.dir/chase.cc.o.d"
  "CMakeFiles/ird_tableau.dir/homomorphism.cc.o"
  "CMakeFiles/ird_tableau.dir/homomorphism.cc.o.d"
  "CMakeFiles/ird_tableau.dir/lossless.cc.o"
  "CMakeFiles/ird_tableau.dir/lossless.cc.o.d"
  "CMakeFiles/ird_tableau.dir/tableau.cc.o"
  "CMakeFiles/ird_tableau.dir/tableau.cc.o.d"
  "libird_tableau.a"
  "libird_tableau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ird_tableau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
