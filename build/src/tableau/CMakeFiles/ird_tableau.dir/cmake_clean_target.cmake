file(REMOVE_RECURSE
  "libird_tableau.a"
)
