
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tableau/chase.cc" "src/tableau/CMakeFiles/ird_tableau.dir/chase.cc.o" "gcc" "src/tableau/CMakeFiles/ird_tableau.dir/chase.cc.o.d"
  "/root/repo/src/tableau/homomorphism.cc" "src/tableau/CMakeFiles/ird_tableau.dir/homomorphism.cc.o" "gcc" "src/tableau/CMakeFiles/ird_tableau.dir/homomorphism.cc.o.d"
  "/root/repo/src/tableau/lossless.cc" "src/tableau/CMakeFiles/ird_tableau.dir/lossless.cc.o" "gcc" "src/tableau/CMakeFiles/ird_tableau.dir/lossless.cc.o.d"
  "/root/repo/src/tableau/tableau.cc" "src/tableau/CMakeFiles/ird_tableau.dir/tableau.cc.o" "gcc" "src/tableau/CMakeFiles/ird_tableau.dir/tableau.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/ird_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/ird_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ird_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
