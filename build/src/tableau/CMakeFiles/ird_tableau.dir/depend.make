# Empty dependencies file for ird_tableau.
# This may be replaced when dependencies are built.
