file(REMOVE_RECURSE
  "CMakeFiles/ird_schema.dir/database_scheme.cc.o"
  "CMakeFiles/ird_schema.dir/database_scheme.cc.o.d"
  "libird_schema.a"
  "libird_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ird_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
