file(REMOVE_RECURSE
  "libird_schema.a"
)
