# Empty dependencies file for ird_schema.
# This may be replaced when dependencies are built.
