file(REMOVE_RECURSE
  "CMakeFiles/ird_hypergraph.dir/gamma_cycle.cc.o"
  "CMakeFiles/ird_hypergraph.dir/gamma_cycle.cc.o.d"
  "CMakeFiles/ird_hypergraph.dir/hypergraph.cc.o"
  "CMakeFiles/ird_hypergraph.dir/hypergraph.cc.o.d"
  "libird_hypergraph.a"
  "libird_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ird_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
