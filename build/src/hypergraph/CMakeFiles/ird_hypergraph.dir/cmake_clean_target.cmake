file(REMOVE_RECURSE
  "libird_hypergraph.a"
)
