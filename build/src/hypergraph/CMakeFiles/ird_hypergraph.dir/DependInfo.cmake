
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypergraph/gamma_cycle.cc" "src/hypergraph/CMakeFiles/ird_hypergraph.dir/gamma_cycle.cc.o" "gcc" "src/hypergraph/CMakeFiles/ird_hypergraph.dir/gamma_cycle.cc.o.d"
  "/root/repo/src/hypergraph/hypergraph.cc" "src/hypergraph/CMakeFiles/ird_hypergraph.dir/hypergraph.cc.o" "gcc" "src/hypergraph/CMakeFiles/ird_hypergraph.dir/hypergraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/ird_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/ird_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ird_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
