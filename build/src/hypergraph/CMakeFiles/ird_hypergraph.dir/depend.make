# Empty dependencies file for ird_hypergraph.
# This may be replaced when dependencies are built.
