# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("fd")
subdirs("schema")
subdirs("tableau")
subdirs("relation")
subdirs("algebra")
subdirs("hypergraph")
subdirs("core")
subdirs("workload")
subdirs("io")
