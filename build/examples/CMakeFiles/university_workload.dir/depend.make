# Empty dependencies file for university_workload.
# This may be replaced when dependencies are built.
