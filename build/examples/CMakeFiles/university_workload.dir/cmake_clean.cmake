file(REMOVE_RECURSE
  "CMakeFiles/university_workload.dir/university_workload.cpp.o"
  "CMakeFiles/university_workload.dir/university_workload.cpp.o.d"
  "university_workload"
  "university_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
