# Empty dependencies file for maintenance_demo.
# This may be replaced when dependencies are built.
