# Empty dependencies file for ird_shell.
# This may be replaced when dependencies are built.
