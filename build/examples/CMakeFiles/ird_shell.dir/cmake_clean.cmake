file(REMOVE_RECURSE
  "CMakeFiles/ird_shell.dir/ird_shell.cpp.o"
  "CMakeFiles/ird_shell.dir/ird_shell.cpp.o.d"
  "ird_shell"
  "ird_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ird_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
