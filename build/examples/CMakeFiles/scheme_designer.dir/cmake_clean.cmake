file(REMOVE_RECURSE
  "CMakeFiles/scheme_designer.dir/scheme_designer.cpp.o"
  "CMakeFiles/scheme_designer.dir/scheme_designer.cpp.o.d"
  "scheme_designer"
  "scheme_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
