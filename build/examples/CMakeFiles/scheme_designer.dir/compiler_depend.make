# Empty compiler generated dependencies file for scheme_designer.
# This may be replaced when dependencies are built.
