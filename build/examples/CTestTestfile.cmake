# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_university_workload "/root/repo/build/examples/university_workload")
set_tests_properties(example_university_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scheme_designer "/root/repo/build/examples/scheme_designer")
set_tests_properties(example_scheme_designer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scheme_designer_file "/root/repo/build/examples/scheme_designer" "/root/repo/examples/data/university.scheme")
set_tests_properties(example_scheme_designer_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_witness_explorer "/root/repo/build/examples/witness_explorer")
set_tests_properties(example_witness_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ird_shell "/root/repo/build/examples/ird_shell" "/root/repo/examples/data/shell_demo.txt")
set_tests_properties(example_ird_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
