#include "hypergraph/gamma_cycle.h"

#include <gtest/gtest.h>

#include <random>

#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

Hypergraph H(std::vector<AttributeSet> edges) {
  return Hypergraph(std::move(edges));
}

// Re-verifies a produced witness against the definition.
void VerifyCycle(const Hypergraph& h, const GammaCycle& cycle) {
  const size_t m = cycle.edges.size();
  ASSERT_GE(m, 3u);
  ASSERT_EQ(cycle.connectors.size(), m);
  // Distinctness.
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      EXPECT_NE(cycle.edges[i], cycle.edges[j]);
      EXPECT_NE(cycle.connectors[i], cycle.connectors[j]);
    }
  }
  for (size_t i = 0; i < m; ++i) {
    const AttributeSet& si = h.edges()[cycle.edges[i]];
    const AttributeSet& snext = h.edges()[cycle.edges[(i + 1) % m]];
    AttributeId x = cycle.connectors[i];
    EXPECT_TRUE(si.Contains(x));
    EXPECT_TRUE(snext.Contains(x));
    if (i == 0) continue;  // x1 is the exempt connector
    for (size_t j = 0; j < m; ++j) {
      if (j == i || j == (i + 1) % m) continue;
      EXPECT_FALSE(h.edges()[cycle.edges[j]].Contains(x))
          << "restricted connector leaked into another cycle edge";
    }
  }
}

TEST(GammaCycleTest, TriangleHasCycle) {
  Hypergraph h = H({{0, 1}, {1, 2}, {0, 2}});
  auto cycle = FindGammaCycle(h);
  ASSERT_TRUE(cycle.has_value());
  VerifyCycle(h, *cycle);
  EXPECT_EQ(cycle->edges.size(), 3u);
}

TEST(GammaCycleTest, PathAndStarAreAcyclic) {
  EXPECT_FALSE(FindGammaCycle(H({{0, 1}, {1, 2}, {2, 3}})).has_value());
  EXPECT_FALSE(FindGammaCycle(H({{0, 1}, {0, 2}, {0, 3}})).has_value());
  EXPECT_FALSE(FindGammaCycle(H({{0, 1, 2}})).has_value());
}

TEST(GammaCycleTest, SunflowerHasCycleWithExemptCore) {
  // {124, 014, 034}: γ-cyclic with the shared core node 4 as the exempt
  // connector.
  Hypergraph h = H({{1, 2, 4}, {0, 1, 4}, {0, 3, 4}});
  auto cycle = FindGammaCycle(h);
  ASSERT_TRUE(cycle.has_value());
  VerifyCycle(h, *cycle);
}

TEST(GammaCycleTest, FanTriangleHasCycle) {
  Hypergraph h = H({{0, 3, 4}, {1, 3, 4}, {0, 2, 3}, {2, 3, 4}});
  auto cycle = FindGammaCycle(h);
  ASSERT_TRUE(cycle.has_value());
  VerifyCycle(h, *cycle);
}

TEST(GammaCycleTest, AgreesWithUmcRecognizerOnPaperSchemes) {
  std::vector<DatabaseScheme> schemes = {
      test::Example1R(), test::Example1S(), test::Example3(),
      test::Example4(),  test::Example9(),  test::Example11(),
      test::Example13()};
  for (const DatabaseScheme& s : schemes) {
    Hypergraph h = Hypergraph::Of(s);
    EXPECT_EQ(!FindGammaCycle(h).has_value(), IsGammaAcyclic(h))
        << s.ToString();
  }
}

TEST(GammaCycleTest, AgreesWithUmcRecognizerOnRandomHypergraphs) {
  std::mt19937_64 rng(77);
  size_t checked = 0;
  size_t cyclic = 0;
  for (int round = 0; round < 300; ++round) {
    size_t nodes = 3 + rng() % 4;  // 3..6
    size_t edges = 2 + rng() % 4;  // 2..5
    std::vector<AttributeSet> e;
    for (size_t i = 0; i < edges; ++i) {
      AttributeSet set;
      size_t arity = 2 + rng() % 2;
      while (set.Count() < arity) {
        set.Add(static_cast<AttributeId>(rng() % nodes));
      }
      bool dup = false;
      for (const AttributeSet& other : e) {
        if (other == set) dup = true;
      }
      if (!dup) e.push_back(set);
    }
    Hypergraph h(std::move(e));
    ++checked;
    auto cycle = FindGammaCycle(h);
    if (cycle.has_value()) {
      VerifyCycle(h, *cycle);
      ++cyclic;
    }
    EXPECT_EQ(!cycle.has_value(), IsGammaAcyclic(h)) << "round " << round;
  }
  EXPECT_GT(checked, 0u);
  EXPECT_GT(cyclic, 20u);   // both outcomes well represented
  EXPECT_LT(cyclic, checked - 20u);
}

TEST(GammaCycleTest, TreeFamilyIsAcyclic) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    DatabaseScheme s = MakeTreeScheme(6 + seed % 5, 0.5, seed);
    EXPECT_FALSE(FindGammaCycle(Hypergraph::Of(s)).has_value())
        << s.ToString();
  }
}

}  // namespace
}  // namespace ird
