#include <gtest/gtest.h>

#include "core/split.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;

TEST(SplitTest, Example8PerClosureVerdicts) {
  // Example 8: BC is split in R1+, R2+ and R5+, but R3 and R4 are
  // split-free.
  DatabaseScheme s = test::Example8();
  AttributeSet bc = Attrs(s, "BC");
  EXPECT_TRUE(IsKeySplitInClosureOf(s, bc, 0));   // R1(AC)
  EXPECT_TRUE(IsKeySplitInClosureOf(s, bc, 1));   // R2(AB)
  EXPECT_FALSE(IsKeySplitInClosureOf(s, bc, 2));  // R3(ABC) contains BC
  EXPECT_FALSE(IsKeySplitInClosureOf(s, bc, 3));  // R4(BCD) contains BC
  EXPECT_TRUE(IsKeySplitInClosureOf(s, bc, 4));   // R5(AD)
  // The other keys of Example 8 are not split.
  EXPECT_FALSE(IsKeySplit(s, Attrs(s, "A")));
  EXPECT_FALSE(IsKeySplit(s, Attrs(s, "D")));
  EXPECT_TRUE(IsKeySplit(s, bc));
  EXPECT_FALSE(IsSplitFree(s));
}

TEST(SplitTest, Example9IsSplitFree) {
  // All keys are single attributes, so nothing can be split.
  DatabaseScheme s = test::Example9();
  EXPECT_TRUE(IsSplitFree(s));
  EXPECT_TRUE(SplitKeys(s).empty());
}

TEST(SplitTest, Example4BCKeyIsSplit) {
  // Example 5 argues Example 4's scheme is not ctm; the split key is BC.
  DatabaseScheme s = test::Example4();
  EXPECT_TRUE(IsKeySplit(s, Attrs(s, "BC")));
  EXPECT_FALSE(IsKeySplit(s, Attrs(s, "A")));
  EXPECT_FALSE(IsKeySplit(s, Attrs(s, "E")));
  EXPECT_FALSE(IsKeySplit(s, Attrs(s, "D")));
  std::vector<AttributeSet> split = SplitKeys(s);
  ASSERT_EQ(split.size(), 1u);
  EXPECT_EQ(split[0], Attrs(s, "BC"));
}

TEST(SplitTest, Example6IsSplitFree) {
  // Example 6's keys {A, B, E, CD}: CD is coverable only through R6 itself
  // (the schemes without CD are R1..R5; their closures never cover CD?
  // closure of R2(AC) without R6: A determines B, E, C, D through R3...
  // The efficient test decides; pin its agreement with the definition.
  DatabaseScheme s = test::Example6();
  EXPECT_EQ(IsKeySplit(s, Attrs(s, "CD")),
            IsKeySplitByDefinition(s, Attrs(s, "CD")));
}

TEST(SplitTest, Lemma38AgreesWithDefinitionOnPaperSchemes) {
  std::vector<DatabaseScheme> schemes = {test::Example3(), test::Example4(),
                                         test::Example6(), test::Example8(),
                                         test::Example9()};
  for (const DatabaseScheme& s : schemes) {
    for (const auto& [rel, key] : s.AllKeys()) {
      EXPECT_EQ(IsKeySplit(s, key), IsKeySplitByDefinition(s, key))
          << s.relation(rel).name << " key "
          << s.universe().Format(key);
    }
  }
}

TEST(SplitTest, Lemma38AgreesWithDefinitionOnGeneratedSchemes) {
  std::vector<DatabaseScheme> schemes = {
      MakeChainScheme(5), MakeSplitScheme(2), MakeSplitScheme(4),
      MakeStarScheme(4), MakeBlockScheme(2, 3)};
  for (const DatabaseScheme& s : schemes) {
    for (const auto& [rel, key] : s.AllKeys()) {
      EXPECT_EQ(IsKeySplit(s, key), IsKeySplitByDefinition(s, key))
          << s.ToString() << " key " << s.universe().Format(key);
    }
  }
}

TEST(SplitTest, GeneratedSplitSchemes) {
  for (size_t k : {2u, 3u, 5u}) {
    DatabaseScheme s = MakeSplitScheme(k);
    EXPECT_FALSE(IsSplitFree(s)) << k;
    // The split key is the B-block.
    std::vector<AttributeSet> split = SplitKeys(s);
    ASSERT_EQ(split.size(), 1u);
    EXPECT_EQ(split[0].Count(), k);
  }
  for (size_t n : {2u, 4u, 7u}) {
    EXPECT_TRUE(IsSplitFree(MakeChainScheme(n))) << n;
  }
}

TEST(SplitTest, PoolRestrictedSplitness) {
  // Within Example 11's blocks, everything is split-free.
  DatabaseScheme s = test::Example11();
  EXPECT_TRUE(IsSplitFree(s, {0, 1, 2, 3}));
  EXPECT_TRUE(IsSplitFree(s, {4, 5}));
}

}  // namespace
}  // namespace ird
