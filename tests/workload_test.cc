#include <gtest/gtest.h>

#include "core/classify.h"
#include "core/independence.h"
#include "core/key_equivalence.h"
#include "core/recognition.h"
#include "core/split.h"
#include "relation/weak_instance.h"
#include "workload/generators.h"

namespace ird {
namespace {

TEST(GeneratorTest, ChainSchemeGuarantees) {
  for (size_t n : {1u, 2u, 5u, 9u}) {
    DatabaseScheme s = MakeChainScheme(n);
    EXPECT_TRUE(s.Validate().ok()) << s.ToString();
    EXPECT_EQ(s.size(), n);
    EXPECT_TRUE(IsKeyEquivalent(s));
    EXPECT_TRUE(IsSplitFree(s));
  }
}

TEST(GeneratorTest, SplitSchemeGuarantees) {
  for (size_t k : {2u, 3u, 6u}) {
    DatabaseScheme s = MakeSplitScheme(k);
    EXPECT_TRUE(s.Validate().ok()) << s.ToString();
    EXPECT_TRUE(IsKeyEquivalent(s));
    EXPECT_FALSE(IsSplitFree(s));
  }
}

TEST(GeneratorTest, IndependentSchemeGuarantees) {
  for (size_t m : {1u, 2u, 5u, 10u}) {
    DatabaseScheme s = MakeIndependentScheme(m);
    EXPECT_TRUE(s.Validate().ok()) << s.ToString();
    EXPECT_TRUE(IsIndependent(s));
    EXPECT_TRUE(s.IsBcnf());
  }
}

TEST(GeneratorTest, BlockSchemeGuarantees) {
  for (size_t blocks : {1u, 2u, 4u}) {
    for (size_t size : {2u, 4u}) {
      DatabaseScheme s = MakeBlockScheme(blocks, size);
      EXPECT_TRUE(s.Validate().ok()) << s.ToString();
      RecognitionResult r = RecognizeIndependenceReducible(s);
      EXPECT_TRUE(r.accepted);
      EXPECT_EQ(r.partition.size(), blocks);
    }
  }
}

TEST(GeneratorTest, StarSchemeGuarantees) {
  DatabaseScheme s = MakeStarScheme(5);
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_TRUE(s.IsBcnf());
  EXPECT_TRUE(IsIndependent(s));
  EXPECT_TRUE(IsKeyEquivalent(s));
}

TEST(GeneratorTest, ConsistentStatesAreConsistent) {
  std::vector<DatabaseScheme> schemes = {MakeChainScheme(4),
                                         MakeSplitScheme(3),
                                         MakeBlockScheme(2, 3)};
  for (const DatabaseScheme& s : schemes) {
    for (uint64_t seed : {1u, 7u, 8u}) {
      StateGenOptions opt;
      opt.entities = 40;
      opt.coverage = 0.5;
      opt.seed = seed;
      DatabaseState state = MakeConsistentState(s, opt);
      EXPECT_GT(state.TupleCount(), 0u);
      EXPECT_TRUE(IsConsistent(state)) << s.ToString();
    }
  }
}

TEST(GeneratorTest, CoverageOneFillsEveryRelation) {
  DatabaseScheme s = MakeChainScheme(3);
  StateGenOptions opt;
  opt.entities = 10;
  opt.coverage = 1.0;
  DatabaseState state = MakeConsistentState(s, opt);
  for (size_t rel = 0; rel < state.relation_count(); ++rel) {
    EXPECT_EQ(state.relation(rel).size(), 10u);
  }
}

TEST(GeneratorTest, InsertStreamExpectationsAreCorrect) {
  DatabaseScheme s = MakeChainScheme(4);
  StateGenOptions opt;
  opt.entities = 30;
  opt.seed = 2;
  DatabaseState state = MakeConsistentState(s, opt);
  std::vector<InsertInstance> stream = MakeInsertStream(s, state, 60, 0.5, 3);
  size_t conflicts = 0;
  for (const InsertInstance& ins : stream) {
    EXPECT_EQ(WouldRemainConsistent(state, ins.rel, ins.tuple),
              ins.expected_consistent);
    conflicts += ins.expected_consistent ? 0 : 1;
  }
  // With conflict_rate 0.5, both kinds must appear.
  EXPECT_GT(conflicts, 5u);
  EXPECT_LT(conflicts, 55u);
}

TEST(GeneratorTest, RandomSchemesAreValid) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    RandomSchemeOptions opt;
    opt.universe_size = 6 + seed % 3;
    opt.relations = 3 + seed % 4;
    opt.seed = seed;
    DatabaseScheme s = MakeRandomScheme(opt);
    Status valid = s.Validate();
    EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << s.ToString();
  }
}

TEST(GeneratorTest, RandomSchemesAreDeterministicPerSeed) {
  RandomSchemeOptions opt;
  opt.seed = 12;
  EXPECT_EQ(MakeRandomScheme(opt).ToString(), MakeRandomScheme(opt).ToString());
}

}  // namespace
}  // namespace ird
