#include "base/status.h"

#include <gtest/gtest.h>

#include "fd/key_finder.h"

namespace ird {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Inconsistent("no weak instance");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInconsistent);
  EXPECT_EQ(s.message(), "no weak instance");
  EXPECT_EQ(s.ToString(), "INCONSISTENT: no weak instance");
}

TEST(StatusTest, AllCodeNamesAreDistinct) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "PARSE_ERROR");
}

TEST(ResultTest, ValueAccess) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorAccess) {
  Result<int> r = NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status FailsThenPropagates() {
  IRD_RETURN_IF_ERROR(InvalidArgument("inner"));
  return OkStatus();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  Status s = FailsThenPropagates();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "inner");
}

using StatusDeathTest = ::testing::Test;

TEST(StatusDeathTest, ValueOnErrorAborts) {
  Result<int> r = NotFound("gone");
  EXPECT_DEATH(r.value(), "value\\(\\) on failed Result");
}

TEST(StatusDeathTest, GuardedExponentialApisAbortLoudly) {
  // The exponential enumerations refuse oversized inputs instead of
  // silently hanging.
  AttributeSet huge = AttributeSet::AllUpTo(30);
  FdSet empty;
  EXPECT_DEATH(FindCandidateKeys(huge, empty), "exponential");
}

}  // namespace
}  // namespace ird
