#include <gtest/gtest.h>

#include "core/key_equivalence.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;

TEST(SchemeClosureTest, Algorithm3ReachesFixpoint) {
  DatabaseScheme s = test::Example9();  // chain AB-BC-CD-DE
  SchemeClosure closure = ComputeSchemeClosure(s, 0);
  EXPECT_EQ(closure.closure, Attrs(s, "ABCDE"));
  // The chain absorbs R2, R3, R4 in order.
  ASSERT_EQ(closure.steps.size(), 3u);
  EXPECT_EQ(closure.steps[0].scheme_index, 1u);
  EXPECT_EQ(closure.steps[0].closure_before, Attrs(s, "AB"));
}

TEST(SchemeClosureTest, OneWayKeysStopTheClosure) {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A"});
  s.AddRelation("R2", "BC", {"B"});
  // From R2, B -> C but nothing reaches A.
  EXPECT_EQ(ComputeSchemeClosure(s, 1).closure, Attrs(s, "BC"));
  EXPECT_EQ(ComputeSchemeClosure(s, 0).closure, Attrs(s, "ABC"));
}

TEST(SchemeClosureTest, PoolRestrictsTheComputation) {
  DatabaseScheme s = test::Example9();
  // Only R1 and R2 in the pool: closure of R1 stops at ABC.
  EXPECT_EQ(ComputeSchemeClosure(s, 0, {0, 1}).closure, Attrs(s, "ABC"));
}

TEST(SchemeClosureTest, MatchesAttributeClosure) {
  // Algorithm 3's scheme-level closure equals the FD attribute closure for
  // embedded key dependencies.
  std::vector<DatabaseScheme> schemes = {test::Example1R(), test::Example4(),
                                         test::Example8(), test::Example13()};
  for (const DatabaseScheme& s : schemes) {
    for (size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(ComputeSchemeClosure(s, i).closure,
                s.key_dependencies().Closure(s.relation(i).attrs))
          << s.relation(i).name;
    }
  }
}

TEST(KeyEquivalenceTest, PaperExamples) {
  EXPECT_TRUE(IsKeyEquivalent(test::Example3()));
  EXPECT_TRUE(IsKeyEquivalent(test::Example4()));
  EXPECT_TRUE(IsKeyEquivalent(test::Example6()));
  EXPECT_TRUE(IsKeyEquivalent(test::Example8()));
  EXPECT_TRUE(IsKeyEquivalent(test::Example9()));
  // Example 1's R is NOT key-equivalent (CSG does not reach H).
  EXPECT_FALSE(IsKeyEquivalent(test::Example1R()));
  // Example 11 is not key-equivalent as a whole (DEF does not reach A).
  EXPECT_FALSE(IsKeyEquivalent(test::Example11()));
  // Example 2's scheme: AB's closure misses nothing? AB -> nothing beyond
  // C; closure(R2) = BC misses A.
  EXPECT_FALSE(IsKeyEquivalent(test::Example2()));
}

TEST(KeyEquivalenceTest, SubsetPools) {
  DatabaseScheme s = test::Example11();
  // The blocks of Example 11's partition are each key-equivalent.
  EXPECT_TRUE(IsKeyEquivalentSubset(s, {0, 1, 2, 3}));
  EXPECT_TRUE(IsKeyEquivalentSubset(s, {4, 5}));
  // A mixed pool is not.
  EXPECT_FALSE(IsKeyEquivalentSubset(s, {0, 4}));
}

TEST(KeyEquivalenceTest, GeneratedFamilies) {
  for (size_t n : {1u, 3u, 6u}) {
    EXPECT_TRUE(IsKeyEquivalent(MakeChainScheme(n))) << n;
  }
  for (size_t k : {2u, 3u, 5u}) {
    EXPECT_TRUE(IsKeyEquivalent(MakeSplitScheme(k))) << k;
  }
  // The independent snowflake is not key-equivalent for m >= 2.
  EXPECT_FALSE(IsKeyEquivalent(MakeIndependentScheme(3)));
  EXPECT_TRUE(IsKeyEquivalent(MakeIndependentScheme(1)));
  // The star is key-equivalent (C is a key of every relation).
  EXPECT_TRUE(IsKeyEquivalent(MakeStarScheme(4)));
}

TEST(KeyEquivalenceTest, KeyEquivalentImpliesBcnf) {
  // Lemma 3.1 on the key-equivalent examples and generated families.
  std::vector<DatabaseScheme> schemes = {
      test::Example3(),    test::Example4(), test::Example6(),
      test::Example8(),    test::Example9(), MakeChainScheme(5),
      MakeSplitScheme(3),  MakeStarScheme(3)};
  for (const DatabaseScheme& s : schemes) {
    ASSERT_TRUE(IsKeyEquivalent(s));
    EXPECT_TRUE(s.IsBcnf()) << s.ToString();
  }
}

}  // namespace
}  // namespace ird
