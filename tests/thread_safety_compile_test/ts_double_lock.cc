// MISUSE: re-acquires a non-reentrant mutex already held (self-deadlock).

#include "base/mutex.h"

int main() {
  ird::Mutex mu;
  mu.Lock();
  mu.Lock();  // already held
  mu.Unlock();
  mu.Unlock();
  return 0;
}
