// MISUSE: reads IRD_GUARDED_BY data without holding the guarding mutex.
// A clang -Wthread-safety build must reject this translation unit; the
// harness in CMakeLists.txt asserts the build fails with a thread-safety
// diagnostic.

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

struct Account {
  ird::Mutex mu;
  int balance IRD_GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Account account;
  return account.balance;  // read without account.mu held
}
