// MISUSE: calls an IRD_REQUIRES(mu) helper without holding mu — the
// "private helper assumes the lock" contract the annotations pin down.

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class Engine {
 public:
  void BumpLocked() IRD_REQUIRES(mu_) { ++hits_; }

  ird::Mutex mu_;

 private:
  int hits_ IRD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Engine engine;
  engine.BumpLocked();  // caller does not hold engine.mu_
  return 0;
}
