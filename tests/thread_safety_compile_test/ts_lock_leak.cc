// MISUSE: acquires a mutex and returns without releasing it (the leak a
// scoped MutexLock exists to prevent).

#include "base/mutex.h"

int main() {
  ird::Mutex mu;
  mu.Lock();
  return 0;  // mu still held at end of function
}
