// MISUSE: waits on a CondVar without holding the mutex it releases —
// undefined behavior with std::condition_variable, a compile error here.

#include "base/mutex.h"

int main() {
  ird::Mutex mu;
  ird::CondVar cv;
  cv.Wait(mu);  // Wait requires mu held
  return 0;
}
