// MISUSE: releases a capability the caller does not hold.

#include "base/mutex.h"

int main() {
  ird::Mutex mu;
  mu.Unlock();  // never locked
  return 0;
}
