// FIXTURE: a header in the oracle layer that smuggles in the engine —
// the hard-banned edge, one hop removed from the translation unit so the
// lint has to print the include chain.
#ifndef IRD_ARCH_FIXTURE_BRIDGE_H_
#define IRD_ARCH_FIXTURE_BRIDGE_H_
#include "engine/scheme_analysis.h"
#endif
