// FIXTURE: pulls the banned engine dependency in through a local header.
#include "oracle/bridge.h"
