// FIXTURE: an innocent file that layering_stale.spec carries a waiver
// for — the waiver is unused, which the lint must flag as stale.
#include "base/status.h"
