// FIXTURE: goes around the obs facade straight to an internal header.
#include "obs/span.h"
