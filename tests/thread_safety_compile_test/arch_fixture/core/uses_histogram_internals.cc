// FIXTURE: goes around the obs facade straight to the histogram
// internals (instrumentation sites must use the obs/obs.h macros; tools
// read quantiles through obs/export.h).
#include "obs/histogram.h"
