// FIXTURE: the bottom layer reaching up the stack (base -> tableau). The
// arena lives in base precisely so the whole engine can sit on it; if it
// ever includes a consumer, the layering is inverted and the lint must say
// so.
#include "tableau/tableau.h"
