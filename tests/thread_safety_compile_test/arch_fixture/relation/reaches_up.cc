// FIXTURE: a lower layer reaching up the stack (relation -> core).
#include "core/recognition.h"
