// MISUSE: calls an IRD_EXCLUDES(mu) function while holding mu — the
// deadlock shape IRD_EXCLUDES on self-locking entry points (InsertBatch,
// ForEachIndex, TotalProjection) exists to reject.

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class Pool {
 public:
  void RunBatch() IRD_EXCLUDES(mu_) { ird::MutexLock lock(mu_); }

  ird::Mutex mu_;
};

}  // namespace

int main() {
  Pool pool;
  ird::MutexLock lock(pool.mu_);
  pool.RunBatch();  // deadlock: RunBatch acquires mu_ itself
  return 0;
}
