// Positive control for the thread-safety battery: idiomatic use of
// ird::Mutex / MutexLock / CondVar with IRD_GUARDED_BY / IRD_REQUIRES
// must compile warning-free on every compiler (the misuse snippets next
// door must not), and must behave at runtime: N producers bump a guarded
// counter, a consumer waits on a CondVar for the total. Exits 0 on
// success — registered as a plain ctest test.

#include <cstdio>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

class Tally {
 public:
  void Bump() IRD_EXCLUDES(mu_) {
    ird::MutexLock lock(mu_);
    BumpLocked();
    cv_.NotifyAll();
  }

  int WaitFor(int target) IRD_EXCLUDES(mu_) {
    ird::MutexLock lock(mu_);
    while (total_ < target) cv_.Wait(mu_);
    return total_;
  }

  // Split acquire/release shape, like BatchAnalyzer::Worker.
  int Drain() IRD_EXCLUDES(mu_) {
    mu_.Lock();
    int seen = total_;
    mu_.Unlock();
    return seen;
  }

 private:
  void BumpLocked() IRD_REQUIRES(mu_) { ++total_; }

  ird::Mutex mu_;
  ird::CondVar cv_;
  int total_ IRD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  Tally tally;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tally] {
      for (int i = 0; i < kPerThread; ++i) tally.Bump();
    });
  }
  const int total = tally.WaitFor(kThreads * kPerThread);
  for (std::thread& t : threads) t.join();
  if (total != kThreads * kPerThread || tally.Drain() != total) {
    std::fprintf(stderr, "tally mismatch: %d\n", total);
    return 1;
  }
  return 0;
}
