// MISUSE: writes IRD_GUARDED_BY data without holding the guarding mutex.

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

struct Account {
  ird::Mutex mu;
  int balance IRD_GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Account account;
  account.balance = 7;  // write without account.mu held
  return 0;
}
