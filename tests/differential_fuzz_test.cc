// The seeded scheme fuzzer: sweeps every generator family of
// workload/generators.h plus random structural mutations, runs every
// optimized routine against its definition-literal oracle
// (oracle/differential.h), shrinks any disagreement to a minimal scheme and
// writes it into the replayable corpus under tests/corpus/.
//
// Deterministic by default (fixed seed, fixed per-family count); override
// with environment variables for longer campaigns:
//   IRD_FUZZ_SEED                base seed (default 20260806)
//   IRD_FUZZ_SCHEMES_PER_FAMILY  schemes per family (default 500)
//   IRD_FUZZ_CORPUS_DIR          where shrunk repros are written
//                                (default: the source tests/corpus/)

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "core/recognition.h"
#include "core/split.h"
#include "diagnostics/verify.h"
#include "engine/scheme_analysis.h"
#include "gtest/gtest.h"
#include "oracle/chase_check.h"
#include "oracle/corpus.h"
#include "oracle/differential.h"
#include "oracle/mutate.h"
#include "oracle/naive_independence.h"
#include "oracle/naive_kep.h"
#include "oracle/naive_recognition.h"
#include "oracle/naive_split.h"
#include "oracle/shrink.h"
#include "workload/generators.h"

#ifndef IRD_CORPUS_DIR
#define IRD_CORPUS_DIR "tests/corpus"
#endif

namespace ird::oracle {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::string CorpusDir() {
  const char* v = std::getenv("IRD_FUZZ_CORPUS_DIR");
  return (v == nullptr || *v == '\0') ? IRD_CORPUS_DIR : v;
}

// Tags become corpus filenames; keep them path-safe.
std::string Sanitize(std::string tag) {
  for (char& c : tag) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '-';
  }
  return tag;
}

struct Family {
  const char* name;
  // Builds the i-th base scheme of the family from the family RNG.
  DatabaseScheme (*make)(size_t i, std::mt19937_64* rng);
};

const Family kFamilies[] = {
    {"chain",
     [](size_t, std::mt19937_64* rng) {
       return MakeChainScheme(2 + (*rng)() % 5);
     }},
    {"split",
     [](size_t, std::mt19937_64* rng) {
       // k = 4 already means 11 relations — past that the 2^n subset
       // oracle dominates the run; keep the sweep at k ∈ {2, 3}.
       return MakeSplitScheme(2 + (*rng)() % 2);
     }},
    {"independent",
     [](size_t, std::mt19937_64* rng) {
       return MakeIndependentScheme(1 + (*rng)() % 5);
     }},
    {"block",
     [](size_t, std::mt19937_64* rng) {
       return MakeBlockScheme(1 + (*rng)() % 3, 2 + (*rng)() % 2);
     }},
    {"star",
     [](size_t, std::mt19937_64* rng) {
       return MakeStarScheme(1 + (*rng)() % 5);
     }},
    {"tree",
     [](size_t, std::mt19937_64* rng) {
       double bidirectional = ((*rng)() % 3) / 2.0;  // 0, .5 or 1
       return MakeTreeScheme(2 + (*rng)() % 5, bidirectional, (*rng)());
     }},
    {"random",
     [](size_t, std::mt19937_64* rng) {
       RandomSchemeOptions opt;
       opt.universe_size = 5 + (*rng)() % 3;
       opt.relations = 3 + (*rng)() % 3;
       opt.min_arity = 2;
       opt.max_arity = 3;
       opt.multi_key_prob = ((*rng)() % 2) * 0.4;
       opt.seed = (*rng)();
       return MakeRandomScheme(opt);
     }},
};

class DifferentialFuzz : public ::testing::Test {
 protected:
  void RunFamily(const Family& family) {
    const uint64_t base_seed = EnvOr("IRD_FUZZ_SEED", 20260806);
    const size_t count = EnvOr("IRD_FUZZ_SCHEMES_PER_FAMILY", 500);
    std::mt19937_64 rng(base_seed ^ std::hash<std::string>{}(family.name));
    size_t tested = 0, mutated = 0, failures = 0;
    for (size_t i = 0; i < count; ++i) {
      DatabaseScheme scheme = family.make(i, &rng);
      // Half the schemes get 1-2 structural mutations on top.
      size_t mutations = rng() % 4;  // 0,1,2 with bias to mutating
      if (mutations > 2) mutations = 0;
      for (size_t m = 0; m < mutations; ++m) {
        DatabaseScheme mutant = MutateScheme(scheme, &rng);
        if (mutant.Validate().ok() && mutant.size() > 0) {
          scheme = std::move(mutant);
          ++mutated;
        }
      }
      if (!scheme.Validate().ok()) continue;
      ++tested;

      // The diagnostics engine must neither crash nor emit a witness its
      // independent verifier rejects, on any scheme the fuzzer can build.
      Status lint_ok = diagnostics::LintSelfCheck(scheme);
      if (!lint_ok.ok()) {
        ADD_FAILURE() << family.name << "[" << i
                      << "] lint self-check: " << lint_ok.ToString();
        if (++failures >= 3) break;
      }

      // The three chase implementations (delta-driven, pass-based,
      // exhaustive pairwise) must agree on every scheme the fuzzer can
      // build. CompareAgainstOracles repeats this as the
      // `tableau/chase-vs-naive` routine (so disagreements shrink into the
      // corpus); the direct call attributes the failure precisely.
      Status chase_ok = ChaseSelfCheck(scheme, base_seed + i);
      if (!chase_ok.ok()) {
        ADD_FAILURE() << family.name << "[" << i
                      << "] chase self-check: " << chase_ok.ToString();
        if (++failures >= 3) break;
      }

      DifferentialOptions opt;
      opt.seed = base_seed + i;
      std::vector<Disagreement> found = CompareAgainstOracles(scheme, opt);
      if (found.empty()) continue;
      ++failures;
      const Disagreement& first = found[0];
      DatabaseScheme small = ShrinkScheme(
          scheme, [&](const DatabaseScheme& s) {
            return DisagreesOn(s, opt, first.routine);
          });
      std::string name = Sanitize(first.routine) + "-" + family.name + "-s" +
                         std::to_string(base_seed) + "-" + std::to_string(i);
      Status written = WriteCorpusFile(
          CorpusDir(), name, small,
          {"routine: " + first.routine, "detail: " + first.detail,
           "found by: " + std::string(family.name) + " family, seed " +
               std::to_string(base_seed) + ", iteration " +
               std::to_string(i)});
      ADD_FAILURE() << family.name << "[" << i << "] " << first.routine
                    << ": " << first.detail
                    << (written.ok()
                            ? "\n  shrunk repro written to " + CorpusDir() +
                                  "/" + name + ".scheme"
                            : "\n  corpus write failed: " +
                                  written.ToString());
      if (failures >= 3) break;  // enough witnesses for one run
    }
    RecordProperty("schemes_tested", static_cast<int>(tested));
    RecordProperty("schemes_mutated", static_cast<int>(mutated));
    // The sweep must not degenerate (e.g. every mutant invalid).
    EXPECT_GE(tested, count / 2) << family.name;
  }
};

// SchemeAnalysis-backed recognition against the definition-literal oracles
// directly. The family sweeps above also reach the shared context (via the
// engine/* routines of CompareAgainstOracles and via the refactored
// scheme-level wrappers), but this pins the memoized pipeline to the
// oracles without any wrapper in between — cold, and again warm when every
// cover, memo and verdict slot is already filled.
TEST(EngineVsOracle, RecognitionMatchesNaiveOracles) {
  const uint64_t seed = EnvOr("IRD_FUZZ_SEED", 20260806);
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  size_t compared = 0;
  for (size_t i = 0; i < 60; ++i) {
    RandomSchemeOptions opt;
    opt.universe_size = 5 + rng() % 3;
    opt.relations = 3 + rng() % 3;
    opt.min_arity = 2;
    opt.max_arity = 3;
    opt.multi_key_prob = (rng() % 2) * 0.4;
    opt.seed = rng();
    DatabaseScheme scheme = MakeRandomScheme(opt);
    if (!scheme.Validate().ok()) continue;
    ++compared;

    SchemeAnalysis analysis(scheme);
    RecognitionResult cold = RecognizeIndependenceReducible(analysis);
    EXPECT_EQ(cold.accepted, IsIndependenceReducibleOracle(scheme))
        << "scheme " << i;
    EXPECT_EQ(cold.partition, MaximalKeyEquivalentSubsets(scheme))
        << "scheme " << i;
    if (cold.accepted) {
      EXPECT_TRUE(IsIndependentOracle(*cold.induced)) << "scheme " << i;
    }
    for (const auto& [rel, key] : scheme.AllKeys()) {
      EXPECT_EQ(IsKeySplit(analysis, key), IsKeySplitOracle(scheme, key))
          << "scheme " << i << " key of relation " << rel;
    }

    RecognitionResult warm = RecognizeIndependenceReducible(analysis);
    EXPECT_EQ(warm.accepted, cold.accepted) << "scheme " << i;
    EXPECT_EQ(warm.partition, cold.partition) << "scheme " << i;
    EXPECT_EQ(warm.violation.has_value(), cold.violation.has_value())
        << "scheme " << i;
  }
  EXPECT_GE(compared, 30u);
}

TEST_F(DifferentialFuzz, Chain) { RunFamily(kFamilies[0]); }
TEST_F(DifferentialFuzz, Split) { RunFamily(kFamilies[1]); }
TEST_F(DifferentialFuzz, Independent) { RunFamily(kFamilies[2]); }
TEST_F(DifferentialFuzz, Block) { RunFamily(kFamilies[3]); }
TEST_F(DifferentialFuzz, Star) { RunFamily(kFamilies[4]); }
TEST_F(DifferentialFuzz, Tree) { RunFamily(kFamilies[5]); }
TEST_F(DifferentialFuzz, Random) { RunFamily(kFamilies[6]); }

}  // namespace
}  // namespace ird::oracle
