// The variance-aware bench regression gate (bench/regression_gate.h),
// driven on synthetic records so the outcomes are deterministic:
//   * a clean rerun (identical work counts, noisy-but-close timings)
//     passes;
//   * an injected 3x tail-latency regression on one histogram fails with
//     that metric named in the diff table — the acceptance fixture for
//     the CI `--baseline` gate;
//   * a changed work count fails exactly;
//   * uniformly slower runs are absorbed by the speed calibration;
//   * missing workloads fail, new metrics are flagged without failing.

#include "bench/regression_gate.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ird::bench {
namespace {

// One synthetic workload record: fixed work counts, parameterized
// timings. `speed` scales every wall-clock metric (1.0 = baseline
// machine); `tail` additionally scales the _ns histogram quantiles.
RecordView MakeRecord(double speed, double tail) {
  RecordView r;
  r.bench = "synthetic";
  r.counters = {{"closure.computations", 2500}, {"recognition.runs", 25}};
  r.span_count = {{"recognition", 25}, {"kep", 25}};
  r.span_total_us = {{"recognition", 10000.0 * speed},
                     {"kep", 4000.0 * speed}};
  r.hists["closure.iterations_per_call"] =
      HistView{2500, 8.0, 28.0, 60.0};  // size hist: machine-independent
  r.hists["recognition.scheme_ns"] =
      HistView{2500, 200000.0 * speed, 380000.0 * speed,
               520000.0 * speed * tail};
  return r;
}

std::vector<std::vector<RecordView>> Runs(
    std::initializer_list<RecordView> records) {
  std::vector<std::vector<RecordView>> runs;
  for (const RecordView& r : records) runs.push_back({r});
  return runs;
}

TEST(RegressionGateTest, CleanRerunPasses) {
  std::vector<RecordView> base = {MakeRecord(1.0, 1.0)};
  // Three runs with ordinary timing noise around the baseline.
  GateReport report = RunGate(
      base,
      Runs({MakeRecord(0.95, 1.0), MakeRecord(1.05, 1.0),
            MakeRecord(1.10, 1.0)}),
      GateOptions{});
  EXPECT_TRUE(report.ok()) << report.RenderTable();
  EXPECT_EQ(report.failures(), 0u);
}

TEST(RegressionGateTest, InjectedTailLatencyRegressionFails) {
  std::vector<RecordView> base = {MakeRecord(1.0, 1.0)};
  // Same machine speed, but recognition.scheme_ns p99 is 3x the baseline
  // in every run: a genuine tail regression, beyond the one-log-bucket
  // margin the gate allows for _ns quantiles.
  GateReport report = RunGate(
      base,
      Runs({MakeRecord(1.0, 3.0), MakeRecord(1.02, 3.0),
            MakeRecord(0.98, 3.0)}),
      GateOptions{});
  EXPECT_FALSE(report.ok());
  bool named = false;
  for (const GateRow& row : report.rows) {
    if (row.failed) {
      EXPECT_EQ(row.metric, "hist recognition.scheme_ns p99");
      named = true;
    }
  }
  EXPECT_TRUE(named) << report.RenderTable();
  EXPECT_NE(report.RenderTable().find("FAIL"), std::string::npos);
}

TEST(RegressionGateTest, WorkCountDriftFailsExactly) {
  std::vector<RecordView> base = {MakeRecord(1.0, 1.0)};
  RecordView drifted = MakeRecord(1.0, 1.0);
  drifted.counters["closure.computations"] = 2501;  // off by one
  GateReport report = RunGate(base, Runs({drifted}), GateOptions{});
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const GateRow& row : report.rows) {
    if (row.metric == "counter closure.computations") {
      EXPECT_TRUE(row.failed);
      EXPECT_EQ(row.note, "exact");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RegressionGateTest, UniformlySlowerRunnerIsCalibratedAway) {
  std::vector<RecordView> base = {MakeRecord(1.0, 1.0)};
  // Every wall-clock metric 2.5x slower — a slower CI machine, not a
  // regression. The per-run speed factor must absorb it.
  GateReport report =
      RunGate(base, Runs({MakeRecord(2.5, 1.0), MakeRecord(2.5, 1.0)}),
              GateOptions{});
  EXPECT_TRUE(report.ok()) << report.RenderTable();
  ASSERT_EQ(report.run_speed.size(), 2u);
  EXPECT_NEAR(report.run_speed[0], 2.5, 0.01);
}

TEST(RegressionGateTest, SizeHistogramsAreNotSpeedCalibrated) {
  std::vector<RecordView> base = {MakeRecord(1.0, 1.0)};
  // A uniformly slower machine whose size distribution ALSO drifted 3x:
  // the speed factor must not excuse the size drift.
  RecordView r = MakeRecord(2.5, 1.0);
  r.hists["closure.iterations_per_call"] =
      HistView{2500, 24.0, 84.0, 180.0};
  GateReport report = RunGate(base, Runs({r}), GateOptions{});
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const GateRow& row : report.rows) {
    if (row.failed) {
      EXPECT_EQ(row.metric.find("hist closure.iterations_per_call"), 0u);
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.RenderTable();
}

TEST(RegressionGateTest, SparseHistogramQuantilesAreNotGated) {
  RecordView base_rec = MakeRecord(1.0, 1.0);
  base_rec.hists["recognition.scheme_ns"].count = 5;  // p99 = max sample
  RecordView run_rec = MakeRecord(1.0, 4.0);
  run_rec.hists["recognition.scheme_ns"].count = 5;
  GateReport report =
      RunGate({base_rec}, Runs({run_rec}), GateOptions{});
  EXPECT_TRUE(report.ok()) << report.RenderTable();
  EXPECT_NE(report.RenderTable().find("sparse"), std::string::npos);
}

TEST(RegressionGateTest, MissingWorkloadFailsNewMetricsFlagged) {
  std::vector<RecordView> base = {MakeRecord(1.0, 1.0)};
  GateReport empty_run = RunGate(base, {{}}, GateOptions{});
  EXPECT_FALSE(empty_run.ok());
  ASSERT_EQ(empty_run.rows.size(), 1u);
  EXPECT_EQ(empty_run.rows[0].note, "missing");

  RecordView extra = MakeRecord(1.0, 1.0);
  extra.counters["brand.new_counter"] = 7;
  GateReport with_new = RunGate(base, Runs({extra}), GateOptions{});
  EXPECT_TRUE(with_new.ok()) << with_new.RenderTable();
  EXPECT_NE(with_new.RenderTable().find("new"), std::string::npos);
}

TEST(RegressionGateTest, ParseBenchJsonRoundTrip) {
  const std::string json = R"([
{"bench":"w1","counters":{"a":3,"b":12},
 "spans_us":{"s":{"count":4,"total_us":250}},
 "hists":{"h_ns":{"count":100,"sum":5000,"p50":40.0,"p90":90.5,
                  "p99":120.0,"buckets":[[5,60],[6,40]]}}}
])";
  Result<std::vector<RecordView>> parsed = ParseBenchJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  const RecordView& r = (*parsed)[0];
  EXPECT_EQ(r.bench, "w1");
  EXPECT_EQ(r.counters.at("a"), 3u);
  EXPECT_EQ(r.span_count.at("s"), 4u);
  EXPECT_DOUBLE_EQ(r.span_total_us.at("s"), 250.0);
  EXPECT_EQ(r.hists.at("h_ns").count, 100u);
  EXPECT_DOUBLE_EQ(r.hists.at("h_ns").p90, 90.5);
}

TEST(RegressionGateTest, ParseBenchJsonToleratesPrePr8Baselines) {
  // Records without a "hists" key (earlier trajectory files) parse with
  // empty histogram views instead of failing.
  const std::string json =
      R"([{"bench":"old","counters":{"a":1},"spans_us":{}}])";
  Result<std::vector<RecordView>> parsed = ParseBenchJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE((*parsed)[0].hists.empty());
}

TEST(RegressionGateTest, ParseBenchJsonRejectsGarbage) {
  EXPECT_FALSE(ParseBenchJson("{not json").ok());
  EXPECT_FALSE(ParseBenchJson("[{\"bench\":3}]").ok());
}

}  // namespace
}  // namespace ird::bench
