#include <gtest/gtest.h>

#include "schema/database_scheme.h"
#include "tableau/lossless.h"
#include "tableau/chase.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;

TEST(DatabaseSchemeTest, AddAndFindRelations) {
  DatabaseScheme s = test::Example1R();
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.relation(0).name, "R1");
  EXPECT_TRUE(s.FindRelation("R4").ok());
  EXPECT_EQ(s.FindRelation("R4").value(), 3u);
  EXPECT_FALSE(s.FindRelation("nope").ok());
}

TEST(DatabaseSchemeTest, KeyDependenciesGenerated) {
  DatabaseScheme s = test::Example1R();
  const FdSet& f = s.key_dependencies();
  // HR -> C via R1, HT -> C via R3 transitively through R2 etc.
  EXPECT_TRUE(f.Implies(Attrs(s, "HR"), Attrs(s, "C")));
  EXPECT_TRUE(f.Implies(Attrs(s, "HT"), Attrs(s, "RC")));
  EXPECT_FALSE(f.Implies(Attrs(s, "H"), Attrs(s, "C")));
  EXPECT_TRUE(f.Implies(Attrs(s, "CS"), Attrs(s, "G")));
}

TEST(DatabaseSchemeTest, KeyDependenciesCacheInvalidatedByAdd) {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A"});
  EXPECT_FALSE(s.key_dependencies().Implies(
      s.universe_ptr()->Chars("B"), s.universe_ptr()->Chars("C")));
  s.AddRelation("R2", "BC", {"B"});
  EXPECT_TRUE(s.key_dependencies().Implies(Attrs(s, "B"), Attrs(s, "C")));
}

TEST(DatabaseSchemeTest, KeyDependenciesExcept) {
  // In Example 1's R, HR -> C survives the removal of R1's keys (via
  // HR -> T and HT -> C); in the two-relation chain it does not.
  DatabaseScheme s = test::Example1R();
  FdSet without_r1 = s.KeyDependenciesExcept(0);
  EXPECT_TRUE(without_r1.Implies(Attrs(s, "HR"), Attrs(s, "C")));
  EXPECT_TRUE(without_r1.Implies(Attrs(s, "HR"), Attrs(s, "T")));

  DatabaseScheme chain = DatabaseScheme::Create();
  chain.AddRelation("R1", "AB", {"A"});
  chain.AddRelation("R2", "BC", {"B"});
  FdSet without_first = chain.KeyDependenciesExcept(0);
  EXPECT_FALSE(without_first.Implies(Attrs(chain, "A"), Attrs(chain, "B")));
  EXPECT_TRUE(without_first.Implies(Attrs(chain, "B"), Attrs(chain, "C")));
}

TEST(DatabaseSchemeTest, AllKeysDeduplicates) {
  DatabaseScheme s = test::Example3();  // keys A, B, C declared twice each
  EXPECT_EQ(s.AllKeys().size(), 3u);
}

TEST(DatabaseSchemeTest, ValidateAcceptsPaperExamples) {
  EXPECT_TRUE(test::Example1R().Validate().ok());
  EXPECT_TRUE(test::Example1S().Validate().ok());
  EXPECT_TRUE(test::Example2().Validate().ok());
  EXPECT_TRUE(test::Example3().Validate().ok());
  EXPECT_TRUE(test::Example4().Validate().ok());
  EXPECT_TRUE(test::Example6().Validate().ok());
  EXPECT_TRUE(test::Example8().Validate().ok());
  EXPECT_TRUE(test::Example9().Validate().ok());
  EXPECT_TRUE(test::Example11().Validate().ok());
  EXPECT_TRUE(test::Example13().Validate().ok());
}

TEST(DatabaseSchemeTest, ValidateRejectsNonMinimalKey) {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A"});
  s.AddRelation("R2", "ABC", {"AB"});  // A alone determines AB, then ABC? No:
  // A -> AB (R1), AB -> ABC (R2), so closure(A) ⊇ ABC: AB is not minimal.
  Status status = s.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseSchemeTest, ValidateRejectsUncoveredUniverse) {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A"});
  s.universe_ptr()->Intern("Z");  // Z in U but in no relation
  EXPECT_FALSE(s.Validate().ok());
}

TEST(DatabaseSchemeTest, ValidateRejectsDuplicateSchemes) {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A"});
  s.AddRelation("R2", "AB", {"B"});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(DatabaseSchemeTest, BcnfHoldsForKeyOnlySchemes) {
  // Key-equivalent schemes are BCNF (Lemma 3.1).
  EXPECT_TRUE(test::Example3().IsBcnf());
  EXPECT_TRUE(test::Example4().IsBcnf());
  EXPECT_TRUE(test::Example6().IsBcnf());
  EXPECT_TRUE(test::Example1R().IsBcnf());
}

TEST(DatabaseSchemeTest, BcnfViolationDetected) {
  // R2(ABZ) with key AB; A -> C elsewhere is fine, but embed a partial
  // dependency: R3(AC) key A makes A -> C; then R2(ACZ) with key AZ has
  // embedded A -> C with A not a superkey of ACZ.
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AC", {"A"});
  s.AddRelation("R2", "ACZ", {"AZ"});
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_FALSE(s.IsBcnf());
}

TEST(DatabaseSchemeTest, LosslessAgreesWithChase) {
  std::vector<DatabaseScheme> schemes = {
      test::Example1R(), test::Example1S(), test::Example2(),
      test::Example3(),  test::Example4(),  test::Example6(),
      test::Example8(),  test::Example9(),  test::Example11(),
      test::Example13()};
  for (const DatabaseScheme& s : schemes) {
    EXPECT_EQ(s.IsLossless(), IsLosslessByChase(s)) << s.ToString();
  }
}

TEST(DatabaseSchemeTest, LosslessAgreesWithChaseOnRandomSchemes) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    RandomSchemeOptions opt;
    opt.universe_size = 6;
    opt.relations = 4;
    opt.seed = seed;
    DatabaseScheme s = MakeRandomScheme(opt);
    EXPECT_EQ(s.IsLossless(), IsLosslessByChase(s)) << s.ToString();
  }
}

TEST(LosslessTest, SingleRelationIsLossless) {
  DatabaseScheme s = test::Example9();
  EXPECT_TRUE(IsLosslessSubset(s, {0}));
}

TEST(LosslessTest, ChainSubsetLossless) {
  DatabaseScheme s = test::Example9();  // AB, BC, CD, DE bidirectional
  EXPECT_TRUE(IsLosslessSubset(s, {0, 1}));
  EXPECT_TRUE(IsLosslessSubset(s, {0, 1, 2, 3}));
  // AB and CD share nothing: the join is a cartesian product, lossy.
  EXPECT_FALSE(IsLosslessSubset(s, {0, 2}));
}

TEST(LosslessTest, Example4BEjoinCE) {
  DatabaseScheme s = test::Example4();
  // {R4(EB), R5(EC)} is lossless (E is a key of both sides).
  auto r4 = s.FindRelation("R4").value();
  auto r5 = s.FindRelation("R5").value();
  EXPECT_TRUE(IsLosslessSubset(s, {r4, r5}));
  // {R1(AB), R4(EB)} share only B, which is no key: lossy.
  auto r1 = s.FindRelation("R1").value();
  EXPECT_FALSE(IsLosslessSubset(s, {r1, r4}));
}

TEST(LosslessTest, MinimalLosslessSubsetsCoveringAE) {
  // Example 4: [AE] is computed by R3 ∪ π_AE(R1 ⋈ R2 ⋈ (R4 ⋈ R5)).
  DatabaseScheme s = test::Example4();
  std::vector<size_t> pool = {0, 1, 2, 3, 4, 5, 6};
  std::vector<std::vector<size_t>> subsets =
      MinimalLosslessSubsetsCovering(s, pool, Attrs(s, "AE"));
  // R3(AE) alone must be among them.
  bool has_r3_alone = false;
  for (const auto& subset : subsets) {
    if (subset == std::vector<size_t>{2}) has_r3_alone = true;
    EXPECT_TRUE(Attrs(s, "AE").IsSubsetOf(s.UnionAttrs(subset)));
    EXPECT_TRUE(IsLosslessSubset(s, subset));
  }
  EXPECT_TRUE(has_r3_alone);
  // The paper's second expression {R1, R2, R4, R5} must appear.
  bool has_quad = false;
  for (const auto& subset : subsets) {
    if (subset == std::vector<size_t>{0, 1, 3, 4}) has_quad = true;
  }
  EXPECT_TRUE(has_quad);
}

TEST(LosslessTest, MinimalityIsEnforced) {
  DatabaseScheme s = test::Example9();
  std::vector<std::vector<size_t>> subsets =
      MinimalLosslessSubsetsCovering(s, {0, 1, 2, 3}, Attrs(s, "AB"));
  // R1 alone covers AB; nothing containing R1 may also appear.
  ASSERT_EQ(subsets.size(), 1u);
  EXPECT_EQ(subsets[0], (std::vector<size_t>{0}));
}

}  // namespace
}  // namespace ird
