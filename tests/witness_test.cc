// The constructive witnesses: Algorithm 1's literal transcription vs the
// production engines, and the dependence (LSAT ≠ WSAT) witness validating
// the uniqueness condition's completeness direction.

#include <gtest/gtest.h>

#include "core/algorithm1_literal.h"
#include "core/independence.h"
#include "core/independence_witness.h"
#include "core/representative_index.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Tuple;

// --- Algorithm 1, literal transcription -------------------------------------

// Extracts the constant parts of a tableau's rows as a set of partial
// tuples, for comparison across implementations.
std::vector<PartialTuple> ConstantParts(const Tableau& t) {
  std::vector<PartialTuple> out;
  for (size_t row = 0; row < t.row_count(); ++row) {
    AttributeSet c = t.ConstantColumns(row);
    out.emplace_back(c, t.ValuesOn(row, c));
  }
  return out;
}

void ExpectSameRows(const std::vector<PartialTuple>& a,
                    const std::vector<const PartialTuple*>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const PartialTuple& t : a) {
    bool found = false;
    for (const PartialTuple* other : b) {
      if (*other == t) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(Algorithm1LiteralTest, MatchesRepresentativeIndex) {
  std::vector<DatabaseScheme> schemes = {
      MakeChainScheme(4), MakeSplitScheme(2), test::Example4(),
      test::Example6(), MakeStarScheme(3)};
  for (const DatabaseScheme& s : schemes) {
    for (uint64_t seed : {1u, 2u, 5u}) {
      StateGenOptions opt;
      opt.entities = 12;
      opt.coverage = 0.6;
      opt.seed = seed;
      DatabaseState state = MakeConsistentState(s, opt);
      Algorithm1Stats stats;
      Result<Tableau> literal = RunAlgorithm1Literal(state, &stats);
      ASSERT_TRUE(literal.ok());
      Result<RepresentativeIndex> index = RepresentativeIndex::Build(state);
      ASSERT_TRUE(index.ok());
      ExpectSameRows(ConstantParts(*literal), index->Rows());
    }
  }
}

TEST(Algorithm1LiteralTest, DetectsInconsistency) {
  DatabaseScheme s = test::Example3();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R2", {2, 3});
  state.Insert("R3", {1, 4});  // forces C=3 vs C=4
  Result<Tableau> literal = RunAlgorithm1Literal(state);
  EXPECT_FALSE(literal.ok());
  EXPECT_EQ(literal.status().code(), StatusCode::kInconsistent);
}

TEST(Algorithm1LiteralTest, Example7CaseTwoMerges) {
  // Example 7's state drives both merge cases: (a,b)/(a,c) are
  // incomparable (case 2), the (e1,b)/(e1,c) pair likewise, and the final
  // BC-merge joins the results.
  DatabaseScheme s = test::Example4();
  constexpr Value a = 1, b = 2, c = 3, e1 = 11, e2 = 12;
  DatabaseState state(s);
  state.mutable_relation(0).Add(Tuple(s, "AB", {a, b}));
  state.mutable_relation(1).Add(Tuple(s, "AC", {a, c}));
  state.mutable_relation(3).Add(Tuple(s, "EB", {e1, b}));
  state.mutable_relation(3).Add(Tuple(s, "EB", {e2, b}));
  state.mutable_relation(4).Add(Tuple(s, "EC", {e1, c}));
  Algorithm1Stats stats;
  Result<Tableau> literal = RunAlgorithm1Literal(state, &stats);
  ASSERT_TRUE(literal.ok());
  EXPECT_GT(stats.case2, 0u);
  EXPECT_GT(stats.duplicates_removed, 0u);
  // The big row <a,b,c,e1> must exist and be unique.
  size_t total_rows = 0;
  for (size_t row = 0; row < literal->row_count(); ++row) {
    if (literal->TotalOn(row, test::Attrs(s, "ABCE"))) ++total_rows;
  }
  EXPECT_EQ(total_rows, 1u);
}

// --- Dependence witness -------------------------------------------------------

void VerifyDependenceWitness(const DatabaseScheme& s) {
  Result<DatabaseState> witness = BuildDependenceWitness(s);
  ASSERT_TRUE(witness.ok()) << s.ToString();
  EXPECT_TRUE(IsLocallyConsistent(*witness)) << s.ToString();
  EXPECT_FALSE(IsConsistent(*witness)) << s.ToString();
}

TEST(DependenceWitnessTest, PaperExamples) {
  VerifyDependenceWitness(test::Example1R());
  VerifyDependenceWitness(test::Example2());
  VerifyDependenceWitness(test::Example3());
  VerifyDependenceWitness(test::Example4());
}

TEST(DependenceWitnessTest, RefusesIndependentSchemes) {
  Result<DatabaseState> witness =
      BuildDependenceWitness(MakeIndependentScheme(3));
  EXPECT_FALSE(witness.ok());
  EXPECT_EQ(witness.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DependenceWitnessTest, RandomSchemesFailingUniqueness) {
  // The completeness direction of the uniqueness condition, empirically:
  // every random scheme that fails it has an LSAT-not-WSAT state.
  size_t found = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    RandomSchemeOptions opt;
    opt.universe_size = 6;
    opt.relations = 4;
    opt.multi_key_prob = seed % 2 == 0 ? 0.4 : 0.0;
    opt.seed = seed;
    DatabaseScheme s = MakeRandomScheme(opt);
    if (IsIndependent(s)) continue;
    ++found;
    VerifyDependenceWitness(s);
  }
  EXPECT_GT(found, 15u);
}

TEST(DependenceWitnessTest, MultiKeyRandomSchemesStayValid) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    RandomSchemeOptions opt;
    opt.universe_size = 7;
    opt.relations = 5;
    opt.multi_key_prob = 0.6;
    opt.seed = seed + 500;
    DatabaseScheme s = MakeRandomScheme(opt);
    EXPECT_TRUE(s.Validate().ok()) << s.ToString();
  }
}

}  // namespace
}  // namespace ird
