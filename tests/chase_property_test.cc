// Metamorphic and algebraic properties of the chase and the weak instance
// model — the ground-truth machinery has to be right for everything else's
// property tests to mean anything.

#include <gtest/gtest.h>

#include <random>

#include "core/consistency.h"
#include "fd/closure_engine.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

// A small random state (possibly inconsistent): values drawn from a tiny
// domain so key collisions are common.
DatabaseState MakeNoisyState(const DatabaseScheme& scheme, size_t tuples,
                             uint64_t seed) {
  std::mt19937_64 rng(seed);
  DatabaseState state(scheme);
  for (size_t n = 0; n < tuples; ++n) {
    size_t rel = rng() % scheme.size();
    const AttributeSet& attrs = scheme.relation(rel).attrs;
    std::vector<Value> values;
    for (size_t i = 0; i < attrs.Count(); ++i) {
      values.push_back(static_cast<Value>(rng() % 4 + 1));
    }
    state.mutable_relation(rel).AddUnique(
        PartialTuple(attrs, std::move(values)));
  }
  return state;
}

std::vector<DatabaseScheme> Schemes() {
  return {test::Example3(), test::Example4(), test::Example9(),
          test::Example11(), test::Example1R()};
}

TEST(ChasePropertyTest, ChaseIsIdempotent) {
  for (const DatabaseScheme& s : Schemes()) {
    for (uint64_t seed = 0; seed < 8; ++seed) {
      DatabaseState state = MakeNoisyState(s, 12, seed);
      Tableau t = StateTableau(state);
      ChaseStats first = ChaseFds(&t, s.key_dependencies());
      if (!first.consistent) continue;
      ChaseStats second = ChaseFds(&t, s.key_dependencies());
      EXPECT_TRUE(second.consistent);
      EXPECT_EQ(second.rule_applications, 0u);
    }
  }
}

TEST(ChasePropertyTest, ChasedTableauSatisfiesTheDependencies) {
  for (const DatabaseScheme& s : Schemes()) {
    for (uint64_t seed = 0; seed < 8; ++seed) {
      DatabaseState state = MakeNoisyState(s, 12, seed);
      Result<Tableau> ri = RepresentativeInstance(state);
      if (!ri.ok()) continue;
      // For each FD X -> A: rows agreeing on X (as symbols) agree on A.
      FdSet standard = s.key_dependencies().StandardForm();
      for (const FunctionalDependency& fd : standard.fds()) {
        for (size_t r1 = 0; r1 < ri->row_count(); ++r1) {
          for (size_t r2 = r1 + 1; r2 < ri->row_count(); ++r2) {
            bool agree_lhs = true;
            fd.lhs.ForEach([&](AttributeId a) {
              if (ri->Cell(r1, a) != ri->Cell(r2, a)) agree_lhs = false;
            });
            if (agree_lhs) {
              EXPECT_EQ(ri->Cell(r1, fd.rhs.First()),
                        ri->Cell(r2, fd.rhs.First()));
            }
          }
        }
      }
    }
  }
}

TEST(ChasePropertyTest, SubstatesOfConsistentStatesAreConsistent) {
  std::mt19937_64 rng(17);
  for (const DatabaseScheme& s : Schemes()) {
    StateGenOptions opt;
    opt.entities = 12;
    opt.seed = 23;
    DatabaseState state = MakeConsistentState(s, opt);
    ASSERT_TRUE(IsConsistent(state));
    // Drop a random half of the tuples.
    DatabaseState sub(s);
    for (size_t rel = 0; rel < state.relation_count(); ++rel) {
      for (const PartialTuple& t : state.relation(rel).tuples()) {
        if (rng() % 2 == 0) sub.mutable_relation(rel).AddUnique(t);
      }
    }
    EXPECT_TRUE(IsConsistent(sub));
  }
}

TEST(ChasePropertyTest, DisjointValueUnionsStayConsistent) {
  for (const DatabaseScheme& s : Schemes()) {
    StateGenOptions a;
    a.entities = 8;
    a.seed = 1;
    StateGenOptions b;
    b.entities = 8;
    b.seed = 2;
    DatabaseState sa = MakeConsistentState(s, a);
    DatabaseState sb = MakeConsistentState(s, b);
    // Shift sb's values far away from sa's.
    DatabaseState merged(s);
    for (size_t rel = 0; rel < s.size(); ++rel) {
      for (const PartialTuple& t : sa.relation(rel).tuples()) {
        merged.mutable_relation(rel).AddUnique(t);
      }
      for (const PartialTuple& t : sb.relation(rel).tuples()) {
        std::vector<Value> shifted;
        for (Value v : t.values()) shifted.push_back(v + 100000000);
        merged.mutable_relation(rel).AddUnique(
            PartialTuple(t.attrs(), std::move(shifted)));
      }
    }
    EXPECT_TRUE(IsConsistent(merged));
  }
}

TEST(ChasePropertyTest, CoverReplacementPreservesTheChase) {
  // [MMS], quoted in §2.3: CHASE_F = CHASE_G when F+ = G+. Compare
  // consistency and total projections under a minimal cover.
  for (const DatabaseScheme& s : Schemes()) {
    FdSet minimal = s.key_dependencies().MinimalCover();
    ASSERT_TRUE(minimal.EquivalentTo(s.key_dependencies()));
    for (uint64_t seed = 0; seed < 6; ++seed) {
      DatabaseState state = MakeNoisyState(s, 10, seed + 40);
      Tableau t1 = StateTableau(state);
      Tableau t2 = StateTableau(state);
      ChaseStats c1 = ChaseFds(&t1, s.key_dependencies());
      ChaseStats c2 = ChaseFds(&t2, minimal);
      ASSERT_EQ(c1.consistent, c2.consistent);
      if (!c1.consistent) continue;
      for (const RelationScheme& r : s.relations()) {
        PartialRelation p1(r.attrs);
        PartialRelation p2(r.attrs);
        for (size_t row = 0; row < t1.row_count(); ++row) {
          if (t1.TotalOn(row, r.attrs)) {
            p1.AddUnique(PartialTuple(r.attrs, t1.ValuesOn(row, r.attrs)));
          }
          if (t2.TotalOn(row, r.attrs)) {
            p2.AddUnique(PartialTuple(r.attrs, t2.ValuesOn(row, r.attrs)));
          }
        }
        EXPECT_TRUE(p1.SetEquals(p2)) << r.name;
      }
    }
  }
}

TEST(ChasePropertyTest, BlockConsistencyMatchesGlobalChase) {
  // §4.2 as a checker: block-based consistency == whole-chase consistency
  // on accepted schemes, across noisy states.
  std::vector<DatabaseScheme> schemes = {test::Example1R(), test::Example11(),
                                         MakeBlockScheme(2, 3)};
  for (const DatabaseScheme& s : schemes) {
    RecognitionResult r = RecognizeIndependenceReducible(s);
    ASSERT_TRUE(r.accepted);
    size_t inconsistent_seen = 0;
    for (uint64_t seed = 0; seed < 30; ++seed) {
      DatabaseState state = MakeNoisyState(s, 10, seed + 90);
      bool truth = IsConsistent(state);
      EXPECT_EQ(CheckConsistencyByBlocks(state, r).ok(), truth) << seed;
      inconsistent_seen += truth ? 0 : 1;
    }
    // The noisy generator must actually produce both outcomes for the
    // comparison to mean something.
    EXPECT_GT(inconsistent_seen, 0u) << s.ToString();
  }
}

TEST(ChasePropertyTest, RuleApplicationsBoundedByTableauSize) {
  // Each application merges two symbol classes, so the total across a chase
  // is at most the number of symbols.
  DatabaseScheme s = test::Example4();
  DatabaseState state = MakeNoisyState(s, 40, 3);
  Tableau t = StateTableau(state);
  size_t symbols = t.row_count() * t.width();
  ChaseStats stats = ChaseFds(&t, s.key_dependencies());
  if (stats.consistent) {
    EXPECT_LE(stats.rule_applications, symbols);
  }
}

}  // namespace
}  // namespace ird
