#include "tableau/homomorphism.h"

#include <gtest/gtest.h>

#include "relation/weak_instance.h"
#include "tableau/chase.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

TEST(HomomorphismTest, IdentityAlwaysExists) {
  Tableau t(3);
  t.AddSchemeRow(AttributeSet{0, 1});
  t.AddTupleRow(AttributeSet{1, 2}, {5, 6});
  EXPECT_TRUE(HomomorphismExists(t, t));
  EXPECT_TRUE(AreEquivalentTableaux(t, t));
}

TEST(HomomorphismTest, NdvMapsAnywhereConsistently) {
  // Row (a0, n) maps onto row (a0, 7): ndv binds to the constant.
  Tableau from(2);
  {
    std::vector<SymId> cells = {from.Dv(0), from.FreshNdv()};
    from.AddRow(cells);
  }
  Tableau to(2);
  {
    std::vector<SymId> cells = {to.Dv(0), to.Constant(7)};
    to.AddRow(cells);
  }
  EXPECT_TRUE(HomomorphismExists(from, to));
  // But not the other way: the constant 7 has nowhere to go.
  EXPECT_FALSE(HomomorphismExists(to, from));
}

TEST(HomomorphismTest, SharedNdvMustBindConsistently) {
  // Rows (n, b) and (n, c) share n; the target has rows (1, b) and (2, c):
  // n would need to be both 1 and 2.
  Tableau from(2);
  SymId shared = from.FreshNdv();
  {
    std::vector<SymId> r1 = {shared, from.Constant(100)};
    from.AddRow(r1);
    std::vector<SymId> r2 = {shared, from.Constant(200)};
    from.AddRow(r2);
  }
  Tableau to(2);
  {
    std::vector<SymId> r1 = {to.Constant(1), to.Constant(100)};
    to.AddRow(r1);
    std::vector<SymId> r2 = {to.Constant(2), to.Constant(200)};
    to.AddRow(r2);
  }
  EXPECT_FALSE(HomomorphismExists(from, to));
  // With a third target row (1, 200) the binding n=1 works.
  std::vector<SymId> r3 = {to.Constant(1), to.Constant(200)};
  to.AddRow(r3);
  EXPECT_TRUE(HomomorphismExists(from, to));
}

TEST(HomomorphismTest, DvMustStayDistinguished) {
  Tableau from(1);
  {
    std::vector<SymId> cells = {from.Dv(0)};
    from.AddRow(cells);
  }
  Tableau to(1);
  {
    std::vector<SymId> cells = {to.Constant(9)};
    to.AddRow(cells);
  }
  EXPECT_FALSE(HomomorphismExists(from, to));
}

TEST(HomomorphismTest, WidthMismatchFails) {
  Tableau a(2);
  a.AddSchemeRow(AttributeSet{0});
  Tableau b(3);
  b.AddSchemeRow(AttributeSet{0});
  EXPECT_FALSE(HomomorphismExists(a, b));
}

TEST(MinimizeTableauTest, DropsDuplicateAndSubsumedRows) {
  Tableau t(3);
  t.AddTupleRow(AttributeSet{0, 1, 2}, {1, 2, 3});
  t.AddTupleRow(AttributeSet{0, 1}, {1, 2});  // subsumed (fresh ndv on col 2)
  t.AddTupleRow(AttributeSet{0, 1}, {1, 2});  // duplicate
  t.AddTupleRow(AttributeSet{0, 1}, {8, 9});  // independent
  EXPECT_EQ(MinimizeTableau(&t), 2u);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(MinimizeTableauTest, AgreesWithConstantSubsumptionOnChasedStates) {
  // On chased key-equivalent state tableaux (all ndv's distinct), general
  // tableau minimization removes exactly the constant-subsumed rows.
  std::vector<DatabaseScheme> schemes = {MakeChainScheme(3),
                                         MakeSplitScheme(2)};
  for (const DatabaseScheme& s : schemes) {
    StateGenOptions opt;
    opt.entities = 4;
    opt.coverage = 0.5;
    opt.seed = 5;
    DatabaseState state = MakeConsistentState(s, opt);
    Result<Tableau> chased = RepresentativeInstance(state);
    ASSERT_TRUE(chased.ok());
    Tableau by_subsumption = *chased;
    size_t removed_subsumption =
        MinimizeByConstantSubsumption(&by_subsumption);
    Tableau by_homomorphism = *chased;
    size_t removed_homomorphism = MinimizeTableau(&by_homomorphism);
    EXPECT_EQ(removed_subsumption, removed_homomorphism);
    EXPECT_TRUE(AreEquivalentTableaux(by_subsumption, by_homomorphism));
  }
}

TEST(MinimizeTableauTest, MinimizedTableauStaysEquivalent) {
  Tableau t(3);
  t.AddTupleRow(AttributeSet{0, 1, 2}, {1, 2, 3});
  t.AddTupleRow(AttributeSet{0, 1}, {1, 2});
  t.AddTupleRow(AttributeSet{2}, {3});
  Tableau original = t;
  MinimizeTableau(&t);
  EXPECT_TRUE(AreEquivalentTableaux(original, t));
}

}  // namespace
}  // namespace ird
