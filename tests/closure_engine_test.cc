#include "fd/closure_engine.h"

#include <gtest/gtest.h>

#include <random>

#include "base/universe.h"
#include "workload/generators.h"

namespace ird {
namespace {

TEST(ClosureEngineTest, MatchesFdSetOnTextbookSets) {
  Universe u;
  FdSet f;
  f.Add(u.Chars("A"), u.Chars("B"));
  f.Add(u.Chars("B"), u.Chars("C"));
  f.Add(u.Chars("CD"), u.Chars("E"));
  ClosureEngine engine(f);
  for (const char* x : {"A", "B", "C", "D", "AD", "ABCDE", ""}) {
    EXPECT_EQ(engine.Closure(u.Chars(x)), f.Closure(u.Chars(x))) << x;
  }
}

TEST(ClosureEngineTest, EmptyLeftSideFiresUnconditionally) {
  Universe u;
  FdSet f;
  f.Add(AttributeSet{}, u.Chars("A"));
  f.Add(u.Chars("A"), u.Chars("B"));
  ClosureEngine engine(f);
  EXPECT_EQ(engine.Closure(AttributeSet{}), u.Chars("AB"));
}

TEST(ClosureEngineTest, EmptyFdSet) {
  FdSet f;
  ClosureEngine engine(f);
  EXPECT_EQ(engine.Closure(AttributeSet{3, 5}), (AttributeSet{3, 5}));
}

TEST(ClosureEngineTest, ReusableAcrossQueries) {
  Universe u;
  FdSet f;
  f.Add(u.Chars("A"), u.Chars("B"));
  ClosureEngine engine(f);
  EXPECT_EQ(engine.Closure(u.Chars("A")), u.Chars("AB"));
  EXPECT_EQ(engine.Closure(u.Chars("B")), u.Chars("B"));
  EXPECT_EQ(engine.Closure(u.Chars("A")), u.Chars("AB"));  // counters reset
}

TEST(ClosureEngineTest, MatchesFdSetOnGeneratedSchemes) {
  std::mt19937_64 rng(5);
  for (uint64_t seed = 0; seed < 25; ++seed) {
    RandomSchemeOptions opt;
    opt.universe_size = 8;
    opt.relations = 6;
    opt.seed = seed;
    DatabaseScheme s = MakeRandomScheme(opt);
    const FdSet& f = s.key_dependencies();
    ClosureEngine engine(f);
    for (int round = 0; round < 20; ++round) {
      AttributeSet x;
      for (AttributeId a = 0; a < 8; ++a) {
        if (rng() % 3 == 0) x.Add(a);
      }
      EXPECT_EQ(engine.Closure(x), f.Closure(x)) << s.ToString();
    }
  }
}

}  // namespace
}  // namespace ird
