// The oracle layer itself, checked against the paper's worked examples
// whose classifications are stated in the text — plus the mutate / shrink /
// corpus machinery the differential fuzzer is built from.

#include <cstdio>
#include <filesystem>
#include <random>

#include "gtest/gtest.h"
#include "oracle/corpus.h"
#include "oracle/differential.h"
#include "oracle/mutate.h"
#include "oracle/naive_chase.h"
#include "oracle/naive_closure.h"
#include "oracle/naive_independence.h"
#include "oracle/naive_kep.h"
#include "oracle/naive_recognition.h"
#include "oracle/naive_split.h"
#include "oracle/shrink.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird::oracle {
namespace {

using ::ird::test::Attrs;

TEST(NaiveClosure, HandComputedClosures) {
  DatabaseScheme s = test::Example12();  // F = {A->B, B->C, C->A, A->D, D->EFG}
  FdSet fds = s.key_dependencies();
  EXPECT_EQ(NaiveClosure(fds, Attrs(s, "A")), Attrs(s, "ABCDEFG"));
  EXPECT_EQ(NaiveClosure(fds, Attrs(s, "E")), Attrs(s, "E"));
  EXPECT_TRUE(NaiveImplies(fds, Attrs(s, "B"), Attrs(s, "D")));
  EXPECT_FALSE(NaiveImplies(fds, Attrs(s, "D"), Attrs(s, "A")));
}

TEST(NaiveChase, LosslessVerdictsMatchThePaper) {
  EXPECT_TRUE(IsLosslessNaive(test::Example1R()));
  EXPECT_TRUE(IsLosslessNaive(test::Example1S()));
  EXPECT_TRUE(IsLosslessNaive(test::Example9()));
}

TEST(NaiveKeyEquivalence, PaperVerdicts) {
  EXPECT_TRUE(IsKeyEquivalentOracle(test::Example3()));
  EXPECT_TRUE(IsKeyEquivalentOracle(test::Example4()));
  EXPECT_TRUE(IsKeyEquivalentOracle(test::Example6()));
  EXPECT_TRUE(IsKeyEquivalentOracle(test::Example9()));
  EXPECT_FALSE(IsKeyEquivalentOracle(test::Example1R()));
  EXPECT_FALSE(IsKeyEquivalentOracle(test::Example12()));
}

TEST(NaiveKep, Example13Partition) {
  DatabaseScheme s = test::Example13();
  // KEP = {{R1,R3,R4},{R2,R5,R6,R7},{R8}} (paper Example 13).
  std::vector<std::vector<size_t>> expected = {{0, 2, 3}, {1, 4, 5, 6}, {7}};
  EXPECT_EQ(MaximalKeyEquivalentSubsets(s), expected);
}

TEST(NaiveIndependence, PaperVerdicts) {
  EXPECT_TRUE(IsIndependentOracle(test::Example1S()));
  EXPECT_FALSE(IsIndependentOracle(test::Example1R()));
  EXPECT_FALSE(IsIndependentOracle(test::Example3()));
}

TEST(NaiveSplit, Example8AndExample4) {
  DatabaseScheme e8 = test::Example8();
  EXPECT_TRUE(IsKeySplitOracle(e8, Attrs(e8, "BC")));
  EXPECT_FALSE(IsKeySplitOracle(e8, Attrs(e8, "A")));
  DatabaseScheme e4 = test::Example4();
  EXPECT_TRUE(IsKeySplitOracle(e4, Attrs(e4, "BC")));
  EXPECT_FALSE(IsSplitFreeOracle(e4));
  EXPECT_TRUE(IsSplitFreeOracle(test::Example9()));
  EXPECT_TRUE(IsSplitFreeOracle(test::Example3()));
}

TEST(NaiveRecognition, PaperVerdicts) {
  EXPECT_TRUE(IsIndependenceReducibleOracle(test::Example1R()));
  EXPECT_TRUE(IsIndependenceReducibleOracle(test::Example11()));
  EXPECT_TRUE(IsIndependenceReducibleOracle(test::Example12()));
  EXPECT_FALSE(IsIndependenceReducibleOracle(test::Example2()));
}

TEST(NaiveClassification, CtmVerdicts) {
  // Example 1's R: independence-reducible, bounded and ctm.
  OracleClassification r = ClassifySchemeOracle(test::Example1R());
  EXPECT_TRUE(r.independence_reducible);
  EXPECT_TRUE(r.ctm);
  // Example 4: key-equivalent with split key BC — reducible but NOT ctm.
  OracleClassification e4 = ClassifySchemeOracle(test::Example4());
  EXPECT_TRUE(e4.key_equivalent);
  EXPECT_TRUE(e4.independence_reducible);
  EXPECT_FALSE(e4.split_free);
  EXPECT_FALSE(e4.ctm);
}

// The central cross-check: every optimized routine agrees with its oracle
// on every worked example of the paper.
TEST(Differential, PaperExamplesFullyAgree) {
  DifferentialOptions opt;
  const DatabaseScheme examples[] = {
      test::Example1R(), test::Example1S(), test::Example2(),
      test::Example3(),  test::Example4(),  test::Example6(),
      test::Example8(),  test::Example9(),  test::Example11(),
      test::Example12(), test::Example13()};
  for (const DatabaseScheme& s : examples) {
    for (const Disagreement& d : CompareAgainstOracles(s, opt)) {
      ADD_FAILURE() << d.routine << ": " << d.detail;
    }
  }
}

TEST(Mutate, CloneIsStructurallyEqualButIndependent) {
  DatabaseScheme s = test::Example4();
  DatabaseScheme c = CloneScheme(s);
  ASSERT_EQ(c.size(), s.size());
  EXPECT_NE(c.universe_ptr(), s.universe_ptr());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(c.relation(i).name, s.relation(i).name);
    EXPECT_EQ(c.universe().Format(c.relation(i).attrs),
              s.universe().Format(s.relation(i).attrs));
  }
  EXPECT_TRUE(c.Validate().ok());
}

TEST(Mutate, MutantsAreDeterministicAndLeaveInputIntact) {
  DatabaseScheme s = test::Example11();
  std::string before = s.universe().Format(s.AllAttrs());
  std::mt19937_64 rng1(7), rng2(7);
  for (int i = 0; i < 50; ++i) {
    DatabaseScheme a = MutateScheme(s, &rng1);
    DatabaseScheme b = MutateScheme(s, &rng2);
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a.universe().Format(a.relation(j).attrs),
                b.universe().Format(b.relation(j).attrs));
    }
  }
  EXPECT_EQ(s.universe().Format(s.AllAttrs()), before);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(Shrink, MinimizesWhilePreservingThePredicate) {
  // "Not split-free" on Example 4 must survive shrinking, and the shrunk
  // scheme must be locally minimal: dropping any further relation loses it.
  auto not_split_free = [](const DatabaseScheme& s) {
    return !IsSplitFreeOracle(s);
  };
  DatabaseScheme small = ShrinkScheme(test::Example4(), not_split_free);
  EXPECT_TRUE(not_split_free(small));
  EXPECT_TRUE(small.Validate().ok());
  EXPECT_LT(small.size(), test::Example4().size());
}

TEST(Corpus, WriteThenLoadRoundTrips) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "ird_corpus_test").string();
  std::filesystem::remove_all(dir);
  DatabaseScheme s = test::Example12();
  ASSERT_TRUE(
      WriteCorpusFile(dir, "example12", s, {"routine split/lemma38", "seed 7"})
          .ok());
  Result<std::vector<CorpusEntry>> loaded = LoadCorpus(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].filename, "example12.scheme");
  ASSERT_EQ((*loaded)[0].comments.size(), 2u);
  EXPECT_EQ((*loaded)[0].comments[0], "routine split/lemma38");
  ASSERT_EQ((*loaded)[0].scheme.size(), s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ((*loaded)[0].scheme.relation(i).name, s.relation(i).name);
  }
  std::filesystem::remove_all(dir);
}

TEST(Corpus, MissingDirectoryIsEmptyNotError) {
  Result<std::vector<CorpusEntry>> loaded =
      LoadCorpus("/nonexistent/ird/corpus/dir");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace ird::oracle
