// Correctness of the instrumentation substrate itself (src/obs): counter
// registry thread-safety, span nesting/unwind, export determinism, and
// chrome-trace well-formedness. The file compiles and runs under both
// instrumentation modes; with IRD_OBS=OFF the macros are ((void)0) and the
// tests assert the registries stay silent instead.

#include "obs/obs.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"

namespace ird::obs {
namespace {

uint64_t SpanCount(std::string_view name) {
  for (const SpanRegistry::Stat& s : SpanRegistry::Snapshot()) {
    if (s.name == name) return s.count;
  }
  return 0;
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  const uint64_t before = CounterValue("obs_test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        IRD_COUNT(obs_test.concurrent);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t delta = CounterValue("obs_test.concurrent") - before;
#ifdef IRD_OBS_DISABLED
  EXPECT_EQ(delta, 0u);
#else
  EXPECT_EQ(delta, static_cast<uint64_t>(kThreads) * kPerThread);
#endif
}

// Registration and snapshots race against each other by design (any
// thread may register a counter while another snapshots); the registry
// mutex — now ird::Mutex with the vector IRD_GUARDED_BY it — must hand
// every thread the same interned address and keep concurrent snapshots
// well-formed. Runs under the CI TSan job.
TEST(CounterTest, ConcurrentRegistrationInternsOneAddressPerName) {
  constexpr int kThreads = 8;
  std::vector<Counter*> counters(kThreads, nullptr);
  std::vector<SpanSite*> sites(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      counters[t] = &CounterRegistry::Get("obs_test.interned");
      sites[t] = &SpanRegistry::Get("obs_test.interned_site");
      // Interleave snapshots with registration from sibling threads.
      (void)CounterRegistry::Snapshot();
      (void)SpanRegistry::Snapshot();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(counters[t], counters[0]) << "thread " << t;
    EXPECT_EQ(sites[t], sites[0]) << "thread " << t;
  }
}

TEST(CounterTest, AddAccumulatesAndRegistryDeduplicatesByName) {
  const uint64_t before = CounterValue("obs_test.add");
  IRD_COUNT_ADD(obs_test.add, 5);
  IRD_COUNT_ADD(obs_test.add, 7);
  // A second site with the same name must land on the same counter.
  [] { IRD_COUNT_ADD(obs_test.add, 1); }();
  const uint64_t delta = CounterValue("obs_test.add") - before;
#ifdef IRD_OBS_DISABLED
  EXPECT_EQ(delta, 0u);
#else
  EXPECT_EQ(delta, 13u);
#endif
}

// A function whose early return unwinds two nested spans.
int NestedSpans(bool early) {
  IRD_SPAN("obs_test.outer");
  {
    IRD_SPAN("obs_test.inner");
    if (early) return 1;
  }
  return 0;
}

TEST(SpanTest, NestingAndUnwindOnEarlyReturn) {
  const uint64_t outer_before = SpanCount("obs_test.outer");
  const uint64_t inner_before = SpanCount("obs_test.inner");
  EXPECT_EQ(NestedSpans(/*early=*/true), 1);
  EXPECT_EQ(NestedSpans(/*early=*/false), 0);
#ifdef IRD_OBS_DISABLED
  EXPECT_EQ(SpanCount("obs_test.outer") - outer_before, 0u);
  EXPECT_EQ(SpanCount("obs_test.inner") - inner_before, 0u);
#else
  // Both spans complete on both paths: the early return unwinds inner and
  // outer like any scope exit.
  EXPECT_EQ(SpanCount("obs_test.outer") - outer_before, 2u);
  EXPECT_EQ(SpanCount("obs_test.inner") - inner_before, 2u);
#endif
}

#ifndef IRD_OBS_DISABLED
TEST(SpanTest, TraceEventsNestProperly) {
  Trace::Clear();
  Trace::SetEnabled(true);
  NestedSpans(/*early=*/true);
  Trace::SetEnabled(false);
  // Find this thread's fresh events.
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  std::vector<ThreadTrace> threads = Trace::Snapshot();
  for (const ThreadTrace& t : threads) {
    for (const TraceEvent& e : t.events) {
      if (e.site->name() == "obs_test.outer") outer = &e;
      if (e.site->name() == "obs_test.inner") inner = &e;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Inner interval sits inside outer: starts later, ends no later. (The
  // destructor order guarantees it even on the early return.)
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns,
            outer->start_ns + outer->dur_ns);
  Trace::Clear();
}

TEST(SpanTest, TraceRespectsEnableFlagAndCapacity) {
  Trace::Clear();
  Trace::SetEnabled(false);
  NestedSpans(false);
  size_t total = 0;
  for (const ThreadTrace& t : Trace::Snapshot()) total += t.events.size();
  EXPECT_EQ(total, 0u) << "disabled tracing must record nothing";

  Trace::SetCapacityPerThread(3);
  Trace::SetEnabled(true);
  for (int i = 0; i < 10; ++i) NestedSpans(false);
  Trace::SetEnabled(false);
  uint64_t dropped = 0;
  total = 0;
  for (const ThreadTrace& t : Trace::Snapshot()) {
    total += t.events.size();
    dropped += t.dropped;
  }
  EXPECT_LE(total, 3u);
  EXPECT_GT(dropped, 0u) << "events past the capacity must count as drops";
  Trace::SetCapacityPerThread(1 << 20);
  Trace::Clear();
}
#endif  // IRD_OBS_DISABLED

TEST(ExportTest, RenderingsAreDeterministic) {
  IRD_COUNT(obs_test.determinism);
  {
    IRD_SPAN("obs_test.determinism_span");
  }
  Snapshot snapshot = TakeSnapshot();
  EXPECT_EQ(RenderText(snapshot), RenderText(snapshot));
  EXPECT_EQ(RenderJson(snapshot), RenderJson(snapshot));
  // A fresh snapshot of unchanged counters renders counter-identically
  // (span totals move with the clock, so compare only the counter half).
  Snapshot again = TakeSnapshot();
  EXPECT_EQ(snapshot.counters, again.counters);
}

TEST(ExportTest, SnapshotNamesAreSorted) {
  IRD_COUNT(obs_test.zz_last);
  IRD_COUNT(obs_test.aa_first);
  Snapshot snapshot = TakeSnapshot();
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].first, snapshot.counters[i].first);
  }
  for (size_t i = 1; i < snapshot.spans.size(); ++i) {
    EXPECT_LT(snapshot.spans[i - 1].name, snapshot.spans[i].name);
  }
}

TEST(ExportTest, JsonShapeAndChromeTraceWellFormed) {
  IRD_COUNT(obs_test.json);
  std::string json = RenderJson(TakeSnapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"spans_us\":{"), std::string::npos);
#ifndef IRD_OBS_DISABLED
  EXPECT_NE(json.find("\"obs_test.json\":"), std::string::npos);

  Trace::Clear();
  Trace::SetEnabled(true);
  NestedSpans(false);
  Trace::SetEnabled(false);
#endif
  std::string trace = RenderChromeTrace();
  EXPECT_EQ(trace.front(), '{');
  EXPECT_EQ(trace.back(), '}');
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
#ifndef IRD_OBS_DISABLED
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"obs_test.outer\""), std::string::npos);
  // Balanced braces/brackets — the cheap well-formedness proxy (the CI
  // anchor workload additionally parses the real export with python).
  long depth = 0;
  for (char c : trace) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  Trace::Clear();
#endif
}

TEST(ExportTest, DeltaDropsZeroEntriesAndTracksFreshNames) {
  Snapshot before = TakeSnapshot();
  IRD_COUNT_ADD(obs_test.delta_fresh, 3);
  Snapshot delta = DeltaSince(before);
#ifdef IRD_OBS_DISABLED
  EXPECT_TRUE(delta.counters.empty());
#else
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].first, "obs_test.delta_fresh");
  EXPECT_EQ(delta.counters[0].second, 3u);
#endif
}

// ResetAll is process-global, so this test must run last in the binary
// (gtest runs tests in declaration order within a file; nothing else in
// this binary depends on prior counter values after this point).
TEST(ExportTest, ZZResetAllZeroesEverything) {
  IRD_COUNT(obs_test.reset);
  ResetAll();
  for (const auto& [name, value] : CounterRegistry::Snapshot()) {
    EXPECT_EQ(value, 0u) << name;
  }
  for (const SpanRegistry::Stat& s : SpanRegistry::Snapshot()) {
    EXPECT_EQ(s.count, 0u) << s.name;
    EXPECT_EQ(s.total_ns, 0u) << s.name;
  }
}

}  // namespace
}  // namespace ird::obs
