// Correctness of the instrumentation substrate itself (src/obs): counter
// registry thread-safety, span nesting/unwind, export determinism, and
// chrome-trace well-formedness. The file compiles and runs under both
// instrumentation modes; with IRD_OBS=OFF the macros are ((void)0) and the
// tests assert the registries stay silent instead.

#include "obs/obs.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"

namespace ird::obs {
namespace {

uint64_t SpanCount(std::string_view name) {
  for (const SpanRegistry::Stat& s : SpanRegistry::Snapshot()) {
    if (s.name == name) return s.count;
  }
  return 0;
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  const uint64_t before = CounterValue("obs_test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        IRD_COUNT(obs_test.concurrent);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t delta = CounterValue("obs_test.concurrent") - before;
#ifdef IRD_OBS_DISABLED
  EXPECT_EQ(delta, 0u);
#else
  EXPECT_EQ(delta, static_cast<uint64_t>(kThreads) * kPerThread);
#endif
}

// Registration and snapshots race against each other by design (any
// thread may register a counter while another snapshots); the registry
// mutex — now ird::Mutex with the vector IRD_GUARDED_BY it — must hand
// every thread the same interned address and keep concurrent snapshots
// well-formed. Runs under the CI TSan job.
TEST(CounterTest, ConcurrentRegistrationInternsOneAddressPerName) {
  constexpr int kThreads = 8;
  std::vector<Counter*> counters(kThreads, nullptr);
  std::vector<SpanSite*> sites(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      counters[t] = &CounterRegistry::Get("obs_test.interned");
      sites[t] = &SpanRegistry::Get("obs_test.interned_site");
      // Interleave snapshots with registration from sibling threads.
      (void)CounterRegistry::Snapshot();
      (void)SpanRegistry::Snapshot();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(counters[t], counters[0]) << "thread " << t;
    EXPECT_EQ(sites[t], sites[0]) << "thread " << t;
  }
}

TEST(CounterTest, AddAccumulatesAndRegistryDeduplicatesByName) {
  const uint64_t before = CounterValue("obs_test.add");
  IRD_COUNT_ADD(obs_test.add, 5);
  IRD_COUNT_ADD(obs_test.add, 7);
  // A second site with the same name must land on the same counter.
  [] { IRD_COUNT_ADD(obs_test.add, 1); }();
  const uint64_t delta = CounterValue("obs_test.add") - before;
#ifdef IRD_OBS_DISABLED
  EXPECT_EQ(delta, 0u);
#else
  EXPECT_EQ(delta, 13u);
#endif
}

// A function whose early return unwinds two nested spans.
int NestedSpans(bool early) {
  IRD_SPAN("obs_test.outer");
  {
    IRD_SPAN("obs_test.inner");
    if (early) return 1;
  }
  return 0;
}

TEST(SpanTest, NestingAndUnwindOnEarlyReturn) {
  const uint64_t outer_before = SpanCount("obs_test.outer");
  const uint64_t inner_before = SpanCount("obs_test.inner");
  EXPECT_EQ(NestedSpans(/*early=*/true), 1);
  EXPECT_EQ(NestedSpans(/*early=*/false), 0);
#ifdef IRD_OBS_DISABLED
  EXPECT_EQ(SpanCount("obs_test.outer") - outer_before, 0u);
  EXPECT_EQ(SpanCount("obs_test.inner") - inner_before, 0u);
#else
  // Both spans complete on both paths: the early return unwinds inner and
  // outer like any scope exit.
  EXPECT_EQ(SpanCount("obs_test.outer") - outer_before, 2u);
  EXPECT_EQ(SpanCount("obs_test.inner") - inner_before, 2u);
#endif
}

#ifndef IRD_OBS_DISABLED
TEST(SpanTest, TraceEventsNestProperly) {
  Trace::Clear();
  Trace::SetEnabled(true);
  NestedSpans(/*early=*/true);
  Trace::SetEnabled(false);
  // Find this thread's fresh events.
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  std::vector<ThreadTrace> threads = Trace::Snapshot();
  for (const ThreadTrace& t : threads) {
    for (const TraceEvent& e : t.events) {
      if (e.site->name() == "obs_test.outer") outer = &e;
      if (e.site->name() == "obs_test.inner") inner = &e;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Inner interval sits inside outer: starts later, ends no later. (The
  // destructor order guarantees it even on the early return.)
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns,
            outer->start_ns + outer->dur_ns);
  Trace::Clear();
}

TEST(SpanTest, TraceRespectsEnableFlagAndCapacity) {
  Trace::Clear();
  Trace::SetEnabled(false);
  NestedSpans(false);
  size_t total = 0;
  for (const ThreadTrace& t : Trace::Snapshot()) total += t.events.size();
  EXPECT_EQ(total, 0u) << "disabled tracing must record nothing";

  Trace::SetCapacityPerThread(3);
  Trace::SetEnabled(true);
  for (int i = 0; i < 10; ++i) NestedSpans(false);
  Trace::SetEnabled(false);
  uint64_t dropped = 0;
  total = 0;
  for (const ThreadTrace& t : Trace::Snapshot()) {
    total += t.events.size();
    dropped += t.dropped;
  }
  EXPECT_LE(total, 3u);
  EXPECT_GT(dropped, 0u) << "events past the capacity must count as drops";
  Trace::SetCapacityPerThread(1 << 20);
  Trace::Clear();
}
#endif  // IRD_OBS_DISABLED

TEST(ExportTest, RenderingsAreDeterministic) {
  IRD_COUNT(obs_test.determinism);
  {
    IRD_SPAN("obs_test.determinism_span");
  }
  Snapshot snapshot = TakeSnapshot();
  EXPECT_EQ(RenderText(snapshot), RenderText(snapshot));
  EXPECT_EQ(RenderJson(snapshot), RenderJson(snapshot));
  // A fresh snapshot of unchanged counters renders counter-identically
  // (span totals move with the clock, so compare only the counter half).
  Snapshot again = TakeSnapshot();
  EXPECT_EQ(snapshot.counters, again.counters);
}

TEST(ExportTest, SnapshotNamesAreSorted) {
  IRD_COUNT(obs_test.zz_last);
  IRD_COUNT(obs_test.aa_first);
  Snapshot snapshot = TakeSnapshot();
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].first, snapshot.counters[i].first);
  }
  for (size_t i = 1; i < snapshot.spans.size(); ++i) {
    EXPECT_LT(snapshot.spans[i - 1].name, snapshot.spans[i].name);
  }
}

TEST(ExportTest, JsonShapeAndChromeTraceWellFormed) {
  IRD_COUNT(obs_test.json);
  std::string json = RenderJson(TakeSnapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"spans_us\":{"), std::string::npos);
#ifndef IRD_OBS_DISABLED
  EXPECT_NE(json.find("\"obs_test.json\":"), std::string::npos);

  Trace::Clear();
  Trace::SetEnabled(true);
  NestedSpans(false);
  Trace::SetEnabled(false);
#endif
  std::string trace = RenderChromeTrace();
  EXPECT_EQ(trace.front(), '{');
  EXPECT_EQ(trace.back(), '}');
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
#ifndef IRD_OBS_DISABLED
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"obs_test.outer\""), std::string::npos);
  // Balanced braces/brackets — the cheap well-formedness proxy (the CI
  // anchor workload additionally parses the real export with python).
  long depth = 0;
  for (char c : trace) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  Trace::Clear();
#endif
}

TEST(ExportTest, DeltaDropsZeroEntriesAndTracksFreshNames) {
  Snapshot before = TakeSnapshot();
  IRD_COUNT_ADD(obs_test.delta_fresh, 3);
  Snapshot delta = DeltaSince(before);
#ifdef IRD_OBS_DISABLED
  EXPECT_TRUE(delta.counters.empty());
#else
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].first, "obs_test.delta_fresh");
  EXPECT_EQ(delta.counters[0].second, 3u);
#endif
}

uint64_t HistCount(std::string_view name) {
  for (const HistogramRegistry::Stat& h : HistogramRegistry::Snapshot()) {
    if (h.name == name) return h.count;
  }
  return 0;
}

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(HistogramSite::BucketOf(0), 0u);
  EXPECT_EQ(HistogramSite::BucketOf(1), 1u);
  EXPECT_EQ(HistogramSite::BucketOf(2), 2u);
  EXPECT_EQ(HistogramSite::BucketOf(3), 2u);
  EXPECT_EQ(HistogramSite::BucketOf(4), 3u);
  EXPECT_EQ(HistogramSite::BucketOf(1023), 10u);
  EXPECT_EQ(HistogramSite::BucketOf(1024), 11u);
  EXPECT_EQ(HistogramSite::BucketOf(~uint64_t{0}), 64u);
}

TEST(HistogramTest, QuantilesWalkTheBucketCdf) {
  // 100 samples of value 1 (bucket 1) and one sample of 1000 (bucket 10):
  // p50 sits in bucket 1, p99 still in bucket 1 (rank 100 of 101), and
  // only the very top rank reaches bucket 10.
  HistogramRegistry::Stat stat;
  stat.name = "synthetic";
  stat.buckets[1] = 100;
  stat.buckets[10] = 1;
  stat.count = 101;
  stat.sum = 100 + 1000;
  EXPECT_GE(HistogramQuantile(stat, 0.50), 1.0);
  EXPECT_LT(HistogramQuantile(stat, 0.50), 2.0);
  // Rank 100 of 101 is the last sample of bucket 1, so the interpolation
  // reaches that bucket's top edge but no further.
  EXPECT_LE(HistogramQuantile(stat, 0.99), 2.0);
  EXPECT_GE(HistogramQuantile(stat, 1.00), 512.0);
  // Empty histogram: quantiles are 0 by convention.
  HistogramRegistry::Stat empty;
  EXPECT_EQ(HistogramQuantile(empty, 0.99), 0.0);
}

// The cross-thread merge: every thread's shard contributes, and the
// snapshot's count/sum are exact sums over all shards. Runs under the CI
// TSan job.
TEST(HistogramTest, CrossThreadMergeCountsExactly) {
  const uint64_t before = HistCount("obs_test.merge");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        IRD_HISTOGRAM(obs_test.merge, static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t delta = HistCount("obs_test.merge") - before;
#ifdef IRD_OBS_DISABLED
  EXPECT_EQ(delta, 0u);
#else
  EXPECT_EQ(delta, static_cast<uint64_t>(kThreads) * kPerThread);
  for (const HistogramRegistry::Stat& h : HistogramRegistry::Snapshot()) {
    if (h.name != "obs_test.merge") continue;
    // Values 1..8 land in buckets 1..4; nothing above.
    uint64_t bucketed = 0;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (b > 4) {
        EXPECT_EQ(h.buckets[b], 0u) << "bucket " << b;
      }
      bucketed += h.buckets[b];
    }
    EXPECT_EQ(bucketed, h.count);
  }
#endif
}

// Snapshot-delta arithmetic stays exact while writers are still running:
// the delta of a quiescent prefix never goes negative or misattributes,
// and a delta taken after join accounts for every sample.
TEST(HistogramTest, SnapshotDeltaUnderConcurrentWriters) {
  Snapshot before = TakeSnapshot();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kPerThread; ++i) {
        IRD_HISTOGRAM(obs_test.delta_race, 7);
        IRD_COUNT(obs_test.delta_race_counter);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Mid-flight deltas must be well-formed (monotone counts, no underflow).
  for (int probe = 0; probe < 10; ++probe) {
    Snapshot mid = Delta(before, TakeSnapshot());
    for (const HistogramRegistry::Stat& h : mid.hists) {
      uint64_t bucketed = 0;
      for (uint64_t b : h.buckets) bucketed += b;
      EXPECT_EQ(bucketed, h.count) << h.name;
    }
  }
  for (std::thread& t : threads) t.join();
  Snapshot delta = Delta(before, TakeSnapshot());
#ifdef IRD_OBS_DISABLED
  EXPECT_TRUE(delta.hists.empty());
#else
  bool found = false;
  for (const HistogramRegistry::Stat& h : delta.hists) {
    if (h.name != "obs_test.delta_race") continue;
    found = true;
    EXPECT_EQ(h.count, static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(h.sum, static_cast<uint64_t>(kThreads) * kPerThread * 7);
  }
  EXPECT_TRUE(found);
#endif
}

TEST(ContextTest, CapturesOnlyItsOwnOperation) {
  IRD_COUNT_ADD(obs_test.ctx_outside, 5);  // before the context: not ours
  ObsContext ctx("op");
  IRD_COUNT_ADD(obs_test.ctx_inside, 3);
  IRD_HISTOGRAM(obs_test.ctx_hist, 32);
  Snapshot snap = ContextSnapshot(ctx);
#ifdef IRD_OBS_DISABLED
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.hists.empty());
#else
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "obs_test.ctx_inside");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.hists.size(), 1u);
  EXPECT_EQ(snap.hists[0].name, "obs_test.ctx_hist");
  EXPECT_EQ(snap.hists[0].count, 1u);
  EXPECT_EQ(snap.hists[0].sum, 32u);
#endif
}

TEST(ContextTest, NestedContextFoldsIntoParentOnDestruction) {
  ObsContext outer("outer");
  IRD_COUNT_ADD(obs_test.ctx_nested, 2);
  {
    ObsContext inner("inner");
    IRD_COUNT_ADD(obs_test.ctx_nested, 3);
#ifndef IRD_OBS_DISABLED
    // While inner is installed, the new tally is inner's alone...
    Snapshot in = ContextSnapshot(inner);
    ASSERT_EQ(in.counters.size(), 1u);
    EXPECT_EQ(in.counters[0].second, 3u);
    Snapshot out = ContextSnapshot(outer);
    ASSERT_EQ(out.counters.size(), 1u);
    EXPECT_EQ(out.counters[0].second, 2u);
#endif
  }
  // ...and folds into outer when inner ends (the inner op is part of the
  // outer one).
  Snapshot out = ContextSnapshot(outer);
#ifdef IRD_OBS_DISABLED
  EXPECT_TRUE(out.counters.empty());
#else
  ASSERT_EQ(out.counters.size(), 1u);
  EXPECT_EQ(out.counters[0].second, 5u);
#endif
}

// A worker thread adopting the context via ObsContextScope attributes its
// tallies to the adopted context — the BatchAnalyzer handout contract.
TEST(ContextTest, AdoptedWorkersAttributeToTheContext) {
  ObsContext ctx("batch");
  std::thread worker([&] {
    ObsContextScope adopt(&ctx);
    IRD_COUNT_ADD(obs_test.ctx_worker, 4);
    IRD_HISTOGRAM(obs_test.ctx_worker_hist, 9);
  });
  worker.join();
  Snapshot snap = ContextSnapshot(ctx);
#ifdef IRD_OBS_DISABLED
  EXPECT_TRUE(snap.counters.empty());
#else
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "obs_test.ctx_worker");
  EXPECT_EQ(snap.counters[0].second, 4u);
  ASSERT_EQ(snap.hists.size(), 1u);
  EXPECT_EQ(snap.hists[0].sum, 9u);
#endif
}

TEST(ContextTest, ScopeShieldsAndRestoresThePreviousContext) {
  EXPECT_EQ(CurrentContext(), nullptr);
  ObsContext ctx("shield");
  EXPECT_EQ(CurrentContext(), &ctx);
  {
    ObsContextScope shield(nullptr);
    EXPECT_EQ(CurrentContext(), nullptr);
  }
  EXPECT_EQ(CurrentContext(), &ctx);
}

// Destroying contexts out of LIFO order is a programming error (the
// delta-folding bookkeeping would corrupt) and must abort loudly.
using ContextDeathTest = ::testing::Test;
TEST(ContextDeathTest, OutOfOrderDestructionAborts) {
  EXPECT_DEATH(
      {
        auto outer = std::make_unique<ObsContext>("outer");
        auto inner = std::make_unique<ObsContext>("inner");
        outer.reset();  // outer dies while inner is still installed
      },
      "LIFO");
}

// ResetAll is process-global, so this test must run last in the binary
// (gtest runs tests in declaration order within a file; nothing else in
// this binary depends on prior counter values after this point).
TEST(ExportTest, ZZResetAllZeroesEverything) {
  IRD_COUNT(obs_test.reset);
  IRD_HISTOGRAM(obs_test.reset_hist, 42);
  ResetAll();
  for (const auto& [name, value] : CounterRegistry::Snapshot()) {
    EXPECT_EQ(value, 0u) << name;
  }
  for (const SpanRegistry::Stat& s : SpanRegistry::Snapshot()) {
    EXPECT_EQ(s.count, 0u) << s.name;
    EXPECT_EQ(s.total_ns, 0u) << s.name;
  }
  for (const HistogramRegistry::Stat& h : HistogramRegistry::Snapshot()) {
    EXPECT_EQ(h.count, 0u) << h.name;
    EXPECT_EQ(h.sum, 0u) << h.name;
  }
}

}  // namespace
}  // namespace ird::obs
