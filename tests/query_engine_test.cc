#include "core/query_engine.h"

#include <gtest/gtest.h>

#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;

TEST(QueryEngineTest, RejectsNonReducibleSchemes) {
  Result<QueryEngine> engine = QueryEngine::Create(test::Example2());
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryEngineTest, PlansAreCached) {
  Result<QueryEngine> engine = QueryEngine::Create(test::Example1R());
  ASSERT_TRUE(engine.ok());
  AttributeSet hsc = Attrs(engine->scheme(), "HSC");
  ExprPtr first = engine->PlanFor(hsc);
  ExprPtr second = engine->PlanFor(hsc);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(engine->cache_misses(), 1u);
  EXPECT_EQ(engine->cache_hits(), 1u);
  engine->PlanFor(Attrs(engine->scheme(), "TC"));
  EXPECT_EQ(engine->cache_misses(), 2u);
}

TEST(QueryEngineTest, UncoverableProjectionIsEmpty) {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A"});
  s.AddRelation("R2", "CD", {"C"});
  Result<QueryEngine> engine = QueryEngine::Create(s);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->PlanFor(Attrs(s, "AC")), nullptr);
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R2", {3, 4});
  EXPECT_TRUE(engine->TotalProjection(state, Attrs(s, "AC")).empty());
}

TEST(QueryEngineTest, MatchesChaseAcrossStatesAndTargets) {
  std::vector<DatabaseScheme> schemes = {test::Example1R(), test::Example11(),
                                         MakeBlockScheme(2, 3)};
  for (const DatabaseScheme& s : schemes) {
    Result<QueryEngine> engine = QueryEngine::Create(s);
    ASSERT_TRUE(engine.ok());
    for (uint64_t seed : {3u, 4u}) {
      StateGenOptions opt;
      opt.entities = 12;
      opt.seed = seed;
      DatabaseState state = MakeConsistentState(s, opt);
      for (const RelationScheme& r : s.relations()) {
        PartialRelation answer = engine->TotalProjection(state, r.attrs);
        Result<PartialRelation> chase = TotalProjectionByChase(state, r.attrs);
        ASSERT_TRUE(chase.ok());
        EXPECT_TRUE(answer.SetEquals(*chase)) << r.name;
      }
    }
    // The second state reused every cached plan.
    EXPECT_GT(engine->cache_hits(), 0u);
  }
}

}  // namespace
}  // namespace ird
