#include <gtest/gtest.h>

#include "core/classify.h"
#include "io/text_format.h"
#include "relation/weak_instance.h"

namespace ird {
namespace {

constexpr char kUniversity[] = R"(
# Example 1's university scheme.
relation R1 ( H R C ) keys ( H R )
relation R2 ( H T R ) keys ( H T ) ( H R )
relation R3 ( H T C ) keys ( H T )
relation R4 ( C S G ) keys ( C S )
relation R5 ( H S R ) keys ( H S )

insert R1 h1 r1 c1
insert R2 h1 t1 r1
insert R4 c1 s1 gA
)";

TEST(TextFormatTest, ParsesSchemeAndState) {
  Result<ParsedDatabase> db = ParseDatabaseText(kUniversity);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->scheme.size(), 5u);
  EXPECT_TRUE(db->scheme.Validate().ok());
  EXPECT_EQ(db->scheme.relation(1).keys.size(), 2u);
  DatabaseState state = db->MakeState();
  EXPECT_EQ(state.TupleCount(), 3u);
  EXPECT_TRUE(IsConsistent(state));
}

TEST(TextFormatTest, InsertValuesFollowDeclaredOrder) {
  Result<ParsedDatabase> db = ParseDatabaseText(R"(
relation R ( B A ) keys ( A )
insert R bval aval
)");
  ASSERT_TRUE(db.ok());
  DatabaseState state = db->MakeState();
  const PartialTuple& t = state.relation(0).tuples()[0];
  AttributeId a = db->scheme.universe().Find("A").value();
  AttributeId b = db->scheme.universe().Find("B").value();
  EXPECT_EQ(db->values.Name(t.At(a)), "aval");
  EXPECT_EQ(db->values.Name(t.At(b)), "bval");
}

TEST(TextFormatTest, RoundTripsThroughFormat) {
  Result<ParsedDatabase> db = ParseDatabaseText(kUniversity);
  ASSERT_TRUE(db.ok());
  std::string text =
      FormatScheme(db->scheme) + FormatState(db->MakeState(), db->values);
  Result<ParsedDatabase> again = ParseDatabaseText(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;
  EXPECT_EQ(again->scheme.size(), db->scheme.size());
  EXPECT_EQ(again->inserts.size(), db->inserts.size());
  EXPECT_EQ(FormatScheme(again->scheme), FormatScheme(db->scheme));
}

TEST(TextFormatTest, ParsedSchemeClassifies) {
  Result<ParsedDatabase> db = ParseDatabaseText(kUniversity);
  ASSERT_TRUE(db.ok());
  SchemeClassification c = ClassifyScheme(db->scheme);
  EXPECT_TRUE(c.independence_reducible);
  EXPECT_TRUE(c.ctm);
}

TEST(TextFormatTest, ErrorsCarryLineNumbers) {
  Result<ParsedDatabase> r = ParseDatabaseText("relation R ( A ) nokeys");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(TextFormatTest, RejectsUnknownRelationInInsert) {
  Result<ParsedDatabase> r = ParseDatabaseText(R"(
relation R ( A B ) keys ( A )
insert Q 1 2
)");
  EXPECT_FALSE(r.ok());
}

TEST(TextFormatTest, RejectsArityMismatch) {
  Result<ParsedDatabase> r = ParseDatabaseText(R"(
relation R ( A B ) keys ( A )
insert R 1
)");
  EXPECT_FALSE(r.ok());
}

TEST(TextFormatTest, RejectsKeyOutsideRelation) {
  Result<ParsedDatabase> r =
      ParseDatabaseText("relation R ( A B ) keys ( C )");
  EXPECT_FALSE(r.ok());
}

TEST(TextFormatTest, RejectsDuplicateAttribute) {
  Result<ParsedDatabase> r =
      ParseDatabaseText("relation R ( A A ) keys ( A )");
  EXPECT_FALSE(r.ok());
}

TEST(TextFormatTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseDatabaseText("").ok());
  EXPECT_FALSE(ParseDatabaseText("# only a comment\n").ok());
}

TEST(ValueDictionaryTest, InternAndName) {
  ValueDictionary dict;
  Value a = dict.Intern("alpha");
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.Name(a), "alpha");
  EXPECT_EQ(dict.Name(999), "?");
  EXPECT_TRUE(dict.Has("alpha"));
  EXPECT_FALSE(dict.Has("beta"));
}

}  // namespace
}  // namespace ird
