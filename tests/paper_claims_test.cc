// Tests for the paper's headline claims that cut across modules — the
// "shape" results that the benchmark experiments then quantify.

#include <gtest/gtest.h>

#include "core/augmentation.h"
#include "core/block_maintainer.h"
#include "core/classify.h"
#include "core/ctm_maintainer.h"
#include "core/key_equivalent_maintainer.h"
#include "core/split.h"
#include "core/total_projection.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;
using test::Tuple;

// Example 5 / Theorem 3.4: on a split key-equivalent scheme, the raw-state
// key-probe procedure of Algorithm 5 is WRONG — it accepts an insert the
// chase rejects. (This is exactly why CtmMaintainer::Create refuses split
// schemes, and why the paper needs Algorithm 2's representative instance.)
TEST(PaperClaimsTest, Example5SplitDefeatsRawKeyProbes) {
  DatabaseScheme s = test::Example4();
  constexpr Value a = 1, b = 2, c = 3, e = 10, e2 = 11, eprime = 20;
  DatabaseState state(s);
  state.mutable_relation(0).Add(Tuple(s, "AB", {a, b}));
  state.mutable_relation(1).Add(Tuple(s, "AC", {a, c}));
  state.mutable_relation(3).Add(Tuple(s, "EB", {e, b}));
  state.mutable_relation(3).Add(Tuple(s, "EB", {e2, b}));
  state.mutable_relation(4).Add(Tuple(s, "EC", {e, c}));
  ASSERT_TRUE(IsConsistent(state));
  PartialTuple insert = Tuple(s, "AE", {a, eprime});
  // Ground truth: inconsistent (the representative instance has
  // <a,b,c,e> via E -> B/C, BC -> D, D -> A, and A -> E forces e).
  EXPECT_FALSE(WouldRemainConsistent(state, 2, insert));
  // Algorithm 2 (representative-instance lookups): correct.
  Result<KeyEquivalentMaintainer> alg2 =
      KeyEquivalentMaintainer::Create(state);
  ASSERT_TRUE(alg2.ok());
  EXPECT_FALSE(alg2->CheckInsert(2, insert).ok());
  // Algorithm 5's probes applied anyway (the scheme is split, so this is
  // outside its precondition): wrongly accepts.
  Result<StateKeyIndex> idx = StateKeyIndex::Build(state);
  ASSERT_TRUE(idx.ok());
  Result<PartialTuple> q = CheckInsertCtm(s, *idx, 2, insert);
  EXPECT_TRUE(q.ok()) << "raw key probes cannot see through the split key";
}

// On split-FREE schemes the same two procedures agree everywhere — the
// if-direction of Corollary 3.3 made executable.
TEST(PaperClaimsTest, SplitFreeMakesRawKeyProbesExact) {
  std::vector<DatabaseScheme> schemes = {MakeChainScheme(4),
                                         MakeStarScheme(3), test::Example3()};
  for (const DatabaseScheme& s : schemes) {
    ASSERT_TRUE(IsSplitFree(s));
    StateGenOptions opt;
    opt.entities = 20;
    opt.seed = 83;
    DatabaseState state = MakeConsistentState(s, opt);
    Result<StateKeyIndex> idx = StateKeyIndex::Build(state);
    ASSERT_TRUE(idx.ok());
    std::vector<InsertInstance> stream =
        MakeInsertStream(s, state, 30, 0.5, 87);
    for (const InsertInstance& ins : stream) {
      EXPECT_EQ(CheckInsertCtm(s, *idx, ins.rel, ins.tuple).ok(),
                WouldRemainConsistent(state, ins.rel, ins.tuple));
    }
  }
}

// Example 2 / §2.7: the scheme {AB, BC, AC} with F = {A->C, B->C} needs
// unboundedly many tuples to reject an insert: the inconsistency of
// <a_n, c'> into r3 vanishes when ANY tuple of the B-chain is removed.
TEST(PaperClaimsTest, Example2RejectionNeedsTheWholeChain) {
  DatabaseScheme s = test::Example2();
  const size_t n = 6;
  // State: r3 = {<a0, c0>}; r1 = {<a0,b0>, <a1,b0>, <a1,b1>, <a2,b1>,...}
  // a "zig-zag" connecting a0 to an; r2 empty... r2 = {} — C values flow
  // through A -> C and B -> C? In Example 2, the chain forces all the
  // C-values of the zigzag equal, so <a_n, c'> with c' ≠ c0 clashes.
  DatabaseState state(s);
  state.Insert("R3", {1000, 1});  // A=a0, C=c0
  for (size_t i = 0; i < n; ++i) {
    // <a_i, b_i> and <a_{i+1}, b_i>.
    state.Insert("R1", {static_cast<Value>(1000 + i),
                        static_cast<Value>(2000 + i)});
    state.Insert("R1", {static_cast<Value>(1000 + i + 1),
                        static_cast<Value>(2000 + i)});
  }
  ASSERT_TRUE(IsConsistent(state));
  PartialTuple insert =
      Tuple(s, "AC", {static_cast<Value>(1000 + n), 2});  // c' = 2 ≠ c0
  EXPECT_FALSE(WouldRemainConsistent(state, 2, insert));
  // Removing any single zig-zag tuple makes the insert consistent: the
  // rejection genuinely depends on the whole chain (state-size-dependent
  // maintenance — R is not algebraic-maintainable).
  for (size_t victim = 0; victim < state.relation(0).size(); ++victim) {
    DatabaseState smaller(s);
    smaller.Insert("R3", {1000, 1});
    for (size_t i = 0; i < state.relation(0).size(); ++i) {
      if (i != victim) {
        smaller.mutable_relation(0).Add(state.relation(0).tuples()[i]);
      }
    }
    EXPECT_TRUE(WouldRemainConsistent(smaller, 2, insert))
        << "victim " << victim;
  }
}

// Boundedness in action: the number of chase rule applications to answer a
// query grows with the state, while the bounded expression's *size* does
// not (its evaluation is one indexed pass).
TEST(PaperClaimsTest, BoundedExpressionSizeVsChaseWork) {
  DatabaseScheme s = test::Example4();
  RecognitionResult r = RecognizeIndependenceReducible(s);
  ASSERT_TRUE(r.accepted);
  ExprPtr expr = BuildBoundedProjectionExpr(s, r, Attrs(s, "AE"));
  ASSERT_NE(expr, nullptr);
  size_t expr_nodes = expr->NodeCount();
  size_t chase_small = 0;
  size_t chase_large = 0;
  for (size_t entities : {10u, 100u}) {
    StateGenOptions opt;
    opt.entities = entities;
    opt.coverage = 0.8;
    opt.seed = 91;
    DatabaseState state = MakeConsistentState(s, opt);
    Tableau t = StateTableau(state);
    ChaseStats stats = ChaseFds(&t, s.key_dependencies());
    ASSERT_TRUE(stats.consistent);
    (entities == 10u ? chase_small : chase_large) = stats.rule_applications;
    // The expression is the same object regardless of the state.
    EXPECT_EQ(BuildBoundedProjectionExpr(s, r, Attrs(s, "AE"))->NodeCount(),
              expr_nodes);
  }
  EXPECT_GT(chase_large, chase_small);
}

// Theorem 5.4: AUG of independent and AUG of γ-acyclic BCNF schemes are
// accepted. (Random augmentations of the generated families.)
TEST(PaperClaimsTest, Theorem54AugmentedClassesAccepted) {
  std::mt19937_64 rng(5);
  std::vector<DatabaseScheme> bases = {MakeIndependentScheme(3),
                                       MakeStarScheme(4), MakeChainScheme(3),
                                       test::Example1S()};
  for (DatabaseScheme s : bases) {
    ASSERT_TRUE(IsIndependenceReducible(s));
    for (int round = 0; round < 4; ++round) {
      const RelationScheme& base = s.relation(rng() % s.size());
      std::vector<AttributeId> attrs = base.attrs.ToVector();
      AttributeSet sub;
      for (AttributeId a : attrs) {
        if (rng() % 2 == 0) sub.Add(a);
      }
      if (sub.Empty() || sub == base.attrs) continue;
      bool duplicate = false;
      for (const RelationScheme& r : s.relations()) {
        if (r.attrs == sub) duplicate = true;
      }
      if (duplicate) continue;
      ASSERT_TRUE(Augment(&s, "Aug" + std::to_string(round), sub).ok());
      EXPECT_TRUE(IsIndependenceReducible(s))
          << "augmented with " << s.universe().Format(sub) << "\n"
          << s.ToString();
    }
  }
}

// The class landscape on the paper's own examples, in one table.
TEST(PaperClaimsTest, ClassLandscapeOfThePaperExamples) {
  struct Row {
    DatabaseScheme scheme;
    bool independent;
    bool key_equivalent;
    bool reducible;
    bool ctm;
  };
  std::vector<Row> rows;
  rows.push_back({test::Example1R(), false, false, true, true});
  rows.push_back({test::Example1S(), true, false, true, true});
  rows.push_back({test::Example2(), false, false, false, false});
  rows.push_back({test::Example3(), false, true, true, true});
  rows.push_back({test::Example4(), false, true, true, false});
  // Example 6 is split: CD is completed by {AC, AD} (neither contains CD),
  // which is exactly why its maintenance needs Algorithm 2's CD step.
  rows.push_back({test::Example6(), false, true, true, false});
  // The bidirectional chain satisfies the uniqueness condition.
  rows.push_back({test::Example9(), true, true, true, true});
  rows.push_back({test::Example11(), false, false, true, true});
  for (const Row& row : rows) {
    SchemeClassification c = ClassifyScheme(row.scheme);
    EXPECT_EQ(c.independent, row.independent) << row.scheme.ToString();
    EXPECT_EQ(c.key_equivalent, row.key_equivalent) << row.scheme.ToString();
    EXPECT_EQ(c.independence_reducible, row.reducible)
        << row.scheme.ToString();
    EXPECT_EQ(c.ctm, row.ctm) << row.scheme.ToString();
  }
}

}  // namespace
}  // namespace ird
