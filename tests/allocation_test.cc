// Allocation accounting for the memory-substrate hot paths: a counting
// global operator new proves that (a) the chase engine's worklist-drain
// loop and (b) warm ClosureEngine::Closure queries run without touching the
// heap — the arena, the reserved merge log, and the engine scratch absorb
// every steady-state need. Registered only in Release builds without
// sanitizers (both Debug allocators and ASan/TSan interpose on new/delete
// and would make the counts meaningless); see tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "base/universe.h"
#include "fd/closure_engine.h"
#include "fd/fd_set.h"
#include "tableau/chase.h"
#include "tableau/tableau.h"

namespace {

std::atomic<uint64_t> g_heap_allocs{0};

}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ird {
namespace {

struct DrainWindow {
  uint64_t begin = 0;
  uint64_t end = 0;
  bool fired = false;
};

void OnDrainBegin(void* ctx) {
  static_cast<DrainWindow*>(ctx)->begin =
      g_heap_allocs.load(std::memory_order_relaxed);
}

void OnDrainEnd(void* ctx) {
  DrainWindow* w = static_cast<DrainWindow*>(ctx);
  w->end = g_heap_allocs.load(std::memory_order_relaxed);
  w->fired = true;
}

// Merge-cascade chase (three chained FDs): every drain iteration probes,
// equates, repairs the occurrence index, and appends to the merge log —
// the full steady-state loop. The ChasePhaseObserver brackets exactly the
// worklist drain, after the engine has sized its arena-backed structures.
TEST(AllocationTest, ChaseWorklistDrainIsHeapFree) {
  Universe u;
  AttributeId A = u.Intern("A");
  AttributeId B = u.Intern("B");
  AttributeId C = u.Intern("C");
  AttributeId D = u.Intern("D");
  FdSet fds;
  fds.Add(AttributeSet({C}), AttributeSet({D}));
  fds.Add(AttributeSet({B}), AttributeSet({C}));
  fds.Add(AttributeSet({A}), AttributeSet({B}));

  auto make_tableau = [&] {
    Tableau t(4);
    SymId a = t.Constant(1);
    t.AddRow({a, t.Constant(2), t.Constant(3), t.Constant(4)});
    t.AddRow({a, t.FreshNdv(), t.FreshNdv(), t.FreshNdv()});
    return t;
  };

  // Warm-up run: lets the obs registry materialize its counter and
  // histogram sites (local statics allocated on first passage).
  {
    Tableau warm = make_tableau();
    ASSERT_TRUE(ChaseFds(&warm, fds).consistent);
  }

  DrainWindow window;
  ChasePhaseObserver observer;
  observer.on_drain_begin = &OnDrainBegin;
  observer.on_drain_end = &OnDrainEnd;
  observer.ctx = &window;
  SetChasePhaseObserverForTest(&observer);
  Tableau t = make_tableau();
  ChaseStats stats = ChaseFds(&t, fds);
  SetChasePhaseObserverForTest(nullptr);

  ASSERT_TRUE(stats.consistent);
  ASSERT_TRUE(window.fired);
  // The cascade really ran through the drain (merge-driven reprobes)...
  EXPECT_GE(stats.reprobes, 4u);
  // ...and did so without a single heap allocation.
  EXPECT_EQ(window.end - window.begin, 0u);
}

// Closure queries against a fixed FD set: the first call sizes the
// per-engine scratch (counters + work stack); every later call — including
// ones whose result crosses word boundaries — must be allocation-free.
// Results stay within AttributeSet's inline words (the universe here is
// far below the spill threshold).
TEST(AllocationTest, WarmClosureQueriesAreHeapFree) {
  FdSet fds;
  for (AttributeId a = 0; a + 1 < 12; ++a) {
    fds.Add(AttributeSet({a}), AttributeSet({static_cast<AttributeId>(a + 1)}));
  }
  ClosureEngine engine(fds);

  // Warm-up: sizes the scratch vectors and touches the obs sites.
  AttributeSet warm = engine.Closure(AttributeSet{0});
  ASSERT_EQ(warm.Count(), 12u);

  uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (AttributeId a = 0; a < 12; ++a) {
    AttributeSet closure = engine.Closure(AttributeSet{a});
    ASSERT_EQ(closure.Count(), 12u - a);
  }
  uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace ird
