// Parameterized property sweeps: every maintained invariant of the library,
// run systematically over (scheme family × size × seed). These are the
// paper's theorems as executable properties:
//
//   P1  generated schemes validate, and class flags are coherent
//       (independent ⇒ accepted; key-equivalent ⇒ BCNF ∧ accepted;
//        accepted ∧ split-free ⇔ ctm).
//   P2  maintenance agreement: Algorithm 2 / Algorithm 5 (when applicable)
//       / the block maintainer == the chase, on insert streams.
//   P3  query agreement: Theorem 4.1 expressions == [X] by chase.
//   P4  representative index == chase representative instance.
//   P5  split analysis: Lemma 3.8 == the definitional search.

#include <gtest/gtest.h>

#include "core/block_maintainer.h"
#include "core/classify.h"
#include "core/ctm_maintainer.h"
#include "core/key_equivalence.h"
#include "core/key_equivalent_maintainer.h"
#include "core/representative_index.h"
#include "core/split.h"
#include "core/total_projection.h"
#include "hypergraph/hypergraph.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

enum class Family {
  kChain,
  kSplit,
  kIndependent,
  kBlocks,
  kStar,
  kTreeOneWay,
  kTreeMixed,
  kRandom,
  kRandomMultiKey,
  kPaper,  // size = example number
};

struct SweepCase {
  Family family;
  size_t size;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const char* names[] = {"Chain",      "Split",      "Independent",
                         "Blocks",     "Star",       "TreeOneWay",
                         "TreeMixed",  "Random",     "RandomMultiKey",
                         "Example"};
  return std::string(names[static_cast<int>(info.param.family)]) + "_s" +
         std::to_string(info.param.size) + "_r" +
         std::to_string(info.param.seed);
}

DatabaseScheme MakeScheme(const SweepCase& c) {
  switch (c.family) {
    case Family::kChain:
      return MakeChainScheme(c.size);
    case Family::kSplit:
      return MakeSplitScheme(c.size);
    case Family::kIndependent:
      return MakeIndependentScheme(c.size);
    case Family::kBlocks:
      return MakeBlockScheme(c.size, 3);
    case Family::kStar:
      return MakeStarScheme(c.size);
    case Family::kTreeOneWay:
      return MakeTreeScheme(c.size, 0.0, c.seed);
    case Family::kTreeMixed:
      return MakeTreeScheme(c.size, 0.5, c.seed);
    case Family::kRandom: {
      RandomSchemeOptions opt;
      opt.universe_size = c.size + 2;
      opt.relations = c.size;
      opt.seed = c.seed;
      return MakeRandomScheme(opt);
    }
    case Family::kRandomMultiKey: {
      RandomSchemeOptions opt;
      opt.universe_size = c.size + 2;
      opt.relations = c.size;
      opt.multi_key_prob = 0.5;
      opt.seed = c.seed;
      return MakeRandomScheme(opt);
    }
    case Family::kPaper:
      switch (c.size) {
        case 1:
          return test::Example1R();
        case 2:
          return test::Example2();
        case 3:
          return test::Example3();
        case 4:
          return test::Example4();
        case 6:
          return test::Example6();
        case 8:
          return test::Example8();
        case 9:
          return test::Example9();
        case 11:
          return test::Example11();
        case 12:
          return test::Example12();
        case 13:
          return test::Example13();
      }
      IRD_CHECK(false);
  }
  IRD_CHECK(false);
  return DatabaseScheme::Create();
}

class PropertySweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  PropertySweep() : scheme_(MakeScheme(GetParam())) {}

  DatabaseState MakeState(size_t entities) const {
    StateGenOptions opt;
    opt.entities = entities;
    opt.coverage = 0.6;
    opt.seed = GetParam().seed + 1000;
    return MakeConsistentState(scheme_, opt);
  }

  DatabaseScheme scheme_;
};

TEST_P(PropertySweep, P1_ValidityAndClassCoherence) {
  EXPECT_TRUE(scheme_.Validate().ok()) << scheme_.ToString();
  SchemeClassification c = ClassifyScheme(scheme_, /*test_acyclicity=*/false);
  if (c.independent) {
    EXPECT_TRUE(c.independence_reducible) << scheme_.ToString();
  }
  if (c.key_equivalent) {
    EXPECT_TRUE(c.bcnf) << scheme_.ToString();  // Lemma 3.1
    EXPECT_TRUE(c.independence_reducible) << scheme_.ToString();
  }
  if (c.independence_reducible) {
    EXPECT_EQ(c.ctm, c.split_free);  // Theorem 5.5
    EXPECT_TRUE(c.bounded);
    EXPECT_TRUE(c.algebraic_maintainable);
  } else {
    EXPECT_FALSE(c.ctm);
  }
}

TEST_P(PropertySweep, P2_MaintenanceAgreesWithChase) {
  RecognitionResult recognition = RecognizeIndependenceReducible(scheme_);
  if (!recognition.accepted) GTEST_SKIP() << "outside the class";
  DatabaseState state = MakeState(15);
  ASSERT_TRUE(IsConsistent(state));
  Result<IndependenceReducibleMaintainer> block =
      IndependenceReducibleMaintainer::Create(state);
  ASSERT_TRUE(block.ok());
  std::optional<KeyEquivalentMaintainer> alg2;
  if (IsKeyEquivalent(scheme_)) {
    Result<KeyEquivalentMaintainer> m = KeyEquivalentMaintainer::Create(state);
    ASSERT_TRUE(m.ok());
    alg2.emplace(std::move(m).value());
  }
  std::optional<CtmMaintainer> alg5;
  if (IsKeyEquivalent(scheme_) && IsSplitFree(scheme_)) {
    Result<CtmMaintainer> m = CtmMaintainer::Create(state);
    ASSERT_TRUE(m.ok());
    alg5.emplace(std::move(m).value());
  }
  std::vector<InsertInstance> stream =
      MakeInsertStream(scheme_, state, 25, 0.4, GetParam().seed + 7);
  for (const InsertInstance& ins : stream) {
    bool truth = WouldRemainConsistent(state, ins.rel, ins.tuple);
    EXPECT_EQ(truth, ins.expected_consistent);
    EXPECT_EQ(block->CheckInsert(ins.rel, ins.tuple).ok(), truth)
        << ins.tuple.ToString(scheme_.universe());
    if (alg2.has_value()) {
      EXPECT_EQ(alg2->CheckInsert(ins.rel, ins.tuple).ok(), truth);
    }
    if (alg5.has_value()) {
      EXPECT_EQ(alg5->CheckInsert(ins.rel, ins.tuple).ok(), truth);
    }
  }
}

TEST_P(PropertySweep, P3_BoundedProjectionsAgreeWithChase) {
  RecognitionResult recognition = RecognizeIndependenceReducible(scheme_);
  if (!recognition.accepted) GTEST_SKIP() << "outside the class";
  if (scheme_.size() > 12) GTEST_SKIP() << "expression enumeration too wide";
  DatabaseState state = MakeState(10);
  std::mt19937_64 rng(GetParam().seed + 13);
  std::vector<AttributeId> all = scheme_.AllAttrs().ToVector();
  for (int round = 0; round < 4; ++round) {
    AttributeSet x;
    for (AttributeId a : all) {
      if (rng() % 3 == 0) x.Add(a);
    }
    if (x.Empty()) x.Add(all[rng() % all.size()]);
    PartialRelation bounded = TotalProjection(state, recognition, x);
    Result<PartialRelation> chase = TotalProjectionByChase(state, x);
    ASSERT_TRUE(chase.ok());
    EXPECT_TRUE(bounded.SetEquals(*chase))
        << scheme_.universe().Format(x) << "\n  bounded "
        << bounded.ToString(scheme_.universe()) << "\n  chase   "
        << chase->ToString(scheme_.universe());
  }
}

TEST_P(PropertySweep, P4_RepresentativeIndexMatchesChase) {
  if (!IsKeyEquivalent(scheme_)) GTEST_SKIP() << "not key-equivalent";
  DatabaseState state = MakeState(20);
  Result<RepresentativeIndex> index = RepresentativeIndex::Build(state);
  ASSERT_TRUE(index.ok());
  for (const RelationScheme& r : scheme_.relations()) {
    Result<PartialRelation> chase =
        TotalProjectionByChase(state, r.attrs);
    ASSERT_TRUE(chase.ok());
    EXPECT_TRUE(index->TotalProjection(r.attrs).SetEquals(*chase)) << r.name;
  }
}

TEST_P(PropertySweep, P5_SplitTestsAgree) {
  if (scheme_.size() > 14) GTEST_SKIP() << "definitional search too wide";
  for (const auto& [rel, key] : scheme_.AllKeys()) {
    EXPECT_EQ(IsKeySplit(scheme_, key),
              IsKeySplitByDefinition(scheme_, key))
        << scheme_.relation(rel).name << " key "
        << scheme_.universe().Format(key);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, PropertySweep,
    ::testing::Values(
        SweepCase{Family::kChain, 2, 1}, SweepCase{Family::kChain, 5, 2},
        SweepCase{Family::kChain, 9, 3}, SweepCase{Family::kSplit, 2, 1},
        SweepCase{Family::kSplit, 3, 2}, SweepCase{Family::kSplit, 5, 3},
        SweepCase{Family::kIndependent, 1, 1},
        SweepCase{Family::kIndependent, 4, 2},
        SweepCase{Family::kIndependent, 8, 3},
        SweepCase{Family::kBlocks, 1, 1}, SweepCase{Family::kBlocks, 2, 2},
        SweepCase{Family::kBlocks, 4, 3}, SweepCase{Family::kStar, 1, 1},
        SweepCase{Family::kStar, 5, 2},
        SweepCase{Family::kTreeOneWay, 5, 11},
        SweepCase{Family::kTreeOneWay, 9, 12},
        SweepCase{Family::kTreeMixed, 5, 21},
        SweepCase{Family::kTreeMixed, 9, 22},
        SweepCase{Family::kTreeMixed, 12, 23},
        SweepCase{Family::kRandom, 4, 31}, SweepCase{Family::kRandom, 4, 32},
        SweepCase{Family::kRandom, 6, 33}, SweepCase{Family::kRandom, 6, 34},
        SweepCase{Family::kRandom, 8, 35}, SweepCase{Family::kRandom, 8, 36},
        SweepCase{Family::kRandomMultiKey, 4, 41},
        SweepCase{Family::kRandomMultiKey, 5, 42},
        SweepCase{Family::kRandomMultiKey, 6, 43},
        SweepCase{Family::kRandomMultiKey, 7, 44},
        SweepCase{Family::kPaper, 1, 0}, SweepCase{Family::kPaper, 2, 0},
        SweepCase{Family::kPaper, 3, 0}, SweepCase{Family::kPaper, 4, 0},
        SweepCase{Family::kPaper, 6, 0}, SweepCase{Family::kPaper, 8, 0},
        SweepCase{Family::kPaper, 9, 0}, SweepCase{Family::kPaper, 11, 0},
        SweepCase{Family::kPaper, 12, 0}, SweepCase{Family::kPaper, 13, 0}),
    CaseName);

// Theorem 5.2 over the tree family: γ-acyclic BCNF trees are always
// accepted (checked densely over many random trees; γ-acyclicity of the
// 2-attribute tree hypergraph is verified on the small ones).
TEST(TreeFamilyTest, Theorem52Sweep) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    size_t nodes = 3 + seed % 8;
    DatabaseScheme s = MakeTreeScheme(nodes, (seed % 3) * 0.5, seed);
    ASSERT_TRUE(s.Validate().ok()) << s.ToString();
    EXPECT_TRUE(s.IsBcnf()) << s.ToString();
    if (nodes <= 7) {
      EXPECT_TRUE(IsGammaAcyclic(Hypergraph::Of(s))) << s.ToString();
    }
    EXPECT_TRUE(IsIndependenceReducible(s)) << s.ToString();
  }
}

}  // namespace
}  // namespace ird
