#include <gtest/gtest.h>

#include <random>

#include "hypergraph/hypergraph.h"
#include "tests/test_util.h"

namespace ird {
namespace {

using test::Attrs;

Hypergraph H(std::vector<AttributeSet> edges) {
  return Hypergraph(std::move(edges));
}

TEST(HypergraphTest, OfScheme) {
  Hypergraph h = Hypergraph::Of(test::Example1R());
  EXPECT_EQ(h.edge_count(), 5u);
  EXPECT_EQ(h.nodes().Count(), 6u);  // H, R, C, T, S, G
}

TEST(HypergraphTest, Connectivity) {
  EXPECT_TRUE(H({{0, 1}, {1, 2}, {2, 3}}).IsConnected());
  EXPECT_FALSE(H({{0, 1}, {2, 3}}).IsConnected());
  EXPECT_TRUE(H({}).IsConnected());
  EXPECT_EQ(H({{0, 1}, {2, 3}, {3, 4}}).ConnectedComponents().size(), 2u);
}

TEST(HypergraphTest, ConnectedFamily) {
  EXPECT_TRUE(IsConnectedFamily({{0, 1}, {1, 2}}));
  EXPECT_FALSE(IsConnectedFamily({{0, 1}, {2, 3}}));
  EXPECT_TRUE(IsConnectedFamily({}));
  EXPECT_TRUE(IsConnectedFamily({{5}}));
}

TEST(BachmanTest, ClosesUnderIntersection) {
  std::vector<AttributeSet> closure =
      BachmanClosure({{0, 1, 2}, {1, 2, 3}, {2, 3, 4}});
  // Intersections: {1,2}, {2,3}, {2}.
  EXPECT_EQ(closure.size(), 6u);
  bool has_12 = false, has_2 = false;
  for (const AttributeSet& s : closure) {
    if (s == (AttributeSet{1, 2})) has_12 = true;
    if (s == (AttributeSet{2})) has_2 = true;
  }
  EXPECT_TRUE(has_12);
  EXPECT_TRUE(has_2);
}

TEST(BachmanTest, DropsEmptyIntersections) {
  std::vector<AttributeSet> closure = BachmanClosure({{0, 1}, {2, 3}});
  EXPECT_EQ(closure.size(), 2u);
}

TEST(UmcTest, PathHypergraphHasUmc) {
  Hypergraph h = H({{0, 1}, {1, 2}, {2, 3}});
  auto umc = FindUniqueMinimalConnection(h, AttributeSet{0, 3});
  ASSERT_TRUE(umc.has_value());
  EXPECT_EQ(umc->size(), 3u);  // the whole path
}

TEST(UmcTest, SingleEdgeCover) {
  Hypergraph h = H({{0, 1, 2}, {2, 3}});
  auto umc = FindUniqueMinimalConnection(h, AttributeSet{0, 1});
  ASSERT_TRUE(umc.has_value());
  EXPECT_EQ(umc->size(), 1u);
}

TEST(UmcTest, TriangleHasNoUmcForPairs) {
  // {AB, BC, AC}: between A and B both {AB} and {BC, AC} are minimal
  // connections and neither dominates the other.
  Hypergraph h = H({{0, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(FindUniqueMinimalConnection(h, AttributeSet{0, 1}).has_value());
  EXPECT_FALSE(
      FindUniqueMinimalConnection(h, AttributeSet{0, 1, 2}).has_value());
}

TEST(UmcTest, SunflowerFanIsGammaCyclic) {
  // {124, 014, 034}: between 0 and 1 both {014} and the two-set connection
  // through node 4 are minimal, and neither dominates the other with
  // distinct representatives — no u.m.c., matching the Fagin γ-cycle
  // (E1, 1, E2, 0, E3, 4, E1) with exempt connector 4. The hypergraph is
  // α-acyclic: γ is strictly stronger.
  Hypergraph h = H({{1, 2, 4}, {0, 1, 4}, {0, 3, 4}});
  EXPECT_FALSE(FindUniqueMinimalConnection(h, AttributeSet{0, 1}).has_value());
  EXPECT_FALSE(HasUmcForAllSubsets(h));
  EXPECT_FALSE(IsGammaAcyclic(h));
  EXPECT_TRUE(IsAlphaAcyclic(h));
}

TEST(UmcTest, InjectiveDominationRegression) {
  // The α-cyclic "fan triangle" (three arity-3 edges around a common core
  // node): without the distinct-representatives requirement in the u.m.c.
  // domination test, this wrongly passed as γ-acyclic.
  Hypergraph h = H({{0, 3, 4}, {1, 3, 4}, {0, 2, 3}, {2, 3, 4}});
  EXPECT_FALSE(IsAlphaAcyclic(h));
  EXPECT_FALSE(IsGammaAcyclic(h));
  EXPECT_FALSE(FindUniqueMinimalConnection(h, AttributeSet{0, 2}).has_value());
}

TEST(UmcTest, ContainedEdgeCreatesAmbiguity) {
  // {AB, AC, ABC}: the connection between B and C is ambiguous — through
  // ABC directly or through AB ⋈ AC — so there is no u.m.c. for {B, C}.
  Hypergraph h = H({{0, 1}, {0, 2}, {0, 1, 2}});
  EXPECT_FALSE(FindUniqueMinimalConnection(h, AttributeSet{1, 2}).has_value());
  EXPECT_FALSE(IsGammaAcyclic(h));
  // Reduced, the ambiguity disappears.
  EXPECT_TRUE(IsGammaAcyclic(H({{0, 1, 2}})));
}

TEST(UmcTest, UncoverableReturnsNullopt) {
  Hypergraph h = H({{0, 1}, {2, 3}});
  EXPECT_FALSE(FindUniqueMinimalConnection(h, AttributeSet{0, 3}).has_value());
}

TEST(GammaTest, TriangleIsGammaCyclic) {
  // Example 3's hypergraph {AB, BC, AC}.
  EXPECT_FALSE(IsGammaAcyclic(H({{0, 1}, {1, 2}, {0, 2}})));
}

TEST(GammaTest, PathAndStarAreGammaAcyclic) {
  EXPECT_TRUE(IsGammaAcyclic(H({{0, 1}, {1, 2}, {2, 3}})));
  EXPECT_TRUE(IsGammaAcyclic(H({{0, 1}, {0, 2}, {0, 3}})));
  EXPECT_TRUE(IsGammaAcyclic(H({{0, 1, 2}})));
  EXPECT_TRUE(IsGammaAcyclic(H({{0, 1}, {0, 1, 2}})));
}

TEST(GammaTest, Example1RIsNotGammaAcyclic) {
  // The paper states R of Example 1 is not γ-acyclic.
  EXPECT_FALSE(IsGammaAcyclic(Hypergraph::Of(test::Example1R())));
}

TEST(GammaTest, Example1SIsGammaAcyclic) {
  // S = {HRCT, CSG, HSR}: pairwise overlaps C/S/HR..., check the exact
  // verdict against the u.m.c. characterization below; here just pin the
  // γ-cycle search's answer for regression.
  Hypergraph h = Hypergraph::Of(test::Example1S());
  EXPECT_EQ(IsGammaAcyclic(h), HasUmcForAllSubsets(h));
}

TEST(GammaTest, AgreesWithUmcCharacterizationOnPaperSchemes) {
  // Theorem 2.1: for connected R, γ-acyclic iff u.m.c. exists among every
  // X ⊆ U.
  std::vector<DatabaseScheme> schemes = {test::Example1R(), test::Example3(),
                                         test::Example9(), test::Example11()};
  for (const DatabaseScheme& s : schemes) {
    Hypergraph h = Hypergraph::Of(s);
    if (!h.IsConnected()) continue;
    EXPECT_EQ(IsGammaAcyclic(h), HasUmcForAllSubsets(h)) << s.ToString();
  }
}

TEST(GammaTest, AgreesWithUmcCharacterizationOnRandomHypergraphs) {
  std::mt19937_64 rng(11);
  size_t checked = 0;
  for (int round = 0; round < 60; ++round) {
    size_t nodes = 4 + rng() % 3;   // 4..6
    size_t edges = 3 + rng() % 2;   // 3..4
    std::vector<AttributeSet> e;
    for (size_t i = 0; i < edges; ++i) {
      AttributeSet set;
      while (set.Count() < 2) {
        set.Add(static_cast<AttributeId>(rng() % nodes));
      }
      if (rng() % 2 == 0) set.Add(static_cast<AttributeId>(rng() % nodes));
      e.push_back(set);
    }
    Hypergraph h(std::move(e));
    if (!h.IsConnected()) continue;
    ++checked;
    EXPECT_EQ(IsGammaAcyclic(h), HasUmcForAllSubsets(h))
        << "round " << round;
  }
  EXPECT_GT(checked, 20u);
}

TEST(AlphaTest, GyoBasics) {
  EXPECT_TRUE(IsAlphaAcyclic(H({{0, 1}, {1, 2}, {2, 3}})));
  EXPECT_FALSE(IsAlphaAcyclic(H({{0, 1}, {1, 2}, {0, 2}})));
  // The classic α-but-not-γ example: adding the full edge ABC makes the
  // triangle α-acyclic.
  EXPECT_TRUE(IsAlphaAcyclic(H({{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}})));
}

TEST(AlphaTest, GammaImpliesAlphaOnRandomHypergraphs) {
  std::mt19937_64 rng(23);
  for (int round = 0; round < 80; ++round) {
    size_t nodes = 4 + rng() % 4;
    size_t edges = 2 + rng() % 4;
    std::vector<AttributeSet> e;
    for (size_t i = 0; i < edges; ++i) {
      AttributeSet set;
      while (set.Count() < 2) {
        set.Add(static_cast<AttributeId>(rng() % nodes));
      }
      e.push_back(set);
    }
    Hypergraph h(std::move(e));
    if (IsGammaAcyclic(h)) {
      EXPECT_TRUE(IsAlphaAcyclic(h)) << "round " << round;
    }
  }
}

TEST(AlphaTest, Example3NotEvenAlphaAcyclic) {
  // The paper notes Example 3's R is not even α-acyclic.
  EXPECT_FALSE(IsAlphaAcyclic(Hypergraph::Of(test::Example3())));
}

}  // namespace
}  // namespace ird
