#include <gtest/gtest.h>

#include "relation/weak_instance.h"
#include "tests/test_util.h"

namespace ird {
namespace {

using test::Attrs;
using test::Tuple;

TEST(PartialTupleTest, AccessAndRestrict) {
  PartialTuple t(AttributeSet{1, 3, 5}, {10, 30, 50});
  EXPECT_EQ(t.arity(), 3u);
  EXPECT_EQ(t.At(3), 30);
  EXPECT_TRUE(t.DefinedOn(5));
  EXPECT_FALSE(t.DefinedOn(2));
  PartialTuple r = t.Restrict(AttributeSet{1, 5});
  EXPECT_EQ(r.values(), (std::vector<Value>{10, 50}));
}

TEST(PartialTupleTest, AgreesOn) {
  PartialTuple a(AttributeSet{0, 1}, {1, 2});
  PartialTuple b(AttributeSet{1, 2}, {2, 3});
  EXPECT_TRUE(a.AgreesOn(b, AttributeSet{1}));
  PartialTuple c(AttributeSet{1, 2}, {9, 3});
  EXPECT_FALSE(a.AgreesOn(c, AttributeSet{1}));
}

TEST(PartialTupleTest, JoinCompatible) {
  PartialTuple a(AttributeSet{0, 1}, {1, 2});
  PartialTuple b(AttributeSet{1, 2}, {2, 3});
  auto joined = a.Join(b);
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(joined->attrs(), (AttributeSet{0, 1, 2}));
  EXPECT_EQ(joined->values(), (std::vector<Value>{1, 2, 3}));
}

TEST(PartialTupleTest, JoinClashReturnsEmpty) {
  PartialTuple a(AttributeSet{0, 1}, {1, 2});
  PartialTuple b(AttributeSet{1, 2}, {7, 3});
  EXPECT_FALSE(a.Join(b).has_value());
}

TEST(PartialTupleTest, JoinDisjointIsProduct) {
  PartialTuple a(AttributeSet{0}, {1});
  PartialTuple b(AttributeSet{2}, {3});
  auto joined = a.Join(b);
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(joined->values(), (std::vector<Value>{1, 3}));
}

TEST(PartialRelationTest, AddUniqueDeduplicates) {
  PartialRelation r(AttributeSet{0, 1});
  EXPECT_TRUE(r.AddUnique(PartialTuple(AttributeSet{0, 1}, {1, 2})));
  EXPECT_FALSE(r.AddUnique(PartialTuple(AttributeSet{0, 1}, {1, 2})));
  EXPECT_TRUE(r.AddUnique(PartialTuple(AttributeSet{0, 1}, {1, 3})));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(PartialTuple(AttributeSet{0, 1}, {1, 2})));
  EXPECT_FALSE(r.Contains(PartialTuple(AttributeSet{0, 1}, {9, 9})));
}

TEST(PartialRelationTest, SetEquals) {
  PartialRelation a(AttributeSet{0});
  PartialRelation b(AttributeSet{0});
  a.Add({1});
  a.Add({2});
  b.Add({2});
  b.Add({1});
  b.Add({1});  // duplicate collapses under set semantics
  EXPECT_TRUE(a.SetEquals(b));
  b.Add({3});
  EXPECT_FALSE(a.SetEquals(b));
}

TEST(PartialRelationTest, SatisfiesFds) {
  PartialRelation r(AttributeSet{0, 1});
  r.Add({1, 2});
  r.Add({1, 2});
  r.Add({3, 4});
  FdSet f;
  f.Add(AttributeSet{0}, AttributeSet{1});
  EXPECT_TRUE(r.Satisfies(f));
  r.Add({1, 9});
  EXPECT_FALSE(r.Satisfies(f));
  // FDs not embedded in the relation are ignored.
  FdSet g;
  g.Add(AttributeSet{5}, AttributeSet{6});
  EXPECT_TRUE(r.Satisfies(g));
}

TEST(DatabaseStateTest, InsertByNameAndCount) {
  DatabaseState state(test::Example9());
  state.Insert("R1", {1, 2});
  state.Insert(0, {3, 4});
  state.Insert("R4", {7, 8});
  EXPECT_EQ(state.TupleCount(), 3u);
  EXPECT_EQ(state.relation(0).size(), 2u);
  EXPECT_EQ(state.relation(3).size(), 1u);
  EXPECT_TRUE(state.relation(1).empty());
}

TEST(WeakInstanceTest, EmptyStateIsConsistent) {
  DatabaseState state(test::Example3());
  EXPECT_TRUE(IsConsistent(state));
}

TEST(WeakInstanceTest, Example10InconsistentInsert) {
  // Example 10: s1 = {<a,b>}, s2 = {<b,c>}, s3 = ∅; inserting <a,c'> into
  // s3 is inconsistent.
  DatabaseScheme s = test::Example3();
  DatabaseState state(s);
  constexpr Value a = 1, b = 2, c = 3, c2 = 4;
  state.Insert("R1", {a, b});
  state.Insert("R2", {b, c});
  EXPECT_TRUE(IsConsistent(state));
  EXPECT_FALSE(WouldRemainConsistent(state, 2, Tuple(s, "AC", {a, c2})));
  EXPECT_TRUE(WouldRemainConsistent(state, 2, Tuple(s, "AC", {a, c})));
}

TEST(WeakInstanceTest, RepresentativeInstanceMergesFragments) {
  DatabaseScheme s = test::Example9();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});  // A=1 B=2
  state.Insert("R2", {2, 3});  // B=2 C=3
  state.Insert("R3", {3, 4});  // C=3 D=4
  Result<Tableau> ri = RepresentativeInstance(state);
  ASSERT_TRUE(ri.ok());
  // Every row is total on ABCD (the chain closes in both directions).
  AttributeSet abcd = Attrs(s, "ABCD");
  for (size_t row = 0; row < ri->row_count(); ++row) {
    EXPECT_TRUE(ri->TotalOn(row, abcd));
  }
}

TEST(WeakInstanceTest, TotalProjectionByChase) {
  DatabaseScheme s = test::Example9();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R2", {2, 3});
  state.Insert("R1", {8, 9});  // unlinked second entity
  Result<PartialRelation> ac = TotalProjectionByChase(state, Attrs(s, "AC"));
  ASSERT_TRUE(ac.ok());
  ASSERT_EQ(ac->size(), 1u);
  EXPECT_EQ(ac->tuples()[0].values(), (std::vector<Value>{1, 3}));
  // [AB] has both entities.
  Result<PartialRelation> ab = TotalProjectionByChase(state, Attrs(s, "AB"));
  ASSERT_TRUE(ab.ok());
  EXPECT_EQ(ab->size(), 2u);
}

TEST(WeakInstanceTest, TotalProjectionOfInconsistentStateFails) {
  DatabaseScheme s = test::Example9();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R1", {1, 3});  // A -> B violated
  Result<PartialRelation> r = TotalProjectionByChase(state, Attrs(s, "AB"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInconsistent);
}

TEST(WeakInstanceTest, LocalVsGlobalConsistency) {
  // Example 1's motivation: R is not independent, so some locally
  // consistent state is globally inconsistent. Build one on Example 2's
  // scheme (the classic non-independent triangle).
  DatabaseScheme s = test::Example2();
  DatabaseState state(s);
  constexpr Value a = 1, b = 2, c = 3, c2 = 4;
  state.Insert("R1", {a, b});   // AB
  state.Insert("R2", {b, c});   // B -> C
  state.Insert("R3", {a, c2});  // A -> C with a different C
  EXPECT_TRUE(IsLocallyConsistent(state));
  EXPECT_FALSE(IsConsistent(state));
}

TEST(WeakInstanceTest, LocallyInconsistentDetected) {
  DatabaseScheme s = test::Example2();
  DatabaseState state(s);
  state.Insert("R2", {1, 2});
  state.Insert("R2", {1, 3});  // violates B -> C inside one relation
  EXPECT_FALSE(IsLocallyConsistent(state));
}

}  // namespace
}  // namespace ird
