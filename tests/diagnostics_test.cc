// Unit tests for the witness-backed diagnostics engine: rule emission on
// the paper's worked examples, independent witness verification, and —
// crucially — that *tampered* witnesses are rejected (the verifier must not
// be a rubber stamp).

#include <algorithm>
#include <string>
#include <variant>
#include <vector>

#include "diagnostics/diagnostic.h"
#include "diagnostics/lint.h"
#include "diagnostics/render.h"
#include "diagnostics/verify.h"
#include "gtest/gtest.h"
#include "schema/database_scheme.h"

namespace ird::diagnostics {
namespace {

// Example 2: the non-algebraic-maintainable triangle (Algorithm 6 rejects).
DatabaseScheme RejectedTriangle() {
  DatabaseScheme scheme = DatabaseScheme::Create();
  scheme.AddRelation("R1", "AB", {"AB"});
  scheme.AddRelation("R2", "BC", {"B"});
  scheme.AddRelation("R3", "AC", {"A"});
  return scheme;
}

// Examples 4/5/7: key-equivalent with split key BC.
DatabaseScheme SplitKeyScheme() {
  DatabaseScheme scheme = DatabaseScheme::Create();
  scheme.AddRelation("R1", "AB", {"A"});
  scheme.AddRelation("R2", "AC", {"A"});
  scheme.AddRelation("R3", "AE", {"A", "E"});
  scheme.AddRelation("R4", "EB", {"E"});
  scheme.AddRelation("R5", "EC", {"E"});
  scheme.AddRelation("R6", "BCD", {"BC", "D"});
  scheme.AddRelation("R7", "DA", {"D", "A"});
  return scheme;
}

// Example 1 (university): independence-reducible and ctm — the clean case.
DatabaseScheme University() {
  DatabaseScheme scheme = DatabaseScheme::Create();
  scheme.AddRelation("R1", "HRC", {"HR"});
  scheme.AddRelation("R2", "HTR", {"HT", "HR"});
  scheme.AddRelation("R3", "HTC", {"HT"});
  scheme.AddRelation("R4", "CSG", {"CS"});
  scheme.AddRelation("R5", "HSR", {"HS"});
  return scheme;
}

const Diagnostic* FindRule(const LintReport& report, RuleId rule) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

TEST(RuleRegistry, TenRulesWithUniqueNames) {
  const std::vector<RuleInfo>& rules = RuleRegistry();
  EXPECT_EQ(rules.size(), 10u);
  std::vector<std::string> names;
  for (const RuleInfo& info : rules) {
    EXPECT_STREQ(RuleName(info.id), info.name);
    EXPECT_NE(std::string(info.paper_ref), "");
    names.emplace_back(info.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Lint, EmptySchemeIsClean) {
  DatabaseScheme scheme = DatabaseScheme::Create();
  EXPECT_TRUE(LintScheme(scheme).diagnostics.empty());
}

TEST(Lint, UniversityHasNoErrors) {
  LintReport report = LintScheme(University());
  EXPECT_EQ(report.CountSeverity(Severity::kError), 0u)
      << RenderText(University(), report);
  EXPECT_TRUE(VerifyReport(University(), report).ok());
}

TEST(Lint, RejectedTriangleExplainsTheRejection) {
  DatabaseScheme scheme = RejectedTriangle();
  LintReport report = LintScheme(scheme);
  const Diagnostic* rejected = FindRule(report, RuleId::kRecognitionRejected);
  ASSERT_NE(rejected, nullptr) << RenderText(scheme, report);
  EXPECT_EQ(rejected->severity, Severity::kError);
  // The message must be a concrete, human-readable explanation.
  EXPECT_NE(rejected->message.find("block"), std::string::npos)
      << rejected->message;
  const auto& w = std::get<RecognitionRejectedWitness>(rejected->witness);
  EXPECT_FALSE(w.partition.empty());
  EXPECT_NE(w.block_i, w.block_j);
  // And the whole report must survive independent verification.
  EXPECT_TRUE(VerifyReport(scheme, report).ok());
}

TEST(Lint, SplitKeyBcIsFoundWithInstanceWitness) {
  DatabaseScheme scheme = SplitKeyScheme();
  LintReport report = LintScheme(scheme);
  const Diagnostic* split = FindRule(report, RuleId::kSplitKey);
  ASSERT_NE(split, nullptr) << RenderText(scheme, report);
  const auto& w = std::get<SplitKeyWitness>(split->witness);
  AttributeSet bc = scheme.universe_ptr()->Chars("BC");
  EXPECT_TRUE(w.key == bc) << split->Signature(scheme);
  ASSERT_TRUE(w.state.has_value());
  EXPECT_FALSE(w.covering.empty());
  EXPECT_TRUE(VerifyReport(scheme, report).ok());
}

TEST(Lint, SplitKeyWithoutInstancesStillVerifies) {
  DatabaseScheme scheme = SplitKeyScheme();
  LintOptions opts;
  opts.build_instance_witnesses = false;
  LintReport report = LintScheme(scheme, opts);
  const Diagnostic* split = FindRule(report, RuleId::kSplitKey);
  ASSERT_NE(split, nullptr);
  EXPECT_FALSE(std::get<SplitKeyWitness>(split->witness).state.has_value());
  EXPECT_TRUE(VerifyReport(scheme, report).ok());
}

TEST(Verify, TamperedRecognitionWitnessIsRejected) {
  DatabaseScheme scheme = RejectedTriangle();
  LintReport report = LintScheme(scheme);
  const Diagnostic* rejected = FindRule(report, RuleId::kRecognitionRejected);
  ASSERT_NE(rejected, nullptr);

  // Swap the violating blocks: the closure claim no longer holds.
  Diagnostic tampered = *rejected;
  auto& w = std::get<RecognitionRejectedWitness>(tampered.witness);
  std::swap(w.block_i, w.block_j);
  EXPECT_FALSE(VerifyWitness(scheme, tampered).ok());

  // Break the partition (drop one block).
  tampered = *rejected;
  std::get<RecognitionRejectedWitness>(tampered.witness).partition.pop_back();
  EXPECT_FALSE(VerifyWitness(scheme, tampered).ok());
}

TEST(Verify, TamperedSplitWitnessIsRejected) {
  DatabaseScheme scheme = SplitKeyScheme();
  LintReport report = LintScheme(scheme);
  const Diagnostic* split = FindRule(report, RuleId::kSplitKey);
  ASSERT_NE(split, nullptr);

  // A key contained in a pool member is not split.
  Diagnostic tampered = *split;
  std::get<SplitKeyWitness>(tampered.witness).key =
      scheme.universe_ptr()->Chars("A");
  EXPECT_FALSE(VerifyWitness(scheme, tampered).ok());

  // An empty covering sequence certifies nothing.
  tampered = *split;
  std::get<SplitKeyWitness>(tampered.witness).covering.clear();
  EXPECT_FALSE(VerifyWitness(scheme, tampered).ok());
}

TEST(Verify, TamperedNonKeyEquivalentWitnessIsRejected) {
  DatabaseScheme scheme = RejectedTriangle();
  LintReport report = LintScheme(scheme);
  const Diagnostic* nke = FindRule(report, RuleId::kNonKeyEquivalent);
  ASSERT_NE(nke, nullptr) << RenderText(scheme, report);
  ASSERT_TRUE(VerifyWitness(scheme, *nke).ok());

  // Claiming the closure actually covers everything must fail: the recorded
  // replay cannot reach it, and `missing` no longer matches.
  Diagnostic tampered = *nke;
  std::get<NonKeyEquivalentWitness>(tampered.witness).closure =
      scheme.AllAttrs();
  EXPECT_FALSE(VerifyWitness(scheme, tampered).ok());

  // An empty missing set certifies nothing.
  tampered = *nke;
  std::get<NonKeyEquivalentWitness>(tampered.witness).missing =
      AttributeSet();
  EXPECT_FALSE(VerifyWitness(scheme, tampered).ok());
}

TEST(Verify, FdTraceReplayRejectsInapplicableSteps) {
  DatabaseScheme scheme = RejectedTriangle();
  FdTrace trace;
  trace.start = scheme.universe_ptr()->Chars("A");
  // R2's key B -> C is not applicable from {A}.
  trace.steps.push_back({1, 0});
  EXPECT_FALSE(trace.Replay(scheme).ok());
  // A -> C via R3 is.
  trace.steps[0] = {2, 0};
  Result<AttributeSet> replayed = trace.Replay(scheme);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(*replayed == scheme.universe_ptr()->Chars("AC"));
}

TEST(SelfCheck, PaperExamplesAllVerify) {
  EXPECT_TRUE(LintSelfCheck(University()).ok());
  EXPECT_TRUE(LintSelfCheck(RejectedTriangle()).ok());
  EXPECT_TRUE(LintSelfCheck(SplitKeyScheme()).ok());
}

TEST(Render, JsonAndTextMentionEveryRuleEmitted) {
  DatabaseScheme scheme = RejectedTriangle();
  LintReport report = LintScheme(scheme);
  ASSERT_FALSE(report.diagnostics.empty());
  std::string text = RenderText(scheme, report);
  std::string json = RenderJson(scheme, report, "triangle.scheme");
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_NE(text.find(RuleName(d.rule)), std::string::npos);
    EXPECT_NE(json.find(RuleName(d.rule)), std::string::npos);
  }
  EXPECT_NE(json.find("\"file\": \"triangle.scheme\""), std::string::npos)
      << json;
}

TEST(Render, SchemeReportCarriesVerdictsAndDiagnostics) {
  std::string report = FormatSchemeReport(RejectedTriangle());
  EXPECT_NE(report.find("independence-reducible"), std::string::npos);
  EXPECT_NE(report.find("diagnostics:"), std::string::npos);
  EXPECT_NE(report.find("recognition-rejected"), std::string::npos);
}

}  // namespace
}  // namespace ird::diagnostics
