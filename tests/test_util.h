// Shared fixtures: the database schemes of the paper's worked examples,
// referenced across the test suite by their example numbers.

#ifndef IRD_TESTS_TEST_UTIL_H_
#define IRD_TESTS_TEST_UTIL_H_

#include <vector>

#include "relation/database_state.h"
#include "schema/database_scheme.h"

namespace ird::test {

// Example 1's R: the university scheme. Neither independent nor γ-acyclic,
// but independence-reducible, bounded and ctm.
//   R1(HRC){HR} R2(HTR){HT,HR} R3(HTC){HT} R4(CSG){CS} R5(HSR){HS}
inline DatabaseScheme Example1R() {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "HRC", {"HR"});
  s.AddRelation("R2", "HTR", {"HT", "HR"});
  s.AddRelation("R3", "HTC", {"HT"});
  s.AddRelation("R4", "CSG", {"CS"});
  s.AddRelation("R5", "HSR", {"HS"});
  return s;
}

// Example 1's S: the merged scheme, independent by [S2].
//   S1(HRCT){HR,HT} S2(CSG){CS} S3(HSR){HS}
inline DatabaseScheme Example1S() {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("S1", "HRCT", {"HR", "HT"});
  s.AddRelation("S2", "CSG", {"CS"});
  s.AddRelation("S3", "HSR", {"HS"});
  return s;
}

// Example 2: R = {R1(AB), R2(BC), R3(AC)}, F = {A->C, B->C} as embedded
// keys (R1's only key is trivial). Not algebraic-maintainable.
inline DatabaseScheme Example2() {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"AB"});
  s.AddRelation("R2", "BC", {"B"});
  s.AddRelation("R3", "AC", {"A"});
  return s;
}

// Example 3 (= Example 10's S): the triangle with bidirectional singleton
// keys. Key-equivalent, split-free, but not independent and not even
// α-acyclic.
inline DatabaseScheme Example3() {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A", "B"});
  s.AddRelation("R2", "BC", {"B", "C"});
  s.AddRelation("R3", "AC", {"A", "C"});
  return s;
}

// Examples 4, 5 and 7 share this scheme. Key-equivalent; the key BC is
// split, so it is bounded and algebraic-maintainable but NOT ctm.
//   R1(AB){A} R2(AC){A} R3(AE){A,E} R4(EB){E} R5(EC){E}
//   R6(BCD){BC,D} R7(DA){D,A}
inline DatabaseScheme Example4() {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A"});
  s.AddRelation("R2", "AC", {"A"});
  s.AddRelation("R3", "AE", {"A", "E"});
  s.AddRelation("R4", "EB", {"E"});
  s.AddRelation("R5", "EC", {"E"});
  s.AddRelation("R6", "BCD", {"BC", "D"});
  s.AddRelation("R7", "DA", {"D", "A"});
  return s;
}

// Example 6: key-equivalent with keys {A, B, E, CD}.
//   R1(ABE){A,B,E} R2(AC){A} R3(AD){A} R4(BC){B} R5(BD){B} R6(CDE){CD,E}
inline DatabaseScheme Example6() {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "ABE", {"A", "B", "E"});
  s.AddRelation("R2", "AC", {"A"});
  s.AddRelation("R3", "AD", {"A"});
  s.AddRelation("R4", "BC", {"B"});
  s.AddRelation("R5", "BD", {"B"});
  s.AddRelation("R6", "CDE", {"CD", "E"});
  return s;
}

// Example 8: the key BC is split in R1+, R2+ and R5+, but R3 and R4 are
// split-free.
//   R1(AC){A} R2(AB){A} R3(ABC){A,BC} R4(BCD){BC,D} R5(AD){A,D}
inline DatabaseScheme Example8() {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AC", {"A"});
  s.AddRelation("R2", "AB", {"A"});
  s.AddRelation("R3", "ABC", {"A", "BC"});
  s.AddRelation("R4", "BCD", {"BC", "D"});
  s.AddRelation("R5", "AD", {"A", "D"});
  return s;
}

// Example 9: the split-free chain (all keys single attributes).
//   R1(AB){A,B} R2(BC){B,C} R3(CD){C,D} R4(DE){D,E}
inline DatabaseScheme Example9() {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A", "B"});
  s.AddRelation("R2", "BC", {"B", "C"});
  s.AddRelation("R3", "CD", {"C", "D"});
  s.AddRelation("R4", "DE", {"D", "E"});
  return s;
}

// Examples 11/12 share this shape; Example 11 has the fully bidirectional
// triangle block. Independence-reducible with partition
// {{R1,R2,R3,R4},{R5,R6}} and D = {D1(ABCD), D2(DEFG)}.
//   R1(AB){A,B} R2(BC){B,C} R3(AC){A,C} R4(AD){A} R5(DEF){D} R6(DEG){D}
inline DatabaseScheme Example11() {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A", "B"});
  s.AddRelation("R2", "BC", {"B", "C"});
  s.AddRelation("R3", "AC", {"A", "C"});
  s.AddRelation("R4", "AD", {"A"});
  s.AddRelation("R5", "DEF", {"D"});
  s.AddRelation("R6", "DEG", {"D"});
  return s;
}

// Example 12 verbatim (one-way keys, unlike Example 11's bidirectional
// triangle): F = {A->B, B->C, C->A, A->D, D->EFG}. Independence-reducible
// with partition {{R1,R2,R3,R4},{R5,R6}}.
//   R1(AB){A} R2(BC){B} R3(AC){C} R4(AD){A} R5(DEF){D} R6(DEG){D}
inline DatabaseScheme Example12() {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A"});
  s.AddRelation("R2", "BC", {"B"});
  s.AddRelation("R3", "AC", {"C"});
  s.AddRelation("R4", "AD", {"A"});
  s.AddRelation("R5", "DEF", {"D"});
  s.AddRelation("R6", "DEG", {"D"});
  return s;
}

// Example 13: KEP input with key-equivalent partition
// {{R1,R3,R4},{R2,R5,R6,R7},{R8}}.
//   R1(AB){AB} R2(CD){CD} R3(ABC){AB} R4(ABD){AB} R5(CDE){CD,E}
//   R6(EA){E} R7(EF){E} R8(FB){F}
inline DatabaseScheme Example13() {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"AB"});
  s.AddRelation("R2", "CD", {"CD"});
  s.AddRelation("R3", "ABC", {"AB"});
  s.AddRelation("R4", "ABD", {"AB"});
  s.AddRelation("R5", "CDE", {"CD", "E"});
  s.AddRelation("R6", "EA", {"E"});
  s.AddRelation("R7", "EF", {"E"});
  s.AddRelation("R8", "FB", {"F"});
  return s;
}

// Builds the attribute set for single-letter names already interned in the
// scheme's universe.
inline AttributeSet Attrs(const DatabaseScheme& scheme,
                          std::string_view letters) {
  AttributeSet out;
  for (char c : letters) {
    auto id = scheme.universe().Find(std::string_view(&c, 1));
    IRD_CHECK_MSG(id.ok(), "unknown attribute letter in test");
    out.Add(*id);
  }
  return out;
}

// A tuple on the single-letter attributes `letters` with the given values.
// Values are listed in the order of `letters`; the tuple stores them in
// attribute-id order.
inline PartialTuple Tuple(const DatabaseScheme& scheme,
                          std::string_view letters,
                          const std::vector<Value>& values) {
  IRD_CHECK(letters.size() == values.size());
  std::vector<std::pair<AttributeId, Value>> pairs;
  for (size_t i = 0; i < letters.size(); ++i) {
    auto id = scheme.universe().Find(std::string_view(&letters[i], 1));
    IRD_CHECK_MSG(id.ok(), "unknown attribute letter in test");
    pairs.emplace_back(*id, values[i]);
  }
  std::sort(pairs.begin(), pairs.end());
  AttributeSet attrs;
  std::vector<Value> ordered;
  for (const auto& [a, v] : pairs) {
    attrs.Add(a);
    ordered.push_back(v);
  }
  return PartialTuple(attrs, std::move(ordered));
}

}  // namespace ird::test

#endif  // IRD_TESTS_TEST_UTIL_H_
