// Round-trip tests for io/text_format over every scheme family of
// workload/generators.h: FormatScheme → ParseDatabaseText must reproduce
// the scheme exactly (names, attribute sets, key lists), and FormatState →
// parse → MakeState must reproduce a generated consistent state tuple for
// tuple. This is what makes the fuzzer's corpus files faithful repros.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "io/text_format.h"
#include "workload/generators.h"

namespace ird {
namespace {

// Renders `set` as a sorted list of attribute names — canonical across
// universes whose interning order differs (the parser interns attributes in
// first-seen order, generators in construction order).
std::string SortedNames(const Universe& u, const AttributeSet& set) {
  std::vector<std::string> names;
  for (AttributeId a : set.ToVector()) names.push_back(u.Name(a));
  std::sort(names.begin(), names.end());
  std::string out;
  for (const std::string& n : names) out += n + ",";
  return out;
}

// Structural equality through the two schemes' own universes (ids can
// differ; names and name-sets cannot).
void ExpectSchemesEqual(const DatabaseScheme& a, const DatabaseScheme& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const RelationScheme& ra = a.relation(i);
    const RelationScheme& rb = b.relation(i);
    EXPECT_EQ(ra.name, rb.name);
    EXPECT_EQ(SortedNames(a.universe(), ra.attrs),
              SortedNames(b.universe(), rb.attrs));
    ASSERT_EQ(ra.keys.size(), rb.keys.size()) << ra.name;
    std::vector<std::string> ka, kb;
    for (const AttributeSet& key : ra.keys)
      ka.push_back(SortedNames(a.universe(), key));
    for (const AttributeSet& key : rb.keys)
      kb.push_back(SortedNames(b.universe(), key));
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
    EXPECT_EQ(ka, kb) << ra.name;
  }
}

void RoundTripScheme(const DatabaseScheme& scheme) {
  std::string text = FormatScheme(scheme);
  Result<ParsedDatabase> parsed = ParseDatabaseText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  ExpectSchemesEqual(scheme, parsed->scheme);
  // One parse canonicalizes attribute order; from there, format → parse →
  // format must be a textual fixpoint.
  std::string text2 = FormatScheme(parsed->scheme);
  Result<ParsedDatabase> parsed2 = ParseDatabaseText(text2);
  ASSERT_TRUE(parsed2.ok()) << parsed2.status().ToString();
  EXPECT_EQ(FormatScheme(parsed2->scheme), text2);
}

void RoundTripState(const DatabaseScheme& scheme, uint64_t seed) {
  StateGenOptions opt;
  opt.entities = 5;
  opt.coverage = 0.8;
  opt.seed = seed;
  DatabaseState state = MakeConsistentState(scheme, opt);
  ValueDictionary dict;  // empty: values print as raw integers
  std::string text = FormatScheme(scheme) + FormatState(state, dict);
  Result<ParsedDatabase> parsed = ParseDatabaseText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  DatabaseState replayed = parsed->MakeState();
  ASSERT_EQ(replayed.scheme().size(), state.scheme().size());
  // Value identities change under interning and column order follows each
  // universe's attribute ids, so compare canonically: per relation, the
  // sorted multiset of "<attr-name>=<value-token>" tuple renderings.
  for (size_t i = 0; i < state.scheme().size(); ++i) {
    auto canon = [](const PartialRelation& rel, const Universe& u,
                    auto value_name) {
      std::vector<std::string> rows;
      for (const PartialTuple& t : rel.tuples()) {
        std::vector<std::string> cells;
        for (AttributeId a : t.attrs().ToVector()) {
          cells.push_back(u.Name(a) + "=" + value_name(t.At(a)));
        }
        std::sort(cells.begin(), cells.end());
        std::string row;
        for (const std::string& c : cells) row += c + ";";
        rows.push_back(std::move(row));
      }
      std::sort(rows.begin(), rows.end());
      return rows;
    };
    EXPECT_EQ(canon(replayed.relation(i), replayed.scheme().universe(),
                    [&](Value v) { return parsed->values.Name(v); }),
              canon(state.relation(i), scheme.universe(),
                    [](Value v) { return std::to_string(v); }))
        << state.scheme().relation(i).name;
  }
}

TEST(IoRoundTrip, ChainFamily) {
  for (size_t n = 1; n <= 6; ++n) {
    RoundTripScheme(MakeChainScheme(n));
    RoundTripState(MakeChainScheme(n), 10 + n);
  }
}

TEST(IoRoundTrip, SplitFamily) {
  for (size_t k = 2; k <= 5; ++k) {
    RoundTripScheme(MakeSplitScheme(k));
    RoundTripState(MakeSplitScheme(k), 20 + k);
  }
}

TEST(IoRoundTrip, IndependentFamily) {
  for (size_t m = 1; m <= 6; ++m) {
    RoundTripScheme(MakeIndependentScheme(m));
    RoundTripState(MakeIndependentScheme(m), 30 + m);
  }
}

TEST(IoRoundTrip, BlockFamily) {
  for (size_t blocks = 1; blocks <= 3; ++blocks) {
    for (size_t size = 2; size <= 3; ++size) {
      RoundTripScheme(MakeBlockScheme(blocks, size));
      RoundTripState(MakeBlockScheme(blocks, size), 40 + blocks * 4 + size);
    }
  }
}

TEST(IoRoundTrip, StarFamily) {
  for (size_t n = 1; n <= 6; ++n) {
    RoundTripScheme(MakeStarScheme(n));
    RoundTripState(MakeStarScheme(n), 50 + n);
  }
}

TEST(IoRoundTrip, TreeFamily) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    DatabaseScheme s = MakeTreeScheme(2 + seed % 5, (seed % 3) / 2.0, seed);
    RoundTripScheme(s);
    RoundTripState(s, 60 + seed);
  }
}

TEST(IoRoundTrip, RandomFamily) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    RandomSchemeOptions opt;
    opt.universe_size = 6;
    opt.relations = 4;
    opt.multi_key_prob = (seed % 2) * 0.5;
    opt.seed = seed;
    DatabaseScheme s = MakeRandomScheme(opt);
    RoundTripScheme(s);
    RoundTripState(s, 70 + seed);
  }
}

}  // namespace
}  // namespace ird
