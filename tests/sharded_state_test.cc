// Property battery for the block-sharded state engine (ShardedState /
// ShardedMaintainer): the independence-reducible partition really is a
// partition with no key-equivalence crossing blocks, Theorem 4.2's
// local-to-global argument replays on the paper's worked examples and the
// repro corpus, the router/materialize round trip is lossless, cross-block
// reads fan out only when a plan spans shards, and the parallel batch path
// is bit-identical to the serial one at any job count (the invariant the
// CI TSan job drives at --jobs 8).

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/block_maintainer.h"
#include "core/recognition.h"
#include "core/sharded_maintainer.h"
#include "core/total_projection.h"
#include "obs/export.h"
#include "oracle/corpus.h"
#include "oracle/naive_kep.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;
using test::Tuple;

struct NamedScheme {
  std::string name;
  DatabaseScheme scheme;
};

// Every worked-example fixture (Examples 5, 7 and 10 reuse the schemes of
// 4 and 3; see tests/test_util.h) plus the generator families the
// maintainer suite leans on.
std::vector<NamedScheme> AllFixtures() {
  std::vector<NamedScheme> out;
  out.push_back({"Example1R", test::Example1R()});
  out.push_back({"Example1S", test::Example1S()});
  out.push_back({"Example2", test::Example2()});
  out.push_back({"Example3", test::Example3()});
  out.push_back({"Example4", test::Example4()});
  out.push_back({"Example6", test::Example6()});
  out.push_back({"Example8", test::Example8()});
  out.push_back({"Example9", test::Example9()});
  out.push_back({"Example11", test::Example11()});
  out.push_back({"Example12", test::Example12()});
  out.push_back({"Example13", test::Example13()});
  out.push_back({"Block3x3", MakeBlockScheme(3, 3)});
  out.push_back({"Split2", MakeSplitScheme(2)});
  out.push_back({"Independent4", MakeIndependentScheme(4)});
  return out;
}

std::string StateToString(const DatabaseState& state) {
  std::string out;
  for (size_t i = 0; i < state.scheme().size(); ++i) {
    out += state.scheme().relation(i).name + ": " +
           state.relation(i).ToString(state.scheme().universe()) + "\n";
  }
  return out;
}

std::map<std::string, uint64_t> CounterMap(const obs::Snapshot& snapshot) {
  std::map<std::string, uint64_t> out;
  for (const auto& [name, value] : snapshot.counters) {
    if (value != 0) out[name] = value;
  }
  return out;
}

uint64_t DeltaOf(const obs::Snapshot& delta, std::string_view name) {
  for (const auto& [counter, value] : delta.counters) {
    if (counter == name) return value;
  }
  return 0;
}

// The block partition is a true partition: every relation lands in exactly
// one block, the router agrees with the partition, every block is
// key-equivalent by the definition-literal oracle, and no key-equivalence
// (no FD) crosses blocks — the blocks are exactly the maximal
// key-equivalent subsets, so merging any two of them breaks
// key-equivalence.
TEST(ShardedStateTest, PartitionIsATruePartition) {
  for (const NamedScheme& fixture : AllFixtures()) {
    const DatabaseScheme& s = fixture.scheme;
    Result<ShardedState> sharded = ShardedState::Create(DatabaseState(s));
    if (!sharded.ok()) continue;  // outside the class; rejection is fine
    std::vector<size_t> seen(s.size(), 0);
    for (size_t b = 0; b < sharded->shard_count(); ++b) {
      const BlockShard& shard = sharded->shard(b);
      EXPECT_FALSE(shard.pool().empty()) << fixture.name;
      for (size_t rel : shard.pool()) {
        ASSERT_LT(rel, s.size()) << fixture.name;
        ++seen[rel];
        EXPECT_EQ(sharded->BlockOf(rel), b) << fixture.name;
      }
      EXPECT_TRUE(oracle::IsKeyEquivalentOracle(s, shard.pool()))
          << fixture.name << " block " << b;
    }
    for (size_t rel = 0; rel < s.size(); ++rel) {
      EXPECT_EQ(seen[rel], 1u)
          << fixture.name << ": " << s.relation(rel).name
          << " must live in exactly one block";
    }
    // Maximality: the partition is the KEP, so no two blocks merge into a
    // key-equivalent set — no FD ties relations across the block boundary.
    if (s.size() <= 12) {
      std::vector<std::vector<size_t>> pools;
      for (size_t b = 0; b < sharded->shard_count(); ++b) {
        pools.push_back(sharded->shard(b).pool());
      }
      EXPECT_EQ(pools, oracle::MaximalKeyEquivalentSubsets(s)) << fixture.name;
      for (size_t b1 = 0; b1 < pools.size(); ++b1) {
        for (size_t b2 = b1 + 1; b2 < pools.size(); ++b2) {
          std::vector<size_t> merged = pools[b1];
          merged.insert(merged.end(), pools[b2].begin(), pools[b2].end());
          EXPECT_FALSE(oracle::IsKeyEquivalentOracle(s, merged))
              << fixture.name << " blocks " << b1 << "+" << b2;
        }
      }
    }
  }
}

// Theorem 4.2 replayed: a state whose every block substate is consistent
// (ShardedState::Create with verify_consistency chases each block) is
// globally consistent, and a stream of block-locally validated inserts
// never drives the global state inconsistent.
TEST(ShardedStateTest, Theorem42LocalToGlobalOnExamples) {
  for (const NamedScheme& fixture : AllFixtures()) {
    const DatabaseScheme& s = fixture.scheme;
    if (!RecognizeIndependenceReducible(s).accepted) continue;
    StateGenOptions opt;
    opt.entities = 12;
    opt.coverage = 0.6;
    opt.seed = 17;
    DatabaseState state = MakeConsistentState(s, opt);
    Result<ShardedMaintainer> m =
        ShardedMaintainer::Create(state, /*jobs=*/1, /*verify_consistency=*/true);
    ASSERT_TRUE(m.ok()) << fixture.name << ": " << m.status().ToString();
    // Every block substate passed its Algorithm 1 chase => global accept.
    EXPECT_TRUE(IsConsistent(m->Materialize())) << fixture.name;
    std::vector<InsertInstance> stream = MakeInsertStream(s, state, 30, 0.4, 19);
    size_t accepted = 0;
    for (const InsertInstance& ins : stream) {
      if (m->Insert(ins.rel, ins.tuple).ok()) ++accepted;
    }
    EXPECT_GT(accepted, 0u) << fixture.name;
    // Block-local acceptance of every applied insert => global consistency.
    EXPECT_TRUE(IsConsistent(m->Materialize())) << fixture.name;
  }
}

// The same local-to-global replay over the committed repro corpus: every
// anchor scheme the fuzzer ever shrank that is independence-reducible must
// shard, stay consistent under a validated stream, and agree with the
// single-shard oracle verdict for verdict.
TEST(ShardedStateTest, Theorem42AndOracleAgreementOnCorpusAnchors) {
  Result<std::vector<oracle::CorpusEntry>> corpus =
      oracle::LoadCorpus(IRD_CORPUS_DIR);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  size_t sharded_anchors = 0;
  for (const oracle::CorpusEntry& entry : *corpus) {
    const DatabaseScheme& s = entry.scheme;
    if (!RecognizeIndependenceReducible(s).accepted) continue;
    ++sharded_anchors;
    StateGenOptions opt;
    opt.entities = 8;
    opt.coverage = 0.7;
    opt.seed = 23;
    DatabaseState state = MakeConsistentState(s, opt);
    Result<ShardedMaintainer> sharded = ShardedMaintainer::Create(state);
    Result<IndependenceReducibleMaintainer> single =
        IndependenceReducibleMaintainer::Create(state);
    ASSERT_EQ(sharded.ok(), single.ok()) << entry.filename;
    if (!sharded.ok()) continue;
    for (const InsertInstance& ins : MakeInsertStream(s, state, 20, 0.4, 29)) {
      EXPECT_EQ(sharded->Insert(ins.rel, ins.tuple).ok(),
                single->Insert(ins.rel, ins.tuple).ok())
          << entry.filename;
    }
    EXPECT_EQ(StateToString(sharded->Materialize()),
              StateToString(single->state()))
        << entry.filename;
    EXPECT_TRUE(IsConsistent(sharded->Materialize())) << entry.filename;
  }
  EXPECT_GT(sharded_anchors, 0u)
      << "corpus has no independence-reducible anchors to replay";
}

// Materialize is the exact inverse of sharding: same relations, same
// tuples, same order; TupleCount distributes over the shards; the router
// matches the recognition partition.
TEST(ShardedStateTest, RouterAndMaterializeRoundTrip) {
  DatabaseScheme s = test::Example11();
  DatabaseState state(s);
  constexpr Value a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7;
  state.Insert("R1", {a, b});
  state.Insert("R2", {b, c});
  state.Insert("R3", {a, c});
  state.Insert("R4", {a, d});
  state.Insert("R5", {d, e, f});
  state.Insert("R6", {d, e, g});
  Result<ShardedState> sharded = ShardedState::Create(state);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->shard_count(), 2u);
  // {R1,R2,R3,R4} vs {R5,R6}: the Example 11 partition.
  EXPECT_EQ(sharded->BlockOf(0), sharded->BlockOf(3));
  EXPECT_EQ(sharded->BlockOf(4), sharded->BlockOf(5));
  EXPECT_NE(sharded->BlockOf(0), sharded->BlockOf(4));
  EXPECT_EQ(sharded->TupleCount(), state.TupleCount());
  EXPECT_EQ(StateToString(sharded->Materialize()), StateToString(state));
  // Each shard owns exactly its pool's tuples: the other relations of its
  // full-scheme skeleton stay empty.
  for (size_t bidx = 0; bidx < sharded->shard_count(); ++bidx) {
    const BlockShard& shard = sharded->shard(bidx);
    size_t pool_tuples = 0;
    for (size_t rel : shard.pool()) {
      pool_tuples += state.relation(rel).size();
    }
    EXPECT_EQ(shard.TupleCount(), pool_tuples);
  }
}

// Cross-block reads fan out, block-local reads do not: a projection target
// inside one block's attribute span is answered from that shard alone
// (shard.cross_block_queries stays flat) while a target spanning both
// Example 11 blocks bumps it — and either way the answer matches the
// merged-state Theorem 4.1 evaluation.
TEST(ShardedStateTest, CrossBlockQueriesFanOutOnlyWhenPlansSpanShards) {
  DatabaseScheme s = test::Example11();
  StateGenOptions opt;
  opt.entities = 10;
  opt.coverage = 0.8;
  opt.seed = 31;
  DatabaseState state = MakeConsistentState(s, opt);
  RecognitionResult recognition = RecognizeIndependenceReducible(s);
  ASSERT_TRUE(recognition.accepted);
  Result<ShardedState> sharded = ShardedState::Create(state);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  const AttributeSet local = Attrs(s, "AB");    // inside block {R1..R4}
  const AttributeSet spanning = Attrs(s, "AE");  // needs both blocks
  obs::Snapshot local_delta;
  {
    obs::Snapshot before = obs::TakeSnapshot();
    PartialRelation got = sharded->TotalProjection(local);
    local_delta = obs::DeltaSince(before);
    EXPECT_EQ(got.ToString(s.universe()),
              TotalProjection(state, recognition, local).ToString(s.universe()));
  }
  obs::Snapshot spanning_delta;
  {
    obs::Snapshot before = obs::TakeSnapshot();
    PartialRelation got = sharded->TotalProjection(spanning);
    spanning_delta = obs::DeltaSince(before);
    EXPECT_EQ(
        got.ToString(s.universe()),
        TotalProjection(state, recognition, spanning).ToString(s.universe()));
  }
#ifndef IRD_OBS_DISABLED
  EXPECT_EQ(DeltaOf(local_delta, "shard.cross_block_queries"), 0u);
  EXPECT_EQ(DeltaOf(spanning_delta, "shard.cross_block_queries"), 1u);
#endif
}

// The concurrency invariant the design rests on: InsertBatch at --jobs 8
// produces the same verdicts, the same materialized state and the same
// obs counter totals as --jobs 1, because shards share no mutable state
// and per-shard streams stay in arrival order (Theorem 4.2 makes verdicts
// block-local). The CI TSan job runs this test to prove the "no shared
// mutable state" half.
TEST(ShardedStateTest, InsertStormIdenticalAtJobs1AndJobs8) {
  DatabaseScheme s = MakeBlockScheme(4, 3);
  StateGenOptions opt;
  opt.entities = 15;
  opt.coverage = 0.6;
  opt.seed = 37;
  DatabaseState state = MakeConsistentState(s, opt);
  std::vector<InsertOp> ops;
  for (const InsertInstance& ins : MakeInsertStream(s, state, 120, 0.3, 41)) {
    ops.push_back({ins.rel, ins.tuple});
  }

  Result<ShardedMaintainer> serial = ShardedMaintainer::Create(state, 1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  obs::Snapshot serial_before = obs::TakeSnapshot();
  std::vector<Status> serial_verdicts = serial->InsertBatch(ops);
  obs::Snapshot serial_delta = obs::DeltaSince(serial_before);

  Result<ShardedMaintainer> parallel = ShardedMaintainer::Create(state, 8);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(parallel->jobs(), 8u);
  obs::Snapshot parallel_before = obs::TakeSnapshot();
  std::vector<Status> parallel_verdicts = parallel->InsertBatch(ops);
  obs::Snapshot parallel_delta = obs::DeltaSince(parallel_before);

  ASSERT_EQ(serial_verdicts.size(), parallel_verdicts.size());
  size_t rejected = 0;
  for (size_t i = 0; i < serial_verdicts.size(); ++i) {
    EXPECT_EQ(serial_verdicts[i].ok(), parallel_verdicts[i].ok())
        << "op " << i;
    EXPECT_EQ(serial_verdicts[i].code(), parallel_verdicts[i].code())
        << "op " << i;
    rejected += serial_verdicts[i].ok() ? 0 : 1;
  }
  EXPECT_GT(rejected, 0u) << "storm must exercise the rejection paths";
  EXPECT_LT(rejected, ops.size()) << "storm must exercise the accept paths";
  EXPECT_EQ(StateToString(serial->Materialize()),
            StateToString(parallel->Materialize()));
  EXPECT_TRUE(IsConsistent(parallel->Materialize()));
  // Counter totals are job-count independent: the same validation work ran
  // exactly once per op, whichever worker carried it.
  EXPECT_EQ(CounterMap(serial_delta), CounterMap(parallel_delta));
#ifndef IRD_OBS_DISABLED
  EXPECT_EQ(DeltaOf(serial_delta, "shard.parallel_validations"), ops.size());
#endif
}

// A storm routed through Insert (no batch) interleaved across blocks also
// lands on the single-shard oracle's exact state — the serial-equivalence
// half of the sharded-vs-single contract, on a multi-block generator
// scheme.
TEST(ShardedStateTest, InterleavedInsertsMatchSingleShardOracle) {
  DatabaseScheme s = MakeBlockScheme(3, 4);
  StateGenOptions opt;
  opt.entities = 10;
  opt.coverage = 0.5;
  opt.seed = 43;
  DatabaseState state = MakeConsistentState(s, opt);
  Result<ShardedMaintainer> sharded = ShardedMaintainer::Create(state);
  Result<IndependenceReducibleMaintainer> single =
      IndependenceReducibleMaintainer::Create(state);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(sharded->IsCtm(), single->IsCtm());
  for (const InsertInstance& ins : MakeInsertStream(s, state, 60, 0.35, 47)) {
    EXPECT_EQ(sharded->Insert(ins.rel, ins.tuple).ok(),
              single->Insert(ins.rel, ins.tuple).ok());
  }
  EXPECT_EQ(StateToString(sharded->Materialize()),
            StateToString(single->state()));
}

// Concurrent InsertBatch callers are serialized on the maintainer's
// batch_mu_ (BatchAnalyzer's handout state is one-batch-at-a-time, a fact
// the thread-safety annotations now encode). Four threads each drive
// their own batch; the accounting must balance exactly and the final
// state must chase consistent. Before the mutex landed, overlapping
// batches interleaved two shard handouts — TSan (this test runs in the
// CI tsan job) and the tuple accounting both catch a regression.
TEST(ShardedStateTest, ConcurrentInsertBatchesSerializeOnTheMaintainer) {
  DatabaseScheme s = MakeBlockScheme(4, 3);
  StateGenOptions opt;
  opt.entities = 12;
  opt.coverage = 0.6;
  opt.seed = 53;
  DatabaseState state = MakeConsistentState(s, opt);
  Result<ShardedMaintainer> maintainer = ShardedMaintainer::Create(state, 4);
  ASSERT_TRUE(maintainer.ok()) << maintainer.status().ToString();
  const size_t initial_tuples = maintainer->sharded_state().TupleCount();

  constexpr int kThreads = 4;
  std::vector<std::vector<InsertOp>> batches(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (const InsertInstance& ins :
         MakeInsertStream(s, state, 40, 0.3, 59 + t)) {
      batches[t].push_back({ins.rel, ins.tuple});
    }
  }
  std::vector<std::vector<InsertOp>> accepted(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<Status> verdicts = maintainer->InsertBatch(batches[t]);
      ASSERT_EQ(verdicts.size(), batches[t].size());
      for (size_t i = 0; i < verdicts.size(); ++i) {
        if (verdicts[i].ok()) accepted[t].push_back(batches[t][i]);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Accepted ops apply via AddUnique, so duplicates (within a batch,
  // across threads, or against the initial state) are accepted without
  // adding a second copy. The order-independent invariant is set-wise:
  // the final state is exactly initial tuples ∪ accepted tuples — nothing
  // lost, nothing double-applied, no rejected tuple landed.
  std::vector<std::unordered_set<PartialTuple, PartialTupleHash>> expected(
      s.size());
  size_t total_accepted = 0;
  for (size_t r = 0; r < s.size(); ++r) {
    for (const PartialTuple& tuple : state.relation(r).tuples()) {
      expected[r].insert(tuple);
    }
  }
  for (const std::vector<InsertOp>& ops : accepted) {
    total_accepted += ops.size();
    for (const InsertOp& op : ops) expected[op.rel].insert(op.tuple);
  }
  EXPECT_GT(total_accepted, 0u);
  DatabaseState final_state = maintainer->Materialize();
  size_t expected_total = 0;
  for (size_t r = 0; r < s.size(); ++r) {
    expected_total += expected[r].size();
    ASSERT_EQ(final_state.relation(r).size(), expected[r].size())
        << "relation " << r;
    for (const PartialTuple& tuple : final_state.relation(r).tuples()) {
      EXPECT_TRUE(expected[r].count(tuple) > 0) << "relation " << r;
    }
  }
  EXPECT_EQ(maintainer->sharded_state().TupleCount(), expected_total);
  EXPECT_GE(expected_total, initial_tuples);
  EXPECT_TRUE(IsConsistent(final_state));
}

// The Theorem 4.1 plan cache is the one thing the TotalProjection read
// path mutates; since it went behind plans_mu_, concurrent readers on a
// quiescent state are safe and must agree with the serial answer. Before
// the lock, eight threads hitting a cold cache raced on the unordered_map
// (the exact shape ird_serve's cross-request cache will hit).
TEST(ShardedStateTest, ConcurrentTotalProjectionsShareThePlanCache) {
  DatabaseScheme s = test::Example11();
  StateGenOptions opt;
  opt.entities = 10;
  opt.coverage = 0.8;
  opt.seed = 61;
  DatabaseState state = MakeConsistentState(s, opt);
  Result<ShardedState> sharded = ShardedState::Create(state);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  const std::vector<AttributeSet> targets = {
      Attrs(s, "AB"), Attrs(s, "AE"), Attrs(s, "B"), Attrs(s, "CE")};
  std::vector<std::string> expected;
  expected.reserve(targets.size());
  RecognitionResult recognition = RecognizeIndependenceReducible(s);
  ASSERT_TRUE(recognition.accepted);
  for (const AttributeSet& x : targets) {
    expected.push_back(
        TotalProjection(state, recognition, x).ToString(s.universe()));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < targets.size(); ++i) {
          EXPECT_EQ(sharded->TotalProjection(targets[i])
                        .ToString(s.universe()),
                    expected[i]);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace ird
