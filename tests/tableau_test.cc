#include <gtest/gtest.h>

#include "tableau/chase.h"
#include "tableau/tableau.h"
#include "tests/test_util.h"

namespace ird {
namespace {

using test::Attrs;

TEST(TableauTest, ConstantsDeduplicate) {
  Tableau t(3);
  EXPECT_EQ(t.Constant(7), t.Constant(7));
  EXPECT_NE(t.Constant(7), t.Constant(8));
  EXPECT_TRUE(t.IsConstant(t.Constant(7)));
  EXPECT_EQ(t.ValueOf(t.Constant(7)), 7);
}

TEST(TableauTest, DvPerColumn) {
  Tableau t(3);
  EXPECT_EQ(t.Dv(1), t.Dv(1));
  EXPECT_NE(t.Dv(0), t.Dv(1));
  EXPECT_EQ(t.KindOf(t.Dv(2)), SymbolKind::kDistinguished);
  EXPECT_EQ(t.ColumnOf(t.Dv(2)), 2u);
}

TEST(TableauTest, NdvAlwaysFresh) {
  Tableau t(3);
  EXPECT_NE(t.FreshNdv(), t.FreshNdv());
}

TEST(TableauTest, SchemeRowShape) {
  Tableau t(4);
  size_t row = t.AddSchemeRow(AttributeSet{0, 2});
  EXPECT_EQ(t.DvColumns(row), (AttributeSet{0, 2}));
  EXPECT_TRUE(t.ConstantColumns(row).Empty());
}

TEST(TableauTest, TupleRowShape) {
  Tableau t(4);
  size_t row = t.AddTupleRow(AttributeSet{1, 3}, {10, 30});
  EXPECT_EQ(t.ConstantColumns(row), (AttributeSet{1, 3}));
  EXPECT_TRUE(t.TotalOn(row, AttributeSet{1, 3}));
  EXPECT_FALSE(t.TotalOn(row, AttributeSet{0, 1}));
  EXPECT_EQ(t.ValuesOn(row, AttributeSet{1, 3}),
            (std::vector<Value>{10, 30}));
}

TEST(TableauTest, EquateConstantWinsOverVariables) {
  Tableau t(2);
  SymId c = t.Constant(5);
  SymId dv = t.Dv(0);
  SymId ndv = t.FreshNdv();
  EXPECT_TRUE(t.Equate(c, ndv));
  EXPECT_TRUE(t.IsConstant(ndv));
  EXPECT_EQ(t.ValueOf(ndv), 5);
  EXPECT_TRUE(t.Equate(dv, c));
  EXPECT_TRUE(t.IsConstant(dv));
}

TEST(TableauTest, EquateDistinctConstantsFails) {
  Tableau t(2);
  EXPECT_FALSE(t.Equate(t.Constant(1), t.Constant(2)));
  EXPECT_TRUE(t.Equate(t.Constant(1), t.Constant(1)));
}

TEST(TableauTest, EquateDvBeatsNdv) {
  Tableau t(2);
  SymId dv = t.Dv(1);
  SymId ndv = t.FreshNdv();
  EXPECT_TRUE(t.Equate(ndv, dv));
  EXPECT_EQ(t.KindOf(ndv), SymbolKind::kDistinguished);
}

TEST(TableauTest, EquateNdvLowerIdWins) {
  Tableau t(2);
  SymId n1 = t.FreshNdv();
  SymId n2 = t.FreshNdv();
  EXPECT_TRUE(t.Equate(n2, n1));
  EXPECT_EQ(t.Canonical(n2), t.Canonical(n1));
  EXPECT_EQ(t.Canonical(n2), n1);
}

TEST(ChaseTest, SimpleMerge) {
  // Two rows agreeing on A with A -> B must agree on B afterwards.
  Tableau t(2);
  t.AddTupleRow(AttributeSet{0}, {1});
  size_t r2 = t.AddTupleRow(AttributeSet{0, 1}, {1, 9});
  FdSet f;
  f.Add(AttributeSet{0}, AttributeSet{1});
  ChaseStats stats = ChaseFds(&t, f);
  EXPECT_TRUE(stats.consistent);
  EXPECT_GE(stats.rule_applications, 1u);
  EXPECT_TRUE(t.TotalOn(0, AttributeSet{1}));
  EXPECT_EQ(t.ValueOf(t.Cell(0, 1)), 9);
  EXPECT_EQ(t.ValueOf(t.Cell(r2, 1)), 9);
}

TEST(ChaseTest, DetectsInconsistency) {
  // <1, 5> and <1, 6> violate A -> B.
  Tableau t(2);
  t.AddTupleRow(AttributeSet{0, 1}, {1, 5});
  t.AddTupleRow(AttributeSet{0, 1}, {1, 6});
  FdSet f;
  f.Add(AttributeSet{0}, AttributeSet{1});
  EXPECT_FALSE(ChaseFds(&t, f).consistent);
}

TEST(ChaseTest, TransitiveCascade) {
  // A -> B, B -> C: a row with only A must pick up B then C from others.
  Tableau t(3);
  t.AddTupleRow(AttributeSet{0}, {1});
  t.AddTupleRow(AttributeSet{0, 1}, {1, 2});
  t.AddTupleRow(AttributeSet{1, 2}, {2, 3});
  FdSet f;
  f.Add(AttributeSet{0}, AttributeSet{1});
  f.Add(AttributeSet{1}, AttributeSet{2});
  EXPECT_TRUE(ChaseFds(&t, f).consistent);
  EXPECT_TRUE(t.TotalOn(0, AttributeSet{0, 1, 2}));
  EXPECT_EQ(t.ValuesOn(0, AttributeSet{0, 1, 2}),
            (std::vector<Value>{1, 2, 3}));
}

TEST(ChaseTest, NoFdsNoChange) {
  Tableau t(2);
  t.AddTupleRow(AttributeSet{0}, {1});
  ChaseStats stats = ChaseFds(&t, FdSet());
  EXPECT_TRUE(stats.consistent);
  EXPECT_EQ(stats.rule_applications, 0u);
}

TEST(ChaseTest, CompositeLeftSides) {
  // AB -> C fires only when both columns agree.
  Tableau t(3);
  t.AddTupleRow(AttributeSet{0, 1, 2}, {1, 2, 7});
  t.AddTupleRow(AttributeSet{0, 1}, {1, 2});
  t.AddTupleRow(AttributeSet{0, 1}, {1, 3});  // differs on B
  FdSet f;
  f.Add(AttributeSet{0, 1}, AttributeSet{2});
  EXPECT_TRUE(ChaseFds(&t, f).consistent);
  EXPECT_TRUE(t.TotalOn(1, AttributeSet{2}));
  EXPECT_EQ(t.ValueOf(t.Cell(1, 2)), 7);
  EXPECT_FALSE(t.TotalOn(2, AttributeSet{2}));
}

TEST(ChaseTest, SchemeTableauOfExample1) {
  DatabaseScheme s = test::Example1R();
  Tableau t = SchemeTableau(s);
  EXPECT_EQ(t.row_count(), 5u);
  EXPECT_EQ(t.width(), s.universe().size());
  // Row 0 is R1(HRC): dv exactly there.
  EXPECT_EQ(t.DvColumns(0), Attrs(s, "HRC"));
}

TEST(ChaseTest, LosslessnessOfPaperSchemes) {
  // All key-equivalent schemes are lossless (any key determines ∪S).
  EXPECT_TRUE(IsLosslessByChase(test::Example3()));
  EXPECT_TRUE(IsLosslessByChase(test::Example4()));
  EXPECT_TRUE(IsLosslessByChase(test::Example6()));
  EXPECT_TRUE(IsLosslessByChase(test::Example9()));
  // Example 2's scheme is lossless too (A -> C and the trivial AB row:
  // chase row AB gains C via... it does not; check the real value).
  EXPECT_EQ(IsLosslessByChase(test::Example2()),
            test::Example2().IsLossless());
}

TEST(TableauTest, RowRefViewsContiguousStrip) {
  Tableau t(3);
  t.AddTupleRow(AttributeSet{0, 1, 2}, {10, 20, 30});
  t.AddTupleRow(AttributeSet{0, 2}, {40, 50});
  Tableau::RowRef r0 = t.Row(0);
  EXPECT_EQ(r0.size(), 3u);
  for (uint32_t c = 0; c < 3; ++c) EXPECT_EQ(r0[c], t.Cell(0, c));
  // The view iterates the raw strip; resolved cells match Cell().
  size_t c = 0;
  for (SymId s : t.Row(1)) {
    EXPECT_EQ(t.Canonical(s), t.Cell(1, c++));
  }
  EXPECT_EQ(c, 3u);
}

TEST(TableauTest, ScratchOverloadsMatchAllocatingForms) {
  Tableau t(4);
  t.AddTupleRow(AttributeSet{0, 1, 3}, {7, 8, 9});
  t.AddSchemeRow(AttributeSet{1, 2});
  for (size_t row = 0; row < t.row_count(); ++row) {
    AttributeSet cols;
    t.ConstantColumns(row, &cols);
    EXPECT_EQ(cols, t.ConstantColumns(row));
  }
  std::vector<Value> vals = {99, 99, 99};  // stale contents must be cleared
  t.ValuesOn(0, AttributeSet{0, 3}, &vals);
  EXPECT_EQ(vals, t.ValuesOn(0, AttributeSet{0, 3}));
}

TEST(TableauTest, DeepCopyIsIndependent) {
  Tableau t(2);
  t.AddTupleRow(AttributeSet{0, 1}, {1, 2});
  size_t row = t.AddSchemeRow(AttributeSet{0});
  Tableau copy = t;
  // Mutating the copy (merge + new row) must not leak into the original.
  ASSERT_TRUE(copy.Equate(copy.Cell(row, 1), copy.Constant(5)));
  copy.AddTupleRow(AttributeSet{0, 1}, {3, 4});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(copy.row_count(), 3u);
  EXPECT_FALSE(t.IsConstant(t.Cell(row, 1)));
  EXPECT_TRUE(copy.IsConstant(copy.Cell(row, 1)));
  EXPECT_EQ(t.merge_log().size(), 0u);
  EXPECT_EQ(copy.merge_log().size(), 1u);
  // Copy-assignment over an already-populated tableau.
  Tableau reassigned(2);
  reassigned.AddTupleRow(AttributeSet{0, 1}, {8, 8});
  reassigned = t;
  EXPECT_EQ(reassigned.row_count(), 2u);
  EXPECT_EQ(reassigned.Cell(0, 0), t.Cell(0, 0));
}

TEST(ChaseTest, MinimizeByConstantSubsumption) {
  Tableau t(3);
  t.AddTupleRow(AttributeSet{0, 1}, {1, 2});        // subsumed by row 2
  t.AddTupleRow(AttributeSet{0, 1, 2}, {1, 2, 3});  // maximal
  t.AddTupleRow(AttributeSet{0, 1}, {1, 2});        // duplicate of row 0
  t.AddTupleRow(AttributeSet{0, 1}, {9, 9});        // unrelated
  EXPECT_EQ(MinimizeByConstantSubsumption(&t), 2u);
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace ird
