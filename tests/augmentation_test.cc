// Direct unit tests for core/augmentation (paper §4.3): AUG's key-selection
// cases, its error conditions, RED, and the closure properties of
// Theorem 4.3 / Corollary 4.2.

#include "core/augmentation.h"

#include "core/recognition.h"
#include "gtest/gtest.h"
#include "oracle/mutate.h"
#include "oracle/naive_recognition.h"
#include "tests/test_util.h"

namespace ird {
namespace {

using ::ird::test::Attrs;

TEST(Augment, Case2EmbeddedKeysBecomeTheNewSchemesKeys) {
  // HR ⊆ R1(HRC) embeds the key HR (declared on R1 and R2) — Case 2 of
  // Theorem 4.3: the augmentation declares exactly the embedded keys.
  DatabaseScheme s = test::Example1R();
  ASSERT_TRUE(Augment(&s, "A1", Attrs(s, "HR")).ok());
  const RelationScheme& added = s.relation(s.size() - 1);
  EXPECT_EQ(added.name, "A1");
  EXPECT_EQ(added.attrs, Attrs(s, "HR"));
  ASSERT_EQ(added.keys.size(), 1u);
  EXPECT_EQ(added.keys[0], Attrs(s, "HR"));
  EXPECT_TRUE(s.Validate().ok());
}

TEST(Augment, Case2CollectsEveryEmbeddedKey) {
  // Example 3's relations have two singleton keys each; AB embeds the keys
  // A and B (from R1) — both must be declared on the augmentation.
  DatabaseScheme s = test::Example3();
  ASSERT_TRUE(Augment(&s, "A1", Attrs(s, "AB")).ok());
  const RelationScheme& added = s.relation(s.size() - 1);
  ASSERT_EQ(added.keys.size(), 2u);
  EXPECT_EQ(added.keys[0], Attrs(s, "A"));
  EXPECT_EQ(added.keys[1], Attrs(s, "B"));
}

TEST(Augment, Case1NoEmbeddedKeyMeansTrivialKey) {
  // CG ⊆ R4(CSG) of Example 1's R embeds no key (R4's key is CS), so the
  // augmentation's only key dependency is the trivial CG -> CG.
  DatabaseScheme s = test::Example1R();
  ASSERT_TRUE(Augment(&s, "A1", Attrs(s, "CG")).ok());
  const RelationScheme& added = s.relation(s.size() - 1);
  ASSERT_EQ(added.keys.size(), 1u);
  EXPECT_EQ(added.keys[0], Attrs(s, "CG"));
}

TEST(Augment, RejectsEmptyAndNonEmbeddedSets) {
  DatabaseScheme s = test::Example1R();
  EXPECT_FALSE(Augment(&s, "A1", AttributeSet()).ok());
  // HG is not a subset of any relation scheme of Example 1's R.
  EXPECT_FALSE(Augment(&s, "A2", Attrs(s, "HG")).ok());
  EXPECT_EQ(s.size(), test::Example1R().size());  // nothing was added
}

TEST(Augment, Theorem43ClosesTheClassUnderAugmentation) {
  // Every single-relation-subset augmentation of an independence-reducible
  // scheme stays independence-reducible — Algorithm 6 and the exhaustive
  // oracle must both keep accepting.
  const DatabaseScheme bases[] = {test::Example1R(), test::Example11(),
                                  test::Example12()};
  for (const DatabaseScheme& base : bases) {
    ASSERT_TRUE(IsIndependenceReducible(base));
    for (size_t i = 0; i < base.size(); ++i) {
      // Augment with every 2+-attribute proper subset of relation i.
      std::vector<AttributeId> attrs = base.relation(i).attrs.ToVector();
      for (size_t mask = 1; mask < (1u << attrs.size()) - 1; ++mask) {
        AttributeSet sub;
        for (size_t b = 0; b < attrs.size(); ++b) {
          if (mask & (1u << b)) sub.Add(attrs[b]);
        }
        DatabaseScheme aug = oracle::CloneScheme(base);
        ASSERT_TRUE(Augment(&aug, "Aug", sub).ok());
        if (!aug.Validate().ok()) continue;  // duplicate attribute set etc.
        EXPECT_TRUE(IsIndependenceReducible(aug))
            << "augmenting relation " << base.relation(i).name << " subset "
            << base.universe().Format(sub) << " left the class";
        if (aug.size() <= 8) {
          EXPECT_TRUE(oracle::IsIndependenceReducibleOracle(aug));
        }
      }
    }
  }
}

TEST(Reduce, DropsProperlyContainedAndDuplicateSchemes) {
  DatabaseScheme s = test::Example1R();
  size_t original = s.size();
  ASSERT_TRUE(Augment(&s, "A1", Attrs(s, "HR")).ok());
  ASSERT_TRUE(Augment(&s, "A2", Attrs(s, "CG")).ok());
  DatabaseScheme red = Reduce(s);
  EXPECT_EQ(red.size(), original);
  for (size_t i = 0; i < red.size(); ++i) {
    EXPECT_EQ(red.relation(i).name, test::Example1R().relation(i).name);
  }
  // Reducing an already-reduced scheme is the identity.
  EXPECT_EQ(Reduce(red).size(), red.size());
}

TEST(Reduce, Corollary42ReductionPreservesTheVerdict) {
  const DatabaseScheme bases[] = {test::Example1R(), test::Example2(),
                                  test::Example4(), test::Example11(),
                                  test::Example12(), test::Example13()};
  for (const DatabaseScheme& base : bases) {
    DatabaseScheme aug = oracle::CloneScheme(base);
    // Augment with a subset of the first relation, then check RED undoes it
    // and the verdict never changes along the way.
    std::vector<AttributeId> attrs = aug.relation(0).attrs.ToVector();
    ASSERT_GE(attrs.size(), 2u);
    AttributeSet sub;
    sub.Add(attrs[0]);
    sub.Add(attrs[1]);
    bool verdict = IsIndependenceReducible(base);
    DatabaseScheme candidate = oracle::CloneScheme(aug);
    if (Augment(&candidate, "Aug", sub).ok() && candidate.Validate().ok()) {
      EXPECT_EQ(IsIndependenceReducible(candidate), verdict);
      EXPECT_EQ(IsIndependenceReducible(Reduce(candidate)), verdict);
    }
  }
}

}  // namespace
}  // namespace ird
