#include <gtest/gtest.h>

#include "core/augmentation.h"
#include "core/classify.h"
#include "core/independence.h"
#include "core/kep.h"
#include "core/key_equivalence.h"
#include "core/recognition.h"
#include "core/split.h"
#include "diagnostics/render.h"
#include "hypergraph/hypergraph.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;
using Blocks = std::vector<std::vector<size_t>>;

TEST(KepTest, Example13Partition) {
  DatabaseScheme s = test::Example13();
  Blocks partition = KeyEquivalentPartition(s);
  // {{R1,R3,R4},{R2,R5,R6,R7},{R8}} — by index {{0,2,3},{1,4,5,6},{7}}.
  ASSERT_EQ(partition.size(), 3u);
  EXPECT_EQ(partition[0], (std::vector<size_t>{0, 2, 3}));
  EXPECT_EQ(partition[1], (std::vector<size_t>{1, 4, 5, 6}));
  EXPECT_EQ(partition[2], (std::vector<size_t>{7}));
}

TEST(KepTest, Example1Partition) {
  DatabaseScheme s = test::Example1R();
  Blocks partition = KeyEquivalentPartition(s);
  ASSERT_EQ(partition.size(), 3u);
  EXPECT_EQ(partition[0], (std::vector<size_t>{0, 1, 2}));  // HRC HTR HTC
  EXPECT_EQ(partition[1], (std::vector<size_t>{3}));        // CSG
  EXPECT_EQ(partition[2], (std::vector<size_t>{4}));        // HSR
}

TEST(KepTest, KeyEquivalentSchemeIsOneBlock) {
  for (const DatabaseScheme& s :
       {test::Example3(), test::Example4(), test::Example6()}) {
    Blocks partition = KeyEquivalentPartition(s);
    ASSERT_EQ(partition.size(), 1u);
    EXPECT_EQ(partition[0].size(), s.size());
  }
}

TEST(KepTest, BlocksAreKeyEquivalentAndMaximal) {
  // Lemma 5.1: every block is key-equivalent. Lemma 5.2 (maximality): no
  // union of two blocks is key-equivalent.
  std::vector<DatabaseScheme> schemes = {
      test::Example1R(), test::Example11(), test::Example13(),
      MakeBlockScheme(3, 3), MakeIndependentScheme(4)};
  for (const DatabaseScheme& s : schemes) {
    Blocks partition = KeyEquivalentPartition(s);
    for (const auto& block : partition) {
      EXPECT_TRUE(IsKeyEquivalentSubset(s, block));
    }
    for (size_t i = 0; i < partition.size(); ++i) {
      for (size_t j = i + 1; j < partition.size(); ++j) {
        std::vector<size_t> merged = partition[i];
        merged.insert(merged.end(), partition[j].begin(), partition[j].end());
        EXPECT_FALSE(IsKeyEquivalentSubset(s, merged));
      }
    }
  }
}

TEST(KepTest, PartitionIsOrderIndependent) {
  // The key-equivalent partition of R is unique (§5.1): permuting the
  // relation declarations must give the same partition up to the index
  // renaming.
  DatabaseScheme original = test::Example13();
  std::vector<size_t> perm = {7, 2, 5, 0, 4, 6, 1, 3};  // new order
  DatabaseScheme shuffled(original.universe_ptr());
  for (size_t i : perm) {
    shuffled.AddRelation(original.relation(i));
  }
  Blocks a = KeyEquivalentPartition(original);
  Blocks b = KeyEquivalentPartition(shuffled);
  // Translate b's indices back into original indices and compare as sets.
  auto canonical = [](Blocks blocks) {
    for (auto& block : blocks) std::sort(block.begin(), block.end());
    std::sort(blocks.begin(), blocks.end());
    return blocks;
  };
  Blocks b_translated;
  for (const auto& block : b) {
    std::vector<size_t> t;
    for (size_t i : block) t.push_back(perm[i]);
    b_translated.push_back(std::move(t));
  }
  EXPECT_EQ(canonical(a), canonical(b_translated));
}

TEST(IndependenceTest, Example1SchemesVerdicts) {
  // The paper: R is NOT independent, S is independent.
  EXPECT_FALSE(IsIndependent(test::Example1R()));
  EXPECT_TRUE(IsIndependent(test::Example1S()));
}

TEST(IndependenceTest, GeneratedFamilies) {
  EXPECT_TRUE(IsIndependent(MakeIndependentScheme(1)));
  EXPECT_TRUE(IsIndependent(MakeIndependentScheme(5)));
  EXPECT_FALSE(IsIndependent(test::Example3()));
  EXPECT_FALSE(IsIndependent(test::Example4()));
  // The star IS independent (removing one relation's key leaves the
  // others' C -> Ai intact but never re-derives the removed Ai).
  EXPECT_TRUE(IsIndependent(MakeStarScheme(3)));
}

TEST(IndependenceTest, ViolationWitnessIsMeaningful) {
  auto violation = FindUniquenessViolation(test::Example1R());
  ASSERT_TRUE(violation.has_value());
  DatabaseScheme s = test::Example1R();
  EXPECT_NE(violation->i, violation->j);
  // Re-verify the witness: the closure really embeds the key dependency.
  FdSet without_j = s.KeyDependenciesExcept(violation->j);
  AttributeSet closure = without_j.Closure(s.relation(violation->i).attrs);
  EXPECT_TRUE(violation->key.IsSubsetOf(closure));
  EXPECT_TRUE(closure.Contains(violation->attribute));
}

TEST(RecognitionTest, Example1Accepted) {
  DatabaseScheme s = test::Example1R();
  RecognitionResult r = RecognizeIndependenceReducible(s);
  EXPECT_TRUE(r.accepted);
  ASSERT_EQ(r.partition.size(), 3u);
  // D is Example 1's S up to naming.
  ASSERT_TRUE(r.induced.has_value());
  EXPECT_EQ(r.induced->size(), 3u);
  EXPECT_EQ(r.induced->relation(0).attrs, Attrs(s, "HRCT"));
  EXPECT_EQ(r.induced->relation(0).keys.size(), 2u);
  EXPECT_TRUE(IsIndependent(*r.induced));
}

TEST(RecognitionTest, Example11Accepted) {
  DatabaseScheme s = test::Example11();
  RecognitionResult r = RecognizeIndependenceReducible(s);
  EXPECT_TRUE(r.accepted);
  ASSERT_EQ(r.partition.size(), 2u);
  EXPECT_EQ(r.partition[0], (std::vector<size_t>{0, 1, 2, 3}));
  EXPECT_EQ(r.partition[1], (std::vector<size_t>{4, 5}));
  EXPECT_EQ(r.induced->relation(0).attrs, Attrs(s, "ABCD"));
  EXPECT_EQ(r.induced->relation(1).attrs, Attrs(s, "DEFG"));
}

TEST(RecognitionTest, Example2Rejected) {
  // Example 2's scheme is not algebraic-maintainable, so it must not be
  // independence-reducible.
  RecognitionResult r = RecognizeIndependenceReducible(test::Example2());
  EXPECT_FALSE(r.accepted);
  ASSERT_TRUE(r.violation.has_value());
}

TEST(RecognitionTest, KeyEquivalentSchemesAccepted) {
  // A key-equivalent scheme is trivially independence-reducible (one
  // block).
  for (const DatabaseScheme& s :
       {test::Example3(), test::Example4(), test::Example6()}) {
    EXPECT_TRUE(IsIndependenceReducible(s));
  }
}

TEST(RecognitionTest, Theorem53IndependentSchemesAccepted) {
  for (size_t m : {1u, 2u, 4u, 8u}) {
    DatabaseScheme s = MakeIndependentScheme(m);
    ASSERT_TRUE(IsIndependent(s));
    EXPECT_TRUE(IsIndependenceReducible(s)) << m;
  }
  EXPECT_TRUE(IsIndependenceReducible(test::Example1S()));
}

TEST(RecognitionTest, Theorem52GammaAcyclicBcnfAccepted) {
  // γ-acyclic cover-embedding BCNF schemes are accepted (Theorem 5.2).
  std::vector<DatabaseScheme> schemes = {
      MakeStarScheme(3), MakeChainScheme(4), test::Example1S(),
      MakeIndependentScheme(3)};
  for (const DatabaseScheme& s : schemes) {
    if (!IsGammaAcyclic(Hypergraph::Of(s)) || !s.IsBcnf()) continue;
    EXPECT_TRUE(IsIndependenceReducible(s)) << s.ToString();
  }
}

TEST(RecognitionTest, BlockSchemeFamilyAccepted) {
  for (size_t blocks : {1u, 2u, 4u}) {
    for (size_t size : {2u, 3u}) {
      DatabaseScheme s = MakeBlockScheme(blocks, size);
      RecognitionResult r = RecognizeIndependenceReducible(s);
      EXPECT_TRUE(r.accepted) << blocks << "x" << size;
      EXPECT_EQ(r.partition.size(), blocks);
    }
  }
}

TEST(RecognitionTest, RandomSchemesRecognitionIsSelfConsistent) {
  // For accepted random schemes: the partition's blocks are key-equivalent
  // and the induced scheme independent (the definition of acceptance).
  for (uint64_t seed = 0; seed < 40; ++seed) {
    RandomSchemeOptions opt;
    opt.universe_size = 7;
    opt.relations = 5;
    opt.seed = seed;
    DatabaseScheme s = MakeRandomScheme(opt);
    RecognitionResult r = RecognizeIndependenceReducible(s);
    if (!r.accepted) continue;
    for (const auto& block : r.partition) {
      EXPECT_TRUE(IsKeyEquivalentSubset(s, block));
    }
    EXPECT_TRUE(IsIndependent(*r.induced));
  }
}

TEST(AugmentationTest, Theorem43ClosureUnderAugmentation) {
  // Adding subsets of existing schemes preserves acceptance.
  std::vector<DatabaseScheme> schemes = {test::Example1R(), test::Example4(),
                                         test::Example11(),
                                         MakeIndependentScheme(3)};
  for (DatabaseScheme s : schemes) {
    ASSERT_TRUE(IsIndependenceReducible(s));
    // Augment with every 2-subset of the first relation and a key subset.
    // (Copy the attrs: Augment appends to the relation vector, which can
    // reallocate and invalidate references into it.)
    const AttributeSet r0_attrs = s.relation(0).attrs;
    std::vector<AttributeId> attrs = r0_attrs.ToVector();
    size_t added = 0;
    for (size_t i = 0; i < attrs.size() && added < 3; ++i) {
      for (size_t j = i + 1; j < attrs.size() && added < 3; ++j) {
        AttributeSet sub{attrs[i], attrs[j]};
        if (sub == r0_attrs) continue;
        bool duplicate = false;
        for (const RelationScheme& r : s.relations()) {
          if (r.attrs == sub) duplicate = true;
        }
        if (duplicate) continue;
        ASSERT_TRUE(Augment(&s, "Aug" + std::to_string(added), sub).ok());
        ++added;
        EXPECT_TRUE(IsIndependenceReducible(s))
            << "after augmenting with " << s.universe().Format(sub);
      }
    }
  }
}

TEST(AugmentationTest, AugmentRejectsNonSubsets) {
  DatabaseScheme s = test::Example9();
  AttributeSet ace = Attrs(s, "ACE");  // not inside any relation
  EXPECT_FALSE(Augment(&s, "bad", ace).ok());
  EXPECT_FALSE(Augment(&s, "bad", AttributeSet()).ok());
}

TEST(AugmentationTest, Corollary42ReductionInvariance) {
  std::vector<DatabaseScheme> schemes = {test::Example1R(), test::Example4(),
                                         test::Example2()};
  for (DatabaseScheme s : schemes) {
    bool before = IsIndependenceReducible(s);
    // Augment with subsets (keeps the verdict by Theorem 4.3)...
    const RelationScheme& r0 = s.relation(0);
    AttributeSet sub{r0.attrs.ToVector()[0]};
    if (Augment(&s, "Sub", sub).ok()) {
      // ... then reduce away; the verdict must be unchanged.
      DatabaseScheme reduced = Reduce(s);
      EXPECT_EQ(IsIndependenceReducible(reduced), before);
    }
  }
}

TEST(AugmentationTest, ReduceDropsContainedSchemes) {
  DatabaseScheme s = test::Example8();  // R2(AB) ⊂ R3(ABC)
  DatabaseScheme reduced = Reduce(s);
  EXPECT_LT(reduced.size(), s.size());
  for (size_t i = 0; i < reduced.size(); ++i) {
    for (size_t j = 0; j < reduced.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(
            reduced.relation(i).attrs.IsSubsetOf(reduced.relation(j).attrs));
      }
    }
  }
}

TEST(ClassifyTest, Example1Report) {
  SchemeClassification c = ClassifyScheme(test::Example1R());
  EXPECT_TRUE(c.valid.ok());
  EXPECT_TRUE(c.bcnf);
  EXPECT_FALSE(c.independent);
  EXPECT_FALSE(c.gamma_acyclic);
  EXPECT_FALSE(c.key_equivalent);
  EXPECT_TRUE(c.independence_reducible);
  EXPECT_TRUE(c.split_free);
  EXPECT_TRUE(c.bounded);
  EXPECT_TRUE(c.algebraic_maintainable);
  EXPECT_TRUE(c.ctm);  // the paper: "not only bounded, but ctm"
  EXPECT_FALSE(diagnostics::FormatSchemeReport(test::Example1R()).empty());
}

TEST(ClassifyTest, Example4Report) {
  SchemeClassification c = ClassifyScheme(test::Example4());
  EXPECT_TRUE(c.key_equivalent);
  EXPECT_TRUE(c.independence_reducible);
  EXPECT_FALSE(c.split_free);
  EXPECT_TRUE(c.bounded);
  EXPECT_TRUE(c.algebraic_maintainable);
  EXPECT_FALSE(c.ctm);  // split ⇒ not ctm (Theorem 3.4)
}

TEST(ClassifyTest, Example2Report) {
  SchemeClassification c = ClassifyScheme(test::Example2());
  EXPECT_FALSE(c.independence_reducible);
  EXPECT_FALSE(c.bounded);
  EXPECT_FALSE(c.ctm);
}

TEST(ClassifyTest, InclusionChainOnManySchemes) {
  // independent ⊆ independence-reducible; ctm ⊆ algebraic-maintainable.
  std::vector<DatabaseScheme> schemes = {
      test::Example1R(), test::Example1S(), test::Example2(),
      test::Example3(),  test::Example4(),  test::Example6(),
      test::Example8(),  test::Example9(),  test::Example11(),
      test::Example13(), MakeChainScheme(4), MakeSplitScheme(2),
      MakeStarScheme(3), MakeIndependentScheme(3), MakeBlockScheme(2, 2)};
  for (const DatabaseScheme& s : schemes) {
    SchemeClassification c = ClassifyScheme(s, s.size() <= 10);
    if (c.independent) {
      EXPECT_TRUE(c.independence_reducible) << s.ToString();
    }
    if (c.key_equivalent) {
      EXPECT_TRUE(c.independence_reducible) << s.ToString();
    }
    if (c.ctm) {
      EXPECT_TRUE(c.algebraic_maintainable) << s.ToString();
      EXPECT_TRUE(c.bounded) << s.ToString();
    }
  }
}

}  // namespace
}  // namespace ird
