#include <gtest/gtest.h>

#include "algebra/expression.h"
#include "algebra/extension_join.h"
#include "tests/test_util.h"

namespace ird {
namespace {

using test::Attrs;

class AlgebraTest : public ::testing::Test {
 protected:
  AlgebraTest() : scheme_(test::Example9()), state_(scheme_) {
    // Two chain entities: 1-2-3-4-5 and 6-7 (partial).
    state_.Insert("R1", {1, 2});
    state_.Insert("R2", {2, 3});
    state_.Insert("R3", {3, 4});
    state_.Insert("R4", {4, 5});
    state_.Insert("R1", {6, 7});
  }

  ExprPtr Base(size_t i) {
    return Expression::Base(i, scheme_.relation(i).attrs);
  }

  DatabaseScheme scheme_;
  DatabaseState state_;
};

TEST_F(AlgebraTest, EvaluateBase) {
  PartialRelation r = Evaluate(*Base(0), state_);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.attrs(), Attrs(scheme_, "AB"));
}

TEST_F(AlgebraTest, EvaluateJoin) {
  ExprPtr join = Expression::Join({Base(0), Base(1)});
  PartialRelation r = Evaluate(*join, state_);
  ASSERT_EQ(r.size(), 1u);  // only entity 1 joins through B
  EXPECT_EQ(r.tuples()[0].values(), (std::vector<Value>{1, 2, 3}));
  EXPECT_EQ(join->output_attrs(), Attrs(scheme_, "ABC"));
}

TEST_F(AlgebraTest, EvaluateThreeWayJoin) {
  ExprPtr join = Expression::Join({Base(0), Base(1), Base(2), Base(3)});
  PartialRelation r = Evaluate(*join, state_);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.tuples()[0].values(), (std::vector<Value>{1, 2, 3, 4, 5}));
}

TEST_F(AlgebraTest, EvaluateProjectDeduplicates) {
  // π_B over R1 ∪ rows with equal B collapse.
  DatabaseState state(scheme_);
  state.Insert("R1", {1, 5});
  state.Insert("R1", {2, 5});
  ExprPtr p = Expression::Project(Attrs(scheme_, "B"), Base(0));
  PartialRelation r = Evaluate(*p, state);
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(AlgebraTest, EvaluateSelect) {
  AttributeId a = scheme_.universe().Find("A").value();
  ExprPtr sel = Expression::Select({EqualityAtom{a, 6}}, Base(0));
  PartialRelation r = Evaluate(*sel, state_);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.tuples()[0].values(), (std::vector<Value>{6, 7}));
}

TEST_F(AlgebraTest, EvaluateUnion) {
  ExprPtr u = Expression::Union(
      {Expression::Project(Attrs(scheme_, "B"), Base(0)),
       Expression::Project(Attrs(scheme_, "B"), Base(1))});
  PartialRelation r = Evaluate(*u, state_);
  // B values: 2, 7 from R1; 2 from R2 (deduplicated).
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(AlgebraTest, NodeCount) {
  ExprPtr e = Expression::Project(
      Attrs(scheme_, "A"), Expression::Join({Base(0), Base(1)}));
  EXPECT_EQ(e->NodeCount(), 4u);
}

TEST_F(AlgebraTest, JoinOfOneChildCollapses) {
  ExprPtr e = Expression::Join({Base(0)});
  EXPECT_EQ(e->kind(), Expression::Kind::kBase);
}

TEST_F(AlgebraTest, ToStringIsReadable) {
  ExprPtr e = Expression::Project(
      Attrs(scheme_, "A"), Expression::Join({Base(0), Base(1)}));
  EXPECT_EQ(e->ToString(scheme_), "π[A]((R1 ⋈ R2))");
}

TEST(NaturalJoinTest, DisjointSchemesGiveProduct) {
  PartialRelation left(AttributeSet{0});
  left.Add({1});
  left.Add({2});
  PartialRelation right(AttributeSet{1});
  right.Add({7});
  PartialRelation out = NaturalJoin(left, right);
  EXPECT_EQ(out.size(), 2u);
}

TEST(NaturalJoinTest, ManyToMany) {
  PartialRelation left(AttributeSet{0, 1});
  left.Add({1, 5});
  left.Add({2, 5});
  PartialRelation right(AttributeSet{1, 2});
  right.Add({5, 8});
  right.Add({5, 9});
  PartialRelation out = NaturalJoin(left, right);
  EXPECT_EQ(out.size(), 4u);
}

TEST(ExtensionJoinTest, ChainIsExtensionSequence) {
  DatabaseScheme s = test::Example9();
  const FdSet& f = s.key_dependencies();
  EXPECT_TRUE(IsExtensionJoinSequence(s, {0, 1, 2, 3}, f));
  EXPECT_TRUE(IsExtensionJoinSequence(s, {3, 2, 1, 0}, f));
  // A gap makes a cartesian step.
  EXPECT_FALSE(IsExtensionJoinSequence(s, {0, 2}, f));
}

TEST(ExtensionJoinTest, OneWayKeysRestrictDirection) {
  // A -> B chain with one-way keys: extension joins must follow the arrows.
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A"});
  s.AddRelation("R2", "BC", {"B"});
  const FdSet& f = s.key_dependencies();
  EXPECT_TRUE(IsExtensionJoinSequence(s, {0, 1}, f));
  EXPECT_FALSE(IsExtensionJoinSequence(s, {1, 0}, f));
  auto order = FindExtensionJoinOrder(s, {1, 0}, f);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<size_t>{0, 1}));
}

TEST(ExtensionJoinTest, NoOrderExists) {
  // Two relations sharing a non-determining attribute.
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"AB"});
  s.AddRelation("R2", "BC", {"BC"});
  EXPECT_FALSE(
      FindExtensionJoinOrder(s, {0, 1}, s.key_dependencies()).has_value());
}

TEST(ExtensionJoinTest, Example4ExpressionIsBushyExtensionJoin) {
  // Example 4: "the join expression is a union of projections of extension
  // joins" — AB ⋈ AC ⋈ (BE ⋈ CE). The subset admits NO sequential
  // (left-deep) extension order, but it does admit the paper's bushy tree:
  // (AB ⋈ AC) on ABC, (BE ⋈ CE) on BCE, then BC -> E closes the join.
  DatabaseScheme s = test::Example4();
  const FdSet& f = s.key_dependencies();
  EXPECT_FALSE(FindExtensionJoinOrder(s, {0, 1, 3, 4}, f).has_value());
  EXPECT_TRUE(AdmitsExtensionJoinTree(s, {0, 1, 3, 4}, f));
}

TEST(ExtensionJoinTest, TreeRejectsUndeterminedCombination) {
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"AB"});
  s.AddRelation("R2", "BC", {"BC"});
  EXPECT_FALSE(AdmitsExtensionJoinTree(s, {0, 1}, s.key_dependencies()));
}

TEST(ExtensionJoinTest, TreeAcceptsSingleRelation) {
  DatabaseScheme s = test::Example9();
  EXPECT_TRUE(AdmitsExtensionJoinTree(s, {2}, s.key_dependencies()));
}

TEST(ExtensionJoinTest, SequentialJoinExprShape) {
  DatabaseScheme s = test::Example9();
  ExprPtr e = SequentialJoinExpr(s, {0, 1, 2});
  EXPECT_EQ(e->kind(), Expression::Kind::kJoin);
  EXPECT_EQ(e->output_attrs(), Attrs(s, "ABCD"));
}

}  // namespace
}  // namespace ird
