// Semantic validation of the uniqueness condition: independence means
// LSAT(R, F) = WSAT(R, F) (paper §2.7).

#include <gtest/gtest.h>

#include "core/independence.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Tuple;

TEST(IndependenceSemanticsTest, LocallyConsistentImpliesConsistent) {
  // Forward direction on generated and paper independent schemes: every
  // locally consistent state we can produce is globally consistent. States
  // are built by perturbing consistent states while preserving local
  // satisfaction.
  std::vector<DatabaseScheme> schemes = {
      MakeIndependentScheme(3), MakeIndependentScheme(5), test::Example1S(),
      MakeStarScheme(3)};
  std::mt19937_64 rng(3);
  for (const DatabaseScheme& s : schemes) {
    ASSERT_TRUE(IsIndependent(s));
    for (int round = 0; round < 10; ++round) {
      StateGenOptions opt;
      opt.entities = 8;
      opt.coverage = 0.6;
      opt.seed = rng();
      DatabaseState state = MakeConsistentState(s, opt);
      // Randomly overwrite some non-key values with values of other
      // entities — this can break global consistency only through
      // cross-relation interaction, which independence forbids.
      for (size_t rel = 0; rel < state.relation_count(); ++rel) {
        PartialRelation perturbed(s.relation(rel).attrs);
        for (PartialTuple t : state.relation(rel).tuples()) {
          if (rng() % 3 == 0 &&
              s.relation(rel).attrs.Count() >
                  s.relation(rel).keys.front().Count()) {
            // Replace one non-key attribute's value.
            AttributeSet nonkey =
                t.attrs().Minus(s.relation(rel).keys.front());
            AttributeId victim = nonkey.ToVector()[rng() % nonkey.Count()];
            std::vector<Value> values = t.values();
            values[t.attrs().Rank(victim)] =
                static_cast<Value>(rng() % 50 + 1);
            t = PartialTuple(t.attrs(), std::move(values));
          }
          perturbed.AddUnique(t);
        }
        state.mutable_relation(rel) = std::move(perturbed);
      }
      if (IsLocallyConsistent(state)) {
        EXPECT_TRUE(IsConsistent(state));
      }
    }
  }
}

TEST(IndependenceSemanticsTest, Example1RWitnessState) {
  // Example 1's R is not independent: the witness derived from the
  // uniqueness violation — R2's closure without R3's keys embeds HT -> C.
  DatabaseScheme s = test::Example1R();
  ASSERT_FALSE(IsIndependent(s));
  constexpr Value h = 1, r = 2, c = 3, t = 4, c2 = 5;
  DatabaseState state(s);
  state.mutable_relation(0).Add(Tuple(s, "HRC", {h, r, c}));
  state.mutable_relation(1).Add(Tuple(s, "HTR", {h, t, r}));
  state.mutable_relation(2).Add(Tuple(s, "HTC", {h, t, c2}));
  EXPECT_TRUE(IsLocallyConsistent(state));
  EXPECT_FALSE(IsConsistent(state));
}

TEST(IndependenceSemanticsTest, Example2WitnessState) {
  DatabaseScheme s = test::Example2();
  ASSERT_FALSE(IsIndependent(s));
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R2", {2, 3});
  state.Insert("R3", {1, 4});
  EXPECT_TRUE(IsLocallyConsistent(state));
  EXPECT_FALSE(IsConsistent(state));
}

TEST(IndependenceSemanticsTest, IndependentSchemeSurvivesCrossTalk) {
  // On Example 1's S (independent), gluing arbitrary locally consistent
  // relations never creates global inconsistency.
  DatabaseScheme s = test::Example1S();
  constexpr Value h = 1, r = 2, c = 3, t = 4, s1 = 5, g = 6, r2 = 7;
  DatabaseState state(s);
  state.mutable_relation(0).Add(Tuple(s, "HRCT", {h, r, c, t}));
  state.mutable_relation(1).Add(Tuple(s, "CSG", {c, s1, g}));
  // HSR with a DIFFERENT room for the same hour/student: locally fine,
  // and globally fine too because S is independent.
  state.mutable_relation(2).Add(Tuple(s, "HSR", {h, s1, r2}));
  EXPECT_TRUE(IsLocallyConsistent(state));
  EXPECT_TRUE(IsConsistent(state));
}

}  // namespace
}  // namespace ird
