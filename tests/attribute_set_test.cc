#include "base/attribute_set.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "base/universe.h"

namespace ird {
namespace {

TEST(AttributeSetTest, EmptySet) {
  AttributeSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_FALSE(s.Contains(0));
  EXPECT_TRUE(s.IsSubsetOf(AttributeSet{1, 2}));
  EXPECT_TRUE(s.IsSubsetOf(AttributeSet{}));
}

TEST(AttributeSetTest, AddRemoveContains) {
  AttributeSet s;
  s.Add(3);
  s.Add(70);  // crosses a word boundary
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(70));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 2u);
  s.Remove(70);
  EXPECT_FALSE(s.Contains(70));
  EXPECT_EQ(s.Count(), 1u);
  // Removing a high bit normalizes trailing words: equality with the
  // directly built set must hold.
  EXPECT_EQ(s, (AttributeSet{3}));
}

TEST(AttributeSetTest, RemoveAbsentIsNoop) {
  AttributeSet s{1, 2};
  s.Remove(99);
  EXPECT_EQ(s, (AttributeSet{1, 2}));
}

TEST(AttributeSetTest, AllUpTo) {
  EXPECT_TRUE(AttributeSet::AllUpTo(0).Empty());
  AttributeSet s = AttributeSet::AllUpTo(65);
  EXPECT_EQ(s.Count(), 65u);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(64));
  EXPECT_FALSE(s.Contains(65));
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a{1, 2, 3};
  AttributeSet b{3, 4, 100};
  EXPECT_EQ(a.Union(b), (AttributeSet{1, 2, 3, 4, 100}));
  EXPECT_EQ(a.Intersect(b), (AttributeSet{3}));
  EXPECT_EQ(a.Minus(b), (AttributeSet{1, 2}));
  EXPECT_EQ(b.Minus(a), (AttributeSet{4, 100}));
  // Mixed word counts in both directions.
  EXPECT_EQ(b.Intersect(a), (AttributeSet{3}));
}

TEST(AttributeSetTest, SubsetSuperset) {
  AttributeSet a{1, 2};
  AttributeSet b{1, 2, 3};
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.IsProperSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(b.IsSupersetOf(a));
  EXPECT_FALSE(a.IsProperSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(AttributeSetTest, Incomparable) {
  AttributeSet a{1, 2};
  AttributeSet b{2, 3};
  EXPECT_TRUE(a.IsIncomparableWith(b));
  EXPECT_FALSE(a.IsIncomparableWith(a));
  EXPECT_FALSE(a.IsIncomparableWith(AttributeSet{1, 2, 3}));
}

TEST(AttributeSetTest, Intersects) {
  EXPECT_TRUE((AttributeSet{1, 64}).Intersects(AttributeSet{64}));
  EXPECT_FALSE((AttributeSet{1, 2}).Intersects(AttributeSet{3, 70}));
  EXPECT_FALSE(AttributeSet{}.Intersects(AttributeSet{1}));
}

TEST(AttributeSetTest, FirstAndRank) {
  AttributeSet s{5, 9, 70};
  EXPECT_EQ(s.First(), 5u);
  EXPECT_EQ(s.Rank(5), 0u);
  EXPECT_EQ(s.Rank(9), 1u);
  EXPECT_EQ(s.Rank(70), 2u);
  EXPECT_EQ(s.Rank(6), 1u);    // non-member
  EXPECT_EQ(s.Rank(200), 3u);  // beyond the last word
}

TEST(AttributeSetTest, ToVectorOrdered) {
  AttributeSet s{70, 1, 5};
  EXPECT_EQ(s.ToVector(), (std::vector<AttributeId>{1, 5, 70}));
}

TEST(AttributeSetTest, ForEachVisitsInOrder) {
  AttributeSet s{8, 2, 130};
  std::vector<AttributeId> seen;
  s.ForEach([&](AttributeId id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<AttributeId>{2, 8, 130}));
}

TEST(AttributeSetTest, EqualityNormalizesTrailingWords) {
  AttributeSet a{1};
  AttributeSet b{1, 200};
  b.Remove(200);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(AttributeSetTest, TotalOrderIsStrict) {
  std::vector<AttributeSet> sets = {{}, {1}, {2}, {1, 2}, {64}, {1, 64}};
  std::set<AttributeSet> ordered(sets.begin(), sets.end());
  EXPECT_EQ(ordered.size(), sets.size());
  for (const AttributeSet& a : sets) {
    EXPECT_FALSE(a < a);
  }
}

TEST(AttributeSetTest, RandomizedAlgebraAgainstStdSet) {
  std::mt19937 rng(7);
  for (int round = 0; round < 50; ++round) {
    std::set<AttributeId> sa;
    std::set<AttributeId> sb;
    AttributeSet a;
    AttributeSet b;
    for (int i = 0; i < 40; ++i) {
      AttributeId x = rng() % 200;
      if (rng() % 2 == 0) {
        sa.insert(x);
        a.Add(x);
      } else {
        sb.insert(x);
        b.Add(x);
      }
    }
    AttributeSet u = a.Union(b);
    size_t expected_union = 0;
    for (AttributeId x = 0; x < 200; ++x) {
      bool in_union = sa.count(x) > 0 || sb.count(x) > 0;
      EXPECT_EQ(u.Contains(x), in_union);
      expected_union += in_union ? 1 : 0;
      EXPECT_EQ(a.Intersect(b).Contains(x),
                sa.count(x) > 0 && sb.count(x) > 0);
      EXPECT_EQ(a.Minus(b).Contains(x), sa.count(x) > 0 && sb.count(x) == 0);
    }
    EXPECT_EQ(u.Count(), expected_union);
  }
}

// --- Small-buffer boundary properties ---------------------------------
// The inline representation holds kInlineWords * 64 attribute ids; these
// sweeps pin the semantics at and around the spill threshold: a set must
// behave identically whether its words live inline or on the heap.

TEST(AttributeSetTest, BoundaryEqualityAndHashAcrossRepresentations) {
  for (AttributeId boundary : {63u, 64u, 127u, 128u, 129u}) {
    // Built low-to-high: crosses inline→heap exactly when boundary >= 128.
    AttributeSet ascending;
    for (AttributeId a = 0; a <= boundary; ++a) ascending.Add(a);
    // Built high-to-low: spills on the first Add, then fills downward.
    AttributeSet descending;
    for (AttributeId a = boundary + 1; a-- > 0;) descending.Add(a);
    // Built oversized then trimmed: exercises Normalize after Remove.
    AttributeSet trimmed = AttributeSet::AllUpTo(boundary + 200);
    for (AttributeId a = boundary + 199; a > boundary; --a) trimmed.Remove(a);

    EXPECT_EQ(ascending, descending) << "boundary " << boundary;
    EXPECT_EQ(ascending, trimmed) << "boundary " << boundary;
    EXPECT_EQ(ascending, AttributeSet::AllUpTo(boundary + 1));
    EXPECT_EQ(AttributeSetHash{}(ascending), AttributeSetHash{}(descending));
    EXPECT_EQ(AttributeSetHash{}(ascending), AttributeSetHash{}(trimmed));
    EXPECT_FALSE(ascending < descending);
    EXPECT_FALSE(descending < ascending);
    EXPECT_EQ(ascending.Count(), size_t{boundary} + 1);
  }
}

TEST(AttributeSetTest, BoundaryNormalizationAfterHighBitRemoval) {
  for (AttributeId boundary : {63u, 64u, 127u, 128u, 129u}) {
    AttributeSet s{1, boundary};
    s.Remove(boundary);
    // The trailing words drop out of the comparison entirely: equality,
    // hash, and order against a never-spilled {1} must all agree.
    AttributeSet one{1};
    EXPECT_EQ(s, one) << "boundary " << boundary;
    EXPECT_EQ(AttributeSetHash{}(s), AttributeSetHash{}(one));
    EXPECT_FALSE(s < one);
    EXPECT_FALSE(one < s);
    EXPECT_EQ(s.Count(), 1u);
  }
}

TEST(AttributeSetTest, BoundaryFirstAndRank) {
  for (AttributeId boundary : {63u, 64u, 127u, 128u, 129u}) {
    AttributeSet s{boundary};
    EXPECT_EQ(s.First(), boundary);
    EXPECT_EQ(s.Rank(boundary), 0u);
    s.Add(5);
    EXPECT_EQ(s.First(), 5u);
    EXPECT_EQ(s.Rank(boundary), 1u);
    AttributeSet all = AttributeSet::AllUpTo(boundary + 1);
    EXPECT_EQ(all.First(), 0u);
    EXPECT_EQ(all.Rank(boundary), size_t{boundary});
  }
}

TEST(AttributeSetTest, BoundaryIteratorMatchesToVector) {
  std::mt19937 rng(42);
  for (AttributeId boundary : {63u, 64u, 127u, 128u, 129u}) {
    AttributeSet s;
    for (int i = 0; i < 25; ++i) s.Add(rng() % (boundary + 1));
    s.Add(boundary);
    std::vector<AttributeId> from_iter(s.begin(), s.end());
    std::vector<AttributeId> from_foreach;
    s.ForEach([&](AttributeId a) { from_foreach.push_back(a); });
    EXPECT_EQ(from_iter, s.ToVector()) << "boundary " << boundary;
    EXPECT_EQ(from_foreach, s.ToVector()) << "boundary " << boundary;
  }
}

TEST(AttributeSetTest, BoundaryCopyAndSubtractRecompact) {
  for (AttributeId boundary : {127u, 128u, 129u}) {
    // Spill, subtract everything above the inline range, then copy: the
    // copy re-compacts to the inline representation and must still equal
    // (and hash like) the set built inline from scratch.
    AttributeSet spilled = AttributeSet::AllUpTo(boundary + 1);
    spilled.SubtractAll(AttributeSet::AllUpTo(boundary + 1).Minus(
        AttributeSet::AllUpTo(3)));
    AttributeSet copy = spilled;
    AttributeSet inline_built = AttributeSet::AllUpTo(3);
    EXPECT_EQ(copy, inline_built);
    EXPECT_EQ(spilled, inline_built);
    EXPECT_EQ(AttributeSetHash{}(copy), AttributeSetHash{}(inline_built));
    EXPECT_EQ(AttributeSetHash{}(spilled), AttributeSetHash{}(inline_built));
  }
}

TEST(UniverseTest, InternIsIdempotent) {
  Universe u;
  AttributeId a = u.Intern("Hour");
  EXPECT_EQ(u.Intern("Hour"), a);
  EXPECT_EQ(u.Name(a), "Hour");
  EXPECT_EQ(u.size(), 1u);
}

TEST(UniverseTest, FindUnknownFails) {
  Universe u;
  u.Intern("A");
  EXPECT_TRUE(u.Find("A").ok());
  EXPECT_FALSE(u.Find("B").ok());
  EXPECT_EQ(u.Find("B").status().code(), StatusCode::kNotFound);
}

TEST(UniverseTest, CharsAndFormat) {
  Universe u;
  AttributeSet s = u.Chars("CAB");
  EXPECT_EQ(s.Count(), 3u);
  // Format renders in id order for single-char names: C interned first.
  EXPECT_EQ(u.Format(s), "CAB");
  EXPECT_EQ(u.Format(AttributeSet{}), "∅");
}

TEST(UniverseTest, FormatMultiCharNamesUsesCommas) {
  Universe u;
  AttributeSet s;
  s.Add(u.Intern("Hour"));
  s.Add(u.Intern("Room"));
  EXPECT_EQ(u.Format(s), "Hour,Room");
}

TEST(UniverseTest, AllMatchesSize) {
  Universe u;
  u.Chars("ABCDE");
  EXPECT_EQ(u.All().Count(), 5u);
}

}  // namespace
}  // namespace ird
