// Counter-backed complexity invariants on the paper's worked examples:
// the obs counters are not just monotone gauges, they carry executable
// bounds from the paper's analysis. Each test runs an engine entry point
// between two registry snapshots and checks the counter delta against the
// bound. With IRD_OBS=OFF every delta is zero and the lower-bound
// assertions are vacuous, so the whole file skips.

#include <cstdint>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/ctm_maintainer.h"
#include "core/kep.h"
#include "core/key_equivalent_maintainer.h"
#include "core/recognition.h"
#include "engine/scheme_analysis.h"
#include "obs/export.h"
#include "tableau/chase.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

struct NamedScheme {
  const char* name;
  DatabaseScheme scheme;
};

// Every worked-example fixture the suite defines (Examples 5, 7 and 10
// reuse the schemes of 4 and 3; see tests/test_util.h).
std::vector<NamedScheme> PaperExamples() {
  std::vector<NamedScheme> out;
  out.push_back({"Example1R", test::Example1R()});
  out.push_back({"Example1S", test::Example1S()});
  out.push_back({"Example2", test::Example2()});
  out.push_back({"Example3", test::Example3()});
  out.push_back({"Example4", test::Example4()});
  out.push_back({"Example6", test::Example6()});
  out.push_back({"Example8", test::Example8()});
  out.push_back({"Example9", test::Example9()});
  out.push_back({"Example11", test::Example11()});
  out.push_back({"Example12", test::Example12()});
  out.push_back({"Example13", test::Example13()});
  return out;
}

uint64_t DeltaOf(const obs::Snapshot& delta, std::string_view name) {
  for (const auto& [counter, value] : delta.counters) {
    if (counter == name) return value;
  }
  return 0;
}

template <typename Body>
obs::Snapshot Measure(Body body) {
  obs::Snapshot before = obs::TakeSnapshot();
  body();
  return obs::DeltaSince(before);
}

#ifdef IRD_OBS_DISABLED
#define IRD_REQUIRE_OBS() \
  GTEST_SKIP() << "instrumentation compiled out (IRD_OBS=OFF)"
#else
#define IRD_REQUIRE_OBS() \
  do {                    \
  } while (false)
#endif

// Both closure engines bound their work per computation: the indexed
// engine fires each FD at most once (<= |F| iterations), the naive engine
// scans until a fixpoint (<= |F|+1 passes). Either way, over any run
// touching only FD sets drawn from the scheme's key dependencies,
//   delta(closure.iterations) <= (|F| + 1) * delta(closure.computations).
TEST(ObsInvariantsTest, ClosureIterationsBoundedByFdCount) {
  IRD_REQUIRE_OBS();
  for (const NamedScheme& example : PaperExamples()) {
    const uint64_t fd_count = example.scheme.key_dependencies().size();
    obs::Snapshot delta = Measure(
        [&] { (void)RecognizeIndependenceReducible(example.scheme); });
    const uint64_t computations = DeltaOf(delta, "closure.computations");
    const uint64_t iterations = DeltaOf(delta, "closure.iterations");
    EXPECT_GT(computations, 0u) << example.name;
    EXPECT_LE(iterations, (fd_count + 1) * computations) << example.name;
  }
}

// KEP's recursion tree on n schemes has at most 2n-1 nodes (every split
// produces at least two nonempty groups), and at least one: the root.
TEST(ObsInvariantsTest, KepRoundsWithinRecursionTreeBound) {
  IRD_REQUIRE_OBS();
  for (const NamedScheme& example : PaperExamples()) {
    const uint64_t n = example.scheme.size();
    obs::Snapshot delta =
        Measure([&] { (void)KeyEquivalentPartition(example.scheme); });
    const uint64_t rounds = DeltaOf(delta, "kep.rounds");
    EXPECT_GE(rounds, 1u) << example.name;
    EXPECT_LE(rounds, 2 * n - 1) << example.name;
  }
}

// The uniqueness test tries ordered pairs of distinct relations of the
// induced scheme D, so at most |D|(|D|-1) <= n(n-1) independence tests per
// recognition run.
TEST(ObsInvariantsTest, IndependenceTestsQuadraticallyBounded) {
  IRD_REQUIRE_OBS();
  for (const NamedScheme& example : PaperExamples()) {
    const uint64_t n = example.scheme.size();
    obs::Snapshot delta = Measure(
        [&] { (void)RecognizeIndependenceReducible(example.scheme); });
    EXPECT_LE(DeltaOf(delta, "recognition.independence_tests"), n * (n - 1))
        << example.name;
  }
}

// The engine layer's tentpole invariant: recognizing one scheme through a
// shared SchemeAnalysis constructs each ClosureEngine at most once. The
// cold run builds at least the full-cover engine; the warm repeat on the
// same analysis builds nothing, misses no memo entry and recomputes no
// closure — every answer is served from the caches.
TEST(ObsInvariantsTest, RepeatRecognitionBuildsNoEngine) {
  IRD_REQUIRE_OBS();
  for (const NamedScheme& example : PaperExamples()) {
    SchemeAnalysis analysis(example.scheme);
    obs::Snapshot cold = Measure(
        [&] { (void)RecognizeIndependenceReducible(analysis); });
    EXPECT_GT(DeltaOf(cold, "engine.closure_engine.builds"), 0u)
        << example.name;
    obs::Snapshot warm = Measure(
        [&] { (void)RecognizeIndependenceReducible(analysis); });
    EXPECT_EQ(DeltaOf(warm, "engine.closure_engine.builds"), 0u)
        << example.name;
    EXPECT_EQ(DeltaOf(warm, "engine.closure_memo.misses"), 0u)
        << example.name;
    EXPECT_EQ(DeltaOf(warm, "closure.computations"), 0u) << example.name;
    EXPECT_EQ(DeltaOf(warm, "engine.invalidations"), 0u) << example.name;
  }
}

// The delta-driven chase's unit of work is the bucket probe, split into the
// one-time seed scan (chase.seed_probes) and merge-driven worklist re-probes
// (chase.reprobes): every merge is discovered by a probe and every merge
// repairs the indexes exactly once, so per chase
//   seed_probes + reprobes >= equates  and  index_repairs == equates,
// and on the chain schemes — whose lossless-join chase genuinely merges —
// the total probe count grows monotonically with chain length.
TEST(ObsInvariantsTest, ChaseProbesMonotoneInChainLength) {
  IRD_REQUIRE_OBS();
  uint64_t previous_probes = 0;
  for (size_t n = 2; n <= 8; ++n) {
    DatabaseScheme scheme = MakeChainScheme(n);
    obs::Snapshot delta = Measure([&] { (void)IsLosslessByChase(scheme); });
    const uint64_t probes = DeltaOf(delta, "chase.seed_probes") +
                            DeltaOf(delta, "chase.reprobes");
    const uint64_t equates = DeltaOf(delta, "chase.equates");
    const uint64_t rows = DeltaOf(delta, "tableau.rows_materialized");
    EXPECT_GE(rows, n) << "chain n=" << n
                       << ": the chase tableau starts with one row per "
                          "relation";
    EXPECT_GT(equates, 0u) << "chain n=" << n
                           << ": joining the chain must merge symbols";
    EXPECT_GE(probes, equates) << "chain n=" << n;
    EXPECT_EQ(DeltaOf(delta, "chase.index_repairs"), equates)
        << "chain n=" << n;
    EXPECT_GE(probes, previous_probes) << "chain n=" << n;
    previous_probes = probes;
  }
}

// A clashing tuple on relation 0 of a chain-scheme maintainer state:
// same A1 value as an existing tuple, contradicting A2 — rejected under
// the FD A1 -> A2.
PartialTuple ChainClashTuple(const DatabaseScheme& scheme,
                             const DatabaseState& state) {
  const PartialTuple& existing = state.relation(0).tuples()[0];
  const AttributeId a1 = *scheme.universe().Find("A1");
  const AttributeId a2 = *scheme.universe().Find("A2");
  return PartialTuple(existing.attrs(),
                      {existing.At(a1), existing.At(a2) + 1000000});
}

// Theorem 5.5 made counter-executable, on the rejection path: one
// rejecting Algorithm 5 check bumps maintain.alg5.checks and
// maintain.alg5.rejects exactly once, and its probe tally is identical on
// a 20-entity and a 1000-entity state (coverage 1.0 keeps the extension
// structure fixed) — the "constant" in constant-time maintenance.
TEST(ObsInvariantsTest, Alg5RejectionConstantTimeCounters) {
  IRD_REQUIRE_OBS();
  DatabaseScheme scheme = MakeChainScheme(4);
  std::vector<uint64_t> probes;
  for (size_t entities : {20u, 1000u}) {
    StateGenOptions opt;
    opt.entities = entities;
    opt.coverage = 1.0;
    opt.seed = 53;
    DatabaseState state = MakeConsistentState(scheme, opt);
    Result<CtmMaintainer> m = CtmMaintainer::Create(std::move(state), false);
    ASSERT_TRUE(m.ok());
    PartialTuple clash = ChainClashTuple(scheme, m->state());
    obs::Snapshot delta =
        Measure([&] { EXPECT_FALSE(m->CheckInsert(0, clash).ok()); });
    EXPECT_EQ(DeltaOf(delta, "maintain.alg5.checks"), 1u)
        << "entities=" << entities;
    EXPECT_EQ(DeltaOf(delta, "maintain.alg5.rejects"), 1u)
        << "entities=" << entities;
    probes.push_back(DeltaOf(delta, "maintain.alg5.probes"));
  }
  EXPECT_GT(probes[0], 0u);
  EXPECT_EQ(probes[0], probes[1]);
}

// Algorithm 2's rejection cost is bounded by the distinct pool keys (the
// chain of length 4 has 5) and is state-size independent: every processed
// key does exactly one representative-instance lookup.
TEST(ObsInvariantsTest, Alg2RejectionBoundedByPoolKeys) {
  IRD_REQUIRE_OBS();
  DatabaseScheme scheme = MakeChainScheme(4);
  std::vector<uint64_t> lookups;
  for (size_t entities : {20u, 1000u}) {
    StateGenOptions opt;
    opt.entities = entities;
    opt.coverage = 1.0;
    opt.seed = 53;
    DatabaseState state = MakeConsistentState(scheme, opt);
    Result<KeyEquivalentMaintainer> m =
        KeyEquivalentMaintainer::Create(std::move(state));
    ASSERT_TRUE(m.ok());
    PartialTuple clash = ChainClashTuple(scheme, m->state());
    obs::Snapshot delta =
        Measure([&] { EXPECT_FALSE(m->CheckInsert(0, clash).ok()); });
    EXPECT_EQ(DeltaOf(delta, "maintain.alg2.checks"), 1u)
        << "entities=" << entities;
    EXPECT_EQ(DeltaOf(delta, "maintain.alg2.rejects"), 1u)
        << "entities=" << entities;
    EXPECT_EQ(DeltaOf(delta, "maintain.alg2.lookups"),
              DeltaOf(delta, "maintain.alg2.keys_processed"))
        << "entities=" << entities;
    EXPECT_LE(DeltaOf(delta, "maintain.alg2.lookups"), 5u)
        << "entities=" << entities;
    lookups.push_back(DeltaOf(delta, "maintain.alg2.lookups"));
  }
  EXPECT_GT(lookups[0], 0u);
  EXPECT_EQ(lookups[0], lookups[1]);
}

// Recognition on the paper's flagship examples must drive every phase the
// pipeline owns: KEP rounds, closure computations and (once the partition
// is merged) independence tests on the induced scheme.
TEST(ObsInvariantsTest, RecognitionTouchesAllPhases) {
  IRD_REQUIRE_OBS();
  for (const char* name : {"Example1R", "Example11", "Example12"}) {
    DatabaseScheme scheme = name == std::string_view("Example1R")
                                ? test::Example1R()
                                : name == std::string_view("Example11")
                                      ? test::Example11()
                                      : test::Example12();
    obs::Snapshot delta =
        Measure([&] { EXPECT_TRUE(IsIndependenceReducible(scheme)) << name; });
    EXPECT_GT(DeltaOf(delta, "kep.rounds"), 0u) << name;
    EXPECT_GT(DeltaOf(delta, "closure.computations"), 0u) << name;
    EXPECT_GT(DeltaOf(delta, "recognition.independence_tests"), 0u) << name;
    EXPECT_GT(DeltaOf(delta, "recognition.runs"), 0u) << name;
  }
}

}  // namespace
}  // namespace ird
