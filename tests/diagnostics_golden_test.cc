// Golden-file tests for the diagnostics engine over the anchor corpus.
// Each tests/corpus/anchor-*.scheme has a tests/golden/<name>.golden file
// holding one witness *signature* per line (sorted). Comparison is
// structural — Diagnostic::Signature is built from witness fields, never
// message wording — so reports may be reworded freely without churning the
// goldens, while any change to what the rules find is a diff.
//
// Regenerate after an intentional rule change with:
//   IRD_UPDATE_GOLDENS=1 ./build/tests/diagnostics_golden_test

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "diagnostics/lint.h"
#include "diagnostics/verify.h"
#include "gtest/gtest.h"
#include "oracle/corpus.h"

#ifndef IRD_CORPUS_DIR
#define IRD_CORPUS_DIR "tests/corpus"
#endif
#ifndef IRD_GOLDEN_DIR
#define IRD_GOLDEN_DIR "tests/golden"
#endif

namespace ird::diagnostics {
namespace {

bool IsAnchor(const std::string& filename) {
  return filename.rfind("anchor-", 0) == 0;
}

// "anchor-example2-rejected-triangle.scheme" -> golden basename.
std::string GoldenPath(const std::string& filename) {
  std::string stem = filename.substr(0, filename.rfind(".scheme"));
  return std::string(IRD_GOLDEN_DIR) + "/" + stem + ".golden";
}

std::vector<std::string> Signatures(const DatabaseScheme& scheme) {
  LintReport report = LintScheme(scheme);
  std::vector<std::string> out;
  out.reserve(report.diagnostics.size());
  for (const Diagnostic& d : report.diagnostics) {
    out.push_back(d.Signature(scheme));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::string>> ReadGolden(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFound("no golden file: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(DiagnosticsGolden, AnchorsMatchAndVerify) {
  auto corpus = oracle::LoadCorpus(IRD_CORPUS_DIR);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  const bool update = std::getenv("IRD_UPDATE_GOLDENS") != nullptr;
  size_t anchors = 0;
  for (const oracle::CorpusEntry& entry : *corpus) {
    if (!IsAnchor(entry.filename)) continue;
    ++anchors;
    SCOPED_TRACE(entry.filename);

    // Every anchor's report must pass independent witness verification.
    EXPECT_TRUE(LintSelfCheck(entry.scheme).ok());

    std::vector<std::string> got = Signatures(entry.scheme);
    const std::string path = GoldenPath(entry.filename);
    if (update) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << "# " << entry.filename << ": sorted witness signatures\n";
      for (const std::string& sig : got) out << sig << "\n";
      continue;
    }
    auto want = ReadGolden(path);
    ASSERT_TRUE(want.ok()) << want.status().ToString()
                           << " (run with IRD_UPDATE_GOLDENS=1 to create)";
    EXPECT_EQ(got, *want);
  }
  // All eight anchors must be present — a silently shrinking corpus would
  // otherwise hollow the test out.
  EXPECT_GE(anchors, 8u);
}

// The acceptance criterion of the rejected triangle spelled out: at least
// one human-readable rejection explanation backed by a concrete witness.
TEST(DiagnosticsGolden, RejectedTriangleHasRejectionExplanation) {
  auto corpus = oracle::LoadCorpus(IRD_CORPUS_DIR);
  ASSERT_TRUE(corpus.ok());
  for (const oracle::CorpusEntry& entry : *corpus) {
    if (entry.filename != "anchor-example2-rejected-triangle.scheme") continue;
    LintReport report = LintScheme(entry.scheme);
    size_t rejections = 0;
    for (const Diagnostic& d : report.diagnostics) {
      if (d.rule != RuleId::kRecognitionRejected) continue;
      ++rejections;
      EXPECT_FALSE(d.message.empty());
      EXPECT_TRUE(VerifyWitness(entry.scheme, d).ok());
    }
    EXPECT_GE(rejections, 1u);
    return;
  }
  FAIL() << "anchor-example2-rejected-triangle.scheme missing from corpus";
}

}  // namespace
}  // namespace ird::diagnostics
