// The Theorem 3.4 construction (Lemmas 3.5-3.7): adversarial instances on
// split schemes, verified against the chase.

#include <gtest/gtest.h>

#include "core/ctm_maintainer.h"
#include "core/key_equivalent_maintainer.h"
#include "core/split.h"
#include "core/split_witness.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;

void VerifyWitness(const DatabaseScheme& s, const SplitWitness& w) {
  // Lemma 3.5 / 3.7(a): the base state is consistent.
  EXPECT_TRUE(IsConsistent(w.state)) << s.ToString();
  // Lemma 3.6 / 3.7(c): adding u breaks it.
  EXPECT_FALSE(WouldRemainConsistent(w.state, w.insert_rel, w.insert))
      << s.ToString();
  // Lemma 3.7(b): without the covering fragments s_l, u is fine — the
  // inconsistency genuinely needs tuples that share no key value with u.
  DatabaseState without_cover(s);
  for (size_t rel = 0; rel < w.state.relation_count(); ++rel) {
    bool is_cover = false;
    for (size_t cover_rel : w.covering_relations) {
      if (rel == cover_rel) is_cover = true;
    }
    if (is_cover) continue;
    for (const PartialTuple& t : w.state.relation(rel).tuples()) {
      without_cover.mutable_relation(rel).AddUnique(t);
    }
  }
  EXPECT_TRUE(WouldRemainConsistent(without_cover, w.insert_rel, w.insert))
      << s.ToString();
  // Algorithm 2 (correct for every key-equivalent scheme) rejects u.
  Result<KeyEquivalentMaintainer> alg2 =
      KeyEquivalentMaintainer::Create(w.state);
  ASSERT_TRUE(alg2.ok());
  EXPECT_FALSE(alg2->CheckInsert(w.insert_rel, w.insert).ok());
}

TEST(SplitWitnessTest, Example4) {
  DatabaseScheme s = test::Example4();
  Result<SplitWitness> w = BuildSplitWitness(s, Attrs(s, "BC"));
  ASSERT_TRUE(w.ok());
  VerifyWitness(s, *w);
}

TEST(SplitWitnessTest, Example8) {
  DatabaseScheme s = test::Example8();
  Result<SplitWitness> w = BuildSplitWitness(s, Attrs(s, "BC"));
  ASSERT_TRUE(w.ok());
  VerifyWitness(s, *w);
}

TEST(SplitWitnessTest, GeneratedSplitFamily) {
  for (size_t k : {2u, 3u, 4u, 6u}) {
    DatabaseScheme s = MakeSplitScheme(k);
    std::vector<AttributeSet> split = SplitKeys(s);
    ASSERT_EQ(split.size(), 1u);
    Result<SplitWitness> w = BuildSplitWitness(s, split[0]);
    ASSERT_TRUE(w.ok()) << k;
    VerifyWitness(s, *w);
  }
}

TEST(SplitWitnessTest, RawKeyProbesMissTheWitness) {
  // The witness defeats Algorithm 5's raw-state probes (Theorem 3.4's
  // whole point): the probes accept u while the chase rejects it.
  DatabaseScheme s = MakeSplitScheme(3);
  std::vector<AttributeSet> split = SplitKeys(s);
  ASSERT_EQ(split.size(), 1u);
  Result<SplitWitness> w = BuildSplitWitness(s, split[0]);
  ASSERT_TRUE(w.ok());
  Result<StateKeyIndex> idx = StateKeyIndex::Build(w->state);
  ASSERT_TRUE(idx.ok());
  Result<PartialTuple> probe_verdict =
      CheckInsertCtm(s, *idx, w->insert_rel, w->insert);
  EXPECT_TRUE(probe_verdict.ok())
      << "the split derivation is invisible to raw key probes";
  EXPECT_FALSE(WouldRemainConsistent(w->state, w->insert_rel, w->insert));
}

TEST(SplitWitnessTest, RefusesSplitFreeKeys) {
  DatabaseScheme s = test::Example9();
  Result<SplitWitness> w = BuildSplitWitness(s, Attrs(s, "A"));
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ird
