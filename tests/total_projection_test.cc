#include <gtest/gtest.h>

#include "core/total_projection.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;
using test::Tuple;

// The bounded expression's answer must equal the chase ground truth.
void ExpectBoundedMatchesChase(const DatabaseState& state,
                               const RecognitionResult& recognition,
                               const AttributeSet& x) {
  Result<PartialRelation> expected = TotalProjectionByChase(state, x);
  ASSERT_TRUE(expected.ok());
  PartialRelation actual = TotalProjection(state, recognition, x);
  EXPECT_TRUE(actual.SetEquals(*expected))
      << "X=" << state.universe().Format(x)
      << "\n  bounded: " << actual.ToString(state.universe())
      << "\n  chase:   " << expected->ToString(state.universe());
}

TEST(TotalProjectionTest, Example4AEExpression) {
  // Example 4: [AE] = R3 ∪ π_AE(R1 ⋈ R2 ⋈ (R4 ⋈ R5)).
  DatabaseScheme s = test::Example4();
  std::vector<size_t> pool = {0, 1, 2, 3, 4, 5, 6};
  ExprPtr expr = BuildKeyEquivalentProjectionExpr(s, pool, Attrs(s, "AE"));
  ASSERT_NE(expr, nullptr);
  // Evaluate on Example 7's state: the AE-total tuples are (a, e1) via the
  // deep derivation.
  constexpr Value a = 1, b = 2, c = 3, e1 = 11, e2 = 12;
  DatabaseState state(s);
  state.mutable_relation(0).Add(Tuple(s, "AB", {a, b}));
  state.mutable_relation(1).Add(Tuple(s, "AC", {a, c}));
  state.mutable_relation(3).Add(Tuple(s, "EB", {e1, b}));
  state.mutable_relation(3).Add(Tuple(s, "EB", {e2, b}));
  state.mutable_relation(4).Add(Tuple(s, "EC", {e1, c}));
  PartialRelation result = Evaluate(*expr, state);
  Result<PartialRelation> expected =
      TotalProjectionByChase(state, Attrs(s, "AE"));
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(result.SetEquals(*expected));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.tuples()[0], Tuple(s, "AE", {a, e1}));
}

TEST(TotalProjectionTest, NoCoverMeansEmpty) {
  // Two disconnected relations: {A,C} has no lossless covering subset, and
  // the chase indeed never produces AC-total tuples.
  DatabaseScheme s = DatabaseScheme::Create();
  s.AddRelation("R1", "AB", {"A"});
  s.AddRelation("R2", "CD", {"C"});
  RecognitionResult r = RecognizeIndependenceReducible(s);
  ASSERT_TRUE(r.accepted);
  ExprPtr expr = BuildBoundedProjectionExpr(s, r, Attrs(s, "AC"));
  EXPECT_EQ(expr, nullptr);
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R2", {3, 4});
  Result<PartialRelation> chase =
      TotalProjectionByChase(state, Attrs(s, "AC"));
  ASSERT_TRUE(chase.ok());
  EXPECT_TRUE(chase->empty());
  PartialRelation bounded = TotalProjection(state, r, Attrs(s, "AC"));
  EXPECT_TRUE(bounded.empty());
}

TEST(TotalProjectionTest, CrossBlockExtensionThroughBridgeKey) {
  // On Example 11, [GA] IS computable: block-1 tuples total on D extend
  // through D2's key D into G (the D1 ⋈ D2 join is lossless because D is a
  // key of D2).
  DatabaseScheme s = test::Example11();
  RecognitionResult r = RecognizeIndependenceReducible(s);
  ASSERT_TRUE(r.accepted);
  ExprPtr expr = BuildBoundedProjectionExpr(s, r, Attrs(s, "GA"));
  ASSERT_NE(expr, nullptr);
  DatabaseState state(s);
  state.Insert("R4", {1, 2});  // A=1 D=2
  state.mutable_relation(5).Add(Tuple(s, "DEG", {2, 3, 4}));
  PartialRelation bounded = Evaluate(*expr, state);
  ASSERT_EQ(bounded.size(), 1u);
  ExpectBoundedMatchesChase(state, r, Attrs(s, "GA"));
}

TEST(TotalProjectionTest, Example12ACGProjection) {
  // Example 12: the ACG-total projection on the Example 11 scheme shape.
  // (Example 12 uses one-way keys; Example 11's bidirectional triangle
  // only makes the block richer — the construction is the same.)
  DatabaseScheme s = test::Example11();
  RecognitionResult r = RecognizeIndependenceReducible(s);
  ASSERT_TRUE(r.accepted);
  ExprPtr expr = BuildBoundedProjectionExpr(s, r, Attrs(s, "ACG"));
  ASSERT_NE(expr, nullptr);
  DatabaseState state(s);
  constexpr Value a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7;
  state.Insert("R1", {a, b});
  state.Insert("R2", {b, c});
  state.Insert("R4", {a, d});
  state.mutable_relation(4).Add(Tuple(s, "DEF", {d, e, f}));
  state.mutable_relation(5).Add(Tuple(s, "DEG", {d, e, g}));
  PartialRelation result = Evaluate(*expr, state);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.tuples()[0], Tuple(s, "ACG", {a, c, g}));
  ExpectBoundedMatchesChase(state, r, Attrs(s, "ACG"));
}

TEST(TotalProjectionTest, Example12VerbatimYSets) {
  // Example 12, line by line: D = {D1(ABCD), D2(DEFG)}; for the ACG-total
  // projection the paper computes Y1 = D1 ∩ (D2 ∪ ACG) = ACD and
  // Y2 = D2 ∩ (D1 ∪ ACG) = DG, and the expression
  // π_ACG([Y1] ⋈ [Y2]) with [Y1] = π_ACD(R1 ⋈ R2 ⋈ R4) ∪ π_ACD(R3 ⋈ R4)
  // and [Y2] = π_DG(R6).
  DatabaseScheme s = test::Example12();
  RecognitionResult r = RecognizeIndependenceReducible(s);
  ASSERT_TRUE(r.accepted);
  ASSERT_EQ(r.partition.size(), 2u);
  EXPECT_EQ(r.partition[0], (std::vector<size_t>{0, 1, 2, 3}));
  EXPECT_EQ(r.induced->relation(0).attrs, Attrs(s, "ABCD"));
  EXPECT_EQ(r.induced->relation(1).attrs, Attrs(s, "DEFG"));
  // The paper's Y sets, recomputed the way the builder does.
  AttributeSet acg = Attrs(s, "ACG");
  AttributeSet y1 =
      r.induced->relation(0).attrs.Intersect(
          r.induced->relation(1).attrs.Union(acg));
  AttributeSet y2 =
      r.induced->relation(1).attrs.Intersect(
          r.induced->relation(0).attrs.Union(acg));
  EXPECT_EQ(y1, Attrs(s, "ACD"));
  EXPECT_EQ(y2, Attrs(s, "DG"));
  // Evaluate against the paper's derivation on a concrete state.
  constexpr Value a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7;
  DatabaseState state(s);
  state.mutable_relation(0).Add(Tuple(s, "AB", {a, b}));
  state.mutable_relation(1).Add(Tuple(s, "BC", {b, c}));
  state.mutable_relation(3).Add(Tuple(s, "AD", {a, d}));
  state.mutable_relation(4).Add(Tuple(s, "DEF", {d, e, f}));
  state.mutable_relation(5).Add(Tuple(s, "DEG", {d, e, g}));
  ExprPtr expr = BuildBoundedProjectionExpr(s, r, acg);
  ASSERT_NE(expr, nullptr);
  PartialRelation result = Evaluate(*expr, state);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.tuples()[0], Tuple(s, "ACG", {a, c, g}));
  ExpectBoundedMatchesChase(state, r, acg);
  // The second branch of [Y1] (through R3 ⋈ R4) also works alone.
  DatabaseState state2(s);
  state2.mutable_relation(2).Add(Tuple(s, "AC", {a, c}));
  state2.mutable_relation(3).Add(Tuple(s, "AD", {a, d}));
  state2.mutable_relation(5).Add(Tuple(s, "DEG", {d, e, g}));
  ExpectBoundedMatchesChase(state2, r, acg);
}

TEST(TotalProjectionTest, EndToEndApiRejectsBadSchemes) {
  DatabaseState state(test::Example2());
  Result<PartialRelation> r =
      TotalProjection(state, Attrs(state.scheme(), "AB"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TotalProjectionTest, MatchesChaseOnGeneratedStatesAndTargets) {
  // The central boundedness property test: for accepted schemes, random
  // consistent states and assorted X, the Theorem 4.1 expression computes
  // exactly [X].
  std::vector<DatabaseScheme> schemes = {
      test::Example1R(), test::Example4(), test::Example6(),
      test::Example11(), MakeChainScheme(3), MakeSplitScheme(2),
      MakeBlockScheme(2, 2), MakeIndependentScheme(3), MakeStarScheme(3)};
  std::mt19937_64 rng(7);
  for (const DatabaseScheme& s : schemes) {
    RecognitionResult r = RecognizeIndependenceReducible(s);
    ASSERT_TRUE(r.accepted) << s.ToString();
    StateGenOptions opt;
    opt.entities = 15;
    opt.coverage = 0.55;
    opt.seed = 21;
    DatabaseState state = MakeConsistentState(s, opt);
    // Targets: all relation schemes, all keys, and 6 random subsets.
    std::vector<AttributeSet> targets;
    for (const RelationScheme& rel : s.relations()) {
      targets.push_back(rel.attrs);
    }
    for (const auto& [rel, key] : s.AllKeys()) {
      targets.push_back(key);
    }
    std::vector<AttributeId> all = s.AllAttrs().ToVector();
    for (int i = 0; i < 6; ++i) {
      AttributeSet x;
      for (AttributeId attr : all) {
        if (rng() % 3 == 0) x.Add(attr);
      }
      if (x.Empty()) x.Add(all[rng() % all.size()]);
      targets.push_back(x);
    }
    for (const AttributeSet& x : targets) {
      ExpectBoundedMatchesChase(state, r, x);
    }
  }
}

TEST(TotalProjectionTest, ExpressionSizeIsStateIndependent) {
  // Boundedness: the expression depends only on R and F.
  DatabaseScheme s = test::Example11();
  RecognitionResult r = RecognizeIndependenceReducible(s);
  ExprPtr e1 = BuildBoundedProjectionExpr(s, r, Attrs(s, "ACG"));
  ASSERT_NE(e1, nullptr);
  size_t nodes = e1->NodeCount();
  // Rebuilt for any state (there is no state input at all): stable size.
  ExprPtr e2 = BuildBoundedProjectionExpr(s, r, Attrs(s, "ACG"));
  EXPECT_EQ(e2->NodeCount(), nodes);
}

}  // namespace
}  // namespace ird
