#include <gtest/gtest.h>

#include "base/universe.h"
#include "fd/fd_set.h"
#include "fd/key_finder.h"

namespace ird {
namespace {

// Fixture with the textbook universe ABCDEG.
class FdTest : public ::testing::Test {
 protected:
  AttributeSet S(std::string_view letters) { return u_.Chars(letters); }

  Universe u_;
};

TEST_F(FdTest, TrivialAndEmbedded) {
  FunctionalDependency fd(S("AB"), S("A"));
  EXPECT_TRUE(fd.IsTrivial());
  FunctionalDependency fd2(S("A"), S("B"));
  EXPECT_FALSE(fd2.IsTrivial());
  EXPECT_TRUE(fd2.IsEmbeddedIn(S("ABC")));
  EXPECT_FALSE(fd2.IsEmbeddedIn(S("AC")));
}

TEST_F(FdTest, ClosureBasic) {
  FdSet f;
  f.Add(S("A"), S("B"));
  f.Add(S("B"), S("C"));
  EXPECT_EQ(f.Closure(S("A")), S("ABC"));
  EXPECT_EQ(f.Closure(S("B")), S("BC"));
  EXPECT_EQ(f.Closure(S("C")), S("C"));
  EXPECT_EQ(f.Closure(S("")), S(""));
}

TEST_F(FdTest, ClosureNeedsJointLeftSides) {
  FdSet f;
  f.Add(S("AB"), S("C"));
  f.Add(S("C"), S("D"));
  EXPECT_EQ(f.Closure(S("A")), S("A"));
  EXPECT_EQ(f.Closure(S("AB")), S("ABCD"));
}

TEST_F(FdTest, ClosureCascades) {
  // A -> B, BC -> D with C present only transitively: A -> C, then BC fires.
  FdSet f;
  f.Add(S("A"), S("B"));
  f.Add(S("A"), S("C"));
  f.Add(S("BC"), S("D"));
  EXPECT_EQ(f.Closure(S("A")), S("ABCD"));
}

TEST_F(FdTest, ImpliesAndCovers) {
  FdSet f;
  f.Add(S("A"), S("B"));
  f.Add(S("B"), S("C"));
  EXPECT_TRUE(f.Implies(S("A"), S("C")));
  EXPECT_FALSE(f.Implies(S("C"), S("A")));
  FdSet g;
  g.Add(S("A"), S("BC"));
  EXPECT_TRUE(f.Covers(g));
  EXPECT_FALSE(g.Covers(f));  // g cannot derive B -> C
  EXPECT_FALSE(f.EquivalentTo(g));
}

TEST_F(FdTest, EquivalentCoversBothWays) {
  FdSet f;
  f.Add(S("A"), S("B"));
  f.Add(S("A"), S("C"));
  FdSet g;
  g.Add(S("A"), S("BC"));
  EXPECT_TRUE(f.EquivalentTo(g));
}

TEST_F(FdTest, StandardFormSplitsRightSides) {
  FdSet f;
  f.Add(S("A"), S("ABC"));  // trivial A part must drop
  FdSet std_form = f.StandardForm();
  EXPECT_EQ(std_form.size(), 2u);
  for (const FunctionalDependency& fd : std_form.fds()) {
    EXPECT_EQ(fd.rhs.Count(), 1u);
    EXPECT_FALSE(fd.IsTrivial());
  }
  EXPECT_TRUE(std_form.EquivalentTo(f));
}

TEST_F(FdTest, MinimalCoverRemovesRedundantFd) {
  FdSet f;
  f.Add(S("A"), S("B"));
  f.Add(S("B"), S("C"));
  f.Add(S("A"), S("C"));  // implied by transitivity
  FdSet minimal = f.MinimalCover();
  EXPECT_EQ(minimal.size(), 2u);
  EXPECT_TRUE(minimal.EquivalentTo(f));
}

TEST_F(FdTest, MinimalCoverShrinksLeftSides) {
  FdSet f;
  f.Add(S("A"), S("B"));
  f.Add(S("AB"), S("C"));  // B is extraneous
  FdSet minimal = f.MinimalCover();
  EXPECT_TRUE(minimal.EquivalentTo(f));
  for (const FunctionalDependency& fd : minimal.fds()) {
    EXPECT_EQ(fd.lhs, S("A"));
  }
}

TEST_F(FdTest, ProjectOntoKeepsEmbeddedConsequences) {
  // A -> B -> C; projecting onto AC must retain A -> C.
  FdSet f;
  f.Add(S("A"), S("B"));
  f.Add(S("B"), S("C"));
  FdSet projected = f.ProjectOnto(S("AC"));
  EXPECT_TRUE(projected.Implies(S("A"), S("C")));
  EXPECT_FALSE(projected.Implies(S("C"), S("A")));
  // Everything projected must be implied by f and embedded in AC.
  for (const FunctionalDependency& fd : projected.fds()) {
    EXPECT_TRUE(f.Implies(fd));
    EXPECT_TRUE(fd.IsEmbeddedIn(S("AC")));
  }
}

TEST_F(FdTest, ProjectOntoDropsOutsideDependencies) {
  FdSet f;
  f.Add(S("A"), S("B"));
  FdSet projected = f.ProjectOnto(S("AC"));
  EXPECT_FALSE(projected.Implies(S("A"), S("C")));
  EXPECT_TRUE(projected.Implies(S("A"), S("A")));  // trivial only
}

TEST_F(FdTest, EmbeddedInFilters) {
  FdSet f;
  f.Add(S("A"), S("B"));
  f.Add(S("C"), S("D"));
  FdSet embedded = f.EmbeddedIn(S("ABD"));
  EXPECT_EQ(embedded.size(), 1u);
  EXPECT_EQ(embedded.fds()[0].lhs, S("A"));
}

TEST_F(FdTest, IsCandidateKey) {
  FdSet f;
  f.Add(S("A"), S("BC"));
  EXPECT_TRUE(IsCandidateKey(S("A"), S("ABC"), f));
  EXPECT_FALSE(IsCandidateKey(S("AB"), S("ABC"), f));  // not minimal
  EXPECT_FALSE(IsCandidateKey(S("B"), S("ABC"), f));   // not a superkey
  EXPECT_FALSE(IsCandidateKey(S("D"), S("ABC"), f));   // outside the scheme
}

TEST_F(FdTest, ReduceToKeyDropsExtraneousAttributes) {
  FdSet f;
  f.Add(S("A"), S("BC"));
  EXPECT_EQ(ReduceToKey(S("ABC"), S("ABC"), f), S("A"));
}

TEST_F(FdTest, FindCandidateKeysTextbook) {
  // R(ABCD), F = {A -> B, B -> A, AC -> D}: keys are AC and BC.
  FdSet f;
  f.Add(S("A"), S("B"));
  f.Add(S("B"), S("A"));
  f.Add(S("AC"), S("D"));
  std::vector<AttributeSet> keys = FindCandidateKeys(S("ABCD"), f);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_TRUE((keys[0] == S("AC") && keys[1] == S("BC")) ||
              (keys[0] == S("BC") && keys[1] == S("AC")));
}

TEST_F(FdTest, FindCandidateKeysWholeSchemeWhenNoFds) {
  FdSet f;
  std::vector<AttributeSet> keys = FindCandidateKeys(S("AB"), f);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], S("AB"));
}

TEST_F(FdTest, FindCandidateKeysAllSingletons) {
  // A <-> B <-> C: every attribute is a key.
  FdSet f;
  f.Add(S("A"), S("B"));
  f.Add(S("B"), S("C"));
  f.Add(S("C"), S("A"));
  std::vector<AttributeSet> keys = FindCandidateKeys(S("ABC"), f);
  EXPECT_EQ(keys.size(), 3u);
  for (const AttributeSet& k : keys) {
    EXPECT_EQ(k.Count(), 1u);
  }
}

}  // namespace
}  // namespace ird
