// The delta-driven chase engine (tableau/chase.cc) against its two
// reference implementations: the retired pass-based oracle::PassChaseFds
// and the definition-literal oracle::NaiveChase. Parity on every paper
// example and corpus anchor, the inconsistency early-return, the
// merge-cascade repair path, and the engine's own counter invariants.

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/attribute_set.h"
#include "base/universe.h"
#include "fd/fd_set.h"
#include "oracle/chase_check.h"
#include "oracle/corpus.h"
#include "oracle/naive_chase.h"
#include "oracle/pass_chase.h"
#include "relation/database_state.h"
#include "relation/weak_instance.h"
#include "tableau/chase.h"
#include "tableau/tableau.h"
#include "tests/test_util.h"
#include "workload/generators.h"

#ifndef IRD_CORPUS_DIR
#define IRD_CORPUS_DIR "tests/corpus"
#endif

namespace ird {
namespace {

struct NamedScheme {
  const char* name;
  DatabaseScheme scheme;
};

// Every worked-example fixture the suite defines (Examples 5, 7 and 10
// reuse the schemes of 4 and 3; see tests/test_util.h).
std::vector<NamedScheme> PaperExamples() {
  std::vector<NamedScheme> out;
  out.push_back({"Example1R", test::Example1R()});
  out.push_back({"Example1S", test::Example1S()});
  out.push_back({"Example2", test::Example2()});
  out.push_back({"Example3", test::Example3()});
  out.push_back({"Example4", test::Example4()});
  out.push_back({"Example6", test::Example6()});
  out.push_back({"Example8", test::Example8()});
  out.push_back({"Example9", test::Example9()});
  out.push_back({"Example11", test::Example11()});
  out.push_back({"Example12", test::Example12()});
  out.push_back({"Example13", test::Example13()});
  return out;
}

// A small random state (possibly inconsistent): tiny domain, so key
// collisions and genuine merge cascades are common.
DatabaseState MakeNoisyState(const DatabaseScheme& scheme, size_t tuples,
                             uint64_t seed) {
  std::mt19937_64 rng(seed);
  DatabaseState state(scheme);
  for (size_t n = 0; n < tuples; ++n) {
    size_t rel = rng() % scheme.size();
    const AttributeSet& attrs = scheme.relation(rel).attrs;
    std::vector<Value> values;
    for (size_t i = 0; i < attrs.Count(); ++i) {
      values.push_back(static_cast<Value>(rng() % 4 + 1));
    }
    state.mutable_relation(rel).AddUnique(
        PartialTuple(attrs, std::move(values)));
  }
  return state;
}

// ChaseSelfCheck runs all three implementations on the scheme tableau, a
// generated consistent state and four noisy states, and compares the
// consistency verdicts, the equate counts and the canonical tableaux.
TEST(ChaseEngineTest, AgreesWithOraclesOnPaperExamples) {
  for (const NamedScheme& example : PaperExamples()) {
    for (uint64_t seed = 0; seed < 3; ++seed) {
      Status ok = oracle::ChaseSelfCheck(example.scheme, seed);
      EXPECT_TRUE(ok.ok()) << example.name << " seed " << seed << ": "
                           << ok.ToString();
    }
  }
}

TEST(ChaseEngineTest, AgreesWithOraclesOnCorpusAnchors) {
  Result<std::vector<oracle::CorpusEntry>> corpus =
      oracle::LoadCorpus(IRD_CORPUS_DIR);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  ASSERT_FALSE(corpus->empty()) << "corpus dir " << IRD_CORPUS_DIR;
  for (const oracle::CorpusEntry& entry : *corpus) {
    Status ok = oracle::ChaseSelfCheck(entry.scheme, 7);
    EXPECT_TRUE(ok.ok()) << entry.filename << ": " << ok.ToString();
  }
}

// Substrate parity sweep: the struct-of-arrays cell buffer, arena-backed
// symbol table and merge log must be invisible to every oracle. Each
// ChaseSelfCheck run compares verdicts, equate counts, and the canonical
// tableaux of all three implementations on generated and noisy states, so
// a row-layout or union-find storage bug that changes any observable chase
// output fails here even if the paper examples happen to mask it.
TEST(ChaseEngineTest, SoaSubstrateParitySweep) {
  Result<std::vector<oracle::CorpusEntry>> corpus =
      oracle::LoadCorpus(IRD_CORPUS_DIR);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  for (const oracle::CorpusEntry& entry : *corpus) {
    for (uint64_t seed : {11u, 23u, 40u}) {
      Status ok = oracle::ChaseSelfCheck(entry.scheme, seed);
      EXPECT_TRUE(ok.ok()) << entry.filename << " seed " << seed << ": "
                           << ok.ToString();
    }
  }
}

// Two tuples clashing on a key: all three implementations must return
// inconsistent. The delta-driven engine returns the moment Equate fails —
// mid-seed or mid-drain — without canonicalizing, so only the verdict is
// compared.
TEST(ChaseEngineTest, InconsistencyEarlyReturnParity) {
  DatabaseScheme scheme = test::Example9();  // chain, singleton keys
  DatabaseState state(scheme);
  const AttributeSet& attrs = scheme.relation(0).attrs;
  state.mutable_relation(0).AddUnique(PartialTuple(attrs, {1, 2}));
  state.mutable_relation(0).AddUnique(PartialTuple(attrs, {1, 3}));

  Tableau incremental = StateTableau(state);
  Tableau pass = StateTableau(state);
  Tableau naive = StateTableau(state);
  ChaseStats inc_stats = ChaseFds(&incremental, scheme.key_dependencies());
  EXPECT_FALSE(inc_stats.consistent);
  EXPECT_FALSE(
      oracle::PassChaseFds(&pass, scheme.key_dependencies()).consistent);
  EXPECT_FALSE(oracle::NaiveChase(&naive, scheme.key_dependencies()));
}

// Merge-cascade regression across three FDs: the only seedable collision is
// on column A; its merge makes rows 0 and 1 agree on B, whose merge makes
// them agree on C, whose merge equates their D symbols. Each step merges
// INTO a class that was a singleton in its column before the cascade — the
// exact case the winner-singleton repair rule exists for. The FDs are
// inserted in reverse chain order so the B→C and C→D probes land *after*
// their seed turn has passed: the seed scan skips them (singleton keys) and
// every cascade probe is driven by the merge log alone.
TEST(ChaseEngineTest, MergeCascadeAcrossThreeFds) {
  Universe u;
  AttributeId A = u.Intern("A");
  AttributeId B = u.Intern("B");
  AttributeId C = u.Intern("C");
  AttributeId D = u.Intern("D");
  FdSet fds;
  fds.Add(AttributeSet({C}), AttributeSet({D}));
  fds.Add(AttributeSet({B}), AttributeSet({C}));
  fds.Add(AttributeSet({A}), AttributeSet({B}));

  Tableau t(4);
  SymId a = t.Constant(1);
  // Row 0 is fully constant; row 1 shares only the A value.
  t.AddRow({a, t.Constant(2), t.Constant(3), t.Constant(4)});
  t.AddRow({a, t.FreshNdv(), t.FreshNdv(), t.FreshNdv()});

  Tableau reference = t;
  ChaseStats stats = ChaseFds(&t, fds);
  ASSERT_TRUE(stats.consistent);
  // b_B := c2, then b_C := c3, then b_D := c4.
  EXPECT_EQ(stats.rule_applications, 3u);
  EXPECT_EQ(stats.index_repairs, 3u);
  // The seed scan probes only the two A→B rows (every other key is a
  // singleton in its column); the cascade's four probes — both rows of
  // B→C and of C→D — are all merge-driven worklist work.
  EXPECT_EQ(stats.seed_probes, 2u);
  EXPECT_GE(stats.reprobes, 4u);
  for (AttributeId c : {A, B, C, D}) {
    EXPECT_EQ(t.Cell(0, c), t.Cell(1, c)) << "column " << u.Name(c);
  }

  ASSERT_TRUE(oracle::NaiveChase(&reference, fds));
  reference.Canonicalize();
  EXPECT_EQ(t.ToString(u), reference.ToString(u));
}

// Counter invariants on real workloads: every merge is repaired exactly
// once, probes dominate merges, and a second chase of an already-chased
// tableau merges nothing.
TEST(ChaseEngineTest, StatsInvariantsOnNoisyStates) {
  for (const NamedScheme& example : PaperExamples()) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      DatabaseState state = MakeNoisyState(example.scheme, 12, seed + 11);
      Tableau t = StateTableau(state);
      ChaseStats stats = ChaseFds(&t, example.scheme.key_dependencies());
      if (!stats.consistent) continue;
      EXPECT_EQ(stats.index_repairs, stats.rule_applications)
          << example.name << " seed " << seed;
      EXPECT_GE(stats.seed_probes + stats.reprobes, stats.rule_applications)
          << example.name << " seed " << seed;
      ChaseStats again = ChaseFds(&t, example.scheme.key_dependencies());
      EXPECT_TRUE(again.consistent) << example.name << " seed " << seed;
      EXPECT_EQ(again.rule_applications, 0u)
          << example.name << " seed " << seed;
      EXPECT_EQ(again.reprobes, 0u) << example.name << " seed " << seed;
      EXPECT_EQ(again.worklist_max, 0u) << example.name << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace ird
