#include <gtest/gtest.h>

#include "core/block_maintainer.h"
#include "core/ctm_maintainer.h"
#include "core/key_equivalent_maintainer.h"
#include "core/split.h"
#include "core/tuple_extension.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;
using test::Tuple;

// --- Algorithm 2 (algebraic maintenance) ------------------------------------

TEST(Algorithm2Test, Example6RejectsTheInsert) {
  // Example 6: state {<a,c> in R2, <b,d> in R5, <c,d,e> in R6}; inserting
  // <a, b, e'> into R1(ABE) must output "no": the keys A, B, E yield
  // <a,c>, <b,d>, <e'>, then the key CD yields <c,d,e> and e ≠ e'.
  DatabaseScheme s = test::Example6();
  constexpr Value a = 1, b = 2, c = 3, d = 4, e = 5, e2 = 6;
  DatabaseState state(s);
  state.mutable_relation(1).Add(Tuple(s, "AC", {a, c}));
  state.mutable_relation(4).Add(Tuple(s, "BD", {b, d}));
  state.mutable_relation(5).Add(Tuple(s, "CDE", {c, d, e}));
  Result<KeyEquivalentMaintainer> m =
      KeyEquivalentMaintainer::Create(std::move(state));
  ASSERT_TRUE(m.ok());
  Result<PartialTuple> verdict =
      m->CheckInsert(0, Tuple(s, "ABE", {a, b, e2}));
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kInconsistent);
  // Inserting with the matching E value is fine.
  EXPECT_TRUE(m->CheckInsert(0, Tuple(s, "ABE", {a, b, e})).ok());
}

TEST(Algorithm2Test, Example7RejectsTheInsert) {
  // Example 7: r1={<a,b>}, r2={<a,c>}, r4={<e1,b>,...,<en,b>}, r5={<e1,c>}.
  // The total tuple embedding "a" is <a,b,c,e1>, derived through the chain
  // E -> B/C, then BC -> D, D -> A (the expression
  // σ_{A=a}(R1 ⋈ R2 ⋈ (R4 ⋈ R5)) of the paper). Inserting <a,e> into
  // R3(AE) is therefore inconsistent; <a,e1> is fine.
  DatabaseScheme s = test::Example4();
  constexpr Value a = 1, b = 2, c = 3, e = 10, e1 = 11, e2 = 12, e3 = 13;
  DatabaseState state(s);
  state.mutable_relation(0).Add(Tuple(s, "AB", {a, b}));
  state.mutable_relation(1).Add(Tuple(s, "AC", {a, c}));
  state.mutable_relation(3).Add(Tuple(s, "EB", {e1, b}));
  state.mutable_relation(3).Add(Tuple(s, "EB", {e2, b}));
  state.mutable_relation(3).Add(Tuple(s, "EB", {e3, b}));
  state.mutable_relation(4).Add(Tuple(s, "EC", {e1, c}));
  Result<KeyEquivalentMaintainer> m =
      KeyEquivalentMaintainer::Create(std::move(state));
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->CheckInsert(2, Tuple(s, "AE", {a, e})).ok());
  Result<PartialTuple> accept = m->CheckInsert(2, Tuple(s, "AE", {a, e1}));
  ASSERT_TRUE(accept.ok());
  EXPECT_EQ(accept->At(s.universe().Find("B").value()), b);
}

TEST(Algorithm2Test, AcceptReturnsExtendedTuple) {
  DatabaseScheme s = test::Example9();
  DatabaseState state(s);
  state.Insert("R2", {2, 3});  // B C
  Result<KeyEquivalentMaintainer> m =
      KeyEquivalentMaintainer::Create(std::move(state));
  ASSERT_TRUE(m.ok());
  Result<PartialTuple> q = m->CheckInsert(0, Tuple(s, "AB", {1, 2}));
  ASSERT_TRUE(q.ok());
  // q extends through B to the <2,3> fragment.
  EXPECT_TRUE(q->DefinedOnAll(Attrs(s, "ABC")));
  EXPECT_EQ(q->At(s.universe().Find("C").value()), 3);
}

TEST(Algorithm2Test, AgreesWithChaseOnStreams) {
  // Property: Algorithm 2's verdict == full-chase verdict, on both split
  // and split-free key-equivalent schemes.
  std::vector<DatabaseScheme> schemes = {MakeChainScheme(3),
                                         MakeSplitScheme(2), MakeStarScheme(3),
                                         test::Example4(), test::Example6()};
  for (const DatabaseScheme& s : schemes) {
    StateGenOptions opt;
    opt.entities = 25;
    opt.coverage = 0.6;
    opt.seed = 5;
    DatabaseState state = MakeConsistentState(s, opt);
    Result<KeyEquivalentMaintainer> m = KeyEquivalentMaintainer::Create(state);
    ASSERT_TRUE(m.ok());
    std::vector<InsertInstance> stream =
        MakeInsertStream(s, state, 40, 0.4, 99);
    for (const InsertInstance& ins : stream) {
      bool chase_verdict = WouldRemainConsistent(state, ins.rel, ins.tuple);
      bool alg2_verdict = m->CheckInsert(ins.rel, ins.tuple).ok();
      EXPECT_EQ(alg2_verdict, chase_verdict)
          << s.relation(ins.rel).name << " "
          << ins.tuple.ToString(s.universe());
      EXPECT_EQ(chase_verdict, ins.expected_consistent);
    }
  }
}

TEST(Algorithm2Test, AppliedInsertsKeepTheMaintainerInSync) {
  DatabaseScheme s = MakeChainScheme(3);
  DatabaseState initial(s);
  Result<KeyEquivalentMaintainer> m = KeyEquivalentMaintainer::Create(initial);
  ASSERT_TRUE(m.ok());
  std::vector<InsertInstance> stream =
      MakeInsertStream(s, initial, 60, 0.3, 7);
  for (const InsertInstance& ins : stream) {
    bool chase_verdict =
        WouldRemainConsistent(m->state(), ins.rel, ins.tuple);
    Status applied = m->Insert(ins.rel, ins.tuple);
    EXPECT_EQ(applied.ok(), chase_verdict);
  }
  EXPECT_TRUE(IsConsistent(m->state()));
}

TEST(Algorithm2Test, CreateRejectsNonKeyEquivalentScheme) {
  DatabaseState state(test::Example1R());
  Result<KeyEquivalentMaintainer> m = KeyEquivalentMaintainer::Create(state);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Algorithm2Test, CreateRejectsInconsistentState) {
  DatabaseScheme s = MakeChainScheme(2);
  DatabaseState state(s);
  state.Insert(0, {1, 2});
  state.Insert(0, {1, 3});
  EXPECT_FALSE(KeyEquivalentMaintainer::Create(state).ok());
}

// --- Algorithm 4 (tuple extension) ------------------------------------------

TEST(Algorithm4Test, ExtendsAlongTheChain) {
  DatabaseScheme s = test::Example9();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R2", {2, 3});
  state.Insert("R3", {3, 4});
  Result<StateKeyIndex> idx = StateKeyIndex::Build(state);
  ASSERT_TRUE(idx.ok());
  ExtensionStats stats;
  Result<PartialTuple> t =
      ExtendTuple(s, *idx, Tuple(s, "A", {1}), &stats);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->attrs(), Attrs(s, "ABCD"));
  EXPECT_EQ(stats.extensions, 3u);
  // From the middle, both directions extend.
  Result<PartialTuple> mid = ExtendTuple(s, *idx, Tuple(s, "C", {3}));
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->attrs(), Attrs(s, "ABCD"));
}

TEST(Algorithm4Test, UnknownKeyValueStaysPut) {
  DatabaseScheme s = test::Example9();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  Result<StateKeyIndex> idx = StateKeyIndex::Build(state);
  ASSERT_TRUE(idx.ok());
  Result<PartialTuple> t = ExtendTuple(s, *idx, Tuple(s, "C", {42}));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->attrs(), Attrs(s, "C"));
}

TEST(Algorithm4Test, Lemma33KeyInterchangeability) {
  // Lemma 3.3(b): on a split-free scheme, re-running Algorithm 4 from any
  // key embedded in the result returns the same tuple.
  DatabaseScheme s = MakeChainScheme(4);
  StateGenOptions opt;
  opt.entities = 20;
  opt.seed = 3;
  DatabaseState state = MakeConsistentState(s, opt);
  Result<StateKeyIndex> idx = StateKeyIndex::Build(state);
  ASSERT_TRUE(idx.ok());
  for (const auto& [rel, key] : s.AllKeys()) {
    for (const PartialTuple& tuple : state.relation(rel).tuples()) {
      Result<PartialTuple> t =
          ExtendTuple(s, *idx, tuple.Restrict(key));
      ASSERT_TRUE(t.ok());
      for (const auto& [rel2, key2] : s.AllKeys()) {
        if (!key2.IsSubsetOf(t->attrs())) continue;
        Result<PartialTuple> t2 =
            ExtendTuple(s, *idx, t->Restrict(key2));
        ASSERT_TRUE(t2.ok());
        EXPECT_EQ(*t2, *t);
      }
    }
  }
}

// --- Algorithm 5 (constant-time maintenance) --------------------------------

TEST(Algorithm5Test, Example10RejectsTheInsert) {
  // Example 10: S = triangle with singleton keys; s1 = {<a,b>},
  // s2 = {<b,c>}, s3 = ∅. Inserting <a,c'> into s3 gives
  // q = {<a,c'>} ⋈ {<a,b,c>} ⋈ {<c'>} = ∅ -> "no".
  DatabaseScheme s = test::Example3();
  constexpr Value a = 1, b = 2, c = 3, c2 = 4;
  DatabaseState state(s);
  state.Insert("R1", {a, b});
  state.Insert("R2", {b, c});
  Result<CtmMaintainer> m = CtmMaintainer::Create(std::move(state));
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->CheckInsert(2, Tuple(s, "AC", {a, c2})).ok());
  EXPECT_TRUE(m->CheckInsert(2, Tuple(s, "AC", {a, c})).ok());
}

TEST(Algorithm5Test, CreateRejectsSplitScheme) {
  // Example 4/5's scheme is key-equivalent but split: Algorithm 5 is not
  // applicable (Corollary 3.3).
  DatabaseState state(test::Example4());
  Result<CtmMaintainer> m = CtmMaintainer::Create(state);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Algorithm5Test, AgreesWithChaseOnStreams) {
  std::vector<DatabaseScheme> schemes = {
      MakeChainScheme(3), MakeChainScheme(6), MakeStarScheme(4),
      test::Example3(), test::Example9()};
  for (const DatabaseScheme& s : schemes) {
    ASSERT_TRUE(IsSplitFree(s));
    StateGenOptions opt;
    opt.entities = 25;
    opt.coverage = 0.6;
    opt.seed = 13;
    DatabaseState state = MakeConsistentState(s, opt);
    Result<CtmMaintainer> m = CtmMaintainer::Create(state);
    ASSERT_TRUE(m.ok());
    std::vector<InsertInstance> stream =
        MakeInsertStream(s, state, 40, 0.4, 17);
    for (const InsertInstance& ins : stream) {
      bool chase_verdict = WouldRemainConsistent(state, ins.rel, ins.tuple);
      EXPECT_EQ(m->CheckInsert(ins.rel, ins.tuple).ok(), chase_verdict)
          << s.relation(ins.rel).name << " "
          << ins.tuple.ToString(s.universe());
    }
  }
}

TEST(Algorithm5Test, AppliedInsertsKeepIndexesInSync) {
  DatabaseScheme s = MakeChainScheme(4);
  DatabaseState initial(s);
  Result<CtmMaintainer> m = CtmMaintainer::Create(initial);
  ASSERT_TRUE(m.ok());
  std::vector<InsertInstance> stream =
      MakeInsertStream(s, initial, 60, 0.3, 29);
  for (const InsertInstance& ins : stream) {
    bool chase_verdict =
        WouldRemainConsistent(m->state(), ins.rel, ins.tuple);
    EXPECT_EQ(m->Insert(ins.rel, ins.tuple).ok(), chase_verdict);
  }
  EXPECT_TRUE(IsConsistent(m->state()));
}

TEST(Algorithm5Test, ProbeCountIndependentOfStateSize) {
  // The ctm property itself: the number of index probes per CheckInsert
  // does not grow with the state.
  DatabaseScheme s = MakeChainScheme(4);
  size_t probes_small = 0;
  size_t probes_large = 0;
  for (size_t entities : {20u, 2000u}) {
    StateGenOptions opt;
    opt.entities = entities;
    opt.seed = 31;
    DatabaseState state = MakeConsistentState(s, opt);
    Result<CtmMaintainer> m = CtmMaintainer::Create(std::move(state), false);
    ASSERT_TRUE(m.ok());
    ExtensionStats stats;
    // A fresh tuple probes the same (relation, key) pairs whatever the
    // state contains.
    PartialTuple probe = m->state().MakeTuple(0, {1000000, 1000001});
    ASSERT_TRUE(m->CheckInsert(0, probe, &stats).ok());
    (entities == 20u ? probes_small : probes_large) = stats.probes;
  }
  EXPECT_EQ(probes_small, probes_large);
  EXPECT_GT(probes_small, 0u);
}

// --- Rejection paths through the block router --------------------------------

TEST(RejectionPathTest, SplitBlockAlgorithm2Reject) {
  // Example 7's rejecting insert, routed through the block maintainer:
  // Example 4's scheme is a single *split* block, so the "no" must come
  // from the Algorithm 2 machinery — representative-instance lookups, with
  // pool keys actually processed.
  DatabaseScheme s = test::Example4();
  constexpr Value a = 1, b = 2, c = 3, e = 10, e1 = 11;
  DatabaseState state(s);
  state.mutable_relation(0).Add(Tuple(s, "AB", {a, b}));
  state.mutable_relation(1).Add(Tuple(s, "AC", {a, c}));
  state.mutable_relation(3).Add(Tuple(s, "EB", {e1, b}));
  state.mutable_relation(4).Add(Tuple(s, "EC", {e1, c}));
  Result<IndependenceReducibleMaintainer> m =
      IndependenceReducibleMaintainer::Create(state);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_FALSE(m->IsCtm());  // the block is split (Theorem 5.5)
  MaintenanceStats stats;
  Result<PartialTuple> verdict =
      m->CheckInsert(2, Tuple(s, "AE", {a, e}), &stats);
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kInconsistent);
  EXPECT_GT(stats.keys_processed, 0u);
  EXPECT_GT(stats.lookups, 0u);
  // A rejected Insert leaves the maintained state untouched.
  size_t before = m->state().TupleCount();
  EXPECT_FALSE(m->Insert(2, Tuple(s, "AE", {a, e})).ok());
  EXPECT_EQ(m->state().TupleCount(), before);
  EXPECT_TRUE(m->Insert(2, Tuple(s, "AE", {a, e1})).ok());
}

TEST(RejectionPathTest, SplitFreeBlockAlgorithm5Reject) {
  // Example 11's block {R5, R6} is split-free, so its "no" comes from
  // Algorithm 5 — key-index probes (surfaced as stats.lookups) with *no*
  // Algorithm 2 key processing.
  DatabaseScheme s = test::Example11();
  constexpr Value d = 4, e = 5, f = 6, e2 = 7, g = 8;
  DatabaseState state(s);
  state.Insert("R5", {d, e, f});
  Result<IndependenceReducibleMaintainer> m =
      IndependenceReducibleMaintainer::Create(state);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  MaintenanceStats stats;
  // D=d already determines E=e; a DEG tuple with E=e2 contradicts it.
  Result<PartialTuple> verdict =
      m->CheckInsert(5, Tuple(s, "DEG", {d, e2, g}), &stats);
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kInconsistent);
  EXPECT_GT(stats.lookups, 0u);
  EXPECT_EQ(stats.keys_processed, 0u);  // not the Algorithm 2 path
  size_t before = m->state().TupleCount();
  EXPECT_FALSE(m->Insert(5, Tuple(s, "DEG", {d, e2, g})).ok());
  EXPECT_EQ(m->state().TupleCount(), before);
  EXPECT_TRUE(m->Insert(5, Tuple(s, "DEG", {d, e, g})).ok());
}

TEST(RejectionPathTest, Alg5RejectionProbesIndependentOfStateSize) {
  // Constant-time maintenance covers "no" answers too: the probe count of
  // a rejecting CheckInsert does not grow with the state.
  DatabaseScheme s = MakeChainScheme(4);
  std::vector<size_t> probes;
  for (size_t entities : {20u, 2000u}) {
    StateGenOptions opt;
    opt.entities = entities;
    opt.coverage = 1.0;
    opt.seed = 31;
    DatabaseState state = MakeConsistentState(s, opt);
    Result<CtmMaintainer> m = CtmMaintainer::Create(std::move(state), false);
    ASSERT_TRUE(m.ok());
    const PartialTuple& existing = m->state().relation(0).tuples()[0];
    const AttributeId a1 = *s.universe().Find("A1");
    const AttributeId a2 = *s.universe().Find("A2");
    // Same A1 value, contradicting A2: violates the FD A1 -> A2.
    PartialTuple clash(existing.attrs(),
                       {existing.At(a1), existing.At(a2) + 1000000});
    ExtensionStats stats;
    Result<PartialTuple> verdict = m->CheckInsert(0, clash, &stats);
    EXPECT_FALSE(verdict.ok());
    probes.push_back(stats.probes);
  }
  EXPECT_GT(probes[0], 0u);
  EXPECT_EQ(probes[0], probes[1]);
}

TEST(RejectionPathTest, Alg2RejectionLookupsIndependentOfStateSize) {
  // Algorithm 2's work per rejection is bounded by the number of distinct
  // pool keys (here 5: A1..A5), whatever the state holds.
  DatabaseScheme s = MakeChainScheme(4);
  std::vector<size_t> lookups;
  for (size_t entities : {20u, 2000u}) {
    StateGenOptions opt;
    opt.entities = entities;
    opt.coverage = 1.0;
    opt.seed = 31;
    DatabaseState state = MakeConsistentState(s, opt);
    Result<KeyEquivalentMaintainer> m =
        KeyEquivalentMaintainer::Create(std::move(state));
    ASSERT_TRUE(m.ok());
    const PartialTuple& existing = m->state().relation(0).tuples()[0];
    const AttributeId a1 = *s.universe().Find("A1");
    const AttributeId a2 = *s.universe().Find("A2");
    PartialTuple clash(existing.attrs(),
                       {existing.At(a1), existing.At(a2) + 1000000});
    MaintenanceStats stats;
    Result<PartialTuple> verdict = m->CheckInsert(0, clash, &stats);
    EXPECT_FALSE(verdict.ok());
    EXPECT_EQ(stats.lookups, stats.keys_processed);
    EXPECT_LE(stats.lookups, 5u);
    lookups.push_back(stats.lookups);
  }
  EXPECT_GT(lookups[0], 0u);
  EXPECT_EQ(lookups[0], lookups[1]);
}

// --- Algorithms 2 and 5 agree on split-free schemes --------------------------

TEST(MaintainerAgreementTest, Alg2AndAlg5SameVerdicts) {
  DatabaseScheme s = MakeChainScheme(5);
  StateGenOptions opt;
  opt.entities = 30;
  opt.seed = 41;
  DatabaseState state = MakeConsistentState(s, opt);
  Result<KeyEquivalentMaintainer> m2 = KeyEquivalentMaintainer::Create(state);
  Result<CtmMaintainer> m5 = CtmMaintainer::Create(state);
  ASSERT_TRUE(m2.ok());
  ASSERT_TRUE(m5.ok());
  std::vector<InsertInstance> stream =
      MakeInsertStream(s, state, 50, 0.5, 43);
  for (const InsertInstance& ins : stream) {
    EXPECT_EQ(m2->CheckInsert(ins.rel, ins.tuple).ok(),
              m5->CheckInsert(ins.rel, ins.tuple).ok());
  }
}

}  // namespace
}  // namespace ird
