// Replays the golden corpus: every scheme the differential fuzzer ever
// caught disagreeing (shrunk and committed under tests/corpus/) is re-run
// through the full differential harness on every ctest invocation. A
// regression that resurrects an old disagreement fails here with the exact
// historical witness.

#include <cstdlib>
#include <string>

#include "gtest/gtest.h"
#include "oracle/corpus.h"
#include "oracle/differential.h"

#ifndef IRD_CORPUS_DIR
#define IRD_CORPUS_DIR "tests/corpus"
#endif

namespace ird::oracle {
namespace {

std::string CorpusDir() {
  const char* v = std::getenv("IRD_FUZZ_CORPUS_DIR");
  return (v == nullptr || *v == '\0') ? IRD_CORPUS_DIR : v;
}

TEST(CorpusReplay, EveryEntryParsesValidatesAndAgrees) {
  Result<std::vector<CorpusEntry>> corpus = LoadCorpus(CorpusDir());
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  // The committed corpus is never empty: it holds golden anchor schemes
  // (each file's '#' header says what it guards) plus every shrunk
  // disagreement the fuzzer ever writes.
  ASSERT_FALSE(corpus->empty())
      << "no .scheme files under " << CorpusDir()
      << " — corpus missing or IRD_CORPUS_DIR misconfigured";
  DifferentialOptions opt;
  for (const CorpusEntry& entry : *corpus) {
    SCOPED_TRACE(entry.filename);
    ASSERT_TRUE(entry.scheme.Validate().ok())
        << entry.scheme.Validate().ToString();
    for (const Disagreement& d : CompareAgainstOracles(entry.scheme, opt)) {
      ADD_FAILURE() << entry.filename << ": " << d.routine << ": "
                    << d.detail;
    }
  }
}

}  // namespace
}  // namespace ird::oracle
