#include <gtest/gtest.h>

#include "core/block_maintainer.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;
using test::Tuple;

TEST(BlockMaintainerTest, RejectsNonReducibleScheme) {
  DatabaseState state(test::Example2());
  Result<IndependenceReducibleMaintainer> m =
      IndependenceReducibleMaintainer::Create(state);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BlockMaintainerTest, Example1UniversityWorkflow) {
  // The motivating Example 1: the university database is ctm; exercise a
  // realistic insert sequence.
  DatabaseScheme s = test::Example1R();
  DatabaseState state(s);
  Result<IndependenceReducibleMaintainer> m =
      IndependenceReducibleMaintainer::Create(std::move(state));
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->IsCtm());
  constexpr Value h1 = 1, r1 = 2, c1 = 3, t1 = 4, s1 = 5, g1 = 6, t2 = 7;
  // course c1 taught by t1 in room r1 at hour h1.
  EXPECT_TRUE(m->Insert(0, Tuple(s, "HRC", {h1, r1, c1})).ok());
  EXPECT_TRUE(m->Insert(1, Tuple(s, "HTR", {h1, t1, r1})).ok());
  EXPECT_TRUE(m->Insert(2, Tuple(s, "HTC", {h1, t1, c1})).ok());
  // student s1 takes c1 with grade g1; s1 sits in r1 at h1.
  EXPECT_TRUE(m->Insert(3, Tuple(s, "CSG", {c1, s1, g1})).ok());
  EXPECT_TRUE(m->Insert(4, Tuple(s, "HSR", {h1, s1, r1})).ok());
  // A second teacher in the same room at the same hour: violates HR -> T.
  EXPECT_FALSE(m->Insert(1, Tuple(s, "HTR", {h1, t2, r1})).ok());
  // The final state is consistent.
  EXPECT_TRUE(IsConsistent(m->state()));
}

TEST(BlockMaintainerTest, CtmFlagFollowsTheorem55) {
  {
    DatabaseState state(test::Example1R());
    auto m = IndependenceReducibleMaintainer::Create(std::move(state));
    ASSERT_TRUE(m.ok());
    EXPECT_TRUE(m->IsCtm());
  }
  {
    // Example 4's scheme: one split block -> not ctm, but maintainable.
    DatabaseState state(test::Example4());
    auto m = IndependenceReducibleMaintainer::Create(std::move(state));
    ASSERT_TRUE(m.ok());
    EXPECT_FALSE(m->IsCtm());
  }
}

TEST(BlockMaintainerTest, InsertsOnlyTouchTheRightBlock) {
  // An insert into block 2 must not be affected by block-1 contents.
  DatabaseScheme s = test::Example11();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R4", {1, 9});  // A=1 D=9
  Result<IndependenceReducibleMaintainer> m =
      IndependenceReducibleMaintainer::Create(std::move(state));
  ASSERT_TRUE(m.ok());
  // Block 2 (DEF/DEG): D=9 already exists in block 1's R4, but block 2 has
  // no tuples, so any D-value is insertable there.
  EXPECT_TRUE(m->Insert(4, Tuple(s, "DEF", {9, 3, 4})).ok());
  // Now D=9 determines E=3: a conflicting DEG insert fails.
  EXPECT_FALSE(m->Insert(5, Tuple(s, "DEG", {9, 7, 5})).ok());
  EXPECT_TRUE(m->Insert(5, Tuple(s, "DEG", {9, 3, 5})).ok());
}

TEST(BlockMaintainerTest, AgreesWithChaseOnStreams) {
  std::vector<DatabaseScheme> schemes = {
      test::Example1R(), test::Example11(), MakeBlockScheme(3, 3),
      MakeIndependentScheme(4), MakeSplitScheme(2)};
  for (const DatabaseScheme& s : schemes) {
    StateGenOptions opt;
    opt.entities = 20;
    opt.coverage = 0.6;
    opt.seed = 71;
    DatabaseState state = MakeConsistentState(s, opt);
    Result<IndependenceReducibleMaintainer> m =
        IndependenceReducibleMaintainer::Create(state);
    ASSERT_TRUE(m.ok()) << s.ToString();
    std::vector<InsertInstance> stream =
        MakeInsertStream(s, state, 40, 0.4, 73);
    for (const InsertInstance& ins : stream) {
      bool chase_verdict = WouldRemainConsistent(state, ins.rel, ins.tuple);
      EXPECT_EQ(m->CheckInsert(ins.rel, ins.tuple).ok(), chase_verdict)
          << s.relation(ins.rel).name << " "
          << ins.tuple.ToString(s.universe());
    }
  }
}

TEST(BlockMaintainerTest, AppliedStreamsStayConsistent) {
  DatabaseScheme s = MakeBlockScheme(2, 3);
  DatabaseState initial(s);
  Result<IndependenceReducibleMaintainer> m =
      IndependenceReducibleMaintainer::Create(initial);
  ASSERT_TRUE(m.ok());
  std::vector<InsertInstance> stream =
      MakeInsertStream(s, initial, 80, 0.25, 79);
  size_t accepted = 0;
  for (const InsertInstance& ins : stream) {
    bool chase_verdict =
        WouldRemainConsistent(m->state(), ins.rel, ins.tuple);
    Status applied = m->Insert(ins.rel, ins.tuple);
    EXPECT_EQ(applied.ok(), chase_verdict);
    accepted += applied.ok() ? 1 : 0;
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_TRUE(IsConsistent(m->state()));
}

TEST(BlockMaintainerTest, Section42LocalToGlobalArgument) {
  // The §4.2 claim itself: if every block substate is consistent, the
  // whole state is. Exercise with cross-block value sharing.
  DatabaseScheme s = test::Example11();
  DatabaseState state(s);
  constexpr Value a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7;
  state.Insert("R1", {a, b});
  state.Insert("R2", {b, c});
  state.Insert("R3", {a, c});
  state.Insert("R4", {a, d});
  state.mutable_relation(4).Add(Tuple(s, "DEF", {d, e, f}));
  state.mutable_relation(5).Add(Tuple(s, "DEG", {d, e, g}));
  Result<IndependenceReducibleMaintainer> m =
      IndependenceReducibleMaintainer::Create(state);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(IsConsistent(state));
}

}  // namespace
}  // namespace ird
