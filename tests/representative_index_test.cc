#include <gtest/gtest.h>

#include "core/representative_index.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;
using test::Tuple;

// Compares the index's total projections with the chase ground truth on a
// collection of attribute sets.
void ExpectMatchesChase(const DatabaseState& state,
                        const RepresentativeIndex& index,
                        const std::vector<AttributeSet>& targets) {
  for (const AttributeSet& x : targets) {
    Result<PartialRelation> expected = TotalProjectionByChase(state, x);
    ASSERT_TRUE(expected.ok());
    PartialRelation actual = index.TotalProjection(x);
    EXPECT_TRUE(actual.SetEquals(*expected))
        << "X=" << state.universe().Format(x) << "\n  index: "
        << actual.ToString(state.universe())
        << "\n  chase: " << expected->ToString(state.universe());
  }
}

TEST(RepresentativeIndexTest, EmptyState) {
  DatabaseState state(test::Example9());
  Result<RepresentativeIndex> idx = RepresentativeIndex::Build(state);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->RowCount(), 0u);
}

TEST(RepresentativeIndexTest, ChainMergesIntoOneRow) {
  DatabaseScheme s = test::Example9();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R2", {2, 3});
  state.Insert("R3", {3, 4});
  state.Insert("R4", {4, 5});
  Result<RepresentativeIndex> idx = RepresentativeIndex::Build(state);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->RowCount(), 1u);
  const PartialTuple* row = idx->Rows()[0];
  EXPECT_EQ(row->attrs(), Attrs(s, "ABCDE"));
  EXPECT_EQ(row->values(), (std::vector<Value>{1, 2, 3, 4, 5}));
}

TEST(RepresentativeIndexTest, SeparateEntitiesStaySeparate) {
  DatabaseScheme s = test::Example9();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R1", {6, 7});
  state.Insert("R3", {8, 9});
  Result<RepresentativeIndex> idx = RepresentativeIndex::Build(state);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->RowCount(), 3u);
}

TEST(RepresentativeIndexTest, DetectsInconsistency) {
  DatabaseScheme s = test::Example9();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R1", {1, 3});  // A -> B violated
  Result<RepresentativeIndex> idx = RepresentativeIndex::Build(state);
  EXPECT_FALSE(idx.ok());
  EXPECT_EQ(idx.status().code(), StatusCode::kInconsistent);
}

TEST(RepresentativeIndexTest, DetectsTransitiveInconsistency) {
  // Fragments agree on keys pairwise but clash after merging.
  DatabaseScheme s = test::Example3();  // triangle, all singleton keys
  DatabaseState state(s);
  state.Insert("R1", {1, 2});  // A=1 B=2
  state.Insert("R2", {2, 3});  // B=2 C=3
  state.Insert("R3", {1, 4});  // A=1 C=4: chase forces C=3 vs C=4
  Result<RepresentativeIndex> idx = RepresentativeIndex::Build(state);
  EXPECT_FALSE(idx.ok());
}

TEST(RepresentativeIndexTest, LookupByAnyKey) {
  DatabaseScheme s = test::Example9();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R2", {2, 3});
  Result<RepresentativeIndex> idx = RepresentativeIndex::Build(state);
  ASSERT_TRUE(idx.ok());
  // The merged row is findable through each of its keys.
  const PartialTuple* by_a = idx->Lookup(Attrs(s, "A"), Tuple(s, "A", {1}));
  ASSERT_NE(by_a, nullptr);
  EXPECT_EQ(by_a->attrs(), Attrs(s, "ABC"));
  const PartialTuple* by_c = idx->Lookup(Attrs(s, "C"), Tuple(s, "C", {3}));
  EXPECT_EQ(by_c, by_a);
  EXPECT_EQ(idx->Lookup(Attrs(s, "A"), Tuple(s, "A", {99})), nullptr);
}

TEST(RepresentativeIndexTest, IncrementalInsertMatchesRebuild) {
  DatabaseScheme s = test::Example6();
  DatabaseState state(s);
  state.mutable_relation(1).Add(Tuple(s, "AC", {1, 10}));
  state.mutable_relation(4).Add(Tuple(s, "BD", {2, 20}));
  state.mutable_relation(5).Add(Tuple(s, "CDE", {10, 20, 3}));
  Result<RepresentativeIndex> idx = RepresentativeIndex::Build(state);
  ASSERT_TRUE(idx.ok());
  // Insert <a=1, b=2, e=3> into R1(ABE): all three fragments merge.
  PartialTuple t = Tuple(s, "ABE", {1, 2, 3});
  ASSERT_TRUE(idx->InsertTuple(0, t).ok());
  state.mutable_relation(0).AddUnique(t);
  Result<RepresentativeIndex> rebuilt = RepresentativeIndex::Build(state);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(idx->RowCount(), rebuilt->RowCount());
  ExpectMatchesChase(state, *idx,
                     {Attrs(s, "AB"), Attrs(s, "ABCDE"), Attrs(s, "CE"),
                      Attrs(s, "AD")});
}

TEST(RepresentativeIndexTest, Example6RepresentativeInstance) {
  // The state tableau of Example 6 is already chased: three fragments.
  DatabaseScheme s = test::Example6();
  DatabaseState state(s);
  state.mutable_relation(1).Add(Tuple(s, "AC", {1, 10}));
  state.mutable_relation(4).Add(Tuple(s, "BD", {2, 20}));
  state.mutable_relation(5).Add(Tuple(s, "CDE", {10, 20, 3}));
  Result<RepresentativeIndex> idx = RepresentativeIndex::Build(state);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->RowCount(), 3u);
}

TEST(RepresentativeIndexTest, BlockPoolIgnoresOtherRelations) {
  DatabaseScheme s = test::Example11();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  state.Insert("R5", {7, 8, 9});
  Result<RepresentativeIndex> idx =
      RepresentativeIndex::Build(state, {0, 1, 2, 3});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->RowCount(), 1u);  // only the R1 tuple
}

TEST(RepresentativeIndexTest, MatchesChaseOnGeneratedStates) {
  // Property sweep: on random consistent states of key-equivalent schemes,
  // the index's total projections equal the chase's for assorted X.
  std::vector<DatabaseScheme> schemes = {
      MakeChainScheme(4), MakeSplitScheme(2), MakeStarScheme(3),
      test::Example4(), test::Example6()};
  for (const DatabaseScheme& s : schemes) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      StateGenOptions opt;
      opt.entities = 30;
      opt.coverage = 0.5;
      opt.seed = seed;
      DatabaseState state = MakeConsistentState(s, opt);
      ASSERT_TRUE(IsConsistent(state));
      Result<RepresentativeIndex> idx = RepresentativeIndex::Build(state);
      ASSERT_TRUE(idx.ok());
      // Targets: every relation scheme, every key, and the whole universe.
      std::vector<AttributeSet> targets;
      for (const RelationScheme& r : s.relations()) {
        targets.push_back(r.attrs);
      }
      for (const auto& [rel, key] : s.AllKeys()) {
        targets.push_back(key);
      }
      targets.push_back(s.AllAttrs());
      ExpectMatchesChase(state, *idx, targets);
    }
  }
}

}  // namespace
}  // namespace ird
