// §3.2 / Theorem 3.2: maintenance through predetermined relational
// expressions only (no representative-instance index). Validated against
// Algorithm 2 and the chase.

#include <gtest/gtest.h>

#include "core/expression_maintenance.h"
#include "core/representative_index.h"
#include "relation/weak_instance.h"
#include "tests/test_util.h"
#include "workload/generators.h"

namespace ird {
namespace {

using test::Attrs;
using test::Tuple;

TEST(ExpressionLookupTest, PlanEnumeratesLosslessExpressions) {
  DatabaseScheme s = test::Example4();
  ExpressionLookupPlan plan = ExpressionLookupPlan::Build(s);
  // Keys A, E, BC, D.
  ASSERT_EQ(plan.keys().size(), 4u);
  for (size_t k = 0; k < plan.keys().size(); ++k) {
    EXPECT_GT(plan.ExpressionCount(k), 0u)
        << s.universe().Format(plan.keys()[k]);
  }
}

TEST(ExpressionLookupTest, Example7GreatestExpressionWins) {
  // Example 7's point: the total tuple for A='a' comes from the *greatest*
  // lossless expression σ_{A=a}(R1 ⋈ R2 ⋈ (R4 ⋈ R5)), not from the small
  // ones like σ_{A=a}(R1).
  DatabaseScheme s = test::Example4();
  constexpr Value a = 1, b = 2, c = 3, e1 = 11, e2 = 12;
  DatabaseState state(s);
  state.mutable_relation(0).Add(Tuple(s, "AB", {a, b}));
  state.mutable_relation(1).Add(Tuple(s, "AC", {a, c}));
  state.mutable_relation(3).Add(Tuple(s, "EB", {e1, b}));
  state.mutable_relation(3).Add(Tuple(s, "EB", {e2, b}));
  state.mutable_relation(4).Add(Tuple(s, "EC", {e1, c}));
  ExpressionLookupPlan plan = ExpressionLookupPlan::Build(s);
  Result<std::optional<PartialTuple>> found =
      plan.LookupTotalTuple(state, Attrs(s, "A"), Tuple(s, "A", {a}));
  ASSERT_TRUE(found.ok());
  ASSERT_TRUE(found->has_value());
  // The full <a, b, c, e1> tuple, not just <a, b>.
  EXPECT_EQ((*found)->attrs(), Attrs(s, "ABCE"));
  EXPECT_EQ((*found)->At(s.universe().Find("E").value()), e1);
}

TEST(ExpressionLookupTest, MissingKeyValueReturnsNothing) {
  DatabaseScheme s = test::Example9();
  DatabaseState state(s);
  state.Insert("R1", {1, 2});
  ExpressionLookupPlan plan = ExpressionLookupPlan::Build(s);
  Result<std::optional<PartialTuple>> found =
      plan.LookupTotalTuple(state, Attrs(s, "C"), Tuple(s, "C", {42}));
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE(found->has_value());
}

TEST(ExpressionLookupTest, AgreesWithRepresentativeIndexOnGeneratedStates) {
  std::vector<DatabaseScheme> schemes = {MakeChainScheme(4),
                                         MakeSplitScheme(2), test::Example4(),
                                         test::Example6()};
  for (const DatabaseScheme& s : schemes) {
    StateGenOptions opt;
    opt.entities = 15;
    opt.coverage = 0.6;
    opt.seed = 9;
    DatabaseState state = MakeConsistentState(s, opt);
    ExpressionLookupPlan plan = ExpressionLookupPlan::Build(s);
    Result<RepresentativeIndex> index = RepresentativeIndex::Build(state);
    ASSERT_TRUE(index.ok());
    for (const PartialTuple* row : index->Rows()) {
      for (const AttributeSet& key : plan.keys()) {
        if (!key.IsSubsetOf(row->attrs())) continue;
        Result<std::optional<PartialTuple>> found =
            plan.LookupTotalTuple(state, key, row->Restrict(key));
        ASSERT_TRUE(found.ok());
        ASSERT_TRUE(found->has_value());
        EXPECT_EQ(**found, *row)
            << "key " << s.universe().Format(key) << " of row "
            << row->ToString(s.universe());
      }
    }
  }
}

TEST(ExpressionMaintenanceTest, Example6RejectsTheInsert) {
  DatabaseScheme s = test::Example6();
  constexpr Value a = 1, b = 2, c = 3, d = 4, e = 5, e2 = 6;
  DatabaseState state(s);
  state.mutable_relation(1).Add(Tuple(s, "AC", {a, c}));
  state.mutable_relation(4).Add(Tuple(s, "BD", {b, d}));
  state.mutable_relation(5).Add(Tuple(s, "CDE", {c, d, e}));
  ExpressionLookupPlan plan = ExpressionLookupPlan::Build(s);
  EXPECT_FALSE(
      CheckInsertByExpressions(s, plan, state, 0, Tuple(s, "ABE", {a, b, e2}))
          .ok());
  EXPECT_TRUE(
      CheckInsertByExpressions(s, plan, state, 0, Tuple(s, "ABE", {a, b, e}))
          .ok());
}

TEST(ExpressionMaintenanceTest, AgreesWithAlgorithm2OnStreams) {
  std::vector<DatabaseScheme> schemes = {
      MakeChainScheme(3), MakeSplitScheme(2), MakeStarScheme(3),
      test::Example3(), test::Example4()};
  for (const DatabaseScheme& s : schemes) {
    StateGenOptions opt;
    opt.entities = 12;
    opt.coverage = 0.6;
    opt.seed = 31;
    DatabaseState state = MakeConsistentState(s, opt);
    ExpressionLookupPlan plan = ExpressionLookupPlan::Build(s);
    Result<KeyEquivalentMaintainer> alg2 =
        KeyEquivalentMaintainer::Create(state);
    ASSERT_TRUE(alg2.ok());
    std::vector<InsertInstance> stream =
        MakeInsertStream(s, state, 30, 0.4, 33);
    for (const InsertInstance& ins : stream) {
      Result<PartialTuple> by_expr =
          CheckInsertByExpressions(s, plan, state, ins.rel, ins.tuple);
      Result<PartialTuple> by_index = alg2->CheckInsert(ins.rel, ins.tuple);
      ASSERT_EQ(by_expr.ok(), by_index.ok())
          << ins.tuple.ToString(s.universe());
      if (by_expr.ok()) {
        EXPECT_EQ(*by_expr, *by_index);
      }
      EXPECT_EQ(by_expr.ok(), ins.expected_consistent);
    }
  }
}

TEST(ExpressionMaintenanceTest, BoundedNumberOfLookups) {
  // Theorem 3.2's point: the number of selections depends only on R and F.
  DatabaseScheme s = MakeSplitScheme(2);
  size_t lookups_small = 0;
  size_t lookups_large = 0;
  for (size_t entities : {10u, 500u}) {
    StateGenOptions opt;
    opt.entities = entities;
    opt.seed = 77;
    DatabaseState state = MakeConsistentState(s, opt);
    ExpressionLookupPlan plan = ExpressionLookupPlan::Build(s);
    PartialTuple fresh = state.MakeTuple(0, {900001, 900002});
    MaintenanceStats stats;
    ASSERT_TRUE(CheckInsertByExpressions(s, plan, state, 0, fresh, &stats).ok());
    (entities == 10u ? lookups_small : lookups_large) = stats.lookups;
  }
  EXPECT_EQ(lookups_small, lookups_large);
  EXPECT_GT(lookups_small, 0u);
}

}  // namespace
}  // namespace ird
