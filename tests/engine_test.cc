// The engine layer: SchemeAnalysis (interned covers, memoized closures,
// typed result caches, revision-counter invalidation) and BatchAnalyzer
// (the fixed-pool parallel driver). The memoization contract under test is
// bit-identity: every answer a warm analysis serves must equal what a
// fresh computation produces, over all of the paper's worked examples.

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/classify.h"
#include "core/recognition.h"
#include "core/split.h"
#include "engine/batch.h"
#include "engine/scheme_analysis.h"
#include "tests/test_util.h"

namespace ird {
namespace {

struct NamedScheme {
  const char* name;
  DatabaseScheme scheme;
};

std::vector<NamedScheme> PaperExamples() {
  std::vector<NamedScheme> out;
  out.push_back({"Example1R", test::Example1R()});
  out.push_back({"Example1S", test::Example1S()});
  out.push_back({"Example2", test::Example2()});
  out.push_back({"Example3", test::Example3()});
  out.push_back({"Example4", test::Example4()});
  out.push_back({"Example6", test::Example6()});
  out.push_back({"Example8", test::Example8()});
  out.push_back({"Example9", test::Example9()});
  out.push_back({"Example11", test::Example11()});
  out.push_back({"Example12", test::Example12()});
  out.push_back({"Example13", test::Example13()});
  return out;
}

void ExpectSameRecognition(const RecognitionResult& a,
                           const RecognitionResult& b, const char* name) {
  EXPECT_EQ(a.accepted, b.accepted) << name;
  EXPECT_EQ(a.partition, b.partition) << name;
  ASSERT_EQ(a.induced.has_value(), b.induced.has_value()) << name;
  if (a.induced.has_value()) {
    ASSERT_EQ(a.induced->size(), b.induced->size()) << name;
    for (size_t i = 0; i < a.induced->size(); ++i) {
      EXPECT_EQ(a.induced->relation(i).attrs, b.induced->relation(i).attrs)
          << name << " induced relation " << i;
      EXPECT_EQ(a.induced->relation(i).keys, b.induced->relation(i).keys)
          << name << " induced relation " << i;
    }
  }
  ASSERT_EQ(a.violation.has_value(), b.violation.has_value()) << name;
  if (a.violation.has_value()) {
    EXPECT_EQ(a.violation->i, b.violation->i) << name;
    EXPECT_EQ(a.violation->j, b.violation->j) << name;
    EXPECT_EQ(a.violation->key, b.violation->key) << name;
    EXPECT_EQ(a.violation->attribute, b.violation->attribute) << name;
  }
}

TEST(SchemeAnalysisTest, MemoizedClosuresMatchFreshOnes) {
  for (const NamedScheme& example : PaperExamples()) {
    const DatabaseScheme& scheme = example.scheme;
    SchemeAnalysis analysis(scheme);
    const FdSet& f = scheme.key_dependencies();
    for (size_t i = 0; i < scheme.size(); ++i) {
      const AttributeSet& attrs = scheme.relation(i).attrs;
      AttributeSet fresh = f.Closure(attrs);
      // Miss, then hit: both must equal the naive fixpoint closure.
      EXPECT_EQ(analysis.FullClosure(attrs), fresh) << example.name;
      EXPECT_EQ(analysis.FullClosure(attrs), fresh) << example.name;
      // Leave-one-out cover F - Fi, the uniqueness condition's engine.
      std::vector<size_t> others;
      for (size_t j = 0; j < scheme.size(); ++j) {
        if (j != i) others.push_back(j);
      }
      AttributeSet fresh_except =
          scheme.KeyDependenciesOf(others).Closure(attrs);
      EXPECT_EQ(analysis.ClosureExcept(i, attrs), fresh_except)
          << example.name << " without relation " << i;
    }
  }
}

TEST(SchemeAnalysisTest, ClosureExceptOnSingleRelationSchemeIsIdentity) {
  DatabaseScheme scheme = DatabaseScheme::Create();
  scheme.AddRelation("R1", "AB", {"A"});
  SchemeAnalysis analysis(scheme);
  AttributeSet a = scheme.universe_ptr()->Chars("A");
  // F - F1 is empty: the closure must be the identity, not the full-cover
  // closure the empty-pool convention would otherwise select.
  EXPECT_EQ(analysis.ClosureExcept(0, a), a);
}

TEST(SchemeAnalysisTest, RecognitionMatchesSchemeLevelWrapper) {
  for (const NamedScheme& example : PaperExamples()) {
    SchemeAnalysis analysis(example.scheme);
    RecognitionResult fresh = RecognizeIndependenceReducible(example.scheme);
    RecognitionResult cold = RecognizeIndependenceReducible(analysis);
    RecognitionResult warm = RecognizeIndependenceReducible(analysis);
    ExpectSameRecognition(cold, fresh, example.name);
    ExpectSameRecognition(warm, fresh, example.name);
    EXPECT_EQ(SplitKeys(analysis), SplitKeys(example.scheme)) << example.name;
    // The at-most-once build guarantee, counter-free (holds with
    // IRD_OBS=OFF too): the warm run added no engine.
    size_t built = analysis.built_engine_count();
    (void)RecognizeIndependenceReducible(analysis);
    (void)SplitKeys(analysis);
    EXPECT_EQ(analysis.built_engine_count(), built) << example.name;
  }
}

TEST(SchemeAnalysisTest, AddRelationInvalidatesCaches) {
  DatabaseScheme scheme = test::Example2();
  SchemeAnalysis analysis(scheme);
  AttributeSet b = scheme.universe_ptr()->Chars("B");
  AttributeSet bc = scheme.universe_ptr()->Chars("BC");
  EXPECT_EQ(analysis.FullClosure(b), bc);
  (void)RecognizeIndependenceReducible(analysis);
  EXPECT_GT(analysis.built_engine_count(), 0u);

  uint64_t before = scheme.revision();
  scheme.AddRelation("R4", "CD", {"C"});
  EXPECT_GT(scheme.revision(), before);

  // First query after the mutation drops every cover, memo and slot and
  // recompiles: B -> BC -> BCD now.
  AttributeSet bcd = scheme.universe_ptr()->Chars("BCD");
  EXPECT_EQ(analysis.FullClosure(b), bcd);
  EXPECT_EQ(analysis.seen_revision(), scheme.revision());
  RecognitionResult after = RecognizeIndependenceReducible(analysis);
  ExpectSameRecognition(after, RecognizeIndependenceReducible(scheme),
                        "Example2+R4");
}

TEST(SchemeAnalysisTest, KeyMutationInvalidatesCaches) {
  DatabaseScheme scheme = test::Example2();
  SchemeAnalysis analysis(scheme);
  AttributeSet a = scheme.universe_ptr()->Chars("A");
  AttributeSet ac = scheme.universe_ptr()->Chars("AC");
  EXPECT_EQ(analysis.FullClosure(a), ac);

  // Shrink R1(AB)'s key from AB to A: F gains A -> AB, so A now reaches
  // everything.
  scheme.mutable_relation(0).keys[0] = a;
  EXPECT_EQ(analysis.FullClosure(a), scheme.AllAttrs());
  EXPECT_EQ(analysis.seen_revision(), scheme.revision());
}

std::string ClassificationLine(SchemeAnalysis& analysis) {
  SchemeClassification c = ClassifyScheme(analysis);
  std::string line;
  line += c.lossless ? "L" : "-";
  line += c.independent ? "I" : "-";
  line += c.key_equivalent ? "K" : "-";
  line += c.independence_reducible ? "R" : "-";
  line += c.split_free ? "S" : "-";
  line += ":";
  for (const std::vector<size_t>& block : c.recognition.partition) {
    line += "{";
    for (size_t i : block) line += std::to_string(i) + ",";
    line += "}";
  }
  return line;
}

TEST(BatchAnalyzerTest, EveryIndexRunsExactlyOnce) {
  for (size_t jobs : {size_t{1}, size_t{4}, size_t{8}}) {
    BatchAnalyzer batch(jobs);
    std::vector<int> hits(257, 0);
    batch.ForEachIndex(hits.size(),
                       [&](size_t i) { hits[i] += 1; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i], 1) << "jobs=" << jobs << " index " << i;
    }
    // The pool is reusable: a second batch on the same analyzer.
    std::vector<int> again(31, 0);
    batch.ForEachIndex(again.size(), [&](size_t i) { again[i] += 1; });
    for (size_t i = 0; i < again.size(); ++i) {
      EXPECT_EQ(again[i], 1) << "jobs=" << jobs << " second batch " << i;
    }
    batch.ForEachIndex(0, [&](size_t) { FAIL() << "empty batch ran"; });
  }
}

TEST(BatchAnalyzerTest, ParallelAnalysisMatchesSerial) {
  std::vector<NamedScheme> examples = PaperExamples();
  // Repeat the example list to give the pool something to contend over.
  // Every slot gets its OWN DatabaseScheme copy: the scheme's lazy FD
  // cache is not thread-safe, so two workers must never share one object.
  std::vector<DatabaseScheme> copies;
  for (size_t rep = 0; rep < 8; ++rep) {
    for (const NamedScheme& example : examples) {
      copies.push_back(example.scheme);
    }
  }
  std::vector<const DatabaseScheme*> schemes;
  schemes.reserve(copies.size());
  for (const DatabaseScheme& copy : copies) {
    schemes.push_back(&copy);
  }

  auto classify_all = [&](size_t jobs) {
    std::vector<std::string> lines(schemes.size());
    BatchAnalyzer batch(jobs);
    EXPECT_EQ(batch.jobs(), jobs);
    batch.AnalyzeEach(schemes, [&](size_t i, SchemeAnalysis& analysis) {
      lines[i] = ClassificationLine(analysis);
    });
    return lines;
  };

  std::vector<std::string> serial = classify_all(1);
  std::vector<std::string> parallel = classify_all(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "scheme index " << i;
    EXPECT_FALSE(serial[i].empty()) << "scheme index " << i;
  }
}

// Stress for the guarded batch-handout state (generation_/fn_/count_/
// done_/active_workers_, now IRD_GUARDED_BY(mu_)): hundreds of
// back-to-back generations of varying sizes on one pool, so a late worker
// from batch N always overlaps the start of batch N+1 somewhere. Exactly-
// once handout must survive every generation; the CI TSan job holds the
// conversion to the same story at runtime.
TEST(BatchAnalyzerTest, BackToBackGenerationsHandOutExactlyOnce) {
  BatchAnalyzer batch(8);
  for (size_t generation = 0; generation < 200; ++generation) {
    const size_t count = 1 + (generation * 7) % 97;
    std::vector<std::atomic<int>> hits(count);
    for (std::atomic<int>& h : hits) h.store(0);
    batch.ForEachIndex(count, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1)
          << "generation " << generation << " index " << i;
    }
  }
}

}  // namespace
}  // namespace ird
