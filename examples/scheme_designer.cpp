// Scheme-designer tool: classify database schemes against every class the
// paper studies. With a file argument, reads the text format
// (`relation NAME ( ATTRS ) keys ( K ) [ ( K ) ... ]` lines); without
// arguments, walks through the paper's worked examples.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/classify.h"
#include "diagnostics/render.h"
#include "io/text_format.h"

using namespace ird;

namespace {

struct NamedScheme {
  std::string title;
  DatabaseScheme scheme;
};

DatabaseScheme FromSpec(const char* spec) {
  Result<ParsedDatabase> parsed = ParseDatabaseText(spec);
  IRD_CHECK_MSG(parsed.ok(), "built-in example must parse");
  return parsed->scheme;
}

std::vector<NamedScheme> PaperExamples() {
  std::vector<NamedScheme> out;
  out.push_back({"Example 1, R (university; ind.-reducible, ctm)", FromSpec(R"(
relation R1 ( H R C ) keys ( H R )
relation R2 ( H T R ) keys ( H T ) ( H R )
relation R3 ( H T C ) keys ( H T )
relation R4 ( C S G ) keys ( C S )
relation R5 ( H S R ) keys ( H S )
)")});
  out.push_back({"Example 1, S (merged; independent)", FromSpec(R"(
relation S1 ( H R C T ) keys ( H R ) ( H T )
relation S2 ( C S G ) keys ( C S )
relation S3 ( H S R ) keys ( H S )
)")});
  out.push_back({"Example 2 (not algebraic-maintainable)", FromSpec(R"(
relation R1 ( A B ) keys ( A B )
relation R2 ( B C ) keys ( B )
relation R3 ( A C ) keys ( A )
)")});
  out.push_back({"Example 3 (key-equivalent triangle)", FromSpec(R"(
relation R1 ( A B ) keys ( A ) ( B )
relation R2 ( B C ) keys ( B ) ( C )
relation R3 ( A C ) keys ( A ) ( C )
)")});
  out.push_back({"Examples 4/5/7 (key-equivalent, split key BC)", FromSpec(R"(
relation R1 ( A B ) keys ( A )
relation R2 ( A C ) keys ( A )
relation R3 ( A E ) keys ( A ) ( E )
relation R4 ( E B ) keys ( E )
relation R5 ( E C ) keys ( E )
relation R6 ( B C D ) keys ( B C ) ( D )
relation R7 ( D A ) keys ( D ) ( A )
)")});
  out.push_back({"Example 8 (split key BC)", FromSpec(R"(
relation R1 ( A C ) keys ( A )
relation R2 ( A B ) keys ( A )
relation R3 ( A B C ) keys ( A ) ( B C )
relation R4 ( B C D ) keys ( B C ) ( D )
relation R5 ( A D ) keys ( A ) ( D )
)")});
  out.push_back({"Example 9 (split-free chain; ctm)", FromSpec(R"(
relation R1 ( A B ) keys ( A ) ( B )
relation R2 ( B C ) keys ( B ) ( C )
relation R3 ( C D ) keys ( C ) ( D )
relation R4 ( D E ) keys ( D ) ( E )
)")});
  out.push_back({"Examples 11/12 (independence-reducible, two blocks)",
                 FromSpec(R"(
relation R1 ( A B ) keys ( A ) ( B )
relation R2 ( B C ) keys ( B ) ( C )
relation R3 ( A C ) keys ( A ) ( C )
relation R4 ( A D ) keys ( A )
relation R5 ( D E F ) keys ( D )
relation R6 ( D E G ) keys ( D )
)")});
  out.push_back({"Example 13 (KEP input, three blocks)", FromSpec(R"(
relation R1 ( A B ) keys ( A B )
relation R2 ( C D ) keys ( C D )
relation R3 ( A B C ) keys ( A B )
relation R4 ( A B D ) keys ( A B )
relation R5 ( C D E ) keys ( C D ) ( E )
relation R6 ( E A ) keys ( E )
relation R7 ( E F ) keys ( E )
relation R8 ( F B ) keys ( F )
)")});
  return out;
}

void Report(const NamedScheme& named) {
  std::printf("==============================================\n");
  std::printf("%s\n", named.title.c_str());
  std::printf("----------------------------------------------\n");
  std::printf("%s", named.scheme.ToString().c_str());
  std::printf("\n%s\n", diagnostics::FormatSchemeReport(
                            named.scheme, named.scheme.size() <= 10)
                            .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    Result<ParsedDatabase> parsed = ParseDatabaseText(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    Report({argv[1], parsed->scheme});
    return 0;
  }
  for (const NamedScheme& named : PaperExamples()) {
    Report(named);
  }
  return 0;
}
