// A realistic workload on the paper's university scheme, driven through the
// text format: bulk-load a timetable, police a stream of updates (some
// violating the key dependencies), and answer cross-relation queries with
// readable constant names.

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/block_maintainer.h"
#include "core/total_projection.h"
#include "io/text_format.h"

using namespace ird;

namespace {

constexpr char kDatabase[] = R"(
# The university scheme of Example 1 (PODS'88).
relation Timetable ( H R C ) keys ( H R )
relation Teaching  ( H T R ) keys ( H T ) ( H R )
relation Courses   ( H T C ) keys ( H T )
relation Grades    ( C S G ) keys ( C S )
relation Seating   ( H S R ) keys ( H S )

# Monday 9am block.
insert Timetable mon9 roomA databases
insert Teaching  mon9 codd  roomA
insert Courses   mon9 codd  databases
# Monday 11am block.
insert Timetable mon11 roomB logic
insert Teaching  mon11 fagin roomB
insert Courses   mon11 fagin logic
# Students.
insert Grades databases alice A
insert Grades logic     bob   B
insert Seating mon9  alice roomA
insert Seating mon11 bob   roomB
)";

std::string Render(const ParsedDatabase& db, const PartialTuple& t) {
  std::string out = "<";
  bool first = true;
  t.attrs().ForEach([&](AttributeId a) {
    if (!first) out += ", ";
    out += db.scheme.universe().Name(a) + "=" + db.values.Name(t.At(a));
    first = false;
  });
  return out + ">";
}

}  // namespace

int main() {
  Result<ParsedDatabase> parsed = ParseDatabaseText(kDatabase);
  IRD_CHECK_MSG(parsed.ok(), "built-in database must parse");
  ParsedDatabase& db = parsed.value();
  std::printf("Loaded scheme:\n%s\n", FormatScheme(db.scheme).c_str());

  auto maintainer =
      IndependenceReducibleMaintainer::Create(db.MakeState());
  IRD_CHECK_MSG(maintainer.ok(), maintainer.status().message().c_str());
  std::printf("Scheme is independence-reducible; ctm: %s\n\n",
              maintainer->IsCtm() ? "yes" : "no");

  // --- An update stream; conflicting entries must bounce.
  struct Update {
    const char* relation;
    std::initializer_list<const char*> tokens;
  };
  const Update updates[] = {
      // Tuesday block: fine.
      {"Timetable", {"tue9", "roomA", "algebra"}},
      {"Teaching", {"tue9", "maier", "roomA"}},
      // Same room, same hour, different course: violates HR -> C.
      {"Timetable", {"mon9", "roomA", "calculus"}},
      // Same teacher, same hour, different room: violates HT -> R.
      {"Teaching", {"mon9", "codd", "roomB"}},
      // Alice retakes databases with a new grade: violates CS -> G.
      {"Grades", {"databases", "alice", "C"}},
      // Bob audits databases too: fine.
      {"Grades", {"databases", "bob", "B"}},
  };
  std::printf("Update stream:\n");
  for (const Update& u : updates) {
    size_t rel = db.scheme.FindRelation(u.relation).value();
    // Values in declared order -> attribute-id order.
    std::vector<std::pair<AttributeId, Value>> pairs;
    size_t i = 0;
    for (const char* token : u.tokens) {
      pairs.emplace_back(db.declared_order[rel][i++], db.values.Intern(token));
    }
    std::sort(pairs.begin(), pairs.end());
    AttributeSet attrs;
    std::vector<Value> values;
    for (auto& [a, v] : pairs) {
      attrs.Add(a);
      values.push_back(v);
    }
    PartialTuple tuple(attrs, std::move(values));
    Status status = maintainer->Insert(rel, tuple);
    std::string outcome =
        status.ok() ? "ok"
                    : "REJECTED (" + status.message() + ")";
    std::printf("  %-9s %-38s %s\n", u.relation, Render(db, tuple).c_str(),
                outcome.c_str());
  }

  // --- Queries.
  auto query = [&](const char* title, std::string_view letters) {
    AttributeSet x;
    for (char c : letters) {
      x.Add(db.scheme.universe().Find(std::string_view(&c, 1)).value());
    }
    Result<PartialRelation> answer = TotalProjection(maintainer->state(), x);
    IRD_CHECK(answer.ok());
    std::printf("\n[%s] %s:\n", std::string(letters).c_str(), title);
    for (const PartialTuple& t : answer->tuples()) {
      std::printf("  %s\n", Render(db, t).c_str());
    }
  };
  query("who teaches which course", "TC");
  query("students' hours and courses", "HSC");
  query("teacher/student co-location", "TS");
  return 0;
}
