// The paper's performance story in one program: per-insert validation cost
// as the database grows, for
//   - Algorithm 5 (ctm)       on a split-free key-equivalent scheme,
//   - Algorithm 2 (algebraic) on a split key-equivalent scheme,
//   - the naive full re-chase on both,
//   - and Example 2's scheme, where *no* bounded procedure exists.
// Run without arguments; prints a table of nanoseconds per CheckInsert.

#include <chrono>
#include <cstdio>

#include "core/ctm_maintainer.h"
#include "core/key_equivalent_maintainer.h"
#include "relation/weak_instance.h"
#include "workload/generators.h"

using namespace ird;

namespace {

using Clock = std::chrono::steady_clock;

double NanosPerCall(size_t calls, Clock::time_point start,
                    Clock::time_point end) {
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(calls);
}

template <typename CheckFn>
double Measure(const std::vector<InsertInstance>& stream, size_t rounds,
               CheckFn&& check) {
  auto start = Clock::now();
  size_t calls = 0;
  for (size_t round = 0; round < rounds; ++round) {
    for (const InsertInstance& ins : stream) {
      check(ins);
      ++calls;
    }
  }
  return NanosPerCall(calls, start, Clock::now());
}

void Row(const char* label, size_t entities, double ctm, double alg2,
         double naive) {
  std::printf("%-18s %10zu %14.0f %14.0f %16.0f\n", label, entities, ctm,
              alg2, naive);
}

}  // namespace

int main() {
  std::printf(
      "Per-CheckInsert cost (ns). ctm = Algorithm 5, alg2 = Algorithm 2,\n"
      "naive = full state-tableau chase. '-' = not applicable.\n\n");
  std::printf("%-18s %10s %14s %14s %16s\n", "scheme", "entities",
              "ctm (ns)", "alg2 (ns)", "naive chase (ns)");

  for (size_t entities : {100u, 1000u, 10000u}) {
    StateGenOptions opt;
    opt.entities = entities;
    opt.coverage = 0.7;
    opt.seed = 11;

    {  // Split-free chain: all three procedures apply.
      DatabaseScheme scheme = MakeChainScheme(4);
      DatabaseState state = MakeConsistentState(scheme, opt);
      auto stream = MakeInsertStream(scheme, state, 64, 0.25, 17);
      auto ctm = CtmMaintainer::Create(state, /*verify=*/false);
      auto alg2 = KeyEquivalentMaintainer::Create(state);
      IRD_CHECK(ctm.ok() && alg2.ok());
      size_t naive_rounds = entities <= 1000 ? 1 : 1;
      double t_ctm = Measure(stream, 50, [&](const InsertInstance& ins) {
        (void)ctm->CheckInsert(ins.rel, ins.tuple);
      });
      double t_alg2 = Measure(stream, 50, [&](const InsertInstance& ins) {
        (void)alg2->CheckInsert(ins.rel, ins.tuple);
      });
      double t_naive =
          Measure(stream, naive_rounds, [&](const InsertInstance& ins) {
            (void)WouldRemainConsistent(state, ins.rel, ins.tuple);
          });
      Row("chain (ctm)", entities, t_ctm, t_alg2, t_naive);
    }

    {  // Split scheme: Algorithm 5 is inapplicable (Corollary 3.3).
      DatabaseScheme scheme = MakeSplitScheme(3);
      DatabaseState state = MakeConsistentState(scheme, opt);
      auto stream = MakeInsertStream(scheme, state, 64, 0.25, 19);
      auto alg2 = KeyEquivalentMaintainer::Create(state);
      IRD_CHECK(alg2.ok());
      double t_alg2 = Measure(stream, 50, [&](const InsertInstance& ins) {
        (void)alg2->CheckInsert(ins.rel, ins.tuple);
      });
      double t_naive = Measure(stream, 1, [&](const InsertInstance& ins) {
        (void)WouldRemainConsistent(state, ins.rel, ins.tuple);
      });
      std::printf("%-18s %10zu %14s %14.0f %16.0f\n", "split (not ctm)",
                  entities, "-", t_alg2, t_naive);
    }
  }

  std::printf(
      "\nExample 2 (outside the class): rejecting <a_n, c'> needs the whole\n"
      "zig-zag chain — the chase is the only correct procedure and its cost\n"
      "grows with the chain:\n\n");
  std::printf("%-18s %10s %16s\n", "scheme", "chain n", "naive chase (ns)");
  DatabaseScheme ex2 = DatabaseScheme::Create();
  ex2.AddRelation("R1", "AB", {"AB"});
  ex2.AddRelation("R2", "BC", {"B"});
  ex2.AddRelation("R3", "AC", {"A"});
  for (size_t n : {64u, 256u, 1024u}) {
    DatabaseState state(ex2);
    state.Insert("R3", {1000, 1});
    for (size_t i = 0; i < n; ++i) {
      state.Insert("R1", {static_cast<Value>(1000 + i),
                          static_cast<Value>(500000 + i)});
      state.Insert("R1", {static_cast<Value>(1000 + i + 1),
                          static_cast<Value>(500000 + i)});
    }
    AttributeSet ac = ex2.universe_ptr()->Chars("AC");
    PartialTuple insert(ac, {static_cast<Value>(1000 + n), 2});
    auto start = Clock::now();
    constexpr size_t kCalls = 5;
    for (size_t i = 0; i < kCalls; ++i) {
      IRD_CHECK(!WouldRemainConsistent(state, 2, insert));
    }
    std::printf("%-18s %10zu %16.0f\n", "example 2", n,
                NanosPerCall(kCalls, start, Clock::now()));
  }
  return 0;
}
