// Witness explorer: the paper's impossibility arguments, materialized.
// For each demonstration scheme it prints
//   - the γ-cycle (if any) in the scheme's hypergraph,
//   - the adversarial split instance of Theorem 3.4 (and shows raw key
//     probes accepting an insert the chase rejects),
//   - the LSAT ≠ WSAT dependence witness for non-independent schemes.

#include <cstdio>

#include "core/ctm_maintainer.h"
#include "core/independence.h"
#include "core/independence_witness.h"
#include "core/split.h"
#include "core/split_witness.h"
#include "hypergraph/gamma_cycle.h"
#include "io/text_format.h"
#include "relation/weak_instance.h"

using namespace ird;

namespace {

DatabaseScheme Example4() {
  Result<ParsedDatabase> parsed = ParseDatabaseText(R"(
relation R1 ( A B ) keys ( A )
relation R2 ( A C ) keys ( A )
relation R3 ( A E ) keys ( A ) ( E )
relation R4 ( E B ) keys ( E )
relation R5 ( E C ) keys ( E )
relation R6 ( B C D ) keys ( B C ) ( D )
relation R7 ( D A ) keys ( D ) ( A )
)");
  IRD_CHECK(parsed.ok());
  return parsed->scheme;
}

DatabaseScheme Example1R() {
  Result<ParsedDatabase> parsed = ParseDatabaseText(R"(
relation R1 ( H R C ) keys ( H R )
relation R2 ( H T R ) keys ( H T ) ( H R )
relation R3 ( H T C ) keys ( H T )
relation R4 ( C S G ) keys ( C S )
relation R5 ( H S R ) keys ( H S )
)");
  IRD_CHECK(parsed.ok());
  return parsed->scheme;
}

void PrintState(const DatabaseState& state, const char* indent) {
  for (size_t rel = 0; rel < state.relation_count(); ++rel) {
    if (state.relation(rel).empty()) continue;
    std::printf("%s%s: %s\n", indent,
                state.scheme().relation(rel).name.c_str(),
                state.relation(rel).ToString(state.universe()).c_str());
  }
}

}  // namespace

int main() {
  // --- γ-cycles -------------------------------------------------------------
  std::printf("== γ-cycles ==\n");
  for (auto& [name, scheme] :
       {std::pair<const char*, DatabaseScheme>{"Example 1 R", Example1R()},
        {"Example 4", Example4()}}) {
    Hypergraph h = Hypergraph::Of(scheme);
    auto cycle = FindGammaCycle(h);
    if (cycle.has_value()) {
      std::printf("  %s: γ-cyclic via %s\n", name,
                  cycle->ToString(scheme.universe()).c_str());
    } else {
      std::printf("  %s: γ-acyclic\n", name);
    }
  }

  // --- The split witness ------------------------------------------------------
  std::printf("\n== Theorem 3.4: the split key BC of Example 4 ==\n");
  DatabaseScheme ex4 = Example4();
  AttributeSet bc;
  bc.Add(ex4.universe().Find("B").value());
  bc.Add(ex4.universe().Find("C").value());
  IRD_CHECK(IsKeySplit(ex4, bc));
  Result<SplitWitness> w = BuildSplitWitness(ex4, bc);
  IRD_CHECK(w.ok());
  std::printf("base state (consistent):\n");
  PrintState(w->state, "  ");
  std::printf("insert %s into %s:\n",
              w->insert.ToString(ex4.universe()).c_str(),
              ex4.relation(w->insert_rel).name.c_str());
  std::printf("  chase verdict:          %s\n",
              WouldRemainConsistent(w->state, w->insert_rel, w->insert)
                  ? "consistent"
                  : "INCONSISTENT");
  Result<StateKeyIndex> idx = StateKeyIndex::Build(w->state);
  IRD_CHECK(idx.ok());
  std::printf("  raw key-probe verdict:  %s   <- why split schemes are not "
              "ctm\n",
              CheckInsertCtm(ex4, *idx, w->insert_rel, w->insert).ok()
                  ? "consistent (WRONG)"
                  : "inconsistent");

  // --- The dependence witness ---------------------------------------------------
  std::printf("\n== LSAT ≠ WSAT: Example 1's R is not independent ==\n");
  DatabaseScheme ex1 = Example1R();
  auto violation = FindUniquenessViolation(ex1);
  IRD_CHECK(violation.has_value());
  std::printf("uniqueness violation: %s\n",
              violation->ToString(ex1).c_str());
  Result<DatabaseState> witness = BuildDependenceWitness(ex1);
  IRD_CHECK(witness.ok());
  std::printf("witness state (every relation satisfies its own keys):\n");
  PrintState(*witness, "  ");
  std::printf("  locally consistent: %s\n",
              IsLocallyConsistent(*witness) ? "yes" : "no");
  std::printf("  globally consistent: %s\n",
              IsConsistent(*witness) ? "yes" : "NO");
  return 0;
}
