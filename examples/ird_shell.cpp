// ird_shell: a line-oriented shell over the library — declare a scheme,
// load data, police inserts, and ask weak-instance queries. Reads commands
// from stdin (or from a script file given as argv[1]):
//
//   relation R ( A B ) keys ( A )      declare a relation (before any data)
//   insert R a1 b1                     validated insert (blocks on violations)
//   query A B                          the [A,B]-total projection
//   classify                           the full class report
//   plan A B                           show the compiled query expression
//   check                              re-verify consistency (chase)
//   dump                               print the current state
//   help / quit
//
// Demo: ./ird_shell <<'EOF'
//   relation Course ( H R C ) keys ( H R )
//   insert Course mon roomA db
//   query H C
// EOF

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/block_maintainer.h"
#include "core/classify.h"
#include "diagnostics/render.h"
#include "core/query_engine.h"
#include "io/text_format.h"
#include "relation/weak_instance.h"

using namespace ird;

namespace {

class Shell {
 public:
  void Run(std::istream& in) {
    std::string line;
    while (std::getline(in, line)) {
      if (!Dispatch(line)) break;
    }
  }

 private:
  static std::vector<std::string> Words(const std::string& line) {
    std::istringstream stream(line);
    std::vector<std::string> out;
    std::string word;
    while (stream >> word) out.push_back(word);
    return out;
  }

  // Returns false to quit.
  bool Dispatch(const std::string& line) {
    std::vector<std::string> words = Words(line);
    if (words.empty() || words[0][0] == '#') return true;
    const std::string& cmd = words[0];
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::puts(
          "commands: relation | insert | query | plan | classify | check | "
          "dump | quit");
    } else if (cmd == "relation") {
      DeclareRelation(line);
    } else if (cmd == "insert") {
      Insert(words);
    } else if (cmd == "query") {
      Query(words);
    } else if (cmd == "plan") {
      Plan(words);
    } else if (cmd == "classify") {
      if (Ready()) {
        std::printf("%s", diagnostics::FormatSchemeReport(db_.scheme).c_str());
      }
    } else if (cmd == "check") {
      if (Ready()) {
        std::printf("%s\n", IsConsistent(maintainer_->state())
                                ? "consistent"
                                : "INCONSISTENT");
      }
    } else if (cmd == "dump") {
      if (Ready()) {
        std::printf("%s", FormatState(maintainer_->state(), db_.values).c_str());
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

  void DeclareRelation(const std::string& line) {
    if (maintainer_.has_value()) {
      std::puts("error: declare all relations before inserting data");
      return;
    }
    schema_text_ += line + "\n";
    Result<ParsedDatabase> parsed = ParseDatabaseText(schema_text_);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      schema_text_.erase(schema_text_.rfind(line));
      return;
    }
    db_ = std::move(parsed).value();
    std::printf("ok: %zu relation(s)\n", db_.scheme.size());
  }

  // Lazily freezes the schema into maintainer + query engine.
  bool Ready() {
    if (maintainer_.has_value()) return true;
    if (db_.scheme.size() == 0) {
      std::puts("error: no relations declared");
      return false;
    }
    Status valid = db_.scheme.Validate();
    if (!valid.ok()) {
      std::printf("error: %s\n", valid.ToString().c_str());
      return false;
    }
    auto m = IndependenceReducibleMaintainer::Create(DatabaseState(db_.scheme));
    if (!m.ok()) {
      std::printf("error: %s\n", m.status().ToString().c_str());
      return false;
    }
    maintainer_.emplace(std::move(m).value());
    auto engine = QueryEngine::Create(db_.scheme);
    IRD_CHECK(engine.ok());  // acceptance already established
    engine_.emplace(std::move(engine).value());
    std::printf("schema frozen: independence-reducible, %s\n",
                maintainer_->IsCtm() ? "ctm" : "not ctm (split block)");
    return true;
  }

  void Insert(const std::vector<std::string>& words) {
    if (!Ready()) return;
    if (words.size() < 2) {
      std::puts("usage: insert <relation> <values...>");
      return;
    }
    Result<size_t> rel = db_.scheme.FindRelation(words[1]);
    if (!rel.ok()) {
      std::printf("error: %s\n", rel.status().ToString().c_str());
      return;
    }
    const std::vector<AttributeId>& order = db_.declared_order[*rel];
    if (words.size() - 2 != order.size()) {
      std::printf("error: %s expects %zu values\n", words[1].c_str(),
                  order.size());
      return;
    }
    std::vector<std::pair<AttributeId, Value>> pairs;
    for (size_t i = 0; i < order.size(); ++i) {
      pairs.emplace_back(order[i], db_.values.Intern(words[2 + i]));
    }
    std::sort(pairs.begin(), pairs.end());
    AttributeSet attrs;
    std::vector<Value> values;
    for (auto& [a, v] : pairs) {
      attrs.Add(a);
      values.push_back(v);
    }
    Status status = maintainer_->Insert(*rel, PartialTuple(attrs, values));
    std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
  }

  std::optional<AttributeSet> ParseAttrs(const std::vector<std::string>& words) {
    AttributeSet x;
    for (size_t i = 1; i < words.size(); ++i) {
      Result<AttributeId> id = db_.scheme.universe().Find(words[i]);
      if (!id.ok()) {
        std::printf("error: unknown attribute '%s'\n", words[i].c_str());
        return std::nullopt;
      }
      x.Add(*id);
    }
    if (x.Empty()) {
      std::puts("usage: query/plan <attr> [<attr>...]");
      return std::nullopt;
    }
    return x;
  }

  void Query(const std::vector<std::string>& words) {
    if (!Ready()) return;
    std::optional<AttributeSet> x = ParseAttrs(words);
    if (!x.has_value()) return;
    PartialRelation answer = engine_->TotalProjection(maintainer_->state(), *x);
    for (const PartialTuple& t : answer.tuples()) {
      std::string row;
      t.attrs().ForEach([&](AttributeId a) {
        if (!row.empty()) row += ", ";
        row += db_.scheme.universe().Name(a) + "=" +
               db_.values.Name(t.At(a));
      });
      std::printf("  %s\n", row.c_str());
    }
    std::printf("(%zu row(s))\n", answer.size());
  }

  void Plan(const std::vector<std::string>& words) {
    if (!Ready()) return;
    std::optional<AttributeSet> x = ParseAttrs(words);
    if (!x.has_value()) return;
    ExprPtr plan = engine_->PlanFor(*x);
    if (plan == nullptr) {
      std::puts("no covering expression: the projection is always empty");
    } else {
      std::printf("%s\n", plan->ToString(db_.scheme).c_str());
    }
  }

  std::string schema_text_;
  ParsedDatabase db_;
  std::optional<IndependenceReducibleMaintainer> maintainer_;
  std::optional<QueryEngine> engine_;
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    shell.Run(file);
  } else {
    shell.Run(std::cin);
  }
  return 0;
}
