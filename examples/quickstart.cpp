// Quickstart: the university database of the paper's Example 1, end to end.
//
//   1. Declare the scheme (relations + candidate keys).
//   2. Recognize it: independence-reducible? ctm? (Algorithm 6 + split test)
//   3. Maintain it: validated inserts in constant time (Algorithm 5 via the
//      block maintainer).
//   4. Query it: total projections through the bounded expressions of
//      Theorem 4.1.

#include <algorithm>
#include <cstdio>

#include "core/block_maintainer.h"
#include "core/classify.h"
#include "diagnostics/render.h"
#include "core/total_projection.h"
#include "schema/database_scheme.h"

using namespace ird;

namespace {

PartialTuple MakeTuple(const DatabaseScheme& scheme, const char* letters,
                       std::initializer_list<Value> values) {
  AttributeSet attrs;
  std::vector<std::pair<AttributeId, Value>> pairs;
  auto v = values.begin();
  for (const char* p = letters; *p != '\0'; ++p, ++v) {
    AttributeId id = scheme.universe().Find(std::string_view(p, 1)).value();
    pairs.emplace_back(id, *v);
  }
  std::sort(pairs.begin(), pairs.end());
  std::vector<Value> ordered;
  for (auto& [id, value] : pairs) {
    attrs.Add(id);
    ordered.push_back(value);
  }
  return PartialTuple(attrs, std::move(ordered));
}

}  // namespace

int main() {
  // --- 1. The scheme. H = hour, R = room, C = course, T = teacher,
  //        S = student, G = grade.
  DatabaseScheme scheme = DatabaseScheme::Create();
  scheme.AddRelation("R1", "HRC", {"HR"});
  scheme.AddRelation("R2", "HTR", {"HT", "HR"});
  scheme.AddRelation("R3", "HTC", {"HT"});
  scheme.AddRelation("R4", "CSG", {"CS"});
  scheme.AddRelation("R5", "HSR", {"HS"});
  std::printf("=== Scheme ===\n%s\n", scheme.ToString().c_str());

  // --- 2. Classification (the paper's Example 1 verdict), with the
  //        witness-backed diagnostics explaining every "no".
  std::printf("=== Classification ===\n%s\n",
              diagnostics::FormatSchemeReport(scheme).c_str());

  // --- 3. Constant-time maintenance.
  auto maintainer =
      IndependenceReducibleMaintainer::Create(DatabaseState(scheme));
  IRD_CHECK(maintainer.ok());
  std::printf("=== Maintenance ===\n");
  constexpr Value h9 = 9, room101 = 101, algebra = 500, drcodd = 700,
                  alice = 800, gradeA = 1, drfagin = 701;
  struct Insert {
    const char* rel;
    const char* attrs;
    std::initializer_list<Value> values;
  };
  const Insert inserts[] = {
      {"R1", "HRC", {h9, room101, algebra}},
      {"R2", "HTR", {h9, drcodd, room101}},
      {"R3", "HTC", {h9, drcodd, algebra}},
      {"R4", "CSG", {algebra, alice, gradeA}},
      {"R5", "HSR", {h9, alice, room101}},
      // A second teacher in the same room at the same hour: HR -> T says no.
      {"R2", "HTR", {h9, drfagin, room101}},
  };
  for (const Insert& ins : inserts) {
    size_t rel = maintainer->state().scheme().FindRelation(ins.rel).value();
    PartialTuple tuple = MakeTuple(scheme, ins.attrs, ins.values);
    Status status = maintainer->Insert(rel, tuple);
    std::printf("  insert %s %-28s -> %s\n", ins.rel,
                tuple.ToString(scheme.universe()).c_str(),
                status.ok() ? "accepted" : status.ToString().c_str());
  }

  // --- 4. Query answering: "which students attend which courses at which
  //        hours?" = the {H, S, C}-total projection.
  AttributeSet hsc = scheme.universe_ptr()->Chars("HSC");
  Result<PartialRelation> answer =
      TotalProjection(maintainer->state(), hsc);
  IRD_CHECK(answer.ok());
  std::printf("\n=== Query [HSC] ===\n");
  for (const PartialTuple& t : answer->tuples()) {
    std::printf("  %s\n", t.ToString(scheme.universe()).c_str());
  }
  std::printf(
      "\n(Alice is placed in the algebra course at hour 9 even though no\n"
      " single relation stores that fact — the weak instance model derives\n"
      " it through HS -> R and HR -> C.)\n");
  return 0;
}
