// SchemeAnalysis: the compiled form of one DatabaseScheme, shared by every
// stage of the recognition pipeline (KEP, the Lemma 3.8 split test, the
// uniqueness condition, Algorithm 6) and by the layers above it
// (diagnostics, bench CLIs). Built once per scheme, it owns
//
//   * the interned key-dependency FdSets — the full cover, every per-pool
//     cover KEP and the split test ask for, and the leave-one-out covers
//     F - Fj of the uniqueness condition (a leave-one-out pool is just the
//     full pool minus one index, so all three kinds live in one map);
//   * one lazily built ClosureEngine per cover, plus a closure memo table
//     (AttributeSet -> AttributeSet) in front of each engine;
//   * the cached pipeline results: KEP partition, induced scheme (with its
//     own child SchemeAnalysis), uniqueness verdict, per-pool split keys,
//     key-equivalence and losslessness verdicts.
//
// Staleness is detected through DatabaseScheme::revision(): every accessor
// compares the revision it compiled against and drops all caches on a
// mismatch (counter: engine.invalidations). Holding references into the
// caches across a scheme mutation is therefore an error.
//
// Threading: a SchemeAnalysis is NOT thread-safe — memo tables and the
// ClosureEngine scratch buffers are mutated on query. The intended model
// (enforced by BatchAnalyzer, see engine/batch.h) is one SchemeAnalysis per
// scheme per worker; the underlying DatabaseScheme must not be shared
// across workers either, because its FD cache is lazily built.
//
// This layer sits between schema and core: it depends only on
// base/obs/fd/schema, and src/core's algorithms fill its typed cache slots.

#ifndef IRD_ENGINE_SCHEME_ANALYSIS_H_
#define IRD_ENGINE_SCHEME_ANALYSIS_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/attribute_set.h"
#include "fd/closure_engine.h"
#include "fd/fd_set.h"
#include "schema/database_scheme.h"

namespace ird {

// A witness that the uniqueness condition fails: Closure_{F-Fj}(Ri) embeds
// the key dependency key -> attr of Rj. (Declared here rather than in
// core/independence.h so SchemeAnalysis can cache the verdict; core's
// headers re-export it.)
struct UniquenessViolation {
  size_t i;
  size_t j;
  AttributeSet key;       // a key of Rj
  AttributeId attribute;  // an attribute of Rj - key inside the closure

  std::string ToString(const DatabaseScheme& scheme) const;
};

class SchemeAnalysis {
 public:
  // Typed result slots filled by the core algorithms (core/kep.cc,
  // core/recognition.cc, core/independence.cc, core/split.cc, ...). Each
  // slot is the cached return value of exactly one pipeline entry point;
  // a default-constructed slot means "not computed yet".
  struct Cache {
    // KeyEquivalentPartition: blocks sorted by smallest member.
    std::optional<std::vector<std::vector<size_t>>> kep_partition;
    // InducedScheme of the KEP partition. Heap-allocated so its address is
    // stable for the child analysis below.
    std::unique_ptr<DatabaseScheme> induced;
    // Child analysis over *induced (points into `induced`; reset first).
    std::unique_ptr<SchemeAnalysis> induced_analysis;
    // FindUniquenessViolation on *this* scheme.
    bool uniqueness_computed = false;
    std::optional<UniquenessViolation> uniqueness;
    // SplitKeys / IsKeySplit per pool (pool key: sorted index vector; the
    // empty vector is never used — callers normalize to the full pool).
    std::map<std::vector<size_t>, std::vector<AttributeSet>> split_keys;
    std::map<std::pair<std::vector<size_t>, AttributeSet>, bool> key_split;
    // IsKeyEquivalent / IsLossless on the whole scheme.
    std::optional<bool> key_equivalent;
    std::optional<bool> lossless;
  };

  explicit SchemeAnalysis(const DatabaseScheme& scheme);
  ~SchemeAnalysis();

  // Non-copyable, non-movable: cached child analyses and returned cover
  // references point into this object.
  SchemeAnalysis(const SchemeAnalysis&) = delete;
  SchemeAnalysis& operator=(const SchemeAnalysis&) = delete;

  const DatabaseScheme& scheme() const { return *scheme_; }

  // The memoized closure of `x` wrt the key dependencies of `pool` (empty
  // pool = all of R). First query per (pool, x) builds/consults the pool's
  // engine and caches the result; later queries are a hash lookup.
  AttributeSet Closure(const std::vector<size_t>& pool, const AttributeSet& x);

  // Closure wrt the full cover F.
  AttributeSet FullClosure(const AttributeSet& x) {
    return Closure(full_pool_, x);
  }

  // Closure wrt F - F_excluded (the uniqueness condition's engines). For a
  // single-relation scheme the leave-one-out cover is empty and the
  // closure is the identity.
  AttributeSet ClosureExcept(size_t excluded, const AttributeSet& x);

  // rhs ⊆ FullClosure(lhs)?
  bool FullImplies(const AttributeSet& lhs, const AttributeSet& rhs) {
    return rhs.IsSubsetOf(FullClosure(lhs));
  }

  // The interned key-dependency cover of `pool` (empty = all of R). Valid
  // until the next revision change.
  const FdSet& CoverOf(const std::vector<size_t>& pool);

  // The pool's raw engine, bypassing the memo table — for exponential
  // subset enumerations (BCNF-style scans) whose 2^k distinct queries
  // would only bloat the memo. Valid until the next revision change.
  const ClosureEngine& EngineFor(const std::vector<size_t>& pool);

  // The cached pipeline results. Calling this (or any query above) first
  // revalidates against the scheme's revision counter, dropping every
  // cover, memo and slot on a mismatch.
  Cache& cache() {
    Revalidate();
    return cache_;
  }

  // Introspection for tests: engines built so far / revision compiled
  // against.
  size_t built_engine_count() const { return covers_.size(); }
  uint64_t seen_revision() const { return seen_revision_; }

 private:
  struct CoverEntry {
    explicit CoverEntry(FdSet fds) : cover(std::move(fds)), engine(cover) {}
    FdSet cover;
    ClosureEngine engine;
    std::unordered_map<AttributeSet, AttributeSet, AttributeSetHash> memo;
  };

  void Revalidate();
  CoverEntry& Entry(const std::vector<size_t>& pool);

  const DatabaseScheme* scheme_;
  uint64_t seen_revision_;
  std::vector<size_t> full_pool_;
  // Keyed by sorted pool index vector; entries heap-allocated so engine
  // and cover references survive map rehash/rebalance.
  std::map<std::vector<size_t>, std::unique_ptr<CoverEntry>> covers_;
  Cache cache_;
};

// BMSU losslessness through the shared full-cover engine: R is lossless
// iff some Ri's full closure covers ∪R. Equivalent to
// DatabaseScheme::IsLossless but memoized (the per-relation closures are
// the same queries KEP's root refinement makes).
bool IsLossless(SchemeAnalysis& analysis);

}  // namespace ird

#endif  // IRD_ENGINE_SCHEME_ANALYSIS_H_
