#include "engine/batch.h"

#include "obs/obs.h"

namespace ird {

BatchAnalyzer::BatchAnalyzer(size_t jobs) {
  if (jobs <= 1) return;
  workers_.reserve(jobs - 1);
  for (size_t i = 0; i + 1 < jobs; ++i) {
    workers_.emplace_back([this] { Worker(); });
  }
}

BatchAnalyzer::~BatchAnalyzer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void BatchAnalyzer::Worker() {
  uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const std::function<void(size_t)>* fn = fn_;
    const size_t count = count_;
    // active_workers_ keeps the batch open until this worker has left its
    // drain loop — ForEachIndex must not return (and a new batch must not
    // reuse fn_/count_) while any worker may still claim an index.
    ++active_workers_;
    lock.unlock();
    size_t processed = 0;
    for (size_t i; (i = next_.fetch_add(1, std::memory_order_relaxed)) <
                   count;) {
      (*fn)(i);
      ++processed;
    }
    lock.lock();
    done_ += processed;
    --active_workers_;
    if (done_ == count_ && active_workers_ == 0) done_cv_.notify_all();
  }
}

void BatchAnalyzer::ForEachIndex(size_t count,
                                 const std::function<void(size_t)>& fn) {
  IRD_SPAN("engine.batch");
  IRD_COUNT_ADD(engine.batch.tasks, count);
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    count_ = count;
    done_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is the final worker of the batch.
  size_t processed = 0;
  for (size_t i;
       (i = next_.fetch_add(1, std::memory_order_relaxed)) < count;) {
    fn(i);
    ++processed;
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_ += processed;
  done_cv_.wait(lock,
                [&] { return done_ == count_ && active_workers_ == 0; });
  fn_ = nullptr;
}

void BatchAnalyzer::AnalyzeEach(
    const std::vector<const DatabaseScheme*>& schemes,
    const std::function<void(size_t, SchemeAnalysis&)>& fn) {
  ForEachIndex(schemes.size(), [&](size_t i) {
    SchemeAnalysis analysis(*schemes[i]);
    fn(i, analysis);
  });
}

}  // namespace ird
