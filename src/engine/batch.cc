#include "engine/batch.h"

#include "base/mutex.h"
#include "obs/obs.h"

namespace ird {

BatchAnalyzer::BatchAnalyzer(size_t jobs) {
  if (jobs <= 1) return;
  workers_.reserve(jobs - 1);
  for (size_t i = 0; i + 1 < jobs; ++i) {
    workers_.emplace_back([this] { Worker(); });
  }
}

BatchAnalyzer::~BatchAnalyzer() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void BatchAnalyzer::Worker() {
  uint64_t seen = 0;
  mu_.Lock();
  for (;;) {
    while (!shutdown_ && generation_ == seen) work_cv_.Wait(mu_);
    if (shutdown_) break;
    seen = generation_;
    const std::function<void(size_t)>* fn = fn_;
    const size_t count = count_;
    obs::ObsContext* ctx = ctx_;
    // active_workers_ keeps the batch open until this worker has left its
    // drain loop — ForEachIndex must not return (and a new batch must not
    // reuse fn_/count_) while any worker may still claim an index.
    ++active_workers_;
    mu_.Unlock();
    size_t processed = 0;
    {
      // Attribute this worker's share of the batch to the operation that
      // launched it. The scope ends before done_ is published, so the
      // context outlives every tally made under it.
      obs::ObsContextScope adopt(ctx);
      for (size_t i; (i = next_.fetch_add(1, std::memory_order_relaxed)) <
                     count;) {
        (*fn)(i);
        ++processed;
      }
    }
    mu_.Lock();
    done_ += processed;
    --active_workers_;
    if (done_ == count_ && active_workers_ == 0) done_cv_.NotifyAll();
  }
  mu_.Unlock();
}

void BatchAnalyzer::ForEachIndex(size_t count,
                                 const std::function<void(size_t)>& fn) {
  IRD_SPAN("engine.batch");
  IRD_COUNT_ADD(engine.batch.tasks, count);
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    ctx_ = obs::CurrentContext();
    count_ = count;
    done_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.NotifyAll();
  // The caller is the final worker of the batch.
  size_t processed = 0;
  for (size_t i;
       (i = next_.fetch_add(1, std::memory_order_relaxed)) < count;) {
    fn(i);
    ++processed;
  }
  MutexLock lock(mu_);
  done_ += processed;
  while (!(done_ == count_ && active_workers_ == 0)) done_cv_.Wait(mu_);
  fn_ = nullptr;
  ctx_ = nullptr;
}

void BatchAnalyzer::AnalyzeEach(
    const std::vector<const DatabaseScheme*>& schemes,
    const std::function<void(size_t, SchemeAnalysis&)>& fn) {
  ForEachIndex(schemes.size(), [&](size_t i) {
    SchemeAnalysis analysis(*schemes[i]);
    fn(i, analysis);
  });
}

}  // namespace ird
