#include "engine/scheme_analysis.h"

#include <numeric>

#include "obs/obs.h"

namespace ird {

std::string UniquenessViolation::ToString(
    const DatabaseScheme& scheme) const {
  return "closure of " + scheme.relation(i).name + " without the keys of " +
         scheme.relation(j).name + " embeds the key dependency " +
         scheme.universe().Format(key) + " -> " +
         scheme.universe().Name(attribute);
}

SchemeAnalysis::SchemeAnalysis(const DatabaseScheme& scheme)
    : scheme_(&scheme), seen_revision_(scheme.revision()) {
  full_pool_.resize(scheme_->size());
  std::iota(full_pool_.begin(), full_pool_.end(), 0);
}

SchemeAnalysis::~SchemeAnalysis() = default;

void SchemeAnalysis::Revalidate() {
  if (seen_revision_ == scheme_->revision()) return;
  IRD_COUNT(engine.invalidations);
  // The child analysis points into cache_.induced; drop it first.
  cache_.induced_analysis.reset();
  cache_ = Cache{};
  covers_.clear();
  full_pool_.resize(scheme_->size());
  std::iota(full_pool_.begin(), full_pool_.end(), 0);
  seen_revision_ = scheme_->revision();
}

SchemeAnalysis::CoverEntry& SchemeAnalysis::Entry(
    const std::vector<size_t>& pool) {
  Revalidate();
  const std::vector<size_t>& key = pool.empty() ? full_pool_ : pool;
  auto it = covers_.find(key);
  if (it == covers_.end()) {
    // Exactly one engine is ever built per distinct cover of this scheme
    // (until invalidation) — the acceptance invariant behind this counter.
    IRD_COUNT(engine.closure_engine.builds);
    it = covers_
             .emplace(key, std::make_unique<CoverEntry>(
                               scheme_->KeyDependenciesOf(key)))
             .first;
  }
  return *it->second;
}

AttributeSet SchemeAnalysis::Closure(const std::vector<size_t>& pool,
                                     const AttributeSet& x) {
  CoverEntry& entry = Entry(pool);
  auto it = entry.memo.find(x);
  if (it != entry.memo.end()) {
    IRD_COUNT(engine.closure_memo.hits);
    return it->second;
  }
  IRD_COUNT(engine.closure_memo.misses);
  AttributeSet closure = entry.engine.Closure(x);
  entry.memo.emplace(x, closure);
  return closure;
}

AttributeSet SchemeAnalysis::ClosureExcept(size_t excluded,
                                           const AttributeSet& x) {
  IRD_DCHECK(excluded < scheme_->size());
  std::vector<size_t> pool;
  pool.reserve(scheme_->size());
  for (size_t i = 0; i < scheme_->size(); ++i) {
    if (i != excluded) pool.push_back(i);
  }
  // An empty leave-one-out cover closes nothing (and must not fall back to
  // the full pool, which is what an empty `pool` argument means).
  if (pool.empty()) return x;
  return Closure(pool, x);
}

const FdSet& SchemeAnalysis::CoverOf(const std::vector<size_t>& pool) {
  return Entry(pool).cover;
}

const ClosureEngine& SchemeAnalysis::EngineFor(
    const std::vector<size_t>& pool) {
  return Entry(pool).engine;
}

bool IsLossless(SchemeAnalysis& analysis) {
  SchemeAnalysis::Cache& cache = analysis.cache();
  if (cache.lossless.has_value()) return *cache.lossless;
  const DatabaseScheme& scheme = analysis.scheme();
  AttributeSet all = scheme.AllAttrs();
  bool lossless = false;
  for (size_t i = 0; i < scheme.size() && !lossless; ++i) {
    lossless = all.IsSubsetOf(analysis.FullClosure(scheme.relation(i).attrs));
  }
  cache.lossless = lossless;
  return lossless;
}

}  // namespace ird
