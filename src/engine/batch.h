// BatchAnalyzer: a fixed thread pool with an indexed work queue, for
// corpus-scale fan-out of scheme analysis (ird_lint --jobs, ird_stats
// --anchors --jobs, fuzz_driver --jobs).
//
// The concurrency model keeps the single-threaded invariants of the rest
// of the engine intact:
//   * work is handed out as indices into the caller's input list, one
//     index to exactly one worker, so each DatabaseScheme / SchemeAnalysis
//     is touched by a single thread (neither object is thread-safe);
//   * callers collect results into pre-sized slots indexed by input
//     position, then render serially after ForEachIndex returns — output
//     is input-ordered and byte-identical regardless of the job count;
//   * the only cross-thread state the payload touches is the obs registry
//     (relaxed atomics, thread-safe by design).
//
// Observability: ForEachIndex captures the calling thread's current
// obs::ObsContext and every worker adopts it for the duration of its drain
// loop, so counters/spans/histograms recorded by pooled payloads attribute
// to the operation that launched the batch (obs/context.h). This is safe
// because ForEachIndex does not return until every worker has left the
// batch — the context strictly outlives all adoption scopes.
//
// The batch handout state is guarded by mu_ except the atomic cursor —
// and since the fields carry IRD_GUARDED_BY(mu_), that sentence is a
// compiler-checked fact under clang -Wthread-safety, not a comment.
//
// ForEachIndex blocks until every index has run. Payloads must not throw.

#ifndef IRD_ENGINE_BATCH_H_
#define IRD_ENGINE_BATCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "engine/scheme_analysis.h"
#include "obs/obs.h"

namespace ird {

class BatchAnalyzer {
 public:
  // Spawns jobs-1 persistent workers; the calling thread is the jobs-th
  // worker during ForEachIndex. jobs <= 1 spawns nothing and runs every
  // batch inline (no threads, no synchronization).
  explicit BatchAnalyzer(size_t jobs);
  ~BatchAnalyzer() IRD_EXCLUDES(mu_);

  BatchAnalyzer(const BatchAnalyzer&) = delete;
  BatchAnalyzer& operator=(const BatchAnalyzer&) = delete;

  size_t jobs() const { return workers_.size() + 1; }

  // Runs fn(i) exactly once for every i in [0, count), distributed over
  // the pool, and blocks until all of them finished. Not reentrant: one
  // batch at a time per analyzer (callers that may overlap serialize
  // themselves — see ShardedMaintainer::batch_mu_).
  void ForEachIndex(size_t count, const std::function<void(size_t)>& fn)
      IRD_EXCLUDES(mu_);

  // Convenience: one fresh SchemeAnalysis per scheme, built and consumed
  // on whichever worker claims the index.
  void AnalyzeEach(const std::vector<const DatabaseScheme*>& schemes,
                   const std::function<void(size_t, SchemeAnalysis&)>& fn)
      IRD_EXCLUDES(mu_);

 private:
  void Worker() IRD_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  // Batch handout state. Everything below except the atomic cursor is
  // written only with mu_ held.
  uint64_t generation_ IRD_GUARDED_BY(mu_) = 0;
  const std::function<void(size_t)>* fn_ IRD_GUARDED_BY(mu_) = nullptr;
  // The launching operation's context, adopted by workers for this batch.
  obs::ObsContext* ctx_ IRD_GUARDED_BY(mu_) = nullptr;
  size_t count_ IRD_GUARDED_BY(mu_) = 0;
  size_t done_ IRD_GUARDED_BY(mu_) = 0;
  size_t active_workers_ IRD_GUARDED_BY(mu_) = 0;
  bool shutdown_ IRD_GUARDED_BY(mu_) = false;
  std::atomic<size_t> next_{0};
  std::vector<std::thread> workers_;
};

}  // namespace ird

#endif  // IRD_ENGINE_BATCH_H_
