// BatchAnalyzer: a fixed thread pool with an indexed work queue, for
// corpus-scale fan-out of scheme analysis (ird_lint --jobs, ird_stats
// --anchors --jobs, fuzz_driver --jobs).
//
// The concurrency model keeps the single-threaded invariants of the rest
// of the engine intact:
//   * work is handed out as indices into the caller's input list, one
//     index to exactly one worker, so each DatabaseScheme / SchemeAnalysis
//     is touched by a single thread (neither object is thread-safe);
//   * callers collect results into pre-sized slots indexed by input
//     position, then render serially after ForEachIndex returns — output
//     is input-ordered and byte-identical regardless of the job count;
//   * the only cross-thread state the payload touches is the obs registry
//     (relaxed atomics, thread-safe by design).
//
// ForEachIndex blocks until every index has run. Payloads must not throw.

#ifndef IRD_ENGINE_BATCH_H_
#define IRD_ENGINE_BATCH_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/scheme_analysis.h"

namespace ird {

class BatchAnalyzer {
 public:
  // Spawns jobs-1 persistent workers; the calling thread is the jobs-th
  // worker during ForEachIndex. jobs <= 1 spawns nothing and runs every
  // batch inline (no threads, no synchronization).
  explicit BatchAnalyzer(size_t jobs);
  ~BatchAnalyzer();

  BatchAnalyzer(const BatchAnalyzer&) = delete;
  BatchAnalyzer& operator=(const BatchAnalyzer&) = delete;

  size_t jobs() const { return workers_.size() + 1; }

  // Runs fn(i) exactly once for every i in [0, count), distributed over
  // the pool, and blocks until all of them finished. Not reentrant: one
  // batch at a time per analyzer.
  void ForEachIndex(size_t count, const std::function<void(size_t)>& fn);

  // Convenience: one fresh SchemeAnalysis per scheme, built and consumed
  // on whichever worker claims the index.
  void AnalyzeEach(const std::vector<const DatabaseScheme*>& schemes,
                   const std::function<void(size_t, SchemeAnalysis&)>& fn);

 private:
  void Worker();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Batch state, guarded by mu_ except for the atomic cursor.
  uint64_t generation_ = 0;
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t count_ = 0;
  size_t done_ = 0;
  size_t active_workers_ = 0;
  bool shutdown_ = false;
  std::atomic<size_t> next_{0};
  std::vector<std::thread> workers_;
};

}  // namespace ird

#endif  // IRD_ENGINE_BATCH_H_
