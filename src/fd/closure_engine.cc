#include "fd/closure_engine.h"

#include "obs/obs.h"

namespace ird {

ClosureEngine::ClosureEngine(const FdSet& fds) {
  for (const FunctionalDependency& fd : fds.fds()) {
    uint32_t id = static_cast<uint32_t>(fds_.size());
    fds_.push_back(IndexedFd{static_cast<uint32_t>(fd.lhs.Count()), fd.rhs});
    fd.lhs.ForEach([&](AttributeId a) {
      if (by_attr_.size() <= a) by_attr_.resize(a + 1);
      by_attr_[a].push_back(id);
    });
    // FDs with an empty left side fire unconditionally; model them as
    // lhs_size 0 handled in Closure().
  }
}

AttributeSet ClosureEngine::Closure(const AttributeSet& x) const {
  // closure.iterations counts FD firings here (each FD fires at most once,
  // so iterations <= |F| per computation; the naive FdSet::Closure counts
  // scan passes, bounded by |F|+1 — obs_invariants_test asserts both).
  // Firings are tallied locally and flushed once on return: this function
  // is the engine's innermost hot loop and a per-firing atomic costs
  // measurable time even relaxed.
  IRD_COUNT(closure.computations);
  uint64_t fired = 0;
  missing_.assign(fds_.size(), 0);
  for (size_t i = 0; i < fds_.size(); ++i) {
    missing_[i] = fds_[i].lhs_size;
  }
  AttributeSet closure = x;
  // LIFO processing order; closures are order-independent, so a reused
  // member stack beats a per-call deque (no allocation in steady state).
  stack_.clear();
  closure.ForEach([&](AttributeId a) { stack_.push_back(a); });
  // FDs with empty left sides fire immediately.
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (missing_[i] == 0) {
      ++fired;
      fds_[i].rhs.ForEach([&](AttributeId a) {
        if (!closure.Contains(a)) {
          closure.Add(a);
          stack_.push_back(a);
        }
      });
    }
  }
  while (!stack_.empty()) {
    AttributeId a = stack_.back();
    stack_.pop_back();
    if (a >= by_attr_.size()) continue;
    for (uint32_t id : by_attr_[a]) {
      if (missing_[id] == 0) continue;
      if (--missing_[id] == 0) {
        ++fired;
        fds_[id].rhs.ForEach([&](AttributeId b) {
          if (!closure.Contains(b)) {
            closure.Add(b);
            stack_.push_back(b);
          }
        });
      }
    }
  }
  IRD_COUNT_ADD(closure.iterations, fired);
  // One sample per computation: the per-call firing distribution separates
  // "many cheap closures" from "few saturating ones" at equal totals.
  IRD_HISTOGRAM(closure.iterations_per_call, fired);
  return closure;
}

}  // namespace ird
