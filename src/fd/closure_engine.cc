#include "fd/closure_engine.h"

#include "obs/obs.h"

namespace ird {

ClosureEngine::ClosureEngine(const FdSet& fds) {
  // CSR build: count lhs memberships per attribute, prefix-sum into
  // offsets, then fill. Filling in fd order keeps each attribute's fd list
  // in ascending id order, matching the old vector-of-vectors iteration.
  uint32_t max_attr = 0;
  bool any = false;
  fds_.reserve(fds.size());
  for (const FunctionalDependency& fd : fds.fds()) {
    fds_.push_back(IndexedFd{static_cast<uint32_t>(fd.lhs.Count()), fd.rhs});
    fd.lhs.ForEach([&](AttributeId a) {
      any = true;
      if (a > max_attr) max_attr = a;
    });
    // FDs with an empty left side fire unconditionally; model them as
    // lhs_size 0 handled in Closure().
  }
  const uint32_t nattrs = any ? max_attr + 1 : 0;
  by_attr_offsets_.assign(nattrs + 1, 0);
  for (const FunctionalDependency& fd : fds.fds()) {
    fd.lhs.ForEach([&](AttributeId a) { ++by_attr_offsets_[a + 1]; });
  }
  for (uint32_t a = 0; a < nattrs; ++a) {
    by_attr_offsets_[a + 1] += by_attr_offsets_[a];
  }
  by_attr_fds_.resize(by_attr_offsets_[nattrs]);
  std::vector<uint32_t> fill(by_attr_offsets_.begin(),
                             by_attr_offsets_.end() - 1);
  uint32_t id = 0;
  for (const FunctionalDependency& fd : fds.fds()) {
    fd.lhs.ForEach([&](AttributeId a) { by_attr_fds_[fill[a]++] = id; });
    ++id;
  }
}

AttributeSet ClosureEngine::Closure(const AttributeSet& x) const {
  // closure.iterations counts FD firings here (each FD fires at most once,
  // so iterations <= |F| per computation; the naive FdSet::Closure counts
  // scan passes, bounded by |F|+1 — obs_invariants_test asserts both).
  // Firings are tallied locally and flushed once on return: this function
  // is the engine's innermost hot loop and a per-firing atomic costs
  // measurable time even relaxed.
  IRD_COUNT(closure.computations);
  uint64_t fired = 0;
  missing_.assign(fds_.size(), 0);
  for (size_t i = 0; i < fds_.size(); ++i) {
    missing_[i] = fds_[i].lhs_size;
  }
  AttributeSet closure = x;
  // LIFO processing order; closures are order-independent, so a reused
  // member stack beats a per-call deque (no allocation in steady state).
  stack_.clear();
  closure.ForEach([&](AttributeId a) { stack_.push_back(a); });
  // FDs with empty left sides fire immediately.
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (missing_[i] == 0) {
      ++fired;
      fds_[i].rhs.ForEach([&](AttributeId a) {
        if (!closure.Contains(a)) {
          closure.Add(a);
          stack_.push_back(a);
        }
      });
    }
  }
  const uint32_t nattrs =
      static_cast<uint32_t>(by_attr_offsets_.size() - 1);
  while (!stack_.empty()) {
    AttributeId a = stack_.back();
    stack_.pop_back();
    if (a >= nattrs) continue;
    const uint32_t* id_begin = by_attr_fds_.data() + by_attr_offsets_[a];
    const uint32_t* id_end = by_attr_fds_.data() + by_attr_offsets_[a + 1];
    for (const uint32_t* idp = id_begin; idp != id_end; ++idp) {
      const uint32_t id = *idp;
      if (missing_[id] == 0) continue;
      if (--missing_[id] == 0) {
        ++fired;
        fds_[id].rhs.ForEach([&](AttributeId b) {
          if (!closure.Contains(b)) {
            closure.Add(b);
            stack_.push_back(b);
          }
        });
      }
    }
  }
  IRD_COUNT_ADD(closure.iterations, fired);
  // One sample per computation: the per-call firing distribution separates
  // "many cheap closures" from "few saturating ones" at equal totals.
  IRD_HISTOGRAM(closure.iterations_per_call, fired);
  return closure;
}

}  // namespace ird
