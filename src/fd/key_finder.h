// Candidate-key enumeration: all minimal K ⊆ R with K -> R ∈ F+ (paper
// §2.3). In this library keys are normally *declared* on each relation
// scheme; the finder exists to validate declarations, to synthesize schemes
// in generators, and as a user-facing design utility.

#ifndef IRD_FD_KEY_FINDER_H_
#define IRD_FD_KEY_FINDER_H_

#include <vector>

#include "base/attribute_set.h"
#include "fd/fd_set.h"

namespace ird {

// Returns every candidate key of `scheme` wrt `fds`, in increasing size
// order. Exponential in |scheme| in the worst case (the number of candidate
// keys itself can be exponential); guarded for |scheme| <= 24.
std::vector<AttributeSet> FindCandidateKeys(const AttributeSet& scheme,
                                            const FdSet& fds);

// Returns some minimal key contained in `superkey` (which must satisfy
// superkey -> scheme ∈ F+): greedily drops attributes while the remainder
// still determines `scheme`.
AttributeSet ReduceToKey(const AttributeSet& superkey,
                         const AttributeSet& scheme, const FdSet& fds);

// True iff `key` is a candidate key of `scheme` wrt `fds`: it determines
// `scheme` and no proper subset does. Works for any scheme size.
bool IsCandidateKey(const AttributeSet& key, const AttributeSet& scheme,
                    const FdSet& fds);

}  // namespace ird

#endif  // IRD_FD_KEY_FINDER_H_
