// ClosureEngine: repeated attribute-set closures against one fixed FD set,
// in time linear in the size of F per query (Beeri–Bernstein counting
// algorithm). FdSet::Closure re-scans the dependency list to a fixpoint —
// fine for one-off queries; the recognition pipeline (KEP, the uniqueness
// condition, split tests) computes thousands of closures against the same
// set, which is this engine's job.

#ifndef IRD_FD_CLOSURE_ENGINE_H_
#define IRD_FD_CLOSURE_ENGINE_H_

#include <vector>

#include "base/attribute_set.h"
#include "fd/fd_set.h"

namespace ird {

class ClosureEngine {
 public:
  // Indexes `fds`; the engine keeps its own copy of the dependency
  // structure (the FdSet may be destroyed afterwards).
  explicit ClosureEngine(const FdSet& fds);

  // X+ wrt the indexed set. O(Σ|lhs| + Σ|rhs|) per call.
  AttributeSet Closure(const AttributeSet& x) const;

  // rhs ⊆ Closure(lhs)?
  bool Implies(const AttributeSet& lhs, const AttributeSet& rhs) const {
    return rhs.IsSubsetOf(Closure(lhs));
  }

 private:
  struct IndexedFd {
    uint32_t lhs_size;
    AttributeSet rhs;
  };

  std::vector<IndexedFd> fds_;
  // For each attribute, the FDs whose left side contains it, flattened to
  // CSR form: attr a's fd ids are by_attr_fds_[by_attr_offsets_[a] ..
  // by_attr_offsets_[a+1]). One contiguous buffer instead of a
  // vector-of-vectors keeps the counting loop on one cache stream.
  std::vector<uint32_t> by_attr_offsets_;
  std::vector<uint32_t> by_attr_fds_;
  // Scratch state, reused across calls (sized on first use): per-FD
  // unsatisfied-lhs counters and the attribute work stack. Steady-state
  // Closure() calls allocate nothing.
  mutable std::vector<uint32_t> missing_;
  mutable std::vector<AttributeId> stack_;
};

}  // namespace ird

#endif  // IRD_FD_CLOSURE_ENGINE_H_
