#include "fd/key_finder.h"

#include <algorithm>

namespace ird {

namespace {

// Generates all subsets of attrs[0..n) of size `k` and calls `fn` on each;
// stops early if `fn` returns false.
template <typename Fn>
bool ForEachSubsetOfSize(const AttributeId* attrs, size_t n, size_t k,
                         Fn&& fn) {
  if (k > n) return true;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    AttributeSet subset;
    for (size_t i : idx) subset.Add(attrs[i]);
    if (!fn(subset)) return false;
    // Advance the combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return true;
    }
    if (k == 0) return true;
  }
}

}  // namespace

bool IsCandidateKey(const AttributeSet& key, const AttributeSet& scheme,
                    const FdSet& fds) {
  if (key.Empty() || !key.IsSubsetOf(scheme)) return false;
  if (!fds.Implies(key, scheme)) return false;
  bool minimal = true;
  key.ForEach([&](AttributeId a) {
    if (!minimal) return;
    AttributeSet smaller = key;
    smaller.Remove(a);
    if (fds.Implies(smaller, scheme)) minimal = false;
  });
  return minimal;
}

AttributeSet ReduceToKey(const AttributeSet& superkey,
                         const AttributeSet& scheme, const FdSet& fds) {
  IRD_CHECK_MSG(fds.Implies(superkey, scheme),
                "ReduceToKey: input is not a superkey");
  AttributeSet key = superkey;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    // Iterating key directly (no ToVector temporary) is safe only because
    // `break` immediately follows the mutation of key — the iterator is
    // never advanced past the assignment.
    for (AttributeId a : key) {
      AttributeSet smaller = key;
      smaller.Remove(a);
      if (!smaller.Empty() && fds.Implies(smaller, scheme)) {
        key = smaller;
        shrunk = true;
        break;
      }
    }
  }
  return key;
}

std::vector<AttributeSet> FindCandidateKeys(const AttributeSet& scheme,
                                            const FdSet& fds) {
  IRD_CHECK_MSG(scheme.Count() <= 24,
                "candidate-key enumeration is exponential; scheme too large");
  // The ≤24 guard above bounds the stack buffer.
  AttributeId attrs[24];
  size_t n = 0;
  scheme.ForEach([&](AttributeId a) { attrs[n++] = a; });
  std::vector<AttributeSet> keys;
  // Enumerate by increasing size; a set is a candidate key iff it determines
  // the scheme and contains no previously found (smaller or equal) key.
  for (size_t k = 1; k <= n; ++k) {
    ForEachSubsetOfSize(attrs, n, k, [&](const AttributeSet& subset) {
      for (const AttributeSet& key : keys) {
        if (key.IsSubsetOf(subset)) return true;  // not minimal
      }
      if (fds.Implies(subset, scheme)) {
        keys.push_back(subset);
      }
      return true;
    });
  }
  return keys;
}

}  // namespace ird
