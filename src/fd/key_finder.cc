#include "fd/key_finder.h"

#include <algorithm>

namespace ird {

namespace {

// Generates all subsets of `attrs` of size `k` and calls `fn` on each;
// stops early if `fn` returns false.
template <typename Fn>
bool ForEachSubsetOfSize(const std::vector<AttributeId>& attrs, size_t k,
                         Fn&& fn) {
  size_t n = attrs.size();
  if (k > n) return true;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    AttributeSet subset;
    for (size_t i : idx) subset.Add(attrs[i]);
    if (!fn(subset)) return false;
    // Advance the combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return true;
    }
    if (k == 0) return true;
  }
}

}  // namespace

bool IsCandidateKey(const AttributeSet& key, const AttributeSet& scheme,
                    const FdSet& fds) {
  if (key.Empty() || !key.IsSubsetOf(scheme)) return false;
  if (!fds.Implies(key, scheme)) return false;
  bool minimal = true;
  key.ForEach([&](AttributeId a) {
    if (!minimal) return;
    AttributeSet smaller = key;
    smaller.Remove(a);
    if (fds.Implies(smaller, scheme)) minimal = false;
  });
  return minimal;
}

AttributeSet ReduceToKey(const AttributeSet& superkey,
                         const AttributeSet& scheme, const FdSet& fds) {
  IRD_CHECK_MSG(fds.Implies(superkey, scheme),
                "ReduceToKey: input is not a superkey");
  AttributeSet key = superkey;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    std::vector<AttributeId> attrs = key.ToVector();
    for (AttributeId a : attrs) {
      AttributeSet smaller = key;
      smaller.Remove(a);
      if (!smaller.Empty() && fds.Implies(smaller, scheme)) {
        key = smaller;
        shrunk = true;
        break;
      }
    }
  }
  return key;
}

std::vector<AttributeSet> FindCandidateKeys(const AttributeSet& scheme,
                                            const FdSet& fds) {
  IRD_CHECK_MSG(scheme.Count() <= 24,
                "candidate-key enumeration is exponential; scheme too large");
  std::vector<AttributeId> attrs = scheme.ToVector();
  std::vector<AttributeSet> keys;
  // Enumerate by increasing size; a set is a candidate key iff it determines
  // the scheme and contains no previously found (smaller or equal) key.
  for (size_t k = 1; k <= attrs.size(); ++k) {
    ForEachSubsetOfSize(attrs, k, [&](const AttributeSet& subset) {
      for (const AttributeSet& key : keys) {
        if (key.IsSubsetOf(subset)) return true;  // not minimal
      }
      if (fds.Implies(subset, scheme)) {
        keys.push_back(subset);
      }
      return true;
    });
  }
  return keys;
}

}  // namespace ird
