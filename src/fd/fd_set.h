// FdSet: a finite set F of functional dependencies with the classic
// dependency-theory operations — attribute-set closure X+ wrt F, membership
// of an FD in F+, cover equivalence, minimal covers, and projection F+|R
// (paper §2.3).

#ifndef IRD_FD_FD_SET_H_
#define IRD_FD_FD_SET_H_

#include <string>
#include <vector>

#include "base/attribute_set.h"
#include "base/universe.h"
#include "fd/fd.h"

namespace ird {

class FdSet {
 public:
  FdSet() = default;
  explicit FdSet(std::vector<FunctionalDependency> fds)
      : fds_(std::move(fds)) {}

  // Adds X -> Y. Trivial and duplicate FDs are kept (harmless) unless the
  // caller minimizes; Add is the hot path of generators.
  void Add(FunctionalDependency fd) { fds_.push_back(std::move(fd)); }
  void Add(AttributeSet lhs, AttributeSet rhs) {
    fds_.emplace_back(std::move(lhs), std::move(rhs));
  }

  // Appends every FD of `other`.
  void AddAll(const FdSet& other);

  const std::vector<FunctionalDependency>& fds() const { return fds_; }
  size_t size() const { return fds_.size(); }
  bool empty() const { return fds_.empty(); }

  // The closure X+ of X wrt this set: all attributes A with X -> A ∈ F+.
  // Linear-ish fixpoint; the workhorse primitive of the library.
  AttributeSet Closure(const AttributeSet& x) const;

  // True iff X -> Y ∈ F+.
  bool Implies(const FunctionalDependency& fd) const {
    return fd.rhs.IsSubsetOf(Closure(fd.lhs));
  }
  bool Implies(const AttributeSet& lhs, const AttributeSet& rhs) const {
    return rhs.IsSubsetOf(Closure(lhs));
  }

  // True iff every FD of `other` is in this set's closure.
  bool Covers(const FdSet& other) const;

  // True iff F+ == G+ ("F is a cover of G", paper §2.3).
  bool EquivalentTo(const FdSet& other) const {
    return Covers(other) && other.Covers(*this);
  }

  // A minimal cover: singleton right sides, no extraneous left attributes,
  // no redundant FDs.
  FdSet MinimalCover() const;

  // Standard form: every FD rewritten to singleton right sides, trivial
  // FDs dropped.
  FdSet StandardForm() const;

  // The projection of F+ onto scheme R: a cover of {X -> Y ∈ F+ | XY ⊆ R}.
  // Exponential in |R| in the worst case (inherent); intended for the small
  // schemes of dependency-theory workloads. The result is minimized.
  FdSet ProjectOnto(const AttributeSet& scheme) const;

  // All FDs of this set that are embedded in `scheme` (syntactic filter,
  // no inference).
  FdSet EmbeddedIn(const AttributeSet& scheme) const;

  // True iff X is a superkey of `scheme`: X -> scheme ∈ F+.
  bool IsSuperkeyOf(const AttributeSet& x, const AttributeSet& scheme) const {
    return Implies(x, scheme);
  }

  std::string ToString(const Universe& universe) const;

 private:
  std::vector<FunctionalDependency> fds_;
};

}  // namespace ird

#endif  // IRD_FD_FD_SET_H_
