// FunctionalDependency: X -> Y over a Universe (paper §2.3).

#ifndef IRD_FD_FD_H_
#define IRD_FD_FD_H_

#include <string>

#include "base/attribute_set.h"
#include "base/universe.h"

namespace ird {

// A functional dependency lhs -> rhs. Both sides are attribute sets; a
// "standard form" FD has a single attribute on the right, but the general
// form is allowed everywhere and expanded on demand.
struct FunctionalDependency {
  AttributeSet lhs;
  AttributeSet rhs;

  FunctionalDependency() = default;
  FunctionalDependency(AttributeSet l, AttributeSet r)
      : lhs(std::move(l)), rhs(std::move(r)) {}

  // Trivial iff rhs ⊆ lhs.
  bool IsTrivial() const { return rhs.IsSubsetOf(lhs); }

  // Embedded in scheme R iff lhs ∪ rhs ⊆ R (paper §2.3).
  bool IsEmbeddedIn(const AttributeSet& scheme) const {
    return lhs.IsSubsetOf(scheme) && rhs.IsSubsetOf(scheme);
  }

  bool operator==(const FunctionalDependency& other) const {
    return lhs == other.lhs && rhs == other.rhs;
  }

  // "AB -> C" using universe names.
  std::string ToString(const Universe& universe) const {
    return universe.Format(lhs) + " -> " + universe.Format(rhs);
  }
};

}  // namespace ird

#endif  // IRD_FD_FD_H_
