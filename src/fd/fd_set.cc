#include "fd/fd_set.h"

#include <algorithm>

#include "obs/obs.h"

namespace ird {

void FdSet::AddAll(const FdSet& other) {
  fds_.insert(fds_.end(), other.fds_.begin(), other.fds_.end());
}

AttributeSet FdSet::Closure(const AttributeSet& x) const {
  IRD_COUNT(closure.computations);
  AttributeSet closure = x;
  // Fixpoint: keep applying FDs whose left side is already covered. A used[]
  // mask keeps each FD from firing more than once (once applied, reapplying
  // adds nothing).
  std::vector<bool> used(fds_.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    // One scan pass; every productive pass fires at least one FD, so the
    // pass count is at most |F|+1 per computation.
    IRD_COUNT(closure.iterations);
    for (size_t i = 0; i < fds_.size(); ++i) {
      if (used[i]) continue;
      if (fds_[i].lhs.IsSubsetOf(closure)) {
        used[i] = true;
        if (!fds_[i].rhs.IsSubsetOf(closure)) {
          closure.UnionWith(fds_[i].rhs);
          changed = true;
        }
      }
    }
  }
  return closure;
}

bool FdSet::Covers(const FdSet& other) const {
  for (const FunctionalDependency& fd : other.fds_) {
    if (!Implies(fd)) return false;
  }
  return true;
}

FdSet FdSet::StandardForm() const {
  FdSet out;
  for (const FunctionalDependency& fd : fds_) {
    AttributeSet effective = fd.rhs.Minus(fd.lhs);
    effective.ForEach([&](AttributeId a) {
      out.Add(fd.lhs, AttributeSet{a});
    });
  }
  return out;
}

FdSet FdSet::MinimalCover() const {
  // Step 1: standard form (singleton right sides, trivial parts dropped).
  FdSet g = StandardForm();

  // Step 2: remove extraneous left-side attributes. X -> A can shrink to
  // (X - B) -> A whenever A ∈ (X - B)+ wrt G.
  for (FunctionalDependency& fd : g.fds_) {
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      // Iterating fd.lhs directly (no ToVector temporary) is safe only
      // because `break` immediately follows the mutation of fd.lhs — the
      // iterator is never advanced past the assignment.
      for (AttributeId b : fd.lhs) {
        if (fd.lhs.Count() <= 1) break;
        AttributeSet reduced = fd.lhs;
        reduced.Remove(b);
        if (fd.rhs.IsSubsetOf(g.Closure(reduced))) {
          fd.lhs = reduced;
          shrunk = true;
          break;
        }
      }
    }
  }

  // Step 3: drop redundant FDs (those implied by the rest).
  FdSet out;
  for (size_t i = 0; i < g.fds_.size(); ++i) {
    FdSet rest;
    for (size_t j = 0; j < g.fds_.size(); ++j) {
      if (j != i) rest.Add(g.fds_[j]);
    }
    rest.AddAll(out);  // keep already-accepted FDs available
    // `rest` double-counts accepted FDs; harmless for closure computation.
    if (!rest.Implies(g.fds_[i])) {
      out.Add(g.fds_[i]);
      // Mark as kept by leaving it in g for later redundancy checks.
    } else {
      g.fds_[i].rhs = g.fds_[i].lhs;  // neutralize: becomes trivial
    }
  }
  // Remove the neutralized (trivial) FDs.
  FdSet minimal;
  for (const FunctionalDependency& fd : g.fds_) {
    if (!fd.IsTrivial()) minimal.Add(fd);
  }
  return minimal;
}

FdSet FdSet::ProjectOnto(const AttributeSet& scheme) const {
  IRD_CHECK_MSG(scheme.Count() <= 24,
                "FD projection is exponential; scheme too large");
  // Enumerate X ⊆ scheme; emit X -> (X+ ∩ scheme). Redundant generators are
  // pruned afterwards by minimization. The ≤24 guard above bounds the
  // stack buffer.
  AttributeId attrs[24];
  size_t n = 0;
  scheme.ForEach([&](AttributeId a) { attrs[n++] = a; });
  FdSet projected;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    AttributeSet x;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) x.Add(attrs[i]);
    }
    AttributeSet rhs = Closure(x).Intersect(scheme).Minus(x);
    if (!rhs.Empty()) {
      projected.Add(std::move(x), std::move(rhs));
    }
  }
  return projected.MinimalCover();
}

FdSet FdSet::EmbeddedIn(const AttributeSet& scheme) const {
  FdSet out;
  for (const FunctionalDependency& fd : fds_) {
    if (fd.IsEmbeddedIn(scheme)) out.Add(fd);
  }
  return out;
}

std::string FdSet::ToString(const Universe& universe) const {
  std::string out = "{";
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fds_[i].ToString(universe);
  }
  out += "}";
  return out;
}

}  // namespace ird
