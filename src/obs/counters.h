// Named monotonic counters (paper-engine step accounting). A counter is a
// relaxed atomic registered once per name; the IRD_COUNT macro (obs/obs.h)
// binds each instrumentation site to its counter through a function-local
// static, so the steady-state cost of a hit is one guard load plus one
// relaxed fetch_add. Counters are process-global and never deallocated:
// snapshots may be taken from any thread at any time.
//
// The counter/span catalogue lives in docs/OBSERVABILITY.md; new names
// belong there.

#ifndef IRD_OBS_COUNTERS_H_
#define IRD_OBS_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context.h"

namespace ird::obs {

// One named monotonic counter. alignas keeps two counters registered
// back-to-back off the same cache line (independent sites must not false
// share). `id` is the registration index, used by ObsContext to tally the
// same increment into the current operation's delta slots.
class alignas(64) Counter {
 public:
  Counter(std::string name, uint32_t id) : name_(std::move(name)), id_(id) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    if (ObsContext* ctx = CurrentContext()) ctx->AddCounter(id_, delta);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  uint32_t id() const { return id_; }

 private:
  std::string name_;
  uint32_t id_;
  std::atomic<uint64_t> value_{0};
};

// The process-global registry. Get() interns `name` on first use (mutex)
// and returns a stable reference; subsequent lookups from the same macro
// site never touch the registry again.
class CounterRegistry {
 public:
  static Counter& Get(std::string_view name);

  // All registered counters, sorted by name. Values are read relaxed; a
  // snapshot concurrent with increments sees each counter at some point in
  // its monotone history.
  static std::vector<std::pair<std::string, uint64_t>> Snapshot();

  // Names indexed by registration id (for ContextSnapshot).
  static std::vector<std::string> NamesById();

  // Zeroes every registered counter (per-workload deltas in ird_stats, per
  // campaign in fuzz_driver). Counters stay registered.
  static void ResetAll();
};

}  // namespace ird::obs

#endif  // IRD_OBS_COUNTERS_H_
