// Operation-scoped trace contexts. An ObsContext captures the
// counter/span/histogram deltas of ONE logical operation — one scheme in
// `ird_lint --jobs N`, one InsertBatch in ShardedMaintainer, one fuzz
// iteration — regardless of how many registry writers run concurrently.
//
// Mechanism: every instrumentation sink (Counter::Add, SpanSite::Record,
// HistogramSite::Record) additionally tallies into the thread's *current*
// context, a thread-local pointer this class pushes in its constructor and
// pops (LIFO-checked) in its destructor. BatchAnalyzer propagates the
// current context across its worker handouts (engine/batch.cc), so a
// parallel phase still attributes to the operation that launched it.
//
// Rules:
//   * Contexts nest per thread; a nested context's deltas fold into its
//     parent on destruction (the inner op is part of the outer one).
//     Destruction out of LIFO order is a programming error and aborts.
//   * Tallies are relaxed atomics: any number of pool workers may record
//     into one adopted context concurrently.
//   * Slots are fixed-capacity, indexed by registration id. Sites
//     registered past the capacity are dropped from contexts (never from
//     the global registries); the capacities are sized far above the
//     engine's site count.
//   * The owning operation must join any worker that adopted its context
//     before destroying it. BatchAnalyzer::ForEachIndex blocks until the
//     batch drains, so every in-tree use gets this for free.
//
// Read a context's deltas with obs::ContextSnapshot (obs/export.h).

#ifndef IRD_OBS_CONTEXT_H_
#define IRD_OBS_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "base/check.h"

namespace ird::obs {

// Log-bucket count shared with HistogramSite (histogram.h includes this
// header, so the constant lives here): bucket 0 holds value 0, bucket b
// holds [2^(b-1), 2^b) for b in 1..64.
inline constexpr size_t kHistogramBuckets = 65;

class ObsContext {
 public:
  // Fixed per-family slot capacities (registration ids beyond these are
  // dropped from contexts). The engine registers a few dozen sites total.
  static constexpr size_t kMaxCounters = 512;
  static constexpr size_t kMaxSpans = 256;
  static constexpr size_t kMaxHistograms = 64;

  explicit ObsContext(std::string label);
  ~ObsContext();

  ObsContext(const ObsContext&) = delete;
  ObsContext& operator=(const ObsContext&) = delete;

  const std::string& label() const { return label_; }

  // Hot-path sinks, called by the registry classes through
  // CurrentContext(). Relaxed atomics; out-of-capacity ids are dropped.
  void AddCounter(uint32_t id, uint64_t delta) {
    if (id < kMaxCounters) {
      counters_[id].fetch_add(delta, std::memory_order_relaxed);
    }
  }
  void RecordSpan(uint32_t id, uint64_t ns) {
    if (id < kMaxSpans) {
      span_counts_[id].fetch_add(1, std::memory_order_relaxed);
      span_ns_[id].fetch_add(ns, std::memory_order_relaxed);
    }
  }
  void RecordHistogram(uint32_t id, size_t bucket, uint64_t value) {
    if (id < kMaxHistograms) {
      hist_buckets_[id * kHistogramBuckets + bucket].fetch_add(
          1, std::memory_order_relaxed);
      hist_sums_[id].fetch_add(value, std::memory_order_relaxed);
    }
  }

  // Raw slot reads for ContextSnapshot (export.cc).
  uint64_t counter_delta(uint32_t id) const {
    return counters_[id].load(std::memory_order_relaxed);
  }
  uint64_t span_count_delta(uint32_t id) const {
    return span_counts_[id].load(std::memory_order_relaxed);
  }
  uint64_t span_ns_delta(uint32_t id) const {
    return span_ns_[id].load(std::memory_order_relaxed);
  }
  uint64_t hist_bucket_delta(uint32_t id, size_t bucket) const {
    return hist_buckets_[id * kHistogramBuckets + bucket].load(
        std::memory_order_relaxed);
  }
  uint64_t hist_sum_delta(uint32_t id) const {
    return hist_sums_[id].load(std::memory_order_relaxed);
  }

 private:
  std::string label_;
  ObsContext* parent_;  // the context this one nests inside, or nullptr
  std::vector<std::atomic<uint64_t>> counters_;
  std::vector<std::atomic<uint64_t>> span_counts_;
  std::vector<std::atomic<uint64_t>> span_ns_;
  std::vector<std::atomic<uint64_t>> hist_buckets_;
  std::vector<std::atomic<uint64_t>> hist_sums_;
};

namespace internal {
// The thread's current context. Inline thread_local so the sink hot paths
// compile to a direct TLS load, no function call.
inline thread_local ObsContext* tls_obs_context = nullptr;
}  // namespace internal

inline ObsContext* CurrentContext() { return internal::tls_obs_context; }

// Adopts `context` as the current context of THIS thread for the scope's
// lifetime (BatchAnalyzer wraps each worker's batch drain in one, handing
// the launching operation's context to its pool workers). Null is fine —
// the scope then just shields the thread's previous context.
class ObsContextScope {
 public:
  explicit ObsContextScope(ObsContext* context)
      : saved_(internal::tls_obs_context) {
    internal::tls_obs_context = context;
  }
  ~ObsContextScope() { internal::tls_obs_context = saved_; }

  ObsContextScope(const ObsContextScope&) = delete;
  ObsContextScope& operator=(const ObsContextScope&) = delete;

 private:
  ObsContext* saved_;
};

}  // namespace ird::obs

#endif  // IRD_OBS_CONTEXT_H_
