// Engine instrumentation entry points. Usage:
//
//   IRD_COUNT(chase.reprobes);           // +1 on the named counter
//   IRD_COUNT_ADD(tableau.rows, n);      // +n
//   IRD_SPAN("kep");                     // RAII span over the current scope
//   IRD_HISTOGRAM(closure.iterations_per_call, fired);  // one sample
//   IRD_HISTOGRAM_TIMER_NS(maintain.alg5.check_ns);     // RAII latency
//
// Counter and histogram names are bare dotted identifiers (stringized by
// the macro); span names are string literals. Histogram series whose
// samples are nanoseconds carry a `_ns` suffix — the bench regression gate
// relies on it to know which quantiles are machine-speed-dependent. Each
// site binds to its registry entry through a function-local static, so a
// hit costs one guard load plus relaxed atomics — cheap enough for the
// chase/closure inner loops (measured overhead on bench_recognition is
// quoted in docs/OBSERVABILITY.md).
//
// Operation-scoped attribution: every macro hit additionally tallies into
// the thread's current ObsContext (obs/context.h) when one is installed;
// read the per-operation delta with obs::ContextSnapshot (obs/export.h).
//
// Building with -DIRD_OBS=OFF defines IRD_OBS_DISABLED on everything that
// links ird_obs; the macros below then expand to ((void)0) — no statics, no
// atomics, no clock reads — while the registry/export API keeps compiling
// (it just reports nothing), so instrumented targets still link.

#ifndef IRD_OBS_OBS_H_
#define IRD_OBS_OBS_H_

#include "obs/context.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/span.h"

#ifdef IRD_OBS_DISABLED

#define IRD_COUNT(name) ((void)0)
// Evaluates (cheap, side-effect-free at every call site) and discards the
// delta so locally accumulated tallies don't become unused-variable errors
// under -Werror in OFF builds.
#define IRD_COUNT_ADD(name, delta) ((void)(delta))
#define IRD_SPAN(name) ((void)0)
#define IRD_HISTOGRAM(name, value) ((void)(value))
#define IRD_HISTOGRAM_TIMER_NS(name) ((void)0)

#else  // instrumentation enabled

#define IRD_OBS_CONCAT2(a, b) a##b
#define IRD_OBS_CONCAT(a, b) IRD_OBS_CONCAT2(a, b)

#define IRD_COUNT(name) IRD_COUNT_ADD(name, 1)

#define IRD_COUNT_ADD(name, delta)                            \
  do {                                                        \
    static ::ird::obs::Counter& ird_obs_counter =             \
        ::ird::obs::CounterRegistry::Get(#name);              \
    ird_obs_counter.Add(static_cast<uint64_t>(delta));        \
  } while (false)

// The id parameter pins one __COUNTER__ value across all three uses.
#define IRD_SPAN_IMPL(name, id)                                     \
  static ::ird::obs::SpanSite& IRD_OBS_CONCAT(ird_obs_site_, id) =  \
      ::ird::obs::SpanRegistry::Get(name);                          \
  const ::ird::obs::ScopedSpan IRD_OBS_CONCAT(ird_obs_span_, id)(   \
      IRD_OBS_CONCAT(ird_obs_site_, id))

#define IRD_SPAN(name) IRD_SPAN_IMPL(name, __COUNTER__)

// One sample into the named log-bucketed histogram.
#define IRD_HISTOGRAM(name, value)                            \
  do {                                                        \
    static ::ird::obs::HistogramSite& ird_obs_hist =          \
        ::ird::obs::HistogramRegistry::Get(#name);            \
    ird_obs_hist.Record(static_cast<uint64_t>(value));        \
  } while (false)

// RAII: records the enclosing scope's wall-clock nanoseconds as one
// histogram sample on scope exit. Use for per-operation latency series
// (name them with a `_ns` suffix).
#define IRD_HISTOGRAM_TIMER_NS_IMPL(name, id)                             \
  static ::ird::obs::HistogramSite& IRD_OBS_CONCAT(ird_obs_hsite_, id) =  \
      ::ird::obs::HistogramRegistry::Get(#name);                          \
  const ::ird::obs::ScopedHistogramTimer IRD_OBS_CONCAT(ird_obs_htimer_, \
                                                        id)(              \
      IRD_OBS_CONCAT(ird_obs_hsite_, id))

#define IRD_HISTOGRAM_TIMER_NS(name) \
  IRD_HISTOGRAM_TIMER_NS_IMPL(name, __COUNTER__)

#endif  // IRD_OBS_DISABLED

#endif  // IRD_OBS_OBS_H_
