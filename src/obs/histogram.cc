#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "obs/span.h"

namespace ird::obs {

namespace {

struct RegistryState {
  Mutex mu;
  // unique_ptr keeps site addresses stable; registration order is the id.
  std::vector<std::unique_ptr<HistogramSite>> sites IRD_GUARDED_BY(mu);
};

RegistryState& State() {
  // Leaked singleton, same rationale as CounterRegistry.
  static RegistryState* state = new RegistryState();
  return *state;
}

}  // namespace

size_t HistogramSite::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

std::array<uint64_t, kHistogramBuckets> HistogramSite::MergedBuckets() const {
  std::array<uint64_t, kHistogramBuckets> merged{};
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      merged[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

uint64_t HistogramSite::MergedSum() const {
  uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.sum.load(std::memory_order_relaxed);
  }
  return sum;
}

HistogramSite& HistogramRegistry::Get(std::string_view name) {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  for (const std::unique_ptr<HistogramSite>& site : state.sites) {
    if (site->name() == name) return *site;
  }
  state.sites.push_back(std::make_unique<HistogramSite>(
      std::string(name), static_cast<uint32_t>(state.sites.size())));
  return *state.sites.back();
}

std::vector<HistogramRegistry::Stat> HistogramRegistry::Snapshot() {
  RegistryState& state = State();
  std::vector<Stat> out;
  {
    MutexLock lock(state.mu);
    out.reserve(state.sites.size());
    for (const std::unique_ptr<HistogramSite>& site : state.sites) {
      Stat stat;
      stat.name = site->name();
      stat.buckets = site->MergedBuckets();
      stat.sum = site->MergedSum();
      stat.count = 0;
      for (uint64_t b : stat.buckets) stat.count += b;
      out.push_back(std::move(stat));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Stat& a, const Stat& b) { return a.name < b.name; });
  return out;
}

std::vector<std::string> HistogramRegistry::NamesById() {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  std::vector<std::string> names;
  names.reserve(state.sites.size());
  for (const std::unique_ptr<HistogramSite>& site : state.sites) {
    names.push_back(site->name());
  }
  return names;
}

void HistogramRegistry::ResetAll() {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  for (const std::unique_ptr<HistogramSite>& site : state.sites) {
    site->Reset();
  }
}

double HistogramQuantile(const HistogramRegistry::Stat& stat, double q) {
  if (stat.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target value, 1-based: the ceil(q*N)-th smallest sample
  // (at least 1 so q=0 is the minimum's bucket).
  double target = std::max(1.0, std::ceil(q * static_cast<double>(stat.count)));
  uint64_t before = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    uint64_t in_bucket = stat.buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(before + in_bucket) >= target) {
      if (b == 0) return 0.0;
      // Linear interpolation inside [2^(b-1), 2^b).
      double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      double width = lo;  // 2^b - 2^(b-1)
      double frac = (target - static_cast<double>(before)) /
                    static_cast<double>(in_bucket);
      return lo + width * frac;
    }
    before += in_bucket;
  }
  // Unreachable when count == sum of buckets; keep a sane fallback.
  return std::ldexp(1.0, static_cast<int>(kHistogramBuckets) - 1);
}

ScopedHistogramTimer::ScopedHistogramTimer(HistogramSite& site)
    : site_(site), start_ns_(Trace::NowNs()) {}

ScopedHistogramTimer::~ScopedHistogramTimer() {
  site_.Record(static_cast<uint64_t>(Trace::NowNs() - start_ns_));
}

}  // namespace ird::obs
