#include "obs/span.h"

#include <algorithm>
#include <memory>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace ird::obs {

namespace {

struct SpanRegistryState {
  Mutex mu;
  std::vector<std::unique_ptr<SpanSite>> sites IRD_GUARDED_BY(mu);
};

SpanRegistryState& Sites() {
  static SpanRegistryState* state = new SpanRegistryState();
  return *state;
}

// Per-thread event buffer. `mu` serializes the owning thread's appends
// against Snapshot/Clear from other threads; appends lock only this mutex
// (uncontended in steady state), never the global one.
struct ThreadBuffer {
  Mutex mu;
  uint32_t tid = 0;  // assigned once at registration, then read-only
  std::vector<TraceEvent> events IRD_GUARDED_BY(mu);
  uint64_t dropped IRD_GUARDED_BY(mu) = 0;
};

struct TraceState {
  Mutex mu;  // guards live/retired/next_tid; acquired before any buffer mu
  uint32_t next_tid IRD_GUARDED_BY(mu) = 1;
  std::atomic<size_t> capacity_per_thread{1 << 20};
  std::vector<ThreadBuffer*> live IRD_GUARDED_BY(mu);
  std::vector<ThreadTrace> retired IRD_GUARDED_BY(mu);
};

TraceState& GlobalTrace() {
  static TraceState* state = new TraceState();
  return *state;
}

// Owns the thread's buffer; the destructor moves its contents into
// `retired` and unregisters the raw pointer from `live`.
struct ThreadBufferOwner {
  ThreadBuffer buffer;
  bool registered = false;

  ~ThreadBufferOwner() {
    if (!registered) return;
    TraceState& state = GlobalTrace();
    MutexLock global_lock(state.mu);
    MutexLock buffer_lock(buffer.mu);
    state.retired.push_back(ThreadTrace{buffer.tid, std::move(buffer.events),
                                        buffer.dropped});
    state.live.erase(
        std::remove(state.live.begin(), state.live.end(), &buffer),
        state.live.end());
  }
};

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBufferOwner owner;
  if (!owner.registered) {
    TraceState& state = GlobalTrace();
    MutexLock lock(state.mu);
    owner.buffer.tid = state.next_tid++;
    state.live.push_back(&owner.buffer);
    owner.registered = true;
  }
  return owner.buffer;
}

}  // namespace

SpanSite& SpanRegistry::Get(std::string_view name) {
  SpanRegistryState& state = Sites();
  MutexLock lock(state.mu);
  for (const std::unique_ptr<SpanSite>& s : state.sites) {
    if (s->name() == name) return *s;
  }
  state.sites.push_back(std::make_unique<SpanSite>(
      std::string(name), static_cast<uint32_t>(state.sites.size())));
  return *state.sites.back();
}

std::vector<std::string> SpanRegistry::NamesById() {
  SpanRegistryState& state = Sites();
  MutexLock lock(state.mu);
  std::vector<std::string> names;
  names.reserve(state.sites.size());
  for (const std::unique_ptr<SpanSite>& s : state.sites) {
    names.push_back(s->name());
  }
  return names;
}

std::vector<SpanRegistry::Stat> SpanRegistry::Snapshot() {
  SpanRegistryState& state = Sites();
  std::vector<Stat> out;
  {
    MutexLock lock(state.mu);
    out.reserve(state.sites.size());
    for (const std::unique_ptr<SpanSite>& s : state.sites) {
      out.push_back(Stat{s->name(), s->count(), s->total_ns()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Stat& a, const Stat& b) { return a.name < b.name; });
  return out;
}

void SpanRegistry::ResetAll() {
  SpanRegistryState& state = Sites();
  MutexLock lock(state.mu);
  for (const std::unique_ptr<SpanSite>& s : state.sites) {
    s->Reset();
  }
}

std::atomic<bool> Trace::enabled_{false};

void Trace::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Trace::SetCapacityPerThread(size_t capacity) {
  GlobalTrace().capacity_per_thread.store(capacity,
                                          std::memory_order_relaxed);
}

void Trace::Record(const SpanSite& site, int64_t start_ns, int64_t dur_ns) {
  ThreadBuffer& buffer = LocalBuffer();
  size_t capacity =
      GlobalTrace().capacity_per_thread.load(std::memory_order_relaxed);
  MutexLock lock(buffer.mu);
  if (buffer.events.size() >= capacity) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(TraceEvent{&site, start_ns, dur_ns});
}

std::vector<ThreadTrace> Trace::Snapshot() {
  TraceState& state = GlobalTrace();
  MutexLock global_lock(state.mu);
  std::vector<ThreadTrace> out = state.retired;
  for (ThreadBuffer* buffer : state.live) {
    MutexLock buffer_lock(buffer->mu);
    out.push_back(ThreadTrace{buffer->tid, buffer->events, buffer->dropped});
  }
  return out;
}

void Trace::Clear() {
  TraceState& state = GlobalTrace();
  MutexLock global_lock(state.mu);
  for (ThreadBuffer* buffer : state.live) {
    MutexLock buffer_lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
  state.retired.clear();
}

int64_t Trace::NowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

}  // namespace ird::obs
