// Log-bucketed distribution recorders (latency and size distributions:
// chase probe-chain lengths, per-insert validation nanoseconds, per-scheme
// recognition time). Same registration model as Counter/SpanSite — one
// site per name, stable address, bound to each instrumentation site via a
// function-local static in IRD_HISTOGRAM (obs/obs.h) — but a recorded
// value lands in a log bucket instead of a running sum, so snapshots can
// derive p50/p90/p99 and expose tail behaviour a mean hides.
//
// Bucketing: bucket 0 holds value 0; bucket b (1..64) holds values in
// [2^(b-1), 2^b). BucketOf is one std::bit_width — no search, no float.
//
// Recording is lock-free: each site owns kShards cache-line-isolated
// shards of relaxed atomic bucket counts, and every thread is assigned a
// shard round-robin at first use (truly per-thread up to kShards threads,
// striped beyond that — correctness never depends on exclusivity, only
// contention does). Snapshot() merges the shards.

#ifndef IRD_OBS_HISTOGRAM_H_
#define IRD_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context.h"

namespace ird::obs {

class HistogramSite {
 public:
  static constexpr size_t kShards = 8;

  HistogramSite(std::string name, uint32_t id)
      : name_(std::move(name)), id_(id) {}

  HistogramSite(const HistogramSite&) = delete;
  HistogramSite& operator=(const HistogramSite&) = delete;

  static size_t BucketOf(uint64_t value) {
    return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
  }

  void Record(uint64_t value) {
    size_t bucket = BucketOf(value);
    Shard& shard = shards_[ShardIndex()];
    shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    if (ObsContext* ctx = CurrentContext()) {
      ctx->RecordHistogram(id_, bucket, value);
    }
  }

  void Reset() {
    for (Shard& shard : shards_) {
      for (std::atomic<uint64_t>& b : shard.buckets) {
        b.store(0, std::memory_order_relaxed);
      }
      shard.sum.store(0, std::memory_order_relaxed);
    }
  }

  const std::string& name() const { return name_; }
  uint32_t id() const { return id_; }

  // Merged bucket counts and value sum across shards (relaxed reads; a
  // snapshot concurrent with recording sees each shard at some point in
  // its monotone history, same contract as Counter).
  std::array<uint64_t, kHistogramBuckets> MergedBuckets() const;
  uint64_t MergedSum() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };

  // Round-robin thread-to-shard assignment, shared by all sites so a
  // thread touches the same stripe everywhere.
  static size_t ShardIndex();

  std::string name_;
  uint32_t id_;
  std::array<Shard, kShards> shards_{};
};

class HistogramRegistry {
 public:
  static HistogramSite& Get(std::string_view name);

  struct Stat {
    std::string name;
    uint64_t count = 0;  // sum of buckets
    uint64_t sum = 0;    // sum of recorded values
    std::array<uint64_t, kHistogramBuckets> buckets{};
  };
  // All registered sites, sorted by name.
  static std::vector<Stat> Snapshot();
  // Names indexed by registration id (for ContextSnapshot).
  static std::vector<std::string> NamesById();
  static void ResetAll();
};

// Quantile estimate from a bucket array (q in [0,1]): find the bucket
// holding the ceil(q*count)-th recorded value and interpolate linearly
// inside its value range [2^(b-1), 2^b). Returns 0 for an empty histogram.
// The formula is documented in docs/OBSERVABILITY.md.
double HistogramQuantile(const HistogramRegistry::Stat& stat, double q);

// The RAII guard IRD_HISTOGRAM_TIMER_NS expands to: records the scope's
// wall-clock duration in nanoseconds into `site` on destruction.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(HistogramSite& site);
  ~ScopedHistogramTimer();

  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  HistogramSite& site_;
  int64_t start_ns_;
};

}  // namespace ird::obs

#endif  // IRD_OBS_HISTOGRAM_H_
