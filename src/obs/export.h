// Sinks for the instrumentation registries (obs/obs.h): flat snapshots of
// counters, span aggregates and histograms, rendered as text or JSON, and
// a chrome://tracing export of the recorded span events plus histogram
// quantile counter tracks. Formats are documented in
// docs/OBSERVABILITY.md.

#ifndef IRD_OBS_EXPORT_H_
#define IRD_OBS_EXPORT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "obs/context.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/span.h"

namespace ird::obs {

// A flat, name-sorted snapshot of every counter, span aggregate and
// histogram.
struct Snapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<SpanRegistry::Stat> spans;
  std::vector<HistogramRegistry::Stat> hists;
};

Snapshot TakeSnapshot();

// after - before, entry-wise (histograms bucket-wise); names present only
// in `after` keep their value (counters are never unregistered, so that is
// the fresh-name case). Entries that are zero in the delta are dropped.
Snapshot DeltaSince(const Snapshot& before);
Snapshot Delta(const Snapshot& before, const Snapshot& after);

// The deltas one ObsContext has captured so far, in Snapshot form (sorted,
// zero entries dropped). Readable while the context is still installed;
// for a completed operation, read before the context is destroyed (its
// deltas fold into the parent context after that).
Snapshot ContextSnapshot(const ObsContext& context);

// The value of one counter right now (0 if the name was never hit).
uint64_t CounterValue(std::string_view name);

// Zeroes counters and span aggregates and drops recorded trace events.
void ResetAll();

// Deterministic renderings of a snapshot: same snapshot, same bytes.
//
// Text: an aligned two-column table, counters then spans (count and total
// microseconds) then histograms (count, p50/p90/p99).
std::string RenderText(const Snapshot& snapshot);
// JSON: {"counters":{name:value,...},"spans_us":{name:{"count":c,
// "total_us":t},...},"hists":{name:{"count":c,"sum":s,"p50":...,"p90":...,
// "p99":...,"buckets":[[bucket,count],...]},...}} with keys in sorted
// order. total_us is integer microseconds (rounded down); quantiles are
// interpolated bucket estimates (see docs/OBSERVABILITY.md); `buckets`
// lists only non-empty buckets.
std::string RenderJson(const Snapshot& snapshot);

// The recorded trace as chrome://tracing "Trace Event Format" JSON
// (complete "X" events; ts/dur in fractional microseconds), followed by
// one counter ("C") event per non-empty histogram carrying its current
// p50/p90/p99 as a quantile track. Load via chrome://tracing or
// https://ui.perfetto.dev.
std::string RenderChromeTrace();

Status WriteStringToFile(const std::string& path,
                         const std::string& contents);

// The whole file as one string (binary-safe).
Result<std::string> ReadFileToString(const std::string& path);

// Checked getenv: the value of `name` if set and non-empty, else nullopt.
// The single sanctioned getenv site for the obs layer (read-only lookups
// from single-threaded tool setup/teardown; nothing in the library ever
// setenv's).
std::optional<std::string> EnvString(const char* name);

// Env-driven export hooks for CLI/bench binaries:
//   IRD_TRACE_OUT=<path>  enable event recording (InitFromEnv) and write
//                         the chrome trace there on exit (ExportFromEnv)
//   IRD_STATS_OUT=<path>  write {"bench":<tool>,"counters":...,
//                         "spans_us":...} JSON
//   IRD_STATS=1           print the text summary to stderr
// InitFromEnv belongs at the top of main (recording must be on before the
// workload); ExportFromEnv at the bottom. Returns 0, or 1 if a write
// failed.
void InitFromEnv();
int ExportFromEnv(const std::string& tool);

}  // namespace ird::obs

#endif  // IRD_OBS_EXPORT_H_
