#include "obs/counters.h"

#include <algorithm>
#include <memory>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace ird::obs {

namespace {

struct RegistryState {
  Mutex mu;
  // unique_ptr keeps Counter addresses stable across rehashes; the vector
  // preserves registration order (Snapshot re-sorts by name).
  std::vector<std::unique_ptr<Counter>> counters IRD_GUARDED_BY(mu);
};

RegistryState& State() {
  // Leaked singleton: instrumentation sites may fire during static
  // destruction of other objects.
  static RegistryState* state = new RegistryState();
  return *state;
}

}  // namespace

Counter& CounterRegistry::Get(std::string_view name) {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  for (const std::unique_ptr<Counter>& c : state.counters) {
    if (c->name() == name) return *c;
  }
  state.counters.push_back(std::make_unique<Counter>(
      std::string(name), static_cast<uint32_t>(state.counters.size())));
  return *state.counters.back();
}

std::vector<std::string> CounterRegistry::NamesById() {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  std::vector<std::string> names;
  names.reserve(state.counters.size());
  for (const std::unique_ptr<Counter>& c : state.counters) {
    names.push_back(c->name());
  }
  return names;
}

std::vector<std::pair<std::string, uint64_t>> CounterRegistry::Snapshot() {
  RegistryState& state = State();
  std::vector<std::pair<std::string, uint64_t>> out;
  {
    MutexLock lock(state.mu);
    out.reserve(state.counters.size());
    for (const std::unique_ptr<Counter>& c : state.counters) {
      out.emplace_back(c->name(), c->value());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void CounterRegistry::ResetAll() {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  for (const std::unique_ptr<Counter>& c : state.counters) {
    c->Reset();
  }
}

}  // namespace ird::obs
