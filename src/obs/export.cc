#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace ird::obs {

namespace {

// 1 decimal place of microseconds is plenty for phase-level spans.
std::string FormatUs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%01" PRIu64, ns / 1000,
                (ns % 1000) / 100);
  return buf;
}

}  // namespace

Snapshot TakeSnapshot() {
  return Snapshot{CounterRegistry::Snapshot(), SpanRegistry::Snapshot(),
                  HistogramRegistry::Snapshot()};
}

Snapshot Delta(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  std::map<std::string, uint64_t> counter_base(before.counters.begin(),
                                               before.counters.end());
  for (const auto& [name, value] : after.counters) {
    auto it = counter_base.find(name);
    uint64_t base = it == counter_base.end() ? 0 : it->second;
    if (value > base) out.counters.emplace_back(name, value - base);
  }
  std::map<std::string, SpanRegistry::Stat> span_base;
  for (const SpanRegistry::Stat& s : before.spans) span_base[s.name] = s;
  for (const SpanRegistry::Stat& s : after.spans) {
    auto it = span_base.find(s.name);
    uint64_t count = s.count, total = s.total_ns;
    if (it != span_base.end()) {
      count -= std::min(count, it->second.count);
      total -= std::min(total, it->second.total_ns);
    }
    if (count > 0 || total > 0) {
      out.spans.push_back(SpanRegistry::Stat{s.name, count, total});
    }
  }
  std::map<std::string, const HistogramRegistry::Stat*> hist_base;
  for (const HistogramRegistry::Stat& h : before.hists) {
    hist_base[h.name] = &h;
  }
  for (const HistogramRegistry::Stat& h : after.hists) {
    HistogramRegistry::Stat d = h;
    auto it = hist_base.find(h.name);
    if (it != hist_base.end()) {
      const HistogramRegistry::Stat& base = *it->second;
      d.count -= std::min(d.count, base.count);
      d.sum -= std::min(d.sum, base.sum);
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        d.buckets[b] -= std::min(d.buckets[b], base.buckets[b]);
      }
    }
    if (d.count > 0) out.hists.push_back(std::move(d));
  }
  return out;
}

Snapshot DeltaSince(const Snapshot& before) {
  return Delta(before, TakeSnapshot());
}

Snapshot ContextSnapshot(const ObsContext& context) {
  Snapshot out;
  std::vector<std::string> counter_names = CounterRegistry::NamesById();
  size_t n = std::min(counter_names.size(), ObsContext::kMaxCounters);
  for (uint32_t id = 0; id < n; ++id) {
    uint64_t v = context.counter_delta(id);
    if (v != 0) out.counters.emplace_back(counter_names[id], v);
  }
  std::sort(out.counters.begin(), out.counters.end());
  std::vector<std::string> span_names = SpanRegistry::NamesById();
  n = std::min(span_names.size(), ObsContext::kMaxSpans);
  for (uint32_t id = 0; id < n; ++id) {
    uint64_t count = context.span_count_delta(id);
    if (count != 0) {
      out.spans.push_back(SpanRegistry::Stat{span_names[id], count,
                                             context.span_ns_delta(id)});
    }
  }
  std::sort(out.spans.begin(), out.spans.end(),
            [](const SpanRegistry::Stat& a, const SpanRegistry::Stat& b) {
              return a.name < b.name;
            });
  std::vector<std::string> hist_names = HistogramRegistry::NamesById();
  n = std::min(hist_names.size(), ObsContext::kMaxHistograms);
  for (uint32_t id = 0; id < n; ++id) {
    HistogramRegistry::Stat stat;
    stat.name = hist_names[id];
    stat.count = 0;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      stat.buckets[b] = context.hist_bucket_delta(id, b);
      stat.count += stat.buckets[b];
    }
    if (stat.count == 0) continue;
    stat.sum = context.hist_sum_delta(id);
    out.hists.push_back(std::move(stat));
  }
  std::sort(out.hists.begin(), out.hists.end(),
            [](const HistogramRegistry::Stat& a,
               const HistogramRegistry::Stat& b) { return a.name < b.name; });
  return out;
}

uint64_t CounterValue(std::string_view name) {
  for (const auto& [n, value] : CounterRegistry::Snapshot()) {
    if (n == name) return value;
  }
  return 0;
}

void ResetAll() {
  CounterRegistry::ResetAll();
  SpanRegistry::ResetAll();
  HistogramRegistry::ResetAll();
  Trace::Clear();
}

std::string RenderText(const Snapshot& snapshot) {
  size_t width = 0;
  for (const auto& [name, value] : snapshot.counters) {
    width = std::max(width, name.size());
  }
  for (const SpanRegistry::Stat& s : snapshot.spans) {
    width = std::max(width, s.name.size());
  }
  for (const HistogramRegistry::Stat& h : snapshot.hists) {
    width = std::max(width, h.name.size());
  }
  std::string out;
  if (!snapshot.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      char line[160];
      std::snprintf(line, sizeof(line), "  %-*s %" PRIu64 "\n",
                    static_cast<int>(width), name.c_str(), value);
      out += line;
    }
  }
  if (!snapshot.spans.empty()) {
    out += "spans:\n";
    for (const SpanRegistry::Stat& s : snapshot.spans) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %-*s %" PRIu64 " x, %s us total\n",
                    static_cast<int>(width), s.name.c_str(), s.count,
                    FormatUs(s.total_ns).c_str());
      out += line;
    }
  }
  if (!snapshot.hists.empty()) {
    out += "histograms:\n";
    for (const HistogramRegistry::Stat& h : snapshot.hists) {
      char line[200];
      std::snprintf(line, sizeof(line),
                    "  %-*s %" PRIu64 " x, p50 %.0f, p90 %.0f, p99 %.0f\n",
                    static_cast<int>(width), h.name.c_str(), h.count,
                    HistogramQuantile(h, 0.50), HistogramQuantile(h, 0.90),
                    HistogramQuantile(h, 0.99));
      out += line;
    }
  }
  if (out.empty()) out = "(no instrumentation data)\n";
  return out;
}

std::string RenderJson(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ",";
    char entry[160];
    std::snprintf(entry, sizeof(entry), "\"%s\":%" PRIu64,
                  snapshot.counters[i].first.c_str(),
                  snapshot.counters[i].second);
    out += entry;
  }
  out += "},\"spans_us\":{";
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    if (i > 0) out += ",";
    const SpanRegistry::Stat& s = snapshot.spans[i];
    char entry[200];
    std::snprintf(entry, sizeof(entry),
                  "\"%s\":{\"count\":%" PRIu64 ",\"total_us\":%" PRIu64 "}",
                  s.name.c_str(), s.count, s.total_ns / 1000);
    out += entry;
  }
  out += "},\"hists\":{";
  for (size_t i = 0; i < snapshot.hists.size(); ++i) {
    if (i > 0) out += ",";
    const HistogramRegistry::Stat& h = snapshot.hists[i];
    char entry[256];
    std::snprintf(entry, sizeof(entry),
                  "\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f,\"buckets\":[",
                  h.name.c_str(), h.count, h.sum, HistogramQuantile(h, 0.50),
                  HistogramQuantile(h, 0.90), HistogramQuantile(h, 0.99));
    out += entry;
    bool first_bucket = true;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      std::snprintf(entry, sizeof(entry), "[%zu,%" PRIu64 "]", b,
                    h.buckets[b]);
      out += entry;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string RenderChromeTrace() {
  std::vector<ThreadTrace> threads = Trace::Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const ThreadTrace& thread : threads) {
    for (const TraceEvent& e : thread.events) {
      if (!first) out += ",";
      first = false;
      char entry[256];
      // ts/dur are fractional microseconds; chrome takes doubles. Three
      // decimals keeps full nanosecond resolution.
      std::snprintf(entry, sizeof(entry),
                    "\n{\"name\":\"%s\",\"cat\":\"ird\",\"ph\":\"X\","
                    "\"ts\":%" PRId64 ".%03" PRId64 ",\"dur\":%" PRId64
                    ".%03" PRId64 ",\"pid\":1,\"tid\":%u}",
                    e.site->name().c_str(), e.start_ns / 1000,
                    e.start_ns % 1000, e.dur_ns / 1000, e.dur_ns % 1000,
                    thread.tid);
      out += entry;
    }
  }
  // One counter ("C") event per non-empty histogram: a p50/p90/p99 track
  // so distribution shape sits next to the span timeline in the viewer.
  int64_t now_us = Trace::NowNs() / 1000;
  for (const HistogramRegistry::Stat& h : HistogramRegistry::Snapshot()) {
    if (h.count == 0) continue;
    if (!first) out += ",";
    first = false;
    char entry[320];
    std::snprintf(entry, sizeof(entry),
                  "\n{\"name\":\"hist.%s\",\"cat\":\"ird\",\"ph\":\"C\","
                  "\"ts\":%" PRId64
                  ",\"pid\":1,\"args\":{\"p50\":%.1f,\"p90\":%.1f,"
                  "\"p99\":%.1f}}",
                  h.name.c_str(), now_us, HistogramQuantile(h, 0.50),
                  HistogramQuantile(h, 0.90), HistogramQuantile(h, 0.99));
    out += entry;
  }
  out += "\n]}";
  return out;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InvalidArgument("cannot open " + path + " for writing");
  out << contents;
  out.flush();
  if (!out) return InvalidArgument("short write to " + path);
  return OkStatus();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return InvalidArgument("cannot open " + path + " for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return InvalidArgument("read error on " + path);
  return buffer.str();
}

std::optional<std::string> EnvString(const char* name) {
  // The obs layer's single getenv site: read-only lookups from
  // single-threaded tool setup/teardown; nothing in the library ever
  // setenv's, so the concurrency-mt-unsafe finding is suppressed here and
  // nowhere else (see .clang-tidy).
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return std::nullopt;
  return std::string(value);
}

void InitFromEnv() {
  if (EnvString("IRD_TRACE_OUT").has_value()) {
    Trace::SetEnabled(true);
  }
}

int ExportFromEnv(const std::string& tool) {
  int rc = 0;
  if (std::optional<std::string> path = EnvString("IRD_TRACE_OUT")) {
    Status written = WriteStringToFile(*path, RenderChromeTrace());
    if (!written.ok()) {
      std::fprintf(stderr, "%s: trace export failed: %s\n", tool.c_str(),
                   written.ToString().c_str());
      rc = 1;
    }
  }
  if (std::optional<std::string> path = EnvString("IRD_STATS_OUT")) {
    std::string json = RenderJson(TakeSnapshot());
    std::string body = "{\"bench\":\"" + tool + "\"," + json.substr(1);
    Status written = WriteStringToFile(*path, body + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "%s: stats export failed: %s\n", tool.c_str(),
                   written.ToString().c_str());
      rc = 1;
    }
  }
  if (std::optional<std::string> flag = EnvString("IRD_STATS");
      flag.has_value() && (*flag)[0] != '0') {
    std::fprintf(stderr, "=== %s instrumentation summary ===\n%s",
                 tool.c_str(), RenderText(TakeSnapshot()).c_str());
  }
  return rc;
}

}  // namespace ird::obs
