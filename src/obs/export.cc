#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

namespace ird::obs {

namespace {

// 1 decimal place of microseconds is plenty for phase-level spans.
std::string FormatUs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%01" PRIu64, ns / 1000,
                (ns % 1000) / 100);
  return buf;
}

}  // namespace

Snapshot TakeSnapshot() {
  return Snapshot{CounterRegistry::Snapshot(), SpanRegistry::Snapshot()};
}

Snapshot Delta(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  std::map<std::string, uint64_t> counter_base(before.counters.begin(),
                                               before.counters.end());
  for (const auto& [name, value] : after.counters) {
    auto it = counter_base.find(name);
    uint64_t base = it == counter_base.end() ? 0 : it->second;
    if (value > base) out.counters.emplace_back(name, value - base);
  }
  std::map<std::string, SpanRegistry::Stat> span_base;
  for (const SpanRegistry::Stat& s : before.spans) span_base[s.name] = s;
  for (const SpanRegistry::Stat& s : after.spans) {
    auto it = span_base.find(s.name);
    uint64_t count = s.count, total = s.total_ns;
    if (it != span_base.end()) {
      count -= std::min(count, it->second.count);
      total -= std::min(total, it->second.total_ns);
    }
    if (count > 0 || total > 0) {
      out.spans.push_back(SpanRegistry::Stat{s.name, count, total});
    }
  }
  return out;
}

Snapshot DeltaSince(const Snapshot& before) {
  return Delta(before, TakeSnapshot());
}

uint64_t CounterValue(std::string_view name) {
  for (const auto& [n, value] : CounterRegistry::Snapshot()) {
    if (n == name) return value;
  }
  return 0;
}

void ResetAll() {
  CounterRegistry::ResetAll();
  SpanRegistry::ResetAll();
  Trace::Clear();
}

std::string RenderText(const Snapshot& snapshot) {
  size_t width = 0;
  for (const auto& [name, value] : snapshot.counters) {
    width = std::max(width, name.size());
  }
  for (const SpanRegistry::Stat& s : snapshot.spans) {
    width = std::max(width, s.name.size());
  }
  std::string out;
  if (!snapshot.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      char line[160];
      std::snprintf(line, sizeof(line), "  %-*s %" PRIu64 "\n",
                    static_cast<int>(width), name.c_str(), value);
      out += line;
    }
  }
  if (!snapshot.spans.empty()) {
    out += "spans:\n";
    for (const SpanRegistry::Stat& s : snapshot.spans) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %-*s %" PRIu64 " x, %s us total\n",
                    static_cast<int>(width), s.name.c_str(), s.count,
                    FormatUs(s.total_ns).c_str());
      out += line;
    }
  }
  if (out.empty()) out = "(no instrumentation data)\n";
  return out;
}

std::string RenderJson(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ",";
    char entry[160];
    std::snprintf(entry, sizeof(entry), "\"%s\":%" PRIu64,
                  snapshot.counters[i].first.c_str(),
                  snapshot.counters[i].second);
    out += entry;
  }
  out += "},\"spans_us\":{";
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    if (i > 0) out += ",";
    const SpanRegistry::Stat& s = snapshot.spans[i];
    char entry[200];
    std::snprintf(entry, sizeof(entry),
                  "\"%s\":{\"count\":%" PRIu64 ",\"total_us\":%" PRIu64 "}",
                  s.name.c_str(), s.count, s.total_ns / 1000);
    out += entry;
  }
  out += "}}";
  return out;
}

std::string RenderChromeTrace() {
  std::vector<ThreadTrace> threads = Trace::Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const ThreadTrace& thread : threads) {
    for (const TraceEvent& e : thread.events) {
      if (!first) out += ",";
      first = false;
      char entry[256];
      // ts/dur are fractional microseconds; chrome takes doubles. Three
      // decimals keeps full nanosecond resolution.
      std::snprintf(entry, sizeof(entry),
                    "\n{\"name\":\"%s\",\"cat\":\"ird\",\"ph\":\"X\","
                    "\"ts\":%" PRId64 ".%03" PRId64 ",\"dur\":%" PRId64
                    ".%03" PRId64 ",\"pid\":1,\"tid\":%u}",
                    e.site->name().c_str(), e.start_ns / 1000,
                    e.start_ns % 1000, e.dur_ns / 1000, e.dur_ns % 1000,
                    thread.tid);
      out += entry;
    }
  }
  out += "\n]}";
  return out;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InvalidArgument("cannot open " + path + " for writing");
  out << contents;
  out.flush();
  if (!out) return InvalidArgument("short write to " + path);
  return OkStatus();
}

// The getenv calls below are read-only lookups from single-threaded
// process setup/teardown (tool main entry and exit); nothing in the
// library ever setenv's, so the concurrency-mt-unsafe findings are
// suppressed here rather than globally (see .clang-tidy).
void InitFromEnv() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (std::getenv("IRD_TRACE_OUT") != nullptr) {
    Trace::SetEnabled(true);
  }
}

int ExportFromEnv(const std::string& tool) {
  int rc = 0;
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* path = std::getenv("IRD_TRACE_OUT")) {
    Status written = WriteStringToFile(path, RenderChromeTrace());
    if (!written.ok()) {
      std::fprintf(stderr, "%s: trace export failed: %s\n", tool.c_str(),
                   written.ToString().c_str());
      rc = 1;
    }
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* path = std::getenv("IRD_STATS_OUT")) {
    std::string json = RenderJson(TakeSnapshot());
    std::string body = "{\"bench\":\"" + tool + "\"," + json.substr(1);
    Status written = WriteStringToFile(path, body + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "%s: stats export failed: %s\n", tool.c_str(),
                   written.ToString().c_str());
      rc = 1;
    }
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* flag = std::getenv("IRD_STATS");
      flag != nullptr && flag[0] != '\0' && flag[0] != '0') {
    std::fprintf(stderr, "=== %s instrumentation summary ===\n%s",
                 tool.c_str(), RenderText(TakeSnapshot()).c_str());
  }
  return rc;
}

}  // namespace ird::obs
