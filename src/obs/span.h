// RAII spans: wall-clock intervals around engine phases ("kep",
// "recognition", "chase", ...). Every span unconditionally feeds a per-site
// aggregate (hit count + total nanoseconds, relaxed atomics — the flat
// per-phase summary), and, when trace recording is enabled, also appends a
// timestamped event to a per-thread buffer for chrome://tracing export
// (obs/export.h). Recording is off by default so steady-state span cost is
// two clock reads and two relaxed adds.
//
// Spans unwind with scope exit (early return, nested scopes) like any
// destructor; nesting is recovered from timestamps by the trace viewer.

#ifndef IRD_OBS_SPAN_H_
#define IRD_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context.h"

namespace ird::obs {

// Aggregate for one IRD_SPAN site name. Stable address, like Counter.
// `id` is the registration index, used by ObsContext delta routing.
class alignas(64) SpanSite {
 public:
  SpanSite(std::string name, uint32_t id) : name_(std::move(name)), id_(id) {}

  SpanSite(const SpanSite&) = delete;
  SpanSite& operator=(const SpanSite&) = delete;

  void Record(uint64_t ns) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    if (ObsContext* ctx = CurrentContext()) ctx->RecordSpan(id_, ns);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }
  uint32_t id() const { return id_; }

 private:
  std::string name_;
  uint32_t id_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
};

class SpanRegistry {
 public:
  static SpanSite& Get(std::string_view name);
  struct Stat {
    std::string name;
    uint64_t count;
    uint64_t total_ns;
  };
  // All registered sites, sorted by name.
  static std::vector<Stat> Snapshot();
  // Names indexed by registration id (for ContextSnapshot).
  static std::vector<std::string> NamesById();
  static void ResetAll();
};

// One finished span occurrence, for the chrome trace. Timestamps are
// nanoseconds since the process-wide trace epoch (first clock use).
struct TraceEvent {
  const SpanSite* site;
  int64_t start_ns;
  int64_t dur_ns;
};

struct ThreadTrace {
  uint32_t tid;
  std::vector<TraceEvent> events;
  uint64_t dropped;  // events past the per-thread capacity
};

// Event recording: per-thread append-only buffers behind a global enable
// flag. Buffers are bounded (SetCapacityPerThread); once full a thread
// counts drops instead of growing without bound in long campaigns.
class Trace {
 public:
  static void SetEnabled(bool enabled);
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetCapacityPerThread(size_t capacity);

  static void Record(const SpanSite& site, int64_t start_ns, int64_t dur_ns);

  // Copies of every thread's events (live threads and exited ones).
  static std::vector<ThreadTrace> Snapshot();
  static void Clear();

  // Nanoseconds since the trace epoch.
  static int64_t NowNs();

 private:
  static std::atomic<bool> enabled_;
};

// The RAII guard IRD_SPAN expands to.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite& site)
      : site_(site), start_ns_(Trace::NowNs()) {}
  ~ScopedSpan() {
    int64_t dur = Trace::NowNs() - start_ns_;
    site_.Record(static_cast<uint64_t>(dur));
    if (Trace::enabled()) Trace::Record(site_, start_ns_, dur);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanSite& site_;
  int64_t start_ns_;
};

}  // namespace ird::obs

#endif  // IRD_OBS_SPAN_H_
