#include "obs/context.h"

#include <utility>

namespace ird::obs {

namespace {

std::vector<std::atomic<uint64_t>> ZeroSlots(size_t n) {
  // vector's value-initialization zeroes the atomics.
  return std::vector<std::atomic<uint64_t>>(n);
}

}  // namespace

ObsContext::ObsContext(std::string label)
    : label_(std::move(label)),
      parent_(internal::tls_obs_context),
      counters_(ZeroSlots(kMaxCounters)),
      span_counts_(ZeroSlots(kMaxSpans)),
      span_ns_(ZeroSlots(kMaxSpans)),
      hist_buckets_(ZeroSlots(kMaxHistograms * kHistogramBuckets)),
      hist_sums_(ZeroSlots(kMaxHistograms)) {
  internal::tls_obs_context = this;
}

ObsContext::~ObsContext() {
  // Contexts are strictly LIFO per thread: destroying one that is not the
  // thread's current context means an inner context outlived it (or it was
  // destroyed on a thread that never owned it) and every tally since is
  // misattributed.
  IRD_CHECK_MSG(internal::tls_obs_context == this,
                "ObsContext destroyed out of LIFO order");
  internal::tls_obs_context = parent_;
  if (parent_ == nullptr) return;
  // The inner operation is part of the outer one: fold our deltas up.
  for (size_t i = 0; i < kMaxCounters; ++i) {
    uint64_t v = counters_[i].load(std::memory_order_relaxed);
    if (v != 0) parent_->counters_[i].fetch_add(v, std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kMaxSpans; ++i) {
    uint64_t c = span_counts_[i].load(std::memory_order_relaxed);
    if (c != 0) {
      parent_->span_counts_[i].fetch_add(c, std::memory_order_relaxed);
      parent_->span_ns_[i].fetch_add(
          span_ns_[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }
  for (size_t i = 0; i < kMaxHistograms * kHistogramBuckets; ++i) {
    uint64_t v = hist_buckets_[i].load(std::memory_order_relaxed);
    if (v != 0) {
      parent_->hist_buckets_[i].fetch_add(v, std::memory_order_relaxed);
    }
  }
  for (size_t i = 0; i < kMaxHistograms; ++i) {
    uint64_t v = hist_sums_[i].load(std::memory_order_relaxed);
    if (v != 0) parent_->hist_sums_[i].fetch_add(v, std::memory_order_relaxed);
  }
}

}  // namespace ird::obs
