// Hypergraphs of database schemes (paper §2.4): nodes are the attributes of
// U, edges are the relation schemes. Provides the §2.4 machinery — paths,
// connectivity, Bachman closure, unique minimal connections — plus the
// acyclicity tests used by Section 5 (γ-acyclicity after Fagin [F3],
// α-acyclicity via GYO reduction as a baseline).

#ifndef IRD_HYPERGRAPH_HYPERGRAPH_H_
#define IRD_HYPERGRAPH_HYPERGRAPH_H_

#include <optional>
#include <vector>

#include "base/attribute_set.h"
#include "schema/database_scheme.h"

namespace ird {

class Hypergraph {
 public:
  explicit Hypergraph(std::vector<AttributeSet> edges);

  // The hypergraph H_R of a database scheme.
  static Hypergraph Of(const DatabaseScheme& scheme);

  const std::vector<AttributeSet>& edges() const { return edges_; }
  size_t edge_count() const { return edges_.size(); }

  // Union of all edges.
  const AttributeSet& nodes() const { return nodes_; }

  // True iff every pair of nodes (equivalently edges) is connected by a
  // path (paper §2.4). The empty hypergraph counts as connected.
  bool IsConnected() const;

  // Partition of edge indices into connected components.
  std::vector<std::vector<size_t>> ConnectedComponents() const;

 private:
  std::vector<AttributeSet> edges_;
  AttributeSet nodes_;
};

// True iff the family {W1, ..., Wm} is connected in the §2.4 sense (the
// hypergraph with these sets as edges is connected).
bool IsConnectedFamily(const std::vector<AttributeSet>& family);

// Bachman(E): the closure of the edge family under pairwise intersection,
// dropping empty sets (paper §2.4). Output order: the original edges first,
// then derived intersections. Size is capped (IRD_CHECK) at `max_size`
// because the closure can explode combinatorially.
std::vector<AttributeSet> BachmanClosure(
    const std::vector<AttributeSet>& edges, size_t max_size = 4096);

// A unique minimal connection among X (paper §2.4): a connected subset V of
// Bachman(R) covering X such that every connected covering subset W of
// Bachman(R) dominates V element-wise. Returns nullopt if none exists.
// Exponential in |Bachman(R)| — meant for the small schemes of tests and
// examples (guarded at 20 Bachman sets).
std::optional<std::vector<AttributeSet>> FindUniqueMinimalConnection(
    const Hypergraph& h, const AttributeSet& x);

// γ-acyclicity via the paper's operative characterization (Theorem 2.1,
// [F3][Y2][BBSK]): a connected hypergraph is γ-acyclic iff a unique minimal
// connection exists among every X ⊆ U. This implementation tests every
// *pair* of nodes per connected component — the pairwise form is the
// original "unique minimal connection between attributes" notion of
// [F3]/[Y2] and agrees with the all-subsets form on every instance the test
// suite sweeps (singleton X always has a u.m.c.: the intersection of all
// Bachman sets containing the node). Exponential in |Bachman(R)| (guarded);
// dependency-theory schemes are small.
bool IsGammaAcyclic(const Hypergraph& h);

// Theorem 2.1 verbatim: u.m.c. among every X ⊆ U (per connected
// component). Exponential in |U|; guarded at 14 nodes. Used to validate
// IsGammaAcyclic in tests.
bool HasUmcForAllSubsets(const Hypergraph& h);

// α-acyclicity via GYO reduction (ear removal): included as the classic
// baseline notion; γ-acyclic implies α-acyclic.
bool IsAlphaAcyclic(const Hypergraph& h);

}  // namespace ird

#endif  // IRD_HYPERGRAPH_HYPERGRAPH_H_
