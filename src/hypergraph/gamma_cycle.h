// γ-cycles after Fagin [F3]: a sequence (S1, x1, S2, x2, ..., Sm, xm, S1),
// m >= 3, with distinct edges and distinct connector nodes, xi ∈ Si ∩ Si+1,
// where every connector except one lies in no edge of the cycle other than
// its two neighbors. A hypergraph is γ-acyclic iff it has no γ-cycle.
//
// This is the witness-producing counterpart of hypergraph.h's
// IsGammaAcyclic (the Theorem 2.1 u.m.c. characterization); the test suite
// checks the two recognizers agree on randomized sweeps and on every paper
// example.

#ifndef IRD_HYPERGRAPH_GAMMA_CYCLE_H_
#define IRD_HYPERGRAPH_GAMMA_CYCLE_H_

#include <optional>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace ird {

struct GammaCycle {
  // Edge indices S1..Sm and connectors x1..xm (xi joins Si to Si+1, with
  // xm closing back to S1). The exempt (possibly shared) connector is x1.
  std::vector<size_t> edges;
  std::vector<AttributeId> connectors;

  std::string ToString(const Universe& universe) const;
};

// Finds some γ-cycle, or nullopt when the hypergraph is γ-acyclic.
// Exponential in the number of edges in the worst case (guarded at 16);
// dependency-theory schemes are small.
std::optional<GammaCycle> FindGammaCycle(const Hypergraph& h);

}  // namespace ird

#endif  // IRD_HYPERGRAPH_GAMMA_CYCLE_H_
