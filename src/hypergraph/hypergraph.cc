#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <unordered_set>

namespace ird {

namespace {

// Union-find over edge indices; edges sharing a node merge.
class EdgeUnionFind {
 public:
  explicit EdgeUnionFind(const std::vector<AttributeSet>& edges)
      : parent_(edges.size()) {
    for (size_t i = 0; i < edges.size(); ++i) parent_[i] = i;
    for (size_t i = 0; i < edges.size(); ++i) {
      for (size_t j = i + 1; j < edges.size(); ++j) {
        if (edges[i].Intersects(edges[j])) Merge(i, j);
      }
    }
  }

  size_t Find(size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

  void Merge(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Hypergraph::Hypergraph(std::vector<AttributeSet> edges)
    : edges_(std::move(edges)) {
  for (const AttributeSet& e : edges_) {
    IRD_CHECK_MSG(!e.Empty(), "hypergraph edges must be nonempty");
    nodes_.UnionWith(e);
  }
}

Hypergraph Hypergraph::Of(const DatabaseScheme& scheme) {
  std::vector<AttributeSet> edges;
  edges.reserve(scheme.size());
  for (const RelationScheme& r : scheme.relations()) {
    edges.push_back(r.attrs);
  }
  return Hypergraph(std::move(edges));
}

bool Hypergraph::IsConnected() const {
  return ConnectedComponents().size() <= 1;
}

std::vector<std::vector<size_t>> Hypergraph::ConnectedComponents() const {
  EdgeUnionFind uf(edges_);
  std::vector<std::vector<size_t>> components;
  std::vector<int> root_to_component(edges_.size(), -1);
  for (size_t i = 0; i < edges_.size(); ++i) {
    size_t root = uf.Find(i);
    if (root_to_component[root] < 0) {
      root_to_component[root] = static_cast<int>(components.size());
      components.emplace_back();
    }
    components[root_to_component[root]].push_back(i);
  }
  return components;
}

bool IsConnectedFamily(const std::vector<AttributeSet>& family) {
  if (family.empty()) return true;
  for (const AttributeSet& e : family) {
    if (e.Empty()) return false;
  }
  EdgeUnionFind uf(family);
  size_t root = uf.Find(0);
  for (size_t i = 1; i < family.size(); ++i) {
    if (uf.Find(i) != root) return false;
  }
  return true;
}

std::vector<AttributeSet> BachmanClosure(
    const std::vector<AttributeSet>& edges, size_t max_size) {
  std::vector<AttributeSet> closure;
  std::unordered_set<AttributeSet, AttributeSetHash> seen;
  for (const AttributeSet& e : edges) {
    if (!e.Empty() && seen.insert(e).second) closure.push_back(e);
  }
  // Closure under pairwise intersection: process pairs until stable.
  for (size_t i = 0; i < closure.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      AttributeSet inter = closure[i].Intersect(closure[j]);
      if (!inter.Empty() && seen.insert(inter).second) {
        closure.push_back(inter);
        IRD_CHECK_MSG(closure.size() <= max_size,
                      "Bachman closure exceeded the size cap");
      }
    }
  }
  return closure;
}

namespace {

// All *minimal* subsets of `sets` that are connected families covering x,
// as bitmasks: enumerated in increasing popcount order so supersets of an
// already-found minimal cover are skipped cheaply. Exponential scan,
// guarded by the caller.
std::vector<uint64_t> MinimalConnectedCovers(
    const std::vector<AttributeSet>& sets, const AttributeSet& x) {
  const size_t n = sets.size();
  // Pairwise-intersection adjacency for fast connectivity of a mask.
  std::vector<uint64_t> adjacent(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && sets[i].Intersects(sets[j])) {
        adjacent[i] |= uint64_t{1} << j;
      }
    }
  }
  auto mask_connected = [&](uint64_t mask) {
    int start = __builtin_ctzll(mask);
    uint64_t reached = uint64_t{1} << start;
    uint64_t frontier = reached;
    while (frontier != 0) {
      uint64_t next = 0;
      while (frontier != 0) {
        int b = __builtin_ctzll(frontier);
        frontier &= frontier - 1;
        next |= adjacent[b] & mask & ~reached;
      }
      reached |= next;
      frontier = next;
    }
    return reached == mask;
  };
  // Buckets of masks by popcount.
  std::vector<std::vector<uint64_t>> by_count(n + 1);
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    by_count[static_cast<size_t>(__builtin_popcountll(mask))].push_back(
        mask);
  }
  std::vector<uint64_t> minimal;
  for (size_t k = 1; k <= n; ++k) {
    for (uint64_t mask : by_count[k]) {
      bool superset = false;
      for (uint64_t m : minimal) {
        if ((m & mask) == m) {
          superset = true;
          break;
        }
      }
      if (superset) continue;
      AttributeSet cover;
      for (size_t b = 0; b < n; ++b) {
        if ((mask >> b) & 1) cover.UnionWith(sets[b]);
      }
      if (!x.IsSubsetOf(cover)) continue;
      if (!mask_connected(mask)) continue;
      minimal.push_back(mask);
    }
  }
  return minimal;
}

// True iff {W_b : b ∈ w_mask} contains |v| *distinct* elements W_{i_j} with
// W_{i_j} ⊇ V_j — the paper writes the dominating subfamily as a set
// {W_{i_1}, ..., W_{i_m}}, i.e. a system of distinct representatives.
// Kuhn's bipartite matching; both sides are tiny.
bool DominatesInjectively(const std::vector<AttributeSet>& bachman,
                          uint64_t w_mask,
                          const std::vector<AttributeSet>& v) {
  std::vector<std::vector<size_t>> candidates(v.size());
  for (size_t j = 0; j < v.size(); ++j) {
    for (size_t b = 0; b < bachman.size(); ++b) {
      if (((w_mask >> b) & 1) && v[j].IsSubsetOf(bachman[b])) {
        candidates[j].push_back(b);
      }
    }
    if (candidates[j].empty()) return false;
  }
  std::vector<int> matched_to(bachman.size(), -1);
  // Augmenting path search from each V_j.
  std::vector<bool> visited;
  auto augment = [&](auto&& self, size_t j) -> bool {
    for (size_t b : candidates[j]) {
      if (visited[b]) continue;
      visited[b] = true;
      if (matched_to[b] < 0 ||
          self(self, static_cast<size_t>(matched_to[b]))) {
        matched_to[b] = static_cast<int>(j);
        return true;
      }
    }
    return false;
  };
  for (size_t j = 0; j < v.size(); ++j) {
    visited.assign(bachman.size(), false);
    if (!augment(augment, j)) return false;
  }
  return true;
}

// u.m.c. among x given a precomputed Bachman closure.
std::optional<std::vector<AttributeSet>> UmcWithBachman(
    const std::vector<AttributeSet>& bachman, const AttributeSet& x) {
  IRD_CHECK_MSG(bachman.size() <= 18,
                "u.m.c. search is exponential; Bachman closure too large");
  std::vector<uint64_t> minimal = MinimalConnectedCovers(bachman, x);
  if (minimal.empty()) return std::nullopt;  // X not coverable connectedly
  // V is a u.m.c. iff every minimal connected cover dominates it via
  // distinct representatives (then every connected cover does, since each
  // contains a minimal one).
  for (uint64_t v_mask : minimal) {
    std::vector<AttributeSet> v;
    for (size_t b = 0; b < bachman.size(); ++b) {
      if ((v_mask >> b) & 1) v.push_back(bachman[b]);
    }
    bool dominated_by_all = true;
    for (uint64_t w_mask : minimal) {
      if (!DominatesInjectively(bachman, w_mask, v)) {
        dominated_by_all = false;
        break;
      }
    }
    if (dominated_by_all) return v;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<AttributeSet>> FindUniqueMinimalConnection(
    const Hypergraph& h, const AttributeSet& x) {
  return UmcWithBachman(BachmanClosure(h.edges()), x);
}

bool IsGammaAcyclic(const Hypergraph& h) {
  // Theorem 2.1 (pairwise form), per connected component: every pair of
  // nodes of the component must have a unique minimal connection.
  for (const std::vector<size_t>& component : h.ConnectedComponents()) {
    std::vector<AttributeSet> edges;
    AttributeSet nodes;
    for (size_t i : component) {
      edges.push_back(h.edges()[i]);
      nodes.UnionWith(h.edges()[i]);
    }
    std::vector<AttributeSet> bachman = BachmanClosure(edges);
    // Pairwise iteration straight off the bitset: the outer loop walks the
    // component's nodes, the inner loop resumes from the outer position.
    for (auto i = nodes.begin(); i != nodes.end(); ++i) {
      auto j = i;
      for (++j; j != nodes.end(); ++j) {
        AttributeSet pair{*i, *j};
        if (!UmcWithBachman(bachman, pair).has_value()) return false;
      }
    }
  }
  return true;
}

bool HasUmcForAllSubsets(const Hypergraph& h) {
  IRD_CHECK_MSG(h.nodes().Count() <= 14,
                "u.m.c.-for-all-X check is exponential; universe too large");
  IRD_CHECK_MSG(h.IsConnected(),
                "Theorem 2.1 characterizes connected hypergraphs");
  std::vector<AttributeSet> bachman = BachmanClosure(h.edges());
  // The ≤14 guard above bounds the stack buffer.
  AttributeId nodes[14];
  size_t n = 0;
  h.nodes().ForEach([&](AttributeId a) { nodes[n++] = a; });
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    AttributeSet x;
    for (size_t b = 0; b < n; ++b) {
      if ((mask >> b) & 1) x.Add(nodes[b]);
    }
    if (!UmcWithBachman(bachman, x).has_value()) return false;
  }
  return true;
}

bool IsAlphaAcyclic(const Hypergraph& h) {
  // GYO reduction: repeatedly (a) drop nodes occurring in exactly one edge,
  // (b) drop edges contained in another edge (and empty edges). α-acyclic
  // iff everything reduces away.
  std::vector<AttributeSet> edges = h.edges();
  bool changed = true;
  while (changed) {
    changed = false;
    // (a) nodes in exactly one edge.
    AttributeSet all;
    for (const AttributeSet& e : edges) all.UnionWith(e);
    all.ForEach([&](AttributeId node) {
      size_t count = 0;
      size_t holder = 0;
      for (size_t i = 0; i < edges.size(); ++i) {
        if (edges[i].Contains(node)) {
          ++count;
          holder = i;
        }
      }
      if (count == 1) {
        edges[holder].Remove(node);
        changed = true;
      }
    });
    // (b) empty edges and edges contained in another.
    std::vector<AttributeSet> kept;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].Empty()) {
        changed = true;
        continue;
      }
      bool contained = false;
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j) continue;
        bool subset = edges[i].IsSubsetOf(edges[j]);
        // Between equal edges keep the first.
        if (subset && (edges[i] != edges[j] || j < i)) {
          contained = true;
          break;
        }
      }
      if (contained) {
        changed = true;
      } else {
        kept.push_back(edges[i]);
      }
    }
    edges = std::move(kept);
  }
  return edges.empty();
}

}  // namespace ird
