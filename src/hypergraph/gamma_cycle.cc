#include "hypergraph/gamma_cycle.h"

#include <unordered_set>

namespace ird {

std::string GammaCycle::ToString(const Universe& universe) const {
  std::string out = "(";
  for (size_t i = 0; i < edges.size(); ++i) {
    out += 'E';
    out += std::to_string(edges[i] + 1);
    out += ", ";
    out += universe.Name(connectors[i]);
    out += ", ";
    if (i + 1 == edges.size()) {
      out += 'E';
      out += std::to_string(edges[0] + 1);
    }
  }
  return out + ")";
}

namespace {

// DFS over cycle prefixes S1, x1, ..., Sk. The exempt connector is x1;
// every later connector must avoid all cycle edges but its two neighbors.
// Incremental checks run in both directions: a new connector against the
// existing edges, a new edge against the existing restricted connectors.
class CycleSearch {
 public:
  explicit CycleSearch(const std::vector<AttributeSet>& edges)
      : edges_(edges) {}

  std::optional<GammaCycle> Find() {
    for (size_t start = 0; start < edges_.size(); ++start) {
      seq_.assign(1, start);
      used_.assign(edges_.size(), false);
      used_[start] = true;
      connectors_.clear();
      connector_used_.clear();
      if (Extend()) {
        GammaCycle cycle;
        cycle.edges = seq_;
        cycle.connectors = connectors_;
        return cycle;
      }
    }
    return std::nullopt;
  }

 private:
  // May connector x sit at 1-based position `pos` (>= 2, restricted)?
  bool RestrictedOk(AttributeId x, size_t pos) const {
    for (size_t j = 0; j < seq_.size(); ++j) {
      size_t edge_pos = j + 1;
      if (edge_pos == pos || edge_pos == pos + 1) continue;
      if (edges_[seq_[j]].Contains(x)) return false;
    }
    return true;
  }

  bool TryClose() {
    size_t m = seq_.size();
    if (m < 3) return false;
    AttributeSet closing = edges_[seq_[m - 1]].Intersect(edges_[seq_[0]]);
    bool found = false;
    AttributeId chosen = 0;
    closing.ForEach([&](AttributeId x) {
      if (found || connector_used_.count(x) > 0) return;
      // x_m's neighbors are S_m and S_1; it must avoid S_2..S_{m-1}.
      for (size_t j = 1; j + 1 < m; ++j) {
        if (edges_[seq_[j]].Contains(x)) return;
      }
      found = true;
      chosen = x;
    });
    if (found) connectors_.push_back(chosen);
    return found;
  }

  bool Extend() {
    if (TryClose()) return true;
    size_t k = seq_.size();  // adding S_{k+1}, connector x_k
    for (size_t e = 0; e < edges_.size(); ++e) {
      if (used_[e]) continue;
      // The new edge must avoid every restricted connector chosen so far
      // (their neighbor edges are already in the sequence).
      bool edge_ok = true;
      for (size_t i = 1; i < connectors_.size(); ++i) {
        if (edges_[e].Contains(connectors_[i])) {
          edge_ok = false;
          break;
        }
      }
      if (!edge_ok) continue;
      AttributeSet shared = edges_[seq_.back()].Intersect(edges_[e]);
      bool found = false;
      shared.ForEach([&](AttributeId x) {
        if (found || connector_used_.count(x) > 0) return;
        if (k >= 2 && !RestrictedOk(x, k)) return;
        seq_.push_back(e);
        used_[e] = true;
        connectors_.push_back(x);
        connector_used_.insert(x);
        if (Extend()) {
          found = true;
          return;
        }
        connector_used_.erase(x);
        connectors_.pop_back();
        used_[e] = false;
        seq_.pop_back();
      });
      if (found) return true;
    }
    return false;
  }

  const std::vector<AttributeSet>& edges_;
  std::vector<size_t> seq_;
  std::vector<bool> used_;
  std::vector<AttributeId> connectors_;
  std::unordered_set<AttributeId> connector_used_;
};

}  // namespace

std::optional<GammaCycle> FindGammaCycle(const Hypergraph& h) {
  IRD_CHECK_MSG(h.edge_count() <= 16,
                "γ-cycle search is exponential; hypergraph too large");
  if (h.edge_count() < 3) return std::nullopt;
  CycleSearch search(h.edges());
  return search.Find();
}

}  // namespace ird
