// Extension joins and sequential joins (paper §2.6).
//
// An extension join extends the tuples of an expression E1 on R1 by the
// attributes Y of a second expression E2 on R2, where Y ⊆ R2 - R1 and
// R1 ∩ R2 -> Y ∈ F+: every E1-tuple picks up at most one extension, so the
// join never multiplies tuples. A sequential join orders a subscheme
// R_1, ..., R_m and joins left-to-right.

#ifndef IRD_ALGEBRA_EXTENSION_JOIN_H_
#define IRD_ALGEBRA_EXTENSION_JOIN_H_

#include <optional>
#include <vector>

#include "algebra/expression.h"
#include "fd/fd_set.h"
#include "schema/database_scheme.h"

namespace ird {

// True iff the sequential join R_{order[0]} ⋈ ... ⋈ R_{order[m-1]} is a
// sequence of extension joins wrt `fds`: at every step the attributes
// gained are functionally determined by the overlap with the prefix.
bool IsExtensionJoinSequence(const DatabaseScheme& scheme,
                             const std::vector<size_t>& order,
                             const FdSet& fds);

// Searches for an ordering of `subset` that forms a sequential extension
// join wrt `fds`. Returns nullopt if none exists. Greedy with backtracking;
// |subset| is expected to be small (it indexes relation schemes).
std::optional<std::vector<size_t>> FindExtensionJoinOrder(
    const DatabaseScheme& scheme, const std::vector<size_t>& subset,
    const FdSet& fds);

// The left-deep sequential join expression for `order`.
ExprPtr SequentialJoinExpr(const DatabaseScheme& scheme,
                           const std::vector<size_t>& order);

// True iff `subset` can be bracketed into a (possibly bushy) tree of
// extension joins per the recursive §2.6 definition — E1 and E2 may
// themselves be extension joins, as in Example 4's AB ⋈ AC ⋈ (BE ⋈ CE).
// At each internal node the right side's new attributes must be determined
// by the overlap: attrs(E1) ∩ attrs(E2) -> attrs(E2) - attrs(E1) ∈ F+.
// Exponential in |subset| (3^n submask scan); guarded at 16.
bool AdmitsExtensionJoinTree(const DatabaseScheme& scheme,
                             const std::vector<size_t>& subset,
                             const FdSet& fds);

}  // namespace ird

#endif  // IRD_ALGEBRA_EXTENSION_JOIN_H_
