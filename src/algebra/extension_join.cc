#include "algebra/extension_join.h"

#include <algorithm>

namespace ird {

bool IsExtensionJoinSequence(const DatabaseScheme& scheme,
                             const std::vector<size_t>& order,
                             const FdSet& fds) {
  if (order.empty()) return false;
  AttributeSet prefix = scheme.relation(order[0]).attrs;
  for (size_t i = 1; i < order.size(); ++i) {
    const AttributeSet& next = scheme.relation(order[i]).attrs;
    AttributeSet shared = prefix.Intersect(next);
    AttributeSet gained = next.Minus(prefix);
    if (shared.Empty()) return false;  // a cartesian step, not an extension
    if (!fds.Implies(shared, gained)) return false;
    prefix.UnionWith(next);
  }
  return true;
}

namespace {

bool ExtendOrder(const DatabaseScheme& scheme, const FdSet& fds,
                 const std::vector<size_t>& subset,
                 std::vector<bool>* used, AttributeSet* prefix,
                 std::vector<size_t>* order) {
  if (order->size() == subset.size()) return true;
  for (size_t i = 0; i < subset.size(); ++i) {
    if ((*used)[i]) continue;
    const AttributeSet& next = scheme.relation(subset[i]).attrs;
    AttributeSet shared = prefix->Intersect(next);
    AttributeSet gained = next.Minus(*prefix);
    bool ok = order->empty() ||
              (!shared.Empty() && fds.Implies(shared, gained));
    if (!ok) continue;
    (*used)[i] = true;
    order->push_back(subset[i]);
    AttributeSet saved = *prefix;
    prefix->UnionWith(next);
    if (ExtendOrder(scheme, fds, subset, used, prefix, order)) return true;
    *prefix = saved;
    order->pop_back();
    (*used)[i] = false;
  }
  return false;
}

}  // namespace

std::optional<std::vector<size_t>> FindExtensionJoinOrder(
    const DatabaseScheme& scheme, const std::vector<size_t>& subset,
    const FdSet& fds) {
  if (subset.empty()) return std::nullopt;
  std::vector<bool> used(subset.size(), false);
  std::vector<size_t> order;
  AttributeSet prefix;
  if (ExtendOrder(scheme, fds, subset, &used, &prefix, &order)) {
    return order;
  }
  return std::nullopt;
}

bool AdmitsExtensionJoinTree(const DatabaseScheme& scheme,
                             const std::vector<size_t>& subset,
                             const FdSet& fds) {
  IRD_CHECK_MSG(subset.size() <= 16,
                "extension-tree search is exponential; subset too large");
  if (subset.empty()) return false;
  const size_t n = subset.size();
  std::vector<AttributeSet> union_of(uint64_t{1} << n);
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    for (size_t b = 0; b < n; ++b) {
      if ((mask >> b) & 1) {
        union_of[mask].UnionWith(scheme.relation(subset[b]).attrs);
      }
    }
  }
  std::vector<int8_t> memo(uint64_t{1} << n, -1);
  // admits[mask]: the sub-multiset can be bracketed into an extension tree.
  auto admits = [&](auto&& self, uint64_t mask) -> bool {
    if (memo[mask] >= 0) return memo[mask] != 0;
    if (__builtin_popcountll(mask) == 1) {
      memo[mask] = 1;
      return true;
    }
    bool ok = false;
    // Iterate proper submasks as the left operand; the pair is checked in
    // one direction per submask (the complement covers the other).
    for (uint64_t left = (mask - 1) & mask; left != 0 && !ok;
         left = (left - 1) & mask) {
      uint64_t right = mask & ~left;
      const AttributeSet& u1 = union_of[left];
      const AttributeSet& u2 = union_of[right];
      AttributeSet shared = u1.Intersect(u2);
      if (shared.Empty()) continue;
      if (!fds.Implies(shared, u2.Minus(u1))) continue;
      if (self(self, left) && self(self, right)) ok = true;
    }
    memo[mask] = ok ? 1 : 0;
    return ok;
  };
  return admits(admits, (uint64_t{1} << n) - 1);
}

ExprPtr SequentialJoinExpr(const DatabaseScheme& scheme,
                           const std::vector<size_t>& order) {
  IRD_CHECK(!order.empty());
  std::vector<ExprPtr> bases;
  bases.reserve(order.size());
  for (size_t i : order) {
    bases.push_back(Expression::Base(i, scheme.relation(i).attrs));
  }
  return Expression::Join(std::move(bases));
}

}  // namespace ird
