#include "algebra/expression.h"

#include <unordered_map>

namespace ird {

ExprPtr Expression::Base(size_t relation_index, AttributeSet relation_attrs) {
  auto e = std::make_shared<Expression>(Expression());
  e->kind_ = Kind::kBase;
  e->relation_index_ = relation_index;
  e->output_attrs_ = std::move(relation_attrs);
  return e;
}

ExprPtr Expression::Project(AttributeSet attrs, ExprPtr child) {
  IRD_CHECK(child != nullptr);
  IRD_CHECK_MSG(attrs.IsSubsetOf(child->output_attrs()),
                "projection attributes must come from the child");
  auto e = std::make_shared<Expression>(Expression());
  e->kind_ = Kind::kProject;
  e->output_attrs_ = std::move(attrs);
  e->children_.push_back(std::move(child));
  return e;
}

ExprPtr Expression::Join(std::vector<ExprPtr> children) {
  IRD_CHECK_MSG(!children.empty(), "join of zero expressions");
  if (children.size() == 1) return children[0];
  auto e = std::make_shared<Expression>(Expression());
  e->kind_ = Kind::kJoin;
  for (const ExprPtr& c : children) {
    IRD_CHECK(c != nullptr);
    e->output_attrs_.UnionWith(c->output_attrs());
  }
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expression::Select(std::vector<EqualityAtom> formula, ExprPtr child) {
  IRD_CHECK(child != nullptr);
  for (const EqualityAtom& atom : formula) {
    IRD_CHECK_MSG(child->output_attrs().Contains(atom.attr),
                  "selection attribute must come from the child");
  }
  auto e = std::make_shared<Expression>(Expression());
  e->kind_ = Kind::kSelect;
  e->output_attrs_ = child->output_attrs();
  e->children_.push_back(std::move(child));
  e->formula_ = std::move(formula);
  return e;
}

ExprPtr Expression::Union(std::vector<ExprPtr> children) {
  IRD_CHECK_MSG(!children.empty(), "union of zero expressions");
  if (children.size() == 1) return children[0];
  auto e = std::make_shared<Expression>(Expression());
  e->kind_ = Kind::kUnion;
  e->output_attrs_ = children[0]->output_attrs();
  for (const ExprPtr& c : children) {
    IRD_CHECK(c != nullptr);
    IRD_CHECK_MSG(c->output_attrs() == e->output_attrs_,
                  "union branches must have equal output attributes");
  }
  e->children_ = std::move(children);
  return e;
}

size_t Expression::NodeCount() const {
  size_t n = 1;
  for (const ExprPtr& c : children_) {
    n += c->NodeCount();
  }
  return n;
}

std::string Expression::ToString(const DatabaseScheme& scheme) const {
  switch (kind_) {
    case Kind::kBase:
      return scheme.relation(relation_index_).name;
    case Kind::kProject:
      return "π[" + scheme.universe().Format(output_attrs_) + "](" +
             children_[0]->ToString(scheme) + ")";
    case Kind::kJoin: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " ⋈ ";
        out += children_[i]->ToString(scheme);
      }
      return out + ")";
    }
    case Kind::kSelect: {
      std::string out = "σ[";
      for (size_t i = 0; i < formula_.size(); ++i) {
        if (i > 0) out += " ∧ ";
        out += scheme.universe().Name(formula_[i].attr) + "=" +
               std::to_string(formula_[i].value);
      }
      return out + "](" + children_[0]->ToString(scheme) + ")";
    }
    case Kind::kUnion: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " ∪ ";
        out += children_[i]->ToString(scheme);
      }
      return out + ")";
    }
  }
  return "?";
}

PartialRelation NaturalJoin(const PartialRelation& left,
                            const PartialRelation& right) {
  AttributeSet shared = left.attrs().Intersect(right.attrs());
  PartialRelation out(left.attrs().Union(right.attrs()));
  // Build on the smaller side, probe with the larger.
  const PartialRelation& build = left.size() <= right.size() ? left : right;
  const PartialRelation& probe = left.size() <= right.size() ? right : left;
  std::unordered_map<size_t, std::vector<size_t>> index;
  index.reserve(build.size());
  for (size_t i = 0; i < build.size(); ++i) {
    index[build.tuples()[i].Restrict(shared).Hash()].push_back(i);
  }
  for (const PartialTuple& p : probe.tuples()) {
    size_t h = p.Restrict(shared).Hash();
    auto it = index.find(h);
    if (it == index.end()) continue;
    for (size_t i : it->second) {
      const PartialTuple& b = build.tuples()[i];
      if (p.AgreesOn(b, shared)) {
        std::optional<PartialTuple> joined = p.Join(b);
        IRD_CHECK(joined.has_value());
        out.Add(std::move(*joined));
      }
    }
  }
  return out;
}

PartialRelation Evaluate(const Expression& expr, const DatabaseState& state) {
  switch (expr.kind()) {
    case Expression::Kind::kBase: {
      IRD_CHECK(expr.relation_index() < state.relation_count());
      return state.relation(expr.relation_index());
    }
    case Expression::Kind::kProject: {
      PartialRelation child = Evaluate(*expr.children()[0], state);
      PartialRelation out(expr.output_attrs());
      for (const PartialTuple& t : child.tuples()) {
        out.AddUnique(t.Restrict(expr.output_attrs()));
      }
      return out;
    }
    case Expression::Kind::kJoin: {
      PartialRelation acc = Evaluate(*expr.children()[0], state);
      for (size_t i = 1; i < expr.children().size(); ++i) {
        acc = NaturalJoin(acc, Evaluate(*expr.children()[i], state));
      }
      return acc;
    }
    case Expression::Kind::kSelect: {
      PartialRelation child = Evaluate(*expr.children()[0], state);
      PartialRelation out(expr.output_attrs());
      for (const PartialTuple& t : child.tuples()) {
        bool match = true;
        for (const EqualityAtom& atom : expr.formula()) {
          if (t.At(atom.attr) != atom.value) {
            match = false;
            break;
          }
        }
        if (match) out.Add(t);
      }
      return out;
    }
    case Expression::Kind::kUnion: {
      PartialRelation out(expr.output_attrs());
      for (const ExprPtr& c : expr.children()) {
        PartialRelation child = Evaluate(*c, state);
        for (const PartialTuple& t : child.tuples()) {
          out.AddUnique(t);
        }
      }
      return out;
    }
  }
  IRD_CHECK(false);
  return PartialRelation();
}

}  // namespace ird
