// Relational-algebra expressions over a database state: base relations,
// natural joins, projections, conjunctive selections and unions — the
// operator set the paper's bounded expressions are built from (extension
// joins and sequential joins, §2.6; single-tuple conjunctive selections,
// §2.7; unions of projections of joins of lossless subsets, §3.1).
//
// Expressions are immutable trees shared via shared_ptr; evaluation is
// hash-join based.

#ifndef IRD_ALGEBRA_EXPRESSION_H_
#define IRD_ALGEBRA_EXPRESSION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/attribute_set.h"
#include "relation/database_state.h"

namespace ird {

class Expression;
using ExprPtr = std::shared_ptr<const Expression>;

// One conjunct A = 'a' of a conjunctive selection formula (paper §2.7).
struct EqualityAtom {
  AttributeId attr;
  Value value;
};

class Expression {
 public:
  enum class Kind {
    kBase,     // a relation of the state
    kProject,  // π_X(child)
    kJoin,     // child_1 ⋈ ... ⋈ child_k (natural join, left-to-right)
    kSelect,   // σ_Φ(child), Φ a conjunctive formula
    kUnion,    // child_1 ∪ ... ∪ child_k (same output attributes)
  };

  // Factories. All children must be non-null.
  static ExprPtr Base(size_t relation_index, AttributeSet relation_attrs);
  static ExprPtr Project(AttributeSet attrs, ExprPtr child);
  static ExprPtr Join(std::vector<ExprPtr> children);
  static ExprPtr Select(std::vector<EqualityAtom> formula, ExprPtr child);
  static ExprPtr Union(std::vector<ExprPtr> children);

  Kind kind() const { return kind_; }
  size_t relation_index() const { return relation_index_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const std::vector<EqualityAtom>& formula() const { return formula_; }

  // The attribute set of the expression's output.
  const AttributeSet& output_attrs() const { return output_attrs_; }

  // Number of operator nodes — the "size of the expression" that
  // boundedness requires to be state-independent.
  size_t NodeCount() const;

  std::string ToString(const DatabaseScheme& scheme) const;

 private:
  Expression() = default;

  Kind kind_ = Kind::kBase;
  size_t relation_index_ = 0;
  AttributeSet output_attrs_;
  std::vector<ExprPtr> children_;
  std::vector<EqualityAtom> formula_;
};

// Evaluates `expr` against `state`. All tuples in a state are total, so
// projection and restricted projection coincide here.
PartialRelation Evaluate(const Expression& expr, const DatabaseState& state);

// Natural join of two relations (hash join on the shared attributes).
PartialRelation NaturalJoin(const PartialRelation& left,
                            const PartialRelation& right);

}  // namespace ird

#endif  // IRD_ALGEBRA_EXPRESSION_H_
