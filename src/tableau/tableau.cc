#include "tableau/tableau.h"

#include <algorithm>
#include <cstring>

#include "obs/obs.h"

namespace ird {

namespace {
constexpr SymId kNoSymId = static_cast<SymId>(-1);
}  // namespace

Tableau::Tableau(const Tableau& other)
    : width_(other.width_),
      row_count_(other.row_count_),
      constant_cache_(other.constant_cache_),
      dv_cache_(other.dv_cache_) {
  symbols_.assign(arena_, other.symbols_.data(), other.symbols_.size());
  cells_.assign(arena_, other.cells_.data(), other.cells_.size());
  merge_log_.assign(arena_, other.merge_log_.data(), other.merge_log_.size());
}

Tableau& Tableau::operator=(const Tableau& other) {
  if (this != &other) {
    Tableau copy(other);
    *this = std::move(copy);
  }
  return *this;
}

SymId Tableau::NewSymbol(SymbolKind kind, Value aux) {
  SymId id = static_cast<SymId>(symbols_.size());
  symbols_.push_back(arena_, SymbolInfo{kind, aux, id});
  return id;
}

SymId Tableau::Constant(Value value) {
  auto it = constant_cache_.find(value);
  if (it != constant_cache_.end()) return it->second;
  SymId id = NewSymbol(SymbolKind::kConstant, value);
  constant_cache_.emplace(value, id);
  return id;
}

SymId Tableau::Dv(uint32_t column) {
  IRD_CHECK(column < width_);
  if (dv_cache_.size() < width_) {
    dv_cache_.resize(width_, kNoSymId);
  }
  if (dv_cache_[column] == kNoSymId) {
    dv_cache_[column] =
        NewSymbol(SymbolKind::kDistinguished, static_cast<Value>(column));
  }
  return dv_cache_[column];
}

SymId Tableau::FreshNdv() {
  return NewSymbol(SymbolKind::kNondistinguished,
                   static_cast<Value>(symbols_.size()));
}

SymId* Tableau::AppendRowStorage() {
  IRD_COUNT(tableau.rows_materialized);
  ++row_count_;
  return cells_.extend(arena_, width_);
}

size_t Tableau::AddRow(const SymId* cells, size_t n) {
  IRD_CHECK(n == width_);
  SymId* strip = AppendRowStorage();
  std::memcpy(strip, cells, width_ * sizeof(SymId));
  return row_count_ - 1;
}

size_t Tableau::AddSchemeRow(const AttributeSet& scheme_attrs) {
  // Symbol creation may regrow symbols_ while the strip is being filled, but
  // the strip pointer stays valid: symbols_ and cells_ are separate buffers.
  SymId* strip = AppendRowStorage();
  for (uint32_t c = 0; c < width_; ++c) {
    strip[c] = scheme_attrs.Contains(c) ? Dv(c) : FreshNdv();
  }
  return row_count_ - 1;
}

size_t Tableau::AddTupleRow(const AttributeSet& scheme_attrs,
                            const std::vector<Value>& values) {
  IRD_CHECK(values.size() == scheme_attrs.Count());
  SymId* strip = AppendRowStorage();
  for (uint32_t c = 0; c < width_; ++c) strip[c] = kNoSymId;
  size_t vi = 0;
  scheme_attrs.ForEach([&](AttributeId a) {
    IRD_CHECK(a < width_);
    strip[a] = Constant(values[vi++]);
  });
  for (uint32_t c = 0; c < width_; ++c) {
    if (strip[c] == kNoSymId) strip[c] = FreshNdv();
  }
  return row_count_ - 1;
}

SymId Tableau::Find(SymId s) const {
  // Path halving; symbols_ is conceptually mutable state of the union-find.
  auto& symbols = const_cast<ArenaVector<SymbolInfo>&>(symbols_);
  while (symbols[s].parent != s) {
    symbols[s].parent = symbols[symbols[s].parent].parent;
    s = symbols[s].parent;
  }
  return s;
}

bool Tableau::Equate(SymId a, SymId b) {
  SymId ra = Find(a);
  SymId rb = Find(b);
  if (ra == rb) return true;
  const SymbolInfo& sa = symbols_[ra];
  const SymbolInfo& sb = symbols_[rb];
  // Precedence (paper §2.3 fd-rule): constants absorb everything but clash
  // with different constants; dv absorbs ndv; among ndv's the lower birth id
  // wins ("rename the variable with the higher subscript").
  auto rank = [](const SymbolInfo& s) {
    switch (s.kind) {
      case SymbolKind::kConstant:
        return 2;
      case SymbolKind::kDistinguished:
        return 1;
      case SymbolKind::kNondistinguished:
        return 0;
    }
    return 0;
  };
  if (sa.kind == SymbolKind::kConstant && sb.kind == SymbolKind::kConstant) {
    return sa.aux == sb.aux;  // equal constants merge trivially; else clash
  }
  SymId winner;
  SymId loser;
  if (rank(sa) != rank(sb)) {
    winner = rank(sa) > rank(sb) ? ra : rb;
    loser = winner == ra ? rb : ra;
  } else if (sa.kind == SymbolKind::kNondistinguished) {
    winner = sa.aux <= sb.aux ? ra : rb;
    loser = winner == ra ? rb : ra;
  } else {
    // Two dv's of different columns can only be equated by a buggy caller:
    // fd-rules equate symbols within one column, and each column has one dv.
    IRD_CHECK_MSG(sa.aux == sb.aux, "equating dv's of different columns");
    winner = ra;
    loser = rb;
  }
  symbols_[loser].parent = winner;
  merge_log_.push_back(arena_, MergeRecord{winner, loser});
  return true;
}

AttributeSet Tableau::ConstantColumns(size_t row) const {
  AttributeSet out;
  ConstantColumns(row, &out);
  return out;
}

void Tableau::ConstantColumns(size_t row, AttributeSet* out) const {
  *out = AttributeSet();
  const SymId* strip = cells_.data() + row * width_;
  for (uint32_t c = 0; c < width_; ++c) {
    if (IsConstant(strip[c])) out->Add(c);
  }
}

AttributeSet Tableau::DvColumns(size_t row) const {
  AttributeSet out;
  const SymId* strip = cells_.data() + row * width_;
  for (uint32_t c = 0; c < width_; ++c) {
    if (KindOf(strip[c]) == SymbolKind::kDistinguished) out.Add(c);
  }
  return out;
}

bool Tableau::TotalOn(size_t row, const AttributeSet& x) const {
  const SymId* strip = cells_.data() + row * width_;
  for (AttributeId a : x) {
    if (!IsConstant(strip[a])) return false;
  }
  return true;
}

std::vector<Value> Tableau::ValuesOn(size_t row, const AttributeSet& x) const {
  std::vector<Value> out;
  ValuesOn(row, x, &out);
  return out;
}

void Tableau::ValuesOn(size_t row, const AttributeSet& x,
                       std::vector<Value>* out) const {
  out->clear();
  out->reserve(x.Count());
  const SymId* strip = cells_.data() + row * width_;
  x.ForEach([&](AttributeId a) { out->push_back(ValueOf(strip[a])); });
}

void Tableau::RemoveRows(const std::vector<bool>& dead) {
  IRD_CHECK(dead.size() == row_count_);
  SymId* base = cells_.data();
  size_t keep = 0;
  for (size_t i = 0; i < row_count_; ++i) {
    if (!dead[i]) {
      if (keep != i) {
        std::memmove(base + keep * width_, base + i * width_,
                     width_ * sizeof(SymId));
      }
      ++keep;
    }
  }
  cells_.truncate(keep * width_);
  row_count_ = keep;
}

void Tableau::Canonicalize() {
  SymId* base = cells_.data();
  const size_t n = cells_.size();
  for (size_t i = 0; i < n; ++i) base[i] = Find(base[i]);
}

std::string Tableau::ToString(const Universe& universe) const {
  std::string out;
  for (uint32_t c = 0; c < width_; ++c) {
    out += universe.Name(c);
    out += "\t";
  }
  out += "\n";
  for (size_t row = 0; row < row_count_; ++row) {
    const SymId* strip = cells_.data() + row * width_;
    for (uint32_t c = 0; c < width_; ++c) {
      SymId s = Find(strip[c]);
      const SymbolInfo& info = symbols_[s];
      switch (info.kind) {
        case SymbolKind::kConstant:
          out += 'c';
          out += std::to_string(info.aux);
          break;
        case SymbolKind::kDistinguished:
          out += 'a';
          out += std::to_string(info.aux);
          break;
        case SymbolKind::kNondistinguished:
          out += 'b';
          out += std::to_string(info.aux);
          break;
      }
      out += "\t";
    }
    out += "\n";
  }
  return out;
}

}  // namespace ird
