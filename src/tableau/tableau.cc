#include "tableau/tableau.h"

#include <algorithm>

#include "obs/obs.h"

namespace ird {

namespace {
constexpr SymId kNoSymId = static_cast<SymId>(-1);
}  // namespace

SymId Tableau::NewSymbol(SymbolKind kind, Value aux) {
  SymId id = static_cast<SymId>(symbols_.size());
  symbols_.push_back(SymbolInfo{kind, aux, id});
  return id;
}

SymId Tableau::Constant(Value value) {
  auto it = constant_cache_.find(value);
  if (it != constant_cache_.end()) return it->second;
  SymId id = NewSymbol(SymbolKind::kConstant, value);
  constant_cache_.emplace(value, id);
  return id;
}

SymId Tableau::Dv(uint32_t column) {
  IRD_CHECK(column < width_);
  if (dv_cache_.size() < width_) {
    dv_cache_.resize(width_, kNoSymId);
  }
  if (dv_cache_[column] == kNoSymId) {
    dv_cache_[column] =
        NewSymbol(SymbolKind::kDistinguished, static_cast<Value>(column));
  }
  return dv_cache_[column];
}

SymId Tableau::FreshNdv() {
  return NewSymbol(SymbolKind::kNondistinguished,
                   static_cast<Value>(symbols_.size()));
}

size_t Tableau::AddRow(std::vector<SymId> cells) {
  IRD_CHECK(cells.size() == width_);
  IRD_COUNT(tableau.rows_materialized);
  rows_.push_back(std::move(cells));
  return rows_.size() - 1;
}

size_t Tableau::AddSchemeRow(const AttributeSet& scheme_attrs) {
  std::vector<SymId> cells(width_);
  for (uint32_t c = 0; c < width_; ++c) {
    cells[c] = scheme_attrs.Contains(c) ? Dv(c) : FreshNdv();
  }
  return AddRow(std::move(cells));
}

size_t Tableau::AddTupleRow(const AttributeSet& scheme_attrs,
                            const std::vector<Value>& values) {
  IRD_CHECK(values.size() == scheme_attrs.Count());
  std::vector<SymId> cells(width_, kNoSymId);
  size_t vi = 0;
  scheme_attrs.ForEach([&](AttributeId a) {
    IRD_CHECK(a < width_);
    cells[a] = Constant(values[vi++]);
  });
  for (uint32_t c = 0; c < width_; ++c) {
    if (cells[c] == kNoSymId) cells[c] = FreshNdv();
  }
  return AddRow(std::move(cells));
}

SymId Tableau::Find(SymId s) const {
  // Path halving; symbols_ is conceptually mutable state of the union-find.
  auto& symbols = const_cast<std::vector<SymbolInfo>&>(symbols_);
  while (symbols[s].parent != s) {
    symbols[s].parent = symbols[symbols[s].parent].parent;
    s = symbols[s].parent;
  }
  return s;
}

bool Tableau::Equate(SymId a, SymId b) {
  SymId ra = Find(a);
  SymId rb = Find(b);
  if (ra == rb) return true;
  const SymbolInfo& sa = symbols_[ra];
  const SymbolInfo& sb = symbols_[rb];
  // Precedence (paper §2.3 fd-rule): constants absorb everything but clash
  // with different constants; dv absorbs ndv; among ndv's the lower birth id
  // wins ("rename the variable with the higher subscript").
  auto rank = [](const SymbolInfo& s) {
    switch (s.kind) {
      case SymbolKind::kConstant:
        return 2;
      case SymbolKind::kDistinguished:
        return 1;
      case SymbolKind::kNondistinguished:
        return 0;
    }
    return 0;
  };
  if (sa.kind == SymbolKind::kConstant && sb.kind == SymbolKind::kConstant) {
    return sa.aux == sb.aux;  // equal constants merge trivially; else clash
  }
  SymId winner;
  SymId loser;
  if (rank(sa) != rank(sb)) {
    winner = rank(sa) > rank(sb) ? ra : rb;
    loser = winner == ra ? rb : ra;
  } else if (sa.kind == SymbolKind::kNondistinguished) {
    winner = sa.aux <= sb.aux ? ra : rb;
    loser = winner == ra ? rb : ra;
  } else {
    // Two dv's of different columns can only be equated by a buggy caller:
    // fd-rules equate symbols within one column, and each column has one dv.
    IRD_CHECK_MSG(sa.aux == sb.aux, "equating dv's of different columns");
    winner = ra;
    loser = rb;
  }
  symbols_[loser].parent = winner;
  merge_log_.push_back(MergeRecord{winner, loser});
  return true;
}

AttributeSet Tableau::ConstantColumns(size_t row) const {
  AttributeSet out;
  for (uint32_t c = 0; c < width_; ++c) {
    if (IsConstant(rows_[row][c])) out.Add(c);
  }
  return out;
}

AttributeSet Tableau::DvColumns(size_t row) const {
  AttributeSet out;
  for (uint32_t c = 0; c < width_; ++c) {
    if (KindOf(rows_[row][c]) == SymbolKind::kDistinguished) out.Add(c);
  }
  return out;
}

bool Tableau::TotalOn(size_t row, const AttributeSet& x) const {
  bool total = true;
  x.ForEach([&](AttributeId a) {
    if (!IsConstant(rows_[row][a])) total = false;
  });
  return total;
}

std::vector<Value> Tableau::ValuesOn(size_t row, const AttributeSet& x) const {
  std::vector<Value> out;
  out.reserve(x.Count());
  x.ForEach([&](AttributeId a) { out.push_back(ValueOf(rows_[row][a])); });
  return out;
}

void Tableau::RemoveRows(const std::vector<bool>& dead) {
  IRD_CHECK(dead.size() == rows_.size());
  size_t keep = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!dead[i]) {
      if (keep != i) rows_[keep] = std::move(rows_[i]);
      ++keep;
    }
  }
  rows_.resize(keep);
}

void Tableau::Canonicalize() {
  for (auto& row : rows_) {
    for (SymId& cell : row) {
      cell = Find(cell);
    }
  }
}

std::string Tableau::ToString(const Universe& universe) const {
  std::string out;
  for (uint32_t c = 0; c < width_; ++c) {
    out += universe.Name(c);
    out += "\t";
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (uint32_t c = 0; c < width_; ++c) {
      SymId s = Find(row[c]);
      const SymbolInfo& info = symbols_[s];
      switch (info.kind) {
        case SymbolKind::kConstant:
          out += 'c';
          out += std::to_string(info.aux);
          break;
        case SymbolKind::kDistinguished:
          out += 'a';
          out += std::to_string(info.aux);
          break;
        case SymbolKind::kNondistinguished:
          out += 'b';
          out += std::to_string(info.aux);
          break;
      }
      out += "\t";
    }
    out += "\n";
  }
  return out;
}

}  // namespace ird
