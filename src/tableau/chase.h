// The chase with fd-rules (paper §2.3, after [MMS]): exhaustively equate
// symbols of a tableau forced equal by the functional dependencies, or
// discover an inconsistency (two distinct constants forced equal).
//
// This module is the library's semantic ground truth: consistency of states,
// representative instances, losslessness, and every specialized algorithm of
// the paper are validated against it.
//
// ChaseFds is delta-driven (semi-naive): per-FD bucket indexes are built
// once and repaired — not rebuilt — after each merge, using the tableau's
// union-find merge log and a symbol→(row, column) occurrence index, so the
// work after the initial seeding is proportional to what actually changed.
// The previous pass-based implementation lives on as the reference
// oracle::PassChaseFds (src/oracle/pass_chase.h) and the two are held equal
// by the `tableau/chase-vs-naive` differential cross-check.

#ifndef IRD_TABLEAU_CHASE_H_
#define IRD_TABLEAU_CHASE_H_

#include "fd/fd_set.h"
#include "schema/database_scheme.h"
#include "tableau/tableau.h"

namespace ird {

struct ChaseStats {
  // False iff the chase found a contradiction (empty tableau result).
  bool consistent = true;
  // Number of symbol merges performed (fd-rule applications that changed
  // the tableau) — the quantity bounded by "boundedness" (paper §2.5).
  // Order-independent on consistent inputs: it equals the number of symbol
  // classes the chase collapses, whatever the rule order.
  size_t rule_applications = 0;
  // Bucket probes of the seed scan — the one-time index build that replaces
  // the pass engine's first whole-tableau pass (counter chase.seed_probes).
  size_t seed_probes = 0;
  // Worklist-driven re-probes: (fd, row) pairs re-examined because a merge
  // touched their key after their seed turn. This is the engine's delta
  // work — the part the pass-based chase redid with whole-tableau re-scans
  // (counter chase.reprobes).
  size_t reprobes = 0;
  // Merge-log records consumed to repair the indexes; equals
  // rule_applications (every merge is repaired exactly once).
  size_t index_repairs = 0;
  // High-water mark of the (fd, row) worklist.
  size_t worklist_max = 0;
};

// Runs CHASE_F(t) in place. On inconsistency the tableau contents are
// meaningless and stats.consistent is false.
ChaseStats ChaseFds(Tableau* t, const FdSet& fds);

// Test-only seam: callbacks fired at the boundaries of the engine's
// worklist-drain phase (the steady-state loop that must not heap-allocate;
// see tests/allocation_test.cc). Not fired when the chase goes inconsistent
// before the drain starts.
struct ChasePhaseObserver {
  void (*on_drain_begin)(void* ctx) = nullptr;
  void (*on_drain_end)(void* ctx) = nullptr;
  void* ctx = nullptr;
};

// Registers `observer` for subsequent ChaseFds calls on this thread's
// engine runs (global, last registration wins; nullptr unregisters). The
// observer is not owned and must outlive its registration.
void SetChasePhaseObserverForTest(const ChasePhaseObserver* observer);

// The tableau T_R for a database scheme (paper §2.2): one row per relation
// scheme, dv on its attributes, fresh ndv's elsewhere.
Tableau SchemeTableau(const DatabaseScheme& scheme);

// Ground-truth lossless test via the chase: CHASE_F(T_R) has a row of all
// dv's. Semantically identical to DatabaseScheme::IsLossless (which uses the
// BMSU closure shortcut); kept separate for cross-validation.
bool IsLosslessByChase(const DatabaseScheme& scheme);

// Minimizes a *chased, consistent* state tableau by dropping rows whose
// constant part is subsumed by another row's (equal on all constants of the
// dropped row, defined on a superset). Rows with identical constant parts
// keep the first occurrence. Returns the number of rows removed.
size_t MinimizeByConstantSubsumption(Tableau* t);

}  // namespace ird

#endif  // IRD_TABLEAU_CHASE_H_
