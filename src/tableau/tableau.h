// Tableaux (paper §2.2): matrices of symbols over the universe U. Each
// column corresponds to an attribute; a cell holds a constant, the column's
// distinguished variable (dv) a_i, or a nondistinguished variable (ndv)
// b_ij. Tableaux are the substrate of the chase (paper §2.3) and of the
// weak instance model (paper §2.5).
//
// Symbols live in a per-tableau symbol table with union-find equating, so
// an fd-rule application is a near-O(1) merge. Precedence when merging two
// classes follows the paper: constant beats dv beats ndv; two distinct
// constants are an inconsistency; ndv with the lower id wins among ndv's.
//
// Storage is struct-of-arrays: all cells live in one contiguous
// width-strided SymId buffer (row r occupies cells_[r*width .. r*width+width)),
// and the symbol table and merge log are flat arrays too. Everything is
// backed by a per-tableau bump arena, so growing the tableau during a chase
// costs pointer arithmetic, not malloc, and a row scan walks one cache-friendly
// buffer. RowRef is the borrowed view of one row's cell strip.

#ifndef IRD_TABLEAU_TABLEAU_H_
#define IRD_TABLEAU_TABLEAU_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/arena.h"
#include "base/attribute_set.h"
#include "base/check.h"
#include "base/universe.h"

namespace ird {

// A constant value. Domains are integers; the io module maps readable
// constant names onto them. (Domains for different attributes are assumed
// disjoint in the paper; the library does not need to enforce this.)
using Value = int64_t;

// Index into a Tableau's symbol table.
using SymId = uint32_t;

enum class SymbolKind : uint8_t {
  kConstant,
  kDistinguished,     // the dv a_i of one column
  kNondistinguished,  // a ndv b_ij
};

class Tableau {
 public:
  // A tableau over columns 0..width-1 (usually |U|).
  explicit Tableau(size_t width) : width_(width) {}

  // Deep copy: the copy gets its own arena with a compacted image of the
  // cells, symbols, and merge log.
  Tableau(const Tableau& other);
  Tableau& operator=(const Tableau& other);
  Tableau(Tableau&&) = default;
  Tableau& operator=(Tableau&&) = default;

  size_t width() const { return width_; }
  size_t row_count() const { return row_count_; }

  // --- Capacity hints -------------------------------------------------------

  // Pre-sizes the cell buffer for `rows` total rows, so AddRow/AddSchemeRow
  // up to that count never regrow.
  void ReserveRows(size_t rows) { cells_.reserve(arena_, rows * width_); }
  // Pre-sizes the merge log for `merges` more records, so Equate during a
  // chase drain never regrows (a chase performs < symbol_count() merges).
  void ReserveAdditionalMerges(size_t merges) {
    merge_log_.reserve(arena_, merge_log_.size() + merges);
  }

  // --- Symbol construction -------------------------------------------------

  // The constant symbol for `value` (deduplicated).
  SymId Constant(Value value);
  // The distinguished variable of `column` (one per column).
  SymId Dv(uint32_t column);
  // A fresh nondistinguished variable.
  SymId FreshNdv();

  // --- Row construction ----------------------------------------------------

  // Appends a row of exactly width() cells. Returns the row index.
  size_t AddRow(const SymId* cells, size_t n);
  size_t AddRow(const std::vector<SymId>& cells) {
    return AddRow(cells.data(), cells.size());
  }

  // Appends the canonical scheme-tableau row for `scheme_attrs`: dv on the
  // scheme's columns, fresh ndv elsewhere.
  size_t AddSchemeRow(const AttributeSet& scheme_attrs);

  // Appends a state-tableau row: the given (column, value) constants on
  // `scheme_attrs`, fresh ndv elsewhere. `values` are aligned with the
  // increasing-order attributes of `scheme_attrs`.
  size_t AddTupleRow(const AttributeSet& scheme_attrs,
                     const std::vector<Value>& values);

  // --- Row access -----------------------------------------------------------

  // Borrowed view of one row's contiguous cell strip (raw SymIds, not
  // canonicalized). Invalidated by any row mutation on the tableau.
  class RowRef {
   public:
    SymId operator[](size_t column) const { return cells_[column]; }
    size_t size() const { return width_; }
    const SymId* data() const { return cells_; }
    const SymId* begin() const { return cells_; }
    const SymId* end() const { return cells_ + width_; }

   private:
    friend class Tableau;
    RowRef(const SymId* cells, size_t width) : cells_(cells), width_(width) {}
    const SymId* cells_;
    size_t width_;
  };

  RowRef Row(size_t row) const {
    return RowRef(cells_.data() + row * width_, width_);
  }

  // --- Symbol inspection (always through the union-find root) --------------

  // Canonical symbol currently in (row, column).
  SymId Cell(size_t row, uint32_t column) const {
    return Find(cells_[row * width_ + column]);
  }

  // Canonical representative of s's equivalence class.
  SymId Canonical(SymId s) const { return Find(s); }

  SymbolKind KindOf(SymId s) const { return symbols_[Find(s)].kind; }
  bool IsConstant(SymId s) const {
    return KindOf(s) == SymbolKind::kConstant;
  }
  // The value of a constant symbol.
  Value ValueOf(SymId s) const {
    SymId r = Find(s);
    IRD_CHECK(symbols_[r].kind == SymbolKind::kConstant);
    return symbols_[r].aux;
  }
  // The column of a dv symbol.
  uint32_t ColumnOf(SymId s) const {
    SymId r = Find(s);
    IRD_CHECK(symbols_[r].kind == SymbolKind::kDistinguished);
    return static_cast<uint32_t>(symbols_[r].aux);
  }

  // --- Equating (the fd-rule's renaming step) -------------------------------

  // Merges the classes of a and b per the paper's precedence. Returns false
  // iff both are constants with different values (an inconsistency). Every
  // merge that actually joins two classes appends one MergeRecord to the
  // merge log (the incremental chase repairs its indexes from it).
  [[nodiscard]] bool Equate(SymId a, SymId b);

  // --- Merge log (union-find history) ---------------------------------------

  // One class merge: both ids were roots when the merge happened; `loser`
  // was re-parented under `winner` and is no longer canonical.
  struct MergeRecord {
    SymId winner;
    SymId loser;
  };

  // All merges performed so far, in order. Never truncated: consumers keep
  // a cursor into it (see the chase engine's index repair loop).
  const ArenaVector<MergeRecord>& merge_log() const { return merge_log_; }

  // Total number of symbols ever created (canonical or not) — the size of
  // the id space occurrence indexes must cover.
  size_t symbol_count() const { return symbols_.size(); }

  // --- Row-level queries -----------------------------------------------------

  // Columns of `row` currently holding constants.
  AttributeSet ConstantColumns(size_t row) const;
  // Scratch-reusing form: resets *out and fills it, no temporaries.
  void ConstantColumns(size_t row, AttributeSet* out) const;
  // Columns of `row` currently holding distinguished variables.
  AttributeSet DvColumns(size_t row) const;
  // True iff `row` is total (all constants) on every column of x.
  bool TotalOn(size_t row, const AttributeSet& x) const;
  // The constant values of `row` on x (which must be total on x), aligned
  // with increasing column order.
  std::vector<Value> ValuesOn(size_t row, const AttributeSet& x) const;
  // Scratch-reusing form: clears *out and appends, reusing its capacity.
  void ValuesOn(size_t row, const AttributeSet& x,
                std::vector<Value>* out) const;

  // Drops rows whose index is flagged in `dead` (used by minimization).
  void RemoveRows(const std::vector<bool>& dead);

  // Rewrites every cell to its canonical symbol (clean snapshot after a
  // chase; purely cosmetic for performance of later scans).
  void Canonicalize();

  // The backing arena, exposed read-only so operation roots can flush its
  // usage into the arena.* obs counters (base/ cannot emit counters itself).
  const Arena& arena() const { return arena_; }

  // Debug rendering with attribute names from `universe`; constants print
  // as c<value>, dv as a<col>, ndv as b<id>.
  std::string ToString(const Universe& universe) const;

 private:
  struct SymbolInfo {
    SymbolKind kind;
    // kConstant: the value. kDistinguished: the column. kNondistinguished:
    // the birth id (lower wins when merging two ndv classes).
    Value aux;
    // Union-find parent (self for roots).
    SymId parent;
  };

  SymId Find(SymId s) const;
  SymId NewSymbol(SymbolKind kind, Value aux);
  // Appends one row's strip and returns its cell pointer.
  SymId* AppendRowStorage();

  size_t width_;
  size_t row_count_ = 0;
  // Declared before the vectors it backs (destruction order is irrelevant —
  // arena payloads are trivially destructible — but initialization order in
  // the copy constructor matters).
  Arena arena_;
  ArenaVector<SymbolInfo> symbols_;
  ArenaVector<SymId> cells_;  // row_count_ * width_ cells, width-strided
  ArenaVector<MergeRecord> merge_log_;
  // Caches for deduplicated constants and per-column dv's.
  std::unordered_map<Value, SymId> constant_cache_;
  std::vector<SymId> dv_cache_;  // indexed by column; kNoSymId if absent
};

}  // namespace ird

#endif  // IRD_TABLEAU_TABLEAU_H_
