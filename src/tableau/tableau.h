// Tableaux (paper §2.2): matrices of symbols over the universe U. Each
// column corresponds to an attribute; a cell holds a constant, the column's
// distinguished variable (dv) a_i, or a nondistinguished variable (ndv)
// b_ij. Tableaux are the substrate of the chase (paper §2.3) and of the
// weak instance model (paper §2.5).
//
// Symbols live in a per-tableau symbol table with union-find equating, so
// an fd-rule application is a near-O(1) merge. Precedence when merging two
// classes follows the paper: constant beats dv beats ndv; two distinct
// constants are an inconsistency; ndv with the lower id wins among ndv's.

#ifndef IRD_TABLEAU_TABLEAU_H_
#define IRD_TABLEAU_TABLEAU_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/attribute_set.h"
#include "base/check.h"
#include "base/universe.h"

namespace ird {

// A constant value. Domains are integers; the io module maps readable
// constant names onto them. (Domains for different attributes are assumed
// disjoint in the paper; the library does not need to enforce this.)
using Value = int64_t;

// Index into a Tableau's symbol table.
using SymId = uint32_t;

enum class SymbolKind : uint8_t {
  kConstant,
  kDistinguished,     // the dv a_i of one column
  kNondistinguished,  // a ndv b_ij
};

class Tableau {
 public:
  // A tableau over columns 0..width-1 (usually |U|).
  explicit Tableau(size_t width) : width_(width) {}

  Tableau(const Tableau&) = default;
  Tableau& operator=(const Tableau&) = default;
  Tableau(Tableau&&) = default;
  Tableau& operator=(Tableau&&) = default;

  size_t width() const { return width_; }
  size_t row_count() const { return rows_.size(); }

  // --- Symbol construction -------------------------------------------------

  // The constant symbol for `value` (deduplicated).
  SymId Constant(Value value);
  // The distinguished variable of `column` (one per column).
  SymId Dv(uint32_t column);
  // A fresh nondistinguished variable.
  SymId FreshNdv();

  // --- Row construction ----------------------------------------------------

  // Appends a row; `cells` must have exactly width() entries. Returns the
  // row index.
  size_t AddRow(std::vector<SymId> cells);

  // Appends the canonical scheme-tableau row for `scheme_attrs`: dv on the
  // scheme's columns, fresh ndv elsewhere.
  size_t AddSchemeRow(const AttributeSet& scheme_attrs);

  // Appends a state-tableau row: the given (column, value) constants on
  // `scheme_attrs`, fresh ndv elsewhere. `values` are aligned with the
  // increasing-order attributes of `scheme_attrs`.
  size_t AddTupleRow(const AttributeSet& scheme_attrs,
                     const std::vector<Value>& values);

  // --- Symbol inspection (always through the union-find root) --------------

  // Canonical symbol currently in (row, column).
  SymId Cell(size_t row, uint32_t column) const {
    return Find(rows_[row][column]);
  }

  // Canonical representative of s's equivalence class.
  SymId Canonical(SymId s) const { return Find(s); }

  SymbolKind KindOf(SymId s) const { return symbols_[Find(s)].kind; }
  bool IsConstant(SymId s) const {
    return KindOf(s) == SymbolKind::kConstant;
  }
  // The value of a constant symbol.
  Value ValueOf(SymId s) const {
    SymId r = Find(s);
    IRD_CHECK(symbols_[r].kind == SymbolKind::kConstant);
    return symbols_[r].aux;
  }
  // The column of a dv symbol.
  uint32_t ColumnOf(SymId s) const {
    SymId r = Find(s);
    IRD_CHECK(symbols_[r].kind == SymbolKind::kDistinguished);
    return static_cast<uint32_t>(symbols_[r].aux);
  }

  // --- Equating (the fd-rule's renaming step) -------------------------------

  // Merges the classes of a and b per the paper's precedence. Returns false
  // iff both are constants with different values (an inconsistency). Every
  // merge that actually joins two classes appends one MergeRecord to the
  // merge log (the incremental chase repairs its indexes from it).
  [[nodiscard]] bool Equate(SymId a, SymId b);

  // --- Merge log (union-find history) ---------------------------------------

  // One class merge: both ids were roots when the merge happened; `loser`
  // was re-parented under `winner` and is no longer canonical.
  struct MergeRecord {
    SymId winner;
    SymId loser;
  };

  // All merges performed so far, in order. Never truncated: consumers keep
  // a cursor into it (see the chase engine's index repair loop).
  const std::vector<MergeRecord>& merge_log() const { return merge_log_; }

  // Total number of symbols ever created (canonical or not) — the size of
  // the id space occurrence indexes must cover.
  size_t symbol_count() const { return symbols_.size(); }

  // --- Row-level queries -----------------------------------------------------

  // Columns of `row` currently holding constants.
  AttributeSet ConstantColumns(size_t row) const;
  // Columns of `row` currently holding distinguished variables.
  AttributeSet DvColumns(size_t row) const;
  // True iff `row` is total (all constants) on every column of x.
  bool TotalOn(size_t row, const AttributeSet& x) const;
  // The constant values of `row` on x (which must be total on x), aligned
  // with increasing column order.
  std::vector<Value> ValuesOn(size_t row, const AttributeSet& x) const;

  // Drops rows whose index is flagged in `dead` (used by minimization).
  void RemoveRows(const std::vector<bool>& dead);

  // Rewrites every cell to its canonical symbol (clean snapshot after a
  // chase; purely cosmetic for performance of later scans).
  void Canonicalize();

  // Debug rendering with attribute names from `universe`; constants print
  // as c<value>, dv as a<col>, ndv as b<id>.
  std::string ToString(const Universe& universe) const;

 private:
  struct SymbolInfo {
    SymbolKind kind;
    // kConstant: the value. kDistinguished: the column. kNondistinguished:
    // the birth id (lower wins when merging two ndv classes).
    Value aux;
    // Union-find parent (self for roots).
    SymId parent;
  };

  SymId Find(SymId s) const;
  SymId NewSymbol(SymbolKind kind, Value aux);

  size_t width_;
  std::vector<SymbolInfo> symbols_;
  std::vector<std::vector<SymId>> rows_;
  std::vector<MergeRecord> merge_log_;
  // Caches for deduplicated constants and per-column dv's.
  std::unordered_map<Value, SymId> constant_cache_;
  std::vector<SymId> dv_cache_;  // indexed by column; kNoSymId if absent
};

}  // namespace ird

#endif  // IRD_TABLEAU_TABLEAU_H_
