// Lossless subsets (paper §2.3): S ⊆ R is a lossless subset covering X if
// ∪S ⊇ X and S is lossless wrt the FDs embedded in S. These subsets are the
// building blocks of the paper's bounded total-projection expressions
// (Lemma 3.2(b), Corollary 3.1(b), Theorem 4.1).
//
// Losslessness of a subset is decided by the chase of the subset's scheme
// tableau under an *ambient* dependency set (the key dependencies of the
// enclosing key-equivalent scheme or of the whole R): derivations may pass
// through attributes outside ∪S — Example 4's subset {AB, AC, BE, CE} is
// lossless only because BC -> D -> A -> E holds in the ambient F. Chasing
// with F is equivalent to chasing with any cover of the embedded
// consequences ([MMS], quoted in §2.3).

#ifndef IRD_TABLEAU_LOSSLESS_H_
#define IRD_TABLEAU_LOSSLESS_H_

#include <vector>

#include "base/attribute_set.h"
#include "fd/fd_set.h"
#include "schema/database_scheme.h"

namespace ird {

// True iff the subscheme {scheme[i] : i ∈ subset} is lossless wrt
// `ambient_fds`: CHASE(T_subset) has a row total (all dv) on the subset's
// attribute union.
bool IsLosslessSubset(const DatabaseScheme& scheme,
                      const std::vector<size_t>& subset,
                      const FdSet& ambient_fds);

// Convenience overload with ambient = all key dependencies of `scheme`.
bool IsLosslessSubset(const DatabaseScheme& scheme,
                      const std::vector<size_t>& subset);

// All *minimal* subsets S of `pool` (indices into `scheme`) such that S is
// lossless wrt `ambient_fds` and ∪S ⊇ x. Minimal means no proper subset
// qualifies; by the monotonicity of projections over lossless joins,
// minimal subsets suffice to compute the union of Corollary 3.1(b).
//
// Exponential in |pool| (inherent: there can be exponentially many);
// guarded at |pool| <= 20.
std::vector<std::vector<size_t>> MinimalLosslessSubsetsCovering(
    const DatabaseScheme& scheme, const std::vector<size_t>& pool,
    const AttributeSet& x, const FdSet& ambient_fds);

// Convenience overload with ambient = all key dependencies of `scheme`.
std::vector<std::vector<size_t>> MinimalLosslessSubsetsCovering(
    const DatabaseScheme& scheme, const std::vector<size_t>& pool,
    const AttributeSet& x);

// ALL lossless subsets of `pool` covering x, minimal or not. The §3.2
// key-value lookup needs the non-minimal ones too: among the nonempty
// single-tuple selections σ_{K='k'}(E_i) the *greatest* (largest attribute
// union) expression carries the total tuple, and the greatest is typically
// not minimal. Same exponential guard as above.
std::vector<std::vector<size_t>> AllLosslessSubsetsCovering(
    const DatabaseScheme& scheme, const std::vector<size_t>& pool,
    const AttributeSet& x, const FdSet& ambient_fds);

}  // namespace ird

#endif  // IRD_TABLEAU_LOSSLESS_H_
