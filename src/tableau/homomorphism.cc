#include "tableau/homomorphism.h"

#include <unordered_map>
#include <vector>

namespace ird {

namespace {

// Backtracking row-assignment search with an incremental symbol binding.
class HomSearch {
 public:
  HomSearch(const Tableau& from, const Tableau& to) : from_(from), to_(to) {}

  bool Run() {
    IRD_CHECK_MSG(from_.row_count() <= 24,
                  "homomorphism search is exponential; tableau too large");
    if (from_.width() != to_.width()) return false;
    return Assign(0);
  }

 private:
  bool Assign(size_t row) {
    if (row == from_.row_count()) return true;
    for (size_t target = 0; target < to_.row_count(); ++target) {
      std::vector<SymId> bound;  // bindings added by this row, for undo
      if (TryMapRow(row, target, &bound)) {
        if (Assign(row + 1)) return true;
      }
      for (SymId s : bound) {
        binding_.erase(s);
      }
    }
    return false;
  }

  bool TryMapRow(size_t row, size_t target, std::vector<SymId>* bound) {
    for (uint32_t c = 0; c < from_.width(); ++c) {
      SymId f = from_.Cell(row, c);
      SymId t = to_.Cell(target, c);
      switch (from_.KindOf(f)) {
        case SymbolKind::kConstant:
          // Constants are fixed: the target cell must hold the same value.
          if (!to_.IsConstant(t) || to_.ValueOf(t) != from_.ValueOf(f)) {
            Undo(bound);
            return false;
          }
          break;
        case SymbolKind::kDistinguished:
          // The dv of a column maps to the dv of the same column.
          if (to_.KindOf(t) != SymbolKind::kDistinguished) {
            Undo(bound);
            return false;
          }
          break;
        case SymbolKind::kNondistinguished: {
          auto it = binding_.find(f);
          if (it != binding_.end()) {
            if (it->second != t) {
              Undo(bound);
              return false;
            }
          } else {
            binding_.emplace(f, t);
            bound->push_back(f);
          }
          break;
        }
      }
    }
    return true;
  }

  void Undo(std::vector<SymId>* bound) {
    for (SymId s : *bound) {
      binding_.erase(s);
    }
    bound->clear();
  }

  const Tableau& from_;
  const Tableau& to_;
  // ndv of `from_` -> symbol of `to_` (any kind).
  std::unordered_map<SymId, SymId> binding_;
};

}  // namespace

bool HomomorphismExists(const Tableau& from, const Tableau& to) {
  return HomSearch(from, to).Run();
}

bool AreEquivalentTableaux(const Tableau& a, const Tableau& b) {
  return HomomorphismExists(a, b) && HomomorphismExists(b, a);
}

size_t MinimizeTableau(Tableau* t) {
  size_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t victim = 0; victim < t->row_count(); ++victim) {
      // Build the candidate without `victim` by flagging it dead.
      Tableau candidate = *t;
      std::vector<bool> dead(t->row_count(), false);
      dead[victim] = true;
      candidate.RemoveRows(dead);
      if (HomomorphismExists(*t, candidate)) {
        *t = std::move(candidate);
        ++removed;
        changed = true;
        break;
      }
    }
  }
  return removed;
}

}  // namespace ird
