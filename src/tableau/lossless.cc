#include "tableau/lossless.h"

#include "tableau/chase.h"

namespace ird {

bool IsLosslessSubset(const DatabaseScheme& scheme,
                      const std::vector<size_t>& subset,
                      const FdSet& ambient_fds) {
  if (subset.empty()) return false;
  Tableau t(scheme.universe().size());
  AttributeSet all;
  for (size_t i : subset) {
    t.AddSchemeRow(scheme.relation(i).attrs);
    all.UnionWith(scheme.relation(i).attrs);
  }
  ChaseStats stats = ChaseFds(&t, ambient_fds);
  IRD_CHECK_MSG(stats.consistent, "scheme tableaux cannot be inconsistent");
  for (size_t row = 0; row < t.row_count(); ++row) {
    if (all.IsSubsetOf(t.DvColumns(row))) return true;
  }
  return false;
}

bool IsLosslessSubset(const DatabaseScheme& scheme,
                      const std::vector<size_t>& subset) {
  return IsLosslessSubset(scheme, subset, scheme.key_dependencies());
}

std::vector<std::vector<size_t>> MinimalLosslessSubsetsCovering(
    const DatabaseScheme& scheme, const std::vector<size_t>& pool,
    const AttributeSet& x, const FdSet& ambient_fds) {
  IRD_CHECK_MSG(pool.size() <= 20,
                "lossless-subset enumeration is exponential; pool too large");
  const size_t n = pool.size();
  std::vector<uint64_t> qualifying;  // bitmask over pool positions
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    std::vector<size_t> subset;
    for (size_t b = 0; b < n; ++b) {
      if ((mask >> b) & 1) subset.push_back(pool[b]);
    }
    if (!x.IsSubsetOf(scheme.UnionAttrs(subset))) continue;
    if (IsLosslessSubset(scheme, subset, ambient_fds)) {
      qualifying.push_back(mask);
    }
  }
  // Keep only masks with no qualifying proper subset.
  std::vector<std::vector<size_t>> out;
  for (uint64_t mask : qualifying) {
    bool minimal = true;
    for (uint64_t other : qualifying) {
      if (other != mask && (other & mask) == other) {
        minimal = false;
        break;
      }
    }
    if (!minimal) continue;
    std::vector<size_t> subset;
    for (size_t b = 0; b < n; ++b) {
      if ((mask >> b) & 1) subset.push_back(pool[b]);
    }
    out.push_back(std::move(subset));
  }
  return out;
}

std::vector<std::vector<size_t>> MinimalLosslessSubsetsCovering(
    const DatabaseScheme& scheme, const std::vector<size_t>& pool,
    const AttributeSet& x) {
  return MinimalLosslessSubsetsCovering(scheme, pool, x,
                                        scheme.key_dependencies());
}

std::vector<std::vector<size_t>> AllLosslessSubsetsCovering(
    const DatabaseScheme& scheme, const std::vector<size_t>& pool,
    const AttributeSet& x, const FdSet& ambient_fds) {
  IRD_CHECK_MSG(pool.size() <= 20,
                "lossless-subset enumeration is exponential; pool too large");
  const size_t n = pool.size();
  std::vector<std::vector<size_t>> out;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    std::vector<size_t> subset;
    for (size_t b = 0; b < n; ++b) {
      if ((mask >> b) & 1) subset.push_back(pool[b]);
    }
    if (!x.IsSubsetOf(scheme.UnionAttrs(subset))) continue;
    if (IsLosslessSubset(scheme, subset, ambient_fds)) {
      out.push_back(std::move(subset));
    }
  }
  return out;
}

}  // namespace ird
