#include "tableau/chase.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "base/arena.h"
#include "obs/obs.h"

namespace ird {

namespace {

constexpr uint32_t kNoEntry = static_cast<uint32_t>(-1);
constexpr int32_t kNoNode = -1;

std::atomic<const ChasePhaseObserver*> g_phase_observer{nullptr};

uint64_t HashSyms(const SymId* syms, uint32_t len) {
  uint64_t h = 1469598103934665603ull;
  for (uint32_t i = 0; i < len; ++i) {
    h ^= syms[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Open-addressing map from a canonical lhs symbol vector (one FD's bucket
// key) to the bucket's rhs symbol. Keys live in a shared append-only key
// store, entries and slots in arena-backed flat arrays; every buffer is
// sized at Init so the steady-state probe allocates nothing (the slot table
// gets room for 2*expected+2 so the load-factor grow can never trigger —
// a BucketMap holds at most one entry per row). Entries are never removed:
// an entry whose key contains a merged-away symbol is stale, and stays —
// probes always canonicalize, so no future lookup can produce a stale key,
// and every row that owned one is re-probed under its repaired key by the
// merge-log walk.
class BucketMap {
 public:
  void Init(Arena* arena, ArenaVector<SymId>* keys, size_t expected_entries) {
    arena_ = arena;
    keys_ = keys;
    size_t cap = 16;
    while (cap < expected_entries * 2 + 2) cap <<= 1;
    slots_ = arena->AllocateArray<uint32_t>(cap);
    std::memset(slots_, 0xff, cap * sizeof(uint32_t));  // all kNoEntry
    mask_ = cap - 1;
    entries_.reserve(*arena, expected_entries);
  }

  // Looks `key` up; if absent, inserts (key -> value) and returns kNoEntry,
  // else returns the entry index (value untouched).
  uint32_t FindOrInsert(const SymId* key, uint32_t len, SymId value) {
    uint64_t hash = HashSyms(key, len);
    size_t i = hash & mask_;
    while (true) {
      uint32_t e = slots_[i];
      if (e == kNoEntry) {
        slots_[i] = static_cast<uint32_t>(entries_.size());
        entries_.push_back(*arena_,
                           Entry{hash, static_cast<uint32_t>(keys_->size()),
                                 len, value});
        std::memcpy(keys_->extend(*arena_, len), key, len * sizeof(SymId));
        if (entries_.size() * 2 > mask_) Grow();
        return kNoEntry;
      }
      const Entry& entry = entries_[e];
      if (entry.hash == hash && entry.len == len &&
          std::equal(key, key + len, keys_->data() + entry.offset)) {
        return e;
      }
      i = (i + 1) & mask_;
    }
  }

  SymId value(uint32_t e) const { return entries_[e].value; }
  void set_value(uint32_t e, SymId v) { entries_[e].value = v; }

 private:
  struct Entry {
    uint64_t hash;
    uint32_t offset;  // into the shared key store
    uint32_t len;
    SymId value;
  };

  // Unreachable given Init's sizing (kept for defense in depth); the old
  // slot table is abandoned in the arena.
  void Grow() {
    size_t cap = (mask_ + 1) * 2;
    slots_ = arena_->AllocateArray<uint32_t>(cap);
    std::memset(slots_, 0xff, cap * sizeof(uint32_t));
    mask_ = cap - 1;
    for (uint32_t e = 0; e < entries_.size(); ++e) {
      size_t i = entries_[e].hash & mask_;
      while (slots_[i] != kNoEntry) i = (i + 1) & mask_;
      slots_[i] = e;
    }
  }

  Arena* arena_ = nullptr;
  ArenaVector<SymId>* keys_ = nullptr;
  uint32_t* slots_ = nullptr;
  size_t mask_ = 0;
  ArenaVector<Entry> entries_;
};

// The delta-driven chase. One engine instance per invocation; all state is
// local to it (and therefore thread-confined) and lives in one engine-owned
// arena. Every buffer is sized in the constructor — bucket slots for the
// no-grow bound, the occurrence pool for rows x indexed columns, the
// worklist for its absorption-inclusive maximum, and the tableau's merge
// log for one merge per symbol — so the probe/repair loop performs no heap
// allocation at all: not in steady state, not on growth.
//
// Invariants the repair loop maintains:
//  * Bucket entries hold keys that were canonical at insert time; the rhs
//    value is canonicalized on every read.
//  * The occurrence index maps each canonical symbol to every (row, col)
//    cell holding its class, over columns appearing in some FD's lhs. rhs
//    columns need no repair: a merge never enables a new firing through an
//    rhs cell (the firing condition reads lhs columns only), and stored rhs
//    values are canonicalized on read.
//  * occ_count_[s] is the number of indexed cells in s's class. A (fd, row)
//    pair whose key has a column class with occ_count_ == 1 cannot collide
//    with any other row (a collision needs a second occurrence of that
//    class in the same column), so seeding skips it; the pair is enqueued
//    the moment that class first merges — as loser (its cells' canonical
//    changes) or as a previously-singleton winner.
class ChaseEngine {
 public:
  ChaseEngine(Tableau* t, const FdSet& standard) : t_(t) {
    const size_t width = t_->width();
    const size_t rows = t_->row_count();
    const size_t nfds = standard.size();
    const size_t nsyms = t_->symbol_count();
    fds_.reserve(nfds);
    // fds-per-column in CSR form: counts, prefix sum, fill.
    uint32_t* col_counts = arena_.AllocateZeroedArray<uint32_t>(width);
    size_t max_lhs = 0;
    size_t total_lhs = 0;
    for (const FunctionalDependency& fd : standard.fds()) {
      // StandardForm splits every FD into single-attribute right sides; the
      // bucket structure is only sound under that shape.
      IRD_DCHECK(fd.rhs.Count() == 1);
      const size_t len = fd.lhs.Count();
      AttributeId* cols = arena_.AllocateArray<AttributeId>(len);
      size_t i = 0;
      fd.lhs.ForEach([&](AttributeId c) {
        cols[i++] = c;
        ++col_counts[c];
      });
      fds_.push_back(IndexedFd{cols, static_cast<uint32_t>(len),
                               fd.rhs.First(), {}});
      fds_.back().buckets.Init(&arena_, &key_arena_, rows);
      max_lhs = std::max(max_lhs, len);
      total_lhs += len;
    }
    col_offsets_ = arena_.AllocateArray<uint32_t>(width + 1);
    col_offsets_[0] = 0;
    for (uint32_t c = 0; c < width; ++c) {
      col_offsets_[c + 1] = col_offsets_[c] + col_counts[c];
    }
    col_fds_ = arena_.AllocateArray<uint32_t>(total_lhs);
    uint32_t* fill = arena_.AllocateArray<uint32_t>(width);
    std::memcpy(fill, col_offsets_, width * sizeof(uint32_t));
    for (uint32_t f = 0; f < fds_.size(); ++f) {
      const IndexedFd& fd = fds_[f];
      for (uint32_t i = 0; i < fd.lhs_len; ++i) {
        col_fds_[fill[fd.lhs_cols[i]]++] = f;
      }
    }
    key_arena_.reserve(arena_, rows * total_lhs);
    lhs_scratch_ = arena_.AllocateArray<SymId>(max_lhs);
    BuildOccurrenceIndex();
    pending_ = arena_.AllocateZeroedArray<uint8_t>(nfds * rows);
    // Worklist bound: at most one live entry per (fd, row) pair, plus at
    // most one stale entry per pair left behind by seed-scan absorption.
    worklist_.reserve(arena_, 2 * nfds * rows);
    // The chase performs fewer merges than there are symbol classes, so the
    // merge log can grow by at most nsyms records; reserving them up front
    // keeps Equate off the allocator during the drain.
    t_->ReserveAdditionalMerges(nsyms);
    log_cursor_ = t_->merge_log().size();
  }

  void Run(ChaseStats* stats) {
    const size_t rows = t_->row_count();
    bool consistent = true;
    // Seed scan — the one-time index build. Every (fd, row) pair that could
    // collide right now is inserted into its bucket; pairs a concurrent
    // merge has already enqueued are absorbed here (probed once, lazily
    // deleted from the worklist), so no pair is ever probed twice.
    for (uint32_t f = 0; f < fds_.size() && consistent; ++f) {
      const IndexedFd& fd = fds_[f];
      for (size_t r = 0; r < rows; ++r) {
        const uint64_t item = static_cast<uint64_t>(f) * rows + r;
        if (pending_[item]) {
          pending_[item] = 0;  // absorbed: its class merged, so never skip
        } else if (SeedSkip(fd, r)) {
          continue;
        }
        ++seed_probes_;
        if (!Probe(f, r)) {
          consistent = false;
          break;
        }
      }
    }
    // Drain the worklist: only (fd, row) pairs an actual merge re-touched
    // after their seed turn had passed. This is the engine's delta work —
    // what the pass-based chase redid with whole-tableau re-scans.
    const ChasePhaseObserver* observer =
        g_phase_observer.load(std::memory_order_acquire);
    if (consistent && observer != nullptr &&
        observer->on_drain_begin != nullptr) {
      observer->on_drain_begin(observer->ctx);
    }
    while (consistent && !worklist_.empty()) {
      uint64_t item = worklist_.back();
      worklist_.truncate(worklist_.size() - 1);
      if (!pending_[item]) continue;  // absorbed by the seed scan
      pending_[item] = 0;
      ++reprobes_;
      consistent = Probe(static_cast<uint32_t>(item / rows),
                         static_cast<size_t>(item % rows));
    }
    if (observer != nullptr && observer->on_drain_end != nullptr) {
      observer->on_drain_end(observer->ctx);
    }
    stats->consistent = consistent;
    stats->rule_applications = equates_;
    stats->seed_probes = seed_probes_;
    stats->reprobes = reprobes_;
    stats->index_repairs = repairs_;
    stats->worklist_max = worklist_max_;
    IRD_COUNT_ADD(chase.seed_probes, seed_probes_);
    IRD_COUNT_ADD(chase.reprobes, reprobes_);
    IRD_COUNT_ADD(chase.equates, equates_);
    IRD_COUNT_ADD(chase.index_repairs, repairs_);
    IRD_COUNT_ADD(chase.worklist_max, worklist_max_);
    // Distribution of total probe-chain length per chase: the counters
    // above prove aggregate work shrank, the histogram shows whether any
    // single chase still walks a pathological chain.
    IRD_HISTOGRAM(chase.probe_chain, seed_probes_ + reprobes_);
    if (consistent) t_->Canonicalize();
  }

  const Arena& arena() const { return arena_; }

 private:
  struct IndexedFd {
    const AttributeId* lhs_cols;  // arena array, increasing order
    uint32_t lhs_len;
    AttributeId rhs_col;
    BucketMap buckets;
  };

  struct OccNode {
    uint32_t row;
    uint32_t col;
    int32_t next;
  };

  void BuildOccurrenceIndex() {
    const size_t width = t_->width();
    const size_t rows = t_->row_count();
    const size_t nsyms = t_->symbol_count();
    occ_head_ = arena_.AllocateArray<int32_t>(nsyms);
    occ_tail_ = arena_.AllocateArray<int32_t>(nsyms);
    for (size_t s = 0; s < nsyms; ++s) occ_head_[s] = occ_tail_[s] = kNoNode;
    occ_count_ = arena_.AllocateZeroedArray<uint32_t>(nsyms);
    size_t indexed_cols = 0;
    for (uint32_t c = 0; c < width; ++c) {
      if (col_offsets_[c + 1] != col_offsets_[c]) ++indexed_cols;
    }
    occ_nodes_.reserve(arena_, rows * indexed_cols);
    for (uint32_t c = 0; c < width; ++c) {
      if (col_offsets_[c + 1] == col_offsets_[c]) continue;
      for (size_t r = 0; r < rows; ++r) {
        SymId s = t_->Cell(r, c);
        int32_t node = static_cast<int32_t>(occ_nodes_.size());
        occ_nodes_.push_back(arena_, OccNode{static_cast<uint32_t>(r), c,
                                             occ_head_[s]});
        if (occ_head_[s] == kNoNode) occ_tail_[s] = node;
        occ_head_[s] = node;
        ++occ_count_[s];
      }
    }
  }

  // A (fd, row) pair whose key has a column class with only one indexed
  // occurrence cannot collide with any other row (a collision needs a
  // second occurrence of that class in the same column); probing it would
  // only insert a bucket nothing else can reach. The pair is enqueued the
  // moment that class first merges.
  bool SeedSkip(const IndexedFd& fd, size_t r) const {
    for (uint32_t i = 0; i < fd.lhs_len; ++i) {
      if (occ_count_[t_->Cell(r, fd.lhs_cols[i])] == 1) return true;
    }
    return false;
  }

  // Probes row r into fd f's bucket; applies the fd-rule on a collision and
  // repairs the indexes from the merge log. Returns false on inconsistency.
  bool Probe(uint32_t f, size_t r) {
    IndexedFd& fd = fds_[f];
    const uint32_t len = fd.lhs_len;
    SymId stack_key[4];
    SymId* key = len <= 4 ? stack_key : lhs_scratch_;
    for (uint32_t i = 0; i < len; ++i) {
      key[i] = t_->Cell(r, fd.lhs_cols[i]);
    }
    SymId rhs = t_->Cell(r, fd.rhs_col);
    uint32_t e = fd.buckets.FindOrInsert(key, len, rhs);
    if (e == kNoEntry) return true;  // first row of this bucket
    SymId existing = t_->Canonical(fd.buckets.value(e));
    if (existing != rhs) {
      // Distinct canonical symbols: apply the fd-rule.
      if (!t_->Equate(existing, rhs)) return false;
      ++equates_;
      // A successful Equate must actually merge the classes.
      IRD_DCHECK(t_->Canonical(existing) == t_->Canonical(rhs));
      DrainMergeLog();
    }
    fd.buckets.set_value(e, t_->Canonical(rhs));
    return true;
  }

  void DrainMergeLog() {
    const ArenaVector<Tableau::MergeRecord>& log = t_->merge_log();
    while (log_cursor_ < log.size()) {
      const Tableau::MergeRecord rec = log[log_cursor_++];
      ++repairs_;
      const bool winner_was_singleton = occ_count_[rec.winner] == 1;
      occ_count_[rec.winner] += occ_count_[rec.loser];
      EnqueueOccurrences(rec.loser);
      // A previously-singleton winner keeps its canonical key, but rows that
      // were seed-skipped because of it can collide from now on.
      if (winner_was_singleton) EnqueueOccurrences(rec.winner);
      SpliceOccurrences(rec.winner, rec.loser);
    }
  }

  void EnqueueOccurrences(SymId s) {
    const size_t rows = t_->row_count();
    for (int32_t n = occ_head_[s]; n != kNoNode; n = occ_nodes_[n].next) {
      const OccNode& node = occ_nodes_[n];
      const uint32_t* fd_begin = col_fds_ + col_offsets_[node.col];
      const uint32_t* fd_end = col_fds_ + col_offsets_[node.col + 1];
      for (const uint32_t* fp = fd_begin; fp != fd_end; ++fp) {
        uint64_t item = static_cast<uint64_t>(*fp) * rows + node.row;
        if (pending_[item]) continue;
        pending_[item] = 1;
        worklist_.push_back(arena_, item);
        worklist_max_ = std::max(worklist_max_, worklist_.size());
      }
    }
  }

  void SpliceOccurrences(SymId winner, SymId loser) {
    if (occ_head_[loser] == kNoNode) return;
    if (occ_head_[winner] == kNoNode) {
      occ_head_[winner] = occ_head_[loser];
      occ_tail_[winner] = occ_tail_[loser];
    } else {
      occ_nodes_[occ_tail_[winner]].next = occ_head_[loser];
      occ_tail_[winner] = occ_tail_[loser];
    }
    occ_head_[loser] = kNoNode;
    occ_tail_[loser] = kNoNode;
  }

  Tableau* t_;
  Arena arena_;                      // owns every buffer below
  std::vector<IndexedFd> fds_;
  uint32_t* col_offsets_ = nullptr;  // CSR: fds-per-column offsets (width+1)
  uint32_t* col_fds_ = nullptr;      // CSR: fd ids, grouped by column
  ArenaVector<SymId> key_arena_;     // all bucket keys, all FDs
  SymId* lhs_scratch_ = nullptr;     // key buffer for lhs vectors > 4
  ArenaVector<OccNode> occ_nodes_;
  int32_t* occ_head_ = nullptr;      // per symbol; kNoNode if empty
  int32_t* occ_tail_ = nullptr;
  uint32_t* occ_count_ = nullptr;    // indexed cells per symbol class
  ArenaVector<uint64_t> worklist_;   // fd * row_count + row, LIFO
  uint8_t* pending_ = nullptr;       // worklist membership bitmap
  size_t log_cursor_ = 0;
  size_t equates_ = 0;
  size_t seed_probes_ = 0;
  size_t reprobes_ = 0;
  size_t repairs_ = 0;
  size_t worklist_max_ = 0;
};

}  // namespace

void SetChasePhaseObserverForTest(const ChasePhaseObserver* observer) {
  g_phase_observer.store(observer, std::memory_order_release);
}

ChaseStats ChaseFds(Tableau* t, const FdSet& fds) {
  IRD_SPAN("chase");
  IRD_COUNT(chase.invocations);
  ChaseStats stats;
  FdSet standard = fds.StandardForm();
  if (standard.empty() || t->row_count() == 0) return stats;
  ChaseEngine engine(t, standard);
  engine.Run(&stats);
  // arena.bytes / arena.highwater accumulate the tableau's and the engine's
  // arena usage across chase invocations (documented in OBSERVABILITY.md as
  // cumulative sums, like every other counter).
  IRD_COUNT_ADD(arena.bytes,
                t->arena().bytes_in_use() + engine.arena().bytes_in_use());
  IRD_COUNT_ADD(arena.highwater, t->arena().highwater_bytes() +
                                     engine.arena().highwater_bytes());
  return stats;
}

Tableau SchemeTableau(const DatabaseScheme& scheme) {
  Tableau t(scheme.universe().size());
  t.ReserveRows(scheme.relations().size());
  for (const RelationScheme& r : scheme.relations()) {
    t.AddSchemeRow(r.attrs);
  }
  return t;
}

bool IsLosslessByChase(const DatabaseScheme& scheme) {
  Tableau t = SchemeTableau(scheme);
  ChaseStats stats = ChaseFds(&t, scheme.key_dependencies());
  IRD_CHECK_MSG(stats.consistent, "scheme tableaux cannot be inconsistent");
  AttributeSet all = scheme.AllAttrs();
  for (size_t row = 0; row < t.row_count(); ++row) {
    if (all.IsSubsetOf(t.DvColumns(row))) return true;
  }
  return false;
}

size_t MinimizeByConstantSubsumption(Tableau* t) {
  const size_t n = t->row_count();
  std::vector<AttributeSet> constant_cols(n);
  // Constant values hoisted out of the pairwise agreement checks: one
  // column-indexed value vector per row (only constant columns are valid).
  std::vector<std::vector<Value>> values(n);
  for (size_t i = 0; i < n; ++i) {
    t->ConstantColumns(i, &constant_cols[i]);
    values[i].resize(t->width());
    constant_cols[i].ForEach([&](AttributeId c) {
      values[i][c] = t->ValueOf(t->Cell(i, c));
    });
  }
  std::vector<bool> dead(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < n; ++j) {
      if (i == j || dead[j]) continue;
      // Row j subsumes row i if j's constants extend i's. Ties (identical
      // constant parts) keep the lower index.
      if (!constant_cols[i].IsSubsetOf(constant_cols[j])) continue;
      if (constant_cols[i] == constant_cols[j] && j > i) continue;
      bool agree = true;
      constant_cols[i].ForEach([&](AttributeId c) {
        if (agree && values[i][c] != values[j][c]) agree = false;
      });
      if (agree) {
        dead[i] = true;
        break;  // row i is gone; no point scanning further subsumers
      }
    }
  }
  size_t removed = 0;
  for (bool d : dead) removed += d ? 1 : 0;
  if (removed > 0) t->RemoveRows(dead);
  return removed;
}

}  // namespace ird
