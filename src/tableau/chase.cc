#include "tableau/chase.h"

#include <unordered_map>
#include <vector>

#include "obs/obs.h"

namespace ird {

namespace {

// Hash of a canonical symbol vector (bucket key for one FD's left side).
struct SymVecHash {
  size_t operator()(const std::vector<SymId>& v) const {
    uint64_t h = 1469598103934665603ull;
    for (SymId s : v) {
      h ^= s;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

ChaseStats ChaseFds(Tableau* t, const FdSet& fds) {
  IRD_SPAN("chase");
  IRD_COUNT(chase.invocations);
  ChaseStats stats;
  FdSet standard = fds.StandardForm();
  if (standard.empty() || t->row_count() == 0) return stats;

  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.passes;
    IRD_COUNT(chase.passes);
    for (const FunctionalDependency& fd : standard.fds()) {
      // chase.steps = row-bucket probes, the chase's unit of work; hoisted
      // out of the row loop (exact except for an inconsistency's early
      // return, which charges the abandoned remainder of its pass).
      IRD_COUNT_ADD(chase.steps, t->row_count());
      // StandardForm splits every FD into single-attribute right sides; the
      // bucket structure below is only sound under that shape.
      IRD_DCHECK(fd.rhs.Count() == 1);
      std::vector<AttributeId> lhs_cols = fd.lhs.ToVector();
      AttributeId rhs_col = fd.rhs.First();
      // Bucket rows by their canonical left-side symbols; within a bucket,
      // all right-side symbols must be equal.
      std::unordered_map<std::vector<SymId>, SymId, SymVecHash> buckets;
      buckets.reserve(t->row_count());
      for (size_t row = 0; row < t->row_count(); ++row) {
        std::vector<SymId> key;
        key.reserve(lhs_cols.size());
        for (AttributeId c : lhs_cols) {
          key.push_back(t->Cell(row, c));
        }
        SymId rhs_sym = t->Cell(row, rhs_col);
        auto [it, inserted] = buckets.emplace(std::move(key), rhs_sym);
        if (!inserted) {
          SymId existing = t->Canonical(it->second);
          if (existing != rhs_sym) {
            // Distinct canonical symbols: apply the fd-rule.
            if (!t->Equate(existing, rhs_sym)) {
              stats.consistent = false;
              return stats;
            }
            ++stats.rule_applications;
            IRD_COUNT(chase.equates);
            changed = true;
            // A successful Equate must actually merge the classes.
            IRD_DCHECK(t->Canonical(existing) == t->Canonical(rhs_sym));
          }
          it->second = t->Canonical(rhs_sym);
        }
      }
    }
  }
  t->Canonicalize();
  return stats;
}

Tableau SchemeTableau(const DatabaseScheme& scheme) {
  Tableau t(scheme.universe().size());
  for (const RelationScheme& r : scheme.relations()) {
    t.AddSchemeRow(r.attrs);
  }
  return t;
}

bool IsLosslessByChase(const DatabaseScheme& scheme) {
  Tableau t = SchemeTableau(scheme);
  ChaseStats stats = ChaseFds(&t, scheme.key_dependencies());
  IRD_CHECK_MSG(stats.consistent, "scheme tableaux cannot be inconsistent");
  AttributeSet all = scheme.AllAttrs();
  for (size_t row = 0; row < t.row_count(); ++row) {
    if (all.IsSubsetOf(t.DvColumns(row))) return true;
  }
  return false;
}

size_t MinimizeByConstantSubsumption(Tableau* t) {
  const size_t n = t->row_count();
  std::vector<AttributeSet> constant_cols(n);
  for (size_t i = 0; i < n; ++i) {
    constant_cols[i] = t->ConstantColumns(i);
  }
  std::vector<bool> dead(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < n; ++j) {
      if (i == j || dead[j] || dead[i]) continue;
      // Row j subsumes row i if j's constants extend i's. Ties (identical
      // constant parts) keep the lower index.
      if (!constant_cols[i].IsSubsetOf(constant_cols[j])) continue;
      if (constant_cols[i] == constant_cols[j] && j > i) continue;
      bool agree = true;
      constant_cols[i].ForEach([&](AttributeId c) {
        if (agree &&
            t->ValueOf(t->Cell(i, c)) != t->ValueOf(t->Cell(j, c))) {
          agree = false;
        }
      });
      if (agree) {
        dead[i] = true;
      }
    }
  }
  size_t removed = 0;
  for (bool d : dead) removed += d ? 1 : 0;
  if (removed > 0) t->RemoveRows(dead);
  return removed;
}

}  // namespace ird
