#include "tableau/chase.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/obs.h"

namespace ird {

namespace {

constexpr uint32_t kNoEntry = static_cast<uint32_t>(-1);
constexpr int32_t kNoNode = -1;

uint64_t HashSyms(const SymId* syms, uint32_t len) {
  uint64_t h = 1469598103934665603ull;
  for (uint32_t i = 0; i < len; ++i) {
    h ^= syms[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Open-addressing map from a canonical lhs symbol vector (one FD's bucket
// key) to the bucket's rhs symbol. Keys live in a shared append-only arena,
// entries and slots in flat vectors, so the steady-state probe allocates
// nothing. Entries are never removed: an entry whose key contains a
// merged-away symbol is stale, and stays — probes always canonicalize, so
// no future lookup can produce a stale key, and every row that owned one is
// re-probed under its repaired key by the merge-log walk.
class BucketMap {
 public:
  void Init(std::vector<SymId>* arena, size_t expected_entries) {
    arena_ = arena;
    size_t cap = 16;
    while (cap < expected_entries * 2) cap <<= 1;
    slots_.assign(cap, kNoEntry);
    mask_ = cap - 1;
  }

  // Looks `key` up; if absent, inserts (key -> value) and returns kNoEntry,
  // else returns the entry index (value untouched).
  uint32_t FindOrInsert(const SymId* key, uint32_t len, SymId value) {
    uint64_t hash = HashSyms(key, len);
    size_t i = hash & mask_;
    while (true) {
      uint32_t e = slots_[i];
      if (e == kNoEntry) {
        slots_[i] = static_cast<uint32_t>(entries_.size());
        entries_.push_back(Entry{hash, static_cast<uint32_t>(arena_->size()),
                                 len, value});
        arena_->insert(arena_->end(), key, key + len);
        if (entries_.size() * 2 > mask_) Grow();
        return kNoEntry;
      }
      const Entry& entry = entries_[e];
      if (entry.hash == hash && entry.len == len &&
          std::equal(key, key + len, arena_->data() + entry.offset)) {
        return e;
      }
      i = (i + 1) & mask_;
    }
  }

  SymId value(uint32_t e) const { return entries_[e].value; }
  void set_value(uint32_t e, SymId v) { entries_[e].value = v; }

 private:
  struct Entry {
    uint64_t hash;
    uint32_t offset;  // into the shared key arena
    uint32_t len;
    SymId value;
  };

  void Grow() {
    size_t cap = (mask_ + 1) * 2;
    slots_.assign(cap, kNoEntry);
    mask_ = cap - 1;
    for (uint32_t e = 0; e < entries_.size(); ++e) {
      size_t i = entries_[e].hash & mask_;
      while (slots_[i] != kNoEntry) i = (i + 1) & mask_;
      slots_[i] = e;
    }
  }

  std::vector<SymId>* arena_ = nullptr;
  std::vector<uint32_t> slots_;
  size_t mask_ = 0;
  std::vector<Entry> entries_;
};

// The delta-driven chase. One engine instance per invocation; all state is
// local to it (and therefore thread-confined), sized once up front, so the
// probe/repair loop performs no heap allocation in steady state.
//
// Invariants the repair loop maintains:
//  * Bucket entries hold keys that were canonical at insert time; the rhs
//    value is canonicalized on every read.
//  * The occurrence index maps each canonical symbol to every (row, col)
//    cell holding its class, over columns appearing in some FD's lhs. rhs
//    columns need no repair: a merge never enables a new firing through an
//    rhs cell (the firing condition reads lhs columns only), and stored rhs
//    values are canonicalized on read.
//  * occ_count_[s] is the number of indexed cells in s's class. A (fd, row)
//    pair whose key has a column class with occ_count_ == 1 cannot collide
//    with any other row (a collision needs a second occurrence of that
//    class in the same column), so seeding skips it; the pair is enqueued
//    the moment that class first merges — as loser (its cells' canonical
//    changes) or as a previously-singleton winner.
class ChaseEngine {
 public:
  ChaseEngine(Tableau* t, const FdSet& standard) : t_(t) {
    const size_t width = t_->width();
    const size_t rows = t_->row_count();
    fds_.reserve(standard.size());
    size_t max_lhs = 0;
    fds_by_col_.assign(width, {});
    for (const FunctionalDependency& fd : standard.fds()) {
      // StandardForm splits every FD into single-attribute right sides; the
      // bucket structure is only sound under that shape.
      IRD_DCHECK(fd.rhs.Count() == 1);
      uint32_t id = static_cast<uint32_t>(fds_.size());
      fds_.push_back(IndexedFd{fd.lhs.ToVector(), fd.rhs.First(), {}});
      fds_.back().buckets.Init(&key_arena_, rows);
      max_lhs = std::max(max_lhs, fds_.back().lhs_cols.size());
      for (AttributeId c : fds_.back().lhs_cols) fds_by_col_[c].push_back(id);
    }
    lhs_scratch_.resize(max_lhs);
    BuildOccurrenceIndex();
    pending_.assign(fds_.size() * rows, 0);
    log_cursor_ = t_->merge_log().size();
  }

  void Run(ChaseStats* stats) {
    const size_t rows = t_->row_count();
    bool consistent = true;
    // Seed scan — the one-time index build. Every (fd, row) pair that could
    // collide right now is inserted into its bucket; pairs a concurrent
    // merge has already enqueued are absorbed here (probed once, lazily
    // deleted from the worklist), so no pair is ever probed twice.
    for (uint32_t f = 0; f < fds_.size() && consistent; ++f) {
      const IndexedFd& fd = fds_[f];
      for (size_t r = 0; r < rows; ++r) {
        const uint64_t item = static_cast<uint64_t>(f) * rows + r;
        if (pending_[item]) {
          pending_[item] = 0;  // absorbed: its class merged, so never skip
        } else if (SeedSkip(fd, r)) {
          continue;
        }
        ++seed_probes_;
        if (!Probe(f, r)) {
          consistent = false;
          break;
        }
      }
    }
    // Drain the worklist: only (fd, row) pairs an actual merge re-touched
    // after their seed turn had passed. This is the engine's delta work —
    // what the pass-based chase redid with whole-tableau re-scans.
    while (consistent && !worklist_.empty()) {
      uint64_t item = worklist_.back();
      worklist_.pop_back();
      if (!pending_[item]) continue;  // absorbed by the seed scan
      pending_[item] = 0;
      ++reprobes_;
      consistent = Probe(static_cast<uint32_t>(item / rows),
                         static_cast<size_t>(item % rows));
    }
    stats->consistent = consistent;
    stats->rule_applications = equates_;
    stats->seed_probes = seed_probes_;
    stats->reprobes = reprobes_;
    stats->index_repairs = repairs_;
    stats->worklist_max = worklist_max_;
    IRD_COUNT_ADD(chase.seed_probes, seed_probes_);
    IRD_COUNT_ADD(chase.reprobes, reprobes_);
    IRD_COUNT_ADD(chase.equates, equates_);
    IRD_COUNT_ADD(chase.index_repairs, repairs_);
    IRD_COUNT_ADD(chase.worklist_max, worklist_max_);
    // Distribution of total probe-chain length per chase: the counters
    // above prove aggregate work shrank, the histogram shows whether any
    // single chase still walks a pathological chain.
    IRD_HISTOGRAM(chase.probe_chain, seed_probes_ + reprobes_);
    if (consistent) t_->Canonicalize();
  }

 private:
  struct IndexedFd {
    std::vector<AttributeId> lhs_cols;
    AttributeId rhs_col;
    BucketMap buckets;
  };

  struct OccNode {
    uint32_t row;
    uint32_t col;
    int32_t next;
  };

  void BuildOccurrenceIndex() {
    const size_t width = t_->width();
    const size_t rows = t_->row_count();
    occ_head_.assign(t_->symbol_count(), kNoNode);
    occ_tail_.assign(t_->symbol_count(), kNoNode);
    occ_count_.assign(t_->symbol_count(), 0);
    size_t indexed_cols = 0;
    for (uint32_t c = 0; c < width; ++c) {
      if (!fds_by_col_[c].empty()) ++indexed_cols;
    }
    occ_nodes_.reserve(rows * indexed_cols);
    for (uint32_t c = 0; c < width; ++c) {
      if (fds_by_col_[c].empty()) continue;
      for (size_t r = 0; r < rows; ++r) {
        SymId s = t_->Cell(r, c);
        int32_t node = static_cast<int32_t>(occ_nodes_.size());
        occ_nodes_.push_back(OccNode{static_cast<uint32_t>(r), c,
                                     occ_head_[s]});
        if (occ_head_[s] == kNoNode) occ_tail_[s] = node;
        occ_head_[s] = node;
        ++occ_count_[s];
      }
    }
  }

  // A (fd, row) pair whose key has a column class with only one indexed
  // occurrence cannot collide with any other row (a collision needs a
  // second occurrence of that class in the same column); probing it would
  // only insert a bucket nothing else can reach. The pair is enqueued the
  // moment that class first merges.
  bool SeedSkip(const IndexedFd& fd, size_t r) const {
    for (AttributeId c : fd.lhs_cols) {
      if (occ_count_[t_->Cell(r, c)] == 1) return true;
    }
    return false;
  }

  // Probes row r into fd f's bucket; applies the fd-rule on a collision and
  // repairs the indexes from the merge log. Returns false on inconsistency.
  bool Probe(uint32_t f, size_t r) {
    IndexedFd& fd = fds_[f];
    const uint32_t len = static_cast<uint32_t>(fd.lhs_cols.size());
    SymId stack_key[4];
    SymId* key = len <= 4 ? stack_key : lhs_scratch_.data();
    for (uint32_t i = 0; i < len; ++i) {
      key[i] = t_->Cell(r, fd.lhs_cols[i]);
    }
    SymId rhs = t_->Cell(r, fd.rhs_col);
    uint32_t e = fd.buckets.FindOrInsert(key, len, rhs);
    if (e == kNoEntry) return true;  // first row of this bucket
    SymId existing = t_->Canonical(fd.buckets.value(e));
    if (existing != rhs) {
      // Distinct canonical symbols: apply the fd-rule.
      if (!t_->Equate(existing, rhs)) return false;
      ++equates_;
      // A successful Equate must actually merge the classes.
      IRD_DCHECK(t_->Canonical(existing) == t_->Canonical(rhs));
      DrainMergeLog();
    }
    fd.buckets.set_value(e, t_->Canonical(rhs));
    return true;
  }

  void DrainMergeLog() {
    const std::vector<Tableau::MergeRecord>& log = t_->merge_log();
    while (log_cursor_ < log.size()) {
      const Tableau::MergeRecord rec = log[log_cursor_++];
      ++repairs_;
      const bool winner_was_singleton = occ_count_[rec.winner] == 1;
      occ_count_[rec.winner] += occ_count_[rec.loser];
      EnqueueOccurrences(rec.loser);
      // A previously-singleton winner keeps its canonical key, but rows that
      // were seed-skipped because of it can collide from now on.
      if (winner_was_singleton) EnqueueOccurrences(rec.winner);
      SpliceOccurrences(rec.winner, rec.loser);
    }
  }

  void EnqueueOccurrences(SymId s) {
    const size_t rows = t_->row_count();
    for (int32_t n = occ_head_[s]; n != kNoNode; n = occ_nodes_[n].next) {
      const OccNode& node = occ_nodes_[n];
      for (uint32_t f : fds_by_col_[node.col]) {
        uint64_t item = static_cast<uint64_t>(f) * rows + node.row;
        if (pending_[item]) continue;
        pending_[item] = 1;
        worklist_.push_back(item);
        worklist_max_ = std::max(worklist_max_, worklist_.size());
      }
    }
  }

  void SpliceOccurrences(SymId winner, SymId loser) {
    if (occ_head_[loser] == kNoNode) return;
    if (occ_head_[winner] == kNoNode) {
      occ_head_[winner] = occ_head_[loser];
      occ_tail_[winner] = occ_tail_[loser];
    } else {
      occ_nodes_[occ_tail_[winner]].next = occ_head_[loser];
      occ_tail_[winner] = occ_tail_[loser];
    }
    occ_head_[loser] = kNoNode;
    occ_tail_[loser] = kNoNode;
  }

  Tableau* t_;
  std::vector<IndexedFd> fds_;
  std::vector<std::vector<uint32_t>> fds_by_col_;  // lhs membership, per col
  std::vector<SymId> key_arena_;       // all bucket keys, all FDs
  std::vector<SymId> lhs_scratch_;     // key buffer for lhs vectors > 4
  std::vector<OccNode> occ_nodes_;
  std::vector<int32_t> occ_head_;      // per symbol; kNoNode if empty
  std::vector<int32_t> occ_tail_;
  std::vector<uint32_t> occ_count_;    // indexed cells per symbol class
  std::vector<uint64_t> worklist_;     // fd * row_count + row, LIFO
  std::vector<uint8_t> pending_;       // worklist membership bitmap
  size_t log_cursor_ = 0;
  size_t equates_ = 0;
  size_t seed_probes_ = 0;
  size_t reprobes_ = 0;
  size_t repairs_ = 0;
  size_t worklist_max_ = 0;
};

}  // namespace

ChaseStats ChaseFds(Tableau* t, const FdSet& fds) {
  IRD_SPAN("chase");
  IRD_COUNT(chase.invocations);
  ChaseStats stats;
  FdSet standard = fds.StandardForm();
  if (standard.empty() || t->row_count() == 0) return stats;
  ChaseEngine engine(t, standard);
  engine.Run(&stats);
  return stats;
}

Tableau SchemeTableau(const DatabaseScheme& scheme) {
  Tableau t(scheme.universe().size());
  for (const RelationScheme& r : scheme.relations()) {
    t.AddSchemeRow(r.attrs);
  }
  return t;
}

bool IsLosslessByChase(const DatabaseScheme& scheme) {
  Tableau t = SchemeTableau(scheme);
  ChaseStats stats = ChaseFds(&t, scheme.key_dependencies());
  IRD_CHECK_MSG(stats.consistent, "scheme tableaux cannot be inconsistent");
  AttributeSet all = scheme.AllAttrs();
  for (size_t row = 0; row < t.row_count(); ++row) {
    if (all.IsSubsetOf(t.DvColumns(row))) return true;
  }
  return false;
}

size_t MinimizeByConstantSubsumption(Tableau* t) {
  const size_t n = t->row_count();
  std::vector<AttributeSet> constant_cols(n);
  // Constant values hoisted out of the pairwise agreement checks: one
  // column-indexed value vector per row (only constant columns are valid).
  std::vector<std::vector<Value>> values(n);
  for (size_t i = 0; i < n; ++i) {
    constant_cols[i] = t->ConstantColumns(i);
    values[i].resize(t->width());
    constant_cols[i].ForEach([&](AttributeId c) {
      values[i][c] = t->ValueOf(t->Cell(i, c));
    });
  }
  std::vector<bool> dead(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < n; ++j) {
      if (i == j || dead[j]) continue;
      // Row j subsumes row i if j's constants extend i's. Ties (identical
      // constant parts) keep the lower index.
      if (!constant_cols[i].IsSubsetOf(constant_cols[j])) continue;
      if (constant_cols[i] == constant_cols[j] && j > i) continue;
      bool agree = true;
      constant_cols[i].ForEach([&](AttributeId c) {
        if (agree && values[i][c] != values[j][c]) agree = false;
      });
      if (agree) {
        dead[i] = true;
        break;  // row i is gone; no point scanning further subsumers
      }
    }
  }
  size_t removed = 0;
  for (bool d : dead) removed += d ? 1 : 0;
  if (removed > 0) t->RemoveRows(dead);
  return removed;
}

}  // namespace ird
