// Tableau homomorphisms, containment and minimization (paper §2.2, after
// [ASU]): a homomorphism from T1 to T2 maps symbols so that constants and
// distinguished variables are fixed and every row of T1 lands on a row of
// T2; its existence means T2's result is contained in T1's on every
// database. Two tableaux are equivalent iff homomorphisms exist both ways;
// a tableau is minimized by dropping rows while equivalence holds.
//
// Row-mapping search is exponential in the worst case (tableau containment
// is NP-complete); intended for the small tableaux of dependency-theory
// reasoning and for validating the specialized minimizers.

#ifndef IRD_TABLEAU_HOMOMORPHISM_H_
#define IRD_TABLEAU_HOMOMORPHISM_H_

#include "tableau/tableau.h"

namespace ird {

// True iff a homomorphism maps `from` into `to`: each row of `from` onto
// some row of `to` under a single symbol mapping that fixes constants and
// distinguished variables. Guarded at 24 rows in `from`.
bool HomomorphismExists(const Tableau& from, const Tableau& to);

// Equivalence: homomorphisms in both directions.
bool AreEquivalentTableaux(const Tableau& a, const Tableau& b);

// Greedy minimization: repeatedly drops a row whose removal leaves an
// equivalent tableau (a subset is always homomorphic into the original, so
// only the original → subset direction needs checking). Returns the number
// of rows removed.
size_t MinimizeTableau(Tableau* t);

}  // namespace ird

#endif  // IRD_TABLEAU_HOMOMORPHISM_H_
