#include "diagnostics/lint.h"

#include <optional>
#include <utility>

#include "core/kep.h"
#include "core/key_equivalence.h"
#include "core/recognition.h"
#include "core/split.h"
#include "core/split_witness.h"
#include "fd/closure_engine.h"
#include "hypergraph/gamma_cycle.h"
#include "hypergraph/hypergraph.h"

namespace ird::diagnostics {

namespace {

// Greedy deterministic derivation of `target` from `start` by the embedded
// key dependencies: repeatedly applies the first declared key dependency
// that is applicable and still adds something. Returns nullopt when the
// target is not derivable (the caller's closure claim was wrong).
std::optional<FdTrace> DeriveTrace(const DatabaseScheme& scheme,
                                   const AttributeSet& start,
                                   const AttributeSet& target) {
  FdTrace trace;
  trace.start = start;
  AttributeSet current = start;
  bool progress = true;
  while (!target.IsSubsetOf(current) && progress) {
    progress = false;
    for (size_t r = 0; r < scheme.size() && !progress; ++r) {
      const RelationScheme& rel = scheme.relation(r);
      if (rel.attrs.IsSubsetOf(current)) continue;
      for (size_t k = 0; k < rel.keys.size(); ++k) {
        if (rel.keys[k].IsSubsetOf(current)) {
          trace.steps.push_back(FdStep{r, k});
          current.UnionWith(rel.attrs);
          progress = true;
          break;
        }
      }
    }
  }
  if (!target.IsSubsetOf(current)) return std::nullopt;
  return trace;
}

Diagnostic Make(RuleId rule, std::string message, std::vector<size_t> rels,
                Witness witness) {
  Diagnostic d;
  d.rule = rule;
  d.severity = InfoFor(rule).severity;
  d.message = std::move(message);
  d.relations = std::move(rels);
  d.witness = std::move(witness);
  return d;
}

void CheckCoverage(const DatabaseScheme& scheme,
                   std::vector<Diagnostic>* out) {
  if (scheme.size() == 0) return;
  AttributeSet covered = scheme.AllAttrs();
  scheme.universe().All().ForEach([&](AttributeId a) {
    if (covered.Contains(a)) return;
    out->push_back(Make(
        RuleId::kUncoveredAttribute,
        "attribute " + scheme.universe().Name(a) +
            " belongs to the universe but to no relation scheme, so the "
            "scheme cannot cover U",
        {}, UncoveredAttributeWitness{a}));
  });
}

void CheckDuplicates(const DatabaseScheme& scheme,
                     std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < scheme.size(); ++i) {
    for (size_t j = i + 1; j < scheme.size(); ++j) {
      if (scheme.relation(i).attrs != scheme.relation(j).attrs) continue;
      out->push_back(Make(
          RuleId::kDuplicateRelation,
          "relations " + scheme.relation(i).name + " and " +
              scheme.relation(j).name + " declare the same attribute set " +
              scheme.universe().Format(scheme.relation(i).attrs),
          {i, j}, DuplicateRelationWitness{i, j}));
    }
  }
}

void CheckKeys(SchemeAnalysis& analysis, std::vector<Diagnostic>* out) {
  const DatabaseScheme& scheme = analysis.scheme();
  for (size_t i = 0; i < scheme.size(); ++i) {
    const RelationScheme& r = scheme.relation(i);
    for (size_t k = 0; k < r.keys.size(); ++k) {
      const AttributeSet& key = r.keys[k];
      // Shadowing by a sibling declaration (subsumes exact duplicates).
      for (size_t k2 = 0; k2 < r.keys.size(); ++k2) {
        if (k2 == k || !r.keys[k2].IsSubsetOf(key)) continue;
        // Report each shadowed pair once, from the shadowed side; for
        // exact duplicates, only the later declaration is redundant.
        if (r.keys[k2] == key && k2 > k) continue;
        out->push_back(Make(
            RuleId::kRedundantKey,
            "key " + scheme.universe().Format(key) + " of " + r.name +
                (r.keys[k2] == key
                     ? " is declared twice"
                     : " is shadowed by its declared sibling key " +
                           scheme.universe().Format(r.keys[k2])),
            {i}, RedundantKeyWitness{i, k, k2}));
        break;
      }
      // Minimality wrt the global F.
      AttributeSet reducible;
      key.ForEach([&](AttributeId a) {
        if (!reducible.Empty()) return;
        AttributeSet smaller = key;
        smaller.Remove(a);
        if (!smaller.Empty() && analysis.FullImplies(smaller, r.attrs)) {
          reducible = smaller;
        }
      });
      if (reducible.Empty()) continue;
      std::optional<FdTrace> trace = DeriveTrace(scheme, reducible, r.attrs);
      IRD_CHECK_MSG(trace.has_value(),
                    "Implies() held but the greedy derivation failed");
      out->push_back(Make(
          RuleId::kNonMinimalKey,
          "declared key " + scheme.universe().Format(key) + " of " + r.name +
              " is not minimal: its proper subset " +
              scheme.universe().Format(reducible) +
              " already determines the relation",
          {i},
          NonMinimalKeyWitness{i, k, reducible, std::move(*trace)}));
    }
  }
}

void CheckKeyEquivalence(const DatabaseScheme& scheme,
                         std::vector<Diagnostic>* out) {
  AttributeSet all = scheme.AllAttrs();
  for (size_t j = 0; j < scheme.size(); ++j) {
    SchemeClosure closure = ComputeSchemeClosure(scheme, j);
    if (closure.closure == all) continue;
    NonKeyEquivalentWitness w;
    w.relation = j;
    for (const ClosureStep& step : closure.steps) {
      w.absorbed.push_back(step.scheme_index);
    }
    w.closure = closure.closure;
    w.missing = all.Minus(closure.closure);
    // Built before the Make call: the witness is moved into it, and
    // argument evaluation order is unspecified.
    std::string message =
        "the scheme closure of " + scheme.relation(j).name + " stalls at " +
        scheme.universe().Format(w.closure) + " and never reaches " +
        scheme.universe().Format(w.missing) +
        ", so the scheme is not key-equivalent as a whole";
    out->push_back(
        Make(RuleId::kNonKeyEquivalent, std::move(message), {j}, std::move(w)));
  }
}

// The Lemma 3.8 covering sequence for a key known to be split in `pool`:
// a partial computation over W = {Rp ∈ pool : key ⊄ Rp} whose union covers
// the key.
std::vector<size_t> CoveringSequence(SchemeAnalysis& analysis,
                                     const AttributeSet& key,
                                     const std::vector<size_t>& pool) {
  const DatabaseScheme& scheme = analysis.scheme();
  std::vector<size_t> w;
  for (size_t i : pool) {
    if (!key.IsSubsetOf(scheme.relation(i).attrs)) w.push_back(i);
  }
  // A split key has a nonempty W (its covering fragments), so the pool
  // passed to the memoized closure is never empty.
  IRD_DCHECK(!w.empty());
  for (size_t start : w) {
    if (!key.IsSubsetOf(analysis.Closure(w, scheme.relation(start).attrs))) {
      continue;
    }
    std::vector<size_t> covering = {start};
    AttributeSet covered = scheme.relation(start).attrs;
    for (const ClosureStep& step :
         ComputeSchemeClosure(scheme, start, w).steps) {
      if (key.IsSubsetOf(covered)) break;
      covering.push_back(step.scheme_index);
      covered.UnionWith(scheme.relation(step.scheme_index).attrs);
    }
    IRD_CHECK_MSG(key.IsSubsetOf(covered),
                  "Lemma 3.8 held but the covering walk missed the key");
    return covering;
  }
  IRD_CHECK_MSG(false, "split key without a Lemma 3.8 covering sequence");
  return {};
}

void CheckSplitKeys(SchemeAnalysis& analysis,
                    const std::vector<std::vector<size_t>>& partition,
                    const LintOptions& options,
                    std::vector<Diagnostic>* out) {
  const DatabaseScheme& scheme = analysis.scheme();
  for (const std::vector<size_t>& block : partition) {
    for (const AttributeSet& key : SplitKeys(analysis, block)) {
      SplitKeyWitness w;
      w.key = key;
      w.pool = block;
      std::string detail;
      if (options.build_instance_witnesses) {
        Result<SplitWitness> instance = BuildSplitWitness(scheme, key, block);
        if (instance.ok()) {
          // The instance's s_l doubles as the Lemma 3.8 covering sequence,
          // keeping the structural and chase-level halves of the witness in
          // sync (dropping exactly these fragments must hide the insert).
          w.covering = instance.value().covering_relations;
          w.state = std::move(instance.value().state);
          w.insert_rel = instance.value().insert_rel;
          w.insert = std::move(instance.value().insert);
          detail = "; inserting " +
                   w.insert.ToString(scheme.universe()) + " into " +
                   scheme.relation(w.insert_rel).name +
                   " breaks a consistent state in a way only the covering "
                   "fragments reveal";
        }
      }
      if (w.covering.empty()) {
        w.covering = CoveringSequence(analysis, key, block);
      }
      std::string covering_names;
      for (size_t k = 0; k < w.covering.size(); ++k) {
        if (k > 0) covering_names += ", ";
        covering_names += scheme.relation(w.covering[k]).name;
      }
      std::vector<size_t> rels = w.covering;
      out->push_back(Make(
          RuleId::kSplitKey,
          "key " + scheme.universe().Format(key) +
              " is split in its key-equivalent block: " + covering_names +
              " jointly cover it without any of them containing it, so the "
              "block is not constant-time maintainable" +
              detail,
          std::move(rels), std::move(w)));
    }
  }
}

void CheckRecognition(const RecognitionResult& recognition,
                      std::vector<Diagnostic>* out) {
  if (recognition.accepted) return;
  IRD_CHECK(recognition.violation.has_value() &&
            recognition.induced.has_value());
  const UniquenessViolation& v = *recognition.violation;
  RecognitionRejectedWitness w;
  w.partition = recognition.partition;
  w.block_i = v.i;
  w.block_j = v.j;
  w.key = v.key;
  w.attribute = v.attribute;
  std::vector<size_t> rels = recognition.partition[v.i];
  rels.insert(rels.end(), recognition.partition[v.j].begin(),
              recognition.partition[v.j].end());
  out->push_back(Make(
      RuleId::kRecognitionRejected,
      "not independence-reducible: in the induced scheme of the " +
          std::to_string(recognition.partition.size()) +
          "-block key-equivalent partition, " +
          v.ToString(*recognition.induced) +
          ", violating the uniqueness condition",
      std::move(rels), std::move(w)));
}

void CheckGammaCycle(const DatabaseScheme& scheme, const LintOptions& options,
                     std::vector<Diagnostic>* out) {
  if (scheme.size() < 3 || scheme.size() > options.max_gamma_edges) return;
  std::optional<GammaCycle> cycle = FindGammaCycle(Hypergraph::Of(scheme));
  if (!cycle.has_value()) return;
  GammaCycleWitness w;
  w.edges = cycle->edges;
  w.connectors = cycle->connectors;
  std::string path;
  for (size_t k = 0; k < w.edges.size(); ++k) {
    path += scheme.relation(w.edges[k]).name + " -" +
            scheme.universe().Name(w.connectors[k]) + "- ";
  }
  path += scheme.relation(w.edges[0]).name;
  std::vector<size_t> rels = w.edges;
  out->push_back(Make(RuleId::kGammaCycle,
                      "the scheme hypergraph has the gamma-cycle " + path,
                      std::move(rels), std::move(w)));
}

void CheckEmbeddedCover(SchemeAnalysis& analysis,
                        const LintOptions& options,
                        std::vector<Diagnostic>* out) {
  const DatabaseScheme& scheme = analysis.scheme();
  // Raw engine: the 2^k subset probes are all distinct, so memoizing them
  // would only bloat the closure memo.
  const ClosureEngine& f = analysis.EngineFor({});
  for (size_t i = 0; i < scheme.size(); ++i) {
    const RelationScheme& r = scheme.relation(i);
    if (r.attrs.Count() > options.max_cover_attrs) continue;
    std::vector<AttributeId> attrs = r.attrs.ToVector();
    size_t n = attrs.size();
    bool reported = false;
    for (uint64_t mask = 1; mask < (uint64_t{1} << n) && !reported; ++mask) {
      AttributeSet x;
      for (size_t b = 0; b < n; ++b) {
        if ((mask >> b) & 1) x.Add(attrs[b]);
      }
      AttributeSet closure = f.Closure(x);
      AttributeSet gained = closure.Intersect(r.attrs).Minus(x);
      if (gained.Empty() || r.attrs.IsSubsetOf(closure)) continue;
      AttributeId determined = gained.First();
      AttributeId missing = r.attrs.Minus(closure).First();
      AttributeSet target;
      target.Add(determined);
      std::optional<FdTrace> trace = DeriveTrace(scheme, x, target);
      IRD_CHECK_MSG(trace.has_value(),
                    "closure found the FD but the derivation failed");
      out->push_back(Make(
          RuleId::kUnsoundEmbeddedCover,
          "hidden dependency " + scheme.universe().Format(x) + " -> " +
              scheme.universe().Name(determined) + " is embedded in " +
              r.name + " although " + scheme.universe().Format(x) +
              " is not a superkey of it (it never determines " +
              scheme.universe().Name(missing) +
              "): the declared keys do not cover the projected dependencies",
          {i},
          UnsoundCoverWitness{i, x, determined, std::move(*trace), missing}));
      reported = true;  // one witness per relation is enough
    }
  }
}

void CheckReachability(SchemeAnalysis& analysis,
                       std::vector<Diagnostic>* out) {
  const DatabaseScheme& scheme = analysis.scheme();
  if (scheme.size() < 2) return;
  scheme.AllAttrs().ForEach([&](AttributeId a) {
    std::vector<size_t> outside;
    for (size_t i = 0; i < scheme.size(); ++i) {
      if (!scheme.relation(i).attrs.Contains(a)) outside.push_back(i);
    }
    if (outside.empty()) return;
    for (size_t i : outside) {
      if (analysis.FullClosure(scheme.relation(i).attrs).Contains(a)) return;
    }
    out->push_back(Make(
        RuleId::kUnreachableAttribute,
        "attribute " + scheme.universe().Name(a) +
            " is unreachable by extension joins: no relation omitting it "
            "has it in its closure, so only full joins can relate it to "
            "the rest of the scheme",
        outside, UnreachableAttributeWitness{a, outside}));
  });
}

}  // namespace

size_t LintReport::CountSeverity(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

LintReport LintScheme(SchemeAnalysis& analysis, const LintOptions& options) {
  const DatabaseScheme& scheme = analysis.scheme();
  LintReport report;
  if (scheme.size() == 0) return report;
  CheckCoverage(scheme, &report.diagnostics);
  CheckDuplicates(scheme, &report.diagnostics);
  CheckKeys(analysis, &report.diagnostics);
  CheckKeyEquivalence(scheme, &report.diagnostics);
  RecognitionResult recognition = RecognizeIndependenceReducible(analysis);
  CheckSplitKeys(analysis, recognition.partition, options,
                 &report.diagnostics);
  CheckRecognition(recognition, &report.diagnostics);
  CheckGammaCycle(scheme, options, &report.diagnostics);
  CheckEmbeddedCover(analysis, options, &report.diagnostics);
  CheckReachability(analysis, &report.diagnostics);
  return report;
}

LintReport LintScheme(const DatabaseScheme& scheme,
                      const LintOptions& options) {
  SchemeAnalysis analysis(scheme);
  return LintScheme(analysis, options);
}

}  // namespace ird::diagnostics
