#include "diagnostics/render.h"

#include <cstdio>

#include "core/classify.h"

namespace ird::diagnostics {

namespace {

void AppendNameList(const DatabaseScheme& scheme,
                    const std::vector<size_t>& indices, const char* sep,
                    std::string* out) {
  for (size_t k = 0; k < indices.size(); ++k) {
    if (k > 0) *out += sep;
    *out += scheme.relation(indices[k]).name;
  }
}

void AppendJsonString(const std::string& s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

std::string RenderText(const DatabaseScheme& scheme,
                       const LintReport& report) {
  std::string out;
  if (report.diagnostics.empty()) {
    return "no diagnostics\n";
  }
  for (const Diagnostic& d : report.diagnostics) {
    out += SeverityName(d.severity);
    out += '[';
    out += RuleName(d.rule);
    out += "] ";
    out += d.message;
    out += '\n';
    if (!d.relations.empty()) {
      out += "    at: ";
      AppendNameList(scheme, d.relations, ", ", &out);
      out += '\n';
    }
    out += "    witness: " + d.Signature(scheme) + "  (" +
           InfoFor(d.rule).paper_ref + ")\n";
  }
  out += std::to_string(report.CountSeverity(Severity::kError)) + " error(s), " +
         std::to_string(report.CountSeverity(Severity::kWarning)) +
         " warning(s), " + std::to_string(report.CountSeverity(Severity::kNote)) +
         " note(s)\n";
  return out;
}

std::string RenderJson(const DatabaseScheme& scheme, const LintReport& report,
                       const std::string& file,
                       const std::vector<Status>* verification) {
  IRD_CHECK(verification == nullptr ||
            verification->size() == report.diagnostics.size());
  std::string out = "{";
  out += "\"file\": ";
  AppendJsonString(file, &out);
  out += ", \"relations\": " + std::to_string(scheme.size());
  out += ", \"errors\": " +
         std::to_string(report.CountSeverity(Severity::kError));
  out += ", \"warnings\": " +
         std::to_string(report.CountSeverity(Severity::kWarning));
  out += ", \"notes\": " + std::to_string(report.CountSeverity(Severity::kNote));
  out += ", \"diagnostics\": [";
  for (size_t k = 0; k < report.diagnostics.size(); ++k) {
    const Diagnostic& d = report.diagnostics[k];
    if (k > 0) out += ", ";
    out += "{\"rule\": ";
    AppendJsonString(RuleName(d.rule), &out);
    out += ", \"severity\": ";
    AppendJsonString(SeverityName(d.severity), &out);
    out += ", \"paper_ref\": ";
    AppendJsonString(InfoFor(d.rule).paper_ref, &out);
    out += ", \"relations\": [";
    for (size_t r = 0; r < d.relations.size(); ++r) {
      if (r > 0) out += ", ";
      AppendJsonString(scheme.relation(d.relations[r]).name, &out);
    }
    out += "], \"signature\": ";
    AppendJsonString(d.Signature(scheme), &out);
    out += ", \"message\": ";
    AppendJsonString(d.message, &out);
    if (verification != nullptr) {
      const Status& v = (*verification)[k];
      out += std::string(", \"witness_verified\": ") +
             (v.ok() ? "true" : "false");
      if (!v.ok()) {
        out += ", \"verification_error\": ";
        AppendJsonString(v.message(), &out);
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string FormatSchemeReport(const DatabaseScheme& scheme,
                               bool test_acyclicity,
                               const LintOptions& options) {
  SchemeClassification c = ClassifyScheme(scheme, test_acyclicity);
  auto yn = [](bool b) { return b ? "yes" : "no"; };
  std::string out;
  out += "valid scheme:             " + c.valid.ToString() + "\n";
  out += std::string("BCNF:                     ") + yn(c.bcnf) + "\n";
  out += std::string("lossless:                 ") + yn(c.lossless) + "\n";
  out += std::string("independent (Sagiv):      ") + yn(c.independent) + "\n";
  out +=
      std::string("key-equivalent:           ") + yn(c.key_equivalent) + "\n";
  if (test_acyclicity) {
    out +=
        std::string("gamma-acyclic:            ") + yn(c.gamma_acyclic) + "\n";
    out +=
        std::string("alpha-acyclic:            ") + yn(c.alpha_acyclic) + "\n";
  }
  out += std::string("independence-reducible:   ") +
         yn(c.independence_reducible) + "\n";
  if (c.independence_reducible) {
    out += "partition:                ";
    for (size_t b = 0; b < c.recognition.partition.size(); ++b) {
      if (b > 0) out += " | ";
      out += "{";
      AppendNameList(scheme, c.recognition.partition[b], ",", &out);
      out += "}";
      out += c.block_split_free[b] ? "" : "*";
    }
    out += "   (* = split block)\n";
  }
  out += std::string("bounded:                  ") + yn(c.bounded) + "\n";
  out += std::string("algebraic-maintainable:   ") +
         yn(c.algebraic_maintainable) + "\n";
  out += std::string("constant-time-maintain.:  ") + yn(c.ctm) + "\n";
  out += "\ndiagnostics:\n";
  LintOptions opts = options;
  if (!test_acyclicity) opts.max_gamma_edges = 0;
  out += RenderText(scheme, LintScheme(scheme, opts));
  return out;
}

}  // namespace ird::diagnostics
