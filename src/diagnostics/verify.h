// Independent witness checking: re-certifies every Diagnostic against the
// definition-literal oracles (oracle/naive_closure.h, oracle/naive_chase.h)
// and raw set replay, deliberately bypassing the optimized decision
// procedures that emitted it. A diagnostic whose witness fails here is a
// bug in the lint rules — the fuzzer asserts this never happens.

#ifndef IRD_DIAGNOSTICS_VERIFY_H_
#define IRD_DIAGNOSTICS_VERIFY_H_

#include "base/status.h"
#include "diagnostics/diagnostic.h"
#include "diagnostics/lint.h"
#include "schema/database_scheme.h"

namespace ird::diagnostics {

// OK iff the diagnostic's witness certifies its claim on `scheme`.
Status VerifyWitness(const DatabaseScheme& scheme, const Diagnostic& d);

// First failing witness of the report, or OK. The message names the rule
// and its signature.
Status VerifyReport(const DatabaseScheme& scheme, const LintReport& report);

// The fuzz hook: lints the scheme and verifies every emitted witness.
Status LintSelfCheck(const DatabaseScheme& scheme,
                     const LintOptions& options = {});

}  // namespace ird::diagnostics

#endif  // IRD_DIAGNOSTICS_VERIFY_H_
