#include "diagnostics/verify.h"

#include <unordered_set>

#include "oracle/naive_chase.h"
#include "oracle/naive_closure.h"

namespace ird::diagnostics {

namespace {

Status Fail(const std::string& what) {
  return FailedPrecondition("witness verification failed: " + what);
}

Status CheckRelationIndex(const DatabaseScheme& scheme, size_t i) {
  if (i >= scheme.size()) {
    return Fail("relation index " + std::to_string(i) + " out of range");
  }
  return OkStatus();
}

// The embedded key dependencies assembled from first principles (no cache,
// no production helper): K -> attrs for every declared key.
FdSet AssembleKeyDeps(const DatabaseScheme& scheme) {
  FdSet out;
  for (const RelationScheme& r : scheme.relations()) {
    for (const AttributeSet& key : r.keys) {
      out.Add(key, r.attrs);
    }
  }
  return out;
}

// Key dependencies of a subset of relations.
FdSet AssembleKeyDeps(const DatabaseScheme& scheme,
                      const std::vector<size_t>& pool) {
  FdSet out;
  for (size_t i : pool) {
    const RelationScheme& r = scheme.relation(i);
    for (const AttributeSet& key : r.keys) {
      out.Add(key, r.attrs);
    }
  }
  return out;
}

// Key-equivalence of `pool` from the definition: every member's naive FD
// closure wrt the pool's own key dependencies reaches the pool's union.
Status CheckPoolKeyEquivalent(const DatabaseScheme& scheme,
                              const std::vector<size_t>& pool) {
  FdSet deps = AssembleKeyDeps(scheme, pool);
  AttributeSet all;
  for (size_t i : pool) all.UnionWith(scheme.relation(i).attrs);
  for (size_t i : pool) {
    if (!all.IsSubsetOf(
            oracle::NaiveClosure(deps, scheme.relation(i).attrs))) {
      return Fail("pool is not key-equivalent: closure of " +
                  scheme.relation(i).name + " misses part of the pool");
    }
  }
  return OkStatus();
}

Status Verify(const DatabaseScheme& scheme,
              const UncoveredAttributeWitness& w) {
  if (w.attribute >= scheme.universe().size()) {
    return Fail("attribute id outside the universe");
  }
  for (const RelationScheme& r : scheme.relations()) {
    if (r.attrs.Contains(w.attribute)) {
      return Fail("attribute " + scheme.universe().Name(w.attribute) +
                  " is covered by " + r.name);
    }
  }
  return OkStatus();
}

Status Verify(const DatabaseScheme& scheme,
              const DuplicateRelationWitness& w) {
  IRD_RETURN_IF_ERROR(CheckRelationIndex(scheme, w.first));
  IRD_RETURN_IF_ERROR(CheckRelationIndex(scheme, w.second));
  if (w.first == w.second) return Fail("a relation cannot duplicate itself");
  if (scheme.relation(w.first).attrs != scheme.relation(w.second).attrs) {
    return Fail("the two relations have different attribute sets");
  }
  return OkStatus();
}

Status Verify(const DatabaseScheme& scheme, const NonMinimalKeyWitness& w) {
  IRD_RETURN_IF_ERROR(CheckRelationIndex(scheme, w.relation));
  const RelationScheme& r = scheme.relation(w.relation);
  if (w.key_index >= r.keys.size()) return Fail("key index out of range");
  const AttributeSet& key = r.keys[w.key_index];
  if (w.reduced.Empty() || !w.reduced.IsProperSubsetOf(key)) {
    return Fail("reduced set is not a nonempty proper subset of the key");
  }
  if (w.derivation.start != w.reduced) {
    return Fail("derivation does not start from the reduced set");
  }
  Result<AttributeSet> derived = w.derivation.Replay(scheme);
  if (!derived.ok()) return derived.status();
  if (!r.attrs.IsSubsetOf(*derived)) {
    return Fail("derivation from the reduced set does not determine " +
                r.name);
  }
  return OkStatus();
}

Status Verify(const DatabaseScheme& scheme, const RedundantKeyWitness& w) {
  IRD_RETURN_IF_ERROR(CheckRelationIndex(scheme, w.relation));
  const RelationScheme& r = scheme.relation(w.relation);
  if (w.key_index >= r.keys.size() || w.shadowed_by >= r.keys.size()) {
    return Fail("key index out of range");
  }
  if (w.key_index == w.shadowed_by) {
    return Fail("a key cannot shadow itself");
  }
  if (!r.keys[w.shadowed_by].IsSubsetOf(r.keys[w.key_index])) {
    return Fail("the sibling key is not contained in the reported key");
  }
  return OkStatus();
}

Status Verify(const DatabaseScheme& scheme,
              const NonKeyEquivalentWitness& w) {
  IRD_RETURN_IF_ERROR(CheckRelationIndex(scheme, w.relation));
  // Replay the absorption order (Algorithm 3 applicability at every step).
  AttributeSet current = scheme.relation(w.relation).attrs;
  for (size_t step : w.absorbed) {
    IRD_RETURN_IF_ERROR(CheckRelationIndex(scheme, step));
    if (!scheme.relation(step).ContainsKey(current)) {
      return Fail("absorption of " + scheme.relation(step).name +
                  " is not applicable at its point in the trace");
    }
    current.UnionWith(scheme.relation(step).attrs);
  }
  if (current != w.closure) {
    return Fail("replayed closure differs from the recorded fixpoint");
  }
  // Maximality: the recorded closure must be closed under every key
  // dependency, which makes it *the* scheme closure — so `missing` really
  // is unreachable.
  for (const RelationScheme& r : scheme.relations()) {
    if (r.ContainsKey(current) && !r.attrs.IsSubsetOf(current)) {
      return Fail("recorded closure is not a fixpoint: " + r.name +
                  " is still absorbable");
    }
  }
  AttributeSet all;
  for (const RelationScheme& r : scheme.relations()) all.UnionWith(r.attrs);
  if (w.missing.Empty() || w.missing != all.Minus(current)) {
    return Fail("missing set does not equal the closure gap");
  }
  return OkStatus();
}

Status Verify(const DatabaseScheme& scheme, const SplitKeyWitness& w) {
  if (w.key.Empty()) return Fail("empty split key");
  if (w.pool.empty() || w.covering.empty()) {
    return Fail("empty pool or covering sequence");
  }
  std::unordered_set<size_t> pool_set;
  for (size_t i : w.pool) {
    IRD_RETURN_IF_ERROR(CheckRelationIndex(scheme, i));
    if (!pool_set.insert(i).second) return Fail("duplicate pool member");
  }
  IRD_RETURN_IF_ERROR(CheckPoolKeyEquivalent(scheme, w.pool));
  // The key must be a declared key of some pool member.
  bool declared = false;
  for (size_t i : w.pool) {
    for (const AttributeSet& key : scheme.relation(i).keys) {
      if (key == w.key) declared = true;
    }
  }
  if (!declared) return Fail("split key is not declared by any pool member");
  // Lemma 3.8 covering sequence: a partial computation over schemes not
  // containing the key whose union covers it.
  AttributeSet covered;
  for (size_t t = 0; t < w.covering.size(); ++t) {
    size_t rel = w.covering[t];
    if (pool_set.find(rel) == pool_set.end()) {
      return Fail("covering member outside the pool");
    }
    if (w.key.IsSubsetOf(scheme.relation(rel).attrs)) {
      return Fail("covering member " + scheme.relation(rel).name +
                  " contains the key outright");
    }
    if (t > 0 && !scheme.relation(rel).ContainsKey(covered)) {
      return Fail("covering step " + scheme.relation(rel).name +
                  " is not applicable in the partial computation");
    }
    covered.UnionWith(scheme.relation(rel).attrs);
  }
  if (!w.key.IsSubsetOf(covered)) {
    return Fail("covering sequence does not cover the key");
  }
  if (!w.state.has_value()) return OkStatus();
  // The adversarial instance (Lemmas 3.5-3.7), checked by the naive chase:
  // (a) the base state is consistent; (c) adding the insert breaks it;
  // (b) without the covering fragments the insert is invisible.
  const DatabaseState& state = *w.state;
  if (state.scheme().size() != scheme.size()) {
    return Fail("instance state shaped for a different scheme");
  }
  IRD_RETURN_IF_ERROR(CheckRelationIndex(scheme, w.insert_rel));
  if (w.insert.attrs() != scheme.relation(w.insert_rel).attrs) {
    return Fail("insert tuple not on the target relation's scheme");
  }
  if (!oracle::IsConsistentNaive(state)) {
    return Fail("adversarial base state is not consistent");
  }
  if (oracle::WouldRemainConsistentNaive(state, w.insert_rel, w.insert)) {
    return Fail("insert does not make the adversarial state inconsistent");
  }
  DatabaseState reduced(state.scheme());
  std::unordered_set<size_t> covering_set(w.covering.begin(),
                                          w.covering.end());
  for (size_t i = 0; i < state.relation_count(); ++i) {
    if (covering_set.find(i) != covering_set.end()) continue;
    for (const PartialTuple& t : state.relation(i).tuples()) {
      reduced.mutable_relation(i).Add(t);
    }
  }
  if (!oracle::WouldRemainConsistentNaive(reduced, w.insert_rel, w.insert)) {
    return Fail(
        "insert is already inconsistent without the covering fragments — "
        "a key probe would catch it");
  }
  return OkStatus();
}

Status Verify(const DatabaseScheme& scheme,
              const RecognitionRejectedWitness& w) {
  // The partition must partition the relation indices exactly.
  std::vector<bool> seen(scheme.size(), false);
  size_t covered = 0;
  for (const std::vector<size_t>& block : w.partition) {
    if (block.empty()) return Fail("empty partition block");
    for (size_t i : block) {
      IRD_RETURN_IF_ERROR(CheckRelationIndex(scheme, i));
      if (seen[i]) return Fail("relation appears in two blocks");
      seen[i] = true;
      ++covered;
    }
  }
  if (covered != scheme.size()) {
    return Fail("partition does not cover every relation");
  }
  if (w.block_i >= w.partition.size() || w.block_j >= w.partition.size() ||
      w.block_i == w.block_j) {
    return Fail("violating block indices invalid");
  }
  // Every block must be key-equivalent (the KEP part of the trace).
  for (const std::vector<size_t>& block : w.partition) {
    IRD_RETURN_IF_ERROR(CheckPoolKeyEquivalent(scheme, block));
  }
  // Rebuild the induced relations of the two blocks from first principles.
  auto block_union = [&](size_t b) {
    AttributeSet out;
    for (size_t i : w.partition[b]) {
      out.UnionWith(scheme.relation(i).attrs);
    }
    return out;
  };
  AttributeSet attrs_j = block_union(w.block_j);
  bool declared = false;
  for (size_t i : w.partition[w.block_j]) {
    for (const AttributeSet& key : scheme.relation(i).keys) {
      if (key == w.key) declared = true;
    }
  }
  if (!declared) return Fail("key is not declared inside block j");
  if (!attrs_j.Contains(w.attribute) || w.key.Contains(w.attribute)) {
    return Fail("attribute is not in block j's scheme minus the key");
  }
  // F_D - F_j: the induced key dependencies of every block except j.
  FdSet f_minus_j;
  for (size_t b = 0; b < w.partition.size(); ++b) {
    if (b == w.block_j) continue;
    AttributeSet attrs_b = block_union(b);
    for (size_t i : w.partition[b]) {
      for (const AttributeSet& key : scheme.relation(i).keys) {
        f_minus_j.Add(key, attrs_b);
      }
    }
  }
  AttributeSet closure =
      oracle::NaiveClosure(f_minus_j, block_union(w.block_i));
  if (!w.key.IsSubsetOf(closure) || !closure.Contains(w.attribute)) {
    return Fail(
        "closure of block i without block j's dependencies does not embed "
        "the reported key dependency");
  }
  return OkStatus();
}

Status Verify(const DatabaseScheme& scheme, const GammaCycleWitness& w) {
  size_t m = w.edges.size();
  if (m < 3 || w.connectors.size() != m) {
    return Fail("gamma-cycle needs >= 3 edges and one connector per edge");
  }
  std::unordered_set<size_t> edge_set;
  for (size_t e : w.edges) {
    IRD_RETURN_IF_ERROR(CheckRelationIndex(scheme, e));
    if (!edge_set.insert(e).second) return Fail("repeated cycle edge");
  }
  std::unordered_set<AttributeId> connector_set;
  for (AttributeId x : w.connectors) {
    if (!connector_set.insert(x).second) {
      return Fail("repeated cycle connector");
    }
  }
  for (size_t k = 0; k < m; ++k) {
    const AttributeSet& here = scheme.relation(w.edges[k]).attrs;
    const AttributeSet& next = scheme.relation(w.edges[(k + 1) % m]).attrs;
    if (!here.Contains(w.connectors[k]) || !next.Contains(w.connectors[k])) {
      return Fail("connector " + scheme.universe().Name(w.connectors[k]) +
                  " does not join its two neighbor edges");
    }
    if (k == 0) continue;  // x1 is the exempt (possibly shared) connector
    for (size_t other = 0; other < m; ++other) {
      if (other == k || other == (k + 1) % m) continue;
      if (scheme.relation(w.edges[other]).attrs.Contains(w.connectors[k])) {
        return Fail("non-exempt connector " +
                    scheme.universe().Name(w.connectors[k]) +
                    " appears in a non-neighbor cycle edge");
      }
    }
  }
  return OkStatus();
}

Status Verify(const DatabaseScheme& scheme, const UnsoundCoverWitness& w) {
  IRD_RETURN_IF_ERROR(CheckRelationIndex(scheme, w.relation));
  const RelationScheme& r = scheme.relation(w.relation);
  if (!w.lhs.IsSubsetOf(r.attrs) || w.lhs.Empty()) {
    return Fail("lhs is not a nonempty subset of the relation scheme");
  }
  if (!r.attrs.Contains(w.determined) || w.lhs.Contains(w.determined)) {
    return Fail("determined attribute not in the relation minus the lhs");
  }
  if (!r.attrs.Contains(w.not_determined)) {
    return Fail("superkey-gap attribute not in the relation");
  }
  if (w.derivation.start != w.lhs) {
    return Fail("derivation does not start from the lhs");
  }
  Result<AttributeSet> derived = w.derivation.Replay(scheme);
  if (!derived.ok()) return derived.status();
  if (!derived->Contains(w.determined)) {
    return Fail("derivation does not reach the determined attribute");
  }
  // The negative half — lhs is NOT a superkey — against the naive closure.
  if (oracle::NaiveClosure(AssembleKeyDeps(scheme), w.lhs)
          .Contains(w.not_determined)) {
    return Fail("lhs determines the supposed gap attribute after all");
  }
  return OkStatus();
}

Status Verify(const DatabaseScheme& scheme,
              const UnreachableAttributeWitness& w) {
  bool contained = false;
  std::vector<size_t> expected_outside;
  for (size_t i = 0; i < scheme.size(); ++i) {
    if (scheme.relation(i).attrs.Contains(w.attribute)) {
      contained = true;
    } else {
      expected_outside.push_back(i);
    }
  }
  if (!contained) return Fail("attribute belongs to no relation at all");
  if (w.outside != expected_outside) {
    return Fail("outside list is not exactly the non-containing relations");
  }
  if (w.outside.empty()) return Fail("vacuous: every relation contains it");
  FdSet deps = AssembleKeyDeps(scheme);
  for (size_t i : w.outside) {
    if (oracle::NaiveClosure(deps, scheme.relation(i).attrs)
            .Contains(w.attribute)) {
      return Fail("closure of " + scheme.relation(i).name +
                  " reaches the attribute after all");
    }
  }
  return OkStatus();
}

}  // namespace

Status VerifyWitness(const DatabaseScheme& scheme, const Diagnostic& d) {
  return std::visit([&](const auto& w) { return Verify(scheme, w); },
                    d.witness);
}

Status VerifyReport(const DatabaseScheme& scheme, const LintReport& report) {
  for (const Diagnostic& d : report.diagnostics) {
    Status s = VerifyWitness(scheme, d);
    if (!s.ok()) {
      std::string message = "[";
      message += d.Signature(scheme);
      message += "] ";
      message += s.message();
      return Status(s.code(), std::move(message));
    }
  }
  return OkStatus();
}

Status LintSelfCheck(const DatabaseScheme& scheme,
                     const LintOptions& options) {
  return VerifyReport(scheme, LintScheme(scheme, options));
}

}  // namespace ird::diagnostics
