// The lint engine: runs every rule of the registry over one DatabaseScheme
// and collects witness-backed diagnostics. Deterministic — rules iterate
// relations, blocks and keys in declaration order — so reports are directly
// comparable across runs (the golden tests rely on this).

#ifndef IRD_DIAGNOSTICS_LINT_H_
#define IRD_DIAGNOSTICS_LINT_H_

#include <vector>

#include "diagnostics/diagnostic.h"
#include "engine/scheme_analysis.h"
#include "schema/database_scheme.h"

namespace ird::diagnostics {

struct LintOptions {
  // γ-cycle search is exponential in the number of edges; skip above this.
  size_t max_gamma_edges = 10;
  // The hidden-dependency rule enumerates attribute subsets per relation;
  // skip relations wider than this.
  size_t max_cover_attrs = 12;
  // Build the Lemma 3.5-3.7 adversarial instance for each split key (costs
  // one witness construction per split key; disable for bulk sweeps that
  // only need the structural Lemma 3.8 certificate).
  bool build_instance_witnesses = true;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;

  size_t CountSeverity(Severity severity) const;
  bool HasErrors() const { return CountSeverity(Severity::kError) > 0; }
};

// Runs every rule. Never crashes on structurally well-formed schemes (what
// DatabaseScheme::AddRelation admits), valid or not; semantically invalid
// schemes simply earn error diagnostics.
LintReport LintScheme(const DatabaseScheme& scheme,
                      const LintOptions& options = {});

// Engine-backed flavor: key minimality, recognition, split keys and
// reachability all go through the analysis's interned covers and closure
// memos, so linting after (or before) other analysis work on the same
// context pays for each engine once.
LintReport LintScheme(SchemeAnalysis& analysis,
                      const LintOptions& options = {});

}  // namespace ird::diagnostics

#endif  // IRD_DIAGNOSTICS_LINT_H_
