#include "diagnostics/diagnostic.h"

namespace ird::diagnostics {

namespace {

// Joins relation names as "R1,R2,R3".
std::string NameList(const DatabaseScheme& scheme,
                     const std::vector<size_t>& indices) {
  std::string out;
  for (size_t k = 0; k < indices.size(); ++k) {
    if (k > 0) out += ",";
    out += scheme.relation(indices[k]).name;
  }
  return out;
}

}  // namespace

Result<AttributeSet> FdTrace::Replay(const DatabaseScheme& scheme) const {
  AttributeSet current = start;
  for (size_t t = 0; t < steps.size(); ++t) {
    const FdStep& step = steps[t];
    if (step.relation >= scheme.size()) {
      return InvalidArgument("trace step " + std::to_string(t) +
                             " names relation index out of range");
    }
    const RelationScheme& r = scheme.relation(step.relation);
    if (step.key_index >= r.keys.size()) {
      return InvalidArgument("trace step " + std::to_string(t) +
                             " names a key index out of range for " + r.name);
    }
    if (!r.keys[step.key_index].IsSubsetOf(current)) {
      return FailedPrecondition(
          "trace step " + std::to_string(t) + " not applicable: key " +
          scheme.universe().Format(r.keys[step.key_index]) + " of " + r.name +
          " not contained in the running set " +
          scheme.universe().Format(current));
    }
    current.UnionWith(r.attrs);
  }
  return current;
}

const std::vector<RuleInfo>& RuleRegistry() {
  static const std::vector<RuleInfo> kRules = {
      {RuleId::kUncoveredAttribute, "uncovered-attribute", Severity::kError,
       "§2.1 (∪Ri = U)",
       "a universe attribute appears in no relation scheme"},
      {RuleId::kDuplicateRelation, "duplicate-relation", Severity::kError,
       "§2.1", "two relations declare identical attribute sets"},
      {RuleId::kNonMinimalKey, "non-minimal-key", Severity::kError,
       "§2.3 (candidate keys)",
       "a declared key has a proper subset that already determines the "
       "relation"},
      {RuleId::kRedundantKey, "redundant-key", Severity::kWarning, "§2.3",
       "a declared key is duplicated or shadowed by a sibling key"},
      {RuleId::kNonKeyEquivalent, "non-key-equivalent", Severity::kNote,
       "§3 (Algorithm 3)",
       "a relation's scheme closure cannot absorb the whole scheme, so "
       "whole-scheme Algorithm 2 maintenance does not apply"},
      {RuleId::kSplitKey, "split-key", Severity::kWarning,
       "§3.3, Lemma 3.8 / Theorem 3.4",
       "a key is split in its key-equivalent block — the block is not "
       "constant-time maintainable"},
      {RuleId::kRecognitionRejected, "recognition-rejected", Severity::kError,
       "§5.2, Algorithm 6",
       "the scheme is not independence-reducible: the induced scheme of "
       "the key-equivalent partition fails the uniqueness condition"},
      {RuleId::kGammaCycle, "gamma-cycle", Severity::kNote, "§2.4 [F3]",
       "the scheme hypergraph has a γ-cycle, so it is not γ-acyclic"},
      {RuleId::kUnsoundEmbeddedCover, "unsound-embedded-cover",
       Severity::kWarning, "§2.3 (cover-embedding / BCNF)",
       "a hidden dependency is embedded in a relation whose declared keys "
       "do not cover it (the relation is not BCNF wrt F+)"},
      {RuleId::kUnreachableAttribute, "unreachable-attribute", Severity::kNote,
       "§2.6 (extension joins)",
       "no extension join anchored outside the attribute's relations can "
       "reach it"},
  };
  return kRules;
}

const RuleInfo& InfoFor(RuleId id) {
  for (const RuleInfo& info : RuleRegistry()) {
    if (info.id == id) return info;
  }
  IRD_CHECK_MSG(false, "rule id missing from registry");
  __builtin_unreachable();
}

const char* RuleName(RuleId id) { return InfoFor(id).name; }

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

std::string Diagnostic::Signature(const DatabaseScheme& scheme) const {
  const Universe& u = scheme.universe();
  std::string out = RuleName(rule);
  struct Visitor {
    const DatabaseScheme& scheme;
    const Universe& u;
    std::string& out;

    void operator()(const UncoveredAttributeWitness& w) const {
      out += " attr=" + u.Name(w.attribute);
    }
    void operator()(const DuplicateRelationWitness& w) const {
      out += " rel=" + scheme.relation(w.first).name + "," +
             scheme.relation(w.second).name;
    }
    void operator()(const NonMinimalKeyWitness& w) const {
      const RelationScheme& r = scheme.relation(w.relation);
      out += " rel=" + r.name + " key=" + u.Format(r.keys[w.key_index]) +
             " reduced=" + u.Format(w.reduced);
    }
    void operator()(const RedundantKeyWitness& w) const {
      const RelationScheme& r = scheme.relation(w.relation);
      out += " rel=" + r.name + " key=" + u.Format(r.keys[w.key_index]) +
             " shadowed-by=" + u.Format(r.keys[w.shadowed_by]);
    }
    void operator()(const NonKeyEquivalentWitness& w) const {
      out += " rel=" + scheme.relation(w.relation).name +
             " missing=" + u.Format(w.missing);
    }
    void operator()(const SplitKeyWitness& w) const {
      out += " key=" + u.Format(w.key) + " pool=" + NameList(scheme, w.pool);
    }
    void operator()(const RecognitionRejectedWitness& w) const {
      out += " blocks=" + std::to_string(w.partition.size()) +
             " i=" + NameList(scheme, w.partition[w.block_i]) +
             " j=" + NameList(scheme, w.partition[w.block_j]) +
             " key=" + u.Format(w.key) + " attr=" + u.Name(w.attribute);
    }
    void operator()(const GammaCycleWitness& w) const {
      out += " edges=" + NameList(scheme, w.edges);
    }
    void operator()(const UnsoundCoverWitness& w) const {
      out += " rel=" + scheme.relation(w.relation).name +
             " lhs=" + u.Format(w.lhs) + " rhs=" + u.Name(w.determined);
    }
    void operator()(const UnreachableAttributeWitness& w) const {
      out += " attr=" + u.Name(w.attribute);
    }
  };
  std::visit(Visitor{scheme, u, out}, witness);
  return out;
}

}  // namespace ird::diagnostics
