// Text and JSON renderers for lint reports, plus the scheme-designer
// report (classification table + diagnostics) that examples and the
// ird_lint CLI print — the witness-backed replacement of the old
// SchemeClassification::ToString dump.

#ifndef IRD_DIAGNOSTICS_RENDER_H_
#define IRD_DIAGNOSTICS_RENDER_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "diagnostics/lint.h"
#include "schema/database_scheme.h"

namespace ird::diagnostics {

// Human-readable listing: one block per diagnostic with severity, rule id,
// message, involved relations and the structural witness signature.
std::string RenderText(const DatabaseScheme& scheme, const LintReport& report);

// One JSON object for the report. `verification`, when non-null, must be
// aligned with report.diagnostics and adds a "witness_verified" field per
// diagnostic (the CLI fills it under --verify). Hand-rolled serialization —
// the library has no JSON dependency.
std::string RenderJson(const DatabaseScheme& scheme, const LintReport& report,
                       const std::string& file,
                       const std::vector<Status>* verification = nullptr);

// The full scheme report: every classification verdict of
// core/classify.h's ClassifyScheme followed by the lint diagnostics that
// explain the "no" answers. `test_acyclicity` is forwarded to
// ClassifyScheme (disable for schemes too large for the exact search).
std::string FormatSchemeReport(const DatabaseScheme& scheme,
                               bool test_acyclicity = true,
                               const LintOptions& options = {});

}  // namespace ird::diagnostics

#endif  // IRD_DIAGNOSTICS_RENDER_H_
