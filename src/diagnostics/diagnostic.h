// Structured, witness-backed diagnostics over a DatabaseScheme — the
// static-analysis counterpart of core/classify.h. Where ClassifyScheme
// answers *whether* a scheme is independence-reducible / split-free / ctm,
// the lint rules of this subsystem explain *why not*: every Diagnostic
// carries a machine-checkable witness (a closure gap, a Lemma 3.8 covering
// sequence plus adversarial instance, a γ-cycle, ...) that verify.h can
// re-certify without trusting the production decision procedures.

#ifndef IRD_DIAGNOSTICS_DIAGNOSTIC_H_
#define IRD_DIAGNOSTICS_DIAGNOSTIC_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "base/attribute_set.h"
#include "base/status.h"
#include "relation/database_state.h"
#include "schema/database_scheme.h"

namespace ird::diagnostics {

// Stable rule identifiers. RuleRegistry() maps each to its kebab-case name,
// default severity, and paper reference.
enum class RuleId {
  kUncoveredAttribute,    // U attribute in no relation scheme
  kDuplicateRelation,     // two relations with identical attribute sets
  kNonMinimalKey,         // declared key reducible wrt the global F
  kRedundantKey,          // declared key duplicated / shadowed by a sibling
  kNonKeyEquivalent,      // relation whose Algorithm 3 closure misses U
  kSplitKey,              // split key in a KEP block (Lemma 3.8)
  kRecognitionRejected,   // Algorithm 6 rejection with its partition trace
  kGammaCycle,            // γ-cycle of the scheme hypergraph
  kUnsoundEmbeddedCover,  // hidden FD: relation not BCNF wrt F+
  kUnreachableAttribute,  // attribute no extension join can reach
};

enum class Severity { kError, kWarning, kNote };

// One application of an embedded key dependency: the key
// scheme.relation(relation).keys[key_index] -> scheme.relation(relation).attrs.
struct FdStep {
  size_t relation = 0;
  size_t key_index = 0;
};

// A replayable derivation: starting from `start`, apply each step's key
// dependency in order. Replay fails unless every step is applicable (its
// key is contained in the running set) — this is what makes closure claims
// self-certifying.
struct FdTrace {
  AttributeSet start;
  std::vector<FdStep> steps;

  // The derived attribute set, or an error naming the first bad step.
  Result<AttributeSet> Replay(const DatabaseScheme& scheme) const;
};

// --- Witness payloads, one per rule -----------------------------------

struct UncoveredAttributeWitness {
  AttributeId attribute = 0;  // in U but in no relation scheme
};

struct DuplicateRelationWitness {
  size_t first = 0;
  size_t second = 0;  // relation(first).attrs == relation(second).attrs
};

struct NonMinimalKeyWitness {
  size_t relation = 0;
  size_t key_index = 0;
  // The proper subset that already determines the relation, plus the
  // derivation certifying reduced -> attrs ∈ F+.
  AttributeSet reduced;
  FdTrace derivation;
};

struct RedundantKeyWitness {
  size_t relation = 0;
  size_t key_index = 0;    // the redundant declaration
  size_t shadowed_by = 0;  // sibling key with keys[shadowed_by] ⊆ keys[key_index]
};

// Why the scheme is not key-equivalent: the maximal Algorithm 3 closure of
// `relation` (reached by absorbing `absorbed` in order) misses `missing`.
struct NonKeyEquivalentWitness {
  size_t relation = 0;
  std::vector<size_t> absorbed;  // partial-computation order, start excluded
  AttributeSet closure;          // the fixpoint
  AttributeSet missing;          // ∪R - closure (nonempty)
};

// A split key K in the key-equivalent pool (Lemma 3.8): `covering` is a
// partial computation over W = {Rp ∈ pool : K ⊄ Rp} whose union covers K
// while no member contains K. When built, the adversarial instance of
// Lemmas 3.5-3.7 rides along: `state` is consistent, state ∪ {insert} is
// not, and dropping the covering fragments makes the insert consistent
// again — certifying that no constant-time key probe can reject it.
struct SplitKeyWitness {
  AttributeSet key;
  std::vector<size_t> pool;      // the KEP block (key-equivalent)
  std::vector<size_t> covering;  // the Lemma 3.8 sequence S_l
  std::optional<DatabaseState> state;
  size_t insert_rel = 0;
  PartialTuple insert;
};

// Algorithm 6 rejection: the KEP partition (the block trace) plus the
// uniqueness violation on the induced scheme D — the closure of block_i's
// union wrt F_D minus block_j's dependencies embeds key -> attribute of
// block_j.
struct RecognitionRejectedWitness {
  std::vector<std::vector<size_t>> partition;
  size_t block_i = 0;
  size_t block_j = 0;
  AttributeSet key;           // a key of the merged block_j relation
  AttributeId attribute = 0;  // ∈ attrs(block_j) - key, inside the closure
};

// A γ-cycle (S1, x1, ..., Sm, xm, S1) with edge indices = relation indices;
// the exempt connector is connectors[0].
struct GammaCycleWitness {
  std::vector<size_t> edges;
  std::vector<AttributeId> connectors;
};

// A hidden dependency: lhs -> determined ∈ F+ is embedded in `relation`
// (certified by `derivation`) but lhs is not a superkey of it
// (not_determined ∈ attrs - Closure_F(lhs)), so the relation's declared
// keys are not a cover of F+ projected onto it.
struct UnsoundCoverWitness {
  size_t relation = 0;
  AttributeSet lhs;
  AttributeId determined = 0;
  FdTrace derivation;
  AttributeId not_determined = 0;
};

// No extension join anchored outside the relations containing `attribute`
// can ever reach it: for every relation in `outside` (exactly the relations
// not containing the attribute), the FD closure of its scheme misses it.
struct UnreachableAttributeWitness {
  AttributeId attribute = 0;
  std::vector<size_t> outside;
};

using Witness =
    std::variant<UncoveredAttributeWitness, DuplicateRelationWitness,
                 NonMinimalKeyWitness, RedundantKeyWitness,
                 NonKeyEquivalentWitness, SplitKeyWitness,
                 RecognitionRejectedWitness, GammaCycleWitness,
                 UnsoundCoverWitness, UnreachableAttributeWitness>;

struct Diagnostic {
  RuleId rule = RuleId::kUncoveredAttribute;
  Severity severity = Severity::kNote;
  std::string message;            // human-readable, names relations/attrs
  std::vector<size_t> relations;  // relations involved, for rendering
  Witness witness;

  // Canonical structural form, e.g. "split-key key=BC pool=R1,R2,R3".
  // Built from the witness fields, never from `message`, so golden tests
  // compare structure rather than wording.
  std::string Signature(const DatabaseScheme& scheme) const;
};

// Static metadata for one rule.
struct RuleInfo {
  RuleId id;
  const char* name;       // stable kebab-case id, used in signatures/JSON
  Severity severity;      // default severity
  const char* paper_ref;  // where the obstruction lives in the paper
  const char* summary;    // one line for --help / docs
};

// All rules, in emission order.
const std::vector<RuleInfo>& RuleRegistry();
const RuleInfo& InfoFor(RuleId id);
const char* RuleName(RuleId id);
const char* SeverityName(Severity severity);

}  // namespace ird::diagnostics

#endif  // IRD_DIAGNOSTICS_DIAGNOSTIC_H_
