// The differential harness: runs every optimized decision procedure and
// engine of src/core/ and src/tableau/ against its definition-literal
// oracle on one scheme, and reports every disagreement. This is the single
// comparison routine shared by tests/differential_fuzz_test.cc, the
// standalone bench/fuzz_driver.cc campaign runner, and the corpus replay —
// and the predicate ShrinkScheme minimizes against.
//
// Routines pinned (left: optimized, right: oracle):
//   chase            IsConsistent / WouldRemainConsistent / [X] by chase
//                    vs the exhaustive pairwise chase (naive_chase.h)
//   lossless         DatabaseScheme::IsLossless (BMSU closure) vs chased
//                    scheme tableau
//   key-equivalence  Algorithm 3 absorption vs FD-closure definition
//   split            Lemma 3.8 and the BFS-by-definition vs the partial-
//                    computation walk (naive_split.h)
//   KEP              recursive refinement vs maximal key-equivalent
//                    subsets by subset enumeration
//   independence     uniqueness condition on ClosureEngine vs naive
//                    closure, grounded by LSAT/WSAT states both ways
//   recognition      Algorithm 6 vs set-partition enumeration
//   classification   ClassifyScheme flags vs oracle-assembled flags
//   projection       Theorem 4.1 expressions and RepresentativeIndex vs
//                    naive [X]
//   maintenance      Algorithms 2/5, block maintainer, §3.2 expression
//                    lookup vs re-chasing the enlarged state exhaustively;
//                    sharded-vs-single drives one insert stream through the
//                    ShardedMaintainer and the single-shard block maintainer
//                    and demands byte-identical verdicts, materialized
//                    states and total projections (serial and batch paths)

#ifndef IRD_ORACLE_DIFFERENTIAL_H_
#define IRD_ORACLE_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/database_scheme.h"

namespace ird::oracle {

struct DifferentialOptions {
  // Generated-state shape for the dynamic (state-level) comparisons.
  size_t state_entities = 6;
  double state_coverage = 0.7;
  size_t insert_count = 8;
  double conflict_rate = 0.4;
  size_t projection_targets = 3;
  // LSAT/WSAT grounding of the independence verdict.
  size_t lsat_trials = 25;
  size_t lsat_max_tuples = 2;
  size_t lsat_domain = 2;
  // Exponential-oracle guards: comparisons needing subset / set-partition
  // enumeration are skipped above these relation counts.
  size_t max_subset_enum = 12;
  size_t max_partition_enum = 8;
  // Seed for states, insert streams and projection targets.
  uint64_t seed = 0;
};

struct Disagreement {
  std::string routine;  // stable tag, e.g. "split/lemma38"
  std::string detail;   // human-readable witness description
};

// Runs every applicable comparison. Empty result = full agreement. The
// scheme must be valid (callers discard invalid mutants first).
std::vector<Disagreement> CompareAgainstOracles(
    const DatabaseScheme& scheme, const DifferentialOptions& options);

// True iff some disagreement with this routine tag occurs — the shrink
// predicate.
bool DisagreesOn(const DatabaseScheme& scheme,
                 const DifferentialOptions& options,
                 const std::string& routine);

}  // namespace ird::oracle

#endif  // IRD_ORACLE_DIFFERENTIAL_H_
