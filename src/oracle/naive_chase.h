// The chase with fd-rules transliterated from the definition (paper §2.3):
// for every pair of rows and every dependency X -> Y, if the rows agree on
// all of X, equate their symbols on each attribute of Y; repeat until no
// rule applies or two distinct constants are forced equal.
//
// No standard form, no left-side bucketing, no hashing — a quadratic scan
// per pass. tableau/chase.h's ChaseFds is the optimized routine this module
// exists to cross-check, so nothing here may call it; the Tableau substrate
// (symbols, union-find, rows) is shared because it *is* the definition's
// object language.

#ifndef IRD_ORACLE_NAIVE_CHASE_H_
#define IRD_ORACLE_NAIVE_CHASE_H_

#include "base/status.h"
#include "fd/fd_set.h"
#include "relation/database_state.h"
#include "relation/relation.h"
#include "schema/database_scheme.h"
#include "tableau/tableau.h"

namespace ird::oracle {

// Runs CHASE_F(t) in place by exhaustive pairwise rule application.
// Returns false iff a contradiction was found (the state of `t` is then
// meaningless).
bool NaiveChase(Tableau* t, const FdSet& fds);

// Consistency of a state: its tableau chases without contradiction.
bool IsConsistentNaive(const DatabaseState& state);

// [X] from first principles: chase the state tableau exhaustively, collect
// the X-total rows, deduplicate. kInconsistent when no weak instance exists.
Result<PartialRelation> TotalProjectionNaive(const DatabaseState& state,
                                             const AttributeSet& x);

// The maintenance ground truth: is state ∪ {tuple on relation `rel`} still
// consistent? Chases the enlarged tableau from scratch, exhaustively.
bool WouldRemainConsistentNaive(const DatabaseState& state, size_t rel,
                                const PartialTuple& tuple);

// Losslessness by the definition: CHASE_F(T_R) contains an all-dv row.
bool IsLosslessNaive(const DatabaseScheme& scheme);

}  // namespace ird::oracle

#endif  // IRD_ORACLE_NAIVE_CHASE_H_
