#include "oracle/pass_chase.h"

#include <unordered_map>
#include <vector>

namespace ird::oracle {

namespace {

// Hash of a canonical symbol vector (bucket key for one FD's left side).
struct SymVecHash {
  size_t operator()(const std::vector<SymId>& v) const {
    uint64_t h = 1469598103934665603ull;
    for (SymId s : v) {
      h ^= s;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

ChaseStats PassChaseFds(Tableau* t, const FdSet& fds) {
  ChaseStats stats;
  FdSet standard = fds.StandardForm();
  if (standard.empty() || t->row_count() == 0) return stats;

  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : standard.fds()) {
      // StandardForm splits every FD into single-attribute right sides; the
      // bucket structure below is only sound under that shape.
      IRD_DCHECK(fd.rhs.Count() == 1);
      std::vector<AttributeId> lhs_cols = fd.lhs.ToVector();
      AttributeId rhs_col = fd.rhs.First();
      // Bucket rows by their canonical left-side symbols; within a bucket,
      // all right-side symbols must be equal.
      std::unordered_map<std::vector<SymId>, SymId, SymVecHash> buckets;
      buckets.reserve(t->row_count());
      for (size_t row = 0; row < t->row_count(); ++row) {
        std::vector<SymId> key;
        key.reserve(lhs_cols.size());
        for (AttributeId c : lhs_cols) {
          key.push_back(t->Cell(row, c));
        }
        SymId rhs_sym = t->Cell(row, rhs_col);
        auto [it, inserted] = buckets.emplace(std::move(key), rhs_sym);
        if (!inserted) {
          SymId existing = t->Canonical(it->second);
          if (existing != rhs_sym) {
            // Distinct canonical symbols: apply the fd-rule.
            if (!t->Equate(existing, rhs_sym)) {
              stats.consistent = false;
              return stats;
            }
            ++stats.rule_applications;
            changed = true;
            // A successful Equate must actually merge the classes.
            IRD_DCHECK(t->Canonical(existing) == t->Canonical(rhs_sym));
          }
          it->second = t->Canonical(rhs_sym);
        }
      }
    }
  }
  t->Canonicalize();
  return stats;
}

}  // namespace ird::oracle
