// Random structural mutations of a database scheme for the differential
// fuzzer: drop a candidate key, widen a relation by an attribute, merge two
// relations, drop a relation, declare an extra candidate key. Mutants are
// rebuilt over a fresh universe (never sharing the input's, so the input
// stays valid) and get their declared keys re-minimized; they may still
// fail DatabaseScheme::Validate (e.g. a dropped relation breaking
// coverage) — callers discard those.

#ifndef IRD_ORACLE_MUTATE_H_
#define IRD_ORACLE_MUTATE_H_

#include <random>

#include "schema/database_scheme.h"

namespace ird::oracle {

// A structural copy of `scheme` over a brand-new universe (same attribute
// names, freshly interned — ids stay equal because interning order is
// preserved).
DatabaseScheme CloneScheme(const DatabaseScheme& scheme);

// Shrinks every declared key to a minimal key wrt the (re-derived) global
// key dependencies, iterated to fixpoint — the repair step that keeps
// mutants passing the key-minimality part of Validate().
DatabaseScheme NormalizeKeyMinimality(const DatabaseScheme& scheme);

// Applies one random mutation (repairing key minimality afterwards). The
// result may be invalid; check Validate() before use.
DatabaseScheme MutateScheme(const DatabaseScheme& scheme,
                            std::mt19937_64* rng);

}  // namespace ird::oracle

#endif  // IRD_ORACLE_MUTATE_H_
