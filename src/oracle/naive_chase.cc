#include "oracle/naive_chase.h"

#include "relation/weak_instance.h"

namespace ird::oracle {

bool NaiveChase(Tableau* t, const FdSet& fds) {
  const size_t n = t->row_count();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds.fds()) {
      std::vector<AttributeId> lhs = fd.lhs.ToVector();
      std::vector<AttributeId> rhs = fd.rhs.ToVector();
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          bool agree = true;
          for (AttributeId a : lhs) {
            if (t->Cell(i, a) != t->Cell(j, a)) {
              agree = false;
              break;
            }
          }
          if (!agree) continue;
          for (AttributeId b : rhs) {
            SymId x = t->Cell(i, b);
            SymId y = t->Cell(j, b);
            if (x == y) continue;
            if (!t->Equate(x, y)) return false;
            changed = true;
          }
        }
      }
    }
  }
  return true;
}

bool IsConsistentNaive(const DatabaseState& state) {
  Tableau t = StateTableau(state);
  return NaiveChase(&t, state.scheme().key_dependencies());
}

Result<PartialRelation> TotalProjectionNaive(const DatabaseState& state,
                                             const AttributeSet& x) {
  Tableau t = StateTableau(state);
  if (!NaiveChase(&t, state.scheme().key_dependencies())) {
    return Inconsistent("state has no weak instance");
  }
  PartialRelation out(x);
  for (size_t row = 0; row < t.row_count(); ++row) {
    if (t.TotalOn(row, x)) {
      out.AddUnique(PartialTuple(x, t.ValuesOn(row, x)));
    }
  }
  return out;
}

bool WouldRemainConsistentNaive(const DatabaseState& state, size_t rel,
                                const PartialTuple& tuple) {
  Tableau t = StateTableau(state);
  t.AddTupleRow(state.scheme().relation(rel).attrs, tuple.values());
  return NaiveChase(&t, state.scheme().key_dependencies());
}

bool IsLosslessNaive(const DatabaseScheme& scheme) {
  Tableau t = SchemeTableau(scheme);
  IRD_CHECK_MSG(NaiveChase(&t, scheme.key_dependencies()),
                "scheme tableaux cannot be inconsistent");
  AttributeSet all = scheme.AllAttrs();
  for (size_t row = 0; row < t.row_count(); ++row) {
    if (all.IsSubsetOf(t.DvColumns(row))) return true;
  }
  return false;
}

}  // namespace ird::oracle
