#include "oracle/naive_kep.h"

#include <algorithm>
#include <numeric>

#include "oracle/naive_closure.h"

namespace ird::oracle {

namespace {

std::vector<size_t> PoolOrAll(const DatabaseScheme& scheme,
                              const std::vector<size_t>& pool) {
  if (!pool.empty()) return pool;
  std::vector<size_t> all(scheme.size());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

}  // namespace

bool IsKeyEquivalentOracle(const DatabaseScheme& scheme,
                           const std::vector<size_t>& pool) {
  std::vector<size_t> p = PoolOrAll(scheme, pool);
  FdSet fds = scheme.KeyDependenciesOf(p);
  AttributeSet all = scheme.UnionAttrs(p);
  for (size_t j : p) {
    if (NaiveClosure(fds, scheme.relation(j).attrs) != all) return false;
  }
  return true;
}

std::vector<std::vector<size_t>> MaximalKeyEquivalentSubsets(
    const DatabaseScheme& scheme) {
  const size_t n = scheme.size();
  IRD_CHECK_MSG(n <= 20, "subset enumeration is exponential; scheme too large");
  std::vector<std::vector<size_t>> equivalent;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<size_t> subset;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) subset.push_back(i);
    }
    if (IsKeyEquivalentOracle(scheme, subset)) equivalent.push_back(subset);
  }
  std::vector<std::vector<size_t>> maximal;
  for (const std::vector<size_t>& a : equivalent) {
    bool dominated = false;
    for (const std::vector<size_t>& b : equivalent) {
      if (a.size() < b.size() &&
          std::includes(b.begin(), b.end(), a.begin(), a.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(a);
  }
  std::sort(maximal.begin(), maximal.end(),
            [](const std::vector<size_t>& a, const std::vector<size_t>& b) {
              return a.front() < b.front();
            });
  return maximal;
}

}  // namespace ird::oracle
