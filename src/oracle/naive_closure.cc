#include "oracle/naive_closure.h"

namespace ird::oracle {

AttributeSet NaiveClosure(const FdSet& fds, const AttributeSet& x) {
  AttributeSet closure = x;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds.fds()) {
      if (!fd.lhs.IsSubsetOf(closure)) continue;
      if (fd.rhs.IsSubsetOf(closure)) continue;
      closure.UnionWith(fd.rhs);
      changed = true;
    }
  }
  return closure;
}

bool NaiveImplies(const FdSet& fds, const AttributeSet& lhs,
                  const AttributeSet& rhs) {
  return rhs.IsSubsetOf(NaiveClosure(fds, lhs));
}

}  // namespace ird::oracle
