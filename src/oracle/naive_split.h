// Split keys by direct enumeration of the §3.3 definition: K is split in
// Si+ iff some partial computation of Si+ (Algorithm 3) reaches a closure
// not yet covering K and then absorbs a scheme that completes K without
// containing K. This oracle walks *every* reachable stage of every
// computation — the set of absorbed schemes determines the stage, so the
// walk memoizes on that set and nothing else.
//
// Independent of both implementations in core/split.h: it uses neither the
// Lemma 3.8 closure shortcut nor the BFS over closure values.

#ifndef IRD_ORACLE_NAIVE_SPLIT_H_
#define IRD_ORACLE_NAIVE_SPLIT_H_

#include <vector>

#include "base/attribute_set.h"
#include "schema/database_scheme.h"

namespace ird::oracle {

// K is split in the closure of scheme `start` over `pool` (empty = all of
// R). Exponential in |pool|; guarded at 20 pool schemes.
bool IsKeySplitInClosureOfOracle(const DatabaseScheme& scheme,
                                 const AttributeSet& key, size_t start,
                                 const std::vector<size_t>& pool = {});

// K is split, full stop: split in some Si+ of the pool.
bool IsKeySplitOracle(const DatabaseScheme& scheme, const AttributeSet& key,
                      const std::vector<size_t>& pool = {});

// No key of the pool's schemes is split.
bool IsSplitFreeOracle(const DatabaseScheme& scheme,
                       const std::vector<size_t>& pool = {});

}  // namespace ird::oracle

#endif  // IRD_ORACLE_NAIVE_SPLIT_H_
