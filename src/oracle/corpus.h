// The minimizing repro corpus: every scheme the differential fuzzer ever
// caught disagreeing (shrunk first) lives as a `.scheme` file under
// tests/corpus/ in io/text_format, with `#` header lines recording the
// routine that disagreed and the seed that found it. corpus_replay_test
// re-runs the whole directory on every ctest invocation.

#ifndef IRD_ORACLE_CORPUS_H_
#define IRD_ORACLE_CORPUS_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "schema/database_scheme.h"

namespace ird::oracle {

struct CorpusEntry {
  std::string filename;  // basename, e.g. "split-chain-s42.scheme"
  std::vector<std::string> comments;  // '#' header lines, markers stripped
  DatabaseScheme scheme = DatabaseScheme::Create();
};

// Writes `<dir>/<name>.scheme` (creating `dir` if needed): one '# ' line
// per comment, then the scheme in parseable text format.
Status WriteCorpusFile(const std::string& dir, const std::string& name,
                       const DatabaseScheme& scheme,
                       const std::vector<std::string>& comments);

// Parses every *.scheme file under `dir`, sorted by filename so replay
// order is deterministic. A missing directory is an empty corpus, not an
// error; an unparseable file is.
Result<std::vector<CorpusEntry>> LoadCorpus(const std::string& dir);

}  // namespace ird::oracle

#endif  // IRD_ORACLE_CORPUS_H_
