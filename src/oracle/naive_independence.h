// Sagiv independence from first principles, two ways.
//
// Syntactic: the uniqueness condition [S1][S2] re-derived with the naive
// FD closure (no ClosureEngine, no amortization) — for all Ri ≠ Rj, the
// closure of Ri wrt F - Fj must not embed a key dependency of Rj.
//
// Semantic: independence *means* LSAT = WSAT, so the oracle also grounds
// the verdict in states. Locally consistent states are sampled over a tiny
// domain and checked for global consistency with the exhaustive chase:
// an independent scheme must never yield a locally-consistent globally-
// inconsistent state, and for a dependent scheme the constructive witness
// of core/independence_witness.h must actually exhibit the gap.

#ifndef IRD_ORACLE_NAIVE_INDEPENDENCE_H_
#define IRD_ORACLE_NAIVE_INDEPENDENCE_H_

#include <cstdint>
#include <optional>

#include "relation/database_state.h"
#include "schema/database_scheme.h"

namespace ird::oracle {

// The uniqueness condition, naively.
bool IsIndependentOracle(const DatabaseScheme& scheme);

// Samples `trials` random states with at most `max_tuples` tuples per
// relation over a domain of `domain` values per attribute; returns the
// first state found that satisfies every projected dependency locally but
// has no weak instance (an LSAT ≠ WSAT gap), or nullopt if none turned up.
// A nullopt is evidence, not proof — the caller decides what it implies.
std::optional<DatabaseState> SearchLsatWsatGap(const DatabaseScheme& scheme,
                                               size_t trials,
                                               size_t max_tuples,
                                               size_t domain, uint64_t seed);

}  // namespace ird::oracle

#endif  // IRD_ORACLE_NAIVE_INDEPENDENCE_H_
