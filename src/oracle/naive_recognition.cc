#include "oracle/naive_recognition.h"

#include "oracle/naive_chase.h"
#include "oracle/naive_independence.h"
#include "oracle/naive_kep.h"
#include "oracle/naive_split.h"

namespace ird::oracle {

namespace {

// D induced by `partition`: one relation per block with the union of the
// block's attributes and the (deduplicated) keys of its members. Written
// here, not borrowed from core/recognition.h, so the oracle's verdict does
// not share code with the routine it certifies.
DatabaseScheme MergeBlocks(const DatabaseScheme& scheme,
                           const std::vector<std::vector<size_t>>& partition) {
  DatabaseScheme induced(scheme.universe_ptr());
  for (const std::vector<size_t>& block : partition) {
    RelationScheme merged;
    merged.name = 'D' + std::to_string(induced.size() + 1);
    for (size_t i : block) {
      const RelationScheme& r = scheme.relation(i);
      merged.attrs.UnionWith(r.attrs);
      for (const AttributeSet& key : r.keys) {
        bool known = false;
        for (const AttributeSet& k : merged.keys) {
          if (k == key) {
            known = true;
            break;
          }
        }
        if (!known) merged.keys.push_back(key);
      }
    }
    induced.AddRelation(std::move(merged));
  }
  return induced;
}

bool IsReduciblePartition(const DatabaseScheme& scheme,
                          const std::vector<std::vector<size_t>>& partition) {
  for (const std::vector<size_t>& block : partition) {
    if (!IsKeyEquivalentOracle(scheme, block)) return false;
  }
  return IsIndependentOracle(MergeBlocks(scheme, partition));
}

// Enumerates set partitions of {0..n-1}: relation `next` joins an existing
// block or opens a new one. Returns true (and leaves *partition holding the
// witness) as soon as one qualifies.
bool EnumeratePartitions(const DatabaseScheme& scheme, size_t next,
                         std::vector<std::vector<size_t>>* partition) {
  if (next == scheme.size()) {
    return IsReduciblePartition(scheme, *partition);
  }
  for (size_t b = 0; b < partition->size(); ++b) {
    (*partition)[b].push_back(next);
    if (EnumeratePartitions(scheme, next + 1, partition)) return true;
    (*partition)[b].pop_back();
  }
  partition->push_back({next});
  if (EnumeratePartitions(scheme, next + 1, partition)) return true;
  partition->pop_back();
  return false;
}

}  // namespace

std::optional<std::vector<std::vector<size_t>>>
FindIndependenceReduciblePartition(const DatabaseScheme& scheme) {
  IRD_CHECK_MSG(scheme.size() <= 12,
                "set-partition enumeration is exponential; scheme too large");
  std::vector<std::vector<size_t>> partition;
  if (EnumeratePartitions(scheme, 0, &partition)) return partition;
  return std::nullopt;
}

bool IsIndependenceReducibleOracle(const DatabaseScheme& scheme) {
  return FindIndependenceReduciblePartition(scheme).has_value();
}

OracleClassification ClassifySchemeOracle(const DatabaseScheme& scheme) {
  OracleClassification c;
  c.lossless = IsLosslessNaive(scheme);
  c.independent = IsIndependentOracle(scheme);
  c.key_equivalent = IsKeyEquivalentOracle(scheme);
  c.independence_reducible = IsIndependenceReducibleOracle(scheme);
  if (c.independence_reducible) {
    c.split_free = true;
    for (const std::vector<size_t>& block :
         MaximalKeyEquivalentSubsets(scheme)) {
      if (!IsSplitFreeOracle(scheme, block)) {
        c.split_free = false;
        break;
      }
    }
    c.ctm = c.split_free;  // Theorem 5.5
  }
  return c;
}

}  // namespace ird::oracle
