#include "oracle/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/text_format.h"

namespace ird::oracle {

namespace fs = std::filesystem;

Status WriteCorpusFile(const std::string& dir, const std::string& name,
                       const DatabaseScheme& scheme,
                       const std::vector<std::string>& comments) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return InvalidArgument("cannot create " + dir + ": " + ec.message());
  fs::path path = fs::path(dir) / (name + ".scheme");
  std::ofstream out(path);
  if (!out) return InvalidArgument("cannot open " + path.string());
  for (const std::string& c : comments) out << "# " << c << "\n";
  out << FormatScheme(scheme);
  out.close();
  if (!out) return InvalidArgument("short write to " + path.string());
  return OkStatus();
}

Result<std::vector<CorpusEntry>> LoadCorpus(const std::string& dir) {
  std::vector<CorpusEntry> corpus;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return corpus;
  std::vector<fs::path> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".scheme") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    std::ifstream in(path);
    if (!in) return InvalidArgument("cannot read " + path.string());
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    CorpusEntry entry;
    entry.filename = path.filename().string();
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.rfind('#', 0) != 0) continue;
      size_t start = line.find_first_not_of("# \t");
      entry.comments.push_back(
          start == std::string::npos ? "" : line.substr(start));
    }
    Result<ParsedDatabase> parsed = ParseDatabaseText(text);
    if (!parsed.ok()) {
      return ParseError(path.string() + ": " + parsed.status().message());
    }
    entry.scheme = std::move(parsed.value().scheme);
    corpus.push_back(std::move(entry));
  }
  return corpus;
}

}  // namespace ird::oracle
