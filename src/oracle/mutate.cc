#include "oracle/mutate.h"

#include <algorithm>

#include "fd/key_finder.h"

namespace ird::oracle {

namespace {

// Rebuilds `relations` (attribute sets expressed in `source`'s universe)
// over a fresh universe holding exactly the attributes the relations use.
DatabaseScheme Rebuild(const DatabaseScheme& source,
                       const std::vector<RelationScheme>& relations) {
  DatabaseScheme out = DatabaseScheme::Create();
  auto& u = *out.universe_ptr();
  // Intern in source-id order so attribute ids transfer unchanged for the
  // attributes that survive.
  AttributeSet used;
  for (const RelationScheme& r : relations) used.UnionWith(r.attrs);
  std::vector<AttributeId> remap(source.universe().size(), 0);
  used.ForEach([&](AttributeId a) {
    remap[a] = u.Intern(source.universe().Name(a));
  });
  auto translate = [&](const AttributeSet& set) {
    AttributeSet t;
    set.ForEach([&](AttributeId a) { t.Add(remap[a]); });
    return t;
  };
  for (const RelationScheme& r : relations) {
    RelationScheme copy;
    copy.name = r.name;
    copy.attrs = translate(r.attrs);
    for (const AttributeSet& key : r.keys) copy.keys.push_back(translate(key));
    out.AddRelation(std::move(copy));
  }
  return out;
}

}  // namespace

DatabaseScheme CloneScheme(const DatabaseScheme& scheme) {
  return Rebuild(scheme, scheme.relations());
}

DatabaseScheme NormalizeKeyMinimality(const DatabaseScheme& scheme) {
  DatabaseScheme out = CloneScheme(scheme);
  bool changed = true;
  while (changed) {
    changed = false;
    const FdSet f = out.key_dependencies();
    DatabaseScheme next(out.universe_ptr());
    for (const RelationScheme& r : out.relations()) {
      RelationScheme shrunk;
      shrunk.name = r.name;
      shrunk.attrs = r.attrs;
      for (const AttributeSet& key : r.keys) {
        AttributeSet reduced = ReduceToKey(key, r.attrs, f);
        if (reduced != key) changed = true;
        // Shrinking can collapse two declared keys into one.
        bool known = false;
        for (const AttributeSet& k : shrunk.keys) {
          if (k == reduced) {
            known = true;
            break;
          }
        }
        if (!known) shrunk.keys.push_back(reduced);
      }
      next.AddRelation(std::move(shrunk));
    }
    out = std::move(next);
  }
  return out;
}

DatabaseScheme MutateScheme(const DatabaseScheme& scheme,
                            std::mt19937_64* rng) {
  std::vector<RelationScheme> rels = scheme.relations();
  const size_t n = rels.size();
  switch ((*rng)() % 5) {
    case 0: {  // drop a candidate key
      std::vector<size_t> multi;
      for (size_t i = 0; i < n; ++i) {
        if (rels[i].keys.size() >= 2) multi.push_back(i);
      }
      if (multi.empty()) break;
      RelationScheme& r = rels[multi[(*rng)() % multi.size()]];
      r.keys.erase(r.keys.begin() + (*rng)() % r.keys.size());
      break;
    }
    case 1: {  // add an attribute of U to a relation
      size_t i = (*rng)() % n;
      AttributeSet missing = scheme.AllAttrs().Minus(rels[i].attrs);
      if (missing.Empty()) break;
      std::vector<AttributeId> choices = missing.ToVector();
      rels[i].attrs.Add(choices[(*rng)() % choices.size()]);
      break;
    }
    case 2: {  // merge two relations
      if (n < 2) break;
      size_t i = (*rng)() % n;
      size_t j = (*rng)() % n;
      if (i == j) j = (j + 1) % n;
      if (i > j) std::swap(i, j);
      RelationScheme merged;
      merged.name = rels[i].name + rels[j].name;
      merged.attrs = rels[i].attrs.Union(rels[j].attrs);
      merged.keys = rels[i].keys;
      for (const AttributeSet& key : rels[j].keys) {
        bool known = false;
        for (const AttributeSet& k : merged.keys) {
          if (k == key) {
            known = true;
            break;
          }
        }
        if (!known) merged.keys.push_back(key);
      }
      rels.erase(rels.begin() + j);
      rels[i] = std::move(merged);
      break;
    }
    case 3: {  // drop a relation (may break coverage; Validate decides)
      if (n < 2) break;
      rels.erase(rels.begin() + (*rng)() % n);
      break;
    }
    case 4: {  // declare an extra candidate key
      size_t i = (*rng)() % n;
      std::vector<AttributeSet> candidates =
          FindCandidateKeys(rels[i].attrs, scheme.key_dependencies());
      std::vector<AttributeSet> fresh;
      for (const AttributeSet& c : candidates) {
        bool declared = false;
        for (const AttributeSet& k : rels[i].keys) {
          if (k == c) {
            declared = true;
            break;
          }
        }
        if (!declared) fresh.push_back(c);
      }
      if (fresh.empty()) break;
      rels[i].keys.push_back(fresh[(*rng)() % fresh.size()]);
      break;
    }
  }
  return NormalizeKeyMinimality(Rebuild(scheme, rels));
}

}  // namespace ird::oracle
