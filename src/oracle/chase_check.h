// Three-way chase cross-check: the delta-driven ChaseFds (tableau/chase.h),
// the retired pass-based PassChaseFds (oracle/pass_chase.h), and the
// exhaustive pairwise NaiveChase (oracle/naive_chase.h) run on the same
// tableaux and must agree on the final canonical tableau, the consistency
// verdict, and (between the two bucketed engines, on consistent inputs) the
// rule-application count. This is the fuzz hook behind the
// `tableau/chase-vs-naive` differential routine.

#ifndef IRD_ORACLE_CHASE_CHECK_H_
#define IRD_ORACLE_CHASE_CHECK_H_

#include <cstdint>

#include "base/status.h"
#include "schema/database_scheme.h"

namespace ird::oracle {

// Chases the scheme tableau T_R, a generated consistent state, and a batch
// of noisy (often inconsistent) states of `scheme` with all three
// implementations. OK iff every comparison agrees; otherwise the message
// names the tableau and the first divergence.
Status ChaseSelfCheck(const DatabaseScheme& scheme, uint64_t seed);

}  // namespace ird::oracle

#endif  // IRD_ORACLE_CHASE_CHECK_H_
