#include "oracle/naive_independence.h"

#include <random>

#include "oracle/naive_chase.h"
#include "oracle/naive_closure.h"
#include "relation/weak_instance.h"

namespace ird::oracle {

bool IsIndependentOracle(const DatabaseScheme& scheme) {
  for (size_t j = 0; j < scheme.size(); ++j) {
    const RelationScheme& rj = scheme.relation(j);
    FdSet without_j = scheme.KeyDependenciesExcept(j);
    for (size_t i = 0; i < scheme.size(); ++i) {
      if (i == j) continue;
      AttributeSet closure =
          NaiveClosure(without_j, scheme.relation(i).attrs);
      // An embedded key dependency K -> A of Rj: K ⊆ closure and some
      // A ∈ Rj - K in the closure as well.
      for (const AttributeSet& key : rj.keys) {
        if (!key.IsSubsetOf(closure)) continue;
        if (!closure.Intersect(rj.attrs).Minus(key).Empty()) return false;
      }
    }
  }
  return true;
}

std::optional<DatabaseState> SearchLsatWsatGap(const DatabaseScheme& scheme,
                                               size_t trials,
                                               size_t max_tuples,
                                               size_t domain, uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (size_t trial = 0; trial < trials; ++trial) {
    DatabaseState state(scheme);
    for (size_t rel = 0; rel < scheme.size(); ++rel) {
      size_t count = rng() % (max_tuples + 1);
      const AttributeSet& attrs = scheme.relation(rel).attrs;
      for (size_t k = 0; k < count; ++k) {
        std::vector<Value> values;
        values.reserve(attrs.Count());
        // Shared small domain per attribute so tuples collide across
        // relations often enough for the chase to have work to do.
        attrs.ForEach([&](AttributeId a) {
          values.push_back(
              static_cast<Value>(a * domain + rng() % domain + 1));
        });
        state.mutable_relation(rel).AddUnique(
            PartialTuple(attrs, std::move(values)));
      }
    }
    if (IsLocallyConsistent(state) && !IsConsistentNaive(state)) {
      return state;
    }
  }
  return std::nullopt;
}

}  // namespace ird::oracle
