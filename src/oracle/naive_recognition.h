// Independence-reducibility straight from Definition §4.1: R is
// independence-reducible iff *some* partition of R has every block
// key-equivalent (wrt the block's own key dependencies) and an independent
// induced scheme. The oracle enumerates every set partition of the
// relations — no KEP, no Theorem 5.1 shortcut — and therefore certifies
// Algorithm 6's accept AND reject verdicts, not just the partition it
// happens to pick.
//
// Also derives the full classification report from oracle parts only, for
// differential comparison against core/classify.h.

#ifndef IRD_ORACLE_NAIVE_RECOGNITION_H_
#define IRD_ORACLE_NAIVE_RECOGNITION_H_

#include <optional>
#include <vector>

#include "schema/database_scheme.h"

namespace ird::oracle {

// Existence of an independence-reducible partition, by exhaustive set-
// partition enumeration (Bell(n) candidates; guarded at 12 relations).
// Returns the first witnessing partition, or nullopt.
std::optional<std::vector<std::vector<size_t>>>
FindIndependenceReduciblePartition(const DatabaseScheme& scheme);

bool IsIndependenceReducibleOracle(const DatabaseScheme& scheme);

// The classification flags the paper derives, assembled from the oracle
// implementations alone.
struct OracleClassification {
  bool lossless = false;
  bool independent = false;
  bool key_equivalent = false;
  bool independence_reducible = false;
  bool split_free = false;  // all blocks of the maximal-KE partition
  bool ctm = false;         // reducible ∧ split_free (Theorem 5.5)
};

OracleClassification ClassifySchemeOracle(const DatabaseScheme& scheme);

}  // namespace ird::oracle

#endif  // IRD_ORACLE_NAIVE_RECOGNITION_H_
