#include "oracle/differential.h"

#include <optional>
#include <random>

#include "core/block_maintainer.h"
#include "core/classify.h"
#include "core/consistency.h"
#include "core/ctm_maintainer.h"
#include "core/expression_maintenance.h"
#include "core/independence.h"
#include "core/independence_witness.h"
#include "core/kep.h"
#include "core/key_equivalence.h"
#include "core/key_equivalent_maintainer.h"
#include "core/recognition.h"
#include "core/representative_index.h"
#include "core/sharded_maintainer.h"
#include "core/split.h"
#include "core/total_projection.h"
#include "engine/scheme_analysis.h"
#include "oracle/chase_check.h"
#include "oracle/naive_chase.h"
#include "oracle/naive_independence.h"
#include "oracle/naive_kep.h"
#include "oracle/naive_recognition.h"
#include "oracle/naive_split.h"
#include "obs/obs.h"
#include "relation/weak_instance.h"
#include "workload/generators.h"

namespace ird::oracle {

namespace {

std::string PartitionToString(const DatabaseScheme& scheme,
                              const std::vector<std::vector<size_t>>& blocks) {
  std::string out;
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (b > 0) out += " | ";
    out += "{";
    for (size_t k = 0; k < blocks[b].size(); ++k) {
      if (k > 0) out += ",";
      out += scheme.relation(blocks[b][k]).name;
    }
    out += "}";
  }
  return out;
}

std::string StateToString(const DatabaseState& state) {
  std::string out;
  for (size_t i = 0; i < state.scheme().size(); ++i) {
    out += state.scheme().relation(i).name + ": " +
           state.relation(i).ToString(state.scheme().universe()) + "\n";
  }
  return out;
}

bool SameInduced(const std::optional<DatabaseScheme>& a,
                 const std::optional<DatabaseScheme>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  if (a->size() != b->size()) return false;
  for (size_t i = 0; i < a->size(); ++i) {
    if (a->relation(i).attrs != b->relation(i).attrs ||
        a->relation(i).keys != b->relation(i).keys) {
      return false;
    }
  }
  return true;
}

bool SameRecognition(const RecognitionResult& a, const RecognitionResult& b) {
  if (a.accepted != b.accepted || a.partition != b.partition) return false;
  if (a.violation.has_value() != b.violation.has_value()) return false;
  if (a.violation.has_value() &&
      (a.violation->i != b.violation->i || a.violation->j != b.violation->j ||
       a.violation->key != b.violation->key ||
       a.violation->attribute != b.violation->attribute)) {
    return false;
  }
  return SameInduced(a.induced, b.induced);
}

class Comparator {
 public:
  Comparator(const DatabaseScheme& scheme, const DifferentialOptions& options)
      : scheme_(scheme), options_(options) {}

  std::vector<Disagreement> Run() {
    IRD_SPAN("oracle.compare");
    CompareStructural();
    CompareStates();
    return std::move(found_);
  }

 private:
  void Report(std::string routine, std::string detail) {
    found_.push_back({std::move(routine), std::move(detail)});
  }

  void Expect(bool agree, const std::string& routine, std::string detail) {
    IRD_COUNT(oracle.comparisons);
    if (!agree) Report(routine, std::move(detail));
  }

  void CompareStructural() {
    const size_t n = scheme_.size();

    // Losslessness: BMSU closure shortcut vs optimized chase vs naive chase.
    bool lossless_naive = IsLosslessNaive(scheme_);
    Expect(scheme_.IsLossless() == lossless_naive, "lossless/bmsu",
           "IsLossless disagrees with the chased scheme tableau");
    Expect(IsLosslessByChase(scheme_) == lossless_naive, "lossless/chase",
           "optimized chase disagrees with exhaustive chase on T_R");

    // Chase implementations: delta-driven vs pass-based vs exhaustive
    // pairwise, on the scheme tableau and generated state tableaux (final
    // canonical tableau, consistency verdict and equate count must agree).
    {
      Status chase = ChaseSelfCheck(scheme_, options_.seed + 7);
      Expect(chase.ok(), "tableau/chase-vs-naive",
             chase.ok() ? "" : chase.ToString());
    }

    // Key-equivalence: Algorithm 3 vs the FD-closure definition.
    bool ke = IsKeyEquivalent(scheme_);
    Expect(ke == IsKeyEquivalentOracle(scheme_), "key-equivalence/alg3",
           "Algorithm 3 scheme closures disagree with naive FD closures");

    // Split analysis, key by key, over the whole scheme.
    for (const auto& [rel, key] : scheme_.AllKeys()) {
      bool oracle_split = IsKeySplitOracle(scheme_, key);
      std::string which = "key " + scheme_.universe().Format(key) + " of " +
                          scheme_.relation(rel).name;
      Expect(IsKeySplit(scheme_, key) == oracle_split, "split/lemma38",
             "Lemma 3.8 disagrees with the computation walk on " + which);
      Expect(IsKeySplitByDefinition(scheme_, key) == oracle_split,
             "split/definition-bfs",
             "closure-state BFS disagrees with the computation walk on " +
                 which);
    }

    // Independence: uniqueness condition plus its semantic grounding.
    bool independent = IsIndependent(scheme_);
    Expect(independent == IsIndependentOracle(scheme_),
           "independence/uniqueness",
           "ClosureEngine uniqueness test disagrees with naive closures");
    if (independent) {
      std::optional<DatabaseState> gap =
          SearchLsatWsatGap(scheme_, options_.lsat_trials,
                            options_.lsat_max_tuples, options_.lsat_domain,
                            options_.seed + 101);
      Expect(!gap.has_value(), "independence/lsat-wsat",
             "scheme declared independent but a locally consistent, "
             "globally inconsistent state exists");
    } else {
      Result<DatabaseState> witness = BuildDependenceWitness(scheme_);
      if (!witness.ok()) {
        Report("independence/witness",
               "scheme declared dependent but BuildDependenceWitness "
               "failed: " +
                   witness.status().ToString());
      } else {
        Expect(IsLocallyConsistent(*witness) && !IsConsistentNaive(*witness),
               "independence/witness",
               "constructed dependence witness is not an LSAT/WSAT gap "
               "under the exhaustive chase");
      }
    }

    // KEP vs maximal key-equivalent subsets.
    RecognitionResult recognition = RecognizeIndependenceReducible(scheme_);
    if (n <= options_.max_subset_enum) {
      std::vector<std::vector<size_t>> maximal =
          MaximalKeyEquivalentSubsets(scheme_);
      Expect(recognition.partition == maximal, "kep/partition",
             "KEP = " + PartitionToString(scheme_, recognition.partition) +
                 " but maximal key-equivalent subsets = " +
                 PartitionToString(scheme_, maximal));
    }

    // Recognition: Algorithm 6 vs set-partition enumeration, plus an
    // unconditional audit of the accepting partition.
    if (n <= options_.max_partition_enum) {
      Expect(recognition.accepted == IsIndependenceReducibleOracle(scheme_),
             "recognition/alg6",
             std::string("Algorithm 6 ") +
                 (recognition.accepted ? "accepted" : "rejected") +
                 " but partition enumeration says otherwise");
    }
    if (recognition.accepted) {
      for (const std::vector<size_t>& block : recognition.partition) {
        Expect(IsKeyEquivalentOracle(scheme_, block), "recognition/blocks",
               "accepted block " +
                   PartitionToString(scheme_, {block}) +
                   " is not key-equivalent by the oracle");
      }
      Expect(IsIndependentOracle(*recognition.induced),
             "recognition/induced",
             "accepted induced scheme is not independent by the oracle");
    }

    // Engine determinism: a SchemeAnalysis-backed recognition — cold (fresh
    // caches) and warm (every slot, cover and memo already filled) — must
    // reproduce the wrapper's result bit for bit, and the memoized split
    // keys must match the per-call computation. The oracle layer itself
    // deliberately never adopts the shared context (see docs/TESTING.md);
    // these checks are the bridge that keeps the memoized engine honest.
    {
      SchemeAnalysis analysis(scheme_);
      RecognitionResult cold = RecognizeIndependenceReducible(analysis);
      Expect(SameRecognition(cold, recognition), "engine/recognition",
             "SchemeAnalysis-backed recognition disagrees with the "
             "scheme-level wrapper");
      RecognitionResult warm = RecognizeIndependenceReducible(analysis);
      Expect(SameRecognition(warm, cold), "engine/recognition-cached",
             "fully cached recognition differs from the cold run on the "
             "same analysis");
      Expect(SplitKeys(analysis) == SplitKeys(scheme_), "engine/split-keys",
             "memoized split keys disagree with the per-call computation");
    }

    // Classification flags vs the oracle-assembled report.
    if (n <= options_.max_partition_enum) {
      SchemeClassification c = ClassifyScheme(scheme_, false);
      OracleClassification o = ClassifySchemeOracle(scheme_);
      Expect(c.lossless == o.lossless, "classify/lossless", "lossless flag");
      Expect(c.independent == o.independent, "classify/independent",
             "independent flag");
      Expect(c.key_equivalent == o.key_equivalent, "classify/key-equivalent",
             "key-equivalent flag");
      Expect(c.independence_reducible == o.independence_reducible,
             "classify/reducible", "independence-reducible flag");
      Expect(c.split_free == o.split_free, "classify/split-free",
             "split-free flag");
      Expect(c.ctm == o.ctm, "classify/ctm", "ctm flag (Theorem 5.5)");
    }
  }

  void CompareStates() {
    StateGenOptions state_opt;
    state_opt.entities = options_.state_entities;
    state_opt.coverage = options_.state_coverage;
    state_opt.seed = options_.seed + 1;
    DatabaseState state = MakeConsistentState(scheme_, state_opt);

    // Consistency of the generated state: true by construction, and the
    // optimized chase must agree with the exhaustive one.
    bool naive_consistent = IsConsistentNaive(state);
    Expect(naive_consistent, "chase/generator",
           "MakeConsistentState produced a state the exhaustive chase "
           "rejects");
    Expect(IsConsistent(state) == naive_consistent, "chase/consistency",
           "optimized chase disagrees with exhaustive chase on the "
           "generated state");
    if (!naive_consistent) return;  // everything below assumes consistency

    RecognitionResult recognition = RecognizeIndependenceReducible(scheme_);
    if (recognition.accepted) {
      Expect(CheckConsistencyByBlocks(state, recognition).ok(),
             "chase/by-blocks",
             "block-decomposed consistency check rejects a consistent "
             "state");
    }

    bool ke = IsKeyEquivalent(scheme_);
    bool ctm = ke && IsSplitFree(scheme_);

    // Total projections: predetermined expressions and the representative
    // index vs the exhaustive chase.
    std::mt19937_64 rng(options_.seed + 2);
    std::vector<AttributeId> all = scheme_.AllAttrs().ToVector();
    if (recognition.accepted) {
      for (size_t round = 0; round < options_.projection_targets; ++round) {
        AttributeSet x;
        for (AttributeId a : all) {
          if (rng() % 3 == 0) x.Add(a);
        }
        if (x.Empty()) x.Add(all[rng() % all.size()]);
        Result<PartialRelation> naive = TotalProjectionNaive(state, x);
        if (!naive.ok()) continue;
        PartialRelation bounded = TotalProjection(state, recognition, x);
        Expect(bounded.SetEquals(*naive), "projection/theorem41",
               "bounded expression for [" + scheme_.universe().Format(x) +
                   "] disagrees with the exhaustive chase");
        Result<PartialRelation> chased = TotalProjectionByChase(state, x);
        Expect(chased.ok() && chased->SetEquals(*naive), "projection/chase",
               "optimized-chase [" + scheme_.universe().Format(x) +
                   "] disagrees with the exhaustive chase");
      }
    }
    if (ke) {
      Result<RepresentativeIndex> index = RepresentativeIndex::Build(state);
      if (!index.ok()) {
        Report("projection/algorithm1",
               "RepresentativeIndex::Build failed on a consistent state: " +
                   index.status().ToString());
      } else {
        for (const RelationScheme& r : scheme_.relations()) {
          Result<PartialRelation> naive = TotalProjectionNaive(state, r.attrs);
          Expect(naive.ok() && index->TotalProjection(r.attrs)
                     .SetEquals(*naive),
                 "projection/algorithm1",
                 "representative index [" + r.name +
                     "] disagrees with the exhaustive chase");
        }
      }
    }

    // Maintenance: every applicable maintainer vs re-chasing exhaustively.
    std::optional<IndependenceReducibleMaintainer> block;
    if (recognition.accepted) {
      Result<IndependenceReducibleMaintainer> m =
          IndependenceReducibleMaintainer::Create(state);
      if (m.ok()) {
        block.emplace(std::move(m).value());
      } else {
        Report("maintenance/block",
               "block maintainer rejected a consistent state: " +
                   m.status().ToString());
      }
    }
    std::optional<KeyEquivalentMaintainer> alg2;
    std::optional<ExpressionLookupPlan> plan;
    if (ke) {
      Result<KeyEquivalentMaintainer> m = KeyEquivalentMaintainer::Create(state);
      if (m.ok()) {
        alg2.emplace(std::move(m).value());
      } else {
        Report("maintenance/alg2",
               "Algorithm 2 maintainer rejected a consistent state: " +
                   m.status().ToString());
      }
      plan.emplace(ExpressionLookupPlan::Build(scheme_));
    }
    std::optional<CtmMaintainer> alg5;
    if (ctm) {
      Result<CtmMaintainer> m = CtmMaintainer::Create(state);
      if (m.ok()) {
        alg5.emplace(std::move(m).value());
      } else {
        Report("maintenance/alg5",
               "Algorithm 5 maintainer rejected a consistent state: " +
                   m.status().ToString());
      }
    }

    std::vector<InsertInstance> stream =
        MakeInsertStream(scheme_, state, options_.insert_count,
                         options_.conflict_rate, options_.seed + 3);
    for (const InsertInstance& ins : stream) {
      bool truth = WouldRemainConsistentNaive(state, ins.rel, ins.tuple);
      std::string which = "insert " + ins.tuple.ToString(scheme_.universe()) +
                          " into " + scheme_.relation(ins.rel).name;
      Expect(truth == ins.expected_consistent, "chase/stream-generator",
             "MakeInsertStream mislabeled " + which);
      Expect(WouldRemainConsistent(state, ins.rel, ins.tuple) == truth,
             "chase/maintenance",
             "optimized chase disagrees with exhaustive chase on " + which);
      if (block.has_value()) {
        Expect(block->CheckInsert(ins.rel, ins.tuple).ok() == truth,
               "maintenance/block", "block maintainer misjudges " + which);
      }
      if (alg2.has_value()) {
        Expect(alg2->CheckInsert(ins.rel, ins.tuple).ok() == truth,
               "maintenance/alg2", "Algorithm 2 misjudges " + which);
      }
      if (plan.has_value()) {
        Result<PartialTuple> expr = CheckInsertByExpressions(
            scheme_, *plan, state, ins.rel, ins.tuple);
        Expect(expr.ok() == truth, "maintenance/expressions",
               "§3.2 expression lookup misjudges " + which);
      }
      if (alg5.has_value()) {
        Expect(alg5->CheckInsert(ins.rel, ins.tuple).ok() == truth,
               "maintenance/alg5", "Algorithm 5 misjudges " + which);
      }
    }

    if (recognition.accepted) {
      CompareShardedVsSingle(state, recognition, stream);
    }
  }

  // The sharded engine vs the single-shard oracle path: the same insert
  // stream driven through both must produce byte-identical verdicts,
  // post-insert materialized states and total projections, and the batch
  // path (InsertBatch, which regroups ops per shard) must match the serial
  // one op for op.
  void CompareShardedVsSingle(const DatabaseState& state,
                              const RecognitionResult& recognition,
                              const std::vector<InsertInstance>& stream) {
    constexpr char kRoutine[] = "maintenance/sharded-vs-single";
    Result<IndependenceReducibleMaintainer> single_r =
        IndependenceReducibleMaintainer::Create(state);
    Result<ShardedMaintainer> sharded_r = ShardedMaintainer::Create(state);
    Expect(single_r.ok() == sharded_r.ok(), kRoutine,
           "engines disagree on accepting the initial state");
    if (!single_r.ok() || !sharded_r.ok()) return;
    IndependenceReducibleMaintainer single = std::move(single_r).value();
    ShardedMaintainer sharded = std::move(sharded_r).value();

    Expect(single.IsCtm() == sharded.IsCtm(), kRoutine,
           "engines disagree on ctm (Theorem 5.5 over the shards)");
    Expect(StateToString(single.state()) ==
               StateToString(sharded.Materialize()),
           kRoutine, "initial materialized states differ");

    std::vector<InsertOp> ops;
    for (const InsertInstance& ins : stream) {
      std::string which = "insert " + ins.tuple.ToString(scheme_.universe()) +
                          " into " + scheme_.relation(ins.rel).name;
      Status sv = single.Insert(ins.rel, ins.tuple);
      Status dv = sharded.Insert(ins.rel, ins.tuple);
      Expect(sv.ok() == dv.ok(), kRoutine,
             "sharded verdict differs from single-shard on " + which);
      if (sv.ok()) ops.push_back({ins.rel, ins.tuple});
    }
    Expect(StateToString(single.state()) ==
               StateToString(sharded.Materialize()),
           kRoutine, "post-insert materialized states differ");

    // Total projections through the shard router vs the merged state.
    std::mt19937_64 rng(options_.seed + 5);
    std::vector<AttributeId> all = scheme_.AllAttrs().ToVector();
    for (size_t round = 0; round < options_.projection_targets; ++round) {
      AttributeSet x;
      for (AttributeId a : all) {
        if (rng() % 3 == 0) x.Add(a);
      }
      if (x.Empty()) x.Add(all[rng() % all.size()]);
      PartialRelation merged = TotalProjection(single.state(), recognition, x);
      PartialRelation fanned = sharded.TotalProjection(x);
      Expect(fanned.ToString(scheme_.universe()) ==
                 merged.ToString(scheme_.universe()),
             kRoutine,
             "sharded [" + scheme_.universe().Format(x) +
                 "] differs from the merged-state projection");
    }

    // Batch path: replaying the accepted ops through InsertBatch on a fresh
    // engine must accept every op and land on the same materialized state.
    Result<ShardedMaintainer> batch_r = ShardedMaintainer::Create(state);
    if (!batch_r.ok()) {
      Report(kRoutine, "second sharded engine rejected the initial state: " +
                           batch_r.status().ToString());
      return;
    }
    ShardedMaintainer batch = std::move(batch_r).value();
    std::vector<Status> verdicts = batch.InsertBatch(ops);
    for (size_t i = 0; i < verdicts.size(); ++i) {
      Expect(verdicts[i].ok(), kRoutine,
             "InsertBatch rejected accepted op " + std::to_string(i) + ": " +
                 verdicts[i].ToString());
    }
    Expect(StateToString(batch.Materialize()) ==
               StateToString(sharded.Materialize()),
           kRoutine, "batch-path state differs from the serial sharded path");
  }

  const DatabaseScheme& scheme_;
  const DifferentialOptions& options_;
  std::vector<Disagreement> found_;
};

}  // namespace

std::vector<Disagreement> CompareAgainstOracles(
    const DatabaseScheme& scheme, const DifferentialOptions& options) {
  return Comparator(scheme, options).Run();
}

bool DisagreesOn(const DatabaseScheme& scheme,
                 const DifferentialOptions& options,
                 const std::string& routine) {
  for (const Disagreement& d : CompareAgainstOracles(scheme, options)) {
    if (d.routine == routine) return true;
  }
  return false;
}

}  // namespace ird::oracle
