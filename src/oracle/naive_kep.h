// Key-equivalence and the key-equivalent partition from first principles.
//
// Key-equivalence of a pool is checked through the *FD-level* definition:
// Si+ equals the attribute closure of Si wrt the pool's key dependencies
// (computed by oracle::NaiveClosure), and the pool is key-equivalent iff
// every member's closure is the pool's attribute union — no Algorithm 3
// scheme-absorption loop, no ClosureEngine.
//
// The partition is found by brute force over all 2^n subsets: collect the
// key-equivalent ones, keep the inclusion-maximal. Lemmas 5.1/5.2 promise
// these blocks are unique and partition R; the oracle re-derives them
// without the KEP refinement so that core/kep.h can be pinned against it
// (including the partition property itself).

#ifndef IRD_ORACLE_NAIVE_KEP_H_
#define IRD_ORACLE_NAIVE_KEP_H_

#include <vector>

#include "schema/database_scheme.h"

namespace ird::oracle {

// The pool (empty = all of R) is key-equivalent wrt its own embedded key
// dependencies, by the FD-closure definition.
bool IsKeyEquivalentOracle(const DatabaseScheme& scheme,
                           const std::vector<size_t>& pool = {});

// All inclusion-maximal key-equivalent subsets of R, each sorted, ordered
// by smallest member — the shape KeyEquivalentPartition promises. If the
// maximal subsets failed to partition R (which would falsify Lemma 5.2),
// the returned blocks overlap or miss indices; callers compare against the
// optimized partition and flag either defect. Exponential; guarded at 20
// relations.
std::vector<std::vector<size_t>> MaximalKeyEquivalentSubsets(
    const DatabaseScheme& scheme);

}  // namespace ird::oracle

#endif  // IRD_ORACLE_NAIVE_KEP_H_
