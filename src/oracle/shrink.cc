#include "oracle/shrink.h"

#include <optional>
#include <utility>
#include <vector>

#include "oracle/mutate.h"

namespace ird::oracle {

namespace {

// Rebuilds a candidate from edited relation rows; returns nullopt unless it
// validates (directly or after key re-minimization) and still fails.
std::optional<DatabaseScheme> TryCandidate(
    const DatabaseScheme& current, std::vector<RelationScheme> rels,
    const std::function<bool(const DatabaseScheme&)>& still_fails) {
  if (rels.empty()) return std::nullopt;
  DatabaseScheme rebuilt(current.universe_ptr());
  for (RelationScheme& r : rels) rebuilt.AddRelation(std::move(r));
  DatabaseScheme candidate = NormalizeKeyMinimality(rebuilt);
  if (!candidate.Validate().ok()) return std::nullopt;
  if (!still_fails(candidate)) return std::nullopt;
  return candidate;
}

}  // namespace

DatabaseScheme ShrinkScheme(
    const DatabaseScheme& scheme,
    const std::function<bool(const DatabaseScheme&)>& still_fails) {
  IRD_CHECK_MSG(still_fails(scheme), "shrink called on a passing scheme");
  DatabaseScheme current = CloneScheme(scheme);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Pass 1: drop a whole relation.
    for (size_t i = 0; i < current.size() && !progressed; ++i) {
      std::vector<RelationScheme> rels = current.relations();
      rels.erase(rels.begin() + i);
      if (auto next = TryCandidate(current, std::move(rels), still_fails)) {
        current = std::move(*next);
        progressed = true;
      }
    }
    if (progressed) continue;
    // Pass 2: drop one candidate key (relations keep at least one).
    for (size_t i = 0; i < current.size() && !progressed; ++i) {
      for (size_t k = 0; k < current.relation(i).keys.size() && !progressed;
           ++k) {
        if (current.relation(i).keys.size() < 2) continue;
        std::vector<RelationScheme> rels = current.relations();
        rels[i].keys.erase(rels[i].keys.begin() + k);
        if (auto next = TryCandidate(current, std::move(rels), still_fails)) {
          current = std::move(*next);
          progressed = true;
        }
      }
    }
    if (progressed) continue;
    // Pass 3: drop one attribute from one relation (keys lose it too; a key
    // emptied by the deletion is dropped, and a relation needs >= 2 attrs
    // to stay a sensible edge).
    for (size_t i = 0; i < current.size() && !progressed; ++i) {
      std::vector<AttributeId> attrs = current.relation(i).attrs.ToVector();
      if (attrs.size() < 2) continue;
      for (AttributeId a : attrs) {
        std::vector<RelationScheme> rels = current.relations();
        rels[i].attrs.Remove(a);
        std::vector<AttributeSet> kept;
        for (AttributeSet key : rels[i].keys) {
          key.Remove(a);
          if (!key.Empty()) kept.push_back(key);
        }
        if (kept.empty()) continue;
        rels[i].keys = std::move(kept);
        if (auto next = TryCandidate(current, std::move(rels), still_fails)) {
          current = std::move(*next);
          progressed = true;
          break;
        }
      }
    }
  }
  // Drop attributes that no longer occur anywhere from the universe.
  return CloneScheme(current);
}

}  // namespace ird::oracle
