// The pass-based bucketed chase — the previous generation of
// tableau/chase.h's ChaseFds, retired to the oracle layer when the
// delta-driven engine replaced it. Each fixpoint pass rebuilds every FD's
// left-side bucket map from scratch over the whole tableau: quadratic
// re-scan work, but simple enough to audit by eye, and one optimization
// level above the exhaustive pairwise NaiveChase (naive_chase.h).
//
// The `tableau/chase-vs-naive` differential cross-check holds all three
// implementations equal: final canonical tableau, consistency verdict, and
// (between this and the incremental engine) the rule-application count.

#ifndef IRD_ORACLE_PASS_CHASE_H_
#define IRD_ORACLE_PASS_CHASE_H_

#include "fd/fd_set.h"
#include "tableau/chase.h"
#include "tableau/tableau.h"

namespace ird::oracle {

// Runs CHASE_F(t) in place by full passes over standard-form FDs, each
// rebuilding its bucket map, until a pass changes nothing. Only
// `consistent` and `rule_applications` of the result are meaningful.
ChaseStats PassChaseFds(Tableau* t, const FdSet& fds);

}  // namespace ird::oracle

#endif  // IRD_ORACLE_PASS_CHASE_H_
