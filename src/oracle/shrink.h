// Greedy scheme minimization for fuzzer repros: given a scheme on which
// some differential predicate fails, repeatedly tries the smallest
// structural deletions — drop a relation, drop a candidate key, drop an
// attribute from one relation — keeping a candidate only if it still
// validates and the predicate still fails, until no deletion survives.
// The result is the minimal repro written into tests/corpus/.

#ifndef IRD_ORACLE_SHRINK_H_
#define IRD_ORACLE_SHRINK_H_

#include <functional>

#include "schema/database_scheme.h"

namespace ird::oracle {

// `still_fails` must return true on the original scheme; the returned
// scheme is valid, still fails, and admits no further single deletion.
// Unused attributes are compacted out of the universe at the end.
DatabaseScheme ShrinkScheme(
    const DatabaseScheme& scheme,
    const std::function<bool(const DatabaseScheme&)>& still_fails);

}  // namespace ird::oracle

#endif  // IRD_ORACLE_SHRINK_H_
