#include "oracle/chase_check.h"

#include <random>
#include <string>
#include <vector>

#include "oracle/naive_chase.h"
#include "oracle/pass_chase.h"
#include "relation/weak_instance.h"
#include "tableau/chase.h"
#include "workload/generators.h"

namespace ird::oracle {

namespace {

// Chases three copies of `base` — incremental, pass-based, exhaustive — and
// compares verdicts, rule-application counts, and final canonical tableaux.
// All three copies share symbol birth order (they are copies of one
// tableau), and the merge precedence of Tableau::Equate picks a canonical
// root per class independent of merge order, so on consistent inputs the
// ToString renderings must be bytewise equal.
Status CompareOnTableau(const Tableau& base, const FdSet& fds,
                        const Universe& universe, const std::string& what) {
  Tableau incremental = base;
  Tableau pass = base;
  Tableau naive = base;
  ChaseStats inc_stats = ChaseFds(&incremental, fds);
  ChaseStats pass_stats = PassChaseFds(&pass, fds);
  bool naive_consistent = NaiveChase(&naive, fds);

  if (inc_stats.consistent != pass_stats.consistent) {
    return Inconsistent(what + ": delta-driven chase says " +
                        (inc_stats.consistent ? "consistent" : "inconsistent") +
                        " but the pass-based chase disagrees");
  }
  if (inc_stats.consistent != naive_consistent) {
    return Inconsistent(what + ": delta-driven chase says " +
                        (inc_stats.consistent ? "consistent" : "inconsistent") +
                        " but the exhaustive pairwise chase disagrees");
  }
  if (!inc_stats.consistent) return OkStatus();

  // Rule applications equal the number of symbol classes collapsed, which
  // is rule-order-independent on consistent inputs.
  if (inc_stats.rule_applications != pass_stats.rule_applications) {
    return Inconsistent(
        what + ": rule applications diverge (delta-driven " +
        std::to_string(inc_stats.rule_applications) + ", pass-based " +
        std::to_string(pass_stats.rule_applications) + ")");
  }

  naive.Canonicalize();
  std::string inc_text = incremental.ToString(universe);
  if (inc_text != pass.ToString(universe)) {
    return Inconsistent(what +
                        ": final tableau diverges between the delta-driven "
                        "and pass-based chases");
  }
  if (inc_text != naive.ToString(universe)) {
    return Inconsistent(what +
                        ": final tableau diverges between the delta-driven "
                        "and exhaustive pairwise chases");
  }
  return OkStatus();
}

// A small random state (possibly inconsistent): values from a tiny domain
// so key collisions — and therefore genuine merge cascades and
// inconsistency early-returns — are common.
DatabaseState MakeNoisyState(const DatabaseScheme& scheme, size_t tuples,
                             uint64_t seed) {
  std::mt19937_64 rng(seed);
  DatabaseState state(scheme);
  for (size_t n = 0; n < tuples; ++n) {
    size_t rel = rng() % scheme.size();
    const AttributeSet& attrs = scheme.relation(rel).attrs;
    std::vector<Value> values;
    for (size_t i = 0; i < attrs.Count(); ++i) {
      values.push_back(static_cast<Value>(rng() % 4 + 1));
    }
    state.mutable_relation(rel).AddUnique(
        PartialTuple(attrs, std::move(values)));
  }
  return state;
}

}  // namespace

Status ChaseSelfCheck(const DatabaseScheme& scheme, uint64_t seed) {
  const FdSet& fds = scheme.key_dependencies();
  const Universe& universe = scheme.universe();

  Status s = CompareOnTableau(SchemeTableau(scheme), fds, universe,
                              "scheme tableau");
  if (!s.ok()) return s;

  StateGenOptions consistent_opt;
  consistent_opt.entities = 5;
  consistent_opt.coverage = 0.7;
  consistent_opt.seed = seed;
  s = CompareOnTableau(
      StateTableau(MakeConsistentState(scheme, consistent_opt)), fds, universe,
      "consistent-state tableau");
  if (!s.ok()) return s;

  for (uint64_t round = 0; round < 4; ++round) {
    DatabaseState noisy = MakeNoisyState(scheme, 10, seed * 4 + round);
    s = CompareOnTableau(StateTableau(noisy), fds, universe,
                         "noisy-state tableau (round " +
                             std::to_string(round) + ")");
    if (!s.ok()) return s;
  }
  return OkStatus();
}

}  // namespace ird::oracle
