// Attribute closure computed exactly as the textbook definition reads:
// repeatedly scan the *raw* dependency list and add a right side whenever
// its left side is already covered, until a full pass changes nothing.
//
// Deliberately shares no code with FdSet::Closure (re-scanning with early
// normalization) or fd/closure_engine.h (the indexed Beeri–Bernstein
// engine): the oracle layer pins those against this transliteration.

#ifndef IRD_ORACLE_NAIVE_CLOSURE_H_
#define IRD_ORACLE_NAIVE_CLOSURE_H_

#include "base/attribute_set.h"
#include "fd/fd_set.h"

namespace ird::oracle {

// X+ wrt `fds`, by exhaustive rule application on the FD list as given (no
// standard form, no minimization, no indexing).
AttributeSet NaiveClosure(const FdSet& fds, const AttributeSet& x);

// X -> Y ∈ F+ by the definition: Y ⊆ X+.
bool NaiveImplies(const FdSet& fds, const AttributeSet& lhs,
                  const AttributeSet& rhs);

}  // namespace ird::oracle

#endif  // IRD_ORACLE_NAIVE_CLOSURE_H_
