#include "oracle/naive_split.h"

#include <numeric>
#include <unordered_set>

namespace ird::oracle {

namespace {

std::vector<size_t> PoolOrAll(const DatabaseScheme& scheme,
                              const std::vector<size_t>& pool) {
  if (!pool.empty()) return pool;
  std::vector<size_t> all(scheme.size());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

// Depth-first walk over computations of start+. `absorbed` is the bitmask
// (over pool positions) of schemes absorbed so far; the closure at a stage
// is start ∪ (union of absorbed schemes), so visiting a mask twice cannot
// discover anything new.
bool Walk(const DatabaseScheme& scheme, const AttributeSet& key,
          const std::vector<size_t>& pool, uint32_t absorbed,
          const AttributeSet& closure,
          std::unordered_set<uint32_t>* visited) {
  if (!visited->insert(absorbed).second) return false;
  for (size_t p = 0; p < pool.size(); ++p) {
    if ((absorbed >> p) & 1u) continue;
    const RelationScheme& sj = scheme.relation(pool[p]);
    // Applicability per Algorithm 3 statement (2): Sj ⊄ closure and some
    // key of Sj inside the closure.
    if (sj.attrs.IsSubsetOf(closure)) continue;
    if (!sj.ContainsKey(closure)) continue;
    // The definition's split event: this step completes K although the
    // absorbed scheme does not contain K.
    if (!key.IsSubsetOf(closure) &&
        key.IsSubsetOf(closure.Union(sj.attrs)) &&
        !key.IsSubsetOf(sj.attrs)) {
      return true;
    }
    if (Walk(scheme, key, pool, absorbed | (1u << p),
             closure.Union(sj.attrs), visited)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool IsKeySplitInClosureOfOracle(const DatabaseScheme& scheme,
                                 const AttributeSet& key, size_t start,
                                 const std::vector<size_t>& pool) {
  std::vector<size_t> p = PoolOrAll(scheme, pool);
  IRD_CHECK_MSG(p.size() <= 20,
                "definitional split oracle is exponential; pool too large");
  std::unordered_set<uint32_t> visited;
  uint32_t absorbed = 0;
  // The starting scheme counts as part of the computation from the outset.
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] == start) absorbed |= 1u << i;
  }
  return Walk(scheme, key, p, absorbed, scheme.relation(start).attrs,
              &visited);
}

bool IsKeySplitOracle(const DatabaseScheme& scheme, const AttributeSet& key,
                      const std::vector<size_t>& pool) {
  std::vector<size_t> p = PoolOrAll(scheme, pool);
  for (size_t start : p) {
    if (IsKeySplitInClosureOfOracle(scheme, key, start, p)) return true;
  }
  return false;
}

bool IsSplitFreeOracle(const DatabaseScheme& scheme,
                       const std::vector<size_t>& pool) {
  std::vector<size_t> p = PoolOrAll(scheme, pool);
  std::vector<AttributeSet> distinct;
  for (size_t i : p) {
    for (const AttributeSet& key : scheme.relation(i).keys) {
      bool known = false;
      for (const AttributeSet& k : distinct) {
        if (k == key) {
          known = true;
          break;
        }
      }
      if (!known) distinct.push_back(key);
    }
  }
  for (const AttributeSet& key : distinct) {
    if (IsKeySplitOracle(scheme, key, p)) return false;
  }
  return true;
}

}  // namespace ird::oracle
