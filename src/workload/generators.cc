#include "workload/generators.h"

#include <algorithm>
#include <string>

#include "fd/key_finder.h"

namespace ird {

namespace {

std::string AttrName(const std::string& stem, size_t i) {
  return stem + std::to_string(i);
}

}  // namespace

DatabaseScheme MakeChainScheme(size_t n) {
  IRD_CHECK(n >= 1);
  DatabaseScheme scheme = DatabaseScheme::Create();
  auto& u = *scheme.universe_ptr();
  std::vector<AttributeId> a(n + 1);
  for (size_t i = 0; i <= n; ++i) {
    a[i] = u.Intern(AttrName("A", i + 1));
  }
  for (size_t i = 0; i < n; ++i) {
    RelationScheme r;
    r.name = 'R' + std::to_string(i + 1);
    r.attrs = AttributeSet{a[i], a[i + 1]};
    r.keys = {AttributeSet{a[i]}, AttributeSet{a[i + 1]}};
    scheme.AddRelation(std::move(r));
  }
  return scheme;
}

DatabaseScheme MakeSplitScheme(size_t k) {
  IRD_CHECK(k >= 2);
  DatabaseScheme scheme = DatabaseScheme::Create();
  auto& u = *scheme.universe_ptr();
  AttributeId a = u.Intern("A");
  AttributeId e = u.Intern("E");
  AttributeId d = u.Intern("D");
  std::vector<AttributeId> b(k);
  AttributeSet all_b;
  for (size_t i = 0; i < k; ++i) {
    b[i] = u.Intern(AttrName("B", i + 1));
    all_b.Add(b[i]);
  }
  RelationScheme rae;
  rae.name = "RAE";
  rae.attrs = AttributeSet{a, e};
  rae.keys = {AttributeSet{a}, AttributeSet{e}};
  scheme.AddRelation(std::move(rae));
  for (size_t i = 0; i < k; ++i) {
    RelationScheme rab;
    rab.name = "RAB" + std::to_string(i + 1);
    rab.attrs = AttributeSet{a, b[i]};
    rab.keys = {AttributeSet{a}};
    scheme.AddRelation(std::move(rab));
    RelationScheme reb;
    reb.name = "REB" + std::to_string(i + 1);
    reb.attrs = AttributeSet{e, b[i]};
    reb.keys = {AttributeSet{e}};
    scheme.AddRelation(std::move(reb));
  }
  RelationScheme rbd;
  rbd.name = "RBD";
  rbd.attrs = all_b;
  rbd.attrs.Add(d);
  rbd.keys = {all_b, AttributeSet{d}};
  scheme.AddRelation(std::move(rbd));
  RelationScheme rda;
  rda.name = "RDA";
  rda.attrs = AttributeSet{d, a};
  rda.keys = {AttributeSet{d}, AttributeSet{a}};
  scheme.AddRelation(std::move(rda));
  return scheme;
}

DatabaseScheme MakeIndependentScheme(size_t m) {
  IRD_CHECK(m >= 1);
  DatabaseScheme scheme = DatabaseScheme::Create();
  auto& u = *scheme.universe_ptr();
  std::vector<AttributeId> key(m);
  std::vector<AttributeId> payload(m);
  for (size_t i = 0; i < m; ++i) {
    key[i] = u.Intern(AttrName("K", i + 1));
    payload[i] = u.Intern(AttrName("P", i + 1));
  }
  for (size_t i = 0; i < m; ++i) {
    RelationScheme r;
    r.name = 'R' + std::to_string(i + 1);
    r.attrs = AttributeSet{key[i], payload[i]};
    if (i + 1 < m) r.attrs.Add(key[i + 1]);
    r.keys = {AttributeSet{key[i]}};
    scheme.AddRelation(std::move(r));
  }
  return scheme;
}

DatabaseScheme MakeBlockScheme(size_t blocks, size_t block_size) {
  IRD_CHECK(blocks >= 1 && block_size >= 2);
  DatabaseScheme scheme = DatabaseScheme::Create();
  auto& u = *scheme.universe_ptr();
  // Block i owns attributes X_{i,1}..X_{i,block_size}; its relations are a
  // chain with bidirectional singleton keys (block_size - 1 relations) plus
  // a bridge relation {X_{i,1}, X_{i+1,1}} with one-way key {X_{i,1}}.
  std::vector<std::vector<AttributeId>> x(blocks);
  for (size_t i = 0; i < blocks; ++i) {
    x[i].resize(block_size);
    for (size_t j = 0; j < block_size; ++j) {
      std::string attr_name = 'X' + std::to_string(i + 1);
      attr_name += '_';
      attr_name += std::to_string(j + 1);
      x[i][j] = u.Intern(attr_name);
    }
  }
  for (size_t i = 0; i < blocks; ++i) {
    for (size_t j = 0; j + 1 < block_size; ++j) {
      RelationScheme r;
      r.name = 'B' + std::to_string(i + 1);
      r.name += 'R';
      r.name += std::to_string(j + 1);
      r.attrs = AttributeSet{x[i][j], x[i][j + 1]};
      r.keys = {AttributeSet{x[i][j]}, AttributeSet{x[i][j + 1]}};
      scheme.AddRelation(std::move(r));
    }
    if (i + 1 < blocks) {
      RelationScheme bridge;
      bridge.name = 'B' + std::to_string(i + 1);
      bridge.name += "bridge";
      bridge.attrs = AttributeSet{x[i][0], x[i + 1][0]};
      bridge.keys = {AttributeSet{x[i][0]}};
      scheme.AddRelation(std::move(bridge));
    }
  }
  return scheme;
}

DatabaseScheme MakeStarScheme(size_t n) {
  IRD_CHECK(n >= 1);
  DatabaseScheme scheme = DatabaseScheme::Create();
  auto& u = *scheme.universe_ptr();
  AttributeId c = u.Intern("C");
  for (size_t i = 0; i < n; ++i) {
    AttributeId a = u.Intern(AttrName("A", i + 1));
    RelationScheme r;
    r.name = 'R' + std::to_string(i + 1);
    r.attrs = AttributeSet{c, a};
    r.keys = {AttributeSet{c}};
    scheme.AddRelation(std::move(r));
  }
  return scheme;
}

DatabaseScheme MakeTreeScheme(size_t nodes, double bidirectional,
                              uint64_t seed) {
  IRD_CHECK(nodes >= 2);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  DatabaseScheme scheme = DatabaseScheme::Create();
  auto& u = *scheme.universe_ptr();
  std::vector<AttributeId> attr(nodes);
  for (size_t i = 0; i < nodes; ++i) {
    attr[i] = u.Intern(AttrName("N", i + 1));
  }
  // Random recursive tree: node i attaches to a uniform earlier node.
  for (size_t child = 1; child < nodes; ++child) {
    size_t parent = rng() % child;
    RelationScheme r;
    r.name = 'E' + std::to_string(child);
    r.attrs = AttributeSet{attr[parent], attr[child]};
    r.keys = {AttributeSet{attr[parent]}};
    if (coin(rng) < bidirectional) {
      r.keys.push_back(AttributeSet{attr[child]});
    }
    scheme.AddRelation(std::move(r));
  }
  return scheme;
}

namespace {

// The universal tuple of entity `e`: globally fresh values per attribute.
Value EntityValue(size_t entity, size_t universe_size, AttributeId a) {
  return static_cast<Value>(entity * universe_size + a + 1);
}

PartialTuple ProjectEntity(const DatabaseScheme& scheme, size_t rel,
                           size_t entity) {
  const AttributeSet& attrs = scheme.relation(rel).attrs;
  std::vector<Value> values;
  values.reserve(attrs.Count());
  attrs.ForEach([&](AttributeId a) {
    values.push_back(EntityValue(entity, scheme.universe().size(), a));
  });
  return PartialTuple(attrs, std::move(values));
}

}  // namespace

DatabaseState MakeConsistentState(const DatabaseScheme& scheme,
                                  const StateGenOptions& options) {
  DatabaseState state(scheme);
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (size_t e = 0; e < options.entities; ++e) {
    bool placed = false;
    for (size_t rel = 0; rel < scheme.size(); ++rel) {
      if (coin(rng) <= options.coverage) {
        state.mutable_relation(rel).AddUnique(
            ProjectEntity(scheme, rel, e));
        placed = true;
      }
    }
    if (!placed) {
      // Guarantee every entity appears somewhere, so insert streams can
      // reference it.
      size_t rel = rng() % scheme.size();
      state.mutable_relation(rel).AddUnique(ProjectEntity(scheme, rel, e));
    }
  }
  return state;
}

std::vector<InsertInstance> MakeInsertStream(const DatabaseScheme& scheme,
                                             const DatabaseState& state,
                                             size_t count,
                                             double conflict_rate,
                                             uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  // Entities already materialized per relation (rel -> entity ids), for
  // conflicting inserts that must collide with existing key values.
  std::vector<std::vector<size_t>> present(scheme.size());
  size_t universe_size = scheme.universe().size();
  for (size_t rel = 0; rel < scheme.size(); ++rel) {
    for (const PartialTuple& t : state.relation(rel).tuples()) {
      AttributeId first = t.attrs().First();
      size_t entity =
          static_cast<size_t>(t.At(first) - 1 - first) / universe_size;
      present[rel].push_back(entity);
    }
  }
  size_t fresh_entity = 1u << 20;  // far above the state's entity ids
  std::vector<InsertInstance> stream;
  stream.reserve(count);
  for (size_t n = 0; n < count; ++n) {
    size_t rel = rng() % scheme.size();
    bool conflict = coin(rng) < conflict_rate && !present[rel].empty() &&
                    scheme.relation(rel).attrs.Count() >
                        scheme.relation(rel).keys.front().Count();
    if (conflict) {
      // Key values of an existing entity, fresh values elsewhere: the new
      // tuple contradicts that entity's materialized tuple.
      size_t victim = present[rel][rng() % present[rel].size()];
      const RelationScheme& r = scheme.relation(rel);
      const AttributeSet& key = r.keys.front();
      std::vector<Value> values;
      r.attrs.ForEach([&](AttributeId a) {
        values.push_back(key.Contains(a)
                             ? EntityValue(victim, universe_size, a)
                             : EntityValue(fresh_entity, universe_size, a));
      });
      stream.push_back(InsertInstance{
          rel, PartialTuple(r.attrs, std::move(values)), false});
      ++fresh_entity;
    } else {
      stream.push_back(InsertInstance{
          rel, ProjectEntity(scheme, rel, fresh_entity), true});
      ++fresh_entity;
    }
  }
  return stream;
}

DatabaseScheme MakeRandomScheme(const RandomSchemeOptions& options) {
  IRD_CHECK(options.universe_size >= 2);
  IRD_CHECK(options.min_arity >= 2 &&
            options.min_arity <= options.max_arity &&
            options.max_arity <= options.universe_size);
  std::mt19937_64 rng(options.seed);
  DatabaseScheme scheme = DatabaseScheme::Create();
  auto& u = *scheme.universe_ptr();
  std::vector<AttributeId> attrs(options.universe_size);
  for (size_t i = 0; i < options.universe_size; ++i) {
    attrs[i] = u.Intern(AttrName("A", i + 1));
  }
  std::vector<AttributeSet> seen;
  std::vector<AttributeSet> attr_sets;
  for (size_t rel = 0; rel < options.relations; ++rel) {
    AttributeSet set;
    for (int attempt = 0; attempt < 64; ++attempt) {
      set = AttributeSet();
      size_t arity = options.min_arity +
                     rng() % (options.max_arity - options.min_arity + 1);
      // Round-robin anchor guarantees the union covers the universe.
      set.Add(attrs[rel % options.universe_size]);
      while (set.Count() < arity) {
        set.Add(attrs[rng() % options.universe_size]);
      }
      bool duplicate = false;
      for (const AttributeSet& s : seen) {
        if (s == set) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) break;
    }
    seen.push_back(set);
    attr_sets.push_back(set);
  }
  // The union of the relation schemes must equal the universe: stuff any
  // uncovered attribute into a random relation.
  AttributeSet covered;
  for (const AttributeSet& s : attr_sets) covered.UnionWith(s);
  for (AttributeId a : attrs) {
    if (!covered.Contains(a)) {
      attr_sets[rng() % attr_sets.size()].Add(a);
    }
  }
  // Stuffing can create duplicate attribute sets; perturb later duplicates
  // by widening them (bounded retries; ties are left as-is in the rare
  // saturated case and show up in Validate()).
  for (size_t i = 0; i < attr_sets.size(); ++i) {
    for (size_t j = i + 1; j < attr_sets.size(); ++j) {
      int retries = 8;
      while (attr_sets[i] == attr_sets[j] &&
             attr_sets[j].Count() < options.universe_size && retries-- > 0) {
        attr_sets[j].Add(attrs[rng() % options.universe_size]);
      }
    }
  }
  for (size_t rel = 0; rel < attr_sets.size(); ++rel) {
    RelationScheme r;
    r.name = 'R' + std::to_string(rel + 1);
    r.attrs = attr_sets[rel];
    // Random initial key: a nonempty random subset.
    AttributeSet key;
    std::vector<AttributeId> members = r.attrs.ToVector();
    for (AttributeId a : members) {
      if (rng() % 2 == 0) key.Add(a);
    }
    if (key.Empty()) key.Add(members[rng() % members.size()]);
    r.keys = {key};
    scheme.AddRelation(std::move(r));
  }
  // Make every declared key minimal wrt the global F. Shrinking one key can
  // invalidate another's minimality, so iterate to a fixpoint (keys only
  // shrink, so this terminates).
  bool changed = true;
  while (changed) {
    changed = false;
    const FdSet f = scheme.key_dependencies();
    DatabaseScheme next(scheme.universe_ptr());
    for (const RelationScheme& r : scheme.relations()) {
      RelationScheme shrunk = r;
      AttributeSet reduced = ReduceToKey(r.keys.front(), r.attrs, f);
      if (reduced != r.keys.front()) changed = true;
      shrunk.keys = {reduced};
      next.AddRelation(std::move(shrunk));
    }
    scheme = std::move(next);
  }
  // Optional second candidate keys. An addition changes F, which can
  // invalidate another declared key's minimality — verify everything and
  // roll back the addition if so.
  if (options.multi_key_prob > 0) {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    for (size_t rel = 0; rel < scheme.size(); ++rel) {
      if (coin(rng) >= options.multi_key_prob) continue;
      std::vector<AttributeSet> candidates = FindCandidateKeys(
          scheme.relation(rel).attrs, scheme.key_dependencies());
      std::vector<AttributeSet> fresh;
      for (const AttributeSet& c : candidates) {
        if (c != scheme.relation(rel).keys.front()) fresh.push_back(c);
      }
      if (fresh.empty()) continue;
      // Rebuild with the extra key (DatabaseScheme relations are
      // append-only, so copy relations across).
      DatabaseScheme next(scheme.universe_ptr());
      for (size_t r2 = 0; r2 < scheme.size(); ++r2) {
        RelationScheme r = scheme.relation(r2);
        if (r2 == rel) {
          r.keys.push_back(fresh[rng() % fresh.size()]);
        }
        next.AddRelation(std::move(r));
      }
      if (next.Validate().ok()) {
        scheme = std::move(next);
      }
    }
  }
  return scheme;
}

}  // namespace ird
