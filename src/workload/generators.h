// Parameterized scheme and state generators driving the test-suite property
// sweeps and the benchmark experiments (EXPERIMENTS.md). Every generator
// documents which class the output lands in; the containment tests of
// Section 5 rely on these guarantees (and re-verify them).

#ifndef IRD_WORKLOAD_GENERATORS_H_
#define IRD_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <random>
#include <vector>

#include "relation/database_state.h"
#include "schema/database_scheme.h"

namespace ird {

// --- Scheme families -------------------------------------------------------

// Example 9 generalized: a chain R_i(A_i A_{i+1}) with keys {A_i} and
// {A_{i+1}}, i = 1..n. Key-equivalent, split-free (all keys are single
// attributes), hence ctm. n >= 1.
DatabaseScheme MakeChainScheme(size_t n);

// Example 5 generalized: universe {A, E, D, B_1..B_k}; relations
//   R(A E)                keys {A}, {E}
//   R(A B_i), R(E B_i)    keys {A} / {E}            (i = 1..k)
//   R(B_1..B_k D)         keys {B_1..B_k}, {D}
//   R(D A)                keys {D}, {A}
// Key-equivalent; the key {B_1..B_k} is split (coverable by the AB_i/EB_i
// schemes, none of which contains it), so the scheme is NOT ctm. k >= 2.
DatabaseScheme MakeSplitScheme(size_t k);

// A cover-embedding BCNF *independent* scheme: a "snowflake" of m
// relations R_i(K_i K_{i+1} P_i) with single key {K_i} (the last relation
// has no K_{m+1}). Satisfies the uniqueness condition; every KEP block is a
// singleton. m >= 1.
DatabaseScheme MakeIndependentScheme(size_t m);

// An independence-reducible scheme with `blocks` key-equivalent blocks of
// `block_size` relations each (block i is a MakeChainScheme-style cycle on
// its own attributes), linked by bridge attributes: block i's first scheme
// carries a one-way key dependency onto block i+1's bridge attribute
// (as Example 11 links ABCD to DEFG through D). blocks >= 1, block_size >= 2.
DatabaseScheme MakeBlockScheme(size_t blocks, size_t block_size);

// A γ-acyclic cover-embedding BCNF scheme: a star R_i(C A_i) with central
// key attribute C, keys {C} on every relation... plus the center R_0(C).
// (A tree-shaped hypergraph; γ-acyclic.) n >= 1.
DatabaseScheme MakeStarScheme(size_t n);

// A random tree-shaped scheme: attributes are tree nodes, relations are the
// parent-child edges {X_parent, X_child}. Each edge independently declares
// either both singleton keys (probability `bidirectional`) or only the
// parent key. Tree hypergraphs of 2-attribute edges are Berge-acyclic,
// hence γ-acyclic; singleton keys keep the scheme BCNF. By Theorem 5.2
// every output is independence-reducible — the Theorem 5.2 sweep family.
// nodes >= 2.
DatabaseScheme MakeTreeScheme(size_t nodes, double bidirectional,
                              uint64_t seed);

// --- States ----------------------------------------------------------------

// Options for consistent-state generation.
struct StateGenOptions {
  // Number of "universal entities": each contributes projections of one
  // fully-distinct universal tuple, so the union always has a weak instance.
  size_t entities = 100;
  // Probability that an entity materializes its projection onto any given
  // relation (1.0 = every relation gets every entity's projection).
  double coverage = 0.7;
  uint64_t seed = 42;
};

// A consistent state on `scheme`: for each entity, a universal tuple with
// globally fresh values is projected onto a random subset of the relations.
// Consistency is by construction (the universal tuples form a weak
// instance); the chase genuinely merges the per-entity fragments.
DatabaseState MakeConsistentState(const DatabaseScheme& scheme,
                                  const StateGenOptions& options);

// A stream of `count` insert instances for maintenance experiments: each is
// (relation index, tuple). With probability `conflict_rate` the tuple
// reuses the key values of an existing entity but conflicting non-key
// values (an inconsistent insert); otherwise it projects a fresh entity
// (a consistent insert).
struct InsertInstance {
  size_t rel;
  PartialTuple tuple;
  bool expected_consistent;
};
std::vector<InsertInstance> MakeInsertStream(const DatabaseScheme& scheme,
                                             const DatabaseState& state,
                                             size_t count,
                                             double conflict_rate,
                                             uint64_t seed);

// --- Random schemes (for the class census) ----------------------------------

struct RandomSchemeOptions {
  size_t universe_size = 8;
  size_t relations = 5;
  size_t min_arity = 2;
  size_t max_arity = 4;
  // Probability that a relation tries to declare a second candidate key
  // (additions that would invalidate another declared key's minimality are
  // rolled back, so Validate() always passes).
  double multi_key_prob = 0.0;
  uint64_t seed = 1;
};

// A random database scheme: random attribute sets, one random minimal key
// each (declared keys are reduced against the global F until minimal, so
// Validate() passes). The class landscape of these schemes is what the
// census experiment (E5) measures.
DatabaseScheme MakeRandomScheme(const RandomSchemeOptions& options);

}  // namespace ird

#endif  // IRD_WORKLOAD_GENERATORS_H_
