#include "io/text_format.h"

#include <algorithm>
#include <sstream>

namespace ird {

Value ValueDictionary::Intern(std::string_view token) {
  auto it = by_token_.find(std::string(token));
  if (it != by_token_.end()) return it->second;
  Value v = static_cast<Value>(tokens_.size());
  tokens_.emplace_back(token);
  by_token_.emplace(tokens_.back(), v);
  return v;
}

const std::string& ValueDictionary::Name(Value v) const {
  static const std::string kUnknown = "?";
  if (v < 0 || static_cast<size_t>(v) >= tokens_.size()) return kUnknown;
  return tokens_[static_cast<size_t>(v)];
}

DatabaseState ParsedDatabase::MakeState() const {
  DatabaseState state(scheme);
  for (const auto& [rel, values] : inserts) {
    state.mutable_relation(rel).AddUnique(
        PartialTuple(scheme.relation(rel).attrs, values));
  }
  return state;
}

namespace {

// Splits a line into tokens; parentheses are their own tokens.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (c == '(' || c == ')') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      tokens.push_back(std::string(1, c));
    } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

// Parses "( tok tok ... )" starting at *pos; advances *pos past ')'.
Result<std::vector<std::string>> ParseGroup(
    const std::vector<std::string>& tokens, size_t* pos) {
  if (*pos >= tokens.size() || tokens[*pos] != "(") {
    return ParseError("expected '('");
  }
  ++*pos;
  std::vector<std::string> group;
  while (*pos < tokens.size() && tokens[*pos] != ")") {
    group.push_back(tokens[*pos]);
    ++*pos;
  }
  if (*pos >= tokens.size()) return ParseError("unterminated '('");
  ++*pos;  // consume ')'
  if (group.empty()) return ParseError("empty attribute group");
  return group;
}

}  // namespace

Result<ParsedDatabase> ParseDatabaseText(std::string_view text) {
  ParsedDatabase db;
  std::istringstream stream{std::string(text)};
  std::string line;
  size_t line_no = 0;
  auto fail = [&line_no](const std::string& message) {
    return ParseError("line " + std::to_string(line_no) + ": " + message);
  };
  while (std::getline(stream, line)) {
    ++line_no;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "relation") {
      if (tokens.size() < 2) return fail("relation needs a name");
      RelationScheme r;
      r.name = tokens[1];
      size_t pos = 2;
      Result<std::vector<std::string>> attrs = ParseGroup(tokens, &pos);
      if (!attrs.ok()) return fail(attrs.status().message());
      std::vector<AttributeId> order;
      for (const std::string& a : *attrs) {
        AttributeId id = db.scheme.universe_ptr()->Intern(a);
        if (r.attrs.Contains(id)) return fail("duplicate attribute " + a);
        r.attrs.Add(id);
        order.push_back(id);
      }
      if (pos >= tokens.size() || tokens[pos] != "keys") {
        return fail("expected 'keys'");
      }
      ++pos;
      while (pos < tokens.size()) {
        Result<std::vector<std::string>> key = ParseGroup(tokens, &pos);
        if (!key.ok()) return fail(key.status().message());
        AttributeSet key_set;
        for (const std::string& a : *key) {
          Result<AttributeId> id = db.scheme.universe().Find(a);
          if (!id.ok() || !r.attrs.Contains(*id)) {
            return fail("key attribute " + a + " not in relation");
          }
          key_set.Add(*id);
        }
        r.keys.push_back(key_set);
      }
      if (r.keys.empty()) return fail("relation needs at least one key");
      db.scheme.AddRelation(std::move(r));
      db.declared_order.push_back(std::move(order));
    } else if (tokens[0] == "insert") {
      if (tokens.size() < 2) return fail("insert needs a relation name");
      Result<size_t> rel = db.scheme.FindRelation(tokens[1]);
      if (!rel.ok()) return fail("unknown relation " + tokens[1]);
      const std::vector<AttributeId>& order = db.declared_order[*rel];
      if (tokens.size() - 2 != order.size()) {
        return fail("insert arity mismatch for " + tokens[1]);
      }
      // Pair written-order values with their attributes, then sort into
      // attribute-id order as tuples store them.
      std::vector<std::pair<AttributeId, Value>> pairs;
      for (size_t i = 0; i < order.size(); ++i) {
        pairs.emplace_back(order[i], db.values.Intern(tokens[2 + i]));
      }
      std::sort(pairs.begin(), pairs.end());
      std::vector<Value> values;
      values.reserve(pairs.size());
      for (const auto& [attr, value] : pairs) values.push_back(value);
      db.inserts.emplace_back(*rel, std::move(values));
    } else {
      return fail("unknown directive '" + tokens[0] + "'");
    }
  }
  if (db.scheme.size() == 0) return ParseError("no relations declared");
  return db;
}

std::string FormatScheme(const DatabaseScheme& scheme) {
  std::string out;
  for (const RelationScheme& r : scheme.relations()) {
    out += "relation " + r.name + " (";
    r.attrs.ForEach([&](AttributeId a) {
      out += " " + scheme.universe().Name(a);
    });
    out += " ) keys";
    for (const AttributeSet& key : r.keys) {
      out += " (";
      key.ForEach(
          [&](AttributeId a) { out += " " + scheme.universe().Name(a); });
      out += " )";
    }
    out += "\n";
  }
  return out;
}

std::string FormatState(const DatabaseState& state,
                        const ValueDictionary& dict) {
  std::string out;
  for (size_t rel = 0; rel < state.relation_count(); ++rel) {
    for (const PartialTuple& t : state.relation(rel).tuples()) {
      out += "insert " + state.scheme().relation(rel).name;
      for (Value v : t.values()) {
        const std::string& name = dict.Name(v);
        out += " " + (name == "?" ? std::to_string(v) : name);
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace ird
