// A small line-oriented text format for schemes and states, used by the
// scheme_tool example and by tests that read fixtures. Grammar (one
// directive per line, '#' starts a comment):
//
//   relation <name> ( <attr> ... ) keys ( <attr> ... ) [ ( <attr> ... ) ... ]
//   insert <relation-name> <value-token> ...
//
// Attribute names become Universe entries; value tokens are interned into a
// ValueDictionary so states print back with their original names.

#ifndef IRD_IO_TEXT_FORMAT_H_
#define IRD_IO_TEXT_FORMAT_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "relation/database_state.h"
#include "schema/database_scheme.h"

namespace ird {

// Bidirectional token <-> Value mapping for readable constants.
class ValueDictionary {
 public:
  Value Intern(std::string_view token);
  const std::string& Name(Value v) const;
  bool Has(std::string_view token) const {
    return by_token_.find(std::string(token)) != by_token_.end();
  }
  size_t size() const { return tokens_.size(); }

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, Value> by_token_;
};

struct ParsedDatabase {
  DatabaseScheme scheme = DatabaseScheme::Create();
  // Attribute order as written in each relation's declaration (insert lines
  // list values in that order; tuples store them in attribute-id order).
  std::vector<std::vector<AttributeId>> declared_order;
  // (relation index, values in attribute-id order).
  std::vector<std::pair<size_t, std::vector<Value>>> inserts;
  ValueDictionary values;

  // The parsed state (scheme + all inserts applied).
  DatabaseState MakeState() const;
};

// Parses the text format. All `relation` lines must precede `insert` lines.
Result<ParsedDatabase> ParseDatabaseText(std::string_view text);

// Renders a scheme in the parseable format.
std::string FormatScheme(const DatabaseScheme& scheme);

// Renders a state in the parseable format using `dict` for value names
// (values missing from the dictionary print as raw integers).
std::string FormatState(const DatabaseState& state,
                        const ValueDictionary& dict);

}  // namespace ird

#endif  // IRD_IO_TEXT_FORMAT_H_
