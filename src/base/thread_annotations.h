// Portable wrappers over Clang's capability (thread-safety) attributes.
// Annotating data with the mutex that guards it, and functions with the
// locks they require, turns the locking discipline documented in comments
// into facts the compiler checks: a clang build with -Wthread-safety (on
// by default here whenever the compiler is Clang, and fatal under
// IRD_STRICT_WARNINGS) rejects any access to IRD_GUARDED_BY data without
// the named capability held, any IRD_REQUIRES call without it, and any
// release of a capability the caller does not hold. On compilers without
// the attributes (GCC) every macro expands to nothing, so annotated code
// is plain C++ everywhere else.
//
// The annotated primitives that carry these capabilities are ird::Mutex /
// ird::MutexLock / ird::CondVar in base/mutex.h. The misuse patterns the
// analysis rejects are pinned as negative-compile tests in
// tests/thread_safety_compile_test/; the full gate catalogue is
// docs/STATIC_ANALYSIS.md.

#ifndef IRD_BASE_THREAD_ANNOTATIONS_H_
#define IRD_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define IRD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IRD_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// --- Capability declarations (types) ---------------------------------

// Marks a type as a capability ("mutex"): it can be held, acquired and
// released, and other annotations may name instances of it.
#define IRD_CAPABILITY(name) IRD_THREAD_ANNOTATION(capability(name))

// Marks an RAII type whose constructor acquires and destructor releases a
// capability (ird::MutexLock).
#define IRD_SCOPED_CAPABILITY IRD_THREAD_ANNOTATION(scoped_lockable)

// --- Data annotations -------------------------------------------------

// The declared field may only be read or written while holding `x`.
#define IRD_GUARDED_BY(x) IRD_THREAD_ANNOTATION(guarded_by(x))

// The pointee of the declared pointer field is guarded by `x` (the pointer
// itself is not).
#define IRD_PT_GUARDED_BY(x) IRD_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering edges, checked when both sides are annotated.
#define IRD_ACQUIRED_BEFORE(...) \
  IRD_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define IRD_ACQUIRED_AFTER(...) \
  IRD_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// --- Function annotations ---------------------------------------------

// The caller must hold the named capabilities (exclusively / shared).
#define IRD_REQUIRES(...) \
  IRD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IRD_REQUIRES_SHARED(...) \
  IRD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// The function acquires / releases the named capabilities itself.
#define IRD_ACQUIRE(...) \
  IRD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IRD_ACQUIRE_SHARED(...) \
  IRD_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define IRD_RELEASE(...) \
  IRD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define IRD_RELEASE_SHARED(...) \
  IRD_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// The function acquires the capability iff it returns `result`.
#define IRD_TRY_ACQUIRE(result, ...) \
  IRD_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

// The caller must NOT hold the named capabilities (deadlock guard for
// functions that acquire them internally).
#define IRD_EXCLUDES(...) IRD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Asserts (without acquiring) that the capability is held — for runtime
// facts the analysis cannot see, e.g. "only the owning thread runs this".
#define IRD_ASSERT_CAPABILITY(x) \
  IRD_THREAD_ANNOTATION(assert_capability(x))

// The function returns a reference to the named capability (accessors that
// expose a member mutex, e.g. ird::Mutex::native()).
#define IRD_RETURN_CAPABILITY(x) IRD_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use needs a
// comment explaining which invariant the analysis cannot express.
#define IRD_NO_THREAD_SAFETY_ANALYSIS \
  IRD_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // IRD_BASE_THREAD_ANNOTATIONS_H_
