// AttributeSet: a set of attributes of the universe U, stored as a dynamic
// bitset. This is the workhorse value type of the whole library — schemes,
// FD sides, closures and keys are all AttributeSets.
//
// Sets self-size: operations between sets of different logical capacity are
// well-defined (missing high words are treated as zero), so callers never
// plumb the universe size around. Trailing zero words are normalized away,
// which makes equality and hashing structural.

#ifndef IRD_BASE_ATTRIBUTE_SET_H_
#define IRD_BASE_ATTRIBUTE_SET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/check.h"

namespace ird {

// Index of an attribute within a Universe.
using AttributeId = uint32_t;

class AttributeSet {
 public:
  // The empty set.
  AttributeSet() = default;
  // The set {ids...}.
  AttributeSet(std::initializer_list<AttributeId> ids) {
    for (AttributeId id : ids) Add(id);
  }

  AttributeSet(const AttributeSet&) = default;
  AttributeSet& operator=(const AttributeSet&) = default;
  AttributeSet(AttributeSet&&) = default;
  AttributeSet& operator=(AttributeSet&&) = default;

  // The set {0, 1, ..., n-1}; with a Universe this is "all of U".
  static AttributeSet AllUpTo(AttributeId n);

  // Element operations.
  void Add(AttributeId id);
  void Remove(AttributeId id);
  bool Contains(AttributeId id) const;

  // Set algebra (in place). Return *this to allow chaining.
  AttributeSet& UnionWith(const AttributeSet& other);
  AttributeSet& IntersectWith(const AttributeSet& other);
  AttributeSet& SubtractAll(const AttributeSet& other);

  // Set algebra (value-returning).
  AttributeSet Union(const AttributeSet& other) const;
  AttributeSet Intersect(const AttributeSet& other) const;
  AttributeSet Minus(const AttributeSet& other) const;

  // Predicates.
  bool Empty() const { return words_.empty(); }
  bool IsSubsetOf(const AttributeSet& other) const;
  bool IsProperSubsetOf(const AttributeSet& other) const;
  bool IsSupersetOf(const AttributeSet& other) const {
    return other.IsSubsetOf(*this);
  }
  bool Intersects(const AttributeSet& other) const;
  // Neither a subset nor a superset of `other` (the paper's "incomparable").
  bool IsIncomparableWith(const AttributeSet& other) const {
    return !IsSubsetOf(other) && !other.IsSubsetOf(*this);
  }

  // Number of attributes in the set.
  size_t Count() const;

  // Smallest element; the set must be nonempty.
  AttributeId First() const;

  // Number of elements strictly smaller than id (the position id would have
  // in ToVector()). id need not be a member.
  size_t Rank(AttributeId id) const;

  // All elements in increasing order.
  std::vector<AttributeId> ToVector() const;

  // Calls `fn(AttributeId)` for each element in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        fn(static_cast<AttributeId>(w * 64 + bit));
        word &= word - 1;
      }
    }
  }

  bool operator==(const AttributeSet& other) const {
    return words_ == other.words_;
  }
  bool operator!=(const AttributeSet& other) const {
    return !(*this == other);
  }
  // Lexicographic-by-word total order, usable for std::map / sorting.
  bool operator<(const AttributeSet& other) const;

  // FNV-1a style hash for unordered containers.
  size_t Hash() const;

  // Debug form "{0,3,7}".
  std::string DebugString() const;

 private:
  void Normalize();  // drops trailing zero words

  std::vector<uint64_t> words_;
};

// std::hash adapter.
struct AttributeSetHash {
  size_t operator()(const AttributeSet& s) const { return s.Hash(); }
};

}  // namespace ird

#endif  // IRD_BASE_ATTRIBUTE_SET_H_
