// AttributeSet: a set of attributes of the universe U, stored as a dynamic
// bitset. This is the workhorse value type of the whole library — schemes,
// FD sides, closures and keys are all AttributeSets.
//
// Sets self-size: operations between sets of different logical capacity are
// well-defined (missing high words are treated as zero), so callers never
// plumb the universe size around. Trailing zero words are normalized away,
// which makes equality and hashing structural.
//
// Storage is a small-buffer bitset: up to kInlineWords (2) words — 128
// attributes, which covers every corpus anchor and paper example — live
// inline with no heap allocation; larger universes spill to a heap buffer.
// Equality, ordering and hashing read only the normalized word prefix, so
// an inline set and a spilled-then-shrunk set with equal contents compare
// and hash identically regardless of where their words live.

#ifndef IRD_BASE_ATTRIBUTE_SET_H_
#define IRD_BASE_ATTRIBUTE_SET_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <string>
#include <vector>

#include "base/check.h"

namespace ird {

// Index of an attribute within a Universe.
using AttributeId = uint32_t;

class AttributeSet {
 public:
  // Words stored inline before spilling to the heap. Two words = 128
  // attributes, enough for everything the corpus and the paper exercise.
  static constexpr uint32_t kInlineWords = 2;

  // The empty set.
  AttributeSet() = default;
  // The set {ids...}.
  AttributeSet(std::initializer_list<AttributeId> ids) {
    for (AttributeId id : ids) Add(id);
  }

  AttributeSet(const AttributeSet& other) { CopyFrom(other); }
  AttributeSet& operator=(const AttributeSet& other) {
    if (this != &other) {
      ReleaseHeap();
      CopyFrom(other);
    }
    return *this;
  }
  AttributeSet(AttributeSet&& other) noexcept { StealFrom(other); }
  AttributeSet& operator=(AttributeSet&& other) noexcept {
    if (this != &other) {
      ReleaseHeap();
      StealFrom(other);
    }
    return *this;
  }
  ~AttributeSet() { ReleaseHeap(); }

  // The set {0, 1, ..., n-1}; with a Universe this is "all of U".
  static AttributeSet AllUpTo(AttributeId n);

  // Element operations.
  void Add(AttributeId id) {
    const uint32_t w = id / 64;
    if (w >= size_) ExtendTo(w + 1);
    MutableWords()[w] |= uint64_t{1} << (id % 64);
  }
  void Remove(AttributeId id) {
    const uint32_t w = id / 64;
    if (w >= size_) return;
    MutableWords()[w] &= ~(uint64_t{1} << (id % 64));
    Normalize();
  }
  bool Contains(AttributeId id) const {
    const uint32_t w = id / 64;
    return w < size_ && ((words()[w] >> (id % 64)) & 1) != 0;
  }

  // Set algebra (in place). Return *this to allow chaining.
  AttributeSet& UnionWith(const AttributeSet& other) {
    if (other.size_ > size_) ExtendTo(other.size_);
    uint64_t* w = MutableWords();
    const uint64_t* o = other.words();
    for (uint32_t i = 0; i < other.size_; ++i) w[i] |= o[i];
    return *this;
  }
  AttributeSet& IntersectWith(const AttributeSet& other) {
    uint64_t* w = MutableWords();
    const uint64_t* o = other.words();
    if (other.size_ < size_) size_ = other.size_;
    for (uint32_t i = 0; i < size_; ++i) w[i] &= o[i];
    Normalize();
    return *this;
  }
  AttributeSet& SubtractAll(const AttributeSet& other) {
    uint64_t* w = MutableWords();
    const uint64_t* o = other.words();
    const uint32_t n = size_ < other.size_ ? size_ : other.size_;
    for (uint32_t i = 0; i < n; ++i) w[i] &= ~o[i];
    Normalize();
    return *this;
  }

  // Set algebra (value-returning).
  AttributeSet Union(const AttributeSet& other) const {
    AttributeSet out = *this;
    out.UnionWith(other);
    return out;
  }
  AttributeSet Intersect(const AttributeSet& other) const {
    AttributeSet out = *this;
    out.IntersectWith(other);
    return out;
  }
  AttributeSet Minus(const AttributeSet& other) const {
    AttributeSet out = *this;
    out.SubtractAll(other);
    return out;
  }

  // Predicates.
  bool Empty() const { return size_ == 0; }
  bool IsSubsetOf(const AttributeSet& other) const {
    if (size_ > other.size_) return false;
    const uint64_t* w = words();
    const uint64_t* o = other.words();
    for (uint32_t i = 0; i < size_; ++i) {
      if ((w[i] & ~o[i]) != 0) return false;
    }
    return true;
  }
  bool IsProperSubsetOf(const AttributeSet& other) const {
    return IsSubsetOf(other) && *this != other;
  }
  bool IsSupersetOf(const AttributeSet& other) const {
    return other.IsSubsetOf(*this);
  }
  bool Intersects(const AttributeSet& other) const {
    const uint32_t n = size_ < other.size_ ? size_ : other.size_;
    const uint64_t* w = words();
    const uint64_t* o = other.words();
    for (uint32_t i = 0; i < n; ++i) {
      if ((w[i] & o[i]) != 0) return true;
    }
    return false;
  }
  // Neither a subset nor a superset of `other` (the paper's "incomparable").
  bool IsIncomparableWith(const AttributeSet& other) const {
    return !IsSubsetOf(other) && !other.IsSubsetOf(*this);
  }

  // Number of attributes in the set.
  size_t Count() const;

  // Smallest element; the set must be nonempty.
  AttributeId First() const;

  // Number of elements strictly smaller than id (the position id would have
  // in ToVector()). id need not be a member.
  size_t Rank(AttributeId id) const;

  // All elements in increasing order.
  std::vector<AttributeId> ToVector() const;

  // Calls `fn(AttributeId)` for each element in increasing order. Together
  // with the iterator below, this is the allocation-free replacement for
  // ToVector() on hot paths.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const uint64_t* w = words();
    for (uint32_t i = 0; i < size_; ++i) {
      uint64_t word = w[i];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        fn(static_cast<AttributeId>(i * 64 + bit));
        word &= word - 1;
      }
    }
  }

  // Forward iterator over the elements in increasing order, for range-for
  // without materializing a vector. The iterator reads the set's word
  // buffer; mutating or destroying the set invalidates it (leaving the
  // loop with `break` immediately after a mutation is fine).
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = AttributeId;
    using difference_type = std::ptrdiff_t;
    using pointer = const AttributeId*;
    using reference = AttributeId;

    const_iterator() = default;

    AttributeId operator*() const {
      return static_cast<AttributeId>(word_ * 64 + __builtin_ctzll(bits_));
    }
    const_iterator& operator++() {
      bits_ &= bits_ - 1;
      SkipEmptyWords();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator out = *this;
      ++*this;
      return out;
    }
    bool operator==(const const_iterator& other) const {
      return word_ == other.word_ && bits_ == other.bits_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    friend class AttributeSet;
    const_iterator(const uint64_t* w, uint32_t n, uint32_t word)
        : words_(w), nwords_(n), word_(word),
          bits_(word < n ? w[word] : 0) {
      SkipEmptyWords();
    }
    void SkipEmptyWords() {
      while (bits_ == 0 && word_ + 1 < nwords_) {
        bits_ = words_[++word_];
      }
      if (bits_ == 0) word_ = nwords_;
    }

    const uint64_t* words_ = nullptr;
    uint32_t nwords_ = 0;
    uint32_t word_ = 0;
    uint64_t bits_ = 0;
  };

  const_iterator begin() const { return const_iterator(words(), size_, 0); }
  const_iterator end() const { return const_iterator(words(), size_, size_); }

  bool operator==(const AttributeSet& other) const {
    if (size_ != other.size_) return false;
    const uint64_t* w = words();
    const uint64_t* o = other.words();
    for (uint32_t i = 0; i < size_; ++i) {
      if (w[i] != o[i]) return false;
    }
    return true;
  }
  bool operator!=(const AttributeSet& other) const {
    return !(*this == other);
  }
  // Lexicographic-by-word total order, usable for std::map / sorting.
  bool operator<(const AttributeSet& other) const;

  // FNV-1a style hash for unordered containers.
  size_t Hash() const;

  // Debug form "{0,3,7}".
  std::string DebugString() const;

 private:
  // Representation: `size_` normalized words (trailing zero words dropped)
  // living inline when capacity_ == kInlineWords, else in rep_.heap (with
  // capacity_ > kInlineWords allocated words). A spilled set keeps its heap
  // buffer even if normalization shrinks it back under the inline limit —
  // the logical prefix is all that equality/hash/order ever read.
  const uint64_t* words() const {
    return capacity_ == kInlineWords ? rep_.inline_words : rep_.heap;
  }
  uint64_t* MutableWords() {
    return capacity_ == kInlineWords ? rep_.inline_words : rep_.heap;
  }

  // Grows the logical size to `nwords`, zero-filling the new words
  // (spilling to the heap if they exceed capacity).
  void ExtendTo(uint32_t nwords) {
    if (nwords <= capacity_) {
      uint64_t* w = MutableWords();
      for (uint32_t i = size_; i < nwords; ++i) w[i] = 0;
      size_ = nwords;
    } else {
      SpillTo(nwords);
    }
  }
  void SpillTo(uint32_t nwords);  // slow path: (re)allocate the heap buffer

  void Normalize() {
    const uint64_t* w = words();
    while (size_ > 0 && w[size_ - 1] == 0) --size_;
  }

  void ReleaseHeap() {
    if (capacity_ > kInlineWords) delete[] rep_.heap;
  }
  void CopyFrom(const AttributeSet& other);  // assumes *this owns no heap
  void StealFrom(AttributeSet& other) {      // assumes *this owns no heap
    size_ = other.size_;
    capacity_ = other.capacity_;
    rep_ = other.rep_;
    other.size_ = 0;
    other.capacity_ = kInlineWords;
  }

  uint32_t size_ = 0;               // normalized word count
  uint32_t capacity_ = kInlineWords;  // == kInlineWords iff stored inline
  union Rep {
    uint64_t inline_words[kInlineWords];
    uint64_t* heap;
  } rep_;
};

// std::hash adapter.
struct AttributeSetHash {
  size_t operator()(const AttributeSet& s) const { return s.Hash(); }
};

}  // namespace ird

#endif  // IRD_BASE_ATTRIBUTE_SET_H_
