// Annotated synchronization primitives: ird::Mutex, ird::MutexLock and
// ird::CondVar are zero-overhead wrappers over std::mutex /
// std::condition_variable that carry the capability attributes from
// base/thread_annotations.h. Data guarded by a Mutex is declared with
// IRD_GUARDED_BY(mu_); private helpers that assume the lock are declared
// with IRD_REQUIRES(mu_); a clang -Wthread-safety build then proves every
// access site holds the right lock. Everything is inline forwarding — a
// Release build compiles each wrapper call to the bare std::mutex
// operation (no virtuals, no state beyond the wrapped primitive), which
// the BENCH_PR7 trajectory holds against BENCH_PR6.
//
// Lock() / Unlock() are for split acquire/release shapes (worker loops
// that drop the lock around a drain phase, e.g. BatchAnalyzer::Worker);
// prefer MutexLock for plain scopes. CondVar::Wait takes the Mutex
// directly and re-establishes the capability on return, so wait loops
// stay inside the analysed region:
//
//   mu_.Lock();
//   while (!ready_) cv_.Wait(mu_);   // ready_ is IRD_GUARDED_BY(mu_)
//   ...
//   mu_.Unlock();

#ifndef IRD_BASE_MUTEX_H_
#define IRD_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace ird {

class IRD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() IRD_ACQUIRE() { mu_.lock(); }
  void Unlock() IRD_RELEASE() { mu_.unlock(); }
  bool TryLock() IRD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // The wrapped primitive, for CondVar. Annotated as returning this
  // capability so going through native() cannot launder the lock state.
  std::mutex& native() IRD_RETURN_CAPABILITY(this) { return mu_; }

 private:
  std::mutex mu_;
};

// RAII scope lock over an ird::Mutex (the std::lock_guard shape; the
// analysis treats the scope as holding `mu` from construction to
// destruction).
class IRD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IRD_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() IRD_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to ird::Mutex. Wait atomically releases and
// reacquires the caller's lock; the IRD_REQUIRES contract makes a wait
// without the lock a compile error instead of undefined behavior.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Releases `mu`, blocks until notified, reacquires `mu`. Spurious
  // wakeups happen; callers loop on their predicate.
  void Wait(Mutex& mu) IRD_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  // while (!pred()) Wait(mu) — pred runs under `mu`.
  template <typename Pred>
  void Await(Mutex& mu, Pred pred) IRD_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ird

#endif  // IRD_BASE_MUTEX_H_
