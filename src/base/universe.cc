#include "base/universe.h"

namespace ird {

AttributeId Universe::Intern(std::string_view name) {
  IRD_CHECK_MSG(!name.empty(), "attribute name must be nonempty");
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    return it->second;
  }
  AttributeId id = static_cast<AttributeId>(names_.size());
  names_.emplace_back(name);
  by_name_.emplace(names_.back(), id);
  return id;
}

Result<AttributeId> Universe::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return NotFound("unknown attribute '" + std::string(name) + "'");
  }
  return it->second;
}

AttributeSet Universe::MakeSet(
    std::initializer_list<std::string_view> names) {
  AttributeSet set;
  for (std::string_view n : names) {
    set.Add(Intern(n));
  }
  return set;
}

AttributeSet Universe::Chars(std::string_view letters) {
  AttributeSet set;
  for (char c : letters) {
    set.Add(Intern(std::string_view(&c, 1)));
  }
  return set;
}

std::string Universe::Format(const AttributeSet& set) const {
  bool all_single = true;
  set.ForEach([&](AttributeId id) {
    if (Name(id).size() != 1) all_single = false;
  });
  std::string out;
  bool first = true;
  set.ForEach([&](AttributeId id) {
    if (!all_single && !first) out += ",";
    out += Name(id);
    first = false;
  });
  if (out.empty()) out = "∅";
  return out;
}

}  // namespace ird
