#include "base/attribute_set.h"

#include <cstring>

namespace ird {

AttributeSet AttributeSet::AllUpTo(AttributeId n) {
  AttributeSet s;
  if (n == 0) return s;
  const uint32_t nwords = (n + 63) / 64;
  s.ExtendTo(nwords);
  uint64_t* w = s.MutableWords();
  for (uint32_t i = 0; i < nwords; ++i) w[i] = ~uint64_t{0};
  const int spare = static_cast<int>(nwords * 64 - n);
  if (spare > 0) w[nwords - 1] >>= spare;
  s.Normalize();
  return s;
}

void AttributeSet::SpillTo(uint32_t nwords) {
  uint32_t newcap = capacity_ * 2;
  if (newcap < nwords) newcap = nwords;
  uint64_t* buf = new uint64_t[newcap];
  std::memcpy(buf, words(), size_ * sizeof(uint64_t));
  std::memset(buf + size_, 0, (newcap - size_) * sizeof(uint64_t));
  ReleaseHeap();
  rep_.heap = buf;
  capacity_ = newcap;
  size_ = nwords;
}

void AttributeSet::CopyFrom(const AttributeSet& other) {
  size_ = other.size_;
  if (size_ <= kInlineWords) {
    // Re-compact: even if the source spilled, a small logical prefix fits
    // inline in the copy.
    capacity_ = kInlineWords;
    std::memcpy(rep_.inline_words, other.words(), size_ * sizeof(uint64_t));
  } else {
    capacity_ = size_;
    rep_.heap = new uint64_t[capacity_];
    std::memcpy(rep_.heap, other.rep_.heap, size_ * sizeof(uint64_t));
  }
}

size_t AttributeSet::Count() const {
  size_t total = 0;
  const uint64_t* w = words();
  for (uint32_t i = 0; i < size_; ++i) {
    total += static_cast<size_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

AttributeId AttributeSet::First() const {
  IRD_CHECK_MSG(!Empty(), "First() on empty AttributeSet");
  const uint64_t* w = words();
  for (uint32_t i = 0; i < size_; ++i) {
    if (w[i] != 0) {
      return static_cast<AttributeId>(i * 64 + __builtin_ctzll(w[i]));
    }
  }
  IRD_CHECK(false);
  return 0;
}

size_t AttributeSet::Rank(AttributeId id) const {
  const uint32_t w = id / 64;
  const uint64_t* words_ptr = words();
  size_t rank = 0;
  for (uint32_t i = 0; i < w && i < size_; ++i) {
    rank += static_cast<size_t>(__builtin_popcountll(words_ptr[i]));
  }
  if (w < size_) {
    uint64_t below = words_ptr[w] & ((uint64_t{1} << (id % 64)) - 1);
    rank += static_cast<size_t>(__builtin_popcountll(below));
  }
  return rank;
}

std::vector<AttributeId> AttributeSet::ToVector() const {
  std::vector<AttributeId> out;
  out.reserve(Count());
  ForEach([&out](AttributeId id) { out.push_back(id); });
  return out;
}

bool AttributeSet::operator<(const AttributeSet& other) const {
  // Compare from the most significant end so the order refines "size of the
  // largest element", giving a stable, intuitive enumeration order.
  if (size_ != other.size_) return size_ < other.size_;
  const uint64_t* w = words();
  const uint64_t* o = other.words();
  for (uint32_t i = size_; i-- > 0;) {
    if (w[i] != o[i]) return w[i] < o[i];
  }
  return false;
}

size_t AttributeSet::Hash() const {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  const uint64_t* w = words();
  for (uint32_t i = 0; i < size_; ++i) {
    h ^= w[i];
    h *= 1099511628211ull;  // FNV prime
  }
  return static_cast<size_t>(h);
}

std::string AttributeSet::DebugString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](AttributeId id) {
    if (!first) out += ",";
    out += std::to_string(id);
    first = false;
  });
  out += "}";
  return out;
}

}  // namespace ird
