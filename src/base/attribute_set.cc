#include "base/attribute_set.h"

#include <algorithm>

namespace ird {

AttributeSet AttributeSet::AllUpTo(AttributeId n) {
  AttributeSet s;
  if (n == 0) return s;
  s.words_.assign((n + 63) / 64, ~uint64_t{0});
  int spare = static_cast<int>(s.words_.size() * 64 - n);
  if (spare > 0) {
    s.words_.back() >>= spare;
  }
  s.Normalize();
  return s;
}

void AttributeSet::Add(AttributeId id) {
  size_t w = id / 64;
  if (w >= words_.size()) {
    words_.resize(w + 1, 0);
  }
  words_[w] |= uint64_t{1} << (id % 64);
}

void AttributeSet::Remove(AttributeId id) {
  size_t w = id / 64;
  if (w >= words_.size()) return;
  words_[w] &= ~(uint64_t{1} << (id % 64));
  Normalize();
}

bool AttributeSet::Contains(AttributeId id) const {
  size_t w = id / 64;
  if (w >= words_.size()) return false;
  return (words_[w] >> (id % 64)) & 1;
}

AttributeSet& AttributeSet::UnionWith(const AttributeSet& other) {
  if (other.words_.size() > words_.size()) {
    words_.resize(other.words_.size(), 0);
  }
  for (size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
  return *this;
}

AttributeSet& AttributeSet::IntersectWith(const AttributeSet& other) {
  if (words_.size() > other.words_.size()) {
    words_.resize(other.words_.size());
  }
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
  Normalize();
  return *this;
}

AttributeSet& AttributeSet::SubtractAll(const AttributeSet& other) {
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    words_[i] &= ~other.words_[i];
  }
  Normalize();
  return *this;
}

AttributeSet AttributeSet::Union(const AttributeSet& other) const {
  AttributeSet out = *this;
  out.UnionWith(other);
  return out;
}

AttributeSet AttributeSet::Intersect(const AttributeSet& other) const {
  AttributeSet out = *this;
  out.IntersectWith(other);
  return out;
}

AttributeSet AttributeSet::Minus(const AttributeSet& other) const {
  AttributeSet out = *this;
  out.SubtractAll(other);
  return out;
}

bool AttributeSet::IsSubsetOf(const AttributeSet& other) const {
  if (words_.size() > other.words_.size()) return false;
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool AttributeSet::IsProperSubsetOf(const AttributeSet& other) const {
  return IsSubsetOf(other) && *this != other;
}

bool AttributeSet::Intersects(const AttributeSet& other) const {
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

size_t AttributeSet::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) {
    total += static_cast<size_t>(__builtin_popcountll(w));
  }
  return total;
}

AttributeId AttributeSet::First() const {
  IRD_CHECK_MSG(!Empty(), "First() on empty AttributeSet");
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<AttributeId>(w * 64 + __builtin_ctzll(words_[w]));
    }
  }
  IRD_CHECK(false);
  return 0;
}

size_t AttributeSet::Rank(AttributeId id) const {
  size_t w = id / 64;
  size_t rank = 0;
  for (size_t i = 0; i < w && i < words_.size(); ++i) {
    rank += static_cast<size_t>(__builtin_popcountll(words_[i]));
  }
  if (w < words_.size()) {
    uint64_t below = words_[w] & ((uint64_t{1} << (id % 64)) - 1);
    rank += static_cast<size_t>(__builtin_popcountll(below));
  }
  return rank;
}

std::vector<AttributeId> AttributeSet::ToVector() const {
  std::vector<AttributeId> out;
  out.reserve(Count());
  ForEach([&out](AttributeId id) { out.push_back(id); });
  return out;
}

bool AttributeSet::operator<(const AttributeSet& other) const {
  // Compare from the most significant end so the order refines "size of the
  // largest element", giving a stable, intuitive enumeration order.
  if (words_.size() != other.words_.size()) {
    return words_.size() < other.words_.size();
  }
  for (size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != other.words_[i]) return words_[i] < other.words_[i];
  }
  return false;
}

size_t AttributeSet::Hash() const {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;  // FNV prime
  }
  return static_cast<size_t>(h);
}

std::string AttributeSet::DebugString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](AttributeId id) {
    if (!first) out += ",";
    out += std::to_string(id);
    first = false;
  });
  out += "}";
  return out;
}

void AttributeSet::Normalize() {
  while (!words_.empty() && words_.back() == 0) {
    words_.pop_back();
  }
}

}  // namespace ird
