// Universe: the fixed, finite set of attributes U = {A1, ..., An} (paper
// §2.1), kept as a bidirectional name <-> AttributeId registry.
//
// A Universe is created once per database scheme and then shared (by
// reference) with everything defined over it. AttributeIds are dense and
// assigned in registration order, so AttributeSet bitsets stay compact.

#ifndef IRD_BASE_UNIVERSE_H_
#define IRD_BASE_UNIVERSE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/attribute_set.h"
#include "base/status.h"

namespace ird {

class Universe {
 public:
  Universe() = default;

  // Universes are identity objects (schemes hold pointers to them).
  Universe(const Universe&) = delete;
  Universe& operator=(const Universe&) = delete;

  // Returns the id of `name`, registering it if new.
  AttributeId Intern(std::string_view name);

  // Returns the id of `name` or kNotFound if it was never registered.
  Result<AttributeId> Find(std::string_view name) const;

  // True if `name` is registered.
  bool Has(std::string_view name) const {
    return by_name_.find(std::string(name)) != by_name_.end();
  }

  // The name of `id`; id must be registered.
  const std::string& Name(AttributeId id) const {
    IRD_CHECK_MSG(id < names_.size(), "attribute id out of range");
    return names_[id];
  }

  // Number of attributes in U.
  size_t size() const { return names_.size(); }

  // The set U itself.
  AttributeSet All() const {
    return AttributeSet::AllUpTo(static_cast<AttributeId>(names_.size()));
  }

  // Builds a set from names, interning as needed.
  AttributeSet MakeSet(std::initializer_list<std::string_view> names);

  // Builds a set from a string of single-character attribute names, e.g.
  // "ABC" -> {A, B, C}. Convenient for paper examples where attributes are
  // single letters.
  AttributeSet Chars(std::string_view letters);

  // Renders a set as concatenated names when all names are single
  // characters ("ABC"), else comma-separated ("Hour,Room").
  std::string Format(const AttributeSet& set) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttributeId> by_name_;
};

}  // namespace ird

#endif  // IRD_BASE_UNIVERSE_H_
