// Bump-pointer arena for the chase/closure hot paths.
//
// A Tableau (and the delta chase engine that drives it) makes many small,
// same-lifetime allocations: row cells, symbol records, merge-log entries,
// bucket-index storage. Individually heap-allocating them scatters the chase
// working set across the heap and puts malloc on the per-rule-application
// path. The arena replaces that with pointer arithmetic: allocations bump a
// cursor inside a block, blocks double in size as the arena grows, and
// everything is released at once when the owner dies.
//
// Rules of ownership (see ARCHITECTURE.md "Memory substrate"):
//   * An arena is owned by exactly one object (a Tableau, a ChaseEngine) and
//     dies with it. Nothing allocated from an arena is individually freed.
//   * Only trivially-copyable, trivially-destructible payloads go in
//     (enforced by ArenaVector's static_asserts) — no destructors ever run
//     for arena memory.
//   * base/ sits below obs/ in the layering, so the arena cannot emit
//     counters itself; owners flush bytes_in_use()/highwater_bytes() into
//     the arena.* counters at operation end.

#ifndef IRD_BASE_ARENA_H_
#define IRD_BASE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "base/check.h"

namespace ird {

class Arena {
 public:
  // First block size; subsequent blocks double up to kMaxBlockBytes.
  static constexpr size_t kInitialBlockBytes = 4096;
  static constexpr size_t kMaxBlockBytes = size_t{1} << 20;

  Arena() = default;
  ~Arena() { FreeBlocks(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept { StealFrom(other); }
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      FreeBlocks();
      StealFrom(other);
    }
    return *this;
  }

  // Returns `bytes` of storage aligned for any scalar type. Never null;
  // zero-byte requests return a distinct valid pointer.
  void* Allocate(size_t bytes) {
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    if (bump_ + bytes > limit_) NewBlock(bytes);
    char* out = bump_;
    bump_ += bytes;
    bytes_in_use_ += bytes;
    if (bytes_in_use_ > highwater_bytes_) highwater_bytes_ = bytes_in_use_;
    return out;
  }

  // Typed array allocation (uninitialized storage).
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    static_assert(alignof(T) <= kAlign, "over-aligned type in arena");
    return static_cast<T*>(Allocate(n * sizeof(T)));
  }

  // Typed zero-initialized array allocation.
  template <typename T>
  T* AllocateZeroedArray(size_t n) {
    T* out = AllocateArray<T>(n);
    std::memset(static_cast<void*>(out), 0, n * sizeof(T));
    return out;
  }

  // Bytes handed out to callers (aligned) since construction.
  size_t bytes_in_use() const { return bytes_in_use_; }
  // Bytes obtained from the system, including block slack.
  size_t bytes_reserved() const { return bytes_reserved_; }
  // Peak of bytes_in_use(); for the arena.highwater counter.
  size_t highwater_bytes() const { return highwater_bytes_; }

 private:
  static constexpr size_t kAlign = alignof(std::max_align_t);

  struct BlockHeader {
    BlockHeader* prev;
    size_t size;  // total bytes including the header
  };

  void NewBlock(size_t min_bytes);  // slow path, in arena.cc
  void FreeBlocks();

  void StealFrom(Arena& other) {
    head_ = other.head_;
    bump_ = other.bump_;
    limit_ = other.limit_;
    next_block_bytes_ = other.next_block_bytes_;
    bytes_in_use_ = other.bytes_in_use_;
    bytes_reserved_ = other.bytes_reserved_;
    highwater_bytes_ = other.highwater_bytes_;
    other.head_ = nullptr;
    other.bump_ = other.limit_ = nullptr;
    other.next_block_bytes_ = kInitialBlockBytes;
    other.bytes_in_use_ = other.bytes_reserved_ = other.highwater_bytes_ = 0;
  }

  BlockHeader* head_ = nullptr;
  char* bump_ = nullptr;
  char* limit_ = nullptr;
  size_t next_block_bytes_ = kInitialBlockBytes;
  size_t bytes_in_use_ = 0;
  size_t bytes_reserved_ = 0;
  size_t highwater_bytes_ = 0;
};

// A vector whose backing store lives in an Arena. Grow operations take the
// arena explicitly — the vector does not retain a pointer to it, so moving
// the owning object (which owns both) stays trivially correct. Old buffers
// are abandoned in place (arena memory is never reclaimed early), so callers
// on hot paths reserve() up front and never regrow.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVector relocates with memcpy");
  static_assert(std::is_trivially_destructible_v<T>,
                "arena memory never runs destructors");

 public:
  ArenaVector() = default;
  ArenaVector(const ArenaVector&) = delete;
  ArenaVector& operator=(const ArenaVector&) = delete;
  ArenaVector(ArenaVector&& other) noexcept
      : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = other.capacity_ = 0;
  }
  ArenaVector& operator=(ArenaVector&& other) noexcept {
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.data_ = nullptr;
    other.size_ = other.capacity_ = 0;
    return *this;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void reserve(Arena& arena, size_t cap) {
    if (cap > capacity_) Regrow(arena, cap);
  }

  void push_back(Arena& arena, const T& value) {
    if (size_ == capacity_) {
      Regrow(arena, capacity_ == 0 ? 8 : capacity_ * 2);
    }
    data_[size_++] = value;
  }

  // Appends n default-initialized slots and returns a pointer to the first.
  T* extend(Arena& arena, size_t n) {
    if (size_ + n > capacity_) {
      size_t cap = capacity_ == 0 ? 8 : capacity_ * 2;
      if (cap < size_ + n) cap = size_ + n;
      Regrow(arena, cap);
    }
    T* out = data_ + size_;
    size_ += n;
    return out;
  }

  void resize(Arena& arena, size_t n, const T& fill = T{}) {
    if (n > size_) {
      T* slot = extend(arena, n - size_);
      for (size_t i = 0; slot + i != data_ + size_; ++i) slot[i] = fill;
    } else {
      size_ = n;
    }
  }

  // Drops elements from the end; keeps the storage.
  void truncate(size_t n) {
    IRD_DCHECK(n <= size_);
    size_ = n;
  }
  void clear() { size_ = 0; }

  void assign(Arena& arena, const T* src, size_t n) {
    reserve(arena, n);
    std::memcpy(static_cast<void*>(data_), src, n * sizeof(T));
    size_ = n;
  }

 private:
  void Regrow(Arena& arena, size_t cap) {
    T* buf = arena.AllocateArray<T>(cap);
    if (size_ > 0) {
      std::memcpy(static_cast<void*>(buf), data_, size_ * sizeof(T));
    }
    data_ = buf;
    capacity_ = cap;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace ird

#endif  // IRD_BASE_ARENA_H_
