// Error propagation without exceptions: Status and Result<T>.
//
// Data-dependent failures (inconsistent states, malformed input, invalid
// scheme declarations) travel as ird::Status. Programming errors use
// IRD_CHECK. The design mirrors absl::Status in miniature.

#ifndef IRD_BASE_STATUS_H_
#define IRD_BASE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "base/check.h"

namespace ird {

// Failure categories used across the library.
enum class StatusCode {
  kOk = 0,
  // A caller supplied a structurally invalid argument (e.g. an attribute
  // outside the universe, a key not contained in its scheme).
  kInvalidArgument,
  // The operation's precondition on the database/scheme does not hold
  // (e.g. maintenance called on a scheme that is not key-equivalent).
  kFailedPrecondition,
  // A database state has no weak instance: the chase found a contradiction.
  kInconsistent,
  // A requested entity does not exist.
  kNotFound,
  // Input text could not be parsed.
  kParseError,
};

// Returns a stable human-readable name for `code` ("OK", "INCONSISTENT", ...).
const char* StatusCodeName(StatusCode code);

// Value-type status: either OK or a code plus message.
class Status {
 public:
  // OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    IRD_CHECK_MSG(code != StatusCode::kOk,
                  "use the default constructor for OK");
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status Inconsistent(std::string message) {
  return Status(StatusCode::kInconsistent, std::move(message));
}
inline Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}

// Either a T or a non-OK Status. Access to value() checks ok().
template <typename T>
class Result {
 public:
  // Intentionally implicit, so functions can `return value;` / `return
  // status;` — the same convenience absl::StatusOr provides.
  Result(T value) : payload_(std::move(value)) {}
  Result(Status status) : payload_(std::move(status)) {
    IRD_CHECK_MSG(!std::get<Status>(payload_).ok(),
                  "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  const T& value() const& {
    IRD_CHECK_MSG(ok(), "value() on failed Result");
    return std::get<T>(payload_);
  }
  T& value() & {
    IRD_CHECK_MSG(ok(), "value() on failed Result");
    return std::get<T>(payload_);
  }
  T&& value() && {
    IRD_CHECK_MSG(ok(), "value() on failed Result");
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

// Propagates a non-OK status out of the enclosing function.
#define IRD_RETURN_IF_ERROR(expr)        \
  do {                                   \
    ::ird::Status ird_status_ = (expr);  \
    if (!ird_status_.ok()) {             \
      return ird_status_;                \
    }                                    \
  } while (false)

}  // namespace ird

#endif  // IRD_BASE_STATUS_H_
