#include "base/arena.h"

namespace ird {

void Arena::NewBlock(size_t min_bytes) {
  size_t payload = next_block_bytes_;
  if (payload < min_bytes) payload = min_bytes;
  // Header is carved out of the block itself; round its footprint up to the
  // allocation alignment so payload pointers stay aligned.
  constexpr size_t kHeaderBytes =
      (sizeof(BlockHeader) + kAlign - 1) & ~(kAlign - 1);
  const size_t total = kHeaderBytes + payload;
  char* raw = static_cast<char*>(::operator new(total));
  auto* header = reinterpret_cast<BlockHeader*>(raw);
  header->prev = head_;
  header->size = total;
  head_ = header;
  bump_ = raw + kHeaderBytes;
  limit_ = raw + total;
  bytes_reserved_ += total;
  if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ *= 2;
}

void Arena::FreeBlocks() {
  BlockHeader* block = head_;
  while (block != nullptr) {
    BlockHeader* prev = block->prev;
    ::operator delete(static_cast<void*>(block));
    block = prev;
  }
  head_ = nullptr;
  bump_ = limit_ = nullptr;
}

}  // namespace ird
