// Lightweight assertion macros for programming errors.
//
// The library does not use exceptions (see DESIGN.md). IRD_CHECK aborts the
// process with a diagnostic when an internal invariant is violated; it is for
// bugs, never for data-dependent failures (those return ird::Status).

#ifndef IRD_BASE_CHECK_H_
#define IRD_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ird::internal {

// Prints a diagnostic and aborts. Marked noinline/cold so the fast path of
// IRD_CHECK stays a single predictable branch.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const char* message) {
  std::fprintf(stderr, "IRD_CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message[0] != '\0' ? " — " : "", message);
  std::abort();
}

}  // namespace ird::internal

// Aborts when `condition` is false. Enabled in all build modes: the library's
// algorithms are cheap relative to the cost of silently corrupt chases.
#define IRD_CHECK(condition)                                             \
  do {                                                                   \
    if (!(condition)) {                                                  \
      ::ird::internal::CheckFailed(__FILE__, __LINE__, #condition, ""); \
    }                                                                    \
  } while (false)

// Like IRD_CHECK with an explanatory string literal.
#define IRD_CHECK_MSG(condition, message)                                     \
  do {                                                                        \
    if (!(condition)) {                                                       \
      ::ird::internal::CheckFailed(__FILE__, __LINE__, #condition, message); \
    }                                                                         \
  } while (false)

// Debug-only check for hot paths.
#ifdef NDEBUG
#define IRD_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define IRD_DCHECK(condition) IRD_CHECK(condition)
#endif

#endif  // IRD_BASE_CHECK_H_
