#include "relation/relation.h"

#include <unordered_map>

namespace ird {

void PartialRelation::Add(PartialTuple tuple) {
  IRD_CHECK_MSG(tuple.attrs() == attrs_,
                "tuple attribute set must match the relation's");
  dedup_hashes_.insert(tuple.Hash());
  tuples_.push_back(std::move(tuple));
}

bool PartialRelation::AddUnique(PartialTuple tuple) {
  IRD_CHECK_MSG(tuple.attrs() == attrs_,
                "tuple attribute set must match the relation's");
  size_t h = tuple.Hash();
  if (dedup_hashes_.count(h) > 0) {
    // Possible duplicate (or hash collision): verify.
    for (const PartialTuple& t : tuples_) {
      if (t == tuple) return false;
    }
  }
  dedup_hashes_.insert(h);
  tuples_.push_back(std::move(tuple));
  return true;
}

bool PartialRelation::Contains(const PartialTuple& tuple) const {
  if (dedup_hashes_.count(tuple.Hash()) == 0) return false;
  for (const PartialTuple& t : tuples_) {
    if (t == tuple) return true;
  }
  return false;
}

bool PartialRelation::SetEquals(const PartialRelation& other) const {
  if (attrs_ != other.attrs_) return false;
  for (const PartialTuple& t : tuples_) {
    if (!other.Contains(t)) return false;
  }
  for (const PartialTuple& t : other.tuples_) {
    if (!Contains(t)) return false;
  }
  return true;
}

bool PartialRelation::Satisfies(const FdSet& fds) const {
  for (const FunctionalDependency& fd : fds.fds()) {
    if (!fd.IsEmbeddedIn(attrs_) || fd.IsTrivial()) continue;
    AttributeSet rhs = fd.rhs.Minus(fd.lhs);
    // Map lhs values -> rhs values; any conflict is a violation.
    std::unordered_map<size_t, std::vector<size_t>> buckets;
    for (size_t i = 0; i < tuples_.size(); ++i) {
      PartialTuple lhs_part = tuples_[i].Restrict(fd.lhs);
      size_t h = lhs_part.Hash();
      auto& bucket = buckets[h];
      for (size_t j : bucket) {
        if (tuples_[j].AgreesOn(tuples_[i], fd.lhs) &&
            !tuples_[j].AgreesOn(tuples_[i], rhs)) {
          return false;
        }
      }
      bucket.push_back(i);
    }
  }
  return true;
}

std::string PartialRelation::ToString(const Universe& universe) const {
  std::string out = "{";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuples_[i].ToString(universe);
  }
  out += "}";
  return out;
}

}  // namespace ird
