#include "relation/partial_tuple.h"

namespace ird {

PartialTuple PartialTuple::Restrict(const AttributeSet& x) const {
  PartialTuple out;
  RestrictInto(x, &out);
  return out;
}

void PartialTuple::RestrictInto(const AttributeSet& x,
                                PartialTuple* out) const {
  IRD_CHECK_MSG(x.IsSubsetOf(attrs_), "restriction outside tuple's scheme");
  out->attrs_ = x;
  out->values_.clear();
  out->values_.reserve(x.Count());
  x.ForEach([&](AttributeId a) { out->values_.push_back(At(a)); });
}

bool PartialTuple::AgreesOn(const PartialTuple& other,
                            const AttributeSet& x) const {
  IRD_CHECK(x.IsSubsetOf(attrs_) && x.IsSubsetOf(other.attrs_));
  bool agree = true;
  x.ForEach([&](AttributeId a) {
    if (agree && At(a) != other.At(a)) agree = false;
  });
  return agree;
}

bool PartialTuple::JoinableWith(const PartialTuple& other) const {
  AttributeSet shared = attrs_.Intersect(other.attrs_);
  bool ok = true;
  shared.ForEach([&](AttributeId a) {
    if (ok && At(a) != other.At(a)) ok = false;
  });
  return ok;
}

std::optional<PartialTuple> PartialTuple::Join(
    const PartialTuple& other) const {
  PartialTuple out;
  if (!JoinInto(other, &out)) return std::nullopt;
  return out;
}

bool PartialTuple::JoinInto(const PartialTuple& other,
                            PartialTuple* out) const {
  if (!JoinableWith(other)) return false;
  out->attrs_ = attrs_;
  out->attrs_.UnionWith(other.attrs_);
  out->values_.clear();
  out->values_.reserve(out->attrs_.Count());
  out->attrs_.ForEach([&](AttributeId a) {
    out->values_.push_back(attrs_.Contains(a) ? At(a) : other.At(a));
  });
  return true;
}

size_t PartialTuple::Hash() const {
  uint64_t h = attrs_.Hash();
  for (Value v : values_) {
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return static_cast<size_t>(h);
}

std::string PartialTuple::ToString(const Universe& universe) const {
  std::string out = "<";
  bool first = true;
  attrs_.ForEach([&](AttributeId a) {
    if (!first) out += ",";
    out += universe.Name(a) + "=" + std::to_string(At(a));
    first = false;
  });
  out += ">";
  return out;
}

}  // namespace ird
