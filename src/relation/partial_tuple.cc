#include "relation/partial_tuple.h"

namespace ird {

PartialTuple PartialTuple::Restrict(const AttributeSet& x) const {
  IRD_CHECK_MSG(x.IsSubsetOf(attrs_), "restriction outside tuple's scheme");
  std::vector<Value> vals;
  vals.reserve(x.Count());
  x.ForEach([&](AttributeId a) { vals.push_back(At(a)); });
  return PartialTuple(x, std::move(vals));
}

bool PartialTuple::AgreesOn(const PartialTuple& other,
                            const AttributeSet& x) const {
  IRD_CHECK(x.IsSubsetOf(attrs_) && x.IsSubsetOf(other.attrs_));
  bool agree = true;
  x.ForEach([&](AttributeId a) {
    if (agree && At(a) != other.At(a)) agree = false;
  });
  return agree;
}

bool PartialTuple::JoinableWith(const PartialTuple& other) const {
  AttributeSet shared = attrs_.Intersect(other.attrs_);
  bool ok = true;
  shared.ForEach([&](AttributeId a) {
    if (ok && At(a) != other.At(a)) ok = false;
  });
  return ok;
}

std::optional<PartialTuple> PartialTuple::Join(
    const PartialTuple& other) const {
  if (!JoinableWith(other)) return std::nullopt;
  AttributeSet joint = attrs_.Union(other.attrs_);
  std::vector<Value> vals;
  vals.reserve(joint.Count());
  joint.ForEach([&](AttributeId a) {
    vals.push_back(attrs_.Contains(a) ? At(a) : other.At(a));
  });
  return PartialTuple(joint, std::move(vals));
}

size_t PartialTuple::Hash() const {
  uint64_t h = attrs_.Hash();
  for (Value v : values_) {
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return static_cast<size_t>(h);
}

std::string PartialTuple::ToString(const Universe& universe) const {
  std::string out = "<";
  bool first = true;
  attrs_.ForEach([&](AttributeId a) {
    if (!first) out += ",";
    out += universe.Name(a) + "=" + std::to_string(At(a));
    first = false;
  });
  out += ">";
  return out;
}

}  // namespace ird
