// DatabaseState: r = <r1, ..., rn>, one relation per relation scheme
// (paper §2.1). Owns a copy of its DatabaseScheme (schemes are small,
// cheaply copyable values sharing their Universe).

#ifndef IRD_RELATION_DATABASE_STATE_H_
#define IRD_RELATION_DATABASE_STATE_H_

#include <string_view>
#include <vector>

#include "relation/relation.h"
#include "schema/database_scheme.h"

namespace ird {

class DatabaseState {
 public:
  explicit DatabaseState(DatabaseScheme scheme);

  const DatabaseScheme& scheme() const { return scheme_; }
  const Universe& universe() const { return scheme_.universe(); }

  size_t relation_count() const { return relations_.size(); }
  const PartialRelation& relation(size_t i) const {
    IRD_CHECK(i < relations_.size());
    return relations_[i];
  }
  PartialRelation& mutable_relation(size_t i) {
    IRD_CHECK(i < relations_.size());
    return relations_[i];
  }
  const std::vector<PartialRelation>& relations() const { return relations_; }

  // Inserts a tuple (values in increasing-attribute order) into relation i.
  void Insert(size_t i, std::vector<Value> values);
  // Inserts into the relation named `name` (must exist).
  void Insert(std::string_view name, std::vector<Value> values);

  // Total number of tuples across all relations.
  size_t TupleCount() const;

  // The block substate r_pool of §4.2: a state on the same scheme holding
  // only the tuples of the relations in `pool` (every other relation stays
  // empty, so relation indices remain valid across the restriction).
  DatabaseState Restrict(const std::vector<size_t>& pool) const;

  // Replaces relation i's contents wholesale (the fan-in primitive for
  // reassembling a state from block substates). `rel.attrs()` must equal
  // the scheme's attribute set for relation i.
  void SetRelation(size_t i, PartialRelation rel);

  // A tuple on relation i's scheme built from raw values (not inserted).
  PartialTuple MakeTuple(size_t i, std::vector<Value> values) const {
    return PartialTuple(scheme_.relation(i).attrs, std::move(values));
  }

 private:
  DatabaseScheme scheme_;
  std::vector<PartialRelation> relations_;
};

}  // namespace ird

#endif  // IRD_RELATION_DATABASE_STATE_H_
