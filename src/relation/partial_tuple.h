// PartialTuple: a total tuple defined on a subset of the universe — the
// paper's "X-total tuple". Ordinary relation tuples are the special case
// where the subset is the relation scheme.

#ifndef IRD_RELATION_PARTIAL_TUPLE_H_
#define IRD_RELATION_PARTIAL_TUPLE_H_

#include <optional>
#include <string>
#include <vector>

#include "base/attribute_set.h"
#include "base/universe.h"
#include "tableau/tableau.h"

namespace ird {

class PartialTuple {
 public:
  PartialTuple() = default;

  // A tuple over `attrs`; `values` aligned with the attributes in
  // increasing-id order.
  PartialTuple(AttributeSet attrs, std::vector<Value> values)
      : attrs_(std::move(attrs)), values_(std::move(values)) {
    IRD_CHECK_MSG(attrs_.Count() == values_.size(),
                  "tuple arity must match its attribute set");
  }

  const AttributeSet& attrs() const { return attrs_; }
  const std::vector<Value>& values() const { return values_; }
  size_t arity() const { return values_.size(); }
  bool Empty() const { return values_.empty(); }

  // True iff the tuple is defined on attribute a.
  bool DefinedOn(AttributeId a) const { return attrs_.Contains(a); }
  bool DefinedOnAll(const AttributeSet& x) const {
    return x.IsSubsetOf(attrs_);
  }

  // The value at attribute a (must be defined).
  Value At(AttributeId a) const {
    IRD_CHECK_MSG(attrs_.Contains(a), "tuple not defined on attribute");
    return values_[attrs_.Rank(a)];
  }

  // t[X]: the restriction to X, which must be ⊆ attrs().
  PartialTuple Restrict(const AttributeSet& x) const;

  // Scratch-reusing form of Restrict: overwrites *out, reusing its value
  // buffer. `out` must not alias this.
  void RestrictInto(const AttributeSet& x, PartialTuple* out) const;

  // True iff this and `other` have equal values on every attribute of x
  // (both must be defined on all of x).
  bool AgreesOn(const PartialTuple& other, const AttributeSet& x) const;

  // True iff this and `other` agree on every shared attribute.
  bool JoinableWith(const PartialTuple& other) const;

  // Natural join of two joinable tuples: defined on the union of their
  // attribute sets. Returns nullopt if they clash on a shared attribute —
  // the "q := q ⋈ v is empty" tests of Algorithms 2 and 5.
  std::optional<PartialTuple> Join(const PartialTuple& other) const;

  // Scratch-reusing form of Join: on success overwrites *out (reusing its
  // value buffer) and returns true; returns false on a clash, leaving *out
  // unspecified. `out` must alias neither operand.
  bool JoinInto(const PartialTuple& other, PartialTuple* out) const;

  bool operator==(const PartialTuple& other) const {
    return attrs_ == other.attrs_ && values_ == other.values_;
  }
  bool operator!=(const PartialTuple& other) const {
    return !(*this == other);
  }

  size_t Hash() const;

  // "<A=1,B=7>" with universe names.
  std::string ToString(const Universe& universe) const;

 private:
  AttributeSet attrs_;
  std::vector<Value> values_;
};

struct PartialTupleHash {
  size_t operator()(const PartialTuple& t) const { return t.Hash(); }
};

}  // namespace ird

#endif  // IRD_RELATION_PARTIAL_TUPLE_H_
