// PartialRelation: a set of tuples all defined on the same attribute set.
// Serves both as the relations of a database state (attrs = a relation
// scheme) and as intermediate results of relational-algebra evaluation.

#ifndef IRD_RELATION_RELATION_H_
#define IRD_RELATION_RELATION_H_

#include <unordered_set>
#include <vector>

#include "base/attribute_set.h"
#include "fd/fd_set.h"
#include "relation/partial_tuple.h"

namespace ird {

class PartialRelation {
 public:
  PartialRelation() = default;
  explicit PartialRelation(AttributeSet attrs) : attrs_(std::move(attrs)) {}

  const AttributeSet& attrs() const { return attrs_; }
  const std::vector<PartialTuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  // Appends `tuple` (its attribute set must equal attrs()); duplicates are
  // allowed — use AddUnique for set semantics.
  void Add(PartialTuple tuple);

  // Appends only if not already present. Returns true if added.
  bool AddUnique(PartialTuple tuple);

  // Convenience: tuple from raw values in increasing-attribute order.
  void Add(std::vector<Value> values) {
    Add(PartialTuple(attrs_, std::move(values)));
  }

  bool Contains(const PartialTuple& tuple) const;

  // Set-semantics equality (order-insensitive, duplicates collapse).
  bool SetEquals(const PartialRelation& other) const;

  // True iff the relation satisfies every FD of `fds` that is embedded in
  // attrs() (non-embedded FDs are ignored). Hash-based, O(n) per FD.
  bool Satisfies(const FdSet& fds) const;

  std::string ToString(const Universe& universe) const;

 private:
  AttributeSet attrs_;
  std::vector<PartialTuple> tuples_;
  std::unordered_set<size_t> dedup_hashes_;  // quick reject for AddUnique
};

}  // namespace ird

#endif  // IRD_RELATION_RELATION_H_
