#include "relation/weak_instance.h"

namespace ird {

Tableau StateTableau(const DatabaseState& state) {
  Tableau t(state.universe().size());
  t.ReserveRows(state.TupleCount());
  for (size_t i = 0; i < state.relation_count(); ++i) {
    const AttributeSet& attrs = state.scheme().relation(i).attrs;
    for (const PartialTuple& tuple : state.relation(i).tuples()) {
      t.AddTupleRow(attrs, tuple.values());
    }
  }
  return t;
}

Result<Tableau> RepresentativeInstance(const DatabaseState& state) {
  Tableau t = StateTableau(state);
  ChaseStats stats = ChaseFds(&t, state.scheme().key_dependencies());
  if (!stats.consistent) {
    return Inconsistent("state has no weak instance");
  }
  return t;
}

bool IsConsistent(const DatabaseState& state) {
  Tableau t = StateTableau(state);
  return ChaseFds(&t, state.scheme().key_dependencies()).consistent;
}

Result<PartialRelation> TotalProjectionByChase(const DatabaseState& state,
                                               const AttributeSet& x) {
  Result<Tableau> ri = RepresentativeInstance(state);
  if (!ri.ok()) return ri.status();
  const Tableau& t = ri.value();
  PartialRelation out(x);
  std::vector<Value> vals;
  for (size_t row = 0; row < t.row_count(); ++row) {
    if (t.TotalOn(row, x)) {
      t.ValuesOn(row, x, &vals);
      out.AddUnique(PartialTuple(x, vals));
    }
  }
  return out;
}

bool WouldRemainConsistent(const DatabaseState& state, size_t rel,
                           const PartialTuple& tuple) {
  Tableau t = StateTableau(state);
  t.AddTupleRow(state.scheme().relation(rel).attrs, tuple.values());
  return ChaseFds(&t, state.scheme().key_dependencies()).consistent;
}

bool IsLocallyConsistent(const DatabaseState& state) {
  const FdSet& f = state.scheme().key_dependencies();
  for (size_t i = 0; i < state.relation_count(); ++i) {
    FdSet projected = f.ProjectOnto(state.scheme().relation(i).attrs);
    if (!state.relation(i).Satisfies(projected)) return false;
  }
  return true;
}

}  // namespace ird
