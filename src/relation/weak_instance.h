// The weak instance model (paper §2.5): consistency of a state is the
// existence of a weak instance, decided by chasing the state tableau; the
// chased tableau is the representative instance; queries are X-total
// projections of it.
//
// These chase-based functions are the library's semantic ground truth. The
// paper's contribution is computing the same answers *without* re-chasing —
// see src/core.

#ifndef IRD_RELATION_WEAK_INSTANCE_H_
#define IRD_RELATION_WEAK_INSTANCE_H_

#include "base/status.h"
#include "relation/database_state.h"
#include "tableau/chase.h"
#include "tableau/tableau.h"

namespace ird {

// The state tableau T_r (paper §2.2): one row per tuple — the tuple's
// constants on its scheme, fresh ndv's elsewhere.
Tableau StateTableau(const DatabaseState& state);

// CHASE_F(T_r) where F is the scheme's key dependencies. Returns
// kInconsistent if the state has no weak instance.
Result<Tableau> RepresentativeInstance(const DatabaseState& state);

// True iff the state has a weak instance wrt the key dependencies.
bool IsConsistent(const DatabaseState& state);

// The X-total projection [X] (paper §2.5): π↓_X(CHASE_F(T_r)), deduplicated.
// Returns kInconsistent on an inconsistent state.
Result<PartialRelation> TotalProjectionByChase(const DatabaseState& state,
                                               const AttributeSet& x);

// Local satisfaction (paper §2.7): r ∈ LSAT(R, F) iff each ri satisfies the
// projected dependencies F+|Ri. Exponential in max |Ri| (FD projection).
bool IsLocallyConsistent(const DatabaseState& state);

// The naive maintenance baseline: is r ∪ {t on R_rel} consistent? Chases
// the whole enlarged state tableau from scratch — correct for every scheme,
// but Θ(state size) per call; the paper's algorithms beat exactly this.
bool WouldRemainConsistent(const DatabaseState& state, size_t rel,
                           const PartialTuple& tuple);

}  // namespace ird

#endif  // IRD_RELATION_WEAK_INSTANCE_H_
