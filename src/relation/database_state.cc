#include "relation/database_state.h"

namespace ird {

DatabaseState::DatabaseState(DatabaseScheme scheme)
    : scheme_(std::move(scheme)) {
  relations_.reserve(scheme_.size());
  for (const RelationScheme& r : scheme_.relations()) {
    relations_.emplace_back(r.attrs);
  }
}

void DatabaseState::Insert(size_t i, std::vector<Value> values) {
  IRD_CHECK(i < relations_.size());
  relations_[i].Add(PartialTuple(scheme_.relation(i).attrs,
                                 std::move(values)));
}

void DatabaseState::Insert(std::string_view name,
                           std::vector<Value> values) {
  Result<size_t> idx = scheme_.FindRelation(name);
  IRD_CHECK_MSG(idx.ok(), "Insert into unknown relation");
  Insert(idx.value(), std::move(values));
}

DatabaseState DatabaseState::Restrict(
    const std::vector<size_t>& pool) const {
  DatabaseState out(scheme_);
  for (size_t i : pool) {
    IRD_CHECK(i < relations_.size());
    out.relations_[i] = relations_[i];
  }
  return out;
}

void DatabaseState::SetRelation(size_t i, PartialRelation rel) {
  IRD_CHECK(i < relations_.size());
  IRD_CHECK(rel.attrs() == relations_[i].attrs());
  relations_[i] = std::move(rel);
}

size_t DatabaseState::TupleCount() const {
  size_t n = 0;
  for (const PartialRelation& r : relations_) {
    n += r.size();
  }
  return n;
}

}  // namespace ird
