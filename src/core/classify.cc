#include "core/classify.h"

#include "core/independence.h"
#include "core/key_equivalence.h"
#include "core/split.h"
#include "engine/scheme_analysis.h"
#include "hypergraph/gamma_cycle.h"
#include "hypergraph/hypergraph.h"

namespace ird {

SchemeClassification ClassifyScheme(SchemeAnalysis& analysis,
                                    bool test_acyclicity) {
  const DatabaseScheme& scheme = analysis.scheme();
  SchemeClassification c;
  c.valid = scheme.Validate();
  c.bcnf = scheme.IsBcnf();
  c.lossless = IsLossless(analysis);
  c.independent = IsIndependent(analysis);
  c.key_equivalent = IsKeyEquivalent(analysis);
  if (test_acyclicity) {
    Hypergraph h = Hypergraph::Of(scheme);
    // The γ-cycle search scales to more edges than the u.m.c. form (whose
    // Bachman closure can outgrow its guard); the two recognizers are
    // cross-validated in gamma_cycle_test.
    c.gamma_acyclic = !FindGammaCycle(h).has_value();
    c.alpha_acyclic = IsAlphaAcyclic(h);
  }
  c.recognition = RecognizeIndependenceReducible(analysis);
  c.independence_reducible = c.recognition.accepted;
  if (c.independence_reducible) {
    c.split_free = true;
    for (const std::vector<size_t>& block : c.recognition.partition) {
      bool sf = IsSplitFree(analysis, block);
      c.block_split_free.push_back(sf);
      if (!sf) c.split_free = false;
    }
    c.bounded = true;                 // Theorem 4.1
    c.algebraic_maintainable = true;  // Theorem 4.2
    c.ctm = c.split_free;             // Theorem 5.5
  }
  return c;
}

SchemeClassification ClassifyScheme(const DatabaseScheme& scheme,
                                    bool test_acyclicity) {
  SchemeAnalysis analysis(scheme);
  return ClassifyScheme(analysis, test_acyclicity);
}

}  // namespace ird
