#include "core/classify.h"

#include "core/independence.h"
#include "core/key_equivalence.h"
#include "core/split.h"
#include "hypergraph/gamma_cycle.h"
#include "hypergraph/hypergraph.h"

namespace ird {

SchemeClassification ClassifyScheme(const DatabaseScheme& scheme,
                                    bool test_acyclicity) {
  SchemeClassification c;
  c.valid = scheme.Validate();
  c.bcnf = scheme.IsBcnf();
  c.lossless = scheme.IsLossless();
  c.independent = IsIndependent(scheme);
  c.key_equivalent = IsKeyEquivalent(scheme);
  if (test_acyclicity) {
    Hypergraph h = Hypergraph::Of(scheme);
    // The γ-cycle search scales to more edges than the u.m.c. form (whose
    // Bachman closure can outgrow its guard); the two recognizers are
    // cross-validated in gamma_cycle_test.
    c.gamma_acyclic = !FindGammaCycle(h).has_value();
    c.alpha_acyclic = IsAlphaAcyclic(h);
  }
  c.recognition = RecognizeIndependenceReducible(scheme);
  c.independence_reducible = c.recognition.accepted;
  if (c.independence_reducible) {
    c.split_free = true;
    for (const std::vector<size_t>& block : c.recognition.partition) {
      bool sf = IsSplitFree(scheme, block);
      c.block_split_free.push_back(sf);
      if (!sf) c.split_free = false;
    }
    c.bounded = true;                 // Theorem 4.1
    c.algebraic_maintainable = true;  // Theorem 4.2
    c.ctm = c.split_free;             // Theorem 5.5
  }
  return c;
}

std::string SchemeClassification::ToString(
    const DatabaseScheme& scheme) const {
  auto yn = [](bool b) { return b ? "yes" : "no"; };
  std::string out;
  out += "valid scheme:             " + valid.ToString() + "\n";
  out += std::string("BCNF:                     ") + yn(bcnf) + "\n";
  out += std::string("lossless:                 ") + yn(lossless) + "\n";
  out += std::string("independent (Sagiv):      ") + yn(independent) + "\n";
  out += std::string("key-equivalent:           ") + yn(key_equivalent) + "\n";
  out += std::string("gamma-acyclic:            ") + yn(gamma_acyclic) + "\n";
  out += std::string("alpha-acyclic:            ") + yn(alpha_acyclic) + "\n";
  out += std::string("independence-reducible:   ") +
         yn(independence_reducible) + "\n";
  if (independence_reducible) {
    out += "partition:                ";
    for (size_t b = 0; b < recognition.partition.size(); ++b) {
      if (b > 0) out += " | ";
      out += "{";
      for (size_t k = 0; k < recognition.partition[b].size(); ++k) {
        if (k > 0) out += ",";
        out += scheme.relation(recognition.partition[b][k]).name;
      }
      out += "}";
      out += block_split_free[b] ? "" : "*";
    }
    out += "   (* = split block)\n";
  } else if (recognition.violation.has_value()) {
    out += "rejection witness:        " +
           recognition.violation->ToString(*recognition.induced) + "\n";
  }
  out += std::string("bounded:                  ") + yn(bounded) + "\n";
  out += std::string("algebraic-maintainable:   ") +
         yn(algebraic_maintainable) + "\n";
  out += std::string("constant-time-maintain.:  ") + yn(ctm) + "\n";
  return out;
}

}  // namespace ird
