#include "core/representative_index.h"

#include <deque>
#include <numeric>

#include "core/key_equivalence.h"

namespace ird {

namespace {

uint64_t HashKeyValues(size_t key_ordinal, const PartialTuple& tuple,
                       const AttributeSet& key) {
  uint64_t h = 1469598103934665603ull ^ (key_ordinal * 0x9e3779b97f4a7c15ull);
  key.ForEach([&](AttributeId a) {
    h ^= static_cast<uint64_t>(tuple.At(a)) + 0x9e3779b97f4a7c15ull +
         (h << 6) + (h >> 2);
  });
  return h;
}

}  // namespace

Result<RepresentativeIndex> RepresentativeIndex::Build(
    const DatabaseState& state, std::vector<size_t> pool) {
  if (pool.empty()) {
    pool.resize(state.relation_count());
    std::iota(pool.begin(), pool.end(), 0);
  }
  IRD_CHECK_MSG(IsKeyEquivalentSubset(state.scheme(), pool),
                "RepresentativeIndex requires a key-equivalent (sub)scheme");
  RepresentativeIndex idx;
  for (size_t i : pool) {
    for (const AttributeSet& key : state.scheme().relation(i).keys) {
      bool known = false;
      for (const AttributeSet& k : idx.keys_) {
        if (k == key) {
          known = true;
          break;
        }
      }
      if (!known) idx.keys_.push_back(key);
    }
  }
  for (size_t i : pool) {
    for (const PartialTuple& tuple : state.relation(i).tuples()) {
      IRD_RETURN_IF_ERROR(idx.InsertTuple(i, tuple));
    }
  }
  return idx;
}

size_t RepresentativeIndex::AddRow(PartialTuple tuple) {
  rows_.push_back(std::move(tuple));
  alive_.push_back(true);
  return rows_.size() - 1;
}

void RepresentativeIndex::IndexRow(size_t row) {
  const PartialTuple& t = rows_[row];
  for (size_t k = 0; k < keys_.size(); ++k) {
    if (keys_[k].IsSubsetOf(t.attrs())) {
      index_[HashKeyValues(k, t, keys_[k])].push_back(row);
    }
  }
}

void RepresentativeIndex::UnindexRow(size_t row) {
  const PartialTuple& t = rows_[row];
  for (size_t k = 0; k < keys_.size(); ++k) {
    if (keys_[k].IsSubsetOf(t.attrs())) {
      auto it = index_.find(HashKeyValues(k, t, keys_[k]));
      if (it == index_.end()) continue;
      auto& bucket = it->second;
      for (size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i] == row) {
          bucket[i] = bucket.back();
          bucket.pop_back();
          break;
        }
      }
    }
  }
}

Status RepresentativeIndex::Settle(size_t row) {
  std::deque<size_t> queue = {row};
  while (!queue.empty()) {
    size_t r = queue.front();
    queue.pop_front();
    if (!alive_[r]) continue;
    bool merged = false;
    for (size_t k = 0; k < keys_.size() && !merged; ++k) {
      const AttributeSet& key = keys_[k];
      if (!key.IsSubsetOf(rows_[r].attrs())) continue;
      auto it = index_.find(HashKeyValues(k, rows_[r], key));
      if (it == index_.end()) continue;
      for (size_t other : it->second) {
        if (other == r || !alive_[other]) continue;
        if (!key.IsSubsetOf(rows_[other].attrs())) continue;
        if (!rows_[r].AgreesOn(rows_[other], key)) continue;  // hash collision
        // fd-rule: the two rows agree on a key; since any key determines
        // ∪S (key-equivalence), their shared constants must all agree, and
        // they collapse into one row on the union of their columns.
        std::optional<PartialTuple> joined = rows_[r].Join(rows_[other]);
        if (!joined.has_value()) {
          return Inconsistent(
              "two tuples agree on a key but clash on a shared attribute");
        }
        UnindexRow(other);
        alive_[other] = false;
        rows_[r] = std::move(*joined);
        queue.push_back(r);
        merged = true;
        break;
      }
    }
    if (!merged) {
      IndexRow(r);
    }
  }
  return OkStatus();
}

Status RepresentativeIndex::InsertTuple(size_t /*rel*/,
                                        const PartialTuple& tuple) {
  size_t row = AddRow(tuple);
  return Settle(row);
}

std::vector<const PartialTuple*> RepresentativeIndex::Rows() const {
  std::vector<const PartialTuple*> out;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (alive_[i]) out.push_back(&rows_[i]);
  }
  return out;
}

const PartialTuple* RepresentativeIndex::Lookup(
    const AttributeSet& key, const PartialTuple& key_values) const {
  IRD_CHECK_MSG(key_values.attrs() == key,
                "Lookup values must be a tuple on exactly the key");
  for (size_t k = 0; k < keys_.size(); ++k) {
    if (keys_[k] != key) continue;
    auto it = index_.find(HashKeyValues(k, key_values, key));
    if (it == index_.end()) return nullptr;
    for (size_t row : it->second) {
      if (alive_[row] && rows_[row].AgreesOn(key_values, key)) {
        return &rows_[row];
      }
    }
    return nullptr;
  }
  IRD_CHECK_MSG(false, "Lookup with a key not embedded in the scheme");
  return nullptr;
}

PartialRelation RepresentativeIndex::TotalProjection(
    const AttributeSet& x) const {
  PartialRelation out(x);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (alive_[i] && x.IsSubsetOf(rows_[i].attrs())) {
      out.AddUnique(rows_[i].Restrict(x));
    }
  }
  return out;
}

size_t RepresentativeIndex::RowCount() const {
  size_t n = 0;
  for (bool a : alive_) n += a ? 1 : 0;
  return n;
}

}  // namespace ird
