#include "core/split_witness.h"

#include <numeric>

#include "core/key_equivalence.h"
#include "core/split.h"

namespace ird {

namespace {

// Fresh-value generators for the two universal tuples of the construction.
Value T1Value(AttributeId a) { return 10000 + static_cast<Value>(a); }
Value TQValue(AttributeId a) { return 20000 + static_cast<Value>(a); }

PartialTuple ProjectOnto(const AttributeSet& attrs, const AttributeSet& key,
                         bool from_t1) {
  std::vector<Value> values;
  values.reserve(attrs.Count());
  attrs.ForEach([&](AttributeId a) {
    // t_q agrees with t_1 exactly on K.
    values.push_back(from_t1 || key.Contains(a) ? T1Value(a) : TQValue(a));
  });
  return PartialTuple(attrs, std::move(values));
}

}  // namespace

Result<SplitWitness> BuildSplitWitness(const DatabaseScheme& scheme,
                                       const AttributeSet& key,
                                       std::vector<size_t> pool) {
  if (pool.empty()) {
    pool.resize(scheme.size());
    std::iota(pool.begin(), pool.end(), 0);
  }
  IRD_CHECK_MSG(IsKeyEquivalentSubset(scheme, pool),
                "split witness requires a key-equivalent (sub)scheme");
  if (!IsKeySplit(scheme, key, pool)) {
    return FailedPrecondition("key is not split; no witness exists");
  }

  // --- The covering fragments S_l: a partial computation over W (the
  // schemes not containing K) that covers K without any member containing
  // it (Lemma 3.8's witness sequence).
  std::vector<size_t> w;
  for (size_t i : pool) {
    if (!key.IsSubsetOf(scheme.relation(i).attrs)) w.push_back(i);
  }
  FdSet g = scheme.KeyDependenciesOf(w);
  std::vector<size_t> s_l;
  AttributeSet u_l;
  for (size_t start : w) {
    if (!key.IsSubsetOf(g.Closure(scheme.relation(start).attrs))) continue;
    SchemeClosure closure = ComputeSchemeClosure(scheme, start, w);
    s_l = {start};
    u_l = scheme.relation(start).attrs;
    for (const ClosureStep& step : closure.steps) {
      if (key.IsSubsetOf(u_l)) break;
      s_l.push_back(step.scheme_index);
      u_l.UnionWith(scheme.relation(step.scheme_index).attrs);
    }
    IRD_CHECK_MSG(key.IsSubsetOf(u_l), "closure must cover the split key");
    break;
  }
  IRD_CHECK(!s_l.empty());

  // --- The S_q sequence: a partial computation of S_p+ (S_p ⊇ K) whose
  // prefix avoids U_l - K and whose last element meets it.
  AttributeSet forbidden = u_l.Minus(key);
  size_t s_p = static_cast<size_t>(-1);
  for (size_t i : pool) {
    if (key.IsSubsetOf(scheme.relation(i).attrs)) {
      s_p = i;
      break;
    }
  }
  IRD_CHECK_MSG(s_p != static_cast<size_t>(-1),
                "a split key is a key of some scheme");
  std::vector<size_t> prefix;  // S_q1 .. S_qp
  size_t last = s_p;
  if (scheme.relation(s_p).attrs.Intersects(forbidden)) {
    // p = 0: u lives on S_p itself; no s'_q fragments.
  } else {
    prefix.push_back(s_p);
    AttributeSet closure = scheme.relation(s_p).attrs;
    bool found = false;
    while (!found) {
      // Prefer an applicable scheme meeting U_l - K (it terminates the
      // sequence); otherwise absorb a disjoint applicable one.
      int disjoint_choice = -1;
      for (size_t j : pool) {
        const RelationScheme& sj = scheme.relation(j);
        if (sj.attrs.IsSubsetOf(closure)) continue;
        if (!sj.ContainsKey(closure)) continue;
        if (sj.attrs.Intersects(forbidden)) {
          last = j;
          found = true;
          break;
        }
        if (disjoint_choice < 0) disjoint_choice = static_cast<int>(j);
      }
      if (found) break;
      // Key-equivalence guarantees the closure reaches ∪pool ⊇ U_l - K, so
      // some step must eventually meet it; absorb and continue.
      IRD_CHECK_MSG(disjoint_choice >= 0,
                    "computation stalled before reaching U_l - K");
      prefix.push_back(static_cast<size_t>(disjoint_choice));
      closure.UnionWith(
          scheme.relation(static_cast<size_t>(disjoint_choice)).attrs);
    }
  }

  // --- Assemble the state.
  SplitWitness witness{DatabaseState(scheme)};
  for (size_t rel : s_l) {
    witness.state.mutable_relation(rel).AddUnique(
        ProjectOnto(scheme.relation(rel).attrs, key, /*from_t1=*/true));
  }
  for (size_t rel : prefix) {
    witness.state.mutable_relation(rel).AddUnique(
        ProjectOnto(scheme.relation(rel).attrs, key, /*from_t1=*/false));
  }
  witness.covering_relations = s_l;
  witness.insert_rel = last;
  witness.insert =
      ProjectOnto(scheme.relation(last).attrs, key, /*from_t1=*/false);
  return witness;
}

}  // namespace ird
