#include "core/augmentation.h"

namespace ird {

Status Augment(DatabaseScheme* scheme, std::string name,
               const AttributeSet& attrs) {
  if (attrs.Empty()) {
    return InvalidArgument("augmentation scheme must be nonempty");
  }
  bool inside_some = false;
  for (const RelationScheme& r : scheme->relations()) {
    if (attrs.IsSubsetOf(r.attrs)) {
      inside_some = true;
      break;
    }
  }
  if (!inside_some) {
    return InvalidArgument(
        "augmentation scheme must be a subset of an existing relation");
  }
  RelationScheme added;
  added.name = std::move(name);
  added.attrs = attrs;
  // Keys embedded in the new scheme, if any.
  for (const RelationScheme& r : scheme->relations()) {
    for (const AttributeSet& key : r.keys) {
      if (!key.IsSubsetOf(attrs)) continue;
      bool known = false;
      for (const AttributeSet& k : added.keys) {
        if (k == key) {
          known = true;
          break;
        }
      }
      if (!known) added.keys.push_back(key);
    }
  }
  if (added.keys.empty()) {
    // Case 1 of Theorem 4.3: S embeds no key of R; its only key is itself.
    added.keys.push_back(attrs);
  }
  scheme->AddRelation(std::move(added));
  return OkStatus();
}

DatabaseScheme Reduce(const DatabaseScheme& scheme) {
  DatabaseScheme reduced(scheme.universe_ptr());
  for (size_t i = 0; i < scheme.size(); ++i) {
    const RelationScheme& r = scheme.relation(i);
    bool drop = false;
    for (size_t j = 0; j < scheme.size() && !drop; ++j) {
      if (i == j) continue;
      const AttributeSet& other = scheme.relation(j).attrs;
      if (r.attrs.IsProperSubsetOf(other)) drop = true;
      if (r.attrs == other && j < i) drop = true;  // duplicate, keep first
    }
    if (!drop) reduced.AddRelation(r);
  }
  return reduced;
}

}  // namespace ird
