#include "core/sharded_maintainer.h"

#include "base/mutex.h"
#include "obs/obs.h"

namespace ird {

Result<ShardedMaintainer> ShardedMaintainer::Create(DatabaseState state,
                                                    size_t jobs,
                                                    bool verify_consistency) {
  Result<ShardedState> sharded =
      ShardedState::Create(std::move(state), verify_consistency);
  if (!sharded.ok()) return sharded.status();
  return ShardedMaintainer(std::move(sharded).value(), jobs);
}

Result<PartialTuple> ShardedMaintainer::CheckInsert(
    size_t rel, const PartialTuple& tuple, MaintenanceStats* stats) const {
  return state_.shard(state_.BlockOf(rel)).CheckInsert(rel, tuple, stats);
}

Status ShardedMaintainer::Insert(size_t rel, const PartialTuple& tuple) {
  return state_.mutable_shard(state_.BlockOf(rel)).Insert(rel, tuple);
}

std::vector<Status> ShardedMaintainer::InsertBatch(
    const std::vector<InsertOp>& ops) {
  IRD_SPAN("shard.batch");
  MutexLock batch_lock(*batch_mu_);
  std::vector<Status> verdicts(ops.size());
  // Group op indices by owning shard, preserving arrival order per shard.
  std::vector<std::vector<size_t>> by_shard(state_.shard_count());
  for (size_t i = 0; i < ops.size(); ++i) {
    by_shard[state_.BlockOf(ops[i].rel)].push_back(i);
  }
  std::vector<size_t> busy_shards;
  for (size_t b = 0; b < by_shard.size(); ++b) {
    if (!by_shard[b].empty()) busy_shards.push_back(b);
  }
  IRD_COUNT_ADD(shard.parallel_validations, ops.size());
  // Each task owns exactly one shard and its slice of the verdict vector,
  // so tasks share no mutable state (the obs registry's relaxed atomics
  // aside) — the invariant the CI TSan sweep holds this code to.
  auto validate_shard = [&](size_t task) {
    IRD_SPAN("shard.validate");
    // Per-shard slice latency: the batch's critical path is the slowest
    // shard, which the shard.validate span total can't see.
    IRD_HISTOGRAM_TIMER_NS(shard.validate_ns);
    size_t b = busy_shards[task];
    BlockShard& shard = state_.mutable_shard(b);
    // One scratch per task: the restriction/join buffers are allocated on
    // the first insert and recycled for the rest of the shard's slice.
    MaintainScratch scratch;
    for (size_t i : by_shard[b]) {
      verdicts[i] = shard.Insert(ops[i].rel, ops[i].tuple, &scratch);
    }
  };
  pool_->ForEachIndex(busy_shards.size(), validate_shard);
  return verdicts;
}

}  // namespace ird
