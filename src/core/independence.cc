#include "core/independence.h"

#include "fd/closure_engine.h"
#include "obs/obs.h"

namespace ird {

std::string UniquenessViolation::ToString(
    const DatabaseScheme& scheme) const {
  return "closure of " + scheme.relation(i).name + " without the keys of " +
         scheme.relation(j).name + " embeds the key dependency " +
         scheme.universe().Format(key) + " -> " +
         scheme.universe().Name(attribute);
}

std::optional<UniquenessViolation> FindUniquenessViolation(
    const DatabaseScheme& scheme) {
  IRD_SPAN("independence");
  for (size_t j = 0; j < scheme.size(); ++j) {
    // One indexed engine per F - Fj, amortized over all i.
    ClosureEngine without_j(scheme.KeyDependenciesExcept(j));
    const RelationScheme& rj = scheme.relation(j);
    for (size_t i = 0; i < scheme.size(); ++i) {
      if (i == j) continue;
      // One uniqueness probe per ordered (i, j) pair: at most n(n-1) per
      // scheme, fewer on early violation.
      IRD_COUNT(recognition.independence_tests);
      AttributeSet closure = without_j.Closure(scheme.relation(i).attrs);
      // Does the closure embed some key dependency K -> A of Rj? That is:
      // K ⊆ closure and some A ∈ Rj - K also in the closure.
      for (const AttributeSet& key : rj.keys) {
        if (!key.IsSubsetOf(closure)) continue;
        AttributeSet extra = closure.Intersect(rj.attrs).Minus(key);
        if (!extra.Empty()) {
          return UniquenessViolation{i, j, key, extra.First()};
        }
      }
    }
  }
  return std::nullopt;
}

bool IsIndependent(const DatabaseScheme& scheme) {
  return !FindUniquenessViolation(scheme).has_value();
}

}  // namespace ird
