#include "core/independence.h"

#include "obs/obs.h"

namespace ird {

std::optional<UniquenessViolation> FindUniquenessViolation(
    SchemeAnalysis& analysis) {
  SchemeAnalysis::Cache& cache = analysis.cache();
  if (cache.uniqueness_computed) return cache.uniqueness;
  IRD_SPAN("independence");
  const DatabaseScheme& scheme = analysis.scheme();
  std::optional<UniquenessViolation> found;
  for (size_t j = 0; j < scheme.size() && !found.has_value(); ++j) {
    // One interned engine per F - Fj, amortized over all i (and over every
    // later query against the same leave-one-out cover).
    const RelationScheme& rj = scheme.relation(j);
    for (size_t i = 0; i < scheme.size() && !found.has_value(); ++i) {
      if (i == j) continue;
      // One uniqueness probe per ordered (i, j) pair: at most n(n-1) per
      // scheme, fewer on early violation.
      IRD_COUNT(recognition.independence_tests);
      AttributeSet closure =
          analysis.ClosureExcept(j, scheme.relation(i).attrs);
      // Does the closure embed some key dependency K -> A of Rj? That is:
      // K ⊆ closure and some A ∈ Rj - K also in the closure.
      for (const AttributeSet& key : rj.keys) {
        if (!key.IsSubsetOf(closure)) continue;
        AttributeSet extra = closure.Intersect(rj.attrs).Minus(key);
        if (!extra.Empty()) {
          found = UniquenessViolation{i, j, key, extra.First()};
          break;
        }
      }
    }
  }
  cache.uniqueness = found;
  cache.uniqueness_computed = true;
  return found;
}

std::optional<UniquenessViolation> FindUniquenessViolation(
    const DatabaseScheme& scheme) {
  SchemeAnalysis analysis(scheme);
  return FindUniquenessViolation(analysis);
}

bool IsIndependent(const DatabaseScheme& scheme) {
  return !FindUniquenessViolation(scheme).has_value();
}

bool IsIndependent(SchemeAnalysis& analysis) {
  return !FindUniquenessViolation(analysis).has_value();
}

}  // namespace ird
