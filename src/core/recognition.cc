#include "core/recognition.h"

#include <memory>
#include <unordered_set>
#include <utility>

#include "obs/obs.h"

namespace ird {

DatabaseScheme InducedScheme(
    const DatabaseScheme& scheme,
    const std::vector<std::vector<size_t>>& partition) {
  DatabaseScheme induced(scheme.universe_ptr());
  for (const std::vector<size_t>& block : partition) {
    RelationScheme merged;
    merged.name = 'D' + std::to_string(induced.size() + 1);
    // Dedupe the block's keys by value; declaration order of the first
    // occurrence is preserved (rendered output depends on it).
    std::unordered_set<AttributeSet, AttributeSetHash> seen;
    for (size_t i : block) {
      const RelationScheme& r = scheme.relation(i);
      merged.attrs.UnionWith(r.attrs);
      for (const AttributeSet& key : r.keys) {
        if (seen.insert(key).second) merged.keys.push_back(key);
      }
    }
    induced.AddRelation(std::move(merged));
  }
  return induced;
}

RecognitionResult RecognizeIndependenceReducible(SchemeAnalysis& analysis) {
  IRD_SPAN("recognition");
  IRD_COUNT(recognition.runs);
  // Per-scheme recognition latency: the span above sums across schemes,
  // this separates a fleet of fast recognitions from one pathological one.
  IRD_HISTOGRAM_TIMER_NS(recognition.scheme_ns);
  RecognitionResult result;
  // Step (1): the key-equivalent partition via KEP (cached).
  result.partition = KeyEquivalentPartition(analysis);
  // Step (2): D with the blocks' embedded key dependencies. The induced
  // scheme and its child analysis live in the cache so step (3)'s engines
  // survive into the next recognition of the same scheme.
  SchemeAnalysis::Cache& cache = analysis.cache();
  if (cache.induced == nullptr) {
    cache.induced = std::make_unique<DatabaseScheme>(
        InducedScheme(analysis.scheme(), result.partition));
    cache.induced_analysis =
        std::make_unique<SchemeAnalysis>(*cache.induced);
  }
  result.induced = *cache.induced;
  // Step (3): the independence test on D (cached in the child).
  result.violation = FindUniquenessViolation(*cache.induced_analysis);
  result.accepted = !result.violation.has_value();
  return result;
}

RecognitionResult RecognizeIndependenceReducible(
    const DatabaseScheme& scheme) {
  SchemeAnalysis analysis(scheme);
  return RecognizeIndependenceReducible(analysis);
}

bool IsIndependenceReducible(const DatabaseScheme& scheme) {
  return RecognizeIndependenceReducible(scheme).accepted;
}

bool IsIndependenceReducible(SchemeAnalysis& analysis) {
  return RecognizeIndependenceReducible(analysis).accepted;
}

}  // namespace ird
