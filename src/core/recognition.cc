#include "core/recognition.h"

#include "obs/obs.h"

namespace ird {

DatabaseScheme InducedScheme(
    const DatabaseScheme& scheme,
    const std::vector<std::vector<size_t>>& partition) {
  DatabaseScheme induced(scheme.universe_ptr());
  for (const std::vector<size_t>& block : partition) {
    RelationScheme merged;
    merged.name = 'D' + std::to_string(induced.size() + 1);
    for (size_t i : block) {
      const RelationScheme& r = scheme.relation(i);
      merged.attrs.UnionWith(r.attrs);
      for (const AttributeSet& key : r.keys) {
        bool known = false;
        for (const AttributeSet& k : merged.keys) {
          if (k == key) {
            known = true;
            break;
          }
        }
        if (!known) merged.keys.push_back(key);
      }
    }
    induced.AddRelation(std::move(merged));
  }
  return induced;
}

RecognitionResult RecognizeIndependenceReducible(
    const DatabaseScheme& scheme) {
  IRD_SPAN("recognition");
  IRD_COUNT(recognition.runs);
  RecognitionResult result;
  // Step (1): the key-equivalent partition via KEP.
  result.partition = KeyEquivalentPartition(scheme);
  // Step (2): D with the blocks' embedded key dependencies.
  result.induced = InducedScheme(scheme, result.partition);
  // Step (3): the independence test on D.
  result.violation = FindUniquenessViolation(*result.induced);
  result.accepted = !result.violation.has_value();
  return result;
}

bool IsIndependenceReducible(const DatabaseScheme& scheme) {
  return RecognizeIndependenceReducible(scheme).accepted;
}

}  // namespace ird
