#include "core/block_maintainer.h"

#include "core/split.h"
#include "engine/scheme_analysis.h"

namespace ird {

Result<IndependenceReducibleMaintainer> IndependenceReducibleMaintainer::Create(
    DatabaseState state, bool verify_consistency) {
  // One analysis serves recognition and every per-block split test; it must
  // not outlive this function (the scheme moves into the maintainer below).
  SchemeAnalysis analysis(state.scheme());
  RecognitionResult recognition = RecognizeIndependenceReducible(analysis);
  if (!recognition.accepted) {
    return FailedPrecondition(
        "scheme is not independence-reducible: " +
        recognition.violation->ToString(*recognition.induced));
  }
  IndependenceReducibleMaintainer m;
  m.recognition_ = std::move(recognition);
  m.rel_to_block_.assign(state.scheme().size(), 0);
  for (size_t b = 0; b < m.recognition_.partition.size(); ++b) {
    const std::vector<size_t>& pool = m.recognition_.partition[b];
    for (size_t rel : pool) {
      m.rel_to_block_[rel] = b;
    }
    bool split_free = IsSplitFree(analysis, pool);
    if (!split_free) m.all_blocks_split_free_ = false;
    Result<BlockShard> shard =
        BlockShard::Build(state, pool, split_free, verify_consistency);
    if (!shard.ok()) return shard.status();
    m.blocks_.push_back(std::move(shard).value());
  }
  m.state_ = std::move(state);
  return m;
}

Result<PartialTuple> IndependenceReducibleMaintainer::CheckInsert(
    size_t rel, const PartialTuple& tuple, MaintenanceStats* stats) const {
  IRD_CHECK(rel < state_.scheme().size());
  return blocks_[rel_to_block_[rel]].CheckInsert(rel, tuple, stats);
}

Status IndependenceReducibleMaintainer::Insert(size_t rel,
                                               const PartialTuple& tuple) {
  Result<PartialTuple> q = CheckInsert(rel, tuple);
  if (!q.ok()) return q.status();
  // The merged view and the owning shard both apply the tuple; the shard's
  // Apply also keeps its Algorithm 5/2 index current.
  state_.mutable_relation(rel).AddUnique(tuple);
  return blocks_[rel_to_block_[rel]].Apply(rel, tuple);
}

}  // namespace ird
