#include "core/block_maintainer.h"

#include "core/split.h"

namespace ird {

Result<IndependenceReducibleMaintainer> IndependenceReducibleMaintainer::Create(
    DatabaseState state, bool verify_consistency) {
  // One analysis serves recognition and every per-block split test; it must
  // not outlive this function (the scheme moves into the maintainer below).
  SchemeAnalysis analysis(state.scheme());
  RecognitionResult recognition = RecognizeIndependenceReducible(analysis);
  if (!recognition.accepted) {
    return FailedPrecondition(
        "scheme is not independence-reducible: " +
        recognition.violation->ToString(*recognition.induced));
  }
  IndependenceReducibleMaintainer m;
  m.recognition_ = std::move(recognition);
  m.rel_to_block_.assign(state.scheme().size(), 0);
  for (size_t b = 0; b < m.recognition_.partition.size(); ++b) {
    Block block;
    block.pool = m.recognition_.partition[b];
    for (size_t rel : block.pool) {
      m.rel_to_block_[rel] = b;
    }
    block.split_free = IsSplitFree(analysis, block.pool);
    if (!block.split_free) m.all_blocks_split_free_ = false;
    if (block.split_free) {
      // Algorithm 5 machinery; consistency of the block substate is
      // verified separately below if requested.
      Result<StateKeyIndex> idx = StateKeyIndex::Build(state, block.pool);
      if (!idx.ok()) return idx.status();
      block.key_index = std::move(idx).value();
      if (verify_consistency) {
        Result<RepresentativeIndex> rep =
            RepresentativeIndex::Build(state, block.pool);
        if (!rep.ok()) return rep.status();
      }
    } else {
      // Algorithm 2 machinery: the block representative instance. Building
      // it chases the block substate, which is also the consistency check.
      Result<RepresentativeIndex> rep =
          RepresentativeIndex::Build(state, block.pool);
      if (!rep.ok()) return rep.status();
      block.rep_index = std::move(rep).value();
    }
    m.blocks_.push_back(std::move(block));
  }
  m.state_ = std::move(state);
  return m;
}

Result<PartialTuple> IndependenceReducibleMaintainer::CheckInsert(
    size_t rel, const PartialTuple& tuple, MaintenanceStats* stats) const {
  IRD_CHECK(rel < state_.scheme().size());
  const Block& block = blocks_[rel_to_block_[rel]];
  if (block.split_free) {
    ExtensionStats ext_stats;
    Result<PartialTuple> q = CheckInsertCtm(
        state_.scheme(), *block.key_index, rel, tuple, &ext_stats);
    if (stats != nullptr) {
      stats->lookups += ext_stats.probes;
    }
    return q;
  }
  return CheckInsertKeyEquivalent(state_.scheme(), block.pool,
                                  *block.rep_index, rel, tuple, stats);
}

Status IndependenceReducibleMaintainer::Insert(size_t rel,
                                               const PartialTuple& tuple) {
  Result<PartialTuple> q = CheckInsert(rel, tuple);
  if (!q.ok()) return q.status();
  state_.mutable_relation(rel).AddUnique(tuple);
  Block& block = blocks_[rel_to_block_[rel]];
  if (block.split_free) {
    return block.key_index->AddTuple(rel, tuple);
  }
  return block.rep_index->InsertTuple(rel, tuple);
}

}  // namespace ird
